/**
 * @file
 * The paper's headline recommendation, demonstrated end-to-end:
 *
 *   "implementing two data streams using 4 SPEs each can be more
 *    efficient than having a single data stream using the 8 SPEs"
 *
 * We build a streaming pipeline that pulls data from main memory,
 * passes it SPE-to-SPE down a chain (each hop forwards its buffer with
 * a GET from the previous stage's LS), and writes results back to
 * memory — once as a single 8-SPE chain, once as two independent 4-SPE
 * chains, with identical total work.
 */

#include <cstdio>

#include "cell/cell_system.hh"
#include "core/advisor.hh"
#include "sim/task.hh"
#include "util/strings.hh"

using namespace cellbw;

namespace
{

constexpr std::uint32_t chunkBytes = 16 * 1024;
constexpr std::uint32_t slotCount = 4;

/**
 * First stage: GETs chunks from main memory into its LS, then signals
 * the chunk number through its outbound mailbox.
 */
sim::Task
sourceStage(cell::CellSystem &sys, unsigned spe, EffAddr src,
            std::uint64_t chunks)
{
    auto &s = sys.spe(spe);
    LsAddr buf = s.lsAlloc(slotCount * chunkBytes);
    for (std::uint64_t c = 0; c < chunks; ++c) {
        LsAddr slot = buf + (c % slotCount) * chunkBytes;
        co_await s.mfc().queueSpace();
        s.mfc().get(slot, src + c * chunkBytes, chunkBytes,
                    static_cast<unsigned>(c % slotCount));
        co_await s.mfc().tagWait(1u << (c % slotCount));
        co_await s.outboundMailbox().write(static_cast<std::uint32_t>(c));
    }
}

/**
 * Middle stage: waits for its predecessor's mailbox, GETs the chunk
 * from the predecessor's LS, forwards the token.
 */
sim::Task
relayStage(cell::CellSystem &sys, unsigned spe, unsigned prev,
           std::uint64_t chunks)
{
    auto &s = sys.spe(spe);
    LsAddr buf = s.lsAlloc(slotCount * chunkBytes);
    // The predecessor allocated its buffer at the same LS offset.
    LsAddr peer_buf = buf;
    for (std::uint64_t c = 0; c < chunks; ++c) {
        std::uint32_t token = co_await sys.spe(prev).outboundMailbox().read();
        LsAddr slot = buf + (token % slotCount) * chunkBytes;
        co_await s.mfc().queueSpace();
        s.mfc().get(slot,
                    sys.lsEa(prev, peer_buf +
                             (token % slotCount) * chunkBytes),
                    chunkBytes, token % slotCount);
        co_await s.mfc().tagWait(1u << (token % slotCount));
        co_await s.outboundMailbox().write(token);
    }
}

/** Final stage: PUTs chunks back to main memory. */
sim::Task
sinkStage(cell::CellSystem &sys, unsigned spe, unsigned prev, EffAddr dst,
          std::uint64_t chunks)
{
    auto &s = sys.spe(spe);
    LsAddr buf = s.lsAlloc(slotCount * chunkBytes);
    for (std::uint64_t c = 0; c < chunks; ++c) {
        std::uint32_t token = co_await sys.spe(prev).outboundMailbox().read();
        LsAddr slot = buf + (token % slotCount) * chunkBytes;
        co_await s.mfc().queueSpace();
        s.mfc().get(slot,
                    sys.lsEa(prev, slot), chunkBytes, token % slotCount);
        co_await s.mfc().tagWait(1u << (token % slotCount));
        co_await s.mfc().queueSpace();
        s.mfc().put(slot, dst + token * static_cast<EffAddr>(chunkBytes),
                    chunkBytes, 8);
    }
    co_await s.mfc().tagWait(1u << 8);
}

/**
 * Run one pipeline over the SPEs [first, first+width) moving
 * @p totalBytes; returns when its sink finished.
 */
void
launchChain(cell::CellSystem &sys, unsigned first, unsigned width,
            EffAddr src, EffAddr dst, std::uint64_t totalBytes)
{
    std::uint64_t chunks = totalBytes / chunkBytes;
    sys.launch(sourceStage(sys, first, src, chunks));
    for (unsigned i = 1; i + 1 < width; ++i)
        sys.launch(relayStage(sys, first + i, first + i - 1, chunks));
    sys.launch(sinkStage(sys, first + width - 1, first + width - 2, dst,
                         chunks));
}

double
runConfiguration(unsigned streams, unsigned width,
                 std::uint64_t bytesPerStream, std::uint64_t seed)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, seed);
    Tick t0 = sys.now();
    for (unsigned st = 0; st < streams; ++st) {
        EffAddr src = sys.malloc(bytesPerStream);
        EffAddr dst = sys.malloc(bytesPerStream);
        sys.memory().store().fill(src, static_cast<std::uint8_t>(st + 1),
                                  bytesPerStream);
        launchChain(sys, st * width, width, src, dst, bytesPerStream);
    }
    sys.run();
    double secs = cfg.clock.seconds(sys.now() - t0);
    return streams * bytesPerStream / secs / 1e9;
}

} // namespace

int
main()
{
    const std::uint64_t total = 16 * util::MiB;  // split across streams

    std::printf("Streaming pipelines on the Cell: one 8-SPE chain vs "
                "two 4-SPE chains\n");
    std::printf("(total payload %s, %u KiB chunks, double-buffered "
                "LS slots)\n\n",
                util::bytesToString(total).c_str(), chunkBytes / 1024);

    double one = 0.0, two = 0.0;
    const int runs = 5;
    for (int r = 0; r < runs; ++r) {
        one += runConfiguration(1, 8, total, 100 + r);
        two += runConfiguration(2, 4, total / 2, 200 + r);
    }
    one /= runs;
    two /= runs;

    std::printf("  1 stream  x 8 SPEs : %6.2f GB/s of payload\n", one);
    std::printf("  2 streams x 4 SPEs : %6.2f GB/s of payload\n", two);
    std::printf("  ratio             : %.2fx\n\n", two / one);

    core::DmaPlan plan;
    plan.elemBytes = chunkBytes;
    plan.spesPerStream = 8;
    plan.streams = 1;
    std::printf("advisor on the 1x8 plan:\n%s",
                core::renderAdvice(core::advise(plan)).c_str());
    return 0;
}
