/**
 * @file
 * Dongarra's mixed-precision recipe on the Cell, quantified.
 *
 * The paper's related work: "a recent keynote speech by Dongarra
 * suggests to address the lack of DP units in architectures like Cell
 * by doing the bulk of the computation in single precision, and using
 * DP only to perform error correction on the single precision result."
 *
 * We solve a diagonally dominant system A x = b (n = 1024) with Jacobi
 * sweeps running on an SPE: the matrix streams through the local store
 * by double-buffered DMA and the SPU pays the real flop rates (8 SP
 * flops/cycle vs one 2-way DP FMA every 7 cycles) *and* the real byte
 * volumes (DP rows are twice the DMA traffic).  Three strategies:
 *
 *   1. double precision throughout,
 *   2. single precision throughout (stalls at ~1e-7 accuracy),
 *   3. mixed: SP sweeps + DP residual correction (iterative
 *      refinement) — DP accuracy at a fraction of the DP-only time.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "cell/cell_system.hh"
#include "sim/task.hh"
#include "util/strings.hh"

using namespace cellbw;

namespace
{

constexpr std::uint32_t n = 1024;
constexpr double spFlopsPerCycle = 8.0;
constexpr double dpFlopsPerCycle = 4.0 / 7.0;

/** Diagonally dominant test matrix and right-hand side (doubles). */
struct Problem
{
    std::vector<double> A;      // row-major n x n
    std::vector<double> b;
    std::vector<double> xref;   // the exact solution we synthesized
};

Problem
makeProblem()
{
    Problem p;
    p.A.resize(std::uint64_t(n) * n);
    p.b.assign(n, 0.0);
    p.xref.resize(n);
    for (std::uint32_t i = 0; i < n; ++i)
        p.xref[i] = 0.5 + 0.25 * ((i * 37) % 17);
    for (std::uint32_t i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (std::uint32_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            double v = 0.02 * (((i * 131 + j * 29) % 19) - 9) / 9.0;
            p.A[std::uint64_t(i) * n + j] = v;
            row_sum += std::fabs(v);
        }
        p.A[std::uint64_t(i) * n + i] = row_sum * 1.5 + 1.0;
        double dot = 0.0;
        for (std::uint32_t j = 0; j < n; ++j)
            dot += p.A[std::uint64_t(i) * n + j] * p.xref[j];
        p.b[i] = dot;
    }
    return p;
}

/**
 * One Jacobi sweep on SPE 0: streams the matrix through the LS in
 * 16 KiB double-buffered chunks and charges the SPU the per-precision
 * flop rate.  The arithmetic itself runs at the requested precision.
 */
struct LsBuffers
{
    LsAddr buf[2];

    explicit LsBuffers(cell::CellSystem &sys)
    {
        buf[0] = sys.spe(0).lsAlloc(16 * 1024);
        buf[1] = sys.spe(0).lsAlloc(16 * 1024);
    }
};

template <typename T>
sim::Task
jacobiSweep(cell::CellSystem &sys, const LsBuffers &ls, EffAddr aEa,
            const std::vector<double> &b, std::vector<double> &x,
            double flopsPerCycle)
{
    auto &spe = sys.spe(0);
    auto &mfc = spe.mfc();
    constexpr std::uint32_t chunk = 16 * 1024;
    const std::uint32_t row_bytes = n * sizeof(T);
    const std::uint32_t rows_per_chunk = chunk / row_bytes;
    const LsAddr *bufs = ls.buf;

    std::vector<T> xin(n);
    for (std::uint32_t j = 0; j < n; ++j)
        xin[j] = static_cast<T>(x[j]);

    auto fetch = [&](std::uint32_t row, unsigned buf) -> sim::Task {
        co_await mfc.queueSpace();
        mfc.get(bufs[buf], aEa + std::uint64_t(row) * row_bytes,
                rows_per_chunk * row_bytes, buf);
    };

    std::vector<T> rows(rows_per_chunk * n);
    co_await fetch(0, 0);
    for (std::uint32_t r0 = 0; r0 < n; r0 += rows_per_chunk) {
        unsigned cur = (r0 / rows_per_chunk) % 2;
        if (r0 + rows_per_chunk < n)
            co_await fetch(r0 + rows_per_chunk, 1 - cur);
        co_await mfc.tagWait(1u << cur);

        spe.ls().read(bufs[cur], rows.data(),
                      rows_per_chunk * row_bytes);
        for (std::uint32_t i = 0; i < rows_per_chunk; ++i) {
            const T *row = rows.data() + std::uint64_t(i) * n;
            T acc = 0;
            for (std::uint32_t j = 0; j < n; ++j)
                acc += row[j] * xin[j];
            T diag = row[r0 + i];
            acc -= diag * xin[r0 + i];
            x[r0 + i] = static_cast<double>(
                (static_cast<T>(b[r0 + i]) - acc) / diag);
        }
        co_await spe.spu().cycles(static_cast<Tick>(
            2.0 * rows_per_chunk * n / flopsPerCycle));
    }
    co_await mfc.tagWait(0xFF);
}

double
relError(const std::vector<double> &x, const std::vector<double> &ref)
{
    double num = 0.0, den = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
        num += (x[i] - ref[i]) * (x[i] - ref[i]);
        den += ref[i] * ref[i];
    }
    return std::sqrt(num / den);
}

struct Outcome
{
    double seconds;
    double error;
    unsigned sweeps;
};

/** Run @p sweeps Jacobi sweeps at precision T and report time/error. */
template <typename T>
Outcome
solvePlain(const Problem &p, unsigned sweeps, double flopsPerCycle)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    // Upload the matrix at precision T.
    std::vector<T> At(p.A.begin(), p.A.end());
    EffAddr aEa = sys.malloc(At.size() * sizeof(T));
    sys.memory().store().write(aEa, At.data(), At.size() * sizeof(T));

    std::vector<double> x(n, 0.0);
    LsBuffers ls(sys);
    auto driver = [&]() -> sim::Task {
        for (unsigned s = 0; s < sweeps; ++s)
            co_await jacobiSweep<T>(sys, ls, aEa, p.b, x,
                                    flopsPerCycle);
    };
    Tick t0 = sys.now();
    sys.launch(driver());
    sys.run();
    return {cfg.clock.seconds(sys.now() - t0), relError(x, p.xref),
            sweeps};
}

/** SP sweeps + DP residual correction (iterative refinement). */
Outcome
solveMixed(const Problem &p, unsigned outer, unsigned innerSweeps)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    std::vector<float> Asp(p.A.begin(), p.A.end());
    std::vector<double> Adp = p.A;
    EffAddr aSp = sys.malloc(Asp.size() * 4);
    EffAddr aDp = sys.malloc(Adp.size() * 8);
    sys.memory().store().write(aSp, Asp.data(), Asp.size() * 4);
    sys.memory().store().write(aDp, Adp.data(), Adp.size() * 8);

    std::vector<double> x(n, 0.0);
    LsBuffers ls(sys);
    unsigned sweeps_done = 0;
    auto driver = [&]() -> sim::Task {
        std::vector<double> r = p.b;
        for (unsigned o = 0; o < outer; ++o) {
            // Solve A d = r approximately, in single precision.
            std::vector<double> d(n, 0.0);
            for (unsigned s = 0; s < innerSweeps; ++s) {
                co_await jacobiSweep<float>(sys, ls, aSp, r, d,
                                            spFlopsPerCycle);
                ++sweeps_done;
            }
            for (std::uint32_t i = 0; i < n; ++i)
                x[i] += d[i];
            // DP residual: one streaming DP pass, r = b - A x.
            // (Compute the numerics host-side; charge the SPE one DP
            //  matvec worth of DMA + cycles via a DP sweep over a
            //  throwaway vector with identical cost.)
            std::vector<double> cost_proxy(n, 0.0);
            co_await jacobiSweep<double>(sys, ls, aDp, p.b,
                                         cost_proxy,
                                         dpFlopsPerCycle);
            for (std::uint32_t i = 0; i < n; ++i) {
                double acc = 0.0;
                for (std::uint32_t j = 0; j < n; ++j)
                    acc += p.A[std::uint64_t(i) * n + j] * x[j];
                r[i] = p.b[i] - acc;
            }
        }
    };
    Tick t0 = sys.now();
    sys.launch(driver());
    sys.run();
    return {cfg.clock.seconds(sys.now() - t0), relError(x, p.xref),
            sweeps_done};
}

} // namespace

int
main()
{
    Problem p = makeProblem();
    std::printf("Mixed-precision iterative refinement on the Cell "
                "(Jacobi, n=%u)\n", n);
    std::printf("SP: 8 flops/cycle & 4-byte rows; DP: 4/7 flops/cycle "
                "& 8-byte rows\n\n");

    Outcome dp = solvePlain<double>(p, 60, dpFlopsPerCycle);
    Outcome sp = solvePlain<float>(p, 60, spFlopsPerCycle);
    Outcome mx = solveMixed(p, 5, 12);

    std::printf("%-28s %10s %12s %8s\n", "strategy", "sim time",
                "rel. error", "sweeps");
    std::printf("%-28s %8.2f ms %12.2e %8u\n",
                "double precision only", dp.seconds * 1e3, dp.error,
                dp.sweeps);
    std::printf("%-28s %8.2f ms %12.2e %8u  (accuracy wall)\n",
                "single precision only", sp.seconds * 1e3, sp.error,
                sp.sweeps);
    std::printf("%-28s %8.2f ms %12.2e %8u  (SP sweeps + DP "
                "correction)\n",
                "mixed precision", mx.seconds * 1e3, mx.error,
                mx.sweeps);

    std::printf("\nmixed precision reaches %s accuracy %.1fx faster "
                "than DP-only — Dongarra's 2x claim, reproduced on the "
                "bandwidth numbers this paper measured.\n",
                mx.error <= dp.error * 10 ? "comparable" : "lower",
                dp.seconds / mx.seconds);
    return 0;
}
