/**
 * @file
 * Explore the dual-blade NUMA layout the paper runs on: one XDR bank
 * behind the local MIC, one behind the 7 GB/s IOIF to the second Cell.
 *
 * The paper's observation: two SPEs together measure ~20 GB/s from
 * "memory", which exceeds one bank's ramp — proof that Linux spread the
 * pages over both banks.  This example makes that visible by pinning
 * allocations to each bank explicitly and comparing.
 */

#include <cstdio>

#include "cell/cell_system.hh"
#include "core/dma_workloads.hh"
#include "util/strings.hh"

using namespace cellbw;

namespace
{

double
measureGet(const mem::NumaPolicy &policy, unsigned spes,
           std::uint64_t bytesPerSpe, std::uint64_t seed)
{
    cell::CellConfig cfg;
    cfg.numa = policy;
    cell::CellSystem sys(cfg, seed);
    Tick t0 = sys.now();
    for (unsigned i = 0; i < spes; ++i) {
        core::StreamSpec spec;
        spec.speIndex = i;
        spec.dir = spe::DmaDir::Get;
        spec.base = sys.malloc(bytesPerSpe);
        spec.totalBytes = bytesPerSpe;
        spec.elemBytes = 16 * 1024;
        spec.lsBase = sys.spe(i).lsAlloc(64 * util::KiB);
        sys.launch(core::dmaStream(sys, spec));
    }
    sys.run();
    return sys.clock().bandwidthGBps(bytesPerSpe * spes,
                                     sys.now() - t0);
}

} // namespace

int
main()
{
    const std::uint64_t bytes = 8 * util::MiB;

    std::printf("NUMA on the dual-Cell blade: where your pages land "
                "decides your bandwidth\n");
    std::printf("(GET streams of 16 KiB DMA-elem, %s per SPE)\n\n",
                util::bytesToString(bytes).c_str());

    struct Row
    {
        const char *name;
        mem::NumaPolicy policy;
    } rows[] = {
        {"local bank only (MIC)", mem::NumaPolicy::local()},
        {"remote bank only (IOIF)", mem::NumaPolicy::remote()},
        {"interleaved 65/35 (Linux NUMA)",
         mem::NumaPolicy::interleave(0.65)},
    };

    std::printf("%-32s %10s %10s %10s\n", "placement", "1 SPE", "2 SPEs",
                "4 SPEs");
    for (const auto &row : rows) {
        double b1 = measureGet(row.policy, 1, bytes, 1);
        double b2 = measureGet(row.policy, 2, bytes, 2);
        double b4 = measureGet(row.policy, 4, bytes, 3);
        std::printf("%-32s %8.2f %10.2f %10.2f   GB/s\n", row.name, b1,
                    b2, b4);
    }

    std::printf("\nreading the table:\n");
    std::printf("  - remote-only is capped by the 7 GB/s IOIF link no "
                "matter how many SPEs pull;\n");
    std::printf("  - local-only saturates one bank (~15.5 GB/s "
                "sustained of the 16.8 ramp);\n");
    std::printf("  - the interleaved default exceeds one bank with two "
                "SPEs, the paper's 20 GB/s observation: both banks "
                "stream concurrently.\n");
    return 0;
}
