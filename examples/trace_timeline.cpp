/**
 * @file
 * Visualize *why* delayed synchronization wins (Figure 10's mechanism):
 * trace the MFC commands of an SPE pair transfer twice — waiting after
 * every DMA request, then delaying the tag wait — and print the
 * per-command timelines side by side.
 */

#include <cstdio>

#include "cell/cell_system.hh"
#include "core/dma_workloads.hh"
#include "trace/recorder.hh"
#include "util/strings.hh"

using namespace cellbw;

namespace
{

void
runTraced(unsigned syncEvery, const char *label,
          const char *chromePath = nullptr)
{
    cell::CellConfig cfg;
    cfg.affinity = cell::AffinityPolicy::Linear;
    cell::CellSystem sys(cfg, 1);
    auto &rec = sys.enableTracing();

    constexpr std::uint32_t region = 64 * 1024;
    LsAddr src_base = 0, rx_base = 0, land_base = 0;
    for (unsigned i = 0; i < 2; ++i) {
        src_base = sys.spe(i).lsAlloc(region);
        rx_base = sys.spe(i).lsAlloc(region);
        land_base = sys.spe(i).lsAlloc(region);
    }

    core::DuplexSpec d;
    d.speIndex = 0;
    d.getBase = sys.lsEa(1, src_base);
    d.putBase = sys.lsEa(1, rx_base);
    d.bytesPerDir = 128 * 1024;     // short run: keep the chart readable
    d.elemBytes = 16 * 1024;
    d.syncEvery = syncEvery;
    d.getLsBase = land_base;
    d.putLsBase = src_base;
    d.lsBytes = region;
    d.eaWindow = region;

    Tick t0 = sys.now();
    sys.launch(core::dmaDuplexStream(sys, d));
    sys.run();
    double bw = sys.clock().bandwidthGBps(2 * d.bytesPerDir,
                                          sys.now() - t0);

    std::printf("--- %s: %.2f GB/s, %zu commands, %zu EIB packets ---\n",
                label, bw, rec.dmaRecords().size(),
                rec.eibRecords().size());
    std::fputs(rec.renderDmaTimeline(68).c_str(), stdout);
    std::printf("\n");

    if (chromePath) {
        double ns_per_tick = 1e9 / cfg.clock.cpuHz;
        std::string json = rec.chromeTrace(ns_per_tick);
        if (std::FILE *f = std::fopen(chromePath, "w")) {
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("chrome trace written to %s "
                        "(load in chrome://tracing or ui.perfetto.dev)\n\n",
                        chromePath);
        } else {
            std::fprintf(stderr, "cannot write %s\n", chromePath);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("MFC command timelines for a 128 KiB SPE-pair transfer "
                "(16 KiB DMA-elem):\n\n");
    runTraced(1, "sync after every request (the naive loop)");
    // An output path argument additionally dumps the delayed-sync run
    // as a Chrome-trace file for chrome://tracing / Perfetto.
    runTraced(0, "sync once at the end (the paper's rule)",
              argc > 1 ? argv[1] : nullptr);
    std::printf("With eager sync each command runs alone: the queue "
                "drains, gaps appear, bandwidth dies.  With delayed "
                "sync the commands overlap into one solid block.\n");
    return 0;
}
