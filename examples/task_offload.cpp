/**
 * @file
 * The CellSs-style offload runtime in action: the PPE submits a batch
 * of transform tasks; SPE workers stream them through their local
 * stores.  We sweep the worker count and toggle double buffering to
 * show (a) parallel-SPE memory bandwidth scaling and (b) why
 * overlapping communication with computation is non-negotiable on this
 * machine.
 */

#include <cstdio>

#include "runtime/offload.hh"
#include "util/strings.hh"

using namespace cellbw;

namespace
{

struct Result
{
    double gbps;
    double busyFraction;
};

Result
runBatch(unsigned workers, bool doubleBuffer, Tick cyclesPerKiB,
         std::uint64_t seed)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, seed);

    runtime::OffloadParams params;
    params.workers = workers;
    params.doubleBuffer = doubleBuffer;
    runtime::OffloadRuntime rt(sys, params);

    const unsigned tasks = 32;
    const std::uint32_t bytes = 256 * 1024;
    std::vector<EffAddr> outs;
    for (unsigned t = 0; t < tasks; ++t) {
        EffAddr in = sys.malloc(bytes);
        EffAddr out = sys.malloc(bytes);
        sys.memory().store().fill(in, static_cast<std::uint8_t>(t), bytes);
        outs.push_back(out);
        rt.submit({in, out, bytes, cyclesPerKiB,
                   [](std::uint8_t *d, std::uint32_t n) {
                       for (std::uint32_t i = 0; i < n; ++i)
                           d[i] ^= 0x5A;
                   }});
    }
    rt.start();
    sys.run();

    // Verify one output end-to-end.
    std::uint8_t expect = static_cast<std::uint8_t>(7) ^ 0x5A;
    if (sys.memory().store().byteAt(outs[7]) != expect ||
        sys.memory().store().byteAt(outs[7] + bytes - 1) != expect) {
        std::fprintf(stderr, "data verification FAILED\n");
        std::exit(1);
    }

    Tick busy = 0;
    for (const auto &w : rt.stats().worker)
        busy += w.busyTicks;
    double busy_frac =
        static_cast<double>(busy) /
        (static_cast<double>(rt.stats().makespan()) * workers);
    return {rt.throughputGBps(), busy_frac};
}

} // namespace

int
main()
{
    std::printf("CellSs-style task offload: 32 tasks x 256 KiB xor "
                "transform\n\n");

    std::printf("-- memory-bound kernel (64 cycles/KiB) --\n");
    std::printf("%8s %18s %18s\n", "workers", "double-buffered",
                "single-buffered");
    for (unsigned w : {1u, 2u, 4u, 8u}) {
        Result db = runBatch(w, true, 64, 10 + w);
        Result sb = runBatch(w, false, 64, 10 + w);
        std::printf("%8u %12.2f GB/s %12.2f GB/s\n", w, db.gbps,
                    sb.gbps);
    }

    std::printf("\n-- compute-bound kernel (2048 cycles/KiB) --\n");
    std::printf("%8s %18s %18s\n", "workers", "double-buffered",
                "single-buffered");
    for (unsigned w : {1u, 2u, 4u, 8u}) {
        Result db = runBatch(w, true, 2048, 20 + w);
        Result sb = runBatch(w, false, 2048, 20 + w);
        std::printf("%8u %12.2f GB/s %12.2f GB/s\n", w, db.gbps,
                    sb.gbps);
    }

    std::printf("\nDouble buffering hides the DMA behind the compute; "
                "without it every chunk pays transfer + compute "
                "serially (the paper: \"double buffering ... will "
                "always help performance\").\n");
    return 0;
}
