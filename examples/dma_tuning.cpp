/**
 * @file
 * Interactive-style walkthrough of the paper's DMA programming rules:
 * starting from a naive SPE-to-SPE transfer loop, apply one rule at a
 * time and watch the bandwidth recover.
 *
 *   naive        : 512 B DMA-elem chunks, wait after every request
 *   + delay sync : same chunks, tag wait only at the end
 *   + big elems  : 4 KiB DMA-elem chunks, delayed sync
 *   + DMA lists  : back to 512 B chunks but as one list command per
 *                  32 KiB — small chunks with peak bandwidth
 */

#include <cstdio>

#include "cell/cell_system.hh"
#include "core/advisor.hh"
#include "core/dma_workloads.hh"
#include "util/strings.hh"

using namespace cellbw;

namespace
{

struct Step
{
    const char *name;
    std::uint32_t elemBytes;
    bool useList;
    unsigned syncEvery;
};

double
runStep(const Step &step, std::uint64_t bytes, std::uint64_t seed)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, seed);
    constexpr std::uint32_t region = 64 * 1024;

    // Identical LS layout on both SPEs (initiator and passive target).
    LsAddr src_base = 0, rx_base = 0, land_base = 0;
    for (unsigned i = 0; i < 2; ++i) {
        src_base = sys.spe(i).lsAlloc(region);
        rx_base = sys.spe(i).lsAlloc(region);
        land_base = sys.spe(i).lsAlloc(region);
    }

    core::DuplexSpec d;
    d.speIndex = 0;
    d.getBase = sys.lsEa(1, src_base);
    d.putBase = sys.lsEa(1, rx_base);
    d.bytesPerDir = bytes;
    d.elemBytes = step.elemBytes;
    d.useList = step.useList;
    d.syncEvery = step.syncEvery;
    d.getLsBase = land_base;
    d.putLsBase = src_base;
    d.lsBytes = region;
    d.eaWindow = region;

    Tick t0 = sys.now();
    sys.launch(core::dmaDuplexStream(sys, d));
    sys.run();
    return cfg.clock.bandwidthGBps(2 * bytes, sys.now() - t0);
}

} // namespace

int
main()
{
    const std::uint64_t bytes = 8 * util::MiB;
    const Step steps[] = {
        {"naive (512B elems, sync each)", 512, false, 1},
        {"+ delayed synchronization", 512, false, 0},
        {"+ 4KiB elements", 4096, false, 0},
        {"+ DMA lists (512B elements)", 512, true, 0},
    };

    std::printf("Tuning an SPE pair transfer, %s per direction "
                "(peak 33.6 GB/s):\n\n",
                util::bytesToString(bytes).c_str());
    double naive = 0.0;
    for (const auto &s : steps) {
        double bw = runStep(s, bytes, 42);
        if (naive == 0.0)
            naive = bw;
        std::printf("  %-34s %6.2f GB/s  (%5.2fx naive, %3.0f%% of "
                    "peak)\n",
                    s.name, bw, bw / naive, 100.0 * bw / 33.6);
    }

    std::printf("\nWhat the advisor says about the naive plan:\n");
    core::DmaPlan plan;
    plan.elemBytes = 512;
    plan.useList = false;
    plan.syncEvery = 1;
    plan.speToSpe = true;
    std::printf("%s", core::renderAdvice(core::advise(plan)).c_str());

    std::printf("\n...and about the tuned plan:\n");
    plan.useList = true;
    plan.syncEvery = 0;
    std::printf("%s", core::renderAdvice(core::advise(plan)).c_str());
    return 0;
}
