/**
 * @file
 * MPI-style programming on the Cell, end to end: a 1-D heat-diffusion
 * stencil distributed over 8 SPE ranks with halo exchange, plus an
 * allreduce to track the residual — the "applications using MPI ...
 * programming models" the paper's abstract has in mind.
 *
 * Each rank owns a slice of the rod in its local store; every step it
 * swaps one-element halos with its neighbors (eager messages: pure
 * latency), updates its interior (SPU compute), and every few steps the
 * ranks agree on the global residual (ring allreduce).
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "msg/communicator.hh"
#include "util/strings.hh"

using namespace cellbw;

namespace
{

constexpr unsigned ranks = 8;
constexpr std::uint32_t cellsPerRank = 4096;
constexpr unsigned steps = 50;
constexpr float alpha = 0.25f;

struct RankState
{
    LsAddr field;       // cellsPerRank floats
    LsAddr next;        // scratch for the update
    LsAddr haloLeft;    // 16-byte halo landing slots
    LsAddr haloRight;
    LsAddr reduceBuf;   // 4 floats for the residual allreduce
};

sim::Task
rankProgram(cell::CellSystem &sys, msg::Communicator &comm, unsigned r,
            RankState st, double *residual_out)
{
    auto &spe = sys.spe(r);
    std::vector<float> u(cellsPerRank), un(cellsPerRank);
    spe.ls().read(st.field, u.data(), cellsPerRank * 4);

    double residual = 0.0;
    for (unsigned step = 0; step < steps; ++step) {
        // --- halo exchange with neighbors (16-byte eager messages) ---
        float edge[4] = {u[cellsPerRank - 1], 0, 0, 0};
        spe.ls().write(st.haloRight, edge, 16);
        float edge_l[4] = {u[0], 0, 0, 0};
        spe.ls().write(st.haloLeft, edge_l, 16);

        if (r + 1 < ranks)
            co_await comm.send(r, r + 1, st.haloRight, 16);
        if (r > 0)
            co_await comm.send(r, r - 1, st.haloLeft, 16);

        float left = 0.0f, right = 0.0f;    // boundary condition
        if (r > 0) {
            co_await comm.recv(r, r - 1, st.haloLeft, 16, nullptr);
            float tmp[4];
            spe.ls().read(st.haloLeft, tmp, 16);
            left = tmp[0];
        }
        if (r + 1 < ranks) {
            co_await comm.recv(r, r + 1, st.haloRight, 16, nullptr);
            float tmp[4];
            spe.ls().read(st.haloRight, tmp, 16);
            right = tmp[0];
        }

        // --- interior update (SIMD compute: ~1 cell per cycle) ---
        residual = 0.0;
        for (std::uint32_t i = 0; i < cellsPerRank; ++i) {
            float l = (i == 0) ? left : u[i - 1];
            float rr = (i == cellsPerRank - 1) ? right : u[i + 1];
            un[i] = u[i] + alpha * (l - 2.0f * u[i] + rr);
            residual += std::fabs(un[i] - u[i]);
        }
        std::swap(u, un);
        co_await spe.spu().cycles(cellsPerRank);

        // --- global residual every 10 steps ---
        if (step % 10 == 9) {
            float red[4] = {static_cast<float>(residual), 0, 0, 0};
            spe.ls().write(st.reduceBuf, red, 16);
            co_await comm.allreduceSum(r, st.reduceBuf, 4);
            spe.ls().read(st.reduceBuf, red, 16);
            if (r == 0) {
                std::printf("  step %2u: global residual %.4f\n",
                            step + 1, red[0]);
            }
        }
        co_await comm.barrier(r);
    }
    spe.ls().write(st.field, u.data(), cellsPerRank * 4);
    *residual_out = residual;
}

} // namespace

int
main()
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    msg::Communicator comm(sys, ranks);

    std::printf("1-D heat diffusion on %u SPE ranks x %u cells, %u "
                "steps, halo exchange + allreduce\n\n",
                ranks, cellsPerRank, steps);

    std::vector<RankState> st(ranks);
    std::vector<double> residuals(ranks, 0.0);
    for (unsigned r = 0; r < ranks; ++r) {
        auto &spe = sys.spe(r);
        st[r].field = spe.lsAlloc(cellsPerRank * 4, 16);
        st[r].next = spe.lsAlloc(cellsPerRank * 4, 16);
        st[r].haloLeft = spe.lsAlloc(16, 16);
        st[r].haloRight = spe.lsAlloc(16, 16);
        st[r].reduceBuf = spe.lsAlloc(16, 16);
        // Initial condition: a hot spot on rank 3.
        std::vector<float> u(cellsPerRank, 0.0f);
        if (r == 3)
            for (std::uint32_t i = 1800; i < 2300; ++i)
                u[i] = 100.0f;
        spe.ls().write(st[r].field, u.data(), cellsPerRank * 4);
    }

    Tick t0 = sys.now();
    for (unsigned r = 0; r < ranks; ++r)
        sys.launch(rankProgram(sys, comm, r, st[r], &residuals[r]));
    sys.run();
    double secs = cfg.clock.seconds(sys.now() - t0);

    // The hot spot has begun diffusing into rank 2 and rank 4.
    float probe[1];
    sys.spe(3).ls().read(st[3].field, probe, 4);
    std::printf("\nsimulated %u steps in %.1f us of Cell time "
                "(%.2f us/step)\n", steps, secs * 1e6,
                secs * 1e6 / steps);
    std::printf("messages: %llu eager, %llu rendezvous, %s moved\n",
                (unsigned long long)comm.eagerMessages(),
                (unsigned long long)comm.rendezvousMessages(),
                util::bytesToString(comm.bytesSent()).c_str());
    std::printf("halo latency dominates: each step exchanges 16-byte "
                "messages whose cost is the control notification, not "
                "bandwidth — exactly the regime the paper's DMA-list "
                "and packing rules target.\n");
    return 0;
}
