/**
 * @file
 * Quickstart: boot a simulated Cell blade, run one DMA from an SPE, and
 * measure a few sustained bandwidths the way the paper does.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "cell/cell_system.hh"
#include "core/experiments.hh"
#include "sim/task.hh"
#include "util/strings.hh"

using namespace cellbw;

namespace
{

/**
 * A minimal SPU program, written like Cell SDK code: GET a buffer from
 * main memory into the local store, wait for the tag, report timing
 * through the outbound mailbox.
 */
sim::Task
helloDma(cell::CellSystem &sys, unsigned speIdx, EffAddr src,
         std::uint32_t bytes)
{
    auto &spe = sys.spe(speIdx);
    LsAddr buf = spe.lsAlloc(bytes);

    std::uint64_t t0 = spe.spu().timebase();
    for (std::uint32_t off = 0; off < bytes; off += 16 * 1024) {
        co_await spe.mfc().queueSpace();
        spe.mfc().get(buf + off, src + off, 16 * 1024, /*tag=*/0);
    }
    co_await spe.mfc().tagWait(1u << 0);
    std::uint64_t t1 = spe.spu().timebase();

    co_await spe.outboundMailbox().write(
        static_cast<std::uint32_t>(t1 - t0));
}

} // namespace

int
main()
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, /*placementSeed=*/1);

    std::printf("cellbw quickstart: simulated Cell Broadband Engine\n");
    std::printf("  CPU %.1f GHz, EIB ramp peak %.1f GB/s, LS peak %.1f "
                "GB/s\n",
                cfg.clock.cpuHz / 1e9, cfg.rampPeakGBps(),
                cfg.lsPeakGBps());
    std::printf("  SPE placement (logical->physical): %s\n\n",
                sys.placementString().c_str());

    // --- One hand-rolled DMA program. -------------------------------
    constexpr std::uint32_t bytes = 128 * 1024;
    EffAddr src = sys.malloc(bytes);
    sys.memory().store().fill(src, 0xAB, bytes);

    Tick t0 = sys.now();
    sys.launch(helloDma(sys, 0, src, bytes));
    sys.run();

    std::uint32_t decrementer_ticks = 0;
    if (!sys.spe(0).outboundMailbox().tryRead(decrementer_ticks))
        std::printf("  (no mailbox message?)\n");

    double secs = cfg.clock.seconds(sys.now() - t0);
    std::printf("GET of %s from main memory on SPE0:\n",
                util::bytesToString(bytes).c_str());
    std::printf("  %.2f us simulated, %.2f GB/s, %u decrementer ticks\n",
                secs * 1e6, bytes / secs / 1e9, decrementer_ticks);
    std::printf("  first byte landed in LS: 0x%02X (expected 0xAB)\n\n",
                sys.spe(0).ls().byteAt(0));

    // --- The canned experiments. -------------------------------------
    {
        cell::CellSystem s2(cfg, 2);
        core::SpeMemConfig mc;
        mc.numSpes = 2;
        mc.op = core::DmaOp::Get;
        double bw = core::runSpeMem(s2, mc);
        std::printf("2 SPEs streaming GETs from memory: %.2f GB/s\n", bw);
    }
    {
        cell::CellSystem s3(cfg, 3);
        core::SpeSpeConfig sc;
        sc.numSpes = 2;
        sc.elemBytes = 4096;
        double bw = core::runSpeSpe(s3, sc);
        std::printf("SPE pair, concurrent GET+PUT, 4 KiB elements: "
                    "%.2f GB/s (peak %.1f)\n",
                    bw, cfg.pairPeakGBps());
    }
    return 0;
}
