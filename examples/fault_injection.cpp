/**
 * @file
 * The recoverable MFC fault model in action: we run the same offload
 * batch under increasing injected DMA fault rates and watch the
 * runtime's retry-with-backoff path repair every drop and corruption.
 * Checked mode (CellConfig::verify) cross-checks every completed
 * transfer against the backing store, so "repaired" is proven
 * byte-exact, not assumed.  The fault sequence is drawn from a seeded
 * per-MFC RNG: same seed, same faults, same makespan.
 */

#include <cstdio>

#include "runtime/offload.hh"
#include "util/strings.hh"

using namespace cellbw;

namespace
{

struct Result
{
    std::uint64_t injected;
    std::uint64_t faults;
    std::uint64_t retries;
    double gbps;
    double seconds;
    cell::CellSystem::VerifyStats verify;
};

Result
runBatch(double dropRate, double corruptRate, std::uint64_t faultSeed)
{
    cell::CellConfig cfg;
    cfg.spe.mfc.faults.dropRate = dropRate;
    cfg.spe.mfc.faults.corruptRate = corruptRate;
    cfg.spe.mfc.faults.seed = faultSeed;
    cfg.verify = true;                      // checked mode: every
                                            // transfer cross-checked
    cell::CellSystem sys(cfg, /*placementSeed=*/1);

    runtime::OffloadParams params;
    params.workers = 4;
    runtime::OffloadRuntime rt(sys, params);

    const unsigned tasks = 24;
    const std::uint32_t bytes = 128 * 1024;
    std::vector<EffAddr> outs;
    for (unsigned t = 0; t < tasks; ++t) {
        EffAddr in = sys.malloc(bytes);
        EffAddr out = sys.malloc(bytes);
        sys.memory().store().fill(in, static_cast<std::uint8_t>(t + 1),
                                  bytes);
        outs.push_back(out);
        rt.submit({in, out, bytes, 64,
                   [](std::uint8_t *d, std::uint32_t n) {
                       for (std::uint32_t i = 0; i < n; ++i)
                           d[i] ^= 0x5A;
                   }});
    }
    rt.start();
    sys.run();

    // Every output byte must be correct despite the injected faults.
    for (unsigned t = 0; t < tasks; ++t) {
        auto expect = static_cast<std::uint8_t>((t + 1) ^ 0x5A);
        if (sys.memory().store().byteAt(outs[t]) != expect ||
            sys.memory().store().byteAt(outs[t] + bytes - 1) != expect) {
            std::fprintf(stderr, "task %u output corrupted\n", t);
            std::exit(1);
        }
    }

    Result r{};
    for (unsigned i = 0; i < sys.numSpes(); ++i) {
        const auto &mfc = sys.spe(i).mfc();
        r.injected += mfc.dropsInjected() + mfc.corruptionsInjected() +
                      mfc.delaysInjected();
    }
    for (const auto &w : rt.stats().worker) {
        r.faults += w.faults;
        r.retries += w.retries;
    }
    r.gbps = rt.throughputGBps();
    r.seconds = sys.seconds();
    r.verify = sys.verifyStats();
    return r;
}

} // namespace

int
main()
{
    std::printf("Recoverable MFC faults: 24 tasks x 128 KiB, 4 workers, "
                "checked mode on\n\n");
    std::printf("%12s %9s %7s %8s %10s %10s %8s\n", "drop/corrupt",
                "injected", "faults", "retries", "checked", "diverge",
                "GB/s");

    for (double rate : {0.0, 0.01, 0.03, 0.10}) {
        Result r = runBatch(rate, rate, /*faultSeed=*/7);
        std::printf("%5.0f%%/%4.0f%% %9llu %7llu %8llu %10llu %10llu "
                    "%8.2f\n",
                    rate * 100, rate * 100,
                    static_cast<unsigned long long>(r.injected),
                    static_cast<unsigned long long>(r.faults),
                    static_cast<unsigned long long>(r.retries),
                    static_cast<unsigned long long>(
                        r.verify.transfersChecked),
                    static_cast<unsigned long long>(
                        r.verify.divergences),
                    r.gbps);
        if (r.verify.divergences != 0) {
            std::fprintf(stderr, "verify FAILED: %s\n",
                         r.verify.firstDivergence.c_str());
            std::exit(1);
        }
    }

    // Same fault seed, same fault sequence — to the tick.
    Result a = runBatch(0.05, 0.05, 21);
    Result b = runBatch(0.05, 0.05, 21);
    Result c = runBatch(0.05, 0.05, 22);
    std::printf("\nseed 21 twice: %llu/%llu injected, %.3f/%.3f us "
                "(%s)\n",
                static_cast<unsigned long long>(a.injected),
                static_cast<unsigned long long>(b.injected),
                a.seconds * 1e6, b.seconds * 1e6,
                (a.injected == b.injected && a.seconds == b.seconds)
                    ? "identical"
                    : "MISMATCH");
    std::printf("seed 22:       %llu injected, %.3f us (different "
                "draw)\n",
                static_cast<unsigned long long>(c.injected),
                c.seconds * 1e6);

    std::printf("\nEvery dropped or corrupted DMA surfaced as a per-tag "
                "MFC error, was re-issued with simulated-time backoff, "
                "and landed byte-exact — bandwidth degrades gracefully "
                "instead of the run aborting.\n");
    return 0;
}
