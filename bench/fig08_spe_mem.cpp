/**
 * @file
 * Figure 8: SPE-to-memory DMA-elem bandwidth — GET, PUT and GET+PUT
 * (memory copy) for 1/2/4/8 active SPEs over element sizes 128 B-16 KB.
 *
 * Paper shapes to reproduce: a single SPE sustains ~10 GB/s regardless
 * of element size (60% of one bank's ramp for GET/PUT, 30% of the
 * combined peak for copy); two SPEs roughly double that, exceeding what
 * one bank can deliver (both banks are in use via MIC + IOIF); four
 * SPEs gain a little more; eight SPEs *lose* bandwidth to EIB
 * saturation.
 */

#include "bench_common.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Figure 8", "SPE to main memory, DMA-elem, 1-8 SPEs");

    const auto elems = core::elemSweepSizes();
    const core::DmaOp ops[] = {core::DmaOp::Get, core::DmaOp::Put,
                               core::DmaOp::Copy};
    const unsigned spe_counts[] = {1, 2, 4, 8};

    std::vector<std::string> xlabels;
    for (auto e : elems)
        xlabels.push_back(core::elemLabel(e));

    for (auto op : ops) {
        stats::Table table({"op", "spes", "elem", "GB/s(mean)",
                            "GB/s(min)", "GB/s(max)"});
        stats::SeriesChart chart(
            util::format("Fig 8%c: mem %s, mean GB/s vs element size",
                         op == core::DmaOp::Get ? 'a'
                         : op == core::DmaOp::Put ? 'b' : 'c',
                         core::toString(op)),
            xlabels);
        for (unsigned n : spe_counts) {
            std::vector<double> series;
            for (auto e : elems) {
                core::SpeMemConfig mc;
                mc.numSpes = n;
                mc.elemBytes = e;
                mc.op = op;
                mc.bytesPerSpe = b.bytesPerSpe;
                auto d = core::repeatRuns(b.cfg, b.repeat,
                                          [&](cell::CellSystem &sys) {
                    return core::runSpeMem(sys, mc);
                }, b.par);
                series.push_back(d.mean());
                table.addRow({core::toString(op), std::to_string(n),
                              core::elemLabel(e),
                              stats::Table::num(d.mean()),
                              stats::Table::num(d.min()),
                              stats::Table::num(d.max())});
            }
            chart.addSeries(util::format("%u SPE%s", n, n > 1 ? "s" : ""),
                            series);
        }
        b.emit(table);
        b.print(chart.render());
        b.printf("\n");
    }
    b.printf("reference: one bank ramp peak %.1f GB/s, MIC+IOIF "
             "aggregate %.1f GB/s\n",
             b.cfg.rampPeakGBps(), b.cfg.rampPeakGBps() + 7.0);
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(fig08_spe_mem, "Fig. 8",
                           "SPE<->memory DMA-elem bandwidth "
                           "(paper Fig. 8)",
                           run)
