/**
 * @file
 * Figure 3: PPE to the 32 KB L1 cache — load/store/copy for 1 and 2
 * threads, 1-16 byte elements.
 *
 * Paper shapes: loads reach half the 16 B/cycle link peak (~16.8 GB/s)
 * for >= 8 B elements, with no further gain at 16 B; bandwidth halves
 * with each halving of the element size; stores trail loads (limited by
 * the store queue toward the write-through L2); copy reaches ~half peak
 * at 16 B with a clear 16 B-over-8 B advantage.
 */

#include "ppe_figure.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    return bench::runPpeFigure(b, "Figure 3", "PPE -> L1 (32 KB)",
                               core::ppeL1Config);
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(fig03_ppe_l1, "Fig. 3",
                           "PPE to L1 load/store/copy (paper Fig. 3)",
                           run)
