/**
 * @file
 * Shared scaffolding for the figure-reproduction bench binaries.
 *
 * Every bench:
 *   - exposes the machine's structural knobs (cell::CellConfig flags)
 *     plus --runs/--seed/--csv/--quick/--bytes-per-spe;
 *   - prints a header identifying the paper figure it regenerates;
 *   - prints the same rows/series the figure reports, as a table, an
 *     ASCII chart of the shape, and optionally CSV.
 */

#ifndef CELLBW_BENCH_BENCH_COMMON_HH
#define CELLBW_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "cell/config.hh"
#include "core/json_report.hh"
#include "core/report.hh"
#include "sim/logging.hh"
#include "core/runner.hh"
#include "stats/ascii_chart.hh"
#include "stats/table.hh"
#include "util/options.hh"
#include "util/strings.hh"

namespace cellbw::bench
{

struct BenchSetup
{
    util::Options opts;
    cell::CellConfig cfg;
    core::RepeatSpec repeat;
    core::ParallelSpec par;
    std::uint64_t bytesPerSpe = 0;
    bool csv = false;

    /** --json target path; empty when no JSON report was requested. */
    std::string jsonPath;
    core::JsonReport json;

    BenchSetup(std::string prog, std::string description)
        : opts(std::move(prog), std::move(description))
    {
        cell::CellConfig::registerOptions(opts);
        opts.addUint("runs", 10,
                     "placement-randomized repetitions per point");
        opts.addUint("seed", 42, "base placement seed");
        opts.addUint("jobs", 0,
                     "worker threads for the seed sweep (0 = one per "
                     "hardware thread; results are identical for any "
                     "value)");
        opts.addBool("csv", false, "also emit CSV after the table");
        opts.addString("json", "",
                       "write a machine-readable JSON report (config, "
                       "per-point results, metrics) to this file");
        opts.addBool("quick", false, "fewer runs and bytes (CI mode)");
        opts.addBytes("bytes-per-spe", 4 * util::MiB,
                      "bytes each SPE/thread/stream moves (weak scaling; "
                      "the paper uses 32 MiB)");
    }

    /** @return false when the program should exit (help/error). */
    bool
    parse(int argc, const char *const *argv)
    {
        if (!opts.parse(argc, argv))
            return false;
        // Cross-flag config validation (e.g. fault rates summing past
        // 1) throws FatalError; report it like any other bad flag
        // instead of letting it terminate the process.
        try {
            cfg = cell::CellConfig::fromOptions(opts);
        } catch (const sim::FatalError &e) {
            std::fprintf(stderr, "%s: %s\n", opts.prog().c_str(),
                         e.what());
            return false;
        }
        repeat.runs = static_cast<unsigned>(opts.getUint("runs"));
        repeat.seed = opts.getUint("seed");
        par.jobs = static_cast<unsigned>(opts.getUint("jobs"));
        bytesPerSpe = opts.getBytes("bytes-per-spe");
        csv = opts.getBool("csv");
        jsonPath = opts.getString("json");
        if (!jsonPath.empty())
            repeat.metrics = &json.metrics();
        if (opts.getBool("quick")) {
            repeat.runs = std::min(repeat.runs, 3u);
            bytesPerSpe = std::min<std::uint64_t>(bytesPerSpe,
                                                  util::MiB);
        }
        return true;
    }

    void
    header(const char *figure, const char *what)
    {
        json.setBench(opts.prog(), figure, what);
        std::printf("== %s: %s ==\n", figure, what);
        std::printf("   machine: %.1f GHz Cell blade, %u EIB rings, "
                    "ramp peak %.1f GB/s, %u runs/point, %s per "
                    "SPE/stream\n\n",
                    cfg.clock.cpuHz / 1e9, cfg.eib.numRings,
                    cfg.rampPeakGBps(), repeat.runs,
                    util::bytesToString(bytesPerSpe).c_str());
    }

    void
    emit(const stats::Table &table, const std::string &name = "results")
    {
        std::fputs(table.render().c_str(), stdout);
        if (csv) {
            std::printf("\n-- CSV --\n%s", table.renderCsv().c_str());
        }
        std::printf("\n");
        if (!jsonPath.empty())
            json.addTable(name, table);
    }

    /**
     * Write the --json report, if one was requested.  Call once, after
     * the last emit().  @return the process exit code (0, or 1 when the
     * report could not be written).
     */
    int
    finish()
    {
        if (jsonPath.empty())
            return 0;
        json.setConfig(opts);
        if (!json.writeFile(jsonPath)) {
            std::fprintf(stderr, "%s: cannot write %s\n",
                         opts.prog().c_str(), jsonPath.c_str());
            return 1;
        }
        std::printf("json report written to %s\n", jsonPath.c_str());
        return 0;
    }
};

} // namespace cellbw::bench

#endif // CELLBW_BENCH_BENCH_COMMON_HH
