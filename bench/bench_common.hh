/**
 * @file
 * Shared includes for the figure-reproduction experiment TUs.
 *
 * The per-bench lifecycle (flag parsing, header, table/CSV/JSON
 * emission) lives in core::ExperimentContext, owned by the
 * core::ExperimentRegistry: each TU here defines a body
 * `int run(core::ExperimentContext &b)` and registers it with
 * CELLBW_REGISTER_EXPERIMENT.  The `cellbw` driver and the legacy
 * per-figure shim binaries both execute registered experiments through
 * core::runExperimentCli(), which is what keeps their output
 * byte-identical.
 *
 * Bodies print through the context (b.print / b.printf), never
 * directly to stdout, so `cellbw suite` can run them quietly.
 */

#ifndef CELLBW_BENCH_BENCH_COMMON_HH
#define CELLBW_BENCH_BENCH_COMMON_HH

#include <string>

#include "cell/config.hh"
#include "core/experiment_context.hh"
#include "core/experiment_registry.hh"
#include "core/json_report.hh"
#include "core/report.hh"
#include "core/runner.hh"
#include "sim/logging.hh"
#include "stats/ascii_chart.hh"
#include "stats/table.hh"
#include "util/options.hh"
#include "util/strings.hh"

#endif // CELLBW_BENCH_BENCH_COMMON_HH
