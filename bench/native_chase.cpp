/**
 * @file
 * Pointer-chase load-to-use latency on the host memory hierarchy
 * (native backend; ROADMAP item 1).
 *
 * A seeded random cyclic permutation per working set — every load
 * depends on the previous one, so prefetchers cannot hide the memory
 * level — walked for a fixed number of dependent loads per repetition.
 * The working-set sweep (capped by --bytes-per-spe) steps the chase
 * through the host cache levels the way the paper's figures step Cell
 * through LS/L2/memory.  Validation checks the ring is one full cycle
 * and that the timed walk ended exactly where an untimed reference
 * walk says it must; per-point statistics are median/p95/stddev/CV of
 * ns per access.
 */

#include <algorithm>
#include <vector>

#include "bench_common.hh"
#include "native/kernels.hh"

using namespace cellbw;

namespace
{

/** Working-set sweep (ring bytes), stepping 16 KiB..cap by 4x. */
std::vector<std::uint64_t>
sizeSweep(std::uint64_t maxBytes)
{
    std::vector<std::uint64_t> sizes;
    const std::uint64_t cap = std::max<std::uint64_t>(
        maxBytes, 16 * util::KiB);
    for (std::uint64_t s = 16 * util::KiB; s < cap; s *= 4)
        sizes.push_back(s);
    sizes.push_back(cap);
    return sizes;
}

int
run(core::ExperimentContext &b)
{
    b.header("Native C",
             "pointer-chase load-to-use latency on the host memory "
             "hierarchy");

    stats::Table table({"bytes", "ns/access(median)", "ns/access(p95)",
                        "ns/access(stddev)", "cv(%)", "checksum"});
    bool allOk = true;
    for (std::uint64_t bytes : sizeSweep(b.bytesPerSpe)) {
        const std::size_t elems = static_cast<std::size_t>(
            bytes / sizeof(std::uint32_t));
        native::ChaseRing ring(elems, b.repeat.seed);
        // Enough dependent loads to swamp timer granularity, bounded so
        // large rings stay quick.
        const std::uint64_t steps =
            std::max<std::uint64_t>(2 * elems, 1u << 18);

        native::CheckResult check = ring.validate();
        stats::Distribution d;
        for (unsigned r = 0; check.ok && r < b.repeat.warmup; ++r) {
            std::size_t end = 0;
            ring.runChase(steps, end);
        }
        for (unsigned r = 0; check.ok && r < b.repeat.runs; ++r) {
            std::size_t end = 0;
            double secs = ring.runChase(steps, end);
            if (end != ring.expectedFinal(steps)) {
                check.ok = false;
                check.firstBadIndex = end;
                check.expected = static_cast<double>(
                    ring.expectedFinal(steps));
                check.got = static_cast<double>(end);
                break;
            }
            d.add(secs * 1e9 / static_cast<double>(steps));
        }
        allOk = allOk && check.ok;
        table.addRow({std::to_string(bytes),
                      stats::Table::num(d.median()),
                      stats::Table::num(d.p95()),
                      stats::Table::num(d.stddev()),
                      stats::Table::num(d.cv()),
                      check.describe()});
    }
    b.emit(table, "chase");

    if (!allOk) {
        b.printf("CHECKSUM FAILURE: at least one ring failed "
                 "validation (see the checksum column)\n");
        b.finish();
        return 1;
    }
    b.printf("host measurement: %u timed + %u warmup walks per point; "
             "gate with `cellbw compare --tol`, not bit-identity\n",
             b.repeat.runs, b.repeat.warmup);
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(native_chase, "Native C",
                           "pointer-chase load-to-use latency on the "
                           "host memory hierarchy",
                           run, core::Backend::Native)
