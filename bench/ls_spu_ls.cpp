/**
 * @file
 * Section 4.2.2: SPU load/store bandwidth against its own Local Store
 * (the paper reports the numbers in prose; no figure).
 *
 * Paper shapes: the SPU moves one 16-byte quadword per cycle, so peak
 * is 33.6 GB/s and is *reached* for 16 B accesses; every smaller
 * element still transfers a quadword plus rotate/mask overhead, so
 * vectorization is "especially critical in the SPEs".  No OS or other
 * threads interfere — SPUs run user code only.
 */

#include "bench_common.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Section 4.2.2", "SPU load/store to its 256 KB local store");

    const auto elems = core::ppeElemSizes();
    const ppe::MemOp ops[] = {ppe::MemOp::Load, ppe::MemOp::Store,
                              ppe::MemOp::Copy};

    stats::Table table({"op", "elem", "GB/s"});
    stats::BarChart chart("SPU<->LS bandwidth (peak 33.6 GB/s)", 48);
    chart.setScaleMax(b.cfg.lsPeakGBps());
    for (auto op : ops) {
        for (auto e : elems) {
            core::SpuLsConfig lc;
            lc.elemSize = e;
            lc.op = op;
            lc.totalBytes = b.bytesPerSpe;
            core::RepeatSpec once{1, b.repeat.seed};
            auto d = core::repeatRuns(b.cfg, once,
                                      [&](cell::CellSystem &sys) {
                return core::runSpuLs(sys, lc);
            }, b.par);
            table.addRow({core::toString(op), util::format("%uB", e),
                          stats::Table::num(d.mean())});
            chart.add(util::format("%s %2uB", core::toString(op), e),
                      d.mean());
        }
    }
    b.emit(table);
    b.print(chart.render());
    b.printf("\nreference: LS port peak %.1f GB/s (16 B per CPU "
             "cycle)\n", b.cfg.lsPeakGBps());
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(ls_spu_ls, "Sec. 4.2.2",
                           "SPU <-> Local Store load/store bandwidth "
                           "(paper Sec. 4.2.2)",
                           run)
