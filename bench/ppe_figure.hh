/**
 * @file
 * Shared driver for Figures 3, 4 and 6: PPE load/store/copy bandwidth
 * against one level of the hierarchy, for 1 and 2 SMT threads and
 * element sizes 1-16 bytes.
 */

#ifndef CELLBW_BENCH_PPE_FIGURE_HH
#define CELLBW_BENCH_PPE_FIGURE_HH

#include <functional>

#include "bench_common.hh"
#include "core/experiments.hh"

namespace cellbw::bench
{

using PpeConfigFactory = std::function<core::PpeStreamConfig(
    unsigned threads, unsigned elem, ppe::MemOp op)>;

inline int
runPpeFigure(core::ExperimentContext &b, const char *figure,
             const char *level, const PpeConfigFactory &factory)
{
    b.header(figure, level);

    const auto elems = core::ppeElemSizes();
    const ppe::MemOp ops[] = {ppe::MemOp::Load, ppe::MemOp::Store,
                              ppe::MemOp::Copy};

    std::vector<std::string> xlabels;
    for (auto e : elems)
        xlabels.push_back(util::format("%uB", e));

    for (auto op : ops) {
        stats::Table table({"op", "threads", "elem", "GB/s"});
        stats::SeriesChart chart(
            util::format("%s %s: GB/s vs element size", level,
                         core::toString(op)),
            xlabels);
        for (unsigned threads = 1; threads <= 2; ++threads) {
            std::vector<double> series;
            for (auto e : elems) {
                auto cfg = factory(threads, e, op);
                cfg.totalBytes = b.bytesPerSpe;
                // PPE runs are deterministic (no SPE placement): one
                // run suffices.
                core::RepeatSpec once{1, b.repeat.seed};
                auto d = core::repeatRuns(b.cfg, once,
                                          [&](cell::CellSystem &sys) {
                    return core::runPpeStream(sys, cfg);
                }, b.par);
                series.push_back(d.mean());
                table.addRow({core::toString(op),
                              std::to_string(threads),
                              util::format("%uB", e),
                              stats::Table::num(d.mean())});
            }
            chart.addSeries(util::format("%u thread%s", threads,
                                         threads > 1 ? "s" : ""),
                            series);
        }
        b.emit(table);
        b.print(chart.render());
        b.printf("\n");
    }
    b.printf("reference: PPU<->L1 link peak %.1f GB/s\n",
             16.0 * b.cfg.clock.cpuHz / 1e9);
    return b.finish();
}

} // namespace cellbw::bench

#endif // CELLBW_BENCH_PPE_FIGURE_HH
