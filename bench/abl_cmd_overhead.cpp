/**
 * @file
 * Ablation B: where does the DMA-elem knee move as the MFC's
 * per-command issue overhead changes?
 *
 * The paper finds DMA-elem bandwidth collapses below 1024-byte elements
 * (Figs. 10/12/15).  In the model the knee sits where the per-command
 * issue occupancy equals the element's data time on the ring; sweeping
 * the overhead moves it predictably, which is the design insight a
 * runtime like CellSs would use to pick list thresholds.
 */

#include "bench_common.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Ablation B", "SPE pair DMA-elem vs issue overhead");

    const auto elems = core::elemSweepSizes();
    std::vector<std::string> xlabels;
    for (auto e : elems)
        xlabels.push_back(core::elemLabel(e));

    stats::Table table({"overhead(bus cyc)", "elem", "GB/s"});
    stats::SeriesChart chart("pair GET+PUT GB/s vs element size, by "
                             "issue overhead", xlabels);
    for (Tick overhead : {Tick(6), Tick(12), Tick(24), Tick(48),
                          Tick(96)}) {
        auto cfg = b.cfg;
        cfg.spe.mfc.elemOverheadBus = overhead;
        std::vector<double> series;
        for (auto e : elems) {
            core::SpeSpeConfig sc;
            sc.numSpes = 2;
            sc.elemBytes = e;
            sc.bytesPerStream = b.bytesPerSpe;
            auto d = core::repeatRuns(cfg, b.repeat,
                                      [&](cell::CellSystem &sys) {
                return core::runSpeSpe(sys, sc);
            }, b.par);
            series.push_back(d.mean());
            table.addRow({std::to_string(overhead), core::elemLabel(e),
                          stats::Table::num(d.mean())});
        }
        chart.addSeries(util::format("%llu bc",
                                     (unsigned long long)overhead),
                        series);
    }
    b.emit(table);
    b.print(chart.render());
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(abl_cmd_overhead, "Abl. B",
                           "MFC per-command overhead ablation (DMA-elem "
                           "knee)",
                           run)
