/**
 * @file
 * Ablation A: how much of the cycle-experiment loss is ring scarcity?
 *
 * The paper attributes the 8-SPE cycle's ~50% efficiency to "saturation
 * of the 4 EIB rings".  We re-run the cycle with 2, 4 and 8 data rings
 * to isolate that factor from port limits and placement.
 */

#include "bench_common.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Ablation A", "8-SPE cycle vs number of EIB data rings");

    stats::Table table({"rings", "topology", "GB/s(mean)", "GB/s(min)",
                        "GB/s(max)", "of peak"});
    for (unsigned rings : {2u, 4u, 8u}) {
        auto cfg = b.cfg;
        cfg.eib.numRings = rings;
        for (auto mode : {core::SpeSpeMode::Couples,
                          core::SpeSpeMode::Cycle}) {
            core::SpeSpeConfig sc;
            sc.mode = mode;
            sc.numSpes = 8;
            sc.elemBytes = 4096;
            sc.bytesPerStream = b.bytesPerSpe;
            auto d = core::repeatRuns(cfg, b.repeat,
                                      [&](cell::CellSystem &sys) {
                return core::runSpeSpe(sys, sc);
            }, b.par);
            double peak = 8 * b.cfg.rampPeakGBps();
            table.addRow({std::to_string(rings),
                          mode == core::SpeSpeMode::Cycle ? "cycle"
                                                          : "couples",
                          stats::Table::num(d.mean()),
                          stats::Table::num(d.min()),
                          stats::Table::num(d.max()),
                          util::format("%.0f%%",
                                       100.0 * d.mean() / peak)});
        }
    }
    b.emit(table);
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(abl_rings, "Abl. A",
                           "EIB ring-count ablation on the 8-SPE cycle",
                           run)
