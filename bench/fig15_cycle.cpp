/**
 * @file
 * Figure 15: cycle of SPEs (every SPE initiates GET+PUT with its
 * logical neighbor) — DMA-elem and DMA-list, 2/4/8 SPEs.
 *
 * Paper shapes: 2 SPEs reach the 33.6 GB/s peak; with 4 SPEs (8 active
 * DMA directions) the four rings saturate and only ~50 of 67.2 GB/s
 * survive; 8 SPEs get ~70 of 134.4 GB/s — *less* than the couples
 * experiment with half the active transfers, showing that saturating
 * the EIB is counterproductive.
 */

#include "spespe_figure.hh"

using namespace cellbw;

int
main(int argc, char **argv)
{
    bench::BenchSetup b("fig15_cycle",
                        "cycle-of-SPEs GET+PUT bandwidth "
                        "(paper Fig. 15)");
    if (!b.parse(argc, argv))
        return 1;
    b.header("Figure 15", "cycle of SPEs (all active)");
    return bench::runSpeSpeSweep(b, "Fig 15", core::SpeSpeMode::Cycle);
}
