/**
 * @file
 * Figure 15: cycle of SPEs (every SPE initiates GET+PUT with its
 * logical neighbor) — DMA-elem and DMA-list, 2/4/8 SPEs.
 *
 * Paper shapes: 2 SPEs reach the 33.6 GB/s peak; with 4 SPEs (8 active
 * DMA directions) the four rings saturate and only ~50 of 67.2 GB/s
 * survive; 8 SPEs get ~70 of 134.4 GB/s — *less* than the couples
 * experiment with half the active transfers, showing that saturating
 * the EIB is counterproductive.
 */

#include "spespe_figure.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Figure 15", "cycle of SPEs (all active)");
    return bench::runSpeSpeSweep(b, "Fig 15", core::SpeSpeMode::Cycle);
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(fig15_cycle, "Fig. 15",
                           "cycle-of-SPEs GET+PUT bandwidth "
                           "(paper Fig. 15)",
                           run)
