/**
 * @file
 * Ablation C: what the affinity API the paper asks for would buy.
 *
 * "The physical layout of the SPEs has a critical impact on
 * performance.  However the current API does not allow the programmer
 * to select such layout ... This should be improved in the libspe
 * library."  The simulator implements that improvement: we compare the
 * default random placement against a linear one and against pairing
 * logical neighbors on physically adjacent ramps.
 */

#include "bench_common.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Ablation C", "couples & cycle under placement policies");

    stats::Table table({"affinity", "topology", "GB/s(mean)",
                        "GB/s(min)", "GB/s(max)", "of peak"});
    for (auto aff : {cell::AffinityPolicy::Random,
                     cell::AffinityPolicy::Linear,
                     cell::AffinityPolicy::Paired}) {
        auto cfg = b.cfg;
        cfg.affinity = aff;
        for (auto mode : {core::SpeSpeMode::Couples,
                          core::SpeSpeMode::Cycle}) {
            core::SpeSpeConfig sc;
            sc.mode = mode;
            sc.numSpes = 8;
            sc.elemBytes = 4096;
            sc.bytesPerStream = b.bytesPerSpe;
            auto d = core::repeatRuns(cfg, b.repeat,
                                      [&](cell::CellSystem &sys) {
                return core::runSpeSpe(sys, sc);
            }, b.par);
            double peak = 8 * b.cfg.rampPeakGBps();
            table.addRow({cell::toString(aff),
                          mode == core::SpeSpeMode::Cycle ? "cycle"
                                                          : "couples",
                          stats::Table::num(d.mean()),
                          stats::Table::num(d.min()),
                          stats::Table::num(d.max()),
                          util::format("%.0f%%",
                                       100.0 * d.mean() / peak)});
        }
    }
    b.emit(table);
    b.printf("note: deterministic policies have zero min-max spread "
             "— the whole Figure 13/16 variance is placement.\n");
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(abl_affinity, "Abl. C",
                           "SPE placement-policy ablation (the paper's "
                           "proposed libspe affinity)",
                           run)
