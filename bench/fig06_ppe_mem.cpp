/**
 * @file
 * Figure 6: PPE to main memory — load/store/copy for 1 and 2 threads,
 * 1-16 byte elements.
 *
 * Paper shapes: reads match L2 reads (both throttled by the same refill
 * request path); writes are far slower than L2 writes (the L2-to-memory
 * store queue saturates); everything stays under ~6 GB/s, far below
 * what the SPE DMA engines reach on the same memory.
 */

#include "ppe_figure.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    return bench::runPpeFigure(b, "Figure 6", "PPE -> main memory",
                               core::ppeMemConfig);
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(fig06_ppe_mem, "Fig. 6",
                           "PPE to main memory load/store/copy "
                           "(paper Fig. 6)",
                           run)
