/**
 * @file
 * The architectural peak-bandwidth table of Sections 1 and 3, printed
 * next to what the simulated machine actually sustains — the paper's
 * whole point in one table.
 */

#include "bench_common.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Table 1 (implicit)", "peak vs sustained for every path");

    stats::Table table({"path", "peak GB/s", "sustained GB/s",
                        "efficiency"});
    auto add = [&](const char *path, double peak, double meas) {
        table.addRow({path, stats::Table::num(peak, 1),
                      stats::Table::num(meas),
                      util::format("%.0f%%", 100.0 * meas / peak)});
    };

    // SPU <-> LS, 16 B loads.
    {
        core::SpuLsConfig lc;
        lc.elemSize = 16;
        lc.totalBytes = b.bytesPerSpe;
        core::RepeatSpec once{1, b.repeat.seed};
        auto d = core::repeatRuns(b.cfg, once, [&](cell::CellSystem &s) {
            return core::runSpuLs(s, lc);
        }, b.par);
        add("SPU <-> LS (16B load)", b.cfg.lsPeakGBps(), d.mean());
    }
    // PPE -> L1, 8 B loads.
    {
        auto pc = core::ppeL1Config(1, 8, ppe::MemOp::Load);
        pc.totalBytes = b.bytesPerSpe;
        core::RepeatSpec once{1, b.repeat.seed};
        auto d = core::repeatRuns(b.cfg, once, [&](cell::CellSystem &s) {
            return core::runPpeStream(s, pc);
        }, b.par);
        add("PPU <- L1 (8B load)", 16.0 * b.cfg.clock.cpuHz / 1e9,
            d.mean());
    }
    // PPE -> memory, 16 B loads.
    {
        auto pc = core::ppeMemConfig(1, 16, ppe::MemOp::Load);
        pc.totalBytes = b.bytesPerSpe;
        core::RepeatSpec once{1, b.repeat.seed};
        auto d = core::repeatRuns(b.cfg, once, [&](cell::CellSystem &s) {
            return core::runPpeStream(s, pc);
        }, b.par);
        add("PPU <- memory (16B load)", b.cfg.rampPeakGBps(), d.mean());
    }
    // 1 SPE GET from memory.
    {
        core::SpeMemConfig mc;
        mc.numSpes = 1;
        mc.bytesPerSpe = b.bytesPerSpe;
        auto d = core::repeatRuns(b.cfg, b.repeat,
                                  [&](cell::CellSystem &s) {
            return core::runSpeMem(s, mc);
        }, b.par);
        add("1 SPE GET <- memory", b.cfg.rampPeakGBps(), d.mean());
    }
    // 4 SPEs GET from memory (both banks).
    {
        core::SpeMemConfig mc;
        mc.numSpes = 4;
        mc.bytesPerSpe = b.bytesPerSpe;
        auto d = core::repeatRuns(b.cfg, b.repeat,
                                  [&](cell::CellSystem &s) {
            return core::runSpeMem(s, mc);
        }, b.par);
        add("4 SPEs GET <- memory (MIC+IOIF)",
            b.cfg.rampPeakGBps() + 7.0, d.mean());
    }
    // SPE pair GET+PUT.
    {
        core::SpeSpeConfig sc;
        sc.numSpes = 2;
        sc.elemBytes = 4096;
        sc.bytesPerStream = b.bytesPerSpe;
        auto d = core::repeatRuns(b.cfg, b.repeat,
                                  [&](cell::CellSystem &s) {
            return core::runSpeSpe(s, sc);
        }, b.par);
        add("SPE pair GET+PUT (4KiB)", b.cfg.pairPeakGBps(), d.mean());
    }
    // 8-SPE cycle.
    {
        core::SpeSpeConfig sc;
        sc.mode = core::SpeSpeMode::Cycle;
        sc.numSpes = 8;
        sc.elemBytes = 4096;
        sc.bytesPerStream = b.bytesPerSpe;
        auto d = core::repeatRuns(b.cfg, b.repeat,
                                  [&](cell::CellSystem &s) {
            return core::runSpeSpe(s, sc);
        }, b.par);
        add("8-SPE cycle GET+PUT (4KiB)", 8 * b.cfg.rampPeakGBps(),
            d.mean());
    }

    b.emit(table);
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(tab01_peaks, "Tab. 1",
                           "architectural peaks vs sustained bandwidth",
                           run)
