/**
 * @file
 * GUPS-style random updates over XDR (Chen & Bader; ROADMAP item 2).
 *
 * Every SPE runs software-pipelined GET -> update -> PUT chains against
 * seeded random elemBytes granules of its own table.  Shapes to
 * reproduce: bandwidth grows with the update granule (the per-command
 * issue cost amortizes), sits far below the streaming ramp at every
 * size, and is insensitive to the table size while the row-buffer
 * timing model is off.  A final section turns the timing model on to
 * show what row thrashing costs the same update stream.
 */

#include "bench_common.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

struct TablePoint
{
    const char *label;
    std::uint64_t bytes;
};

int
run(core::ExperimentContext &b)
{
    b.header("Rand. A", "GUPS random updates, 8 SPEs, 8-128 B granules");

    const TablePoint tables[] = {{"1MiB", util::MiB}, {"8MiB", 8 * util::MiB}};
    const std::uint32_t elems[] = {8, 16, 32, 64, 128};

    std::vector<std::string> xlabels;
    for (auto e : elems)
        xlabels.push_back(core::elemLabel(e));

    // "tsize", not "table": the JSON report stamps every point with
    // the emitted table's name under the key "table".
    stats::Table table({"tsize", "elem", "GB/s(mean)", "GB/s(min)",
                        "GB/s(max)", "MUP/s(mean)"});
    stats::SeriesChart chart("Rand A: GUPS mean GB/s vs update granule",
                             xlabels);
    for (const auto &tp : tables) {
        std::vector<double> series;
        for (auto e : elems) {
            core::RandGupsConfig gc;
            gc.elemBytes = e;
            gc.tableBytes = tp.bytes;
            gc.bytesPerSpe = b.bytesPerSpe;
            auto d = core::repeatRuns(b.cfg, b.repeat,
                                      [&](cell::CellSystem &sys) {
                return core::runRandGups(sys, gc);
            }, b.par);
            series.push_back(d.mean());
            // One update moves 2*elem bytes (GET + PUT).
            double mups = d.mean() * 1e9 / (2.0 * e) / 1e6;
            table.addRow({tp.label, core::elemLabel(e),
                          stats::Table::num(d.mean()),
                          stats::Table::num(d.min()),
                          stats::Table::num(d.max()),
                          stats::Table::num(mups)});
        }
        chart.addSeries(tp.label, series);
    }
    b.emit(table, "gups");
    b.print(chart.render());
    b.printf("\n");

    // Row-buffer sensitivity: the identical update stream with the
    // timing row model off vs on (open-page: every random update pays
    // precharge+activate, a streaming access pattern would not).
    stats::Table rows({"row timing", "tsize", "GB/s(mean)"});
    for (const auto &tp : tables) {
        for (bool timing : {false, true}) {
            auto cfg = b.cfg;
            cfg.memory.bank0.rowTiming = timing;
            cfg.memory.bank1.rowTiming = timing;
            core::RandGupsConfig gc;
            gc.elemBytes = 64;
            gc.tableBytes = tp.bytes;
            gc.bytesPerSpe = b.bytesPerSpe;
            auto d = core::repeatRuns(cfg, b.repeat,
                                      [&](cell::CellSystem &sys) {
                return core::runRandGups(sys, gc);
            }, b.par);
            rows.addRow({timing ? "on" : "off", tp.label,
                         stats::Table::num(d.mean())});
        }
    }
    b.emit(rows, "row_timing");

    b.printf("reference: streaming ramp peak %.1f GB/s\n",
             b.cfg.rampPeakGBps());
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(rand_gups, "Rand. A",
                           "GUPS-style random updates over XDR "
                           "(Chen & Bader)",
                           run)
