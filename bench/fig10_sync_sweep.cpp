/**
 * @file
 * Figure 10: impact of delayed DMA synchronization on SPE-to-SPE
 * DMA-elem transfers (one active SPE, one passive).
 *
 * Paper shapes: bandwidth rises as the tag wait is postponed (sync
 * after every request, every 2, 4, ... all); saturating the MFC queue
 * matters most for 1 KB-8 KB elements; with fully delayed sync,
 * elements >= 1024 B reach almost the 33.6 GB/s pair peak while smaller
 * DMA-elem chunks degrade badly.
 */

#include "bench_common.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Figure 10", "SPE pair, sync after every k DMA requests");

    const auto elems = core::elemSweepSizes();
    const unsigned sync_every[] = {1, 2, 4, 8, 16, 0};   // 0 = all

    std::vector<std::string> xlabels;
    for (auto e : elems)
        xlabels.push_back(core::elemLabel(e));

    stats::Table table({"sync-every", "elem", "GB/s(mean)", "GB/s(min)",
                        "GB/s(max)"});
    stats::SeriesChart chart("Fig 10: mean GB/s vs element size, by sync "
                             "delay", xlabels);
    for (unsigned k : sync_every) {
        std::vector<double> series;
        for (auto e : elems) {
            core::SpeSpeConfig sc;
            sc.mode = core::SpeSpeMode::Couples;
            sc.numSpes = 2;
            sc.elemBytes = e;
            sc.syncEvery = k;
            sc.bytesPerStream = b.bytesPerSpe;
            auto d = core::repeatRuns(b.cfg, b.repeat,
                                      [&](cell::CellSystem &sys) {
                return core::runSpeSpe(sys, sc);
            }, b.par);
            series.push_back(d.mean());
            table.addRow({k ? std::to_string(k) : "all",
                          core::elemLabel(e),
                          stats::Table::num(d.mean()),
                          stats::Table::num(d.min()),
                          stats::Table::num(d.max())});
        }
        chart.addSeries(k ? util::format("every %u", k) : "all at end",
                        series);
    }
    b.emit(table);
    b.print(chart.render());
    b.printf("\nreference: pair peak (concurrent GET+PUT) %.1f GB/s\n",
             b.cfg.pairPeakGBps());
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(fig10_sync_sweep, "Fig. 10",
                           "delayed DMA-elem synchronization, SPE to "
                           "SPE (paper Fig. 10)",
                           run)
