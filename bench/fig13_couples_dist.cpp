/**
 * @file
 * Figure 13: minimum / maximum / median / mean bandwidth for 4 couples
 * (8 SPEs) across placement-randomized runs.
 *
 * Paper shapes: tens of GB/s between the best and worst placement —
 * with four concurrent pairs the logical-to-physical SPE mapping decides
 * whether ring paths collide, and libspe 1.1 gives the programmer no
 * control over it.
 */

#include "spespe_figure.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Figure 13", "4 couples, min/max/median/mean across "
                          "placements");
    return bench::runSpeSpeDistribution(b, "Fig 13",
                                        core::SpeSpeMode::Couples);
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(fig13_couples_dist, "Fig. 13",
                           "8-SPE couples placement spread "
                           "(paper Fig. 13)",
                           run)
