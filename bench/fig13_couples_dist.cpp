/**
 * @file
 * Figure 13: minimum / maximum / median / mean bandwidth for 4 couples
 * (8 SPEs) across placement-randomized runs.
 *
 * Paper shapes: tens of GB/s between the best and worst placement —
 * with four concurrent pairs the logical-to-physical SPE mapping decides
 * whether ring paths collide, and libspe 1.1 gives the programmer no
 * control over it.
 */

#include "spespe_figure.hh"

using namespace cellbw;

int
main(int argc, char **argv)
{
    bench::BenchSetup b("fig13_couples_dist",
                        "8-SPE couples placement spread (paper Fig. 13)");
    if (!b.parse(argc, argv))
        return 1;
    b.header("Figure 13", "4 couples, min/max/median/mean across "
                          "placements");
    return bench::runSpeSpeDistribution(b, "Fig 13",
                                        core::SpeSpeMode::Couples);
}
