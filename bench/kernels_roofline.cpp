/**
 * @file
 * The paper's stated future work, executed: "evaluate small kernels
 * (scalar product, matrix by vector, matrix product, streaming
 * benchmarks...)".
 *
 * Each kernel runs on the simulated SPEs with the paper's rules
 * (16 KiB chunks, double buffering, delayed sync) and is verified
 * against a host reference.  Sorted by arithmetic intensity they trace
 * the machine's roofline: below ~0.5 flops/byte the sustained memory
 * bandwidth of Figure 8 — not the 134 GFLOPS headline — decides the
 * outcome, exactly the Williams et al. argument the paper cites.
 */

#include "bench_common.hh"
#include "core/kernels.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Future work", "STREAM kernels, dot, matvec, matmul on "
                            "1-8 SPEs");

    struct Row
    {
        core::KernelKind kind;
        std::uint64_t n;
    } kernels[] = {
        {core::KernelKind::Copy, 1 << 20},
        {core::KernelKind::Scale, 1 << 20},
        {core::KernelKind::Add, 1 << 20},
        {core::KernelKind::Triad, 1 << 20},
        {core::KernelKind::Dot, 1 << 20},
        {core::KernelKind::MatVec, 2048},
        {core::KernelKind::MatMul, 256},
    };

    for (unsigned spes : {1u, 4u, 8u}) {
        stats::Table table({"kernel", "n", "AI(fl/B)", "GB/s", "GFLOPS",
                            "%mem-roof", "%compute-roof", "ok"});
        for (const auto &k : kernels) {
            cell::CellSystem sys(b.cfg, b.repeat.seed);
            core::KernelSpec spec;
            spec.kind = k.kind;
            spec.n = k.n;
            spec.spes = spes;
            auto r = core::runKernel(sys, spec);
            double mem_roof = 21.0;     // measured aggregate (Fig. 8)
            double compute_roof = core::computePeakGflops(sys, spec);
            table.addRow({
                core::toString(k.kind), std::to_string(k.n),
                stats::Table::num(r.intensity, 2),
                stats::Table::num(r.gbps),
                stats::Table::num(r.gflops),
                util::format("%.0f%%", 100.0 * r.gbps / mem_roof),
                util::format("%.0f%%", 100.0 * r.gflops / compute_roof),
                r.verified ? "yes" : "NO",
            });
        }
        b.printf("-- %u SPE%s (compute roof %.1f GFLOPS) --\n", spes,
                 spes > 1 ? "s" : "",
                 spes * 8.0 * b.cfg.clock.cpuHz / 1e9);
        b.emit(table);
    }
    // Single vs double precision on the streaming kernels: the
    // paper's DP discussion (one 2-way DP FMA every 7 cycles) plus
    // twice the bytes per element.
    {
        stats::Table table({"kernel", "precision", "GB/s", "GFLOPS",
                            "ok"});
        for (auto prec : {core::Precision::Single,
                          core::Precision::Double}) {
            for (auto kind : {core::KernelKind::Triad,
                              core::KernelKind::Dot}) {
                cell::CellSystem sys(b.cfg, b.repeat.seed);
                core::KernelSpec spec;
                spec.kind = kind;
                spec.n = 1 << 19;
                spec.spes = 4;
                spec.precision = prec;
                auto r = core::runKernel(sys, spec);
                table.addRow({core::toString(kind),
                              prec == core::Precision::Double
                                  ? "double" : "single",
                              stats::Table::num(r.gbps),
                              stats::Table::num(r.gflops),
                              r.verified ? "yes" : "NO"});
            }
        }
        b.printf("-- precision (4 SPEs): same GB/s, half the "
                 "GFLOPS in DP -- Dongarra's single-precision "
                 "argument --\n");
        b.emit(table);
    }

    b.printf("low-intensity kernels pin the memory roof; the blocked "
             "matmul escapes it and approaches the compute roof.\n");
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(kernels_roofline, "Roofline",
                           "small-kernel roofline (the paper's future "
                           "work)",
                           run)
