/**
 * @file
 * STREAM-shaped bandwidth on the host memory hierarchy (native
 * backend; ROADMAP item 1).
 *
 * The same controlled-access-pattern methodology the paper applies to
 * Cell, pointed at the machine running the suite: copy/scale/add/triad
 * over aligned, prefaulted buffers, a working-set sweep derived from
 * --bytes-per-spe, --warmup discarded passes per point (default 1),
 * and checksum validation of every kernel's output against its exact
 * closed form.  Because these are measurements, the report carries
 * median/p95/stddev/CV per point and is marked non-reproducible — gate
 * it with `cellbw compare --tol`, never bit-identity.
 */

#include <algorithm>
#include <vector>

#include "bench_common.hh"
#include "native/kernels.hh"

using namespace cellbw;

namespace
{

/** Working-set sweep (bytes per array) from the --bytes-per-spe cap. */
std::vector<std::uint64_t>
sizeSweep(std::uint64_t maxBytes)
{
    const std::uint64_t floor = 64 * util::KiB;
    std::vector<std::uint64_t> sizes = {
        std::max(maxBytes / 16, floor),
        std::max(maxBytes / 4, floor),
        std::max(maxBytes, floor),
    };
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
    return sizes;
}

int
run(core::ExperimentContext &b)
{
    b.header("Native S",
             "STREAM copy/scale/add/triad on the host memory "
             "hierarchy");

    stats::Table table({"kernel", "bytes", "GB/s(median)", "GB/s(p95)",
                        "GB/s(stddev)", "cv(%)", "checksum"});
    bool allOk = true;
    for (std::uint64_t bytes : sizeSweep(b.bytesPerSpe)) {
        const std::size_t elems =
            static_cast<std::size_t>(bytes / sizeof(double));
        native::StreamBuffers bufs(elems);
        for (native::StreamKernel k : native::allStreamKernels()) {
            bufs.init();
            for (unsigned w = 0; w < b.repeat.warmup; ++w)
                native::runStream(k, bufs);
            stats::Distribution d;
            for (unsigned r = 0; r < b.repeat.runs; ++r) {
                double secs = native::runStream(k, bufs);
                double gbps =
                    secs > 0.0
                        ? static_cast<double>(
                              native::streamBytes(k, elems)) /
                              secs / 1e9
                        : 0.0;
                d.add(gbps);
            }
            native::CheckResult check = native::checkStream(k, bufs);
            allOk = allOk && check.ok;
            table.addRow({native::toString(k), std::to_string(bytes),
                          stats::Table::num(d.median()),
                          stats::Table::num(d.p95()),
                          stats::Table::num(d.stddev()),
                          stats::Table::num(d.cv()),
                          check.describe()});
        }
    }
    b.emit(table, "stream");

    if (!allOk) {
        b.printf("CHECKSUM FAILURE: at least one kernel produced wrong "
                 "values (see the checksum column)\n");
        b.finish();
        return 1;
    }
    b.printf("host measurement: %u timed + %u warmup passes per point; "
             "gate with `cellbw compare --tol`, not bit-identity\n",
             b.repeat.runs, b.repeat.warmup);
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(native_stream, "Native S",
                           "STREAM copy/scale/add/triad on the host "
                           "memory hierarchy",
                           run, core::Backend::Native)
