/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself (host-side
 * performance, not modeled bandwidth): event-queue throughput and
 * end-to-end simulated-DMA cost, so regressions in the kernel show up.
 */

#include <benchmark/benchmark.h>

#include "cell/cell_system.hh"
#include "core/experiments.hh"
#include "core/runner.hh"
#include "sim/event_queue.hh"

using namespace cellbw;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        long sum = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(static_cast<Tick>(i % 97), [&sum, i] { sum += i; });
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

/**
 * Same-tick burst delivery: the MFC/EIB hot path frequently schedules
 * dozens of completions onto the tick being drained.  Measures the
 * batched bucket drain (append while dispatching, FIFO preserved).
 */
void
BM_SameTickDrain(benchmark::State &state)
{
    const int bursts = static_cast<int>(state.range(0));
    constexpr int kPerBurst = 64;
    for (auto _ : state) {
        sim::EventQueue eq;
        long sum = 0;
        for (int b = 0; b < bursts; ++b) {
            eq.schedule(static_cast<Tick>(b), [&eq, &sum] {
                // Fan out onto the tick currently being drained.
                for (int i = 0; i < kPerBurst; ++i)
                    eq.schedule(0, [&sum, i] { sum += i; });
            });
        }
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * bursts *
                            (kPerBurst + 1));
}
BENCHMARK(BM_SameTickDrain)->Arg(1024);

void
BM_SingleSpeGet(benchmark::State &state)
{
    const std::uint64_t bytes = 1ull << state.range(0);
    for (auto _ : state) {
        cell::CellConfig cfg;
        cell::CellSystem sys(cfg, 1);
        core::SpeMemConfig mc;
        mc.numSpes = 1;
        mc.bytesPerSpe = bytes;
        double bw = core::runSpeMem(sys, mc);
        benchmark::DoNotOptimize(bw);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SingleSpeGet)->Arg(18)->Arg(20);

void
BM_SpePairTransfer(benchmark::State &state)
{
    for (auto _ : state) {
        cell::CellConfig cfg;
        cell::CellSystem sys(cfg, 1);
        core::SpeSpeConfig sc;
        sc.numSpes = 2;
        sc.elemBytes = 4096;
        sc.bytesPerStream = 1 * util::MiB;
        double bw = core::runSpeSpe(sys, sc);
        benchmark::DoNotOptimize(bw);
    }
}
BENCHMARK(BM_SpePairTransfer);

/**
 * The paper's 10-seed placement sweep, the unit of work every figure
 * binary repeats per data point.  Arg = --jobs; /1 vs /4 measures the
 * parallel-runner scaling (output is bit-identical for any jobs value).
 */
void
BM_SeedSweep(benchmark::State &state)
{
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    cell::CellConfig cfg;
    core::RepeatSpec spec;          // 10 runs, seeds 42..51
    core::ParallelSpec par{jobs};
    for (auto _ : state) {
        auto d = core::repeatRuns(cfg, spec, [](cell::CellSystem &sys) {
            core::SpeSpeConfig sc;
            sc.numSpes = 8;
            sc.elemBytes = 4096;
            sc.bytesPerStream = 1 * util::MiB;
            return core::runSpeSpe(sys, sc);
        }, par);
        benchmark::DoNotOptimize(d.mean());
    }
    state.SetItemsProcessed(state.iterations() * spec.runs);
}
BENCHMARK(BM_SeedSweep)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/**
 * A dual-chip run on the partitioned engine.  Arg = --sim-jobs (worker
 * threads over the two chip partitions); /1 vs /2 measures the
 * conservative-parallel scaling.  The schedule — and the bandwidth —
 * is bit-identical for any value.
 */
void
BM_DualChipParallel(benchmark::State &state)
{
    const unsigned simJobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        cell::CellConfig cfg;
        cfg.numChips = 2;
        cfg.numSpes = 16;
        cfg.simJobs = simJobs;
        cell::CellSystem sys(cfg, 1);
        core::SpeSpeConfig sc;
        sc.numSpes = 16;
        sc.elemBytes = 4096;
        sc.bytesPerStream = 1 * util::MiB;
        double bw = core::runSpeSpe(sys, sc);
        benchmark::DoNotOptimize(bw);
    }
}
BENCHMARK(BM_DualChipParallel)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void
BM_PpeL1Stream(benchmark::State &state)
{
    for (auto _ : state) {
        cell::CellConfig cfg;
        cell::CellSystem sys(cfg, 1);
        auto pc = core::ppeL1Config(1, 16, ppe::MemOp::Load);
        pc.totalBytes = 1 * util::MiB;
        double bw = core::runPpeStream(sys, pc);
        benchmark::DoNotOptimize(bw);
    }
}
BENCHMARK(BM_PpeL1Stream);

} // namespace

BENCHMARK_MAIN();
