/**
 * @file
 * Pointer-chase / graph-traversal gather: element-wise GET vs DMA-list
 * (Chen & Bader; ROADMAP item 2).
 *
 * Every SPE gathers a fixed volume of randomly scattered elements from
 * its table.  Shapes to reproduce: for small elements the DMA-list
 * gather wins by a wide margin (one command header amortized over the
 * whole list; per-element cost is `dma-list-elem-overhead` instead of
 * `dma-elem-overhead` bus cycles), and the advantage closes as the
 * element grows — the Chen & Bader crossover.  A second sweep varies
 * the list length to show the software-pipeline depth saturating.
 */

#include "bench_common.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Rand. B", "random gather, element-wise GET vs DMA-list, "
                        "4 SPEs");

    const std::uint32_t elems[] = {8, 32, 128, 512, 2048};

    std::vector<std::string> xlabels;
    for (auto e : elems)
        xlabels.push_back(core::elemLabel(e));

    stats::Table table({"mode", "elem", "GB/s(mean)", "GB/s(min)",
                        "GB/s(max)"});
    stats::SeriesChart chart("Rand B: gather mean GB/s vs element size",
                             xlabels);
    for (bool use_list : {false, true}) {
        const char *mode = use_list ? "DMA-list" : "elem-GET";
        std::vector<double> series;
        for (auto e : elems) {
            core::RandChaseConfig cc;
            cc.elemBytes = e;
            cc.useList = use_list;
            cc.bytesPerSpe = b.bytesPerSpe;
            auto d = core::repeatRuns(b.cfg, b.repeat,
                                      [&](cell::CellSystem &sys) {
                return core::runRandChase(sys, cc);
            }, b.par);
            series.push_back(d.mean());
            table.addRow({mode, core::elemLabel(e),
                          stats::Table::num(d.mean()),
                          stats::Table::num(d.min()),
                          stats::Table::num(d.max())});
        }
        chart.addSeries(mode, series);
    }
    b.emit(table, "gather");
    b.print(chart.render());
    b.printf("\n");

    // List-length sweep: longer lists amortize the command header and
    // deepen the gather pipeline until the LS landing slots cap it.
    stats::Table depth({"per-list", "GB/s(mean)", "GB/s(min)",
                        "GB/s(max)"});
    for (unsigned per_list : {4u, 16u, 64u, 256u, 1024u}) {
        core::RandChaseConfig cc;
        cc.elemBytes = 16;
        cc.useList = true;
        cc.elemsPerList = per_list;
        cc.bytesPerSpe = b.bytesPerSpe;
        auto d = core::repeatRuns(b.cfg, b.repeat,
                                  [&](cell::CellSystem &sys) {
            return core::runRandChase(sys, cc);
        }, b.par);
        depth.addRow({std::to_string(per_list),
                      stats::Table::num(d.mean()),
                      stats::Table::num(d.min()),
                      stats::Table::num(d.max())});
    }
    b.emit(depth, "list_depth");

    b.printf("reference: ramp peak %.1f GB/s; issue-engine bounds for "
             "one SPE come from --dma-elem-overhead and "
             "--dma-list-elem-overhead\n",
             b.cfg.rampPeakGBps());
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(rand_chase, "Rand. B",
                           "random gather: element-wise GET vs "
                           "DMA-list crossover (Chen & Bader)",
                           run)
