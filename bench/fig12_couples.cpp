/**
 * @file
 * Figure 12: couples of SPEs (half initiate GET+PUT with a passive
 * logical neighbor) — DMA-elem and DMA-list, 2/4/8 SPEs.
 *
 * Paper shapes: 2 and 4 SPEs run near their 33.6 / 67.2 GB/s peaks;
 * 8 SPEs average only ~70% (DMA-elem) / ~60% (DMA-list) of 134.4 GB/s
 * because the four pairs' ring paths conflict depending on physical
 * placement; DMA-list bandwidth is flat across element sizes while
 * DMA-elem collapses below 1 KB.
 */

#include "spespe_figure.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Figure 12", "couples of SPEs (active + passive pairs)");
    return bench::runSpeSpeSweep(b, "Fig 12", core::SpeSpeMode::Couples);
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(fig12_couples, "Fig. 12",
                           "SPE couples GET+PUT bandwidth "
                           "(paper Fig. 12)",
                           run)
