/**
 * @file
 * MPI-style ping-pong between two SPEs — the classic latency/bandwidth
 * curve, run over the simulated MFC/EIB path.
 *
 * The paper motivates the CBE for MPI-style programming; this bench
 * shows what its measured bandwidths translate to at the message level:
 * an eager regime dominated by the notification latency, a rendezvous
 * regime approaching the pair's 16.8 GB/s one-way ramp rate, and the
 * protocol crossover in between.  Placement matters here exactly as in
 * Figures 12/13 — the distance between the two ranks is drawn per run.
 */

#include "bench_common.hh"
#include "msg/communicator.hh"

using namespace cellbw;

namespace
{

/** One ping-pong run; returns {half-round-trip-us, bandwidth GB/s}. */
std::pair<double, double>
pingpong(const cell::CellConfig &cfg, std::uint32_t bytes,
         unsigned iters, std::uint64_t seed)
{
    cell::CellSystem sys(cfg, seed);
    msg::CommunicatorParams params;
    params.slotBytes = 2048;
    msg::Communicator comm(sys, 2, params);
    LsAddr tx0 = sys.spe(0).lsAlloc(bytes, 16);
    LsAddr rx0 = sys.spe(0).lsAlloc(bytes, 16);
    LsAddr tx1 = sys.spe(1).lsAlloc(bytes, 16);
    LsAddr rx1 = sys.spe(1).lsAlloc(bytes, 16);

    auto ping = [&]() -> sim::Task {
        for (unsigned i = 0; i < iters; ++i) {
            co_await comm.send(0, 1, tx0, bytes);
            co_await comm.recv(0, 1, rx0, bytes, nullptr);
        }
    };
    auto pong = [&]() -> sim::Task {
        for (unsigned i = 0; i < iters; ++i) {
            co_await comm.recv(1, 0, rx1, bytes, nullptr);
            co_await comm.send(1, 0, tx1, bytes);
        }
    };
    Tick t0 = sys.now();
    sys.launch(ping());
    sys.launch(pong());
    sys.run();
    double secs = cfg.clock.seconds(sys.now() - t0);
    double half_rt_us = secs * 1e6 / (2.0 * iters);
    double gbps = 2.0 * iters * static_cast<double>(bytes) / secs / 1e9;
    return {half_rt_us, gbps};
}

int
run(core::ExperimentContext &b)
{
    b.header("MPI extension", "ping-pong over eager/rendezvous "
                              "protocols");

    stats::Table table({"bytes", "protocol", "half-RT(us)",
                        "GB/s(mean)", "GB/s(min)", "GB/s(max)"});
    std::vector<std::string> xlabels;
    std::vector<double> series;
    for (std::uint32_t bytes = 16; bytes <= 64 * 1024; bytes *= 4) {
        stats::Distribution lat, bw;
        for (unsigned r = 0; r < b.repeat.runs; ++r) {
            auto [l, g] = pingpong(b.cfg, bytes, 64, b.repeat.seed + r);
            lat.add(l);
            bw.add(g);
        }
        table.addRow({util::bytesToString(bytes),
                      bytes <= 2048 ? "eager" : "rendezvous",
                      stats::Table::num(lat.mean(), 3),
                      stats::Table::num(bw.mean()),
                      stats::Table::num(bw.min()),
                      stats::Table::num(bw.max())});
        xlabels.push_back(util::bytesToString(bytes));
        series.push_back(bw.mean());
    }
    b.emit(table);

    stats::SeriesChart chart("ping-pong bandwidth vs message size",
                             xlabels);
    chart.addSeries("GB/s", series);
    b.print(chart.render());
    b.printf("\nreference: one-way ramp peak %.1f GB/s; the eager->"
             "rendezvous switch sits at %u bytes\n",
             b.cfg.rampPeakGBps(), 2048u);
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(msg_pingpong, "MPI ext.",
                           "MPI-style ping-pong latency/bandwidth "
                           "between two SPEs",
                           run)
