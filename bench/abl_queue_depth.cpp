/**
 * @file
 * Ablation D: MFC command-queue depth vs synchronization delay.
 *
 * The paper's rule "delay the DMA wait as much as possible ... to
 * saturate the DMA transfer queues of the MFC" only helps up to the
 * queue's depth.  Sweeping the depth shows where the delayed-sync curve
 * of Figure 10 saturates and what a hypothetical deeper queue would
 * have bought.
 */

#include "bench_common.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Ablation D", "SPE pair, 4 KiB DMA-elem, queue depth x "
                           "sync policy");

    stats::Table table({"queue depth", "sync-every", "GB/s"});
    for (unsigned depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
        auto cfg = b.cfg;
        cfg.spe.mfc.queueDepth = depth;
        for (unsigned k : {1u, 4u, 0u}) {
            if (k > depth && k != 0)
                continue;
            core::SpeSpeConfig sc;
            sc.numSpes = 2;
            sc.elemBytes = 4096;
            sc.syncEvery = k;
            sc.bytesPerStream = b.bytesPerSpe;
            auto d = core::repeatRuns(cfg, b.repeat,
                                      [&](cell::CellSystem &sys) {
                return core::runSpeSpe(sys, sc);
            }, b.par);
            table.addRow({std::to_string(depth),
                          k ? std::to_string(k) : "all",
                          stats::Table::num(d.mean())});
        }
    }
    b.emit(table);
    b.printf("reference: pair peak %.1f GB/s\n", b.cfg.pairPeakGBps());
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(abl_queue_depth, "Abl. D",
                           "MFC queue-depth ablation on delayed sync",
                           run)
