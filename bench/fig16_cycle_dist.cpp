/**
 * @file
 * Figure 16: minimum / maximum / median / mean bandwidth for the 8-SPE
 * cycle across placement-randomized runs.
 *
 * Paper shapes: ~20 GB/s spread for DMA-elem and ~10 GB/s for DMA-list
 * — smaller than the couples spread, because with 16 active transfer
 * directions *every* placement conflicts somewhere, yet placement still
 * matters even under full EIB saturation.
 */

#include "spespe_figure.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Figure 16", "8-SPE cycle, min/max/median/mean across "
                          "placements");
    return bench::runSpeSpeDistribution(b, "Fig 16",
                                        core::SpeSpeMode::Cycle);
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(fig16_cycle_dist, "Fig. 16",
                           "8-SPE cycle placement spread "
                           "(paper Fig. 16)",
                           run)
