/**
 * @file
 * The `cellbw` driver: every experiment in the repo behind one binary.
 *
 *   cellbw list                        enumerate registered experiments
 *   cellbw run <name> [flags...]       run one (same CLI as the legacy
 *                                      per-figure binary)
 *   cellbw suite [manifest] [opts]     run a manifest through a shared
 *                                      worker pool + result cache
 *   cellbw compare <cand> <base> [opts]
 *                                      regression-gate two JSON reports
 *   cellbw validate [targets] [opts]   check suite results against the
 *                                      paper expectations under
 *                                      baselines/paper/
 *   cellbw serve [opts]                long-running HTTP JSON daemon
 *                                      over the same registry, pool,
 *                                      and result cache
 *
 * `run` and the legacy binaries share core::runExperimentCli(), so
 * `cellbw run fig08_spe_mem --quick` is byte-identical to
 * `fig08_spe_mem --quick`.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/compare.hh"
#include "core/result_cache.hh"
#include "core/suite.hh"
#include "core/validate.hh"
#include "serve/server.hh"
#include "util/strings.hh"

using namespace cellbw;

namespace
{

int
usage(std::FILE *to)
{
    std::fputs(
        "usage: cellbw <command> [args...]\n"
        "\n"
        "commands:\n"
        "  list [--backend NAME]        list registered experiments "
        "(optionally only\n"
        "                               those of one backend: sim, "
        "native)\n"
        "  run <name> [flags...]        run one experiment (flags as "
        "the legacy binary;\n"
        "                               try `cellbw run <name> "
        "--help`)\n"
        "  suite [manifest] [options]   run a suite of experiments\n"
        "    manifest                   `ci` (all experiments, default)"
        " or a file of\n"
        "                               `<experiment> [flags...]` "
        "lines\n"
        "    --jobs N                   shared worker-pool width "
        "(default: all cores)\n"
        "    --out DIR                  report directory (default: "
        "cellbw-suite-out)\n"
        "    --cache DIR                result-cache root (default: "
        ".cellbw-cache)\n"
        "    --no-cache                 disable the result cache\n"
        "    --cache-max-bytes SIZE     LRU-prune the cache to SIZE "
        "after the suite\n"
        "    --terse                    suppress per-experiment "
        "progress lines\n"
        "    <other flags>              forwarded to every experiment "
        "(e.g. --quick)\n"
        "  serve [options]              HTTP JSON daemon (POST /run, "
        "GET /jobs/<id>,\n"
        "                               GET /metrics, ...); SIGTERM "
        "drains gracefully\n"
        "    --host ADDR                bind address (default "
        "127.0.0.1)\n"
        "    --port N                   TCP port; 0 picks one "
        "(default 8080)\n"
        "    --port-file FILE           write the bound port here\n"
        "    --active N                 concurrent experiment runs "
        "(default 2)\n"
        "    --jobs N                   shared worker-pool width "
        "(default: all cores)\n"
        "    --cache DIR / --no-cache   as for suite\n"
        "    --cache-max-bytes SIZE     online LRU cache cap (prune "
        "after each run)\n"
        "    --spool DIR                per-job report files (default: "
        "cellbw-serve-spool)\n"
        "    --sim-only                 refuse native-backend "
        "experiments\n"
        "    --terse                    suppress per-request log "
        "lines\n"
        "  compare <candidate> <baseline> [options]\n"
        "    --tol PCT                  global relative tolerance, "
        "percent (default 0)\n"
        "    --tols NAME=PCT,...        per-column tolerance "
        "overrides\n"
        "    --metrics                  also gate the metrics "
        "section\n"
        "    --metrics-tol PCT          tolerance for metrics "
        "(default 0)\n"
        "  cache prune [options]        evict least-recently-used "
        "result-cache entries\n"
        "    --max-bytes SIZE           keep at most SIZE bytes "
        "(e.g. 64M; 0 empties)\n"
        "    --cache DIR                cache root (default: "
        ".cellbw-cache)\n"
        "  validate [experiment...] [options]\n"
        "                               run experiments (default: every"
        " baselined one)\n"
        "                               and check the results against "
        "the paper\n"
        "    --baselines DIR            expectation files (default: "
        "baselines/paper)\n"
        "    --out DIR                  report directory (default: "
        "cellbw-validate-out)\n"
        "    --cache/--no-cache/--jobs/--terse\n"
        "                               as for suite\n"
        "    --json FILE                extra copy of the validation "
        "report\n"
        "    <other flags>              forwarded to every experiment "
        "(e.g. --quick)\n",
        to);
    return to == stdout ? 0 : 2;
}

bool
parseDoubleArg(const char *flag, const char *val, double &out)
{
    if (!val) {
        std::fprintf(stderr, "cellbw: %s needs a value\n", flag);
        return false;
    }
    char *end = nullptr;
    out = std::strtod(val, &end);
    if (end == val || *end != '\0' || out < 0) {
        std::fprintf(stderr, "cellbw: bad %s value '%s'\n", flag, val);
        return false;
    }
    return true;
}

int
cmdList(int argc, char **argv)
{
    std::optional<core::Backend> filter;
    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--backend") {
            if (++i >= argc) {
                std::fputs("cellbw: --backend needs a value\n", stderr);
                return 2;
            }
            core::Backend b;
            if (!core::parseBackend(argv[i], b)) {
                std::fprintf(stderr,
                             "cellbw: unknown backend '%s' (known "
                             "backends: %s)\n",
                             argv[i], core::knownBackends());
                return 2;
            }
            filter = b;
        } else if (a == "--help" || a == "-h") {
            return usage(stdout);
        } else {
            std::fprintf(stderr, "cellbw: unknown list flag '%s'\n",
                         a.c_str());
            return 2;
        }
    }
    std::fputs(
        core::ExperimentRegistry::instance().listText(filter).c_str(),
        stdout);
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 1) {
        std::fputs("usage: cellbw run <name> [flags...]\n", stderr);
        return 2;
    }
    // argv[0] is the experiment name and becomes the forwarded
    // argv[0], so the flags line up exactly with the legacy binary.
    return core::runExperimentCli(argv[0], argc,
                                  const_cast<const char *const *>(argv));
}

int
cmdSuite(int argc, char **argv)
{
    core::SuiteSpec spec;
    bool haveManifest = false;
    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--jobs") {
            if (++i >= argc) {
                std::fputs("cellbw: --jobs needs a value\n", stderr);
                return 2;
            }
            char *end = nullptr;
            unsigned long v = std::strtoul(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "cellbw: bad --jobs value '%s'\n",
                             argv[i]);
                return 2;
            }
            spec.jobs = static_cast<unsigned>(v);
        } else if (a == "--out") {
            if (++i >= argc) {
                std::fputs("cellbw: --out needs a value\n", stderr);
                return 2;
            }
            spec.outDir = argv[i];
        } else if (a == "--cache") {
            if (++i >= argc) {
                std::fputs("cellbw: --cache needs a value\n", stderr);
                return 2;
            }
            spec.cacheDir = argv[i];
        } else if (a == "--no-cache") {
            spec.useCache = false;
        } else if (a == "--cache-max-bytes") {
            if (++i >= argc) {
                std::fputs("cellbw: --cache-max-bytes needs a value\n",
                           stderr);
                return 2;
            }
            try {
                spec.cacheMaxBytes = util::parseByteSize(argv[i]);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "cellbw: bad --cache-max-bytes "
                             "value '%s': %s\n", argv[i], e.what());
                return 2;
            }
        } else if (a == "--terse") {
            spec.terse = true;
        } else if (a == "--help" || a == "-h") {
            return usage(stdout);
        } else if (!a.empty() && a[0] != '-' && !haveManifest) {
            spec.manifest = a;
            haveManifest = true;
        } else {
            // Anything else belongs to the experiments (--quick,
            // --runs, machine knobs, ...).
            spec.forward.push_back(a);
        }
    }
    return core::runSuite(spec);
}

int
cmdValidate(int argc, char **argv)
{
    core::ValidateSpec spec;
    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--jobs") {
            if (++i >= argc) {
                std::fputs("cellbw: --jobs needs a value\n", stderr);
                return 2;
            }
            char *end = nullptr;
            unsigned long v = std::strtoul(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "cellbw: bad --jobs value '%s'\n",
                             argv[i]);
                return 2;
            }
            spec.jobs = static_cast<unsigned>(v);
        } else if (a == "--baselines") {
            if (++i >= argc) {
                std::fputs("cellbw: --baselines needs a value\n",
                           stderr);
                return 2;
            }
            spec.baselineDir = argv[i];
        } else if (a == "--out") {
            if (++i >= argc) {
                std::fputs("cellbw: --out needs a value\n", stderr);
                return 2;
            }
            spec.outDir = argv[i];
        } else if (a == "--cache") {
            if (++i >= argc) {
                std::fputs("cellbw: --cache needs a value\n", stderr);
                return 2;
            }
            spec.cacheDir = argv[i];
        } else if (a == "--json") {
            if (++i >= argc) {
                std::fputs("cellbw: --json needs a value\n", stderr);
                return 2;
            }
            spec.jsonPath = argv[i];
        } else if (a == "--no-cache") {
            spec.useCache = false;
        } else if (a == "--terse") {
            spec.terse = true;
        } else if (a == "--help" || a == "-h") {
            return usage(stdout);
        } else if (!a.empty() && a[0] != '-') {
            spec.targets.push_back(a);
        } else {
            // Experiment flags (--quick, machine knobs, ...).  A bare
            // value after an unknown `--flag` belongs to the flag
            // unless it names an experiment (then it is a target).
            spec.forward.push_back(a);
            if (a.rfind("--", 0) == 0 &&
                a.find('=') == std::string::npos && i + 1 < argc &&
                argv[i + 1][0] != '-' &&
                !core::ExperimentRegistry::instance().find(argv[i + 1]))
                spec.forward.push_back(argv[++i]);
        }
    }
    return core::runValidate(spec);
}

int
cmdCompare(int argc, char **argv)
{
    std::vector<std::string> paths;
    core::ComparePolicy policy;
    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--tol") {
            if (!parseDoubleArg("--tol", i + 1 < argc ? argv[++i]
                                                      : nullptr,
                                policy.tolPct))
                return 2;
        } else if (a == "--tols") {
            if (++i >= argc) {
                std::fputs("cellbw: --tols needs a value\n", stderr);
                return 2;
            }
            std::string err;
            if (!core::parseColumnTols(argv[i], policy.columnTolPct,
                                       err)) {
                std::fprintf(stderr, "cellbw: %s\n", err.c_str());
                return 2;
            }
        } else if (a == "--metrics") {
            policy.includeMetrics = true;
        } else if (a == "--metrics-tol") {
            if (!parseDoubleArg("--metrics-tol",
                                i + 1 < argc ? argv[++i] : nullptr,
                                policy.metricsTolPct))
                return 2;
            policy.includeMetrics = true;
        } else if (a == "--help" || a == "-h") {
            return usage(stdout);
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "cellbw: unknown compare flag '%s'\n",
                         a.c_str());
            return 2;
        } else {
            paths.push_back(a);
        }
    }
    if (paths.size() != 2) {
        std::fputs("usage: cellbw compare <candidate> <baseline> "
                   "[--tol PCT] [--tols NAME=PCT,...]\n", stderr);
        return 2;
    }

    core::CompareResult result;
    std::string err;
    if (!core::compareReportFiles(paths[0], paths[1], policy, result,
                                  err)) {
        std::fprintf(stderr, "cellbw: %s\n", err.c_str());
        return 2;
    }
    for (const auto &r : result.regressions)
        std::printf("REGRESSION: %s\n", r.c_str());
    std::printf("compare: %u points, %u values, %u metrics; "
                "%zu regression%s (tol %.3g%%)\n",
                result.pointsCompared, result.valuesCompared,
                result.metricsCompared, result.regressions.size(),
                result.regressions.size() == 1 ? "" : "s",
                policy.tolPct);
    return result.ok() ? 0 : 1;
}

int
cmdCache(int argc, char **argv)
{
    if (argc < 1 || std::string(argv[0]) != "prune") {
        std::fputs("usage: cellbw cache prune --max-bytes SIZE "
                   "[--cache DIR]\n", stderr);
        return 2;
    }
    std::string root = ".cellbw-cache";
    std::uint64_t maxBytes = 0;
    bool haveMax = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--max-bytes") {
            if (++i >= argc) {
                std::fputs("cellbw: --max-bytes needs a value\n",
                           stderr);
                return 2;
            }
            try {
                maxBytes = util::parseByteSize(argv[i]);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "cellbw: bad --max-bytes value "
                             "'%s': %s\n", argv[i], e.what());
                return 2;
            }
            haveMax = true;
        } else if (a == "--cache") {
            if (++i >= argc) {
                std::fputs("cellbw: --cache needs a value\n", stderr);
                return 2;
            }
            root = argv[i];
        } else if (a == "--help" || a == "-h") {
            return usage(stdout);
        } else {
            std::fprintf(stderr, "cellbw: unknown cache flag '%s'\n",
                         a.c_str());
            return 2;
        }
    }
    if (!haveMax) {
        std::fputs("cellbw: cache prune needs --max-bytes\n", stderr);
        return 2;
    }
    core::ResultCache cache(root);
    auto stats = cache.prune(maxBytes);
    std::printf("cache prune: %llu entries / %llu bytes scanned, "
                "%llu entries / %llu bytes evicted (budget %llu)\n",
                (unsigned long long)stats.entries,
                (unsigned long long)stats.bytes,
                (unsigned long long)stats.evicted,
                (unsigned long long)stats.evictedBytes,
                (unsigned long long)maxBytes);
    return 0;
}

int
cmdServe(int argc, char **argv)
{
    serve::ServeSpec spec;
    auto needValue = [&](const char *flag, int &i) -> const char * {
        if (++i >= argc) {
            std::fprintf(stderr, "cellbw: %s needs a value\n", flag);
            return nullptr;
        }
        return argv[i];
    };
    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        const char *v = nullptr;
        if (a == "--host") {
            if (!(v = needValue("--host", i)))
                return 2;
            spec.host = v;
        } else if (a == "--port") {
            if (!(v = needValue("--port", i)))
                return 2;
            try {
                std::uint64_t p = util::parseUint64(v);
                if (p > 65535)
                    throw std::runtime_error("out of range");
                spec.port = static_cast<std::uint16_t>(p);
            } catch (const std::exception &) {
                std::fprintf(stderr, "cellbw: bad --port value '%s'\n",
                             v);
                return 2;
            }
        } else if (a == "--port-file") {
            if (!(v = needValue("--port-file", i)))
                return 2;
            spec.portFile = v;
        } else if (a == "--active") {
            if (!(v = needValue("--active", i)))
                return 2;
            try {
                spec.active =
                    static_cast<unsigned>(util::parseUint64(v));
            } catch (const std::exception &) {
                std::fprintf(stderr,
                             "cellbw: bad --active value '%s'\n", v);
                return 2;
            }
        } else if (a == "--jobs") {
            if (!(v = needValue("--jobs", i)))
                return 2;
            try {
                spec.jobs = static_cast<unsigned>(util::parseUint64(v));
            } catch (const std::exception &) {
                std::fprintf(stderr, "cellbw: bad --jobs value '%s'\n",
                             v);
                return 2;
            }
        } else if (a == "--cache") {
            if (!(v = needValue("--cache", i)))
                return 2;
            spec.cacheDir = v;
        } else if (a == "--no-cache") {
            spec.useCache = false;
        } else if (a == "--cache-max-bytes") {
            if (!(v = needValue("--cache-max-bytes", i)))
                return 2;
            try {
                spec.cacheMaxBytes = util::parseByteSize(v);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "cellbw: bad --cache-max-bytes "
                             "value '%s': %s\n", v, e.what());
                return 2;
            }
        } else if (a == "--spool") {
            if (!(v = needValue("--spool", i)))
                return 2;
            spec.spoolDir = v;
        } else if (a == "--sim-only") {
            spec.simOnly = true;
        } else if (a == "--terse") {
            spec.terse = true;
        } else if (a == "--help" || a == "-h") {
            return usage(stdout);
        } else {
            std::fprintf(stderr, "cellbw: unknown serve flag '%s'\n",
                         a.c_str());
            return 2;
        }
    }
    return serve::runServe(spec);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(stderr);
    std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList(argc - 2, argv + 2);
    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2);
    if (cmd == "suite")
        return cmdSuite(argc - 2, argv + 2);
    if (cmd == "compare")
        return cmdCompare(argc - 2, argv + 2);
    if (cmd == "validate")
        return cmdValidate(argc - 2, argv + 2);
    if (cmd == "cache")
        return cmdCache(argc - 2, argv + 2);
    if (cmd == "serve")
        return cmdServe(argc - 2, argv + 2);
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
        return usage(stdout);
    std::fprintf(stderr, "cellbw: unknown command '%s'\n", cmd.c_str());
    return usage(stderr);
}
