/**
 * @file
 * Ablation E: the paper's closing warning, quantified.
 *
 * "This problem is even worse when using more than one Cell chip,
 * since SPEs could be allocated in different chips, and they would
 * have to communicate through the IO, limited to 7 GB/s."
 *
 * We enable the second chip's SPEs and compare couples bandwidth when
 * the kernel scatters pairs across chips (random placement over 16
 * physical slots) against pairs kept chip-local (paired affinity).
 */

#include "bench_common.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Ablation E", "couples across one vs two chips");

    stats::Table table({"config", "spes", "GB/s(mean)", "GB/s(min)",
                        "GB/s(max)"});

    struct Row
    {
        const char *name;
        unsigned chips;
        unsigned spes;
        cell::AffinityPolicy aff;
    } rows[] = {
        {"1 chip, random placement", 1, 8, cell::AffinityPolicy::Random},
        {"2 chips, random placement (pairs may straddle the IOIF)", 2, 8,
         cell::AffinityPolicy::Random},
        {"2 chips, paired affinity (pairs chip-local)", 2, 8,
         cell::AffinityPolicy::Paired},
        {"2 chips, 16 SPEs, random placement", 2, 16,
         cell::AffinityPolicy::Random},
        {"2 chips, 16 SPEs, paired affinity", 2, 16,
         cell::AffinityPolicy::Paired},
    };

    for (const auto &row : rows) {
        auto cfg = b.cfg;
        cfg.numChips = row.chips;
        cfg.numSpes = row.spes;
        cfg.affinity = row.aff;
        core::SpeSpeConfig sc;
        sc.numSpes = row.spes;
        sc.elemBytes = 4096;
        sc.bytesPerStream = b.bytesPerSpe;
        auto d = core::repeatRuns(cfg, b.repeat,
                                  [&](cell::CellSystem &sys) {
            return core::runSpeSpe(sys, sc);
        }, b.par);
        table.addRow({row.name, std::to_string(row.spes),
                      stats::Table::num(d.mean()),
                      stats::Table::num(d.min()),
                      stats::Table::num(d.max())});
    }
    b.emit(table);
    b.printf("reference: chip-local pair peak %.1f GB/s per couple; "
             "a cross-chip couple is capped by the IOIF at ~7 GB/s "
             "per direction\n", b.cfg.pairPeakGBps());
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(abl_dualchip, "Abl. E",
                           "cross-chip SPE placement on a dual-Cell "
                           "blade",
                           run)
