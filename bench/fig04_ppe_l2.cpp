/**
 * @file
 * Figure 4: PPE to the 512 KB L2 cache — load/store/copy for 1 and 2
 * threads, 1-16 byte elements.
 *
 * Paper shapes: much lower than L1; stores beat loads roughly 2x for a
 * single thread (the refill-request rate, "possibly the number of
 * pending L1 cache misses", limits loads); a second thread increases
 * bandwidth significantly; element-size proportionality persists.
 */

#include "ppe_figure.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    return bench::runPpeFigure(b, "Figure 4", "PPE -> L2 (512 KB)",
                               core::ppeL2Config);
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(fig04_ppe_l2, "Fig. 4",
                           "PPE to L2 load/store/copy (paper Fig. 4)",
                           run)
