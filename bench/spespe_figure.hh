/**
 * @file
 * Shared drivers for the SPE-to-SPE figures: couples (12, 13) and
 * cycles (15, 16), mean sweeps and min/max/median/mean distributions.
 */

#ifndef CELLBW_BENCH_SPESPE_FIGURE_HH
#define CELLBW_BENCH_SPESPE_FIGURE_HH

#include "bench_common.hh"
#include "core/experiments.hh"

namespace cellbw::bench
{

/**
 * Experiment peak: every allocated SPE ramp moves 16.8 GB/s in and
 * 16.8 out when perfectly scheduled, and each initiated byte crosses
 * one TX and one RX port, so both topologies peak at n x 16.8 GB/s
 * (33.6 for 2 SPEs, 67.2 for 4, 134.4 for 8 — the paper's numbers).
 */
inline double
peakFor(const core::ExperimentContext &b, core::SpeSpeMode, unsigned n)
{
    return n * b.cfg.rampPeakGBps();
}

/** Figures 12 / 15: mean bandwidth sweep for 2/4/8 SPEs, elem & list. */
inline int
runSpeSpeSweep(core::ExperimentContext &b, const char *figure,
               core::SpeSpeMode mode)
{
    const auto elems = core::elemSweepSizes();
    const unsigned counts[] = {2, 4, 8};

    std::vector<std::string> xlabels;
    for (auto e : elems)
        xlabels.push_back(core::elemLabel(e));

    for (bool use_list : {false, true}) {
        stats::Table table({"mode", "spes", "elem", "GB/s(mean)",
                            "GB/s(min)", "GB/s(max)"});
        stats::SeriesChart chart(
            util::format("%s (%s): mean GB/s vs element size", figure,
                         use_list ? "DMA-list" : "DMA-elem"),
            xlabels);
        for (unsigned n : counts) {
            std::vector<double> series;
            for (auto e : elems) {
                core::SpeSpeConfig sc;
                sc.mode = mode;
                sc.numSpes = n;
                sc.elemBytes = e;
                sc.useList = use_list;
                sc.bytesPerStream = b.bytesPerSpe;
                auto d = core::repeatRuns(b.cfg, b.repeat,
                                          [&](cell::CellSystem &sys) {
                    return core::runSpeSpe(sys, sc);
                }, b.par);
                series.push_back(d.mean());
                table.addRow({use_list ? "DMA-list" : "DMA-elem",
                              std::to_string(n), core::elemLabel(e),
                              stats::Table::num(d.mean()),
                              stats::Table::num(d.min()),
                              stats::Table::num(d.max())});
            }
            chart.addSeries(util::format("%u SPEs", n), series);
        }
        b.emit(table);
        b.print(chart.render());
        b.printf("\n");
    }
    b.printf("reference peaks: 2 SPEs %.1f, 4 SPEs %.1f, 8 SPEs %.1f "
             "GB/s\n",
             peakFor(b, mode, 2), peakFor(b, mode, 4),
             peakFor(b, mode, 8));
    return b.finish();
}

/** Figures 13 / 16: 8-SPE min/max/median/mean across placements. */
inline int
runSpeSpeDistribution(core::ExperimentContext &b, const char *figure,
                      core::SpeSpeMode mode)
{
    const auto elems = core::elemSweepSizes();

    std::vector<std::string> xlabels;
    for (auto e : elems)
        xlabels.push_back(core::elemLabel(e));

    for (bool use_list : {false, true}) {
        stats::Table table({"mode", "elem", "min", "max", "median",
                            "mean"});
        stats::SeriesChart chart(
            util::format("%s (%s): min/median/max GB/s vs element size",
                         figure, use_list ? "DMA-list" : "DMA-elem"),
            xlabels);
        std::vector<double> mins, meds, maxs;
        for (auto e : elems) {
            core::SpeSpeConfig sc;
            sc.mode = mode;
            sc.numSpes = 8;
            sc.elemBytes = e;
            sc.useList = use_list;
            sc.bytesPerStream = b.bytesPerSpe;
            auto d = core::repeatRuns(b.cfg, b.repeat,
                                      [&](cell::CellSystem &sys) {
                return core::runSpeSpe(sys, sc);
            }, b.par);
            mins.push_back(d.min());
            meds.push_back(d.median());
            maxs.push_back(d.max());
            table.addRow({use_list ? "DMA-list" : "DMA-elem",
                          core::elemLabel(e),
                          stats::Table::num(d.min()),
                          stats::Table::num(d.max()),
                          stats::Table::num(d.median()),
                          stats::Table::num(d.mean())});
        }
        chart.addSeries("min", mins);
        chart.addSeries("median", meds);
        chart.addSeries("max", maxs);
        b.emit(table);
        b.print(chart.render());
        b.printf("\n");
    }
    b.printf("reference: 8-SPE peak %.1f GB/s; the spread is pure "
             "physical-placement luck\n", peakFor(b, mode, 8));
    return b.finish();
}

} // namespace cellbw::bench

#endif // CELLBW_BENCH_SPESPE_FIGURE_HH
