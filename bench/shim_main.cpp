/**
 * @file
 * Legacy per-figure binary shim.  Each historic bench binary
 * (fig08_spe_mem, abl_rings, ...) is this translation unit compiled
 * with -DCELLBW_SHIM_NAME="<experiment>": the whole main() forwards to
 * the registered experiment through the same runExperimentCli() path
 * the `cellbw` driver uses, so the CLI and the output bytes are
 * identical between `fig08_spe_mem --quick` and
 * `cellbw run fig08_spe_mem --quick`.
 */

#include "core/experiment_registry.hh"

#ifndef CELLBW_SHIM_NAME
#error "compile with -DCELLBW_SHIM_NAME=\"<experiment name>\""
#endif

int
main(int argc, char **argv)
{
    return cellbw::core::runExperimentCli(
        CELLBW_SHIM_NAME, argc,
        const_cast<const char *const *>(argv));
}
