/**
 * @file
 * Cluster halo exchange: the paper's cross-chip warning at N chips
 * (ROADMAP item 3).
 *
 * A QCD-style stencil decomposes a lattice ring over 1..8 Cell chips
 * (chips pair up on blades; blades join by inter-blade links).  Each
 * rank GETs halos from its ring neighbours while its interior update
 * sweep runs underneath.  Two axes matter:
 *
 *  - placement: locality pins each rank to its slab's home chip, so
 *    only the halos cross the 7 GB/s links; round-robin scatters ranks
 *    chip-blind, pushing whole interior streams through the links.
 *  - surface-to-volume: a fatter halo (32 KiB vs 4 KiB per neighbour
 *    on a 256 KiB slab) raises the fraction of traffic that must
 *    cross, squeezing both policies toward the link ceiling.
 *
 * Rows report the per-link peak ("link GB/s(max)"), which `cellbw
 * validate` holds below the analytic IOIF per-direction ceiling.
 */

#include <algorithm>

#include "bench_common.hh"
#include "core/halo.hh"
#include "stats/distribution.hh"

using namespace cellbw;

namespace
{

int
run(core::ExperimentContext &b)
{
    b.header("Cluster A", "halo-exchange stencil over 1-8 chips");

    struct HaloPoint
    {
        const char *label;
        std::uint32_t bytes;
    };
    const unsigned chipCounts[] = {1, 2, 4, 8};
    const cell::TaskPlacement policies[] = {
        cell::TaskPlacement::Locality, cell::TaskPlacement::RoundRobin};
    const HaloPoint halos[] = {{"4KiB", 4 * util::KiB},
                               {"32KiB", 32 * util::KiB}};

    stats::Table table({"chips", "placement", "halo", "GB/s(mean)",
                        "halo GB/s", "link GB/s(max)"});
    for (unsigned chips : chipCounts) {
        for (auto policy : policies) {
            for (const auto &hp : halos) {
                auto cfg = b.cfg;
                cfg.numChips = chips;
                cfg.numSpes = 8 * chips;
                cfg.affinity = cell::AffinityPolicy::Linear;
                cfg.placement = policy;

                core::HaloConfig hc;
                hc.haloBytes = hp.bytes;
                hc.bytesPerSpe = b.bytesPerSpe;
                hc.placement = policy;

                // Serial seed loop with repeatRuns()'s exact seed and
                // warmup semantics: the per-run link counters feed the
                // "link GB/s(max)" column, which the Distribution-only
                // harness cannot surface.
                stats::Distribution d, dHalo;
                double linkMax = 0.0;
                for (unsigned i = 0;
                     i < b.repeat.warmup + b.repeat.runs; ++i) {
                    cell::CellSystem sys(cfg, b.repeat.seed + i);
                    auto res = core::runClusterHalo(sys, hc);
                    if (i < b.repeat.warmup)
                        continue;
                    d.add(res.gbps);
                    dHalo.add(res.haloGbps);
                    auto &links = sys.memory().links();
                    for (unsigned l = 0; l < links.numLinks(); ++l) {
                        for (auto dir : {mem::IoLink::Dir::Outbound,
                                         mem::IoLink::Dir::Inbound}) {
                            double gbps =
                                res.seconds > 0.0
                                    ? links.link(l).bytesSent(dir) /
                                          res.seconds / 1e9
                                    : 0.0;
                            linkMax = std::max(linkMax, gbps);
                        }
                    }
                    if (b.repeat.metrics)
                        sys.snapshotMetrics(*b.repeat.metrics);
                }
                table.addRow({std::to_string(chips), toString(policy),
                              hp.label, stats::Table::num(d.mean()),
                              stats::Table::num(dHalo.mean()),
                              stats::Table::num(linkMax)});
            }
        }
    }
    b.emit(table, "halo");
    b.printf("reference: IOIF %.1f GB/s per direction; locality "
             "placement keeps everything but the halos off the "
             "links\n", b.cfg.memory.ioLink.bytesPerTick *
                            b.cfg.clock.cpuHz / 1e9);
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(cluster_halo, "Cluster A",
                           "halo-exchange stencil over an N-chip "
                           "cluster",
                           run)
