/** @file Tests for the N-chip cluster topology: blade shapes, the
 *        inter-chip link graph and its gateway routing, deterministic
 *        placement, and the cluster-level oracle peaks. */

#include <gtest/gtest.h>

#include "core/oracle.hh"
#include "eib/topology.hh"
#include "mem/link_graph.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

/** Count the links a shape names, split on-blade vs inter-blade. */
void
countLinks(const eib::ClusterShape &s, unsigned &onBlade,
           unsigned &interBlade)
{
    onBlade = interBlade = 0;
    s.forEachLink([&](unsigned, unsigned, bool inter) {
        (inter ? interBlade : onBlade)++;
    });
}

mem::IoLinkParams
linkParams(double bytesPerTick, Tick latency)
{
    mem::IoLinkParams p;
    p.bytesPerTick = bytesPerTick;
    p.crossingLatency = latency;
    return p;
}

} // namespace

TEST(ClusterShape, BladeMathAndValidity)
{
    EXPECT_EQ(eib::ClusterShape::autoBlades(1), 1u);
    EXPECT_EQ(eib::ClusterShape::autoBlades(2), 1u);
    EXPECT_EQ(eib::ClusterShape::autoBlades(4), 2u);
    EXPECT_EQ(eib::ClusterShape::autoBlades(8), 4u);

    auto s = eib::ClusterShape::of(4);
    EXPECT_EQ(s.blades, 2u);
    EXPECT_EQ(s.chipsPerBlade(), 2u);
    EXPECT_EQ(s.bladeOf(0), 0u);
    EXPECT_EQ(s.bladeOf(1), 0u);
    EXPECT_EQ(s.bladeOf(2), 1u);
    EXPECT_EQ(s.bladeOf(3), 1u);
    EXPECT_EQ(s.gatewayOf(0), 0u);
    EXPECT_EQ(s.gatewayOf(1), 2u);
    EXPECT_TRUE(s.valid());

    // One chip per blade is legal (no on-blade links at all).
    EXPECT_TRUE(eib::ClusterShape::of(4, 4).valid());
    // Blades may not be empty, nor carry three chips.
    EXPECT_FALSE(eib::ClusterShape::of(4, 3).valid());
    EXPECT_FALSE(eib::ClusterShape::of(5, 2).valid());
    EXPECT_FALSE(eib::ClusterShape::of(2, 3).valid());
}

TEST(ClusterShape, LinkEnumeration)
{
    unsigned on = 0, inter = 0;

    countLinks(eib::ClusterShape::of(2), on, inter);
    EXPECT_EQ(on, 1u);      // the classic dual-Cell blade IOIF
    EXPECT_EQ(inter, 0u);

    countLinks(eib::ClusterShape::of(4, 2), on, inter);
    EXPECT_EQ(on, 2u);
    EXPECT_EQ(inter, 1u);   // gateway 0 <-> gateway 2

    countLinks(eib::ClusterShape::of(8, 4), on, inter);
    EXPECT_EQ(on, 4u);
    EXPECT_EQ(inter, 6u);   // full mesh over 4 gateways

    countLinks(eib::ClusterShape::of(4, 4), on, inter);
    EXPECT_EQ(on, 0u);
    EXPECT_EQ(inter, 6u);
}

TEST(LinkGraph, EdgesAndNames)
{
    sim::EventQueue eq;
    mem::LinkGraph g("mem", eq, eib::ClusterShape::of(4, 2),
                     linkParams(3.33, 84), linkParams(1.0, 840));
    ASSERT_EQ(g.numLinks(), 3u);
    EXPECT_EQ(g.edge(0).suffix, "ioif");
    EXPECT_EQ(g.edge(1).suffix, "ioif1");
    EXPECT_EQ(g.edge(2).suffix, "blade0_1");
    EXPECT_FALSE(g.edge(0).interBlade);
    EXPECT_FALSE(g.edge(1).interBlade);
    EXPECT_TRUE(g.edge(2).interBlade);

    EXPECT_NE(g.linkBetween(0, 1), nullptr);
    EXPECT_NE(g.linkBetween(2, 3), nullptr);
    EXPECT_NE(g.linkBetween(0, 2), nullptr);
    EXPECT_EQ(g.linkBetween(1, 2), nullptr);
    EXPECT_EQ(g.linkBetween(1, 3), nullptr);
    EXPECT_EQ(g.linkBetween(0, 3), nullptr);
    // Symmetric lookup.
    EXPECT_EQ(g.linkBetween(1, 0), g.linkBetween(0, 1));
}

TEST(LinkGraph, GatewayRoutingAndLatency)
{
    sim::EventQueue eq;
    const Tick ioif = 84, blade = 840;
    mem::LinkGraph g("mem", eq, eib::ClusterShape::of(4, 2),
                     linkParams(3.33, ioif), linkParams(1.0, blade));

    // Direct neighbours: one hop, lane named from the lower chip's
    // viewpoint (lower -> higher is Outbound).
    auto h01 = g.firstHop(0, 1);
    EXPECT_EQ(h01.next, 1u);
    EXPECT_EQ(h01.lane, mem::IoLink::Dir::Outbound);
    auto h10 = g.firstHop(1, 0);
    EXPECT_EQ(h10.next, 0u);
    EXPECT_EQ(h10.lane, mem::IoLink::Dir::Inbound);

    // A non-gateway chip routes via its own gateway first.
    auto h13 = g.firstHop(1, 3);
    EXPECT_EQ(h13.next, 0u);
    EXPECT_EQ(h13.lane, mem::IoLink::Dir::Inbound);
    // A gateway routes to the destination blade's gateway.
    auto h03 = g.firstHop(0, 3);
    EXPECT_EQ(h03.next, 2u);

    EXPECT_EQ(g.pathLatency(0, 0), 0u);
    EXPECT_EQ(g.pathLatency(0, 1), ioif);
    EXPECT_EQ(g.pathLatency(0, 2), blade);
    EXPECT_EQ(g.pathLatency(0, 3), blade + ioif);
    // Worst case: non-gateway to non-gateway on another blade.
    EXPECT_EQ(g.pathLatency(1, 3), ioif + blade + ioif);
    // Routes are symmetric in latency.
    EXPECT_EQ(g.pathLatency(3, 1), g.pathLatency(1, 3));

    EXPECT_EQ(g.minCrossingLatency(), ioif);
}

TEST(LinkGraph, InvalidShapeIsFatal)
{
    sim::EventQueue eq;
    EXPECT_THROW(mem::LinkGraph("mem", eq, eib::ClusterShape::of(5, 2),
                                linkParams(3.33, 84),
                                linkParams(1.0, 840)),
                 sim::FatalError);
}

TEST(ClusterSystem, FourChipsComeUp)
{
    cell::CellConfig cfg;
    cfg.numChips = 4;
    cfg.numSpes = 32;
    cfg.affinity = cell::AffinityPolicy::Linear;
    cell::CellSystem sys(cfg, 1);
    EXPECT_EQ(sys.numChips(), 4u);
    EXPECT_EQ(sys.numSpes(), 32u);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(sys.chipOf(i), i / 8);
    EXPECT_EQ(sys.memory().numBanks(), 4u);
    EXPECT_EQ(sys.memory().links().numLinks(), 3u);
}

TEST(ClusterSystem, ChipFieldOverflowIsFatal)
{
    // The flight handle packs the chip index into 32 - kChipShift bits;
    // one chip past kMaxChips must fail loudly, not wrap.
    EXPECT_EQ(cell::CellSystem::kMaxChips, 16u);
    cell::CellConfig cfg;
    cfg.numChips = cell::CellSystem::kMaxChips + 1;
    cfg.numSpes = 8;
    EXPECT_THROW(cell::CellSystem(cfg, 1), sim::FatalError);
}

TEST(ClusterSystem, InvalidBladeShapeIsFatal)
{
    cell::CellConfig cfg;
    cfg.numChips = 4;
    cfg.numBlades = 3;
    cfg.numSpes = 8;
    EXPECT_THROW(cell::CellSystem(cfg, 1), sim::FatalError);
}

TEST(ClusterSystem, PlacementIsDeterministicPerSeed)
{
    cell::CellConfig cfg;
    cfg.numChips = 4;
    cfg.numSpes = 32;
    cfg.affinity = cell::AffinityPolicy::Random;
    cell::CellSystem a(cfg, 9), b(cfg, 9);
    EXPECT_EQ(a.placement(), b.placement());

    // The placement is a permutation of the physical slots.
    std::vector<bool> seen(32, false);
    for (unsigned i = 0; i < 32; ++i) {
        unsigned phys = a.physicalOf(i);
        ASSERT_LT(phys, 32u);
        EXPECT_FALSE(seen[phys]);
        seen[phys] = true;
    }

    // Linear affinity is the identity regardless of seed.
    cfg.affinity = cell::AffinityPolicy::Linear;
    cell::CellSystem lin(cfg, 1234);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(lin.physicalOf(i), i);
}

TEST(ClusterOracle, BladeLinkAndBisectionPeaks)
{
    cell::CellConfig cfg;
    core::Oracle two(cfg);
    double io = 0, bladeLink = 0, bisection = 0, mem = 0;
    ASSERT_TRUE(two.peak("io", io));
    ASSERT_TRUE(two.peak("blade-link", bladeLink));
    ASSERT_TRUE(two.peak("bisection", bisection));
    // One blade, two chips: the cut is the IOIF itself.
    EXPECT_DOUBLE_EQ(bisection, io);
    EXPECT_NEAR(io, 7.0, 1e-6);
    EXPECT_NEAR(bladeLink, 2.0, 1e-6);

    // Four chips on two blades: only the inter-blade link crosses the
    // chips/2 cut.
    cfg.numChips = 4;
    core::Oracle four(cfg);
    ASSERT_TRUE(four.peak("bisection", bisection));
    EXPECT_DOUBLE_EQ(bisection, bladeLink);

    // Eight chips on four blades: gateways 0 and 2 each link to
    // gateways 4 and 6 across the cut.
    cfg.numChips = 8;
    core::Oracle eight(cfg);
    ASSERT_TRUE(eight.peak("bisection", bisection));
    EXPECT_DOUBLE_EQ(bisection, 4.0 * bladeLink);

    // Every chip past the first contributes a bank1-rated bank.
    double bank0 = 0, bank1 = 0;
    ASSERT_TRUE(eight.peak("bank0", bank0));
    ASSERT_TRUE(eight.peak("bank1", bank1));
    ASSERT_TRUE(eight.peak("mem", mem));
    EXPECT_DOUBLE_EQ(mem, bank0 + 7.0 * bank1);
}
