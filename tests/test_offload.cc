/** @file Tests for the CellSs-style offload runtime. */

#include <gtest/gtest.h>

#include "runtime/offload.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

runtime::Kernel
xorKernel(std::uint8_t key)
{
    return [key](std::uint8_t *d, std::uint32_t n) {
        for (std::uint32_t i = 0; i < n; ++i)
            d[i] ^= key;
    };
}

struct OffloadFixture : public ::testing::Test
{
    cell::CellConfig cfg;

    /** Run @p tasks transforms of @p bytes each; returns the runtime
     *  stats and checks every output byte. */
    runtime::OffloadRuntime::Stats
    runBatch(unsigned workers, bool doubleBuffer, unsigned tasks,
             std::uint32_t bytes, Tick *makespan = nullptr)
    {
        cell::CellSystem sys(cfg, 1);
        runtime::OffloadParams params;
        params.workers = workers;
        params.doubleBuffer = doubleBuffer;
        runtime::OffloadRuntime rt(sys, params);

        std::vector<EffAddr> ins, outs;
        for (unsigned t = 0; t < tasks; ++t) {
            EffAddr in = sys.malloc(bytes);
            EffAddr out = sys.malloc(bytes);
            sys.memory().store().fill(in,
                                      static_cast<std::uint8_t>(t + 1),
                                      bytes);
            ins.push_back(in);
            outs.push_back(out);
            rt.submit({in, out, bytes, 64, xorKernel(0x33)});
        }
        rt.start();
        sys.run();

        for (unsigned t = 0; t < tasks; ++t) {
            auto expect =
                static_cast<std::uint8_t>((t + 1) ^ 0x33);
            EXPECT_EQ(sys.memory().store().byteAt(outs[t]), expect);
            EXPECT_EQ(sys.memory().store().byteAt(outs[t] + bytes - 1),
                      expect);
            EXPECT_EQ(sys.memory().store().byteAt(outs[t] + bytes / 2),
                      expect);
        }
        if (makespan)
            *makespan = rt.stats().makespan();
        return rt.stats();
    }
};

} // namespace

TEST_F(OffloadFixture, TransformsEveryTaskCorrectly)
{
    auto st = runBatch(4, true, 16, 64 * 1024);
    EXPECT_EQ(st.tasksCompleted, 16u);
}

TEST_F(OffloadFixture, SingleWorkerAlsoCorrect)
{
    auto st = runBatch(1, true, 5, 48 * 1024);
    EXPECT_EQ(st.tasksCompleted, 5u);
    EXPECT_EQ(st.worker.size(), 1u);
    EXPECT_EQ(st.worker[0].tasks, 5u);
}

TEST_F(OffloadFixture, OddSizedTasksAreChunkedCorrectly)
{
    // 100 KiB is not a multiple of the 16 KiB chunk.
    auto st = runBatch(2, true, 4, 100 * 1024);
    EXPECT_EQ(st.tasksCompleted, 4u);
    std::uint64_t bytes = 0;
    for (const auto &w : st.worker)
        bytes += w.bytesIn;
    EXPECT_EQ(bytes, 4ull * 100 * 1024);
}

TEST_F(OffloadFixture, WorkSpreadsAcrossWorkers)
{
    auto st = runBatch(4, true, 16, 32 * 1024);
    for (const auto &w : st.worker)
        EXPECT_EQ(w.tasks, 4u);
}

TEST_F(OffloadFixture, DoubleBufferingBeatsSingle)
{
    Tick db = 0, sb = 0;
    runBatch(2, true, 8, 128 * 1024, &db);
    runBatch(2, false, 8, 128 * 1024, &sb);
    EXPECT_LT(db, sb);
}

TEST_F(OffloadFixture, MoreWorkersShrinkTheMakespan)
{
    Tick one = 0, four = 0;
    runBatch(1, true, 8, 128 * 1024, &one);
    runBatch(4, true, 8, 128 * 1024, &four);
    EXPECT_LT(four, one / 2);
}

TEST_F(OffloadFixture, ThroughputIsPositiveAndBounded)
{
    cell::CellSystem sys(cfg, 1);
    runtime::OffloadRuntime rt(sys, {});
    EffAddr in = sys.malloc(64 * 1024);
    EffAddr out = sys.malloc(64 * 1024);
    rt.submit({in, out, 64 * 1024, 64, xorKernel(1)});
    rt.start();
    sys.run();
    EXPECT_GT(rt.throughputGBps(), 0.0);
    EXPECT_LT(rt.throughputGBps(), 25.0);   // below aggregate memory BW
}

TEST_F(OffloadFixture, ApiMisuseIsFatal)
{
    cell::CellSystem sys(cfg, 1);
    runtime::OffloadParams params;
    params.workers = 9;
    EXPECT_THROW(runtime::OffloadRuntime(sys, params), sim::FatalError);

    params.workers = 2;
    params.chunkBytes = 100;    // invalid DMA size
    EXPECT_THROW(runtime::OffloadRuntime(sys, params), sim::FatalError);

    runtime::OffloadRuntime rt(sys, {});
    EXPECT_THROW(rt.submit({0, 0, 0, 64, xorKernel(1)}),
                 sim::FatalError);
    EXPECT_THROW(rt.submit({0, 0, 128, 64, nullptr}), sim::FatalError);
    EffAddr in = sys.malloc(4096);
    EffAddr out = sys.malloc(4096);
    rt.submit({in, out, 4096, 64, xorKernel(1)});
    rt.start();
    EXPECT_THROW(rt.start(), sim::FatalError);
    EXPECT_THROW(rt.submit({in, out, 4096, 64, xorKernel(1)}),
                 sim::FatalError);
    sys.run();
    EXPECT_EQ(rt.stats().tasksCompleted, 1u);
}

TEST_F(OffloadFixture, ComputeBoundTasksConsumeSpuCycles)
{
    cell::CellSystem sys(cfg, 1);
    runtime::OffloadParams params;
    params.workers = 1;
    runtime::OffloadRuntime rt(sys, params);
    EffAddr in = sys.malloc(64 * 1024);
    EffAddr out = sys.malloc(64 * 1024);
    rt.submit({in, out, 64 * 1024, 10000, xorKernel(1)});
    rt.start();
    sys.run();
    // 64 KiB at 10000 cycles/KiB = 640k cycles of pure compute.
    EXPECT_GE(rt.stats().makespan(), 640000u);
}
