/** @file Unit tests for the MFC DMA engine (with a mock line router). */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hh"
#include "sim/task.hh"
#include "spe/mfc.hh"

using namespace cellbw;
using spe::DmaDir;

namespace
{

/** Records every line and completes it after a configurable delay. */
struct MockRouter
{
    sim::EventQueue &eq;
    Tick delay = 50;
    std::vector<spe::LineRequest> lines = {};
    unsigned inFlight = 0;
    unsigned maxInFlight = 0;

    void
    operator()(spe::LineRequest &&req)
    {
        ++inFlight;
        maxInFlight = std::max(maxInFlight, inFlight);
        auto done = std::move(req.done);
        lines.push_back(std::move(req));
        eq.schedule(delay, [this, done = std::move(done)] {
            --inFlight;
            done();
        });
    }
};

struct MfcFixture : public ::testing::Test
{
    sim::EventQueue eq;
    sim::ClockSpec clock;
    spe::MfcParams params;
    MockRouter router{eq};

    std::unique_ptr<spe::Mfc>
    make()
    {
        auto mfc = std::make_unique<spe::Mfc>("mfc", eq, clock, params, 0);
        mfc->setLineHandler(std::ref(router));
        return mfc;
    }
};

sim::Task
waitTags(spe::Mfc &mfc, std::uint32_t mask, Tick *done_at,
         sim::EventQueue &eq)
{
    co_await mfc.tagWait(mask);
    *done_at = eq.now();
}

} // namespace

TEST_F(MfcFixture, GetSplitsIntoLines)
{
    auto mfc = make();
    mfc->get(0, 0x10000, 1024, 3);
    eq.run();
    ASSERT_EQ(router.lines.size(), 8u);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(router.lines[i].bytes, 128u);
        EXPECT_EQ(router.lines[i].ea, 0x10000u + i * 128);
        EXPECT_EQ(router.lines[i].lsa, i * 128);
        EXPECT_EQ(router.lines[i].dir, DmaDir::Get);
        EXPECT_EQ(router.lines[i].speIndex, 0u);
    }
    EXPECT_EQ(mfc->bytesTransferred(), 1024u);
    EXPECT_EQ(mfc->commandsCompleted(), 1u);
    EXPECT_EQ(mfc->linesSent(), 8u);
}

TEST_F(MfcFixture, SmallTransfersAreOneLine)
{
    auto mfc = make();
    mfc->put(16, 0x20000, 16, 0);
    mfc->put(32, 0x20010, 4, 0);
    eq.run();
    ASSERT_EQ(router.lines.size(), 2u);
    EXPECT_EQ(router.lines[0].bytes, 16u);
    EXPECT_EQ(router.lines[1].bytes, 4u);
}

TEST_F(MfcFixture, TagMaskTracksPendingCommands)
{
    auto mfc = make();
    EXPECT_EQ(mfc->tagsPendingMask(), 0u);
    mfc->get(0, 0x10000, 128, 2);
    mfc->get(256, 0x20000, 128, 5);
    EXPECT_EQ(mfc->tagsPendingMask(), (1u << 2) | (1u << 5));
    eq.run();
    EXPECT_EQ(mfc->tagsPendingMask(), 0u);
}

TEST_F(MfcFixture, TagWaitBlocksUntilCompletion)
{
    auto mfc = make();
    mfc->get(0, 0x10000, 2048, 1);
    Tick woke_at = 0;
    sim::Task w = waitTags(*mfc, 1u << 1, &woke_at, eq);
    w.start();
    EXPECT_FALSE(w.done());
    eq.run();
    EXPECT_TRUE(w.done());
    EXPECT_GT(woke_at, 0u);
}

TEST_F(MfcFixture, TagWaitOnIdleTagDoesNotBlock)
{
    auto mfc = make();
    mfc->get(0, 0x10000, 128, 1);
    Tick woke_at = 1234;
    sim::Task w = waitTags(*mfc, 1u << 7, &woke_at, eq);
    w.start();
    EXPECT_TRUE(w.done());      // tag 7 idle: no suspension
    EXPECT_EQ(woke_at, 0u);
    eq.run();
}

TEST_F(MfcFixture, WindowLimitsOutstandingMemoryLines)
{
    params.memoryTokens = 4;
    auto mfc = make();
    mfc->get(0, 0x10000, 16 * 1024, 0);
    eq.run();
    EXPECT_EQ(router.lines.size(), 128u);
    EXPECT_EQ(router.maxInFlight, 4u);
}

TEST_F(MfcFixture, LsLinesUseTheLsWindow)
{
    params.memoryTokens = 1;
    params.lsLines = 8;
    auto mfc = make();
    mfc->get(0, spe::lsApertureBase + 0x4000, 16 * 1024, 0);
    eq.run();
    EXPECT_EQ(router.maxInFlight, 8u);
}

TEST_F(MfcFixture, MemoryLinesDoNotBlockLsLines)
{
    params.memoryTokens = 1;
    params.lsLines = 4;
    router.delay = 1000;    // memory lines stay in flight a long time
    auto mfc = make();
    mfc->get(0, 0x10000, 1024, 0);                           // memory
    mfc->get(8192, spe::lsApertureBase + 0x4000, 1024, 1);   // LS
    eq.run();
    // Both eventually complete, and at some point 1 mem + 4 LS lines
    // were in flight together.
    EXPECT_EQ(router.lines.size(), 16u);
    EXPECT_EQ(router.maxInFlight, 5u);
}

TEST_F(MfcFixture, QueueSlotsHeldUntilCompletion)
{
    params.queueDepth = 2;
    auto mfc = make();
    mfc->get(0, 0x10000, 128, 0);
    mfc->get(128, 0x20000, 128, 0);
    EXPECT_TRUE(mfc->queueFull());
    EXPECT_EQ(mfc->queueFree(), 0u);
    eq.run();
    EXPECT_EQ(mfc->queueFree(), 2u);
}

TEST_F(MfcFixture, OverflowWithoutAwaitIsFatal)
{
    params.queueDepth = 1;
    auto mfc = make();
    mfc->get(0, 0x10000, 128, 0);
    EXPECT_THROW(mfc->get(128, 0x20000, 128, 0), sim::FatalError);
}

TEST_F(MfcFixture, QueueSpaceAwaitAdmitsWhenSlotFrees)
{
    params.queueDepth = 1;
    auto mfc = make();
    bool issued_second = false;
    auto prog_fn = [&]() -> sim::Task {
        co_await mfc->queueSpace();
        mfc->get(0, 0x10000, 128, 0);
        co_await mfc->queueSpace();
        mfc->get(128, 0x20000, 128, 0);
        issued_second = true;
        co_await mfc->tagWait(1u << 0);
    };
    sim::Task prog = prog_fn();
    prog.start();
    EXPECT_FALSE(issued_second);
    eq.run();
    prog.rethrow();
    EXPECT_TRUE(prog.done());
    EXPECT_TRUE(issued_second);
    EXPECT_EQ(router.lines.size(), 2u);
}

TEST_F(MfcFixture, TwoStreamsNeverOverflowSharedQueue)
{
    // Regression: a woken waiter's slot must not be stolen by the
    // other stream running in the same tick.
    params.queueDepth = 4;
    auto mfc = make();
    auto stream = [&](unsigned tag, EffAddr base) -> sim::Task {
        for (int i = 0; i < 50; ++i) {
            co_await mfc->queueSpace();
            mfc->get(static_cast<LsAddr>((i % 8) * 128),
                     base + static_cast<EffAddr>(i) * 128, 128, tag);
        }
        co_await mfc->tagWait(1u << tag);
    };
    sim::Task a = stream(0, 0x100000);
    sim::Task b = stream(1, 0x200000);
    a.start();
    b.start();
    eq.run();
    a.rethrow();
    b.rethrow();
    EXPECT_TRUE(a.done());
    EXPECT_TRUE(b.done());
    EXPECT_EQ(router.lines.size(), 100u);
}

TEST_F(MfcFixture, ListCommandWalksAllElements)
{
    auto mfc = make();
    std::vector<spe::ListElement> list = {
        {0x10000, 256}, {0x40000, 128}, {0x80000, 512}};
    mfc->getList(0, list, 6);
    eq.run();
    EXPECT_EQ(mfc->bytesTransferred(), 896u);
    ASSERT_EQ(router.lines.size(), 7u);
    // Element boundaries never merge into one line.
    EXPECT_EQ(router.lines[0].ea, 0x10000u);
    EXPECT_EQ(mfc->commandsCompleted(), 1u);
}

TEST_F(MfcFixture, ListLsCursorAdvancesContiguously)
{
    auto mfc = make();
    std::vector<spe::ListElement> list = {{0x10000, 128}, {0x20000, 128}};
    mfc->getList(0x1000, list, 0);
    eq.run();
    ASSERT_EQ(router.lines.size(), 2u);
    EXPECT_EQ(router.lines[0].lsa, 0x1000u);
    EXPECT_EQ(router.lines[1].lsa, 0x1080u);
}

TEST_F(MfcFixture, ValidationRejectsBadCommands)
{
    auto mfc = make();
    // Bad sizes.
    EXPECT_THROW(mfc->get(0, 0x10000, 0, 0), sim::FatalError);
    EXPECT_THROW(mfc->get(0, 0x10000, 3, 0), sim::FatalError);
    EXPECT_THROW(mfc->get(0, 0x10000, 100, 0), sim::FatalError);
    EXPECT_THROW(mfc->get(0, 0x10000, 32 * 1024, 0), sim::FatalError);
    // Bad alignment.
    EXPECT_THROW(mfc->get(8, 0x10000, 128, 0), sim::FatalError);
    EXPECT_THROW(mfc->get(0, 0x10004, 128, 0), sim::FatalError);
    // Bad tag.
    EXPECT_THROW(mfc->get(0, 0x10000, 128, 32), sim::FatalError);
    // LS overrun.
    EXPECT_THROW(mfc->get(256 * 1024 - 64, 0x10000, 128, 0),
                 sim::FatalError);
    // Bad lists.
    EXPECT_THROW(mfc->getList(0, {}, 0), sim::FatalError);
    std::vector<spe::ListElement> toobig(2049, {0x10000, 16});
    EXPECT_THROW(mfc->getList(0, toobig, 0), sim::FatalError);
    // Nothing leaked into the queue.
    EXPECT_EQ(mfc->queueFree(), params.queueDepth);
    eq.run();
    EXPECT_TRUE(router.lines.empty());
}

TEST_F(MfcFixture, IssueOverheadSerializesCommands)
{
    params.elemOverheadBus = 100;   // enormous, to dominate
    router.delay = 1;
    auto mfc = make();
    mfc->get(0, 0x10000, 128, 0);
    mfc->get(128, 0x20000, 128, 0);
    Tick done_at = 0;
    sim::Task w = waitTags(*mfc, 1u << 0, &done_at, eq);
    w.start();
    eq.run();
    // Two commands pass the serial issue engine back-to-back:
    // >= 2 x 100 bus cycles = 400 ticks.
    EXPECT_GE(done_at, 400u);
}

TEST_F(MfcFixture, NoHandlerIsFatal)
{
    auto mfc = std::make_unique<spe::Mfc>("m", eq, clock, params, 0);
    EXPECT_THROW(mfc->get(0, 0x1000, 128, 0), sim::FatalError);
}
