/** @file Unit tests for the MFC DMA engine (with a mock line router). */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/clock.hh"
#include "sim/task.hh"
#include "spe/mfc.hh"

using namespace cellbw;
using spe::DmaDir;

namespace
{

/** Records every line and completes it after a configurable delay. */
struct MockRouter
{
    sim::EventQueue &eq;
    Tick delay = 50;
    std::vector<spe::LineRequest> lines = {};
    unsigned inFlight = 0;
    unsigned maxInFlight = 0;

    void
    operator()(spe::LineRequest &&req)
    {
        ++inFlight;
        maxInFlight = std::max(maxInFlight, inFlight);
        auto done = std::move(req.done);
        lines.push_back(std::move(req));
        eq.schedule(delay, [this, done = std::move(done)] {
            --inFlight;
            done();
        });
    }
};

struct MfcFixture : public ::testing::Test
{
    sim::EventQueue eq;
    sim::ClockSpec clock;
    spe::MfcParams params;
    MockRouter router{eq};

    std::unique_ptr<spe::Mfc>
    make()
    {
        auto mfc = std::make_unique<spe::Mfc>("mfc", eq, clock, params, 0);
        mfc->setLineHandler(std::ref(router));
        return mfc;
    }
};

sim::Task
waitTags(spe::Mfc &mfc, std::uint32_t mask, Tick *done_at,
         sim::EventQueue &eq)
{
    co_await mfc.tagWait(mask);
    *done_at = eq.now();
}

} // namespace

TEST_F(MfcFixture, GetSplitsIntoLines)
{
    auto mfc = make();
    mfc->get(0, 0x10000, 1024, 3);
    eq.run();
    ASSERT_EQ(router.lines.size(), 8u);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(router.lines[i].bytes, 128u);
        EXPECT_EQ(router.lines[i].ea, 0x10000u + i * 128);
        EXPECT_EQ(router.lines[i].lsa, i * 128);
        EXPECT_EQ(router.lines[i].dir, DmaDir::Get);
        EXPECT_EQ(router.lines[i].speIndex, 0u);
    }
    EXPECT_EQ(mfc->bytesTransferred(), 1024u);
    EXPECT_EQ(mfc->commandsCompleted(), 1u);
    EXPECT_EQ(mfc->linesSent(), 8u);
}

TEST_F(MfcFixture, SmallTransfersAreOneLine)
{
    auto mfc = make();
    mfc->put(16, 0x20000, 16, 0);
    mfc->put(32, 0x20010, 4, 0);
    eq.run();
    ASSERT_EQ(router.lines.size(), 2u);
    EXPECT_EQ(router.lines[0].bytes, 16u);
    EXPECT_EQ(router.lines[1].bytes, 4u);
}

TEST_F(MfcFixture, TagMaskTracksPendingCommands)
{
    auto mfc = make();
    EXPECT_EQ(mfc->tagsPendingMask(), 0u);
    mfc->get(0, 0x10000, 128, 2);
    mfc->get(256, 0x20000, 128, 5);
    EXPECT_EQ(mfc->tagsPendingMask(), (1u << 2) | (1u << 5));
    eq.run();
    EXPECT_EQ(mfc->tagsPendingMask(), 0u);
}

TEST_F(MfcFixture, TagWaitBlocksUntilCompletion)
{
    auto mfc = make();
    mfc->get(0, 0x10000, 2048, 1);
    Tick woke_at = 0;
    sim::Task w = waitTags(*mfc, 1u << 1, &woke_at, eq);
    w.start();
    EXPECT_FALSE(w.done());
    eq.run();
    EXPECT_TRUE(w.done());
    EXPECT_GT(woke_at, 0u);
}

TEST_F(MfcFixture, TagWaitOnIdleTagDoesNotBlock)
{
    auto mfc = make();
    mfc->get(0, 0x10000, 128, 1);
    Tick woke_at = 1234;
    sim::Task w = waitTags(*mfc, 1u << 7, &woke_at, eq);
    w.start();
    EXPECT_TRUE(w.done());      // tag 7 idle: no suspension
    EXPECT_EQ(woke_at, 0u);
    eq.run();
}

TEST_F(MfcFixture, WindowLimitsOutstandingMemoryLines)
{
    params.memoryTokens = 4;
    auto mfc = make();
    mfc->get(0, 0x10000, 16 * 1024, 0);
    eq.run();
    EXPECT_EQ(router.lines.size(), 128u);
    EXPECT_EQ(router.maxInFlight, 4u);
}

TEST_F(MfcFixture, LsLinesUseTheLsWindow)
{
    params.memoryTokens = 1;
    params.lsLines = 8;
    auto mfc = make();
    mfc->get(0, spe::lsApertureBase + 0x4000, 16 * 1024, 0);
    eq.run();
    EXPECT_EQ(router.maxInFlight, 8u);
}

TEST_F(MfcFixture, MemoryLinesDoNotBlockLsLines)
{
    params.memoryTokens = 1;
    params.lsLines = 4;
    router.delay = 1000;    // memory lines stay in flight a long time
    auto mfc = make();
    mfc->get(0, 0x10000, 1024, 0);                           // memory
    mfc->get(8192, spe::lsApertureBase + 0x4000, 1024, 1);   // LS
    eq.run();
    // Both eventually complete, and at some point 1 mem + 4 LS lines
    // were in flight together.
    EXPECT_EQ(router.lines.size(), 16u);
    EXPECT_EQ(router.maxInFlight, 5u);
}

TEST_F(MfcFixture, QueueSlotsHeldUntilCompletion)
{
    params.queueDepth = 2;
    auto mfc = make();
    mfc->get(0, 0x10000, 128, 0);
    mfc->get(128, 0x20000, 128, 0);
    EXPECT_TRUE(mfc->queueFull());
    EXPECT_EQ(mfc->queueFree(), 0u);
    eq.run();
    EXPECT_EQ(mfc->queueFree(), 2u);
}

TEST_F(MfcFixture, OverflowWithoutAwaitIsFatal)
{
    params.queueDepth = 1;
    auto mfc = make();
    mfc->get(0, 0x10000, 128, 0);
    EXPECT_THROW(mfc->get(128, 0x20000, 128, 0), sim::FatalError);
}

TEST_F(MfcFixture, QueueSpaceAwaitAdmitsWhenSlotFrees)
{
    params.queueDepth = 1;
    auto mfc = make();
    bool issued_second = false;
    auto prog_fn = [&]() -> sim::Task {
        co_await mfc->queueSpace();
        mfc->get(0, 0x10000, 128, 0);
        co_await mfc->queueSpace();
        mfc->get(128, 0x20000, 128, 0);
        issued_second = true;
        co_await mfc->tagWait(1u << 0);
    };
    sim::Task prog = prog_fn();
    prog.start();
    EXPECT_FALSE(issued_second);
    eq.run();
    prog.rethrow();
    EXPECT_TRUE(prog.done());
    EXPECT_TRUE(issued_second);
    EXPECT_EQ(router.lines.size(), 2u);
}

TEST_F(MfcFixture, TwoStreamsNeverOverflowSharedQueue)
{
    // Regression: a woken waiter's slot must not be stolen by the
    // other stream running in the same tick.
    params.queueDepth = 4;
    auto mfc = make();
    auto stream = [&](unsigned tag, EffAddr base) -> sim::Task {
        for (int i = 0; i < 50; ++i) {
            co_await mfc->queueSpace();
            mfc->get(static_cast<LsAddr>((i % 8) * 128),
                     base + static_cast<EffAddr>(i) * 128, 128, tag);
        }
        co_await mfc->tagWait(1u << tag);
    };
    sim::Task a = stream(0, 0x100000);
    sim::Task b = stream(1, 0x200000);
    a.start();
    b.start();
    eq.run();
    a.rethrow();
    b.rethrow();
    EXPECT_TRUE(a.done());
    EXPECT_TRUE(b.done());
    EXPECT_EQ(router.lines.size(), 100u);
}

TEST_F(MfcFixture, ListCommandWalksAllElements)
{
    auto mfc = make();
    std::vector<spe::ListElement> list = {
        {0x10000, 256}, {0x40000, 128}, {0x80000, 512}};
    mfc->getList(0, list, 6);
    eq.run();
    EXPECT_EQ(mfc->bytesTransferred(), 896u);
    ASSERT_EQ(router.lines.size(), 7u);
    // Element boundaries never merge into one line.
    EXPECT_EQ(router.lines[0].ea, 0x10000u);
    EXPECT_EQ(mfc->commandsCompleted(), 1u);
}

TEST_F(MfcFixture, ListLsCursorAdvancesContiguously)
{
    auto mfc = make();
    std::vector<spe::ListElement> list = {{0x10000, 128}, {0x20000, 128}};
    mfc->getList(0x1000, list, 0);
    eq.run();
    ASSERT_EQ(router.lines.size(), 2u);
    EXPECT_EQ(router.lines[0].lsa, 0x1000u);
    EXPECT_EQ(router.lines[1].lsa, 0x1080u);
}

TEST_F(MfcFixture, ValidationRejectsBadCommands)
{
    auto mfc = make();
    // A rejected command returns false and latches the error on its
    // tag group instead of killing the run; the program can poll it.
    // Bad sizes.
    EXPECT_FALSE(mfc->get(0, 0x10000, 0, 0));
    EXPECT_FALSE(mfc->get(0, 0x10000, 3, 0));
    EXPECT_FALSE(mfc->get(0, 0x10000, 100, 0));
    EXPECT_FALSE(mfc->get(0, 0x10000, 32 * 1024, 0));
    // Bad alignment.
    EXPECT_FALSE(mfc->get(8, 0x10000, 128, 1));
    EXPECT_FALSE(mfc->get(0, 0x10004, 128, 1));
    // Bad tag numbers stay fatal: that is a program bug, not a
    // recoverable transfer fault.
    EXPECT_THROW(mfc->get(0, 0x10000, 128, 32), sim::FatalError);
    // LS overrun.
    EXPECT_FALSE(mfc->get(256 * 1024 - 64, 0x10000, 128, 2));
    // Bad lists.
    EXPECT_FALSE(mfc->getList(0, {}, 3));
    std::vector<spe::ListElement> toobig(2049, {0x10000, 16});
    EXPECT_FALSE(mfc->getList(0, toobig, 3));
    // Nothing leaked into the queue.
    EXPECT_EQ(mfc->queueFree(), params.queueDepth);
    eq.run();
    EXPECT_TRUE(router.lines.empty());

    // Each rejection left a fault record on its tag group.
    EXPECT_EQ(mfc->commandsFaulted(), 9u);
    EXPECT_EQ(mfc->tagFaultMask(), 0b1111u);
    EXPECT_EQ(mfc->tagFaultCount(0), 4u);
    EXPECT_EQ(mfc->tagFaultCount(1), 2u);
    EXPECT_EQ(mfc->tagFaultCount(2), 1u);
    EXPECT_EQ(mfc->tagFaultCount(3), 2u);
    auto size_faults = mfc->takeFaults(0);
    ASSERT_EQ(size_faults.size(), 4u);
    for (const auto &f : size_faults) {
        EXPECT_EQ(f.code, spe::MfcError::InvalidSize);
        EXPECT_FALSE(spe::isTransient(f.code));
    }
    auto align_faults = mfc->takeFaults(1);
    ASSERT_EQ(align_faults.size(), 2u);
    EXPECT_EQ(align_faults[0].code, spe::MfcError::Misaligned);
    auto overrun_faults = mfc->takeFaults(2);
    ASSERT_EQ(overrun_faults.size(), 1u);
    EXPECT_EQ(overrun_faults[0].code, spe::MfcError::LsOverrun);
    EXPECT_EQ(overrun_faults[0].lsa, 256u * 1024 - 64);
    ASSERT_EQ(overrun_faults[0].segs.size(), 1u);
    EXPECT_EQ(overrun_faults[0].segs[0].ea, 0x10000u);
    auto list_faults = mfc->takeFaults(3);
    ASSERT_EQ(list_faults.size(), 2u);
    EXPECT_EQ(list_faults[0].code, spe::MfcError::BadList);
    // All consumed.
    EXPECT_EQ(mfc->tagFaultMask(), 0u);
}

TEST_F(MfcFixture, ListAtMaxLengthIsAccepted)
{
    auto mfc = make();
    // Exactly maxListElements (2048) is legal; 2048 x 16 B fits in
    // 32 KiB of LS with room to spare.
    std::vector<spe::ListElement> list(spe::maxListElements,
                                       {0x10000, 16});
    EXPECT_TRUE(mfc->getList(0, list, 1));
    eq.run();
    EXPECT_EQ(mfc->commandsFaulted(), 0u);
    EXPECT_EQ(mfc->commandsCompleted(), 1u);
    EXPECT_EQ(mfc->linesSent(), spe::maxListElements);
    EXPECT_EQ(mfc->bytesTransferred(), spe::maxListElements * 16u);
}

TEST_F(MfcFixture, ListOneOverMaxIsRejectedCleanly)
{
    auto mfc = make();
    std::vector<spe::ListElement> list(spe::maxListElements + 1,
                                       {0x10000, 16});
    EXPECT_FALSE(mfc->getList(0, list, 1));
    // Rejection is a recoverable fault: nothing was queued, no tag is
    // pending, and the error is latched on the tag group.
    EXPECT_EQ(mfc->queueFree(), params.queueDepth);
    EXPECT_EQ(mfc->tagsPendingMask(), 0u);
    EXPECT_EQ(mfc->tagFaultCount(1), 1u);
    eq.run();
    EXPECT_TRUE(router.lines.empty());
    auto faults = mfc->takeFaults(1);
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0].code, spe::MfcError::BadList);
}

TEST_F(MfcFixture, ListCursorRoundUpTriggersLsOverrun)
{
    auto mfc = make();
    // Each list element starts on a fresh 16 B LS boundary.  Two 8 B
    // elements starting 24 B below the top of LS land at lsSize-16 and
    // lsSize (after round-up), so the second one runs past the end even
    // though the raw sizes (16 B) would fit.
    std::vector<spe::ListElement> list = {{0x10000, 8}, {0x10020, 8}};
    EXPECT_FALSE(mfc->getList(params.lsSize - 24, list, 4));
    EXPECT_EQ(mfc->tagsPendingMask(), 0u);
    EXPECT_EQ(mfc->queueFree(), params.queueDepth);
    auto faults = mfc->takeFaults(4);
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0].code, spe::MfcError::LsOverrun);

    // The same two elements issued 8 B lower fit exactly: the final
    // cursor lands on lsSize, which is in bounds.
    EXPECT_TRUE(mfc->getList(params.lsSize - 32, list, 4));
    eq.run();
    EXPECT_EQ(mfc->commandsCompleted(), 1u);
    ASSERT_EQ(router.lines.size(), 2u);
    EXPECT_EQ(router.lines[0].lsa, params.lsSize - 32);
    EXPECT_EQ(router.lines[1].lsa, params.lsSize - 16);
}

TEST_F(MfcFixture, RejectionDoesNotDisturbPendingCommands)
{
    auto mfc = make();
    EXPECT_TRUE(mfc->get(0, 0x10000, 1024, 5));
    EXPECT_FALSE(mfc->get(0, 0x20000, 100, 5));   // rejected, same tag
    Tick done_at = 0;
    sim::Task w = waitTags(*mfc, 1u << 5, &done_at, eq);
    w.start();
    eq.run();
    // The good command completed normally; the bad one is latched.
    EXPECT_EQ(mfc->commandsCompleted(), 1u);
    EXPECT_EQ(mfc->bytesTransferred(), 1024u);
    EXPECT_EQ(mfc->tagFaultCount(5), 1u);
    EXPECT_EQ(mfc->takeFaults(5)[0].code, spe::MfcError::InvalidSize);
}

TEST_F(MfcFixture, InjectedDropCompletesWithErrorAndNoData)
{
    params.faults.dropRate = 1.0;
    params.faults.seed = 42;
    auto mfc = make();
    EXPECT_TRUE(mfc->get(0, 0x10000, 1024, 4));
    Tick done_at = 0;
    sim::Task w = waitTags(*mfc, 1u << 4, &done_at, eq);
    w.start();
    eq.run();                       // tagWait must not deadlock
    EXPECT_TRUE(router.lines.empty());  // no data moved
    EXPECT_EQ(mfc->dropsInjected(), 1u);
    EXPECT_EQ(mfc->queueFree(), params.queueDepth);
    auto faults = mfc->takeFaults(4);
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0].code, spe::MfcError::Dropped);
    EXPECT_TRUE(spe::isTransient(faults[0].code));
    // The record carries the full descriptor for verbatim re-issue.
    EXPECT_EQ(faults[0].lsa, 0u);
    ASSERT_EQ(faults[0].segs.size(), 1u);
    EXPECT_EQ(faults[0].segs[0].ea, 0x10000u);
    EXPECT_EQ(faults[0].segs[0].size, 1024u);
}

TEST_F(MfcFixture, InjectedCorruptionMarksOneLine)
{
    params.faults.corruptRate = 1.0;
    auto mfc = make();
    EXPECT_TRUE(mfc->put(0, 0x10000, 1024, 6));
    eq.run();
    ASSERT_EQ(router.lines.size(), 8u);
    unsigned corrupted = 0;
    for (const auto &l : router.lines)
        corrupted += l.corrupt ? 1 : 0;
    EXPECT_EQ(corrupted, 1u);       // exactly one line damaged
    EXPECT_EQ(mfc->corruptionsInjected(), 1u);
    auto faults = mfc->takeFaults(6);
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0].code, spe::MfcError::Corrupted);
}

TEST_F(MfcFixture, InjectedDelayPostponesCompletionOnly)
{
    params.faults.delayRate = 1.0;
    params.faults.delayTicks = 5000;
    auto mfc = make();

    Tick base_done = 0;
    {
        // Reference run without injection.
        spe::MfcParams clean = params;
        clean.faults = {};
        MockRouter r2{eq};
        auto m2 = std::make_unique<spe::Mfc>("m2", eq, clock, clean, 0);
        m2->setLineHandler(std::ref(r2));
        m2->get(0, 0x10000, 1024, 0);
        sim::Task w2 = waitTags(*m2, 1u << 0, &base_done, eq);
        w2.start();
        eq.run();
    }

    EXPECT_TRUE(mfc->get(0, 0x10000, 1024, 0));
    Tick done_at = 0;
    sim::Task w = waitTags(*mfc, 1u << 0, &done_at, eq);
    w.start();
    eq.run();
    EXPECT_EQ(mfc->delaysInjected(), 1u);
    // All data still moves, completion is late, and no error latches.
    EXPECT_EQ(mfc->bytesTransferred(), 1024u);
    EXPECT_GE(done_at, base_done + 5000);
    EXPECT_EQ(mfc->tagFaultMask(), 0u);
}

TEST_F(MfcFixture, FaultSequenceIsSeedReproducible)
{
    params.faults.dropRate = 0.3;
    params.faults.seed = 7;

    auto run_one = [&](std::uint64_t seed) {
        sim::EventQueue q;
        MockRouter r{q};
        spe::MfcParams p = params;
        p.faults.seed = seed;
        auto m = std::make_unique<spe::Mfc>("m", q, clock, p, 0);
        m->setLineHandler(std::ref(r));
        std::vector<bool> dropped;
        for (unsigned i = 0; i < 8; ++i) {
            m->get(0, 0x10000, 128, i % spe::numTags);
            q.run();
            dropped.push_back(m->takeFaults(i % spe::numTags).size() >
                              0);
        }
        return dropped;
    };

    auto a = run_one(7);
    auto b = run_one(7);
    auto c = run_one(8);
    EXPECT_EQ(a, b);                // same seed, same fate sequence
    EXPECT_NE(a, c);                // different seed diverges
    EXPECT_TRUE(std::count(a.begin(), a.end(), true) > 0);
    EXPECT_TRUE(std::count(a.begin(), a.end(), false) > 0);
}

TEST_F(MfcFixture, IssueOverheadSerializesCommands)
{
    params.elemOverheadBus = 100;   // enormous, to dominate
    router.delay = 1;
    auto mfc = make();
    mfc->get(0, 0x10000, 128, 0);
    mfc->get(128, 0x20000, 128, 0);
    Tick done_at = 0;
    sim::Task w = waitTags(*mfc, 1u << 0, &done_at, eq);
    w.start();
    eq.run();
    // Two commands pass the serial issue engine back-to-back:
    // >= 2 x 100 bus cycles = 400 ticks.
    EXPECT_GE(done_at, 400u);
}

TEST_F(MfcFixture, NoHandlerIsFatal)
{
    auto mfc = std::make_unique<spe::Mfc>("m", eq, clock, params, 0);
    EXPECT_THROW(mfc->get(0, 0x1000, 128, 0), sim::FatalError);
}
