/** @file Unit tests for the PPU SMT streaming model. */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"
#include "ppe/ppu.hh"
#include "sim/clock.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

struct PpuFixture : public ::testing::Test
{
    sim::EventQueue eq;
    sim::ClockSpec clock;
    ppe::PpuParams params;
    mem::BackingStore store;

    std::unique_ptr<ppe::Ppu>
    make()
    {
        return std::make_unique<ppe::Ppu>("ppe", eq, clock, params,
                                          &store);
    }

    /**
     * Warm a buffer, then sweep it @p reps times on thread 0 and
     * return the measured GB/s.
     */
    double
    measure(ppe::Ppu &ppu, std::uint64_t buffer, unsigned elem,
            ppe::MemOp op, int reps = 8)
    {
        EffAddr src = 0x100000;
        // Loads and stores sweep one buffer; only copy uses a second.
        EffAddr dst = (op == ppe::MemOp::Copy) ? 0x900000 : src;
        ppu.warm(src, buffer);
        if (dst != src)
            ppu.warm(dst, buffer);
        std::uint64_t counted = 0;
        Tick t0 = eq.now();
        // Name the lambda: a coroutine's captures live in the closure
        // object, which must outlive the coroutine frame.
        auto body = [&]() -> sim::Task {
            for (int r = 0; r < reps; ++r)
                co_await ppu.streamAccess(0, src, dst, buffer, elem, op,
                                          &counted);
        };
        sim::Task t = body();
        test::runToCompletion(eq, t);
        return clock.bandwidthGBps(counted, eq.now() - t0);
    }
};

} // namespace

TEST_F(PpuFixture, L1LoadHitsHalfPeakAtEightBytes)
{
    auto ppu = make();
    double bw = measure(*ppu, 8 * 1024, 8, ppe::MemOp::Load);
    EXPECT_NEAR(bw, 16.8, 0.5);
}

TEST_F(PpuFixture, SixteenByteLoadsGainNothingOverEight)
{
    auto ppu = make();
    double bw8 = measure(*ppu, 8 * 1024, 8, ppe::MemOp::Load);
    double bw16 = measure(*ppu, 8 * 1024, 16, ppe::MemOp::Load);
    EXPECT_NEAR(bw8, bw16, 0.5);
}

TEST_F(PpuFixture, L1LoadScalesWithElementSize)
{
    auto ppu = make();
    double bw4 = measure(*ppu, 8 * 1024, 4, ppe::MemOp::Load);
    double bw2 = measure(*ppu, 8 * 1024, 2, ppe::MemOp::Load);
    double bw1 = measure(*ppu, 8 * 1024, 1, ppe::MemOp::Load);
    EXPECT_NEAR(bw4, 8.4, 0.3);
    EXPECT_NEAR(bw2, 4.2, 0.2);
    EXPECT_NEAR(bw1, 2.1, 0.1);
}

TEST_F(PpuFixture, L1StoresTrailL1Loads)
{
    auto ppu = make();
    double load = measure(*ppu, 8 * 1024, 16, ppe::MemOp::Load);
    double store = measure(*ppu, 8 * 1024, 16, ppe::MemOp::Store);
    EXPECT_LT(store, load);
    EXPECT_GT(store, 0.5 * load);
}

TEST_F(PpuFixture, L2LoadsAreMuchSlowerThanL1)
{
    auto ppu = make();
    double l1 = measure(*ppu, 8 * 1024, 16, ppe::MemOp::Load);
    double l2 = measure(*ppu, 256 * 1024, 16, ppe::MemOp::Load, 2);
    EXPECT_LT(l2, 0.5 * l1);
}

TEST_F(PpuFixture, L2StoresBeatL2LoadsAboutTwofold)
{
    auto ppu = make();
    double load = measure(*ppu, 256 * 1024, 16, ppe::MemOp::Load, 2);
    double store = measure(*ppu, 256 * 1024, 16, ppe::MemOp::Store, 2);
    EXPECT_NEAR(store / load, 2.0, 0.4);
}

TEST_F(PpuFixture, MemoryReadsMatchL2Reads)
{
    auto ppu = make();
    double l2 = measure(*ppu, 256 * 1024, 16, ppe::MemOp::Load, 2);
    double memr = measure(*ppu, 4 * 1024 * 1024, 16, ppe::MemOp::Load, 1);
    EXPECT_NEAR(memr, l2, 0.2 * l2);
}

TEST_F(PpuFixture, MemoryWritesAreTheSlowestPath)
{
    auto ppu = make();
    double l2w = measure(*ppu, 256 * 1024, 16, ppe::MemOp::Store, 2);
    double memw = measure(*ppu, 4 * 1024 * 1024, 16, ppe::MemOp::Store, 1);
    EXPECT_LT(memw, 0.6 * l2w);
    EXPECT_LT(memw, 6.0);       // the paper's "under 6 GB/s"
}

TEST_F(PpuFixture, SecondThreadHelpsL2Loads)
{
    auto ppu = make();
    double one = measure(*ppu, 256 * 1024, 16, ppe::MemOp::Load, 2);

    // Two threads on disjoint buffers.
    EffAddr a = 0x2000000, b = 0x4000000;
    ppu->warm(a, 256 * 1024);
    ppu->warm(b, 256 * 1024);
    std::uint64_t counted = 0;
    Tick t0 = eq.now();
    auto mk = [&](unsigned tid, EffAddr base) -> sim::Task {
        for (int r = 0; r < 2; ++r)
            co_await ppu->streamAccess(tid, base, base, 256 * 1024, 16,
                                       ppe::MemOp::Load, &counted);
    };
    sim::Task t1 = mk(0, a);
    sim::Task t2 = mk(1, b);
    t1.start();
    t2.start();
    eq.run();
    t1.rethrow();
    t2.rethrow();
    double two = clock.bandwidthGBps(counted, eq.now() - t0);
    EXPECT_GT(two, 1.6 * one);
}

TEST_F(PpuFixture, CopyCountsBothDirections)
{
    auto ppu = make();
    double bw = measure(*ppu, 8 * 1024, 16, ppe::MemOp::Copy);
    EXPECT_NEAR(bw, 16.8, 1.0);     // half of the 33.6 peak
}

TEST_F(PpuFixture, CopyMovesRealData)
{
    auto ppu = make();
    store.fill(0x100000, 0xCD, 4096);
    measure(*ppu, 4096, 16, ppe::MemOp::Copy, 1);
    EXPECT_EQ(store.byteAt(0x900000), 0xCD);
    EXPECT_EQ(store.byteAt(0x900000 + 4095), 0xCD);
}

TEST_F(PpuFixture, InvalidArgumentsAreFatal)
{
    auto ppu = make();
    auto run = [&](unsigned tid, unsigned elem, std::uint64_t bytes) {
        sim::Task t = ppu->streamAccess(tid, 0, 0, bytes, elem,
                                        ppe::MemOp::Load);
        t.start();
        eq.run();
        t.rethrow();
    };
    EXPECT_THROW(run(2, 16, 1024), sim::FatalError);    // bad thread
    EXPECT_THROW(run(0, 5, 1024), sim::FatalError);     // bad elem
    EXPECT_THROW(run(0, 16, 100), sim::FatalError);     // unaligned len
}

TEST_F(PpuFixture, WarmLoadsTheHierarchy)
{
    auto ppu = make();
    ppu->warm(0, 8 * 1024);
    for (EffAddr ea = 0; ea < 8 * 1024; ea += 128) {
        EXPECT_TRUE(ppu->l1().contains(ea));
        EXPECT_TRUE(ppu->l2().contains(ea));
    }
}

TEST_F(PpuFixture, MismatchedLineSizesAreFatal)
{
    params.l2.lineBytes = 64;
    EXPECT_THROW(make(), sim::FatalError);
}
