/** @file Property-style sweeps across random inputs: invariants that
 *        must hold for any configuration. */

#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "eib/eib.hh"
#include "sim/rng.hh"
#include "test_util.hh"

using namespace cellbw;

/* --- EIB invariants --------------------------------------------------- */

TEST(EibProperties, RandomTransfersAllCompleteAndConserveBytes)
{
    sim::Rng rng(17);
    sim::ClockSpec clock;
    sim::EventQueue eq;
    eib::EibParams params;
    eib::Eib bus("eib", eq, clock, params);

    std::uint64_t bytes_requested = 0;
    unsigned completions = 0;
    const unsigned n = 500;
    for (unsigned i = 0; i < n; ++i) {
        unsigned src = static_cast<unsigned>(rng.uniformInt(0, 11));
        unsigned dst;
        do {
            dst = static_cast<unsigned>(rng.uniformInt(0, 11));
        } while (dst == src);
        auto bytes = static_cast<std::uint32_t>(
            rng.uniformInt(1, 8) * 16);
        bytes_requested += bytes;
        bus.transfer(src, dst, bytes, [&] { ++completions; });
    }
    eq.run();
    EXPECT_EQ(completions, n);
    EXPECT_EQ(bus.bytesMoved(), bytes_requested);
    EXPECT_EQ(bus.packets(), n);
}

TEST(EibProperties, ContendersOnOneDestinationShareFairly)
{
    sim::ClockSpec clock;
    sim::EventQueue eq;
    eib::EibParams params;
    eib::Eib bus("eib", eq, clock, params);

    // Ramps 9 and 1 both blast ramp 0; per-packet completions counted.
    unsigned done_a = 0, done_b = 0;
    std::function<void()> send_a = [&] {
        if (++done_a < 200)
            bus.transfer(9, 0, 128, send_a);
    };
    std::function<void()> send_b = [&] {
        if (++done_b < 200)
            bus.transfer(1, 0, 128, send_b);
    };
    bus.transfer(9, 0, 128, send_a);
    bus.transfer(1, 0, 128, send_b);
    eq.runUntil(200 * 16);      // enough for ~200 line slots at the port
    // Neither sender is starved.
    EXPECT_GT(done_a, 50u);
    EXPECT_GT(done_b, 50u);
    eq.run();
}

TEST(EibProperties, MorePinnedFlowsNeverIncreaseSingleFlowThroughput)
{
    // A flow's completion time only grows when a conflicting flow is
    // added.
    auto run = [&](bool with_conflict) {
        sim::ClockSpec clock;
        sim::EventQueue eq;
        eib::EibParams params;
        eib::Eib bus("eib", eq, clock, params);
        Tick done = 0;
        for (int i = 0; i < 100; ++i)
            bus.transfer(0, 3, 128, [&] { done = eq.now(); });
        if (with_conflict)
            for (int i = 0; i < 100; ++i)
                bus.transfer(11, 4, 128, [] {});
        eq.run();
        return done;
    };
    EXPECT_LE(run(false), run(true));
}

/* --- Experiment invariants across seeds -------------------------------- */

class SeededShapes : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    cell::CellConfig cfg;
};

TEST_P(SeededShapes, ListNeverLosesToElemAtSmallSizes)
{
    for (std::uint32_t elem : {128u, 256u, 512u}) {
        cell::CellSystem s1(cfg, GetParam());
        cell::CellSystem s2(cfg, GetParam());
        core::SpeSpeConfig sc;
        sc.numSpes = 2;
        sc.elemBytes = elem;
        sc.bytesPerStream = 512 * util::KiB;
        double elem_bw = core::runSpeSpe(s1, sc);
        sc.useList = true;
        double list_bw = core::runSpeSpe(s2, sc);
        EXPECT_GE(list_bw, elem_bw) << "elem=" << elem;
    }
}

TEST(ShapeAverages, CouplesBeatCyclesOverPlacements)
{
    // Per-placement either topology can get lucky; the paper's claim
    // (and ours) is about the average over placements.
    cell::CellConfig cfg;
    double couples = 0.0, cycle = 0.0;
    const unsigned seeds = 6;
    for (std::uint64_t seed = 60; seed < 60 + seeds; ++seed) {
        cell::CellSystem s1(cfg, seed);
        cell::CellSystem s2(cfg, seed);
        core::SpeSpeConfig sc;
        sc.numSpes = 8;
        sc.elemBytes = 4096;
        sc.bytesPerStream = 512 * util::KiB;
        couples += core::runSpeSpe(s1, sc);
        sc.mode = core::SpeSpeMode::Cycle;
        cycle += core::runSpeSpe(s2, sc);
    }
    EXPECT_LT(cycle / seeds, couples / seeds);
}

TEST_P(SeededShapes, PairBandwidthIsPlacementIndependent)
{
    cell::CellSystem sys(cfg, GetParam());
    core::SpeSpeConfig sc;
    sc.numSpes = 2;
    sc.elemBytes = 4096;
    sc.bytesPerStream = 512 * util::KiB;
    double bw = core::runSpeSpe(sys, sc);
    // A lone pair has the rings to itself wherever it lands.
    EXPECT_NEAR(bw, 33.6, 0.7);
}

TEST_P(SeededShapes, WeakScalingFromTwoToFourSpes)
{
    cell::CellSystem s1(cfg, GetParam());
    cell::CellSystem s2(cfg, GetParam());
    core::SpeSpeConfig sc;
    sc.numSpes = 2;
    sc.elemBytes = 4096;
    sc.bytesPerStream = 512 * util::KiB;
    double two = core::runSpeSpe(s1, sc);
    sc.numSpes = 4;
    double four = core::runSpeSpe(s2, sc);
    // Two independent pairs: between 1x (full conflict) and 2.05x.
    EXPECT_GE(four, 0.99 * two);
    EXPECT_LE(four, 2.05 * two);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededShapes,
                         ::testing::Values(11ull, 23ull, 31ull, 47ull));
