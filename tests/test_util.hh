/**
 * @file
 * Shared helpers for the cellbw test suite.
 */

#ifndef CELLBW_TESTS_TEST_UTIL_HH
#define CELLBW_TESTS_TEST_UTIL_HH

#include <vector>

#include "cell/cell_system.hh"
#include "sim/task.hh"

namespace cellbw::test
{

/** Start @p task, drain the queue, and propagate any task exception. */
inline void
runToCompletion(sim::EventQueue &eq, sim::Task &task)
{
    task.start();
    eq.run();
    task.rethrow();
}

} // namespace cellbw::test

#endif // CELLBW_TESTS_TEST_UTIL_HH
