/** @file Unit tests for the SPE local store. */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/logging.hh"
#include "spe/local_store.hh"

using namespace cellbw;

namespace
{

struct LsFixture : public ::testing::Test
{
    sim::EventQueue eq;
    spe::LocalStoreParams params;

    std::unique_ptr<spe::LocalStore> make()
    {
        return std::make_unique<spe::LocalStore>("ls", eq, params);
    }
};

} // namespace

TEST_F(LsFixture, SizeIs256K)
{
    auto ls = make();
    EXPECT_EQ(ls->size(), 256u * 1024u);
}

TEST_F(LsFixture, DataRoundTrips)
{
    auto ls = make();
    const char msg[] = "synergistic";
    ls->write(0x100, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    ls->read(0x100, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
    EXPECT_EQ(ls->byteAt(0x100), 's');
}

TEST_F(LsFixture, FillWorks)
{
    auto ls = make();
    ls->fill(0, 0x5A, 128);
    EXPECT_EQ(ls->byteAt(0), 0x5A);
    EXPECT_EQ(ls->byteAt(127), 0x5A);
    EXPECT_EQ(ls->byteAt(128), 0x00);
}

TEST_F(LsFixture, OutOfBoundsAccessIsFatal)
{
    auto ls = make();
    char buf[16];
    EXPECT_THROW(ls->read(256 * 1024 - 8, buf, 16), sim::FatalError);
    EXPECT_THROW(ls->write(256 * 1024, buf, 1), sim::FatalError);
    EXPECT_THROW(ls->byteAt(256 * 1024), sim::FatalError);
}

TEST_F(LsFixture, ExactEndOfStoreIsLegal)
{
    auto ls = make();
    char buf[16] = {};
    ls->write(256 * 1024 - 16, buf, 16);    // must not throw
}

TEST_F(LsFixture, PortMovesSixteenBytesPerCycle)
{
    auto ls = make();
    Tick t = ls->reservePort(128);
    EXPECT_EQ(t, 8u + params.accessLatency);
}

TEST_F(LsFixture, PortReservationsSerialize)
{
    auto ls = make();
    ls->reservePort(128);
    Tick t2 = ls->reservePort(128);
    EXPECT_EQ(t2, 16u + params.accessLatency);
    EXPECT_EQ(ls->portFreeAt(), 16u);
    EXPECT_EQ(ls->bytesAccessed(), 256u);
}

TEST_F(LsFixture, SubWidthAccessStillCostsACycle)
{
    auto ls = make();
    Tick t = ls->reservePort(4);
    EXPECT_EQ(t, 1u + params.accessLatency);
}

TEST_F(LsFixture, ZeroWidthPortIsFatal)
{
    params.bytesPerCycle = 0;
    EXPECT_THROW(make(), sim::FatalError);
}
