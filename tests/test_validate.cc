/** @file Tests for core::runValidate — setup-error exit codes and a
 *        real end-to-end pass/fail run on a tiny experiment. */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/validate.hh"
#include "util/file.hh"

using namespace cellbw;
namespace fs = std::filesystem;

namespace
{

/** A unique scratch tree per test, removed on destruction. */
struct ScratchDir
{
    explicit ScratchDir(const std::string &tag)
        : path((fs::temp_directory_path() /
                ("cellbw-validate-test-" + tag))
                   .string())
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }

    std::string sub(const std::string &name) const
    {
        const std::string p = path + "/" + name;
        fs::create_directories(p);
        return p;
    }

    std::string path;
};

core::ValidateSpec
baseSpec(const ScratchDir &dir)
{
    core::ValidateSpec spec;
    spec.baselineDir = dir.path + "/baselines";
    spec.outDir = dir.path + "/out";
    spec.cacheDir = dir.path + "/cache";
    spec.terse = true;
    spec.forward = {"--quick"};
    return spec;
}

void
writeBaseline(const core::ValidateSpec &spec, const std::string &name,
              const std::string &body)
{
    fs::create_directories(spec.baselineDir);
    ASSERT_TRUE(
        util::writeFileAtomic(spec.baselineDir + "/" + name, body));
}

} // namespace

TEST(Validate, MissingBaselineDirIsSetupFailure)
{
    ScratchDir dir("missing-dir");
    core::ValidateSpec spec = baseSpec(dir);
    spec.baselineDir = dir.path + "/no-such-dir";

    core::ValidateOutcome outcome;
    EXPECT_EQ(core::runValidate(spec, &outcome), 2);
    EXPECT_TRUE(outcome.checks.empty());
}

TEST(Validate, MalformedBaselineIsSetupFailure)
{
    ScratchDir dir("malformed");
    core::ValidateSpec spec = baseSpec(dir);
    writeBaseline(spec, "broken.json", "{ not json");
    EXPECT_EQ(core::runValidate(spec), 2);

    // Valid JSON but the wrong schema must be rejected too.
    writeBaseline(spec, "broken.json", R"json({"schema": "other-v9"})json");
    EXPECT_EQ(core::runValidate(spec), 2);

    // Right schema, but no checks to evaluate.
    writeBaseline(spec, "broken.json",
                  R"json({"schema": "cellbw-paper-v1", "checks": []})json");
    EXPECT_EQ(core::runValidate(spec), 2);
}

TEST(Validate, UnknownExperimentNamesAreSetupFailures)
{
    ScratchDir dir("unknown-exp");
    core::ValidateSpec spec = baseSpec(dir);

    // A baseline pinned to an experiment the registry doesn't have.
    writeBaseline(spec, "ghost.json", R"json({
      "schema": "cellbw-paper-v1",
      "experiment": "no_such_experiment",
      "checks": [{"rule": "x", "kind": "band",
                  "select": {}, "column": "GB/s", "min": 0}]
    })json");
    EXPECT_EQ(core::runValidate(spec), 2);

    // An explicit target that isn't a registered experiment.
    writeBaseline(spec, "ghost.json", R"json({
      "schema": "cellbw-paper-v1",
      "experiment": "ls_spu_ls",
      "checks": [{"rule": "x", "kind": "band",
                  "select": {}, "column": "GB/s", "min": 0}]
    })json");
    spec.targets = {"definitely_not_registered"};
    EXPECT_EQ(core::runValidate(spec), 2);

    // A real experiment with no paper baseline behind it.
    spec.targets = {"fig03_ppe_l1"};
    EXPECT_EQ(core::runValidate(spec), 2);
}

TEST(Validate, PassingAndFailingBandsOnRealRun)
{
    ScratchDir dir("real-run");
    core::ValidateSpec spec = baseSpec(dir);

    // ls_spu_ls --quick takes milliseconds; the 16B load hits the LS
    // peak, so a generous absolute band and an oracle-relative band
    // both hold, while a deliberately impossible band must fail and
    // name the offending point.
    writeBaseline(spec, "ls_spu_ls.json", R"json({
      "schema": "cellbw-paper-v1",
      "experiment": "ls_spu_ls",
      "checks": [
        {"rule": "test.band-holds", "kind": "band",
         "select": {"op": "load", "elem": "16B"},
         "column": "GB/s", "min": 20.0, "max": 40.0},
        {"rule": "test.oracle-band-holds", "kind": "band",
         "select": {"op": "load", "elem": "16B"},
         "column": "GB/s",
         "oracle": "ls", "rel_min": 0.9, "rel_max": 1.01},
        {"rule": "test.impossible-band", "kind": "band",
         "select": {"op": "load", "elem": "16B"},
         "column": "GB/s", "min": 1000.0}
      ]
    })json");

    core::ValidateOutcome outcome;
    EXPECT_EQ(core::runValidate(spec, &outcome), 1);
    ASSERT_EQ(outcome.checks.size(), 3u);
    EXPECT_EQ(outcome.passed, 2u);
    EXPECT_EQ(outcome.failed, 1u);

    const core::CheckOutcome &bad = outcome.checks[2];
    EXPECT_EQ(bad.rule, "test.impossible-band");
    EXPECT_EQ(bad.status, core::CheckOutcome::Status::Fail);
    // The diagnostic names the offending point and its value.
    EXPECT_NE(bad.detail.find("op=load"), std::string::npos)
        << bad.detail;
    EXPECT_NE(bad.detail.find("1000"), std::string::npos) << bad.detail;

    // Dropping the impossible check makes the same tree validate
    // clean, served entirely from the result cache this time.
    writeBaseline(spec, "ls_spu_ls.json", R"json({
      "schema": "cellbw-paper-v1",
      "experiment": "ls_spu_ls",
      "checks": [
        {"rule": "test.band-holds", "kind": "band",
         "select": {"op": "load", "elem": "16B"},
         "column": "GB/s", "min": 20.0, "max": 40.0}
      ]
    })json");
    core::ValidateOutcome clean;
    EXPECT_EQ(core::runValidate(spec, &clean), 0);
    EXPECT_EQ(clean.failed, 0u);
    EXPECT_EQ(clean.passed, 1u);
    EXPECT_TRUE(clean.ok());
}

TEST(Validate, CrossExperimentChecksSkipWhenPeerNotRun)
{
    ScratchDir dir("skip");
    core::ValidateSpec spec = baseSpec(dir);

    writeBaseline(spec, "ls_spu_ls.json", R"json({
      "schema": "cellbw-paper-v1",
      "experiment": "ls_spu_ls",
      "checks": [
        {"rule": "test.band-holds", "kind": "band",
         "select": {"op": "load", "elem": "16B"},
         "column": "GB/s", "min": 20.0}
      ]
    })json");
    // A cross-experiment rule whose peer (fig03_ppe_l1) is baselined
    // but not selected: the rule must Skip, not fail.
    writeBaseline(spec, "fig03_ppe_l1.json", R"json({
      "schema": "cellbw-paper-v1",
      "experiment": "fig03_ppe_l1",
      "checks": [
        {"rule": "test.peer-band", "kind": "band",
         "select": {}, "column": "GB/s", "min": 0.0}
      ]
    })json");
    writeBaseline(spec, "rules.json", R"json({
      "schema": "cellbw-paper-v1",
      "checks": [
        {"rule": "test.cross-rule", "kind": "ordering",
         "a": {"experiment": "ls_spu_ls",
               "select": {"op": "load", "elem": "16B"},
               "column": "GB/s", "agg": "mean"},
         "b": {"experiment": "fig03_ppe_l1",
               "select": {"op": "load"},
               "column": "GB/s", "agg": "mean"},
         "cmp": ">=", "factor": 1.0}
      ]
    })json");

    spec.targets = {"ls_spu_ls"};
    core::ValidateOutcome outcome;
    EXPECT_EQ(core::runValidate(spec, &outcome), 0);
    EXPECT_EQ(outcome.failed, 0u);
    ASSERT_EQ(outcome.skipped, 2u);

    bool sawSkip = false;
    for (const auto &c : outcome.checks) {
        if (c.rule != "test.cross-rule")
            continue;
        sawSkip = true;
        EXPECT_EQ(c.status, core::CheckOutcome::Status::Skip);
        EXPECT_NE(c.detail.find("fig03_ppe_l1"), std::string::npos)
            << c.detail;
    }
    EXPECT_TRUE(sawSkip);

    // validate.json lands in the out tree for tooling.
    std::string report;
    EXPECT_TRUE(util::readFile(spec.outDir + "/validate.json", report));
    EXPECT_NE(report.find("test.cross-rule"), std::string::npos);
}
