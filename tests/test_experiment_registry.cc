/** @file Tests for the experiment registry and ExperimentContext. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment_context.hh"
#include "core/experiment_registry.hh"
#include "sim/logging.hh"

using namespace cellbw;

namespace
{

int
trivialBody(core::ExperimentContext &)
{
    return 0;
}

int
exitCodeBody(core::ExperimentContext &)
{
    return 42;
}

bool
parseCtx(core::ExperimentContext &ctx,
         const std::vector<std::string> &args)
{
    std::vector<const char *> argv{"prog"};
    for (const auto &a : args)
        argv.push_back(a.c_str());
    return ctx.parse(static_cast<int>(argv.size()), argv.data());
}

} // namespace

// Registered at static-init time, exactly like the bench TUs.
CELLBW_REGISTER_EXPERIMENT(test_registered_exp, "Test",
                           "a registered test experiment",
                           exitCodeBody)

// A native-backend registration via the optional 5th macro argument.
CELLBW_REGISTER_EXPERIMENT(test_native_exp, "Test N",
                           "a registered native test experiment",
                           trivialBody, core::Backend::Native)

TEST(ExperimentRegistry, LookupAndList)
{
    auto &reg = core::ExperimentRegistry::instance();
    const auto *e = reg.find("test_registered_exp");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->name, "test_registered_exp");
    EXPECT_EQ(e->figure, "Test");
    EXPECT_EQ(e->description, "a registered test experiment");

    EXPECT_EQ(reg.find("no_such_experiment"), nullptr);

    std::string listing = reg.listText();
    EXPECT_NE(listing.find("test_registered_exp"), std::string::npos);
    EXPECT_NE(listing.find("a registered test experiment"),
              std::string::npos);

    // sorted() is sorted by name and contains every registration.
    auto all = reg.sorted();
    EXPECT_EQ(all.size(), reg.size());
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1]->name, all[i]->name);
}

TEST(ExperimentRegistry, DuplicateNameIsFatal)
{
    auto &reg = core::ExperimentRegistry::instance();
    EXPECT_THROW(reg.add({"test_registered_exp", "Dup", "duplicate",
                          trivialBody}),
                 sim::FatalError);
}

TEST(ExperimentRegistry, RunCliUnknownNameFails)
{
    const char *argv[] = {"prog"};
    EXPECT_EQ(core::runExperimentCli("no_such_experiment", 1, argv), 1);
}

TEST(ExperimentRegistry, RunCliRunsBody)
{
    const char *argv[] = {"prog", "--quick"};
    EXPECT_EQ(core::runExperimentCli("test_registered_exp", 2, argv),
              42);
}

TEST(ExperimentRegistry, RunCliParseErrorFails)
{
    const char *argv[] = {"prog", "--no-such-flag"};
    EXPECT_EQ(core::runExperimentCli("test_registered_exp", 2, argv),
              1);
}

TEST(ExperimentContext, RejectsZeroRuns)
{
    core::ExperimentContext ctx("ctx_test", "d");
    EXPECT_FALSE(parseCtx(ctx, {"--runs", "0"}));
}

TEST(ExperimentContext, AcceptsOneRun)
{
    core::ExperimentContext ctx("ctx_test", "d");
    EXPECT_TRUE(parseCtx(ctx, {"--runs", "1"}));
    EXPECT_EQ(ctx.repeat.runs, 1u);
}

TEST(ExperimentContext, RejectsBadMachineConfig)
{
    core::ExperimentContext ctx("ctx_test", "d");
    EXPECT_FALSE(parseCtx(ctx, {"--spes", "9"}));
}

TEST(ExperimentContext, QuickClampsRuns)
{
    core::ExperimentContext ctx("ctx_test", "d");
    EXPECT_TRUE(parseCtx(ctx, {"--quick", "--runs", "50"}));
    EXPECT_LE(ctx.repeat.runs, 3u);
}

TEST(ExperimentContext, ComputesCacheKeyOnParse)
{
    core::ExperimentContext ctx("ctx_test", "d");
    ASSERT_TRUE(parseCtx(ctx, {"--quick"}));
    EXPECT_EQ(ctx.cacheKey().size(), 16u);
    EXPECT_NE(ctx.cacheMaterial().find("experiment ctx_test"),
              std::string::npos);
}

TEST(ExperimentRegistry, BackendDefaultsToSimAndListsColumn)
{
    auto &reg = core::ExperimentRegistry::instance();
    const auto *simExp = reg.find("test_registered_exp");
    ASSERT_NE(simExp, nullptr);
    EXPECT_EQ(simExp->backend, core::Backend::Sim);
    const auto *natExp = reg.find("test_native_exp");
    ASSERT_NE(natExp, nullptr);
    EXPECT_EQ(natExp->backend, core::Backend::Native);

    // The listing carries the backend column, and the filter narrows
    // to one backend.
    std::string all = reg.listText();
    EXPECT_NE(all.find("test_native_exp"), std::string::npos);
    std::string natOnly = reg.listText(core::Backend::Native);
    EXPECT_NE(natOnly.find("test_native_exp"), std::string::npos);
    EXPECT_NE(natOnly.find("native"), std::string::npos);
    EXPECT_EQ(natOnly.find("test_registered_exp"), std::string::npos);
    std::string simOnly = reg.listText(core::Backend::Sim);
    EXPECT_EQ(simOnly.find("test_native_exp"), std::string::npos);
    EXPECT_NE(simOnly.find("test_registered_exp"), std::string::npos);
}

TEST(ExperimentContext, RejectsUnknownBackendByName)
{
    core::ExperimentContext ctx("ctx_test", "d");
    testing::internal::CaptureStderr();
    EXPECT_FALSE(parseCtx(ctx, {"--backend", "gpu"}));
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("unknown backend 'gpu'"), std::string::npos);
    EXPECT_NE(err.find("sim, native"), std::string::npos);
}

TEST(ExperimentContext, RejectsBackendMismatchingRegistration)
{
    core::ExperimentContext ctx("ctx_test", "d", core::Backend::Sim);
    EXPECT_FALSE(parseCtx(ctx, {"--backend", "native"}));

    core::ExperimentContext nat("ctx_test", "d", core::Backend::Native);
    EXPECT_FALSE(parseCtx(nat, {"--backend", "sim"}));
    core::ExperimentContext nat2("ctx_test", "d",
                                 core::Backend::Native);
    EXPECT_TRUE(parseCtx(nat2, {"--backend", "native"}));
}

TEST(ExperimentContext, WarmupDefaultsPerBackend)
{
    core::ExperimentContext sim("ctx_test", "d");
    ASSERT_TRUE(parseCtx(sim, {}));
    EXPECT_EQ(sim.repeat.warmup, 0u);

    core::ExperimentContext nat("ctx_test", "d", core::Backend::Native);
    ASSERT_TRUE(parseCtx(nat, {}));
    EXPECT_EQ(nat.repeat.warmup, 1u);

    core::ExperimentContext explicitWarm("ctx_test", "d");
    ASSERT_TRUE(parseCtx(explicitWarm, {"--warmup", "3"}));
    EXPECT_EQ(explicitWarm.repeat.warmup, 3u);
}
