/** @file Tests for the analytic bandwidth oracle (core::Oracle). */

#include <gtest/gtest.h>

#include "cell/config.hh"
#include "core/oracle.hh"
#include "util/json.hh"

using namespace cellbw;

namespace
{

cell::CellConfig
configAt(double ghz)
{
    cell::CellConfig cfg;
    cfg.clock.cpuHz = ghz * 1e9;
    // Bank/IO rates are specified in GB/s and are clock-invariant;
    // EIB/LS widths are per-cycle and scale.  Mirror fromOptions.
    return cfg;
}

} // namespace

TEST(Oracle, Table1PeaksAtPaperClock)
{
    core::Oracle o{cell::CellConfig{}};

    // Table 1 of the paper, derived from the 2.1 GHz blade's widths.
    EXPECT_DOUBLE_EQ(o.rampPeak(), 16.8);
    EXPECT_DOUBLE_EQ(o.lsPeak(), 33.6);
    EXPECT_DOUBLE_EQ(o.l1Peak(), 33.6);
    EXPECT_DOUBLE_EQ(o.l2Peak(), 33.6);
    EXPECT_DOUBLE_EQ(o.pairPeak(), 33.6);
    EXPECT_DOUBLE_EQ(o.eibPeak(), 134.4);
    EXPECT_NEAR(o.micIoifPeak(), 23.8, 1e-9);
    EXPECT_NEAR(o.ioPeak(), 7.0, 1e-9);
    EXPECT_NEAR(o.memSustained(), 31.0, 1e-9);
}

TEST(Oracle, NominalClockGivesQuotedCellFigures)
{
    // At the nominal 3.2 GHz Cell the same formulas produce the widely
    // quoted 204.8 GB/s EIB and 25.6 GB/s XDR numbers.
    core::Oracle o{configAt(3.2)};
    EXPECT_NEAR(o.eibPeak(), 204.8, 1e-9);
    EXPECT_NEAR(o.rampPeak(), 25.6, 1e-9);
    EXPECT_NEAR(o.lsPeak(), 51.2, 1e-9);
}

TEST(Oracle, PeaksScaleLinearlyWithClock)
{
    core::Oracle full{configAt(2.1)};
    core::Oracle half{configAt(1.05)};
    EXPECT_DOUBLE_EQ(half.rampPeak(), full.rampPeak() / 2.0);
    EXPECT_DOUBLE_EQ(half.lsPeak(), full.lsPeak() / 2.0);
    EXPECT_DOUBLE_EQ(half.eibPeak(), full.eibPeak() / 2.0);
    EXPECT_DOUBLE_EQ(half.pairPeak(), full.pairPeak() / 2.0);
}

TEST(Oracle, NamedLookupCoversEveryPeak)
{
    core::Oracle o{cell::CellConfig{}};
    double v = 0.0;

    ASSERT_TRUE(o.peak("ramp", v));
    EXPECT_DOUBLE_EQ(v, 16.8);
    ASSERT_TRUE(o.peak("xdr", v));
    EXPECT_DOUBLE_EQ(v, 16.8);
    ASSERT_TRUE(o.peak("eib", v));
    EXPECT_DOUBLE_EQ(v, 134.4);
    ASSERT_TRUE(o.peak("couples:4", v));
    EXPECT_DOUBLE_EQ(v, 4 * 16.8);
    ASSERT_TRUE(o.peak("cycle:8", v));
    EXPECT_DOUBLE_EQ(v, 8 * 16.8);

    EXPECT_FALSE(o.peak("no-such-peak", v));
    EXPECT_FALSE(o.peak("couples:", v));
    EXPECT_FALSE(o.peak("couples:x", v));
    EXPECT_FALSE(o.peak("couples:0", v));

    for (const auto &kv : o.table()) {
        double looked = 0.0;
        ASSERT_TRUE(o.peak(kv.first, looked)) << kv.first;
        EXPECT_DOUBLE_EQ(looked, kv.second) << kv.first;
    }
}

TEST(Oracle, FromReportConfigUsesMachineOptions)
{
    util::JsonValue config;
    std::string err;
    ASSERT_TRUE(util::JsonValue::parse(
        R"({"cpu-ghz": 4.2, "runs": 3, "seed": 42, "csv": false})",
        config, err))
        << err;

    core::Oracle o{cell::CellConfig{}};
    ASSERT_TRUE(core::Oracle::fromReportConfig(config, o, err)) << err;
    // Twice the paper clock doubles the per-cycle peaks; the
    // result-shaping options (runs/seed) must be ignored.
    EXPECT_NEAR(o.rampPeak(), 33.6, 1e-9);
    EXPECT_NEAR(o.eibPeak(), 268.8, 1e-9);
}

TEST(Oracle, FromReportConfigRejectsBadDocuments)
{
    core::Oracle o{cell::CellConfig{}};
    std::string err;

    util::JsonValue notObject;
    ASSERT_TRUE(util::JsonValue::parse("[1, 2]", notObject, err)) << err;
    EXPECT_FALSE(core::Oracle::fromReportConfig(notObject, o, err));
    EXPECT_FALSE(err.empty());

    util::JsonValue nested;
    ASSERT_TRUE(util::JsonValue::parse(R"({"cpu-ghz": {"nested": 1}})",
                                       nested, err))
        << err;
    EXPECT_FALSE(core::Oracle::fromReportConfig(nested, o, err));
}

TEST(Oracle, GatherPeaksFollowTheIssueOverheads)
{
    core::Oracle o{cell::CellConfig{}};
    // 24 bus cycles per element-wise command vs 2 per list element at
    // the 1.05 GHz bus: 8 B elements issue at 0.35 vs 4.2 GB/s.
    EXPECT_NEAR(o.gatherElemPeak(8), 0.35, 1e-9);
    EXPECT_NEAR(o.gatherListPeak(8), 4.2, 1e-9);
    EXPECT_DOUBLE_EQ(o.gatherListPeak(8) / o.gatherElemPeak(8), 12.0);
    // Large elements amortize the issue cost and cap at the XDR ramp.
    EXPECT_DOUBLE_EQ(o.gatherElemPeak(16384), o.rampPeak());
    EXPECT_DOUBLE_EQ(o.gatherListPeak(64), o.rampPeak());
}

TEST(Oracle, GatherPeaksScaleWithTheConfiguredOverhead)
{
    cell::CellConfig cfg;
    cfg.spe.mfc.elemOverheadBus *= 2;
    cfg.spe.mfc.listElemOverheadBus *= 2;
    core::Oracle o{cfg};
    core::Oracle base{cell::CellConfig{}};
    EXPECT_DOUBLE_EQ(o.gatherElemPeak(8), base.gatherElemPeak(8) / 2.0);
    EXPECT_DOUBLE_EQ(o.gatherListPeak(8), base.gatherListPeak(8) / 2.0);
}

TEST(Oracle, GatherPeaksResolveByName)
{
    core::Oracle o{cell::CellConfig{}};
    double v = 0;
    ASSERT_TRUE(o.peak("gather-elem:8", v));
    EXPECT_NEAR(v, 0.35, 1e-9);
    ASSERT_TRUE(o.peak("gather-list:128", v));
    EXPECT_DOUBLE_EQ(v, o.gatherListPeak(128));
    EXPECT_FALSE(o.peak("gather-elem:", v));
    EXPECT_FALSE(o.peak("gather-bogus:8", v));
}
