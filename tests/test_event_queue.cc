/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace cellbw;

TEST(EventQueue, StartsAtTickZero)
{
    sim::EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, EventsFireInTimestampOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickEventsFireInFifoOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(1, [&] {
            ++fired;
            eq.schedule(1, [&] { ++fired; });
        });
    });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, ZeroDelayFiresAtCurrentTick)
{
    sim::EventQueue eq;
    Tick seen = maxTick;
    eq.schedule(7, [&] {
        eq.schedule(0, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesNow)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });

    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);

    // runUntil with no eligible events still advances time.
    EXPECT_EQ(eq.runUntil(25), 0u);
    EXPECT_EQ(eq.now(), 25u);

    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    sim::EventQueue eq;
    Tick when = 0;
    eq.scheduleAt(123, [&] { when = eq.now(); });
    eq.run();
    EXPECT_EQ(when, 123u);
}

TEST(EventQueue, ProcessedCountAccumulates)
{
    sim::EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    for (int i = 0; i < 3; ++i)
        eq.schedule(1, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsProcessed(), 8u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    sim::EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 10u);
    EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
}
