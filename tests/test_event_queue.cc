/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"

using namespace cellbw;

TEST(EventQueue, StartsAtTickZero)
{
    sim::EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, EventsFireInTimestampOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickEventsFireInFifoOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, AppendsToTheDrainingTickFireInFifoOrder)
{
    // The batched drain dispatches a bucket while callbacks append to
    // it: a same-tick schedule from inside an event must fire this
    // tick, after everything already queued, in schedule order — even
    // when the fan-out spills across several bucket chunks.
    sim::EventQueue eq;
    std::vector<int> order;
    constexpr int kFanout = 200;    // several 62-slot chunks
    eq.schedule(5, [&] {
        for (int i = 0; i < kFanout; ++i)
            eq.schedule(0, [&order, i] { order.push_back(i); });
    });
    eq.schedule(5, [&] { order.push_back(-1); });
    EXPECT_EQ(eq.run(), static_cast<std::uint64_t>(kFanout) + 2);
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kFanout) + 1);
    EXPECT_EQ(order[0], -1);        // queued before the fan-out landed
    for (int i = 0; i < kFanout; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i) + 1], i);
    EXPECT_EQ(eq.now(), 5u);        // all of it happened at tick 5
}

TEST(EventQueue, DeepSameTickChainsStayOnTheirTick)
{
    // A chain of zero-delay reschedules must drain before time moves.
    sim::EventQueue eq;
    int depth = 0;
    struct Chain
    {
        sim::EventQueue &eq;
        int &depth;
        void
        step()
        {
            if (++depth < 100)
                eq.schedule(0, [this] { step(); });
        }
    } chain{eq, depth};
    eq.schedule(3, [&] { chain.step(); });
    eq.schedule(4, [&] { EXPECT_EQ(depth, 100); });
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(EventQueue, ChunkPoolRecyclesAcrossQueueLifetimes)
{
    // Teardown parks bucket chunks in a thread-local pool for the next
    // queue instead of freeing page-sized blocks one by one.  Pure
    // behavior check: repeated build/run/destroy cycles stay correct,
    // including queues destroyed with events still pending.
    long sum = 0;
    for (int round = 0; round < 8; ++round) {
        sim::EventQueue eq;
        for (int i = 0; i < 500; ++i)
            eq.schedule(static_cast<Tick>(i % 97), [&sum] { ++sum; });
        if (round % 2 == 0)
            eq.run();       // odd rounds tear down with pending events
    }
    EXPECT_EQ(sum, 4 * 500);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(1, [&] {
            ++fired;
            eq.schedule(1, [&] { ++fired; });
        });
    });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, ZeroDelayFiresAtCurrentTick)
{
    sim::EventQueue eq;
    Tick seen = maxTick;
    eq.schedule(7, [&] {
        eq.schedule(0, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesNow)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });

    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);

    // runUntil with no eligible events still advances time.
    EXPECT_EQ(eq.runUntil(25), 0u);
    EXPECT_EQ(eq.now(), 25u);

    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    sim::EventQueue eq;
    Tick when = 0;
    eq.scheduleAt(123, [&] { when = eq.now(); });
    eq.run();
    EXPECT_EQ(when, 123u);
}

TEST(EventQueue, ProcessedCountAccumulates)
{
    sim::EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    for (int i = 0; i < 3; ++i)
        eq.schedule(1, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsProcessed(), 8u);
}

TEST(EventQueue, FarFutureEventsBeyondTheBucketWindow)
{
    // Events past the near-future ring land in the overflow level and
    // must still fire in timestamp order.
    sim::EventQueue eq;
    const Tick w = sim::EventQueue::window();
    std::vector<Tick> order;
    eq.schedule(3 * w + 5, [&] { order.push_back(eq.now()); });
    eq.schedule(10, [&] { order.push_back(eq.now()); });
    eq.schedule(w + 1, [&] { order.push_back(eq.now()); });
    eq.schedule(7 * w, [&] { order.push_back(eq.now()); });
    EXPECT_EQ(eq.pending(), 4u);
    eq.run();
    EXPECT_EQ(order, (std::vector<Tick>{10, w + 1, 3 * w + 5, 7 * w}));
    EXPECT_EQ(eq.now(), 7 * w);
}

TEST(EventQueue, SameTickFifoAcrossTheWindowBoundary)
{
    // Two events at the same far tick T: both overflow, and must fire
    // in schedule order after migrating into the ring together.
    sim::EventQueue eq;
    const Tick t = 5 * sim::EventQueue::window() + 17;
    std::vector<int> order;
    eq.scheduleAt(t, [&] { order.push_back(1); });
    eq.scheduleAt(t, [&] { order.push_back(2); });
    eq.scheduleAt(t, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, MigratedEventFiresBeforeLaterDirectScheduleAtSameTick)
{
    // e1 is scheduled far in the future (overflow).  An intermediate
    // event brings T inside the window and schedules e2 for the same
    // tick T.  e1 was scheduled first and must keep firing first.
    sim::EventQueue eq;
    const Tick w = sim::EventQueue::window();
    const Tick t = 2 * w + 100;
    std::vector<int> order;
    eq.scheduleAt(t, [&] { order.push_back(1); });       // far: overflow
    eq.scheduleAt(2 * w, [&] {                           // brings T near
        eq.scheduleAt(t, [&] { order.push_back(2); });   // direct: bucket
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RunUntilJumpKeepsFifoForFormerlyFarTicks)
{
    // runUntil() advances now() past the point where a far event's tick
    // enters the window; a direct schedule at that tick afterwards must
    // still fire after the earlier (migrated) event.
    sim::EventQueue eq;
    const Tick w = sim::EventQueue::window();
    const Tick t = 2 * w;
    std::vector<int> order;
    eq.scheduleAt(t, [&] { order.push_back(1); });
    EXPECT_EQ(eq.runUntil(t - 10), 0u);
    EXPECT_EQ(eq.now(), t - 10);
    EXPECT_EQ(eq.pending(), 1u);
    eq.scheduleAt(t, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, LargeCapturesFireCorrectly)
{
    // Captures wider than the inline window take the heap path inside
    // InlineFunction; behaviour must be identical.
    sim::EventQueue eq;
    struct Wide
    {
        std::uint64_t payload[16];
    } wide{};
    wide.payload[15] = 99;
    std::uint64_t seen = 0;
    eq.schedule(5, [wide, &seen] { seen = wide.payload[15]; });
    eq.run();
    EXPECT_EQ(seen, 99u);
}

TEST(EventQueue, MoveOnlyCallbackCapture)
{
    sim::EventQueue eq;
    auto p = std::make_unique<int>(41);
    int out = 0;
    eq.schedule(1, [p = std::move(p), &out] { out = *p + 1; });
    eq.run();
    EXPECT_EQ(out, 42);
}

TEST(EventQueue, ManyTicksSpreadOverManyWindows)
{
    // Stress the ring-wrap and migration logic with a deterministic,
    // irregular schedule far wider than one window.
    sim::EventQueue eq;
    const Tick w = sim::EventQueue::window();
    std::uint64_t sum = 0, expected = 0;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        Tick when = (i * 97) % (4 * w);
        expected += when;
        eq.scheduleAt(when, [&sum, &eq] { sum += eq.now(); });
    }
    EXPECT_EQ(eq.run(), 1000u);
    EXPECT_EQ(sum, expected);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sim::EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 10u);
    EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
}
