/** @file Tests for the LS-resident software cache (Eichenberger-style). */

#include <gtest/gtest.h>

#include "runtime/software_cache.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

struct SwCacheFixture : public ::testing::Test
{
    cell::CellConfig cfg;

    void
    runTask(cell::CellSystem &sys, sim::Task t)
    {
        sys.launch(std::move(t));
        sys.run();
    }
};

} // namespace

TEST_F(SwCacheFixture, ReadsThroughAndHitsAfterwards)
{
    cell::CellSystem sys(cfg, 1);
    runtime::SoftwareCache cache(sys, 0);
    EffAddr buf = sys.malloc(64 * 1024);
    sys.memory().store().fill(buf, 0x5C, 64 * 1024);

    std::uint32_t v0 = 0, v1 = 0, v2 = 0;
    auto prog = [&]() -> sim::Task {
        co_await cache.read32(buf + 4, &v0);
        co_await cache.read32(buf + 8, &v1);        // same line: hit
        co_await cache.read32(buf + 4096, &v2);     // new line: miss
    };
    runTask(sys, prog());
    EXPECT_EQ(v0, 0x5C5C5C5Cu);
    EXPECT_EQ(v1, 0x5C5C5C5Cu);
    EXPECT_EQ(v2, 0x5C5C5C5Cu);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(SwCacheFixture, WritesAreVisibleThroughTheCacheBeforeFlush)
{
    cell::CellSystem sys(cfg, 2);
    runtime::SoftwareCache cache(sys, 0);
    EffAddr buf = sys.malloc(4096);

    std::uint32_t got = 0;
    auto prog = [&]() -> sim::Task {
        co_await cache.write32(buf + 64, 0xDEADBEEF);
        co_await cache.read32(buf + 64, &got);
    };
    runTask(sys, prog());
    EXPECT_EQ(got, 0xDEADBEEFu);
    // Memory not updated yet (write-back policy).
    EXPECT_EQ(sys.memory().store().byteAt(buf + 64), 0x00);
}

TEST_F(SwCacheFixture, FlushWritesDirtyLinesToMemory)
{
    cell::CellSystem sys(cfg, 3);
    runtime::SoftwareCache cache(sys, 0);
    EffAddr buf = sys.malloc(4096);

    auto prog = [&]() -> sim::Task {
        co_await cache.write32(buf, 0x01020304);
        co_await cache.write32(buf + 2048, 0x0A0B0C0D);
        co_await cache.flush();
    };
    runTask(sys, prog());
    std::uint32_t m0 = 0, m1 = 0;
    sys.memory().store().read(buf, &m0, 4);
    sys.memory().store().read(buf + 2048, &m1, 4);
    EXPECT_EQ(m0, 0x01020304u);
    EXPECT_EQ(m1, 0x0A0B0C0Du);
    EXPECT_EQ(cache.writebacks(), 2u);
    // Flush invalidates: the next read misses again.
    std::uint32_t v = 0;
    auto prog2 = [&]() -> sim::Task {
        co_await cache.read32(buf, &v);
    };
    runTask(sys, prog2());
    EXPECT_EQ(v, 0x01020304u);
    EXPECT_EQ(cache.misses(), 3u);
}

TEST_F(SwCacheFixture, EvictionWritesBackDirtyVictims)
{
    cell::CellSystem sys(cfg, 4);
    runtime::SoftwareCacheParams params;
    params.sets = 1;
    params.ways = 2;
    runtime::SoftwareCache cache(sys, 0, params);
    // Three distinct lines mapping to the single set.
    EffAddr buf = sys.malloc(4096);

    auto prog = [&]() -> sim::Task {
        co_await cache.write32(buf + 0 * 128, 0x11111111);
        co_await cache.write32(buf + 1 * 128, 0x22222222);
        co_await cache.write32(buf + 2 * 128, 0x33333333);  // evicts #1
        std::uint32_t v = 0;
        co_await cache.read32(buf + 0 * 128, &v);           // miss again
        EXPECT_EQ(v, 0x11111111u);
    };
    runTask(sys, prog());
    EXPECT_GE(cache.writebacks(), 1u);
    EXPECT_EQ(cache.misses(), 4u);
}

TEST_F(SwCacheFixture, UnalignedAccessSpanningLines)
{
    cell::CellSystem sys(cfg, 5);
    runtime::SoftwareCache cache(sys, 0);
    EffAddr buf = sys.malloc(4096);
    for (unsigned i = 0; i < 512; ++i) {
        std::uint8_t b = static_cast<std::uint8_t>(i);
        sys.memory().store().write(buf + i, &b, 1);
    }
    std::uint8_t out[64] = {};
    auto prog = [&]() -> sim::Task {
        co_await cache.read(buf + 100, out, 64);    // crosses 128B line
    };
    runTask(sys, prog());
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(out[i], static_cast<std::uint8_t>(100 + i));
}

TEST_F(SwCacheFixture, HitIsMuchCheaperThanMiss)
{
    cell::CellSystem sys(cfg, 6);
    runtime::SoftwareCache cache(sys, 0);
    EffAddr buf = sys.malloc(4096);

    Tick miss_time = 0, hit_time = 0;
    auto prog = [&]() -> sim::Task {
        std::uint32_t v;
        Tick t0 = sys.now();
        co_await cache.read32(buf, &v);
        miss_time = sys.now() - t0;
        t0 = sys.now();
        co_await cache.read32(buf + 8, &v);
        hit_time = sys.now() - t0;
    };
    runTask(sys, prog());
    // The miss pays a full DMA round trip; the hit only the lookup.
    EXPECT_GT(miss_time, 10 * hit_time);
    EXPECT_EQ(hit_time, 12u);   // lookupCycles
}

TEST_F(SwCacheFixture, HitRateOnLoopedWorkingSet)
{
    cell::CellSystem sys(cfg, 7);
    runtime::SoftwareCache cache(sys, 0);
    EffAddr buf = sys.malloc(cache.capacityBytes());

    auto prog = [&]() -> sim::Task {
        std::uint32_t v;
        // Two passes over a working set that fits: second pass all hits.
        for (int pass = 0; pass < 2; ++pass)
            for (std::uint32_t off = 0; off < cache.capacityBytes();
                 off += 128)
                co_await cache.read32(buf + off, &v);
    };
    runTask(sys, prog());
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST_F(SwCacheFixture, BadGeometryIsFatal)
{
    cell::CellSystem sys(cfg, 8);
    runtime::SoftwareCacheParams params;
    params.sets = 0;
    EXPECT_THROW(runtime::SoftwareCache(sys, 0, params),
                 sim::FatalError);
}
