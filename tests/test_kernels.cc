/** @file Tests for the small-kernel suite (the paper's future work). */

#include <gtest/gtest.h>

#include "core/kernels.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

core::KernelResult
run(core::KernelKind kind, std::uint64_t n, unsigned spes,
    bool doubleBuffer = true)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    core::KernelSpec spec;
    spec.kind = kind;
    spec.n = n;
    spec.spes = spes;
    spec.doubleBuffer = doubleBuffer;
    return core::runKernel(sys, spec);
}

} // namespace

class StreamKernels : public ::testing::TestWithParam<core::KernelKind>
{
};

TEST_P(StreamKernels, VerifiesOnOneAndFourSpes)
{
    auto r1 = run(GetParam(), 64 * 1024, 1);
    EXPECT_TRUE(r1.verified) << "maxError=" << r1.maxError;
    auto r4 = run(GetParam(), 64 * 1024, 4);
    EXPECT_TRUE(r4.verified) << "maxError=" << r4.maxError;
    EXPECT_GT(r4.gbps, r1.gbps);
}

INSTANTIATE_TEST_SUITE_P(AllStream, StreamKernels,
                         ::testing::Values(core::KernelKind::Copy,
                                           core::KernelKind::Scale,
                                           core::KernelKind::Add,
                                           core::KernelKind::Triad,
                                           core::KernelKind::Dot));

TEST(Kernels, CopyMovesTwiceTheBytesOfDot)
{
    auto copy = run(core::KernelKind::Copy, 64 * 1024, 2);
    auto dot = run(core::KernelKind::Dot, 64 * 1024, 2);
    // copy: n in + n out; dot: 2n in, nothing out (plus 16 B partials).
    EXPECT_NEAR(static_cast<double>(copy.bytes),
                static_cast<double>(dot.bytes), 256.0);
    EXPECT_EQ(copy.flops, 0u);
    EXPECT_EQ(dot.flops, 2ull * 64 * 1024);
}

TEST(Kernels, TriadIsMemoryBound)
{
    auto r = run(core::KernelKind::Triad, 1 << 19, 4);
    EXPECT_TRUE(r.verified);
    // Intensity 2 flops / 12 bytes.
    EXPECT_NEAR(r.intensity, 2.0 / 12.0, 0.02);
    // Far below the 4-SPE compute roof (67 GFLOPS).
    EXPECT_LT(r.gflops, 5.0);
    // But the memory system is well used.
    EXPECT_GT(r.gbps, 8.0);
}

TEST(Kernels, MatVecVerifies)
{
    auto r = run(core::KernelKind::MatVec, 512, 4);
    EXPECT_TRUE(r.verified) << "maxError=" << r.maxError;
    EXPECT_EQ(r.flops, 2ull * 512 * 512);
}

TEST(Kernels, MatMulVerifiesAndIsComputeBound)
{
    auto r = run(core::KernelKind::MatMul, 128, 2);
    EXPECT_TRUE(r.verified) << "maxError=" << r.maxError;
    EXPECT_EQ(r.flops, 2ull * 128 * 128 * 128);
    // Blocked matmul: high arithmetic intensity...
    EXPECT_GT(r.intensity, 4.0);
    // ...and close to the 2-SPE compute roof of 33.6 GFLOPS.
    EXPECT_GT(r.gflops, 0.7 * 2 * 8.0 * 2.1);
}

TEST(Kernels, MatMulScalesWithSpes)
{
    auto r1 = run(core::KernelKind::MatMul, 256, 1);
    auto r4 = run(core::KernelKind::MatMul, 256, 4);
    EXPECT_TRUE(r1.verified);
    EXPECT_TRUE(r4.verified);
    EXPECT_GT(r4.gflops, 3.0 * r1.gflops);
}

TEST(Kernels, DoubleBufferingHelpsStreamKernels)
{
    auto db = run(core::KernelKind::Triad, 1 << 18, 2, true);
    auto sb = run(core::KernelKind::Triad, 1 << 18, 2, false);
    EXPECT_TRUE(db.verified);
    EXPECT_TRUE(sb.verified);
    EXPECT_GT(db.gbps, sb.gbps);
}

TEST(Kernels, InvalidSpecsAreFatal)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    core::KernelSpec spec;
    spec.spes = 9;
    EXPECT_THROW(core::runKernel(sys, spec), sim::FatalError);
    spec.spes = 2;
    spec.kind = core::KernelKind::MatMul;
    spec.n = 100;   // not a multiple of 64
    EXPECT_THROW(core::runKernel(sys, spec), sim::FatalError);
    spec.kind = core::KernelKind::MatVec;
    spec.n = 8192;  // too large for an LS-resident vector
    EXPECT_THROW(core::runKernel(sys, spec), sim::FatalError);
}

namespace
{

core::KernelResult
runPrec(core::KernelKind kind, core::Precision prec, std::uint64_t n,
        unsigned spes)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    core::KernelSpec spec;
    spec.kind = kind;
    spec.n = n;
    spec.spes = spes;
    spec.precision = prec;
    return core::runKernel(sys, spec);
}

} // namespace

TEST(KernelsPrecision, DoubleTriadVerifies)
{
    auto r = runPrec(core::KernelKind::Triad, core::Precision::Double,
                     1 << 17, 2);
    EXPECT_TRUE(r.verified) << r.maxError;
    // 2 flops per 24 bytes of DMA traffic.
    EXPECT_NEAR(r.intensity, 2.0 / 24.0, 0.01);
}

TEST(KernelsPrecision, DoubleDotVerifies)
{
    auto r = runPrec(core::KernelKind::Dot, core::Precision::Double,
                     1 << 17, 4);
    EXPECT_TRUE(r.verified) << r.maxError;
}

TEST(KernelsPrecision, DongarrasTwoXForBandwidthBoundKernels)
{
    // Same element count: DP moves twice the bytes at the same GB/s,
    // so a bandwidth-bound kernel does half the GFLOPS — the paper's
    // related-work argument for single-precision bulk work.
    auto sp = runPrec(core::KernelKind::Triad, core::Precision::Single,
                      1 << 18, 4);
    auto dp = runPrec(core::KernelKind::Triad, core::Precision::Double,
                      1 << 18, 4);
    EXPECT_TRUE(sp.verified);
    EXPECT_TRUE(dp.verified);
    EXPECT_NEAR(sp.gbps, dp.gbps, 0.15 * sp.gbps);      // same GB/s
    EXPECT_NEAR(sp.gflops / dp.gflops, 2.0, 0.4);        // 2x flops
}

TEST(KernelsPrecision, ComputeRoofIsFourteenToOne)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    core::KernelSpec sp_spec, dp_spec;
    dp_spec.precision = core::Precision::Double;
    double ratio = core::computePeakGflops(sys, sp_spec) /
                   core::computePeakGflops(sys, dp_spec);
    EXPECT_NEAR(ratio, 14.0, 0.01);
}

TEST(KernelsPrecision, MatrixKernelsRejectDouble)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    core::KernelSpec spec;
    spec.kind = core::KernelKind::MatMul;
    spec.n = 128;
    spec.precision = core::Precision::Double;
    EXPECT_THROW(core::runKernel(sys, spec), sim::FatalError);
}

TEST(Kernels, NamesRoundTrip)
{
    EXPECT_STREQ(core::toString(core::KernelKind::Dot), "dot");
    EXPECT_STREQ(core::toString(core::KernelKind::MatMul), "matmul");
    EXPECT_STREQ(core::toString(core::KernelKind::Triad), "triad");
}
