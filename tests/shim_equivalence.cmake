# Asserts that a legacy shim binary and `cellbw run <name>` produce
# byte-identical stdout and JSON reports for the same flags.
#
# Usage:
#   cmake -DCELLBW=<cellbw> -DSHIM=<legacy binary> -DNAME=<experiment>
#         -DWORKDIR=<scratch dir> -P shim_equivalence.cmake

foreach(var CELLBW SHIM NAME WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}/legacy" "${WORKDIR}/driver")

execute_process(
    COMMAND "${SHIM}" --quick --json report.json
    WORKING_DIRECTORY "${WORKDIR}/legacy"
    OUTPUT_FILE out.txt
    RESULT_VARIABLE legacy_rc)
if(NOT legacy_rc EQUAL 0)
    message(FATAL_ERROR "legacy ${NAME} failed: ${legacy_rc}")
endif()

execute_process(
    COMMAND "${CELLBW}" run "${NAME}" --quick --json report.json
    WORKING_DIRECTORY "${WORKDIR}/driver"
    OUTPUT_FILE out.txt
    RESULT_VARIABLE driver_rc)
if(NOT driver_rc EQUAL 0)
    message(FATAL_ERROR "cellbw run ${NAME} failed: ${driver_rc}")
endif()

foreach(f out.txt report.json)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${WORKDIR}/legacy/${f}" "${WORKDIR}/driver/${f}"
        RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR
            "${f} differs between ${NAME} and cellbw run ${NAME}")
    endif()
endforeach()

message(STATUS "${NAME}: legacy shim and cellbw run are byte-identical")
