# Runs a two-experiment suite cold then warm and asserts the warm run
# is 100% cache hits with a bit-identical output tree.
#
# Usage:
#   cmake -DCELLBW=<cellbw> -DWORKDIR=<scratch dir> -P suite_cache.cmake

foreach(var CELLBW WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
file(WRITE "${WORKDIR}/mini.manifest"
     "# two fast experiments\n"
     "fig03_ppe_l1\n"
     "tab01_peaks --runs 2\n")

foreach(pass cold warm)
    execute_process(
        COMMAND "${CELLBW}" suite mini.manifest --quick --jobs 2
                --out "${pass}" --cache cache
        WORKING_DIRECTORY "${WORKDIR}"
        OUTPUT_VARIABLE ${pass}_out
        RESULT_VARIABLE ${pass}_rc)
    if(NOT ${pass}_rc EQUAL 0)
        message(FATAL_ERROR "${pass} suite failed: ${${pass}_rc}\n"
                            "${${pass}_out}")
    endif()
endforeach()

if(NOT cold_out MATCHES "cache hits: 0/2")
    message(FATAL_ERROR "cold run was not all misses:\n${cold_out}")
endif()
if(NOT warm_out MATCHES "cache hits: 2/2")
    message(FATAL_ERROR "warm run was not all hits:\n${warm_out}")
endif()

file(GLOB cold_files RELATIVE "${WORKDIR}/cold" "${WORKDIR}/cold/*")
file(GLOB warm_files RELATIVE "${WORKDIR}/warm" "${WORKDIR}/warm/*")
if(NOT cold_files STREQUAL warm_files)
    message(FATAL_ERROR "output trees differ: "
                        "[${cold_files}] vs [${warm_files}]")
endif()
foreach(f ${cold_files})
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${WORKDIR}/cold/${f}" "${WORKDIR}/warm/${f}"
        RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR "warm ${f} is not bit-identical")
    endif()
endforeach()

message(STATUS "warm suite: 2/2 hits, output tree bit-identical")
