/** @file Integration/property tests: the experiments reproduce the
 *        paper's qualitative results on small inputs. */

#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "core/runner.hh"

using namespace cellbw;

namespace
{

cell::CellConfig
cfg()
{
    return cell::CellConfig{};
}

double
speMem(unsigned spes, core::DmaOp op, std::uint32_t elem,
       bool list = false, std::uint64_t seed = 1)
{
    cell::CellSystem sys(cfg(), seed);
    core::SpeMemConfig mc;
    mc.numSpes = spes;
    mc.op = op;
    mc.elemBytes = elem;
    mc.useList = list;
    mc.bytesPerSpe = 1 * util::MiB;
    return core::runSpeMem(sys, mc);
}

double
speSpe(core::SpeSpeMode mode, unsigned spes, std::uint32_t elem,
       bool list = false, unsigned syncEvery = 0, std::uint64_t seed = 1)
{
    cell::CellSystem sys(cfg(), seed);
    core::SpeSpeConfig sc;
    sc.mode = mode;
    sc.numSpes = spes;
    sc.elemBytes = elem;
    sc.useList = list;
    sc.syncEvery = syncEvery;
    sc.bytesPerStream = 1 * util::MiB;
    return core::runSpeSpe(sys, sc);
}

double
ppeBw(core::PpeStreamConfig c, std::uint64_t total = 1 * util::MiB)
{
    cell::CellSystem sys(cfg(), 1);
    c.totalBytes = total;
    return core::runPpeStream(sys, c);
}

} // namespace

/* --- Figure 8 shapes ------------------------------------------------ */

TEST(ExpSpeMem, SingleSpeSustainsAboutTenGBs)
{
    double bw = speMem(1, core::DmaOp::Get, 16 * 1024);
    EXPECT_NEAR(bw, 10.0, 1.5);
}

TEST(ExpSpeMem, PutMatchesGetForOneSpe)
{
    double get = speMem(1, core::DmaOp::Get, 16 * 1024);
    double put = speMem(1, core::DmaOp::Put, 16 * 1024);
    EXPECT_NEAR(put, get, 0.35 * get);
}

TEST(ExpSpeMem, TwoSpesNearlyDoubleOneSpe)
{
    double one = speMem(1, core::DmaOp::Get, 16 * 1024);
    double two = speMem(2, core::DmaOp::Get, 16 * 1024);
    EXPECT_GT(two, 1.6 * one);
    // Exceeds what a single bank ramp could provide: both banks in use.
    EXPECT_GT(two, 16.8 * 0.99);
}

TEST(ExpSpeMem, CopyIsAboutThirtyPercentOfPairPeakForOneSpe)
{
    double copy = speMem(1, core::DmaOp::Copy, 16 * 1024);
    EXPECT_NEAR(copy / 33.6, 0.30, 0.08);
}

TEST(ExpSpeMem, EightSpesDoNotBeatFourByMuch)
{
    double four = speMem(4, core::DmaOp::Get, 16 * 1024);
    double eight = speMem(8, core::DmaOp::Get, 16 * 1024);
    EXPECT_LT(eight, 1.1 * four);
}

class SpeMemElemSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SpeMemElemSweep, OneSpeIsFlatAboveHalfKilobyte)
{
    double bw = speMem(1, core::DmaOp::Get, GetParam());
    EXPECT_NEAR(bw, 10.0, 1.6);
}

INSTANTIATE_TEST_SUITE_P(Flat, SpeMemElemSweep,
                         ::testing::Values(512u, 1024u, 2048u, 4096u,
                                           8192u, 16384u));

TEST(ExpSpeMem, TinyElementsDegrade)
{
    double tiny = speMem(1, core::DmaOp::Get, 128);
    double big = speMem(1, core::DmaOp::Get, 4096);
    EXPECT_LT(tiny, 0.7 * big);
}

/* --- Figures 10/12/15 shapes ---------------------------------------- */

TEST(ExpSpeSpe, PairReachesThePeakAtOneKilobyte)
{
    double bw = speSpe(core::SpeSpeMode::Couples, 2, 1024);
    EXPECT_GT(bw, 0.95 * 33.6);
}

TEST(ExpSpeSpe, DmaElemCollapsesBelowOneKilobyte)
{
    double at1k = speSpe(core::SpeSpeMode::Couples, 2, 1024);
    double at128 = speSpe(core::SpeSpeMode::Couples, 2, 128);
    EXPECT_LT(at128, 0.35 * at1k);
}

TEST(ExpSpeSpe, DmaListIsFlatAcrossElementSizes)
{
    double at128 = speSpe(core::SpeSpeMode::Couples, 2, 128, true);
    double at16k = speSpe(core::SpeSpeMode::Couples, 2, 16384, true);
    EXPECT_NEAR(at128, at16k, 0.1 * at16k);
    EXPECT_GT(at128, 0.9 * 33.6);
}

TEST(ExpSpeSpe, DmaListBeatsDmaElemForSmallChunks)
{
    double elem = speSpe(core::SpeSpeMode::Couples, 2, 256);
    double list = speSpe(core::SpeSpeMode::Couples, 2, 256, true);
    EXPECT_GT(list, 2.0 * elem);
}

class SyncDelaySweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SyncDelaySweep, MoreDelayNeverHurts)
{
    auto elem = GetParam();
    double every1 = speSpe(core::SpeSpeMode::Couples, 2, elem, false, 1);
    double every4 = speSpe(core::SpeSpeMode::Couples, 2, elem, false, 4);
    double all = speSpe(core::SpeSpeMode::Couples, 2, elem, false, 0);
    EXPECT_LE(every1, every4 * 1.02);
    EXPECT_LE(every4, all * 1.02);
    EXPECT_GT(all, 1.5 * every1);   // and delaying really matters
}

INSTANTIATE_TEST_SUITE_P(Fig10, SyncDelaySweep,
                         ::testing::Values(1024u, 4096u, 16384u));

TEST(ExpSpeSpe, FourCouplesLoseToConflictsAndVaryWithPlacement)
{
    core::RepeatSpec spec{8, 100};
    auto d = core::repeatRuns(cfg(), spec, [](cell::CellSystem &sys) {
        core::SpeSpeConfig sc;
        sc.numSpes = 8;
        sc.elemBytes = 4096;
        sc.bytesPerStream = 1 * util::MiB;
        return core::runSpeSpe(sys, sc);
    });
    EXPECT_LT(d.mean(), 0.85 * 134.4);      // loses to conflicts
    EXPECT_GT(d.mean(), 0.4 * 134.4);       // but not catastrophically
    EXPECT_GT(d.max() - d.min(), 10.0);     // placement spread
}

TEST(ExpSpeSpe, CycleIsWorseThanCouplesAtEightSpes)
{
    double couples = speSpe(core::SpeSpeMode::Couples, 8, 4096);
    double cycle = speSpe(core::SpeSpeMode::Cycle, 8, 4096);
    EXPECT_LT(cycle, couples);
}

TEST(ExpSpeSpe, TwoSpeCycleHitsThePeak)
{
    double bw = speSpe(core::SpeSpeMode::Cycle, 2, 4096);
    EXPECT_GT(bw, 0.95 * 33.6);
}

TEST(ExpSpeSpe, OddSpeCountIsFatal)
{
    cell::CellSystem sys(cfg(), 1);
    core::SpeSpeConfig sc;
    sc.numSpes = 3;
    EXPECT_THROW(core::runSpeSpe(sys, sc), sim::FatalError);
}

/* --- PPE shapes (Figures 3/4/6) -------------------------------------- */

TEST(ExpPpe, L1LoadHalfPeakAndElementScaling)
{
    double b8 = ppeBw(core::ppeL1Config(1, 8, ppe::MemOp::Load));
    double b16 = ppeBw(core::ppeL1Config(1, 16, ppe::MemOp::Load));
    double b4 = ppeBw(core::ppeL1Config(1, 4, ppe::MemOp::Load));
    EXPECT_NEAR(b8, 16.8, 0.5);
    EXPECT_NEAR(b16, 16.8, 0.5);
    EXPECT_NEAR(b4, 8.4, 0.4);
}

TEST(ExpPpe, L2StoreBeatsL2LoadTwofoldForOneThread)
{
    double load = ppeBw(core::ppeL2Config(1, 16, ppe::MemOp::Load));
    double store = ppeBw(core::ppeL2Config(1, 16, ppe::MemOp::Store));
    EXPECT_NEAR(store / load, 2.0, 0.5);
}

TEST(ExpPpe, TwoThreadsHelpL2SignificantlyButNotL1Loads)
{
    double l2a = ppeBw(core::ppeL2Config(1, 16, ppe::MemOp::Load));
    double l2b = ppeBw(core::ppeL2Config(2, 16, ppe::MemOp::Load));
    EXPECT_GT(l2b, 1.6 * l2a);
    double l1a = ppeBw(core::ppeL1Config(1, 8, ppe::MemOp::Load));
    double l1b = ppeBw(core::ppeL1Config(2, 8, ppe::MemOp::Load));
    EXPECT_NEAR(l1b, l1a, 0.15 * l1a);
}

TEST(ExpPpe, MemoryReadEqualsL2ReadAndWritesAreSlow)
{
    double l2r = ppeBw(core::ppeL2Config(1, 16, ppe::MemOp::Load));
    double memr = ppeBw(core::ppeMemConfig(1, 16, ppe::MemOp::Load),
                      2 * util::MiB);
    double memw = ppeBw(core::ppeMemConfig(1, 16, ppe::MemOp::Store),
                      2 * util::MiB);
    EXPECT_NEAR(memr, l2r, 0.25 * l2r);
    EXPECT_LT(memw, 6.0);
    EXPECT_LT(memw, memr);
}

TEST(ExpPpe, EverythingIsFarBelowSpeDma)
{
    double memr = ppeBw(core::ppeMemConfig(1, 16, ppe::MemOp::Load),
                      2 * util::MiB);
    double dma = speMem(2, core::DmaOp::Get, 16 * 1024);
    EXPECT_GT(dma, 2.5 * memr);
}

TEST(ExpPpe, BadThreadCountIsFatal)
{
    cell::CellSystem sys(cfg(), 1);
    core::PpeStreamConfig c;
    c.threads = 3;
    EXPECT_THROW(core::runPpeStream(sys, c), sim::FatalError);
}

/* --- SPU <-> LS ------------------------------------------------------ */

TEST(ExpSpuLs, QuadwordAccessReachesThePeak)
{
    cell::CellSystem sys(cfg(), 1);
    core::SpuLsConfig lc;
    lc.elemSize = 16;
    lc.totalBytes = 2 * util::MiB;
    double bw = core::runSpuLs(sys, lc);
    EXPECT_GT(bw, 0.95 * 33.6);
}

TEST(ExpSpuLs, ScalarAccessIsFarBelowPeak)
{
    cell::CellSystem sys(cfg(), 1);
    core::SpuLsConfig lc;
    lc.elemSize = 4;
    lc.totalBytes = 2 * util::MiB;
    double bw = core::runSpuLs(sys, lc);
    EXPECT_LT(bw, 0.3 * 33.6);
}

/* --- Random-access workloads (Chen & Bader) ------------------------- */

namespace
{

double
randChase(std::uint32_t elem, bool list, std::uint64_t seed = 1)
{
    cell::CellSystem sys(cfg(), seed);
    core::RandChaseConfig rc;
    rc.elemBytes = elem;
    rc.useList = list;
    rc.bytesPerSpe = 512 * util::KiB;
    return core::runRandChase(sys, rc);
}

} // namespace

TEST(ExpRand, ListGatherBeatsElementGetForSmallElements)
{
    EXPECT_GT(randChase(8, true), 1.5 * randChase(8, false));
    EXPECT_GT(randChase(32, true), 1.5 * randChase(32, false));
}

TEST(ExpRand, CrossoverClosesForLargeElements)
{
    double elem = randChase(2048, false);
    double list = randChase(2048, true);
    EXPECT_GT(elem, 0.8 * list);
    EXPECT_LT(elem, 1.25 * list);
}

TEST(ExpRand, GupsBandwidthGrowsWithGranule)
{
    auto gups = [](std::uint32_t elem) {
        cell::CellSystem sys(cfg(), 1);
        core::RandGupsConfig gc;
        gc.elemBytes = elem;
        gc.bytesPerSpe = 512 * util::KiB;
        return core::runRandGups(sys, gc);
    };
    double g8 = gups(8);
    double g64 = gups(64);
    EXPECT_GT(g64, 4.0 * g8);   // per-command cost amortizes
}

TEST(ExpRand, RowTimingModelPunishesRandomUpdates)
{
    auto gups = [](bool timing) {
        auto c = cfg();
        c.memory.bank0.rowTiming = timing;
        c.memory.bank1.rowTiming = timing;
        cell::CellSystem sys(c, 1);
        core::RandGupsConfig gc;
        gc.elemBytes = 64;
        gc.bytesPerSpe = 512 * util::KiB;
        return core::runRandGups(sys, gc);
    };
    // Every random update activates a new row; with the timing model on
    // the activate/precharge occupancy dominates.
    EXPECT_GT(gups(false), 3.0 * gups(true));
}

TEST(ExpRand, SamplesAreBitIdenticalAcrossJobs)
{
    auto body = [](cell::CellSystem &sys) {
        core::RandGupsConfig gc;
        gc.numSpes = 2;
        gc.elemBytes = 32;
        gc.bytesPerSpe = 256 * util::KiB;
        return core::runRandGups(sys, gc);
    };
    core::RepeatSpec spec{4, 42};
    auto serial = core::repeatRuns(cfg(), spec, body,
                                   core::ParallelSpec::serial());
    auto threaded = core::repeatRuns(cfg(), spec, body,
                                     core::ParallelSpec{4});
    EXPECT_EQ(serial.samples(), threaded.samples());

    auto chase = [](cell::CellSystem &sys) {
        core::RandChaseConfig rc;
        rc.numSpes = 2;
        rc.useList = true;
        rc.bytesPerSpe = 256 * util::KiB;
        return core::runRandChase(sys, rc);
    };
    auto cs = core::repeatRuns(cfg(), spec, chase,
                               core::ParallelSpec::serial());
    auto ct = core::repeatRuns(cfg(), spec, chase,
                               core::ParallelSpec{4});
    EXPECT_EQ(cs.samples(), ct.samples());
}
