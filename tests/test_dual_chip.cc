/** @file Tests for the two-chip blade extension: cross-chip SPE pairs
 *        go through the 7 GB/s IOIF, the paper's closing warning. */

#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

cell::CellConfig
twoChips(cell::AffinityPolicy aff = cell::AffinityPolicy::Linear)
{
    cell::CellConfig cfg;
    cfg.numChips = 2;
    cfg.affinity = aff;
    return cfg;
}

/** A pair transfer between logical SPE 0 and 1 at 4 KiB elements. */
double
pairBandwidth(cell::CellSystem &sys)
{
    core::SpeSpeConfig sc;
    sc.numSpes = 2;
    sc.elemBytes = 4096;
    sc.bytesPerStream = 1 * util::MiB;
    return core::runSpeSpe(sys, sc);
}

} // namespace

TEST(DualChip, SixteenSpesComeUp)
{
    auto cfg = twoChips();
    cfg.numSpes = 16;
    cell::CellSystem sys(cfg, 1);
    EXPECT_EQ(sys.numSpes(), 16u);
    EXPECT_EQ(sys.numChips(), 2u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(sys.chipOf(i), 0u);
    for (unsigned i = 8; i < 16; ++i)
        EXPECT_EQ(sys.chipOf(i), 1u);
    EXPECT_THROW(sys.eib(2), sim::FatalError);
}

TEST(DualChip, SingleChipRejectsMoreThanEightSpes)
{
    cell::CellConfig cfg;
    cfg.numSpes = 9;
    EXPECT_THROW(cell::CellSystem(cfg, 1), sim::FatalError);
}

TEST(DualChip, CrossChipDmaDeliversData)
{
    auto cfg = twoChips();
    cfg.numSpes = 16;
    cell::CellSystem sys(cfg, 1);
    // Logical 0 (chip 0) GETs from logical 8 (chip 1).
    sys.spe(8).ls().fill(0, 0x7D, 16 * 1024);
    auto prog_fn = [&]() -> sim::Task {
        auto &s = sys.spe(0);
        s.mfc().get(0, sys.lsEa(8, 0), 16 * 1024, 0);
        co_await s.mfc().tagWait(1u << 0);
    };
    sys.launch(prog_fn());
    sys.run();
    EXPECT_EQ(sys.spe(0).ls().byteAt(0), 0x7D);
    EXPECT_EQ(sys.spe(0).ls().byteAt(16 * 1024 - 1), 0x7D);
    // The data crossed the blade toward chip 0 (the Inbound lane;
    // lanes are named from chip 0's viewpoint).
    EXPECT_EQ(sys.memory().ioLink().bytesSent(mem::IoLink::Dir::Inbound),
              16u * 1024u);
    EXPECT_EQ(sys.memory().ioLink().bytesSent(
                  mem::IoLink::Dir::Outbound), 0u);
    // Both chips' EIBs carried it.
    EXPECT_GT(sys.eib(0).bytesMoved(), 0u);
    EXPECT_GT(sys.eib(1).bytesMoved(), 0u);
}

TEST(DualChip, CrossChipPairIsIoifLimited)
{
    // Same-chip pair: linear placement puts logical 0,1 on chip 0.
    auto cfg_same = twoChips();
    cfg_same.numSpes = 16;
    cell::CellSystem same(cfg_same, 1);
    ASSERT_EQ(same.chipOf(0), same.chipOf(1));
    double bw_same = pairBandwidth(same);

    // Cross-chip pair: put logical 1 on chip 1 by using 2 SPEs with a
    // handcrafted system: logical 0 -> phys 0 (chip 0), logical 1 ->
    // phys 8 (chip 1).  Random placements with seed search.
    double bw_cross = 0.0;
    for (std::uint64_t seed = 1; seed < 64; ++seed) {
        auto cfg = twoChips(cell::AffinityPolicy::Random);
        cfg.numSpes = 2;
        cell::CellSystem sys(cfg, seed);
        if (sys.chipOf(0) == sys.chipOf(1))
            continue;
        bw_cross = pairBandwidth(sys);
        break;
    }
    ASSERT_GT(bw_cross, 0.0) << "no cross-chip placement found";

    EXPECT_GT(bw_same, 0.9 * 33.6);
    // The cross-chip pair is capped by the IOIF: well under half the
    // on-chip peak, and no more than the two directions' 2 x 7 GB/s.
    EXPECT_LT(bw_cross, 15.0);
    EXPECT_GT(bw_cross, 3.0);
}

TEST(DualChip, MemoryOnOwnChipIsLocal)
{
    auto cfg = twoChips();
    cfg.numSpes = 16;
    cfg.numa = mem::NumaPolicy::remote();   // all pages on bank 1
    cell::CellSystem sys(cfg, 1);
    // An SPE on chip 1 reading bank 1 must not cross the blade.
    EffAddr buf = sys.malloc(64 * 1024);
    auto prog_fn = [&]() -> sim::Task {
        auto &s = sys.spe(8);
        for (unsigned off = 0; off < 64 * 1024; off += 16 * 1024) {
            co_await s.mfc().queueSpace();
            s.mfc().get(off, buf + off, 16 * 1024, 0);
        }
        co_await s.mfc().tagWait(1u << 0);
    };
    sys.launch(prog_fn());
    sys.run();
    EXPECT_EQ(sys.memory().ioLink().bytesSent(
                  mem::IoLink::Dir::Inbound), 0u);
    EXPECT_EQ(sys.memory().ioLink().bytesSent(
                  mem::IoLink::Dir::Outbound), 0u);
    EXPECT_EQ(sys.memory().bank(1).bytesServiced(), 64u * 1024u);
}

TEST(DualChip, PairedAffinityKeepsPairsOnOneChip)
{
    auto cfg = twoChips(cell::AffinityPolicy::Paired);
    cfg.numSpes = 16;
    cell::CellSystem sys(cfg, 1);
    for (unsigned p = 0; p < 8; ++p) {
        EXPECT_EQ(sys.chipOf(2 * p), sys.chipOf(2 * p + 1));
        EXPECT_EQ(eib::shortestHops(sys.rampOf(2 * p),
                                    sys.rampOf(2 * p + 1)), 1u);
    }
}

TEST(DualChip, SimJobsNeverChangesTheAnswer)
{
    // The partitioned engine's window schedule is fixed by the IOIF
    // crossing-latency lookahead; worker threads only change who
    // executes a window.  Bandwidth must therefore be exactly equal —
    // not merely close — for any --sim-jobs value, including thread
    // counts above the partition count.
    auto run = [](unsigned simJobs) {
        auto cfg = twoChips(cell::AffinityPolicy::Random);
        cfg.numSpes = 16;
        cfg.simJobs = simJobs;
        cell::CellSystem sys(cfg, 7);   // seed 7: mixed placement
        core::SpeSpeConfig sc;
        sc.numSpes = 16;
        sc.elemBytes = 4096;
        sc.bytesPerStream = 256 * util::KiB;
        return core::runSpeSpe(sys, sc);
    };
    const double serial = run(1);
    ASSERT_GT(serial, 0.0);
    EXPECT_EQ(serial, run(2));
    EXPECT_EQ(serial, run(4));
}

TEST(DualChip, SixteenSpeCouplesScaleAcrossChips)
{
    // With paired affinity all 8 couples are chip-local: aggregate
    // bandwidth approaches 2 chips x 4 couples x 33.6.
    auto cfg = twoChips(cell::AffinityPolicy::Paired);
    cfg.numSpes = 16;
    cell::CellSystem sys(cfg, 1);
    core::SpeSpeConfig sc;
    sc.numSpes = 16;
    sc.elemBytes = 4096;
    sc.bytesPerStream = 512 * util::KiB;
    double bw = core::runSpeSpe(sys, sc);
    EXPECT_GT(bw, 0.9 * 16 * 16.8);
}
