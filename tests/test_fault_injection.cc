/**
 * @file
 * End-to-end tests of the recoverable MFC fault model: injected
 * drops/corruptions are repaired by the offload runtime's and the
 * communicator's retry paths, --verify cross-checks every transfer
 * against the backing store, and the fault sequence is seed-stable.
 */

#include <gtest/gtest.h>

#include <vector>

#include "msg/communicator.hh"
#include "runtime/offload.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

runtime::Kernel
xorKernel(std::uint8_t key)
{
    return [key](std::uint8_t *d, std::uint32_t n) {
        for (std::uint32_t i = 0; i < n; ++i)
            d[i] ^= key;
    };
}

struct FaultFixture : public ::testing::Test
{
    cell::CellConfig cfg;

    struct BatchResult
    {
        std::uint64_t faults = 0;
        std::uint64_t retries = 0;
        std::uint64_t injected = 0;
        Tick makespan = 0;
    };

    /** Offload a batch of XOR tasks and check every output byte. */
    BatchResult
    runBatch(unsigned workers, unsigned tasks, std::uint32_t bytes,
             std::uint64_t seed = 1)
    {
        cell::CellSystem sys(cfg, seed);
        runtime::OffloadParams params;
        params.workers = workers;
        runtime::OffloadRuntime rt(sys, params);

        std::vector<EffAddr> outs;
        for (unsigned t = 0; t < tasks; ++t) {
            EffAddr in = sys.malloc(bytes);
            EffAddr out = sys.malloc(bytes);
            sys.memory().store().fill(
                in, static_cast<std::uint8_t>(t + 1), bytes);
            outs.push_back(out);
            rt.submit({in, out, bytes, 64, xorKernel(0x33)});
        }
        rt.start();
        sys.run();

        EXPECT_EQ(rt.stats().tasksCompleted, tasks);
        for (unsigned t = 0; t < tasks; ++t) {
            auto expect = static_cast<std::uint8_t>((t + 1) ^ 0x33);
            for (std::uint32_t off : {0u, bytes / 2, bytes - 1}) {
                EXPECT_EQ(sys.memory().store().byteAt(outs[t] + off),
                          expect)
                    << "task " << t << " offset " << off;
            }
        }
        if (sys.verifying()) {
            EXPECT_EQ(sys.verifyStats().divergences, 0u)
                << sys.verifyStats().firstDivergence;
            EXPECT_GT(sys.verifyStats().transfersChecked, 0u);
        }

        BatchResult r;
        for (const auto &w : rt.stats().worker) {
            r.faults += w.faults;
            r.retries += w.retries;
        }
        for (unsigned i = 0; i < sys.numSpes(); ++i) {
            r.injected += sys.spe(i).mfc().dropsInjected() +
                          sys.spe(i).mfc().corruptionsInjected() +
                          sys.spe(i).mfc().delaysInjected();
        }
        r.makespan = rt.stats().makespan();
        return r;
    }
};

} // namespace

TEST_F(FaultFixture, OffloadSurvivesDropsAndCorruptionsUnderVerify)
{
    cfg.spe.mfc.faults.dropRate = 0.03;
    cfg.spe.mfc.faults.corruptRate = 0.03;
    cfg.spe.mfc.faults.seed = 11;
    cfg.verify = true;
    auto r = runBatch(4, 12, 96 * 1024);
    // With ~400 commands at 6% fault probability, faults certainly
    // occurred and every one was repaired by a retry.
    EXPECT_GT(r.faults, 0u);
    EXPECT_GE(r.retries, r.faults);
}

TEST_F(FaultFixture, DelaysAloneNeedNoRetries)
{
    cfg.spe.mfc.faults.delayRate = 0.2;
    cfg.verify = true;
    auto r = runBatch(2, 6, 64 * 1024);
    EXPECT_GT(r.injected, 0u);
    EXPECT_EQ(r.faults, 0u);        // a late completion is not an error
    EXPECT_EQ(r.retries, 0u);
}

TEST_F(FaultFixture, DisabledInjectionIsCleanAndRetryFree)
{
    cfg.verify = true;
    auto r = runBatch(4, 8, 64 * 1024);
    EXPECT_EQ(r.injected, 0u);
    EXPECT_EQ(r.faults, 0u);
    EXPECT_EQ(r.retries, 0u);
}

TEST_F(FaultFixture, SameSeedReproducesTheFaultSequence)
{
    cfg.spe.mfc.faults.dropRate = 0.05;
    cfg.spe.mfc.faults.corruptRate = 0.05;
    auto a = runBatch(4, 8, 64 * 1024, 3);
    auto b = runBatch(4, 8, 64 * 1024, 3);
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.makespan, b.makespan);

    // A different run seed draws a different fault sequence.
    auto c = runBatch(4, 8, 64 * 1024, 4);
    EXPECT_TRUE(a.injected != c.injected || a.makespan != c.makespan);
}

TEST_F(FaultFixture, MessagePassingRetriesFaultedTransfers)
{
    cfg.spe.mfc.faults.dropRate = 0.1;
    cfg.spe.mfc.faults.corruptRate = 0.1;
    cfg.spe.mfc.faults.seed = 5;
    cfg.verify = true;
    cell::CellSystem sys(cfg, 1);
    msg::Communicator comm(sys, 2);
    const std::uint32_t eager_bytes = 1024;     // eager protocol
    const std::uint32_t rndv_bytes = 32 * 1024; // rendezvous protocol
    LsAddr src = sys.spe(0).lsAlloc(rndv_bytes);
    LsAddr dst = sys.spe(1).lsAlloc(rndv_bytes);
    sys.spe(0).ls().fill(src, 0x5A, rndv_bytes);

    auto sender = [&]() -> sim::Task {
        for (int i = 0; i < 8; ++i) {
            co_await comm.send(0, 1, src, eager_bytes);
            co_await comm.send(0, 1, src, rndv_bytes);
        }
    };
    auto receiver = [&]() -> sim::Task {
        for (int i = 0; i < 8; ++i) {
            co_await comm.recv(1, 0, dst, rndv_bytes, nullptr);
            co_await comm.recv(1, 0, dst, rndv_bytes, nullptr);
            EXPECT_EQ(sys.spe(1).ls().byteAt(dst), 0x5A);
            EXPECT_EQ(sys.spe(1).ls().byteAt(dst + rndv_bytes - 1),
                      0x5A);
        }
    };
    sys.launch(sender());
    sys.launch(receiver());
    sys.run();
    // At a 20% fault rate over ~50 payload DMAs, retries certainly
    // happened — and every payload still arrived intact.
    EXPECT_GT(comm.dmaFaults(), 0u);
    EXPECT_GE(comm.dmaRetries(), comm.dmaFaults());
    EXPECT_EQ(sys.verifyStats().divergences, 0u)
        << sys.verifyStats().firstDivergence;
}
