/** @file Tests for the native host-backend kernels. */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "native/kernels.hh"
#include "sim/logging.hh"

using namespace cellbw;

namespace
{

constexpr std::size_t kElems = 4096;

} // namespace

TEST(NativeStream, EveryKernelPassesItsChecksum)
{
    native::StreamBuffers bufs(kElems);
    for (native::StreamKernel k : native::allStreamKernels()) {
        bufs.init();
        // Multiple passes must stay valid: no kernel reads an array it
        // writes, so passes are idempotent.
        native::runStream(k, bufs);
        native::runStream(k, bufs);
        native::CheckResult r = native::checkStream(k, bufs);
        EXPECT_TRUE(r.ok) << native::toString(k) << ": " << r.describe();
        EXPECT_EQ(r.describe(), "ok");
    }
}

TEST(NativeStream, InjectedCorruptionReportsFirstDivergentIndex)
{
    for (native::StreamKernel k : native::allStreamKernels()) {
        native::StreamBuffers bufs(kElems);
        native::runStream(k, bufs);
        const std::size_t bad = 1234;
        bufs.corrupt(k, bad);
        native::CheckResult r = native::checkStream(k, bufs);
        ASSERT_FALSE(r.ok) << native::toString(k);
        EXPECT_EQ(r.firstBadIndex, bad) << native::toString(k);
        EXPECT_NE(r.describe().find("index 1234"), std::string::npos);

        // With two corrupted elements, the FIRST one is reported.
        bufs.corrupt(k, 17);
        r = native::checkStream(k, bufs);
        ASSERT_FALSE(r.ok);
        EXPECT_EQ(r.firstBadIndex, 17u);
    }
}

TEST(NativeStream, BytesFollowStreamCounting)
{
    using native::StreamKernel;
    EXPECT_EQ(native::streamBytes(StreamKernel::Copy, 100), 1600u);
    EXPECT_EQ(native::streamBytes(StreamKernel::Scale, 100), 1600u);
    EXPECT_EQ(native::streamBytes(StreamKernel::Add, 100), 2400u);
    EXPECT_EQ(native::streamBytes(StreamKernel::Triad, 100), 2400u);
}

TEST(NativeChase, RingIsOneSeededCycle)
{
    native::ChaseRing ring(kElems, 42);
    native::CheckResult r = ring.validate();
    EXPECT_TRUE(r.ok) << r.describe();

    // Same (elems, seed) -> same layout: the reference walk agrees.
    native::ChaseRing again(kElems, 42);
    EXPECT_EQ(ring.expectedFinal(kElems / 2),
              again.expectedFinal(kElems / 2));

    // A full lap of a single cycle returns to the start.
    EXPECT_EQ(ring.expectedFinal(kElems), 0u);
}

TEST(NativeChase, InjectedSelfLoopReportsDivergentIndex)
{
    native::ChaseRing ring(kElems, 42);
    const std::size_t bad = 99;
    ring.corrupt(bad);
    native::CheckResult r = ring.validate();
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.firstBadIndex, bad);
    EXPECT_NE(r.describe().find("index 99"), std::string::npos);
}

TEST(NativeChase, TimedWalkEndsWhereTheReferenceWalkSays)
{
    native::ChaseRing ring(kElems, 7);
    std::size_t end = 0;
    double secs = ring.runChase(3 * kElems + 5, end);
    EXPECT_GE(secs, 0.0);
    EXPECT_EQ(end, ring.expectedFinal(3 * kElems + 5));
}

TEST(NativeChase, TinyRingsAreRejected)
{
    EXPECT_THROW(native::ChaseRing(1, 42), sim::FatalError);
}

TEST(NativeBuffers, InitPatternsAreExactDyadicRationals)
{
    // The checksum contract rests on exact binary representability:
    // every init value is a small multiple of 1/8 and every kernel
    // output is a sum/product of them with scalar 3.0.
    for (std::size_t i = 0; i < 64; ++i) {
        double a = native::StreamBuffers::initA(i);
        double b = native::StreamBuffers::initB(i);
        double c = native::StreamBuffers::initC(i);
        EXPECT_EQ(a * 8.0, static_cast<double>(
                               static_cast<std::int64_t>(a * 8.0)));
        EXPECT_EQ(b * 8.0, static_cast<double>(
                               static_cast<std::int64_t>(b * 8.0)));
        EXPECT_EQ(c * 8.0, static_cast<double>(
                               static_cast<std::int64_t>(c * 8.0)));
    }
}
