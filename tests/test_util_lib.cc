/** @file Unit tests for strings, alignment helpers and option parsing. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/align.hh"
#include "util/options.hh"
#include "util/strings.hh"

using namespace cellbw;
using cellbw::util::Options;

TEST(Strings, Format)
{
    EXPECT_EQ(util::format("%d-%s", 3, "x"), "3-x");
    EXPECT_EQ(util::format("%.2f", 1.005), "1.00");
    EXPECT_EQ(util::format("plain"), "plain");
}

TEST(Strings, Split)
{
    auto v = util::split("a,b,,c", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "");
    EXPECT_EQ(v[3], "c");
    EXPECT_EQ(util::split("", ',').size(), 1u);
}

TEST(Strings, TrimAndLower)
{
    EXPECT_EQ(util::trim("  x y \t\n"), "x y");
    EXPECT_EQ(util::trim(""), "");
    EXPECT_EQ(util::trim("   "), "");
    EXPECT_EQ(util::toLower("AbC-9"), "abc-9");
}

TEST(Strings, BytesToString)
{
    EXPECT_EQ(util::bytesToString(128), "128 B");
    EXPECT_EQ(util::bytesToString(4096), "4 KiB");
    EXPECT_EQ(util::bytesToString(32 * util::MiB), "32 MiB");
    EXPECT_EQ(util::bytesToString(2 * util::GiB), "2 GiB");
    EXPECT_EQ(util::bytesToString(1500), "1500 B");
}

TEST(Strings, ParseByteSize)
{
    EXPECT_EQ(util::parseByteSize("128"), 128u);
    EXPECT_EQ(util::parseByteSize("4K"), 4096u);
    EXPECT_EQ(util::parseByteSize("4KiB"), 4096u);
    EXPECT_EQ(util::parseByteSize(" 2 MB "), 2 * util::MiB);
    EXPECT_EQ(util::parseByteSize("1g"), util::GiB);
    EXPECT_THROW(util::parseByteSize("abc"), std::exception);
    EXPECT_THROW(util::parseByteSize("12X"), std::invalid_argument);
    EXPECT_THROW(util::parseByteSize(""), std::invalid_argument);
}

TEST(Strings, ParseByteSizeRejectsNegativeAndOverflow)
{
    // A sign must not wrap through stoull to a huge positive size.
    EXPECT_THROW(util::parseByteSize("-1"), std::invalid_argument);
    EXPECT_THROW(util::parseByteSize("-4K"), std::invalid_argument);
    EXPECT_THROW(util::parseByteSize("+4K"), std::invalid_argument);
    // The suffix multiplication must not overflow silently.
    EXPECT_THROW(util::parseByteSize("99999999999999999999"),
                 std::out_of_range);
    EXPECT_THROW(util::parseByteSize("18446744073709551615K"),
                 std::out_of_range);
    EXPECT_THROW(util::parseByteSize("17179869184G"), std::out_of_range);
    // Near the edge but representable.
    EXPECT_EQ(util::parseByteSize("17179869183G"),
              17179869183ull * util::GiB);
}

TEST(Strings, ParseUint64IsStrict)
{
    EXPECT_EQ(util::parseUint64("0"), 0u);
    EXPECT_EQ(util::parseUint64(" 42 "), 42u);
    EXPECT_EQ(util::parseUint64("18446744073709551615"),
              18446744073709551615ull);
    EXPECT_THROW(util::parseUint64("-1"), std::invalid_argument);
    EXPECT_THROW(util::parseUint64("+1"), std::invalid_argument);
    EXPECT_THROW(util::parseUint64("12abc"), std::invalid_argument);
    EXPECT_THROW(util::parseUint64("1 2"), std::invalid_argument);
    EXPECT_THROW(util::parseUint64(""), std::invalid_argument);
    EXPECT_THROW(util::parseUint64("abc"), std::invalid_argument);
    EXPECT_THROW(util::parseUint64("18446744073709551616"),
                 std::out_of_range);
}

TEST(Align, IsPow2)
{
    EXPECT_FALSE(util::isPow2(0));
    EXPECT_TRUE(util::isPow2(1));
    EXPECT_TRUE(util::isPow2(128));
    EXPECT_FALSE(util::isPow2(65537));
}

TEST(Align, RoundUpDown)
{
    EXPECT_EQ(util::roundUp(0, 16), 0u);
    EXPECT_EQ(util::roundUp(1, 16), 16u);
    EXPECT_EQ(util::roundUp(16, 16), 16u);
    EXPECT_EQ(util::roundDown(31, 16), 16u);
    EXPECT_EQ(util::divCeil(1, 128), 1u);
    EXPECT_EQ(util::divCeil(129, 128), 2u);
    EXPECT_EQ(util::divCeil(256, 128), 2u);
}

struct DmaSizeCase
{
    std::uint32_t size;
    bool valid;
};

class DmaSizeRule : public ::testing::TestWithParam<DmaSizeCase>
{
};

TEST_P(DmaSizeRule, MatchesCbeaTable)
{
    EXPECT_EQ(util::isValidDmaSize(GetParam().size), GetParam().valid);
}

INSTANTIATE_TEST_SUITE_P(
    Cbea, DmaSizeRule,
    ::testing::Values(
        DmaSizeCase{0, false}, DmaSizeCase{1, true}, DmaSizeCase{2, true},
        DmaSizeCase{3, false}, DmaSizeCase{4, true}, DmaSizeCase{8, true},
        DmaSizeCase{12, false}, DmaSizeCase{16, true},
        DmaSizeCase{48, true}, DmaSizeCase{100, false},
        DmaSizeCase{1024, true}, DmaSizeCase{16 * 1024, true},
        DmaSizeCase{16 * 1024 + 16, false}));

TEST(Align, DmaAlignmentRules)
{
    // Sub-16 sizes: naturally aligned.
    EXPECT_TRUE(util::isValidDmaAlignment(0, 0, 1));
    EXPECT_TRUE(util::isValidDmaAlignment(2, 6, 2));
    EXPECT_FALSE(util::isValidDmaAlignment(1, 2, 2));
    EXPECT_FALSE(util::isValidDmaAlignment(4, 2, 4));
    // >= 16: both 16-byte aligned.
    EXPECT_TRUE(util::isValidDmaAlignment(16, 32, 128));
    EXPECT_FALSE(util::isValidDmaAlignment(8, 32, 128));
    EXPECT_FALSE(util::isValidDmaAlignment(16, 40, 128));
}

TEST(Options, TypedDefaultsAndOverrides)
{
    Options o("prog", "desc");
    o.addUint("count", 5, "a count");
    o.addDouble("rate", 1.5, "a rate");
    o.addBool("flag", false, "a flag");
    o.addString("name", "x", "a name");
    o.addBytes("size", 4096, "a size");

    const char *argv[] = {"prog", "--count=9", "--rate", "2.5", "--flag",
                          "--name=hello", "--size=2M"};
    ASSERT_TRUE(o.parse(7, argv));
    EXPECT_EQ(o.getUint("count"), 9u);
    EXPECT_DOUBLE_EQ(o.getDouble("rate"), 2.5);
    EXPECT_TRUE(o.getBool("flag"));
    EXPECT_EQ(o.getString("name"), "hello");
    EXPECT_EQ(o.getBytes("size"), 2 * util::MiB);
    EXPECT_TRUE(o.isSet("count"));
}

TEST(Options, DefaultsWhenUnset)
{
    Options o("prog", "desc");
    o.addUint("count", 5, "a count");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(o.parse(1, argv));
    EXPECT_EQ(o.getUint("count"), 5u);
    EXPECT_FALSE(o.isSet("count"));
}

TEST(Options, NoPrefixClearsBool)
{
    Options o("prog", "desc");
    o.addBool("csv", true, "emit csv");
    const char *argv[] = {"prog", "--no-csv"};
    ASSERT_TRUE(o.parse(2, argv));
    EXPECT_FALSE(o.getBool("csv"));
}

TEST(Options, RejectsNegativeGarbageAndOverflowValues)
{
    auto fails = [](const char *arg) {
        Options o("prog", "desc");
        o.addUint("count", 5, "a count");
        o.addDouble("rate", 1.5, "a rate");
        o.addBytes("size", 4096, "a size");
        const char *argv[] = {"prog", arg};
        return !o.parse(2, argv);
    };
    // A negative uint must not wrap to 2^64-1 via stoull.
    EXPECT_TRUE(fails("--count=-1"));
    // Trailing garbage must not be silently ignored.
    EXPECT_TRUE(fails("--count=8x"));
    EXPECT_TRUE(fails("--count=1 2"));
    EXPECT_TRUE(fails("--rate=1.5mbps"));
    EXPECT_TRUE(fails("--rate="));
    // Out-of-range values must fail at parse time.
    EXPECT_TRUE(fails("--count=18446744073709551616"));
    EXPECT_TRUE(fails("--size=-4K"));
    EXPECT_TRUE(fails("--size=17179869184G"));
}

TEST(Options, UnknownOptionFailsParse)
{
    Options o("prog", "desc");
    const char *argv[] = {"prog", "--nope=1"};
    EXPECT_FALSE(o.parse(2, argv));
}

TEST(Options, BadValueFailsParse)
{
    Options o("prog", "desc");
    o.addUint("count", 5, "a count");
    const char *argv[] = {"prog", "--count=notanumber"};
    EXPECT_FALSE(o.parse(2, argv));
}

TEST(Options, MissingValueFailsParse)
{
    Options o("prog", "desc");
    o.addUint("count", 5, "a count");
    const char *argv[] = {"prog", "--count"};
    EXPECT_FALSE(o.parse(2, argv));
}

TEST(Options, HelpReturnsFalseAndListsOptions)
{
    Options o("prog", "desc");
    o.addUint("count", 5, "how many");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(o.parse(2, argv));
    EXPECT_NE(o.helpText().find("how many"), std::string::npos);
    EXPECT_NE(o.helpText().find("count"), std::string::npos);
}

TEST(Options, PositionalArgumentsCollected)
{
    Options o("prog", "desc");
    const char *argv[] = {"prog", "one", "two"};
    ASSERT_TRUE(o.parse(3, argv));
    ASSERT_EQ(o.positional().size(), 2u);
    EXPECT_EQ(o.positional()[0], "one");
    EXPECT_EQ(o.positional()[1], "two");
}

TEST(Options, WrongTypeAccessorThrows)
{
    Options o("prog", "desc");
    o.addUint("count", 5, "a count");
    EXPECT_THROW(o.getDouble("count"), std::logic_error);
    EXPECT_THROW(o.getUint("missing"), std::logic_error);
}

TEST(Options, DuplicateRegistrationThrows)
{
    Options o("prog", "desc");
    o.addUint("x", 1, "x");
    EXPECT_THROW(o.addBool("x", false, "x again"), std::logic_error);
}

TEST(Options, BoolAcceptsManySpellings)
{
    Options o("prog", "desc");
    o.addBool("a", false, "");
    o.addBool("b", true, "");
    const char *argv[] = {"prog", "--a=yes", "--b=0"};
    ASSERT_TRUE(o.parse(3, argv));
    EXPECT_TRUE(o.getBool("a"));
    EXPECT_FALSE(o.getBool("b"));
}
