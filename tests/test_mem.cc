/** @file Unit tests for the memory subsystem. */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/dram_bank.hh"
#include "mem/io_link.hh"
#include "mem/memory_system.hh"
#include "mem/page_allocator.hh"
#include "sim/logging.hh"

using namespace cellbw;

/* ------------------------------------------------------------------ */
/*  BackingStore                                                        */
/* ------------------------------------------------------------------ */

TEST(BackingStore, RoundTripsWithinOnePage)
{
    mem::BackingStore bs;
    const char msg[] = "hello cell";
    bs.write(0x1000, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    bs.read(0x1000, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(BackingStore, RoundTripsAcrossPageBoundary)
{
    mem::BackingStore bs(4096);
    std::vector<std::uint8_t> in(10000);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<std::uint8_t>(i * 13);
    bs.write(4000, in.data(), in.size());
    std::vector<std::uint8_t> out(in.size());
    bs.read(4000, out.data(), out.size());
    EXPECT_EQ(in, out);
    EXPECT_GE(bs.touchedPages(), 3u);
}

TEST(BackingStore, UntouchedReadsAsZero)
{
    mem::BackingStore bs;
    EXPECT_EQ(bs.byteAt(0xdeadbeef), 0);
    std::uint8_t buf[4] = {9, 9, 9, 9};
    bs.read(0x50000000, buf, 4);
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(bs.touchedPages(), 0u);
}

TEST(BackingStore, FillAndClear)
{
    mem::BackingStore bs;
    bs.fill(100, 0xAB, 300);
    EXPECT_EQ(bs.byteAt(100), 0xAB);
    EXPECT_EQ(bs.byteAt(399), 0xAB);
    EXPECT_EQ(bs.byteAt(400), 0x00);
    bs.clear();
    EXPECT_EQ(bs.byteAt(100), 0x00);
}

TEST(BackingStore, NonPow2PageSizeIsFatal)
{
    EXPECT_THROW(mem::BackingStore(1000), sim::FatalError);
}

/* ------------------------------------------------------------------ */
/*  DramBank                                                            */
/* ------------------------------------------------------------------ */

namespace
{

mem::DramBankParams
fastBank()
{
    mem::DramBankParams p;
    p.bytesPerTick = 8.0;       // 128 B line = 16 ticks of pin time
    p.accessLatency = 100;
    p.refreshInterval = 0;      // off unless a test enables it
    return p;
}

} // namespace

TEST(DramBank, ReadCompletesAfterServicePlusLatency)
{
    sim::EventQueue eq;
    mem::DramBank bank("b", eq, fastBank());
    Tick done = 0;
    bank.access(128, false, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 116u);      // 16 service + 100 latency
    EXPECT_EQ(bank.bytesServiced(), 128u);
}

TEST(DramBank, BackToBackRequestsSerializeOnThePins)
{
    sim::EventQueue eq;
    mem::DramBank bank("b", eq, fastBank());
    Tick first = 0, second = 0;
    bank.access(128, false, [&] { first = eq.now(); });
    bank.access(128, false, [&] { second = eq.now(); });
    eq.run();
    EXPECT_EQ(first, 116u);
    EXPECT_EQ(second, 132u);    // 16 ticks later: pin-serialized
}

TEST(DramBank, WriteAlsoPaysAckLatency)
{
    sim::EventQueue eq;
    mem::DramBank bank("b", eq, fastBank());
    Tick done = 0;
    bank.access(128, true, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 116u);
}

TEST(DramBank, RefreshWindowDelaysService)
{
    sim::EventQueue eq;
    auto p = fastBank();
    p.refreshInterval = 1000;
    p.refreshDuration = 50;
    mem::DramBank bank("b", eq, p);
    // At t=0 the bank is refreshing (interval boundary).
    Tick done = 0;
    bank.access(128, false, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 50u + 16u + 100u);
    EXPECT_GE(bank.refreshStalls(), 1u);
}

TEST(DramBank, ServiceSpanningRefreshIsSplit)
{
    sim::EventQueue eq;
    auto p = fastBank();
    p.refreshInterval = 100;
    p.refreshDuration = 10;
    mem::DramBank bank("b", eq, p);
    // Occupy past the first boundary: 1024 B = 128 ticks of pin time,
    // starting at 10 (after the t=0 refresh), must skip the t=100
    // refresh window (and reach into the t=200 one).
    Tick done = 0;
    bank.access(1024, true, [&] { done = eq.now(); });
    eq.run();
    // Pin time: 10..100 (90), refresh to 110, 110..148 (38 remaining).
    EXPECT_EQ(done, 148u + p.accessLatency);
}

TEST(DramBank, SustainedRateMatchesConfig)
{
    sim::EventQueue eq;
    mem::DramBank bank("b", eq, fastBank());
    Tick done = 0;
    const int lines = 1000;
    for (int i = 0; i < lines; ++i)
        bank.access(128, false, [&] { done = eq.now(); });
    eq.run();
    // 1000 lines at 16 ticks each + one access latency at the end.
    EXPECT_EQ(done, 1000u * 16u + 100u);
}

TEST(DramBank, RowSpanningAccessCountsEachRowTouched)
{
    sim::EventQueue eq;
    mem::DramBank bank("b", eq, fastBank());    // rowBytes = 2048
    // First access ever: row 0 must be activated.
    bank.access(0, 128, false, [] {});
    EXPECT_EQ(bank.rowHits(), 0u);
    EXPECT_EQ(bank.rowConflicts(), 1u);
    // 128 B straddling rows 0 and 1: the starting row is still open
    // (hit), the crossing into row 1 is a fresh activate (conflict).
    bank.access(2048 - 64, 128, false, [] {});
    EXPECT_EQ(bank.rowHits(), 1u);
    EXPECT_EQ(bank.rowConflicts(), 2u);
    // The spanning access left its *last* row open, not its first.
    bank.access(2048, 64, false, [] {});
    EXPECT_EQ(bank.rowHits(), 2u);
    EXPECT_EQ(bank.rowConflicts(), 2u);
    eq.run();
}

TEST(DramBank, RefreshWindowsCountExactlyOnce)
{
    sim::EventQueue eq;
    auto p = fastBank();
    p.refreshInterval = 100;
    p.refreshDuration = 10;
    mem::DramBank bank("b", eq, p);
    // 1024 B = 128 ticks of pin time starting inside the t=0 window:
    // one stall for the start push-back (to t=10), one for the split
    // across the t=100 window — exactly two, nothing double-counted.
    Tick first = 0;
    bank.access(1024, true, [&] { first = eq.now(); });
    eq.run();
    EXPECT_EQ(first, 148u + p.accessLatency);
    EXPECT_EQ(bank.refreshStalls(), 2u);
    // A follow-up access starting clear of any window adds no stall.
    // It is issued at t=248 (the first completion), pins 248..264, and
    // the next window at t=300 never touches it.
    Tick second = 0;
    bank.access(128, true, [&] { second = eq.now(); });
    eq.run();
    EXPECT_EQ(second, 264u + p.accessLatency);
    EXPECT_EQ(bank.refreshStalls(), 2u);
}

TEST(DramBank, ZeroDurationRefreshNeverStalls)
{
    sim::EventQueue eq;
    auto p = fastBank();
    p.refreshInterval = 100;
    p.refreshDuration = 0;      // zero-length windows delay nothing
    mem::DramBank bank("b", eq, p);
    Tick done = 0;
    bank.access(1024, false, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 128u + p.accessLatency);
    EXPECT_EQ(bank.refreshStalls(), 0u);
}

TEST(DramBank, RowTimingOffKeepsConflictHeavyAndSequentialIdentical)
{
    sim::EventQueue eq;
    mem::DramBank thrash("t", eq, fastBank());
    mem::DramBank stream("s", eq, fastBank());
    Tick thrash_done = 0, stream_done = 0;
    for (int i = 0; i < 8; ++i) {
        // Alternating rows vs one hot row: same completion times while
        // the counters are observational.
        thrash.access(i % 2 ? 4096 : 0, 128, false,
                      [&] { thrash_done = eq.now(); });
        stream.access(static_cast<EffAddr>(i) * 128, 128, false,
                      [&] { stream_done = eq.now(); });
    }
    eq.run();
    EXPECT_EQ(thrash_done, stream_done);
    EXPECT_GT(thrash.rowConflicts(), stream.rowConflicts());
}

TEST(DramBank, RowTimingChargesActivatesAndCasOnlyHits)
{
    sim::EventQueue eq;
    auto p = fastBank();
    p.rowTiming = true;
    p.rowHitLatency = 20;
    p.rowMissPenalty = 30;
    mem::DramBank bank("b", eq, p);
    Tick a = 0, b = 0, c = 0;
    // Miss: activate (30) + 16 service, completes +20 CAS.
    bank.access(0, 128, false, [&] { a = eq.now(); });
    // Hit on the open row: 16 service only.
    bank.access(128, 128, false, [&] { b = eq.now(); });
    // Miss on another row: activate again.
    bank.access(4096, 128, false, [&] { c = eq.now(); });
    eq.run();
    EXPECT_EQ(a, 46u + 20u);
    EXPECT_EQ(b, 46u + 16u + 20u);
    EXPECT_EQ(c, 46u + 16u + 46u + 20u);
    EXPECT_EQ(bank.rowHits(), 1u);
    EXPECT_EQ(bank.rowConflicts(), 2u);
}

TEST(DramBank, RowTimingSpanningAccessPaysEveryActivate)
{
    sim::EventQueue eq;
    auto p = fastBank();
    p.rowTiming = true;
    p.rowHitLatency = 20;
    p.rowMissPenalty = 30;
    mem::DramBank bank("b", eq, p);
    // Fresh bank, 128 B spanning rows 0 and 1: two activates.
    Tick done = 0;
    bank.access(2048 - 64, 128, false, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 16u + 2u * 30u + 20u);
}

TEST(DramBank, InvalidParamsAreFatal)
{
    sim::EventQueue eq;
    auto p = fastBank();
    p.bytesPerTick = 0.0;
    EXPECT_THROW(mem::DramBank("b", eq, p), sim::FatalError);
    p = fastBank();
    p.refreshInterval = 10;
    p.refreshDuration = 10;
    EXPECT_THROW(mem::DramBank("b", eq, p), sim::FatalError);
}

/* ------------------------------------------------------------------ */
/*  IoLink                                                              */
/* ------------------------------------------------------------------ */

TEST(IoLink, DirectionsAreIndependent)
{
    sim::EventQueue eq;
    mem::IoLinkParams p;
    p.bytesPerTick = 4.0;
    p.crossingLatency = 10;
    mem::IoLink link("io", eq, p);
    Tick out_done = 0, in_done = 0;
    link.send(mem::IoLink::Dir::Outbound, 128, [&] { out_done = eq.now(); });
    link.send(mem::IoLink::Dir::Inbound, 128, [&] { in_done = eq.now(); });
    eq.run();
    EXPECT_EQ(out_done, 42u);   // 32 serialize + 10 crossing
    EXPECT_EQ(in_done, 42u);    // not serialized behind outbound
    EXPECT_EQ(link.bytesSent(mem::IoLink::Dir::Outbound), 128u);
}

TEST(IoLink, SameDirectionSerializes)
{
    sim::EventQueue eq;
    mem::IoLinkParams p;
    p.bytesPerTick = 4.0;
    p.crossingLatency = 10;
    mem::IoLink link("io", eq, p);
    Tick a = 0, b = 0;
    link.send(mem::IoLink::Dir::Inbound, 128, [&] { a = eq.now(); });
    link.send(mem::IoLink::Dir::Inbound, 128, [&] { b = eq.now(); });
    eq.run();
    EXPECT_EQ(a, 42u);
    EXPECT_EQ(b, 74u);
}

/* ------------------------------------------------------------------ */
/*  PageAllocator                                                       */
/* ------------------------------------------------------------------ */

TEST(PageAllocator, NeverHandsOutAddressZero)
{
    mem::PageAllocator pa(65536, 2);
    EffAddr ea = pa.alloc(100, mem::NumaPolicy::local());
    EXPECT_GE(ea, 65536u);
}

TEST(PageAllocator, LocalAndRemotePolicies)
{
    mem::PageAllocator pa(65536, 2);
    EffAddr local = pa.alloc(200000, mem::NumaPolicy::local());
    EffAddr remote = pa.alloc(200000, mem::NumaPolicy::remote());
    for (EffAddr off = 0; off < 200000; off += 65536) {
        EXPECT_EQ(pa.bankOf(local + off), 0u);
        EXPECT_EQ(pa.bankOf(remote + off), 1u);
    }
}

TEST(PageAllocator, InterleaveShareIsAccurate)
{
    mem::PageAllocator pa(65536, 2);
    const std::uint64_t pages = 1000;
    EffAddr ea = pa.alloc(pages * 65536, mem::NumaPolicy::interleave(0.65));
    unsigned bank0 = 0;
    for (std::uint64_t p = 0; p < pages; ++p)
        if (pa.bankOf(ea + p * 65536) == 0)
            ++bank0;
    EXPECT_NEAR(bank0, 650u, 1u);
}

TEST(PageAllocator, InterleaveIsBalancedOnEveryPrefix)
{
    mem::PageAllocator pa(65536, 2);
    EffAddr ea = pa.alloc(100 * 65536, mem::NumaPolicy::interleave(0.5));
    int balance = 0;
    for (std::uint64_t p = 0; p < 100; ++p) {
        balance += pa.bankOf(ea + p * 65536) == 0 ? 1 : -1;
        EXPECT_LE(std::abs(balance), 2);
    }
}

TEST(PageAllocator, UnallocatedAccessIsFatal)
{
    mem::PageAllocator pa(65536, 2);
    EXPECT_THROW(pa.bankOf(1ull << 30), sim::FatalError);
}

TEST(PageAllocator, ZeroByteAllocIsFatal)
{
    mem::PageAllocator pa(65536, 2);
    EXPECT_THROW(pa.alloc(0, mem::NumaPolicy::local()), sim::FatalError);
}

TEST(PageAllocator, ResetReclaimsEverything)
{
    mem::PageAllocator pa(65536, 2);
    pa.alloc(10 * 65536, mem::NumaPolicy::local());
    EXPECT_EQ(pa.bytesAllocated(), 10 * 65536u);
    pa.reset();
    EXPECT_EQ(pa.bytesAllocated(), 0u);
}

TEST(PageAllocator, SingleBankInterleaveFallsBackToBank0)
{
    mem::PageAllocator pa(65536, 1);
    EffAddr ea = pa.alloc(5 * 65536, mem::NumaPolicy::interleave(0.3));
    for (int p = 0; p < 5; ++p)
        EXPECT_EQ(pa.bankOf(ea + static_cast<EffAddr>(p) * 65536), 0u);
}

/* ------------------------------------------------------------------ */
/*  MemorySystem                                                        */
/* ------------------------------------------------------------------ */

TEST(MemorySystem, RemoteReadIsSlowerThanLocal)
{
    sim::EventQueue eq;
    mem::MemorySystemParams p;
    mem::MemorySystem ms("m", eq, p);
    EffAddr local = ms.alloc(65536, mem::NumaPolicy::local());
    EffAddr remote = ms.alloc(65536, mem::NumaPolicy::remote());
    EXPECT_FALSE(ms.isRemote(local));
    EXPECT_TRUE(ms.isRemote(remote));

    // Warm both banks past their t=0 refresh window first, so the
    // comparison only sees the IOIF crossing cost.
    ms.readLine(local, 128, [] {});
    ms.readLine(remote, 128, [] {});
    eq.run();

    Tick t0 = eq.now();
    Tick local_done = 0, remote_done = 0;
    ms.readLine(local, 128, [&] { local_done = eq.now(); });
    eq.run();
    Tick t1 = eq.now();
    ms.readLine(remote, 128, [&] { remote_done = eq.now(); });
    eq.run();
    EXPECT_GT(remote_done - t1, local_done - t0);
}

TEST(MemorySystem, WritesArePostedToTheRightBank)
{
    sim::EventQueue eq;
    mem::MemorySystemParams p;
    mem::MemorySystem ms("m", eq, p);
    EffAddr remote = ms.alloc(65536, mem::NumaPolicy::remote());
    bool done = false;
    ms.writeLine(remote, 128, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(ms.bank(1).bytesServiced(), 128u);
    EXPECT_EQ(ms.bank(0).bytesServiced(), 0u);
    EXPECT_EQ(ms.ioLink().bytesSent(mem::IoLink::Dir::Outbound), 128u);
}

TEST(MemorySystem, BadBankIndexIsFatal)
{
    sim::EventQueue eq;
    mem::MemorySystemParams p;
    mem::MemorySystem ms("m", eq, p);
    EXPECT_THROW(ms.bank(2), sim::FatalError);
}
