/**
 * @file
 * Multi-process stress test for the result cache: N writer processes,
 * M readers, and a concurrent pruner hammer ONE cache root.  The
 * invariants under attack:
 *
 *  - no torn reads: a load() hit returns the exact stored bytes,
 *    never a partial or interleaved file;
 *  - prune() racing store() never corrupts an entry — an entry is
 *    either fully present or fully absent;
 *  - the advisory lock + atomic-rename protocol needs no cooperation
 *    from the reader side (readers never block writers).
 *
 * Children do their checking with plain code and report through their
 * exit status — gtest machinery is not fork-safe.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/result_cache.hh"

using namespace cellbw;

namespace
{

constexpr int kEntries = 6;
constexpr int kIterations = 40;

std::string
materialOf(int i)
{
    return "salt stress\nexperiment e" + std::to_string(i) + "\n";
}

std::string
reportOf(int i)
{
    // Real schema so load()'s validity check accepts it; a payload
    // big enough that a torn read would show up as a mismatch.
    return "{\"schema\":\"cellbw-bench-v3\",\"bench\":\"e" +
           std::to_string(i) + "\",\"pad\":\"" +
           std::string(2048, static_cast<char>('a' + i)) + "\"}\n";
}

int
writerMain(const std::string &root, int seed)
{
    core::ResultCache cache(root);
    for (int it = 0; it < kIterations; ++it) {
        const int i = (it + seed) % kEntries;
        if (!cache.store(core::ResultCache::hashKey(materialOf(i)),
                         materialOf(i), reportOf(i)))
            return 1;
        // Immediately read back some other entry; a hit must be exact.
        const int j = (it + seed + 1) % kEntries;
        auto hit = cache.load(core::ResultCache::hashKey(materialOf(j)),
                              materialOf(j));
        if (hit && *hit != reportOf(j))
            return 2;
    }
    return 0;
}

int
readerMain(const std::string &root)
{
    core::ResultCache cache(root);
    for (int it = 0; it < kIterations * 4; ++it) {
        const int i = it % kEntries;
        auto hit = cache.load(core::ResultCache::hashKey(materialOf(i)),
                              materialOf(i));
        if (hit && *hit != reportOf(i))
            return 2;           // torn or mixed-up bytes
    }
    return 0;
}

int
prunerMain(const std::string &root)
{
    core::ResultCache cache(root);
    for (int it = 0; it < kIterations; ++it) {
        // A budget of ~2 entries keeps eviction constantly active.
        (void)cache.prune(2 * 2200);
    }
    return 0;
}

} // namespace

TEST(CacheStress, ParallelWritersReadersAndPrunerStayConsistent)
{
    const std::string root =
        testing::TempDir() + "cellbw_cache_stress";
    std::filesystem::remove_all(root);

    struct Child
    {
        pid_t pid;
        const char *role;
    };
    std::vector<Child> children;
    // Children _exit() straight from the fork so gtest never runs its
    // teardown in a child process.
    for (int w = 0; w < 4; ++w) {
        pid_t pid = fork();
        ASSERT_NE(pid, -1);
        if (pid == 0)
            _exit(writerMain(root, w * 7));
        children.push_back({pid, "writer"});
    }
    for (int r = 0; r < 2; ++r) {
        pid_t pid = fork();
        ASSERT_NE(pid, -1);
        if (pid == 0)
            _exit(readerMain(root));
        children.push_back({pid, "reader"});
    }
    {
        pid_t pid = fork();
        ASSERT_NE(pid, -1);
        if (pid == 0)
            _exit(prunerMain(root));
        children.push_back({pid, "pruner"});
    }

    for (const auto &c : children) {
        int status = 0;
        ASSERT_EQ(waitpid(c.pid, &status, 0), c.pid);
        ASSERT_TRUE(WIFEXITED(status))
            << c.role << " died on a signal";
        EXPECT_EQ(WEXITSTATUS(status), 0)
            << c.role << " saw an inconsistency (code "
            << WEXITSTATUS(status) << ")";
    }

    // After the storm the cache is still a working cache: every entry
    // stores and loads back bit-identically.
    core::ResultCache cache(root);
    for (int i = 0; i < kEntries; ++i) {
        ASSERT_TRUE(cache.store(
            core::ResultCache::hashKey(materialOf(i)), materialOf(i),
            reportOf(i)));
        auto hit = cache.load(core::ResultCache::hashKey(materialOf(i)),
                              materialOf(i));
        ASSERT_TRUE(hit.has_value()) << "entry " << i;
        EXPECT_EQ(*hit, reportOf(i)) << "entry " << i;
    }
    std::filesystem::remove_all(root);
}
