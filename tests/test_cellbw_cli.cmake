# Exercises the cellbw driver's error paths end to end: unknown
# experiment names, malformed manifests, a corrupted cache entry
# (which must degrade to a miss, not poison the run), and validate
# against a missing baseline directory.
#
# Usage:
#   cmake -DCELLBW=<cellbw> -DWORKDIR=<scratch dir> -P test_cellbw_cli.cmake

foreach(var CELLBW WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

# run_cellbw(<name> <expected rc> <args...>): runs cellbw in WORKDIR and
# stores stdout/stderr in <name>_out / <name>_err.
function(run_cellbw name expect_rc)
    execute_process(
        COMMAND "${CELLBW}" ${ARGN}
        WORKING_DIRECTORY "${WORKDIR}"
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(expect_rc STREQUAL "nonzero")
        if(rc EQUAL 0)
            message(FATAL_ERROR "${name}: expected failure, got rc=0\n"
                                "stdout:\n${out}\nstderr:\n${err}")
        endif()
    elseif(NOT rc EQUAL ${expect_rc})
        message(FATAL_ERROR "${name}: expected rc=${expect_rc}, "
                            "got rc=${rc}\n"
                            "stdout:\n${out}\nstderr:\n${err}")
    endif()
    set(${name}_out "${out}" PARENT_SCOPE)
    set(${name}_err "${err}" PARENT_SCOPE)
endfunction()

# --- 1. Unknown experiment name -------------------------------------
run_cellbw(badrun nonzero run no_such_experiment --quick)
if(NOT badrun_err MATCHES "unknown experiment 'no_such_experiment'")
    message(FATAL_ERROR "bad run message unhelpful:\n${badrun_err}")
endif()

# --- 2. Malformed manifest line -------------------------------------
file(WRITE "${WORKDIR}/bad.manifest"
     "# comment line is fine\n"
     "ls_spu_ls\n"
     "not_an_experiment --quick\n")
run_cellbw(badsuite nonzero suite bad.manifest --quick)
if(NOT badsuite_err MATCHES "bad.manifest:3: unknown experiment")
    message(FATAL_ERROR
            "manifest error lacks file:line context:\n${badsuite_err}")
endif()

# Unreadable manifest path is a clear error, not an empty suite.
run_cellbw(nomanifest nonzero suite no/such.manifest --quick)
if(NOT nomanifest_err MATCHES "cannot read manifest")
    message(FATAL_ERROR "missing-manifest message:\n${nomanifest_err}")
endif()

# --- 3. Corrupt cache entry degrades to a miss ----------------------
file(WRITE "${WORKDIR}/mini.manifest" "ls_spu_ls\n")
run_cellbw(cold 0 suite mini.manifest --quick --out cold --cache cache)
if(NOT cold_out MATCHES "cache hits: 0/1")
    message(FATAL_ERROR "cold run was not a miss:\n${cold_out}")
endif()

# Truncate every stored report; the .key files stay valid, so a naive
# cache would replay the damaged bytes into the output tree.
file(GLOB_RECURSE entries "${WORKDIR}/cache/*.json")
list(LENGTH entries n)
if(n EQUAL 0)
    message(FATAL_ERROR "cold run stored no cache entries")
endif()
foreach(entry ${entries})
    file(READ "${entry}" bytes LIMIT 40)
    file(WRITE "${entry}" "${bytes}")
endforeach()

run_cellbw(corrupt 0 suite mini.manifest --quick --out corrupt
           --cache cache)
if(NOT corrupt_out MATCHES "cache hits: 0/1")
    message(FATAL_ERROR
            "corrupt entry was replayed as a hit:\n${corrupt_out}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORKDIR}/cold/ls_spu_ls.json"
            "${WORKDIR}/corrupt/ls_spu_ls.json"
    RESULT_VARIABLE same)
if(NOT same EQUAL 0)
    message(FATAL_ERROR "rerun after corruption differs from cold run")
endif()

# The rerun repaired the entry: a third pass is a hit again.
run_cellbw(healed 0 suite mini.manifest --quick --out healed
           --cache cache)
if(NOT healed_out MATCHES "cache hits: 1/1")
    message(FATAL_ERROR "repaired entry did not hit:\n${healed_out}")
endif()

# --- 3b. cache prune ------------------------------------------------
# A generous budget scans without evicting; the healed entry stays hot.
run_cellbw(prune_noop 0 cache prune --max-bytes 1G --cache cache)
if(NOT prune_noop_out MATCHES "1 entries / [0-9]+ bytes scanned")
    message(FATAL_ERROR "prune scan miscounted:\n${prune_noop_out}")
endif()
if(NOT prune_noop_out MATCHES "0 entries / 0 bytes evicted")
    message(FATAL_ERROR "no-op prune evicted:\n${prune_noop_out}")
endif()
run_cellbw(stillhot 0 suite mini.manifest --quick --out stillhot
           --cache cache)
if(NOT stillhot_out MATCHES "cache hits: 1/1")
    message(FATAL_ERROR "entry lost by no-op prune:\n${stillhot_out}")
endif()

# Budget zero empties the cache; the next pass re-simulates.
run_cellbw(prune_all 0 cache prune --max-bytes 0 --cache cache)
if(NOT prune_all_out MATCHES "1 entries / [0-9]+ bytes evicted")
    message(FATAL_ERROR "prune to zero kept entries:\n${prune_all_out}")
endif()
run_cellbw(cold2 0 suite mini.manifest --quick --out cold2
           --cache cache)
if(NOT cold2_out MATCHES "cache hits: 0/1")
    message(FATAL_ERROR "evicted entry still hit:\n${cold2_out}")
endif()

# Missing --max-bytes is a usage error, not an accidental full wipe.
run_cellbw(prune_bad nonzero cache prune --cache cache)
if(NOT prune_bad_err MATCHES "--max-bytes")
    message(FATAL_ERROR "prune usage message:\n${prune_bad_err}")
endif()

# --- 4. validate without baselines ----------------------------------
run_cellbw(noval 2 validate --quick --baselines no/such/dir)
if(NOT noval_err MATCHES "cellbw validate:")
    message(FATAL_ERROR "validate error message:\n${noval_err}")
endif()

message(STATUS "cellbw CLI error paths behave")
