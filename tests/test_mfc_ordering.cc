/** @file Tests for MFC fence/barrier ordering, the proxy queue, and the
 *        signal-notification registers. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hh"
#include "sim/task.hh"
#include "spe/mfc.hh"
#include "spe/signal_notify.hh"

using namespace cellbw;
using spe::Mfc;

namespace
{

/** Completes lines after a delay and records completion order by EA. */
struct OrderRouter
{
    sim::EventQueue &eq;
    Tick delay = 100;
    std::vector<EffAddr> started = {};
    std::vector<EffAddr> finished = {};

    void
    operator()(spe::LineRequest &&req)
    {
        started.push_back(req.ea);
        auto done = std::move(req.done);
        EffAddr ea = req.ea;
        eq.schedule(delay, [this, ea, done = std::move(done)] {
            finished.push_back(ea);
            done();
        });
    }
};

struct OrderFixture : public ::testing::Test
{
    sim::EventQueue eq;
    sim::ClockSpec clock;
    spe::MfcParams params;
    OrderRouter router{eq};

    std::unique_ptr<Mfc>
    make()
    {
        auto mfc = std::make_unique<Mfc>("mfc", eq, clock, params, 0);
        mfc->setLineHandler(std::ref(router));
        return mfc;
    }

    /** Index of @p ea in router.started, or -1. */
    int
    startIndex(EffAddr ea) const
    {
        for (std::size_t i = 0; i < router.started.size(); ++i)
            if (router.started[i] == ea)
                return static_cast<int>(i);
        return -1;
    }
};

} // namespace

TEST_F(OrderFixture, PlainCommandsOfOneTagMayOverlap)
{
    auto mfc = make();
    mfc->get(0, 0x1000, 128, 0);
    mfc->get(128, 0x2000, 128, 0);
    eq.run();
    // The second command starts before the first finishes: both were
    // started before anything finished.
    ASSERT_EQ(router.started.size(), 2u);
    EXPECT_TRUE(router.finished.empty() ||
                startIndex(0x2000) >= 0);
}

TEST_F(OrderFixture, FenceWaitsForEarlierSameTagCommands)
{
    auto mfc = make();
    mfc->get(0, 0x1000, 128, 0);
    mfc->getf(128, 0x2000, 128, 0);     // fenced
    bool first_finished_before_second_started = false;
    // Observe interleaving as events drain.
    eq.runUntil(router.delay / 2);
    EXPECT_EQ(router.started.size(), 1u);   // fence holds 0x2000 back
    eq.run();
    ASSERT_EQ(router.started.size(), 2u);
    first_finished_before_second_started =
        router.finished.size() >= 1 && router.finished[0] == 0x1000;
    EXPECT_TRUE(first_finished_before_second_started);
}

TEST_F(OrderFixture, FenceIgnoresOtherTagGroups)
{
    auto mfc = make();
    mfc->get(0, 0x1000, 128, 0);        // tag 0
    mfc->getf(128, 0x2000, 128, 5);     // fenced, tag 5: not blocked
    // Both issue within two issue-engine occupancies (2 x 48 ticks),
    // well before the first line completes at router.delay.
    eq.runUntil(router.delay - 1);
    EXPECT_EQ(router.started.size(), 2u);
    eq.run();
}

TEST_F(OrderFixture, BarrierAlsoBlocksLaterCommands)
{
    auto mfc = make();
    mfc->get(0, 0x1000, 128, 0);
    mfc->getb(128, 0x2000, 128, 0);     // barrier
    mfc->get(256, 0x3000, 128, 0);      // must wait for the barrier
    mfc->get(384, 0x4000, 128, 3);      // other tag: free to go
    eq.runUntil(router.delay - 1);
    ASSERT_EQ(router.started.size(), 2u);
    EXPECT_EQ(router.started[0], 0x1000u);
    EXPECT_EQ(router.started[1], 0x4000u);
    eq.run();
    ASSERT_EQ(router.started.size(), 4u);
    // Barrier started after the first completed; the plain command
    // after the barrier started last.
    EXPECT_LT(startIndex(0x2000), startIndex(0x3000));
}

TEST_F(OrderFixture, FencedPutFormsAPipelineStage)
{
    // get A; putf A (must see completed get); classic flush pattern.
    auto mfc = make();
    mfc->get(0, 0x1000, 1024, 2);
    mfc->putf(0, 0x9000, 1024, 2);
    eq.run();
    // All 8 get lines finish before the first put line starts.
    ASSERT_EQ(router.started.size(), 16u);
    int last_get_finish = -1;
    for (std::size_t i = 0; i < router.finished.size(); ++i)
        if (router.finished[i] < 0x9000)
            last_get_finish = static_cast<int>(i);
    // 8 get lines finished first.
    EXPECT_EQ(last_get_finish, 7);
}

/* --- Proxy queue ------------------------------------------------------ */

TEST_F(OrderFixture, ProxyQueueHasItsOwnCapacity)
{
    params.queueDepth = 2;
    params.proxyQueueDepth = 2;
    auto mfc = make();
    mfc->get(0, 0x1000, 128, 0);
    mfc->get(128, 0x2000, 128, 0);
    EXPECT_TRUE(mfc->queueFull());
    EXPECT_FALSE(mfc->proxyQueueFull());
    mfc->proxyGet(256, 0x3000, 128, 1);
    mfc->proxyPut(384, 0x4000, 128, 1);
    EXPECT_TRUE(mfc->proxyQueueFull());
    EXPECT_THROW(mfc->proxyGet(512, 0x5000, 128, 1), sim::FatalError);
    eq.run();
    EXPECT_EQ(router.started.size(), 4u);
    EXPECT_EQ(mfc->proxyQueueFree(), 2u);
    EXPECT_EQ(mfc->queueFree(), 2u);
}

TEST_F(OrderFixture, ProxyCommandsShareTagCompletion)
{
    auto mfc = make();
    mfc->proxyGet(0, 0x1000, 256, 7);
    EXPECT_EQ(mfc->tagsPendingMask(), 1u << 7);
    bool woke = false;
    auto waiter_fn = [&]() -> sim::Task {
        co_await mfc->tagWait(1u << 7);
        woke = true;
    };
    sim::Task waiter = waiter_fn();
    waiter.start();
    eq.run();
    EXPECT_TRUE(woke);
}

TEST_F(OrderFixture, ProxySpaceAwaiterAdmitsInOrder)
{
    params.proxyQueueDepth = 1;
    auto mfc = make();
    int issued = 0;
    auto ppe_side_fn = [&]() -> sim::Task {
        for (int i = 0; i < 5; ++i) {
            co_await mfc->proxyQueueSpace();
            mfc->proxyGet(static_cast<LsAddr>(i * 128),
                          0x1000u + static_cast<EffAddr>(i) * 0x1000,
                          128, 0);
            ++issued;
        }
        co_await mfc->tagWait(1u << 0);
    };
    sim::Task ppe_side = ppe_side_fn();
    ppe_side.start();
    eq.run();
    ppe_side.rethrow();
    EXPECT_EQ(issued, 5);
    EXPECT_EQ(router.started.size(), 5u);
}

/* --- Signal notification ---------------------------------------------- */

TEST(SignalNotify, OrModeAccumulatesBits)
{
    sim::EventQueue eq;
    spe::SignalNotify sig("sig", eq, spe::SignalNotify::Mode::Or);
    sig.signal(0x1);
    sig.signal(0x4);
    std::uint32_t v = 0;
    EXPECT_TRUE(sig.tryRead(v));
    EXPECT_EQ(v, 0x5u);
    EXPECT_FALSE(sig.tryRead(v));   // destructive read
    EXPECT_EQ(sig.writeCount(), 2u);
}

TEST(SignalNotify, OverwriteModeKeepsLastValue)
{
    sim::EventQueue eq;
    spe::SignalNotify sig("sig", eq, spe::SignalNotify::Mode::Overwrite);
    sig.signal(0x1);
    sig.signal(0x4);
    std::uint32_t v = 0;
    EXPECT_TRUE(sig.tryRead(v));
    EXPECT_EQ(v, 0x4u);
}

TEST(SignalNotify, ReadBlocksUntilSignalled)
{
    sim::EventQueue eq;
    spe::SignalNotify sig("sig", eq, spe::SignalNotify::Mode::Or);
    std::uint32_t got = 0;
    auto reader_fn = [&]() -> sim::Task {
        got = co_await sig.read();
    };
    sim::Task reader = reader_fn();
    reader.start();
    eq.run();
    EXPECT_FALSE(reader.done());
    sig.signal(0xAB);
    eq.run();
    EXPECT_TRUE(reader.done());
    EXPECT_EQ(got, 0xABu);
    EXPECT_FALSE(sig.pending());
}

TEST(SignalNotify, BarrierStyleFanIn)
{
    // Eight "workers" each OR their bit; a collector waits until all
    // eight bits are present.
    sim::EventQueue eq;
    spe::SignalNotify sig("sig", eq, spe::SignalNotify::Mode::Or);
    std::uint32_t seen = 0;
    auto collector_fn = [&]() -> sim::Task {
        while (seen != 0xFF)
            seen |= co_await sig.read();
    };
    sim::Task collector = collector_fn();
    collector.start();
    for (unsigned i = 0; i < 8; ++i) {
        eq.schedule(10 * (i + 1), [&sig, i] { sig.signal(1u << i); });
    }
    eq.run();
    EXPECT_TRUE(collector.done());
    EXPECT_EQ(seen, 0xFFu);
}
