/** @file Unit tests for util::InlineFunction (the event-queue callback). */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <utility>

#include "util/inline_function.hh"

using namespace cellbw;

namespace
{

using Fn = util::InlineFunction<void()>;
using IntFn = util::InlineFunction<int(int)>;

/** Payload with an exact size, for straddling the inline boundary. */
template <std::size_t N>
struct Blob
{
    std::array<unsigned char, N> bytes{};
};

} // namespace

TEST(InlineFunction, DefaultConstructedIsEmpty)
{
    Fn f;
    EXPECT_FALSE(static_cast<bool>(f));
    Fn g = nullptr;
    EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunction, InvokesAndPassesArguments)
{
    IntFn f = [](int x) { return x * 2 + 1; };
    EXPECT_TRUE(static_cast<bool>(f));
    EXPECT_EQ(f(20), 41);
}

TEST(InlineFunction, MutatesCapturedReference)
{
    int hits = 0;
    Fn f = [&hits] { ++hits; };
    f();
    f();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, MoveOnlyCaptureWorks)
{
    auto p = std::make_unique<int>(99);
    int seen = 0;
    Fn f = [p = std::move(p), &seen] { seen = *p; };
    // A move-only capture makes the lambda itself move-only;
    // std::function could not hold it at all.
    Fn g = std::move(f);
    g();
    EXPECT_EQ(seen, 99);
}

TEST(InlineFunction, CaptureAtInlineCapacityStaysInline)
{
    Blob<Fn::inlineCapacity> blob;
    blob.bytes[0] = 7;
    unsigned char out = 0;
    Fn f = [blob, &out]() mutable { out = blob.bytes[0]; };
    // blob + reference exceeds the window; build one that just fits:
    static unsigned char sink;
    Blob<Fn::inlineCapacity - sizeof(void *)> fits;
    fits.bytes[0] = 9;
    Fn g = [fits, psink = &sink] { *psink = fits.bytes[0]; };
    EXPECT_TRUE(g.isInline());
    g();
    EXPECT_EQ(sink, 9);
    f();
    EXPECT_EQ(out, 7);
}

TEST(InlineFunction, CaptureOverInlineCapacityGoesToHeapAndStillWorks)
{
    Blob<Fn::inlineCapacity + 1> big;
    big.bytes[Fn::inlineCapacity] = 5;
    static unsigned char sink2;
    Fn f = [big, out = &sink2] { *out = big.bytes[Fn::inlineCapacity]; };
    EXPECT_FALSE(f.isInline());
    f();
    EXPECT_EQ(sink2, 5);
}

TEST(InlineFunction, SizesStraddlingTheBoundary)
{
    // One under, exactly at, and one over the inline window; all must
    // behave identically apart from where the capture lives.
    static int total;
    total = 0;

    Blob<Fn::inlineCapacity - 1> under;
    under.bytes[0] = 1;
    Fn a = [under] { total += under.bytes[0]; };
    EXPECT_TRUE(a.isInline());

    Blob<Fn::inlineCapacity> exact;
    exact.bytes[0] = 2;
    Fn b = [exact] { total += exact.bytes[0]; };
    EXPECT_TRUE(b.isInline());

    Blob<Fn::inlineCapacity + 1> over;
    over.bytes[0] = 4;
    Fn c = [over] { total += over.bytes[0]; };
    EXPECT_FALSE(c.isInline());

    a();
    b();
    c();
    EXPECT_EQ(total, 7);
}

TEST(InlineFunction, MoveTransfersOwnershipAndEmptiesSource)
{
    int hits = 0;
    Fn f = [&hits] { ++hits; };
    Fn g = std::move(f);
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_TRUE(static_cast<bool>(g));
    g();
    EXPECT_EQ(hits, 1);

    Fn h;
    h = std::move(g);
    EXPECT_FALSE(static_cast<bool>(g));
    h();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, DestructorRunsExactlyOnceAfterMoves)
{
    static int destroyed;
    destroyed = 0;
    struct Probe
    {
        bool armed = true;
        Probe() = default;
        Probe(Probe &&o) noexcept : armed(o.armed) { o.armed = false; }
        Probe(const Probe &) = default;
        ~Probe()
        {
            if (armed)
                ++destroyed;
        }
        void operator()() const {}
    };
    {
        Fn f = Probe{};
        Fn g = std::move(f);
        Fn h = std::move(g);
        h();
    }
    EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, DestructorRunsForHeapStoredCallable)
{
    static int destroyed;
    destroyed = 0;
    struct BigProbe
    {
        Blob<Fn::inlineCapacity * 2> pad;
        bool armed = true;
        BigProbe() = default;
        BigProbe(BigProbe &&o) noexcept : pad(o.pad), armed(o.armed)
        {
            o.armed = false;
        }
        BigProbe(const BigProbe &) = default;
        ~BigProbe()
        {
            if (armed)
                ++destroyed;
        }
        void operator()() const {}
    };
    {
        Fn f = BigProbe{};
        EXPECT_FALSE(f.isInline());
        Fn g = std::move(f);
        g();
    }
    EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, ReassignmentDestroysPreviousTarget)
{
    static int destroyed;
    destroyed = 0;
    struct Probe
    {
        bool armed = true;
        Probe() = default;
        Probe(Probe &&o) noexcept : armed(o.armed) { o.armed = false; }
        ~Probe()
        {
            if (armed)
                ++destroyed;
        }
        void operator()() const {}
    };
    Fn f = Probe{};
    f = Fn([] {});
    EXPECT_EQ(destroyed, 1);
    f();
}

TEST(InlineFunction, HoldsAStdFunction)
{
    // The memory/EIB layers hand std::function<void()> completions to
    // the queue; wrapping one must keep working (and fit inline).
    int hits = 0;
    std::function<void()> sf = [&hits] { ++hits; };
    Fn f = sf;
    EXPECT_TRUE(f.isInline());
    f();
    EXPECT_EQ(hits, 1);
}
