/**
 * @file
 * Tests for `cellbw serve`: HTTP parsing, fair scheduling, request
 * coalescing, byte-identity with the CLI, and graceful drain.
 *
 * The end-to-end tests run a real Server on an ephemeral port and talk
 * to it over real sockets, with a synthetic experiment (registered by
 * this TU) whose body counts its runs and can sleep — that is how the
 * coalescing tests force requests to overlap and then assert the
 * simulator ran exactly once.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/experiment_registry.hh"
#include "serve/coalescer.hh"
#include "serve/connection.hh"
#include "serve/server.hh"
#include "stats/table.hh"
#include "util/file.hh"

using namespace cellbw;

// ---------------------------------------------------------------------
// The synthetic experiment the server tests run.

namespace
{

std::atomic<unsigned> g_bodyRuns{0};
std::atomic<unsigned> g_bodySleepMs{0};

int
serveTestBody(core::ExperimentContext &b)
{
    g_bodyRuns.fetch_add(1);
    if (unsigned ms = g_bodySleepMs.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    b.header("Test", "serve test experiment");
    stats::Table table({"metric", "value"});
    table.addRow({"runs",
                  stats::Table::num(double(b.repeat.runs))});
    table.addRow({"seed",
                  stats::Table::num(double(b.repeat.seed))});
    b.emit(table);
    return b.finish();
}

} // namespace

CELLBW_REGISTER_EXPERIMENT(serve_test_exp, "Test",
                           "synthetic instant experiment for serve "
                           "tests", serveTestBody)

// A native-backend registration so the --sim-only gate has something
// to refuse.  The body itself is synthetic and instant.
CELLBW_REGISTER_EXPERIMENT(serve_native_test_exp, "Test N",
                           "synthetic native experiment for serve "
                           "tests", serveTestBody, core::Backend::Native)

// ---------------------------------------------------------------------
// HTTP wire format.

TEST(HttpParser, ParsesACompleteRequest)
{
    serve::HttpRequest req;
    std::size_t used = 0;
    const std::string raw = "POST /run HTTP/1.1\r\n"
                            "Host: x\r\n"
                            "Content-Length: 4\r\n"
                            "X-Cellbw-Client: alice\r\n"
                            "\r\n"
                            "bodyTRAILING";
    ASSERT_EQ(serve::parseHttpRequest(raw, req, used),
              serve::ParseStatus::Ok);
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.target, "/run");
    EXPECT_EQ(req.version, "HTTP/1.1");
    EXPECT_EQ(req.body, "body");
    EXPECT_EQ(req.header("x-cellbw-client"), "alice");
    EXPECT_EQ(req.header("X-Cellbw-Client"), "alice");    // case-blind
    EXPECT_EQ(used, raw.size() - std::strlen("TRAILING"));
}

TEST(HttpParser, AsksForMoreUntilComplete)
{
    serve::HttpRequest req;
    std::size_t used = 0;
    EXPECT_EQ(serve::parseHttpRequest("GET / HT", req, used),
              serve::ParseStatus::NeedMore);
    EXPECT_EQ(serve::parseHttpRequest(
                  "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nshort",
                  req, used),
              serve::ParseStatus::NeedMore);
    EXPECT_EQ(serve::parseHttpRequest("GET /x HTTP/1.1\r\n\r\n", req,
                                      used),
              serve::ParseStatus::Ok);
    EXPECT_EQ(req.method, "GET");
}

TEST(HttpParser, RejectsMalformedRequests)
{
    serve::HttpRequest req;
    std::size_t used = 0;
    EXPECT_EQ(serve::parseHttpRequest("nonsense\r\n\r\n", req, used),
              serve::ParseStatus::Bad);
    EXPECT_EQ(serve::parseHttpRequest("GET x HTTP/1.1\r\n\r\n", req,
                                      used),
              serve::ParseStatus::Bad);      // target must be absolute
    EXPECT_EQ(serve::parseHttpRequest("GET / SPDY/9\r\n\r\n", req,
                                      used),
              serve::ParseStatus::Bad);
    EXPECT_EQ(serve::parseHttpRequest(
                  "GET / HTTP/1.1\r\nContent-Length: -2\r\n\r\n", req,
                  used),
              serve::ParseStatus::Bad);
}

TEST(HttpParser, CapsHeaderAndBodySizes)
{
    serve::HttpRequest req;
    std::size_t used = 0;
    const std::string hugeHeader =
        "GET / HTTP/1.1\r\nX: " +
        std::string(serve::kMaxHeaderBytes, 'a');
    EXPECT_EQ(serve::parseHttpRequest(hugeHeader, req, used),
              serve::ParseStatus::TooLarge);
    const std::string hugeBody =
        "POST / HTTP/1.1\r\nContent-Length: " +
        std::to_string(serve::kMaxBodyBytes + 1) + "\r\n\r\n";
    EXPECT_EQ(serve::parseHttpRequest(hugeBody, req, used),
              serve::ParseStatus::TooLarge);
}

TEST(HttpResponse, RendersStatusHeadersAndBody)
{
    serve::HttpResponse resp;
    resp.status = 404;
    resp.body = "{\"error\":\"x\"}\n";
    resp.headers = {{"X-Cellbw-Key", "abc"}};
    const std::string wire = serve::renderHttpResponse(resp);
    EXPECT_EQ(wire.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);
    EXPECT_NE(wire.find("Content-Length: 14\r\n"), std::string::npos);
    EXPECT_NE(wire.find("X-Cellbw-Key: abc\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n\r\n{\"error\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Scheduling primitives.

namespace
{

std::shared_ptr<serve::Job>
mkJob(serve::JobTable &table, const std::string &client,
      const std::string &key)
{
    return table.create("serve_test_exp", {}, client, key,
                        "material " + key);
}

} // namespace

TEST(FairQueue, RoundRobinsAcrossClients)
{
    serve::JobTable table;
    serve::FairQueue q;
    // alice floods three configs before bob's single request arrives.
    ASSERT_TRUE(q.push(mkJob(table, "alice", "a1")));
    ASSERT_TRUE(q.push(mkJob(table, "alice", "a2")));
    ASSERT_TRUE(q.push(mkJob(table, "alice", "a3")));
    ASSERT_TRUE(q.push(mkJob(table, "bob", "b1")));
    EXPECT_EQ(q.depth(), 4u);

    // bob is served after ONE alice job, not after all three; each
    // client's own jobs keep their submission order.
    EXPECT_EQ(q.pop()->key, "a1");
    EXPECT_EQ(q.pop()->key, "b1");
    EXPECT_EQ(q.pop()->key, "a2");
    EXPECT_EQ(q.pop()->key, "a3");
}

TEST(FairQueue, CloseRejectsNewWorkAndDrains)
{
    serve::JobTable table;
    serve::FairQueue q;
    ASSERT_TRUE(q.push(mkJob(table, "alice", "a1")));
    q.close();
    EXPECT_FALSE(q.push(mkJob(table, "alice", "a2")));
    ASSERT_NE(q.pop(), nullptr);        // queued work still drains
    EXPECT_EQ(q.pop(), nullptr);        // then pop reports closed
}

TEST(Coalescer, IdenticalKeysShareOneInFlightJob)
{
    serve::JobTable table;
    serve::Coalescer c;
    auto first = mkJob(table, "alice", "k");
    auto dup = mkJob(table, "bob", "k");

    auto [job1, admitted1] = c.admit(first);
    EXPECT_TRUE(admitted1);
    EXPECT_EQ(job1, first);

    auto [job2, admitted2] = c.admit(dup);
    EXPECT_FALSE(admitted2);
    EXPECT_EQ(job2, first);             // bob rides alice's job
    EXPECT_EQ(first->coalesced, 1u);
    EXPECT_EQ(c.inflight(), 1u);

    c.finished("k");
    EXPECT_EQ(c.inflight(), 0u);
    auto [job3, admitted3] = c.admit(mkJob(table, "carol", "k"));
    EXPECT_TRUE(admitted3);             // a finished key admits fresh
}

// ---------------------------------------------------------------------
// End to end over real sockets.

namespace
{

struct Response
{
    int status = 0;
    std::map<std::string, std::string> headers;     // lower-cased names
    std::string body;
};

/** One-shot HTTP client: connect, send, read to EOF, parse. */
Response
httpRoundTrip(std::uint16_t port, const std::string &raw)
{
    Response out;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return out;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return out;
    }
    std::size_t off = 0;
    while (off < raw.size()) {
        ssize_t n = ::send(fd, raw.data() + off, raw.size() - off, 0);
        if (n <= 0)
            break;
        off += static_cast<std::size_t>(n);
    }
    std::string wire;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        wire.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);

    const auto headerEnd = wire.find("\r\n\r\n");
    if (headerEnd == std::string::npos)
        return out;
    out.body = wire.substr(headerEnd + 4);
    const auto firstLine = wire.substr(0, wire.find("\r\n"));
    if (firstLine.size() > 12)
        out.status = std::atoi(firstLine.c_str() + 9);
    std::size_t pos = wire.find("\r\n") + 2;
    while (pos < headerEnd) {
        const auto eol = wire.find("\r\n", pos);
        const auto line = wire.substr(pos, eol - pos);
        const auto colon = line.find(':');
        if (colon != std::string::npos) {
            std::string name = line.substr(0, colon);
            for (auto &ch : name)
                ch = static_cast<char>(std::tolower(ch));
            std::string value = line.substr(colon + 1);
            while (!value.empty() && value.front() == ' ')
                value.erase(value.begin());
            out.headers[name] = value;
        }
        pos = eol + 2;
    }
    return out;
}

Response
post(std::uint16_t port, const std::string &target,
     const std::string &body)
{
    return httpRoundTrip(
        port, "POST " + target + " HTTP/1.1\r\nHost: t\r\n"
                  "Content-Length: " + std::to_string(body.size()) +
                  "\r\n\r\n" + body);
}

Response
get(std::uint16_t port, const std::string &target)
{
    return httpRoundTrip(port, "GET " + target +
                                   " HTTP/1.1\r\nHost: t\r\n\r\n");
}

/** A running server on an ephemeral port, torn down on scope exit. */
class ServerFixture
{
  public:
    explicit ServerFixture(const char *name, bool useCache = true,
                           bool simOnly = false)
    {
        root_ = testing::TempDir() + "cellbw_serve_test_" + name;
        std::filesystem::remove_all(root_);
        serve::ServeSpec spec;
        spec.port = 0;
        spec.jobs = 2;
        spec.active = 2;
        spec.cacheDir = root_ + "/cache";
        spec.useCache = useCache;
        spec.spoolDir = root_ + "/spool";
        spec.terse = true;
        spec.simOnly = simOnly;
        server_ = std::make_unique<serve::Server>(spec);
        started_ = server_->start();
        if (started_)
            loop_ = std::thread([this] { server_->run(); });
        g_bodySleepMs.store(0);
    }

    ~ServerFixture()
    {
        if (started_) {
            server_->beginShutdown();
            loop_.join();
        }
        server_.reset();
        std::filesystem::remove_all(root_);
    }

    serve::Server &server() { return *server_; }
    std::uint16_t port() const { return server_->port(); }
    bool started() const { return started_; }

  private:
    std::string root_;
    std::unique_ptr<serve::Server> server_;
    std::thread loop_;
    bool started_ = false;
};

/** What `cellbw run <exp> <args> --json <file>` writes for this config. */
std::string
cliReportBytes(const char *name, std::vector<std::string> args)
{
    const std::string path = testing::TempDir() +
                             "cellbw_serve_cli_want.json";
    std::filesystem::remove(path);
    std::vector<std::string> argStore;
    argStore.push_back(name);
    for (auto &a : args)
        argStore.push_back(std::move(a));
    argStore.push_back("--json");
    argStore.push_back(path);
    std::vector<const char *> argv;
    for (const auto &a : argStore)
        argv.push_back(a.c_str());
    EXPECT_EQ(core::runExperimentCli(name,
                                     static_cast<int>(argv.size()),
                                     argv.data()),
              0);
    std::string bytes;
    EXPECT_TRUE(util::readFile(path, bytes));
    std::filesystem::remove(path);
    return bytes;
}

} // namespace

TEST(Serve, HealthAndExperimentEndpoints)
{
    ServerFixture fx("health");
    ASSERT_TRUE(fx.started());
    auto health = get(fx.port(), "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"draining\":false"),
              std::string::npos);
    auto list = get(fx.port(), "/experiments");
    EXPECT_EQ(list.status, 200);
    EXPECT_NE(list.body.find("serve_test_exp"), std::string::npos);
}

TEST(Serve, RunIsByteIdenticalToCli)
{
    ServerFixture fx("identity");
    ASSERT_TRUE(fx.started());
    const std::string want =
        cliReportBytes("serve_test_exp", {"--seed", "11"});

    auto cold = post(fx.port(), "/run",
                     "{\"experiment\":\"serve_test_exp\","
                     "\"args\":[\"--seed\",\"11\"]}");
    ASSERT_EQ(cold.status, 200);
    EXPECT_EQ(cold.headers["x-cellbw-cache"], "miss");
    EXPECT_EQ(cold.body, want);

    auto warm = post(fx.port(), "/run",
                     "{\"experiment\":\"serve_test_exp\","
                     "\"args\":[\"--seed\",\"11\"]}");
    ASSERT_EQ(warm.status, 200);
    EXPECT_EQ(warm.headers["x-cellbw-cache"], "hit");
    EXPECT_EQ(warm.body, want);
}

TEST(Serve, ConcurrentIdenticalRequestsCoalesceToOneRun)
{
    ServerFixture fx("coalesce");
    ASSERT_TRUE(fx.started());
    g_bodySleepMs.store(250);       // force the requests to overlap
    const unsigned before = g_bodyRuns.load();

    constexpr int kClients = 8;
    std::vector<Response> responses(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            responses[i] =
                post(fx.port(), "/run",
                     "{\"experiment\":\"serve_test_exp\","
                     "\"args\":[\"--seed\",\"22\"],"
                     "\"client\":\"c" + std::to_string(i) + "\"}");
        });
    }
    for (auto &t : clients)
        t.join();
    g_bodySleepMs.store(0);

    // One simulator run, eight identical answers.
    EXPECT_EQ(g_bodyRuns.load() - before, 1u);
    for (int i = 0; i < kClients; ++i) {
        ASSERT_EQ(responses[i].status, 200) << "client " << i;
        EXPECT_EQ(responses[i].body, responses[0].body)
            << "client " << i;
    }
    const std::string want =
        cliReportBytes("serve_test_exp", {"--seed", "22"});
    EXPECT_EQ(responses[0].body, want);
    EXPECT_GE(fx.server().metrics().counter("serve.coalesced").value() +
                  fx.server().metrics().counter("serve.cache_hits")
                      .value(),
              unsigned(kClients - 1));
    EXPECT_EQ(fx.server().metrics().counter("serve.runs").value(), 1u);
}

TEST(Serve, CoalescingHoldsWithoutTheCacheToo)
{
    // --no-cache narrows the exactly-once guarantee to the coalescing
    // window — overlapping identical requests must still share a run.
    ServerFixture fx("nocache", /*useCache=*/false);
    ASSERT_TRUE(fx.started());
    g_bodySleepMs.store(250);
    const unsigned before = g_bodyRuns.load();

    std::vector<Response> responses(4);
    std::vector<std::thread> clients;
    for (int i = 0; i < 4; ++i) {
        clients.emplace_back([&, i] {
            responses[i] = post(fx.port(), "/run",
                                "{\"experiment\":\"serve_test_exp\","
                                "\"args\":[\"--seed\",\"33\"]}");
        });
    }
    for (auto &t : clients)
        t.join();
    g_bodySleepMs.store(0);

    EXPECT_EQ(g_bodyRuns.load() - before, 1u);
    for (const auto &r : responses) {
        ASSERT_EQ(r.status, 200);
        EXPECT_EQ(r.body, responses[0].body);
    }
}

TEST(Serve, AsyncRunsCompleteThroughTheJobTable)
{
    ServerFixture fx("async");
    ASSERT_TRUE(fx.started());
    auto accepted = post(fx.port(), "/run",
                         "{\"experiment\":\"serve_test_exp\","
                         "\"args\":[\"--seed\",\"44\"],"
                         "\"wait\":false}");
    ASSERT_EQ(accepted.status, 202);
    const std::string id = accepted.headers["x-cellbw-job"];
    ASSERT_FALSE(id.empty());

    // Poll until done (the body is instant; this bounds flakiness).
    Response status;
    for (int i = 0; i < 200; ++i) {
        status = get(fx.port(), "/jobs/" + id);
        if (status.body.find("\"state\":\"done\"") != std::string::npos)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(status.status, 200);
    ASSERT_NE(status.body.find("\"state\":\"done\""),
              std::string::npos) << status.body;

    auto report = get(fx.port(), "/jobs/" + id + "/report");
    ASSERT_EQ(report.status, 200);
    EXPECT_EQ(report.body,
              cliReportBytes("serve_test_exp", {"--seed", "44"}));
}

TEST(Serve, RejectsBadRequests)
{
    ServerFixture fx("badreq");
    ASSERT_TRUE(fx.started());
    EXPECT_EQ(get(fx.port(), "/nope").status, 404);
    EXPECT_EQ(get(fx.port(), "/jobs/j999").status, 404);
    EXPECT_EQ(get(fx.port(), "/run").status, 405);
    EXPECT_EQ(post(fx.port(), "/run", "not json").status, 400);
    EXPECT_EQ(post(fx.port(), "/run", "{\"args\":[]}").status, 400);
    EXPECT_EQ(post(fx.port(), "/run",
                   "{\"experiment\":\"no_such_exp\"}").status, 404);
    EXPECT_EQ(post(fx.port(), "/run",
                   "{\"experiment\":\"serve_test_exp\","
                   "\"args\":[\"--json\",\"/tmp/x\"]}").status, 400);
    EXPECT_EQ(post(fx.port(), "/run",
                   "{\"experiment\":\"serve_test_exp\","
                   "\"args\":[\"--no-such-flag\"]}").status, 400);
    auto raw = httpRoundTrip(fx.port(), "garbage\r\n\r\n");
    EXPECT_EQ(raw.status, 400);
}

TEST(Serve, BackendFieldIsValidatedAgainstTheRegistration)
{
    ServerFixture fx("backend");
    ASSERT_TRUE(fx.started());

    // Naming the registered backend explicitly is accepted...
    auto ok = post(fx.port(), "/run",
                   "{\"experiment\":\"serve_test_exp\","
                   "\"backend\":\"sim\","
                   "\"args\":[\"--seed\",\"66\"]}");
    EXPECT_EQ(ok.status, 200);

    // ...an unknown backend, a mismatching one, and a non-string
    // value are all 400s.
    EXPECT_EQ(post(fx.port(), "/run",
                   "{\"experiment\":\"serve_test_exp\","
                   "\"backend\":\"gpu\"}").status, 400);
    auto mismatch = post(fx.port(), "/run",
                         "{\"experiment\":\"serve_test_exp\","
                         "\"backend\":\"native\"}");
    EXPECT_EQ(mismatch.status, 400);
    EXPECT_NE(mismatch.body.find("sim"), std::string::npos);
    EXPECT_EQ(post(fx.port(), "/run",
                   "{\"experiment\":\"serve_test_exp\","
                   "\"backend\":7}").status, 400);
}

TEST(Serve, SimOnlyRefusesNativeExperimentsWith403)
{
    ServerFixture fx("simonly", /*useCache=*/true, /*simOnly=*/true);
    ASSERT_TRUE(fx.started());

    // Sim experiments still run...
    auto sim = post(fx.port(), "/run",
                    "{\"experiment\":\"serve_test_exp\","
                    "\"args\":[\"--seed\",\"77\"]}");
    EXPECT_EQ(sim.status, 200);

    // ...native ones are refused with a reason, and the refusal is
    // counted.
    auto nat = post(fx.port(), "/run",
                    "{\"experiment\":\"serve_native_test_exp\"}");
    EXPECT_EQ(nat.status, 403);
    EXPECT_NE(nat.body.find("--sim-only"), std::string::npos);
    EXPECT_GE(fx.server()
                  .metrics()
                  .counter("serve.rejected_native")
                  .value(),
              1u);
}

TEST(Serve, NativeRunsWorkWhenNotSimOnly)
{
    // The default daemon accepts native experiments; the synthetic
    // body makes this a routing test, not a measurement test.
    ServerFixture fx("native");
    ASSERT_TRUE(fx.started());
    auto nat = post(fx.port(), "/run",
                    "{\"experiment\":\"serve_native_test_exp\","
                    "\"backend\":\"native\","
                    "\"args\":[\"--seed\",\"88\"]}");
    EXPECT_EQ(nat.status, 200);
    EXPECT_NE(nat.body.find("\"backend\":\"native\""),
              std::string::npos);
    EXPECT_NE(nat.body.find("\"reproducible\":false"),
              std::string::npos);
    // Native results never come from nor land in the result cache.
    EXPECT_EQ(nat.headers["x-cellbw-cache"], "miss");
    auto again = post(fx.port(), "/run",
                      "{\"experiment\":\"serve_native_test_exp\","
                      "\"args\":[\"--seed\",\"88\"]}");
    EXPECT_EQ(again.status, 200);
    EXPECT_EQ(again.headers["x-cellbw-cache"], "miss");
}

TEST(Serve, DrainingRejectsNewRunsWith503)
{
    ServerFixture fx("drain");
    ASSERT_TRUE(fx.started());
    // A run accepted before the drain still completes...
    auto ok = post(fx.port(), "/run",
                   "{\"experiment\":\"serve_test_exp\","
                   "\"args\":[\"--seed\",\"55\"]}");
    ASSERT_EQ(ok.status, 200);

    fx.server().beginShutdown();
    // ...but once draining, /run refuses (exercised through route():
    // the accept loop is already closing its socket).
    serve::HttpRequest req;
    req.method = "POST";
    req.target = "/run";
    req.version = "HTTP/1.1";
    req.body = "{\"experiment\":\"serve_test_exp\"}";
    auto resp = fx.server().route(req, "peer");
    EXPECT_EQ(resp.status, 503);
    EXPECT_TRUE(fx.server().draining());
    EXPECT_GE(fx.server()
                  .metrics()
                  .counter("serve.rejected_draining")
                  .value(),
              1u);
}
