/** @file Unit tests for RNG, clock conversions and logging. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/clock.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace cellbw;

TEST(Rng, DeterministicForSameSeed)
{
    sim::Rng a(7);
    sim::Rng b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    sim::Rng a(1);
    sim::Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000))
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntStaysInRange)
{
    sim::Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformRealInHalfOpenUnitInterval)
{
    sim::Rng r(4);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, PermutationIsAPermutation)
{
    sim::Rng r(5);
    for (int trial = 0; trial < 20; ++trial) {
        auto p = r.permutation(8);
        ASSERT_EQ(p.size(), 8u);
        std::set<std::uint32_t> seen(p.begin(), p.end());
        EXPECT_EQ(seen.size(), 8u);
        EXPECT_EQ(*seen.begin(), 0u);
        EXPECT_EQ(*seen.rbegin(), 7u);
    }
}

TEST(Rng, PermutationsVaryAcrossDraws)
{
    sim::Rng r(6);
    auto a = r.permutation(8);
    auto b = r.permutation(8);
    auto c = r.permutation(8);
    EXPECT_TRUE(a != b || b != c);
}

TEST(Rng, ReseedRestoresSequence)
{
    sim::Rng r(9);
    auto first = r.uniformInt(0, 1u << 30);
    r.reseed(9);
    EXPECT_EQ(r.uniformInt(0, 1u << 30), first);
}

TEST(Clock, SecondsAndBack)
{
    sim::ClockSpec c;
    EXPECT_DOUBLE_EQ(c.seconds(2100000000ull), 1.0);
    EXPECT_EQ(c.fromSeconds(1.0), 2100000000ull);
    EXPECT_EQ(c.fromNs(1.0), 2u);   // 2.1 ticks rounds to 2
}

TEST(Clock, BusCycles)
{
    sim::ClockSpec c;
    EXPECT_EQ(c.busPeriodTicks, 2u);
    EXPECT_EQ(c.busCycles(10), 20u);
}

TEST(Clock, BandwidthGBps)
{
    sim::ClockSpec c;
    // 16 bytes per bus cycle = 16.8 GB/s at 2.1 GHz.
    double bw = c.bandwidthGBps(16, 2);
    EXPECT_NEAR(bw, 16.8, 1e-9);
    EXPECT_DOUBLE_EQ(c.bandwidthGBps(100, 0), 0.0);
}

TEST(Clock, DecrementerTicks)
{
    sim::ClockSpec c;
    // One second of CPU time = timebaseHz decrementer ticks.
    auto ticks = c.decrementerTicks(c.fromSeconds(1.0));
    EXPECT_NEAR(static_cast<double>(ticks), c.timebaseHz, 1.0);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(sim::fatal("bad thing %d", 42), sim::FatalError);
    try {
        sim::fatal("value=%d", 7);
    } catch (const sim::FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7");
    }
}

TEST(Logging, LevelRoundTrips)
{
    auto old = sim::logLevel();
    sim::setLogLevel(sim::LogLevel::Debug);
    EXPECT_EQ(sim::logLevel(), sim::LogLevel::Debug);
    sim::setLogLevel(old);
}
