/** @file Tests for the trace recorder and its system hookup. */

#include <gtest/gtest.h>

#include "cell/cell_system.hh"
#include "test_util.hh"
#include "trace/recorder.hh"

using namespace cellbw;

TEST(Recorder, StoresAndClearsRecords)
{
    trace::Recorder rec;
    rec.dma({10, 20, 100, 0, spe::DmaDir::Get, 3, 1024, false, false});
    rec.eib({10, 15, 40, 0, 2, 11, 10, 128});
    EXPECT_EQ(rec.dmaRecords().size(), 1u);
    EXPECT_EQ(rec.eibRecords().size(), 1u);
    rec.clear();
    EXPECT_TRUE(rec.dmaRecords().empty());
    EXPECT_TRUE(rec.eibRecords().empty());
}

TEST(Recorder, CsvHasHeaderAndRows)
{
    trace::Recorder rec;
    rec.dma({10, 20, 100, 2, spe::DmaDir::Put, 5, 4096, true, false});
    std::string csv = rec.dmaCsv();
    EXPECT_NE(csv.find("enqueued,issued,completed"), std::string::npos);
    EXPECT_NE(csv.find("10,20,100,2,put,5,4096,1,0"), std::string::npos);

    rec.eib({1, 2, 3, 1, 0, 4, 7, 128});
    std::string ecsv = rec.eibCsv();
    EXPECT_NE(ecsv.find("requested,granted,delivered"),
              std::string::npos);
    EXPECT_NE(ecsv.find("1,2,3,1,0,4,7,128"), std::string::npos);
}

TEST(Recorder, TimelineShowsLanesAndMarks)
{
    trace::Recorder rec;
    rec.dma({0, 10, 500, 0, spe::DmaDir::Get, 0, 1024, false, false});
    rec.dma({100, 150, 900, 1, spe::DmaDir::Put, 1, 1024, false, false});
    std::string tl = rec.renderDmaTimeline(40);
    EXPECT_NE(tl.find("spe0"), std::string::npos);
    EXPECT_NE(tl.find("spe1"), std::string::npos);
    EXPECT_NE(tl.find('G'), std::string::npos);
    EXPECT_NE(tl.find('P'), std::string::npos);
}

TEST(Recorder, EmptyTimelineIsGraceful)
{
    trace::Recorder rec;
    EXPECT_NE(rec.renderDmaTimeline().find("no DMA records"),
              std::string::npos);
}

TEST(Tracing, SystemHookupCapturesARealRun)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    auto &rec = sys.enableTracing();

    EffAddr buf = sys.malloc(64 * 1024);
    auto prog_fn = [&]() -> sim::Task {
        auto &s = sys.spe(0);
        for (unsigned off = 0; off < 64 * 1024; off += 16 * 1024) {
            co_await s.mfc().queueSpace();
            s.mfc().get(off, buf + off, 16 * 1024, 2);
        }
        co_await s.mfc().tagWait(1u << 2);
    };
    sys.launch(prog_fn());
    sys.run();

    ASSERT_EQ(rec.dmaRecords().size(), 4u);
    for (const auto &r : rec.dmaRecords()) {
        EXPECT_EQ(r.spe, 0u);
        EXPECT_EQ(r.tag, 2u);
        EXPECT_EQ(r.bytes, 16u * 1024u);
        EXPECT_LE(r.enqueued, r.issued);
        EXPECT_LT(r.issued, r.completed);
    }
    // 64 KiB = 512 lines over the ring.
    EXPECT_EQ(rec.eibRecords().size(), 512u);
    for (const auto &r : rec.eibRecords()) {
        EXPECT_LE(r.requested, r.granted);
        EXPECT_LT(r.granted, r.delivered);
        EXPECT_LT(r.ring, 4u);
    }
    EXPECT_NE(rec.renderDmaTimeline().find("spe0"), std::string::npos);
}

TEST(Recorder, ParaverExportHasHeaderAndStates)
{
    trace::Recorder rec;
    rec.dma({0, 10, 500, 0, spe::DmaDir::Get, 0, 1024, false, false});
    rec.dma({50, 60, 700, 2, spe::DmaDir::Put, 1, 2048, false, false});
    // 1 tick = 0.476 ns at 2.1 GHz; use 1.0 for easy numbers.
    std::string prv = rec.paraverExport(1.0);
    EXPECT_EQ(prv.rfind("#Paraver", 0), 0u);
    EXPECT_NE(prv.find(":700_ns:"), std::string::npos);
    // GET on task 1: state 1 from 10 to 500.
    EXPECT_NE(prv.find("1:1:1:1:1:10:500:1"), std::string::npos);
    // PUT on task 3: state 2 from 60 to 700.
    EXPECT_NE(prv.find("1:3:1:3:1:60:700:2"), std::string::npos);
}

TEST(Tracing, EnableTracingIsIdempotent)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    auto &a = sys.enableTracing();
    auto &b = sys.enableTracing();
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(sys.recorder(), &a);
}

TEST(Tracing, OffByDefault)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    EXPECT_EQ(sys.recorder(), nullptr);
}
