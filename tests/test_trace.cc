/** @file Tests for the trace recorder and its system hookup. */

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>

#include "cell/cell_system.hh"
#include "test_util.hh"
#include "trace/recorder.hh"

using namespace cellbw;

TEST(Recorder, StoresAndClearsRecords)
{
    trace::Recorder rec;
    rec.dma({10, 20, 100, 0, spe::DmaDir::Get, 3, 1024, false, false});
    rec.eib({10, 15, 40, 0, 2, 11, 10, 128});
    EXPECT_EQ(rec.dmaRecords().size(), 1u);
    EXPECT_EQ(rec.eibRecords().size(), 1u);
    rec.clear();
    EXPECT_TRUE(rec.dmaRecords().empty());
    EXPECT_TRUE(rec.eibRecords().empty());
}

TEST(Recorder, CsvHasHeaderAndRows)
{
    trace::Recorder rec;
    rec.dma({10, 20, 100, 2, spe::DmaDir::Put, 5, 4096, true, false});
    std::string csv = rec.dmaCsv();
    EXPECT_NE(csv.find("enqueued,issued,completed"), std::string::npos);
    EXPECT_NE(csv.find("10,20,100,2,put,5,4096,1,0"), std::string::npos);

    rec.eib({1, 2, 3, 1, 0, 4, 7, 128});
    std::string ecsv = rec.eibCsv();
    EXPECT_NE(ecsv.find("requested,granted,delivered"),
              std::string::npos);
    EXPECT_NE(ecsv.find("1,2,3,1,0,4,7,128"), std::string::npos);
}

TEST(Recorder, TimelineShowsLanesAndMarks)
{
    trace::Recorder rec;
    rec.dma({0, 10, 500, 0, spe::DmaDir::Get, 0, 1024, false, false});
    rec.dma({100, 150, 900, 1, spe::DmaDir::Put, 1, 1024, false, false});
    std::string tl = rec.renderDmaTimeline(40);
    EXPECT_NE(tl.find("spe0"), std::string::npos);
    EXPECT_NE(tl.find("spe1"), std::string::npos);
    EXPECT_NE(tl.find('G'), std::string::npos);
    EXPECT_NE(tl.find('P'), std::string::npos);
}

TEST(Recorder, EmptyTimelineIsGraceful)
{
    trace::Recorder rec;
    EXPECT_NE(rec.renderDmaTimeline().find("no DMA records"),
              std::string::npos);
}

TEST(Tracing, SystemHookupCapturesARealRun)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    auto &rec = sys.enableTracing();

    EffAddr buf = sys.malloc(64 * 1024);
    auto prog_fn = [&]() -> sim::Task {
        auto &s = sys.spe(0);
        for (unsigned off = 0; off < 64 * 1024; off += 16 * 1024) {
            co_await s.mfc().queueSpace();
            s.mfc().get(off, buf + off, 16 * 1024, 2);
        }
        co_await s.mfc().tagWait(1u << 2);
    };
    sys.launch(prog_fn());
    sys.run();

    ASSERT_EQ(rec.dmaRecords().size(), 4u);
    for (const auto &r : rec.dmaRecords()) {
        EXPECT_EQ(r.spe, 0u);
        EXPECT_EQ(r.tag, 2u);
        EXPECT_EQ(r.bytes, 16u * 1024u);
        EXPECT_LE(r.enqueued, r.issued);
        EXPECT_LT(r.issued, r.completed);
    }
    // 64 KiB = 512 lines over the ring.
    EXPECT_EQ(rec.eibRecords().size(), 512u);
    for (const auto &r : rec.eibRecords()) {
        EXPECT_LE(r.requested, r.granted);
        EXPECT_LT(r.granted, r.delivered);
        EXPECT_LT(r.ring, 4u);
    }
    EXPECT_NE(rec.renderDmaTimeline().find("spe0"), std::string::npos);
}

TEST(Recorder, ParaverExportHasHeaderAndStates)
{
    trace::Recorder rec;
    rec.dma({0, 10, 500, 0, spe::DmaDir::Get, 0, 1024, false, false});
    rec.dma({50, 60, 700, 2, spe::DmaDir::Put, 1, 2048, false, false});
    // 1 tick = 0.476 ns at 2.1 GHz; use 1.0 for easy numbers.
    std::string prv = rec.paraverExport(1.0);
    EXPECT_EQ(prv.rfind("#Paraver", 0), 0u);
    EXPECT_NE(prv.find(":700_ns:"), std::string::npos);
    // GET on task 1: state 1 from 10 to 500.
    EXPECT_NE(prv.find("1:1:1:1:1:10:500:1"), std::string::npos);
    // PUT on task 3: state 2 from 60 to 700.
    EXPECT_NE(prv.find("1:3:1:3:1:60:700:2"), std::string::npos);
}

TEST(Tracing, EnableTracingIsIdempotent)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    auto &a = sys.enableTracing();
    auto &b = sys.enableTracing();
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(sys.recorder(), &a);
}

TEST(Tracing, OffByDefault)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    EXPECT_EQ(sys.recorder(), nullptr);
}

TEST(Recorder, TimelineSurvivesDegenerateWidths)
{
    // Regression: width < 2 used to divide by zero / index past the
    // lane buffer.  Any requested width must render.
    trace::Recorder rec;
    rec.dma({0, 10, 500, 0, spe::DmaDir::Get, 0, 1024, false, false});
    for (int w : {0, 1, -5, 2}) {
        std::string tl = rec.renderDmaTimeline(w);
        EXPECT_NE(tl.find("spe0"), std::string::npos) << "width " << w;
    }
}

TEST(Recorder, ParaverExportOfEmptyTraceIsEmpty)
{
    // Regression: an empty trace used to emit a bogus header claiming
    // one task and a huge duration from Tick underflow.
    trace::Recorder rec;
    EXPECT_EQ(rec.paraverExport(1.0), "");
}

TEST(Recorder, ParaverExportRoundsNsConversion)
{
    // Regression: ns conversion used to truncate, collapsing sub-ns
    // records to zero-length states.  issued 3, completed 5 at
    // 0.5 ns/tick must round to the 2..3 ns window, not 1..2.
    trace::Recorder rec;
    rec.dma({0, 3, 5, 0, spe::DmaDir::Get, 0, 128, false, false});
    std::string prv = rec.paraverExport(0.5);
    EXPECT_NE(prv.find(":3_ns:"), std::string::npos);
    EXPECT_NE(prv.find("1:1:1:1:1:2:3:1"), std::string::npos);
}

TEST(Recorder, CapacityBoundsBuffersAndCountsDrops)
{
    trace::Recorder rec;
    rec.setCapacity(4);
    for (Tick t = 0; t < 20; ++t) {
        rec.dma({t, t + 1, t + 2, 0, spe::DmaDir::Get, 0, 128, false,
                 false});
        rec.eib({t, t + 1, t + 2, 0, 0, 1, 2, 128});
    }
    // Amortized eviction: never more than twice the capacity retained.
    EXPECT_LE(rec.dmaRecords().size(), 8u);
    EXPECT_LE(rec.eibRecords().size(), 8u);
    EXPECT_EQ(rec.dmaRecords().size() + rec.dmaDropped(), 20u);
    EXPECT_EQ(rec.eibRecords().size() + rec.eibDropped(), 20u);
    // The newest record survives; retained order stays chronological.
    EXPECT_EQ(rec.dmaRecords().back().enqueued, 19u);
    for (std::size_t i = 1; i < rec.dmaRecords().size(); ++i) {
        EXPECT_LT(rec.dmaRecords()[i - 1].enqueued,
                  rec.dmaRecords()[i].enqueued);
    }
    // Shrinking the bound trims immediately.
    rec.setCapacity(2);
    EXPECT_LE(rec.dmaRecords().size(), 2u);
    rec.clear();
    EXPECT_EQ(rec.dmaDropped(), 0u);
    EXPECT_TRUE(rec.dmaRecords().empty());
}

TEST(Recorder, UnboundedByDefault)
{
    trace::Recorder rec;
    for (Tick t = 0; t < 1000; ++t)
        rec.dma({t, t, t + 1, 0, spe::DmaDir::Get, 0, 128, false,
                 false});
    EXPECT_EQ(rec.dmaRecords().size(), 1000u);
    EXPECT_EQ(rec.dmaDropped(), 0u);
}

namespace
{

/**
 * Minimal JSON syntax checker, enough to prove chromeTrace() emits a
 * well-formed document without an external parser.  Returns the
 * position after the value, or std::string::npos on a syntax error.
 */
std::size_t
skipWs(const std::string &s, std::size_t i)
{
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
        ++i;
    return i;
}

std::size_t jsonValue(const std::string &s, std::size_t i);

std::size_t
jsonString(const std::string &s, std::size_t i)
{
    if (i >= s.size() || s[i] != '"')
        return std::string::npos;
    for (++i; i < s.size(); ++i) {
        if (s[i] == '\\') {
            ++i;
            continue;
        }
        if (s[i] == '"')
            return i + 1;
    }
    return std::string::npos;
}

std::size_t
jsonValue(const std::string &s, std::size_t i)
{
    i = skipWs(s, i);
    if (i >= s.size())
        return std::string::npos;
    if (s[i] == '"')
        return jsonString(s, i);
    if (s[i] == '{' || s[i] == '[') {
        const char close = s[i] == '{' ? '}' : ']';
        const bool isObject = s[i] == '{';
        i = skipWs(s, i + 1);
        if (i < s.size() && s[i] == close)
            return i + 1;
        for (;;) {
            if (isObject) {
                i = jsonString(s, skipWs(s, i));
                if (i == std::string::npos)
                    return i;
                i = skipWs(s, i);
                if (i >= s.size() || s[i] != ':')
                    return std::string::npos;
                ++i;
            }
            i = jsonValue(s, i);
            if (i == std::string::npos)
                return i;
            i = skipWs(s, i);
            if (i < s.size() && s[i] == ',') {
                i = skipWs(s, i + 1);
                continue;
            }
            if (i < s.size() && s[i] == close)
                return i + 1;
            return std::string::npos;
        }
    }
    // Literal: number / true / false / null.
    std::size_t j = i;
    while (j < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[j])) || s[j] == '-' ||
            s[j] == '+' || s[j] == '.'))
        ++j;
    return j > i ? j : std::string::npos;
}

bool
isValidJson(const std::string &s)
{
    std::size_t end = jsonValue(s, 0);
    return end != std::string::npos && skipWs(s, end) == s.size();
}

/** Count non-overlapping occurrences of @p needle. */
std::size_t
countOf(const std::string &s, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = s.find(needle); pos != std::string::npos;
         pos = s.find(needle, pos + needle.size()))
        ++n;
    return n;
}

} // namespace

TEST(Recorder, ChromeTraceIsValidJsonWithPairedEvents)
{
    trace::Recorder rec;
    rec.dma({0, 10, 500, 0, spe::DmaDir::Get, 2, 1024, false, false});
    rec.dma({5, 60, 700, 1, spe::DmaDir::Put, 3, 2048, true, true});
    rec.eib({1, 2, 9, 0, 1, 4, 7, 128});
    std::string json = rec.chromeTrace(1.0);

    ASSERT_TRUE(isValidJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    // Every async begin has a matching end (same count, per category).
    EXPECT_EQ(countOf(json, "\"ph\":\"b\""), 3u);
    EXPECT_EQ(countOf(json, "\"ph\":\"e\""), 3u);
    EXPECT_EQ(countOf(json, "\"cat\":\"dma\""), 4u);  // 2 cmds x b+e
    EXPECT_EQ(countOf(json, "\"cat\":\"eib\""), 2u);
    // Command details travel in args.
    EXPECT_NE(json.find("\"tag\":2"), std::string::npos);
    EXPECT_NE(json.find("\"bytes\":1024"), std::string::npos);
    EXPECT_NE(json.find("ramp4->ramp7"), std::string::npos);
    // Metadata names the processes for the trace viewer.
    EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(Recorder, ChromeTraceOfEmptyTraceIsValid)
{
    trace::Recorder rec;
    std::string json = rec.chromeTrace(1.0);
    EXPECT_TRUE(isValidJson(json)) << json;
    // Only metadata events; no begin/end pairs and no drop report.
    EXPECT_EQ(countOf(json, "\"ph\":\"b\""), 0u);
    EXPECT_EQ(countOf(json, "\"ph\":\"e\""), 0u);
    EXPECT_EQ(json.find("\"dropped\""), std::string::npos);
}

TEST(Recorder, ChromeTraceReportsDrops)
{
    trace::Recorder rec;
    rec.setCapacity(1);
    for (Tick t = 0; t < 5; ++t)
        rec.dma({t, t, t + 1, 0, spe::DmaDir::Get, 0, 128, false,
                 false});
    std::string json = rec.chromeTrace(1.0);
    EXPECT_TRUE(isValidJson(json)) << json;
    EXPECT_NE(json.find("\"dropped\""), std::string::npos);
}
