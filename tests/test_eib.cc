/** @file Unit tests for the EIB topology, rings and arbiter. */

#include <gtest/gtest.h>

#include <set>

#include "eib/eib.hh"
#include "eib/ring.hh"
#include "eib/topology.hh"
#include "sim/clock.hh"

using namespace cellbw;
using namespace cellbw::eib;

/* ------------------------------------------------------------------ */
/*  Topology                                                            */
/* ------------------------------------------------------------------ */

TEST(Topology, EverySpeHasAUniqueRamp)
{
    std::set<RampPos> seen;
    for (unsigned s = 0; s < numPhysicalSpes; ++s) {
        RampPos r = speRamp(s);
        EXPECT_LT(r, numRamps);
        EXPECT_TRUE(isSpeRamp(r));
        seen.insert(r);
    }
    EXPECT_EQ(seen.size(), numPhysicalSpes);
    EXPECT_FALSE(seen.count(ppeRamp));
    EXPECT_FALSE(seen.count(micRamp));
    EXPECT_FALSE(seen.count(ioif0Ramp));
    EXPECT_FALSE(seen.count(ioif1Ramp));
}

TEST(Topology, DieOrderMatchesKrolak)
{
    // PPE and MIC sit at opposite ends; SPE0 is next to the MIC,
    // SPE1 next to the PPE.
    EXPECT_EQ(ppeRamp, 0u);
    EXPECT_EQ(micRamp, 11u);
    EXPECT_EQ(speRamp(0), 10u);
    EXPECT_EQ(speRamp(1), 1u);
    EXPECT_STREQ(rampName(micRamp), "MIC");
    EXPECT_STREQ(rampName(speRamp(7)), "SPE7");
}

class HopsProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(HopsProperty, DirectionsAreComplementary)
{
    auto [src, dst] = GetParam();
    if (src == dst) {
        EXPECT_EQ(cwHops(src, dst), 0u);
        EXPECT_EQ(ccwHops(src, dst), 0u);
        return;
    }
    EXPECT_EQ(cwHops(src, dst) + ccwHops(src, dst), numRamps);
    EXPECT_EQ(cwHops(src, dst), ccwHops(dst, src));
    EXPECT_LE(shortestHops(src, dst), numRamps / 2);
    EXPECT_GE(shortestHops(src, dst), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, HopsProperty,
    ::testing::Combine(::testing::Range(0u, numRamps),
                       ::testing::Range(0u, numRamps)));

/* ------------------------------------------------------------------ */
/*  Ring                                                                */
/* ------------------------------------------------------------------ */

TEST(Ring, HopsFollowDirection)
{
    Ring cw(0, RingDir::Clockwise);
    Ring ccw(1, RingDir::CounterClockwise);
    EXPECT_EQ(cw.hops(0, 3), 3u);
    EXPECT_EQ(ccw.hops(0, 3), 9u);
    EXPECT_EQ(cw.hops(10, 1), 3u);
    EXPECT_EQ(ccw.hops(1, 10), 3u);
}

TEST(Ring, FreeRingStartsImmediately)
{
    Ring r(0, RingDir::Clockwise);
    EXPECT_EQ(r.earliestStart(0, 3, 100, 2), 100u);
}

TEST(Ring, OverlappingPathsSerialize)
{
    Ring r(0, RingDir::Clockwise);
    r.reserve(0, 3, 100, 16, 0);
    // Path 1->4 shares segments 1 and 2.
    EXPECT_EQ(r.earliestStart(1, 4, 100, 0), 116u);
    // Path 5->8 is disjoint: free immediately.
    EXPECT_EQ(r.earliestStart(5, 8, 100, 0), 100u);
}

TEST(Ring, StaggeredWavefrontAllowsBackToBackSameFlow)
{
    Ring r(0, RingDir::Clockwise);
    const Tick hop = 2;
    r.reserve(0, 6, 100, 16, hop);
    // The same flow can inject its next packet right when the source
    // segment frees (116), not when the whole path frees.
    EXPECT_EQ(r.earliestStart(0, 6, 0, hop), 116u);
}

TEST(Ring, GrantsAndBusyAccounting)
{
    Ring r(0, RingDir::Clockwise);
    r.reserve(0, 1, 0, 16, 2);
    r.reserve(2, 3, 0, 16, 2);
    EXPECT_EQ(r.grants(), 2u);
    EXPECT_EQ(r.busyTicks(), 32u);
}

TEST(RingDeathTest, MoreThanHalfwayIsIllegal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Ring r(0, RingDir::Clockwise);
    EXPECT_DEATH(r.reserve(0, 7, 0, 16, 2), "illegal");
    EXPECT_DEATH(r.reserve(3, 3, 0, 16, 2), "illegal");
}

/* ------------------------------------------------------------------ */
/*  Eib arbiter                                                         */
/* ------------------------------------------------------------------ */

namespace
{

struct EibFixture : public ::testing::Test
{
    sim::ClockSpec clock;
    sim::EventQueue eq;
    EibParams params;

    std::unique_ptr<Eib> make()
    {
        return std::make_unique<Eib>("eib", eq, clock, params);
    }
};

} // namespace

TEST_F(EibFixture, SingleTransferCompletes)
{
    auto eib = make();
    Tick done = 0;
    eib->transfer(speRamp(0), micRamp, 128, [&] { done = eq.now(); });
    eq.run();
    // cmd 20 bc + 8 bc data + 1 hop x 1 bc = 29 bus cycles = 58 ticks.
    EXPECT_EQ(done, 58u);
    EXPECT_EQ(eib->packets(), 1u);
    EXPECT_EQ(eib->bytesMoved(), 128u);
}

TEST_F(EibFixture, SameSourceSerializesOnTxPort)
{
    auto eib = make();
    // Both destinations are one hop away (in opposite directions), so
    // the only difference between the packets is the TX port.
    Tick a = 0, b = 0;
    eib->transfer(0, 1, 128, [&] { a = eq.now(); });
    eib->transfer(0, 11, 128, [&] { b = eq.now(); });
    eq.run();
    // The second packet starts one occupancy (16 ticks) later.
    EXPECT_EQ(b - a, 16u);
}

TEST_F(EibFixture, SameDestinationSerializesOnRxPort)
{
    auto eib = make();
    Tick a = 0, b = 0;
    eib->transfer(1, 0, 128, [&] { a = eq.now(); });
    eib->transfer(2, 0, 128, [&] { b = eq.now(); });
    eq.run();
    EXPECT_GE(b - a, 16u);
}

TEST_F(EibFixture, DisjointTransfersRunConcurrently)
{
    auto eib = make();
    Tick a = 0, b = 0;
    eib->transfer(0, 1, 128, [&] { a = eq.now(); });
    eib->transfer(6, 7, 128, [&] { b = eq.now(); });
    eq.run();
    EXPECT_EQ(a, b);
    EXPECT_EQ(eib->contentionTicks(), 0u);
}

TEST_F(EibFixture, OppositeDirectionsUseDifferentRings)
{
    auto eib = make();
    Tick a = 0, b = 0;
    eib->transfer(0, 2, 128, [&] { a = eq.now(); });    // CW
    eib->transfer(2, 0, 128, [&] { b = eq.now(); });    // CCW
    eq.run();
    EXPECT_EQ(a, b);
    unsigned used = 0;
    for (unsigned r = 0; r < eib->numRings(); ++r)
        if (eib->ring(r).grants())
            ++used;
    EXPECT_EQ(used, 2u);
}

TEST_F(EibFixture, LongPathTakesLongerThanShortPath)
{
    auto eib = make();
    Tick near = 0, far = 0;
    eib->transfer(0, 1, 128, [&] { near = eq.now(); });
    eib->transfer(2, 8, 128, [&] { far = eq.now(); });      // 6 hops
    eq.run();
    EXPECT_EQ(far - near, 5u * clock.busCycles(params.hopLatencyBus));
}

TEST_F(EibFixture, RampPeakMatchesPaper)
{
    auto eib = make();
    EXPECT_NEAR(eib->rampPeakGBps(), 16.8, 1e-9);
}

TEST_F(EibFixture, SustainedRampRateIsOneLinePerEightBusCycles)
{
    auto eib = make();
    const int n = 1000;
    Tick done = 0;
    for (int i = 0; i < n; ++i)
        eib->transfer(0, 1, 128, [&] { done = eq.now(); });
    eq.run();
    // Steady state: 16 ticks per 128 B line + constant latency.
    Tick expect_span = static_cast<Tick>(n) * 16u;
    EXPECT_NEAR(static_cast<double>(done),
                static_cast<double>(expect_span), 100.0);
}

TEST_F(EibFixture, TwoRingConfigStillRoutesBothDirections)
{
    params.numRings = 2;
    auto eib = make();
    Tick a = 0, b = 0;
    eib->transfer(0, 2, 128, [&] { a = eq.now(); });
    eib->transfer(2, 0, 128, [&] { b = eq.now(); });
    eq.run();
    EXPECT_GT(a, 0u);
    EXPECT_GT(b, 0u);
}

TEST_F(EibFixture, SmallPacketOccupiesOneBusCycle)
{
    auto eib = make();
    Tick a = 0, b = 0;
    eib->transfer(0, 1, 16, [&] { a = eq.now(); });
    eib->transfer(0, 1, 16, [&] { b = eq.now(); });
    eq.run();
    EXPECT_EQ(b - a, 2u);   // one bus cycle apart
}

TEST_F(EibFixture, ZeroRingsIsFatal)
{
    params.numRings = 0;
    EXPECT_THROW(make(), sim::FatalError);
}

TEST_F(EibFixture, BadRampsPanic)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto eib = make();
    EXPECT_DEATH(eib->transfer(0, 12, 128, [] {}), "bad ramp");
    EXPECT_DEATH(eib->transfer(3, 3, 128, [] {}), "self");
    EXPECT_DEATH(eib->transfer(0, 1, 0, [] {}), "zero bytes");
}
