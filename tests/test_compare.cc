/** @file Tests for the report comparison gate behind `cellbw compare`. */

#include <gtest/gtest.h>

#include <string>

#include "core/compare.hh"

using namespace cellbw;

namespace
{

std::string
doc(const std::string &points, const char *schema = "cellbw-bench-v2",
    const std::string &metrics = "{}")
{
    std::string d = "{\"schema\":\"";
    d += schema;
    d += "\",\"bench\":\"b\",\"figure\":\"f\",\"description\":\"d\","
         "\"config\":{\"runs\":2},\"points\":[";
    d += points;
    d += "],\"metrics\":";
    d += metrics;
    d += "}";
    return d;
}

std::string
point(const char *table, const char *op, double gbps)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"table\":\"%s\",\"op\":\"%s\",\"GB/s\":%.17g}",
                  table, op, gbps);
    return buf;
}

core::CompareResult
compare(const std::string &cand, const std::string &base,
        const core::ComparePolicy &policy = {})
{
    core::CompareResult result;
    std::string err;
    EXPECT_TRUE(core::compareReportTexts(cand, base, policy, result,
                                         err))
        << err;
    return result;
}

} // namespace

TEST(Compare, IdenticalReportsPass)
{
    std::string d = doc(point("results", "Get", 10.0) + "," +
                        point("results", "Put", 11.5));
    auto r = compare(d, d);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.pointsCompared, 2u);
    EXPECT_GE(r.valuesCompared, 2u);
}

TEST(Compare, JustInsideToleranceRasses)
{
    core::ComparePolicy p;
    p.tolPct = 5.0;
    // 10.0 -> 10.49: +4.9%, inside a 5% gate.
    auto r = compare(doc(point("results", "Get", 10.49)),
                     doc(point("results", "Get", 10.0)), p);
    EXPECT_TRUE(r.ok()) << (r.regressions.empty()
                                ? ""
                                : r.regressions.front());
}

TEST(Compare, JustOutsideToleranceFails)
{
    core::ComparePolicy p;
    p.tolPct = 5.0;
    // 10.0 -> 10.51: +5.1%, outside a 5% gate.
    auto r = compare(doc(point("results", "Get", 10.51)),
                     doc(point("results", "Get", 10.0)), p);
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.regressions.size(), 1u);
    EXPECT_NE(r.regressions.front().find("GB/s"), std::string::npos);
}

TEST(Compare, ZeroToleranceIsExact)
{
    auto r = compare(doc(point("results", "Get", 10.000001)),
                     doc(point("results", "Get", 10.0)));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(compare(doc(point("results", "Get", 10.0)),
                        doc(point("results", "Get", 10.0)))
                    .ok());
}

TEST(Compare, PerColumnToleranceOverridesGlobal)
{
    core::ComparePolicy p;
    p.tolPct = 0.0;
    p.columnTolPct["GB/s"] = 20.0;
    auto r = compare(doc(point("results", "Get", 11.0)),
                     doc(point("results", "Get", 10.0)), p);
    EXPECT_TRUE(r.ok());
}

TEST(Compare, MissingPointIsARegression)
{
    auto r = compare(doc(point("results", "Get", 10.0)),
                     doc(point("results", "Get", 10.0) + "," +
                         point("results", "Put", 11.0)));
    EXPECT_FALSE(r.ok());
}

TEST(Compare, ExtraPointIsARegression)
{
    auto r = compare(doc(point("results", "Get", 10.0) + "," +
                         point("results", "Put", 11.0)),
                     doc(point("results", "Get", 10.0)));
    EXPECT_FALSE(r.ok());
}

TEST(Compare, MissingTableIsARegression)
{
    auto r = compare(doc(point("other", "Get", 10.0)),
                     doc(point("results", "Get", 10.0)));
    EXPECT_FALSE(r.ok());
}

TEST(Compare, IdentityCellMismatchIsARegression)
{
    auto r = compare(doc(point("results", "Put", 10.0)),
                     doc(point("results", "Get", 10.0)));
    EXPECT_FALSE(r.ok());
}

TEST(Compare, V1BaselineIsAccepted)
{
    auto r = compare(doc(point("results", "Get", 10.0)),
                     doc(point("results", "Get", 10.0),
                         "cellbw-bench-v1"));
    EXPECT_TRUE(r.ok());
}

TEST(Compare, V2BaselineIsAccepted)
{
    auto r = compare(doc(point("results", "Get", 10.0)),
                     doc(point("results", "Get", 10.0),
                         "cellbw-bench-v2"));
    EXPECT_TRUE(r.ok());
}

TEST(Compare, V3ReportsAreAccepted)
{
    // v3 on both sides, and v3 candidate against a v2 baseline (the
    // committed-baseline upgrade path).
    auto r = compare(doc(point("results", "Get", 10.0),
                         "cellbw-bench-v3"),
                     doc(point("results", "Get", 10.0),
                         "cellbw-bench-v3"));
    EXPECT_TRUE(r.ok());
    auto up = compare(doc(point("results", "Get", 10.0),
                          "cellbw-bench-v3"),
                      doc(point("results", "Get", 10.0),
                          "cellbw-bench-v2"));
    EXPECT_TRUE(up.ok());
}

TEST(Compare, UnknownSchemaIsMalformed)
{
    core::CompareResult result;
    std::string err;
    EXPECT_FALSE(core::compareReportTexts(
        doc(point("results", "Get", 10.0), "not-a-bench-schema"),
        doc(point("results", "Get", 10.0)), {}, result, err));
    EXPECT_FALSE(err.empty());
}

TEST(Compare, MalformedJsonIsAnError)
{
    core::CompareResult result;
    std::string err;
    EXPECT_FALSE(core::compareReportTexts(
        "{\"schema\":", doc(point("results", "Get", 10.0)), {}, result,
        err));
    EXPECT_FALSE(err.empty());
}

TEST(Compare, MetricsGateIsOptIn)
{
    std::string cand = doc(point("results", "Get", 10.0),
                           "cellbw-bench-v2", "{\"eib.packets\":100}");
    std::string base = doc(point("results", "Get", 10.0),
                           "cellbw-bench-v2", "{\"eib.packets\":200}");
    EXPECT_TRUE(compare(cand, base).ok());

    core::ComparePolicy p;
    p.includeMetrics = true;
    auto r = compare(cand, base, p);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.metricsCompared, 1u);

    p.metricsTolPct = 60.0;
    EXPECT_TRUE(compare(cand, base, p).ok());
}

TEST(Compare, ParseColumnTols)
{
    std::map<std::string, double> tols;
    std::string err;
    ASSERT_TRUE(core::parseColumnTols("GB/s(mean)=10,half-RT(us)=2.5",
                                      tols, err));
    EXPECT_EQ(tols.size(), 2u);
    EXPECT_DOUBLE_EQ(tols["GB/s(mean)"], 10.0);
    EXPECT_DOUBLE_EQ(tols["half-RT(us)"], 2.5);

    EXPECT_FALSE(core::parseColumnTols("nopct", tols, err));
    EXPECT_FALSE(core::parseColumnTols("x=-3", tols, err));
    EXPECT_FALSE(core::parseColumnTols("x=abc", tols, err));
}
