/** @file Tests for the machine-wide stats report. */

#include <gtest/gtest.h>

#include "cell/stats_report.hh"
#include "core/experiments.hh"
#include "test_util.hh"

using namespace cellbw;

TEST(StatsReport, FreshSystemRendersZeros)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    std::string rep = cell::statsReport(sys);
    EXPECT_NE(rep.find("machine report"), std::string::npos);
    EXPECT_NE(rep.find("spe0"), std::string::npos);
    EXPECT_NE(rep.find("spe7"), std::string::npos);
    EXPECT_NE(rep.find("bank0"), std::string::npos);
    EXPECT_NE(rep.find("ioif"), std::string::npos);
}

TEST(StatsReport, CountersReflectARun)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    core::SpeMemConfig mc;
    mc.numSpes = 2;
    mc.bytesPerSpe = 1 * util::MiB;
    core::runSpeMem(sys, mc);

    std::string rep = cell::statsReport(sys);
    // Both active SPEs moved a MiB each.
    EXPECT_NE(rep.find("1 MiB"), std::string::npos);
    // Ring grants happened on chip 0.
    EXPECT_NE(rep.find("cw"), std::string::npos);
    EXPECT_NE(rep.find("ccw"), std::string::npos);
    // Banks serviced traffic.
    EXPECT_EQ(sys.memory().bank(0).bytesServiced() +
                  sys.memory().bank(1).bytesServiced(),
              2u * util::MiB);
}

TEST(StatsReport, ReportsFaultInjectionAndVerifyVerdict)
{
    cell::CellConfig cfg;
    cfg.spe.mfc.faults.dropRate = 0.2;
    cfg.spe.mfc.faults.seed = 9;
    cfg.verify = true;
    cell::CellSystem sys(cfg, 1);
    core::SpeMemConfig mc;
    mc.numSpes = 2;
    mc.bytesPerSpe = 1 * util::MiB;
    core::runSpeMem(sys, mc);

    std::string rep = cell::statsReport(sys);
    EXPECT_NE(rep.find("faults"), std::string::npos);       // column
    EXPECT_NE(rep.find("fault injection:"), std::string::npos);
    EXPECT_NE(rep.find("drops"), std::string::npos);
    EXPECT_NE(rep.find("verify:"), std::string::npos);
    EXPECT_NE(rep.find("0 divergences"), std::string::npos);
}

TEST(StatsReport, ListsBothChips)
{
    cell::CellConfig cfg;
    cfg.numChips = 2;
    cfg.numSpes = 16;
    cell::CellSystem sys(cfg, 1);
    std::string rep = cell::statsReport(sys);
    EXPECT_NE(rep.find("eib0"), std::string::npos);
    EXPECT_NE(rep.find("eib1"), std::string::npos);
    EXPECT_NE(rep.find("spe15"), std::string::npos);
}
