/** @file Unit tests for statistics, tables and charts. */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/logging.hh"
#include "stats/ascii_chart.hh"
#include "stats/distribution.hh"
#include "stats/table.hh"

using namespace cellbw;

TEST(Accumulator, EmptyIsZero)
{
    stats::Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, BasicMoments)
{
    stats::Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(v);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);   // unbiased
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SingleSampleHasZeroVariance)
{
    stats::Accumulator a;
    a.add(3.5);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.min(), 3.5);
    EXPECT_DOUBLE_EQ(a.max(), 3.5);
}

TEST(Accumulator, ResetClears)
{
    stats::Accumulator a;
    a.add(1.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Distribution, MedianOddAndEven)
{
    stats::Distribution d;
    for (double v : {5.0, 1.0, 3.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.median(), 3.0);
    d.add(7.0);
    EXPECT_DOUBLE_EQ(d.median(), 4.0);  // (3+5)/2
}

TEST(Distribution, QuantileInterpolates)
{
    stats::Distribution d;
    for (double v : {0.0, 10.0, 20.0, 30.0, 40.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 40.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.25), 10.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.125), 5.0);
}

TEST(Distribution, QuantileOutOfRangeIsFatal)
{
    stats::Distribution d;
    d.add(1.0);
    EXPECT_THROW(d.quantile(1.5), sim::FatalError);
    EXPECT_THROW(d.quantile(-0.1), sim::FatalError);
}

TEST(Distribution, MinMaxMeanStddev)
{
    stats::Distribution d;
    for (double v : {4.0, 2.0, 8.0, 6.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 8.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_NEAR(d.stddev(), 2.5819888974716116, 1e-12);
}

TEST(Distribution, EmptyIsAllZero)
{
    stats::Distribution d;
    EXPECT_TRUE(d.empty());
    EXPECT_DOUBLE_EQ(d.median(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.p95(), 0.0);
    EXPECT_DOUBLE_EQ(d.cv(), 0.0);
}

TEST(Distribution, P95InterpolatesOrderStatistics)
{
    stats::Distribution d;
    // 21 evenly spaced samples 0..100: quantiles are exact positions.
    for (int i = 0; i <= 20; ++i)
        d.add(i * 5.0);
    EXPECT_DOUBLE_EQ(d.p95(), 95.0);
    EXPECT_DOUBLE_EQ(d.median(), 50.0);
}

TEST(Distribution, CvIsRelativeStddevPercent)
{
    stats::Distribution d;
    for (double v : {4.0, 2.0, 8.0, 6.0})    // mean 5, stddev ~2.582
        d.add(v);
    EXPECT_NEAR(d.cv(), 100.0 * 2.5819888974716116 / 5.0, 1e-9);

    // An all-zero distribution has mean 0; CV must degrade to 0, not
    // NaN/inf.
    stats::Distribution z;
    z.add(0.0);
    z.add(0.0);
    EXPECT_DOUBLE_EQ(z.cv(), 0.0);
}

TEST(Distribution, SingleSampleStatisticsAreDegenerate)
{
    // n=1: median and p95 are the sample, stddev/CV are 0 — the native
    // table with --runs 1 must stay finite.
    stats::Distribution d;
    d.add(7.5);
    EXPECT_DOUBLE_EQ(d.median(), 7.5);
    EXPECT_DOUBLE_EQ(d.p95(), 7.5);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.cv(), 0.0);
}

TEST(Distribution, AddAfterQueryResorts)
{
    stats::Distribution d;
    d.add(10.0);
    EXPECT_DOUBLE_EQ(d.max(), 10.0);
    d.add(20.0);
    EXPECT_DOUBLE_EQ(d.max(), 20.0);
    d.add(5.0);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
}

TEST(Distribution, ConcurrentConstReadsAreSafe)
{
    // The const accessors must be genuinely read-only: the lazy
    // sort-on-demand cache used to mutate mutable state under const,
    // racing when the parallel seed-sweep runner read one Distribution
    // from several threads.  Run many concurrent readers; under TSan
    // this fails loudly if any accessor writes shared state.
    stats::Distribution d;
    for (int i = 99; i >= 0; --i)
        d.add(static_cast<double>(i));

    std::atomic<int> errors{0};
    std::vector<std::thread> readers;
    readers.reserve(8);
    for (int t = 0; t < 8; ++t) {
        readers.emplace_back([&d, &errors] {
            for (int i = 0; i < 1000; ++i) {
                if (d.min() != 0.0 || d.max() != 99.0 ||
                    d.median() != 49.5 ||
                    d.quantile(0.25) != 24.75) {
                    ++errors;
                }
            }
        });
    }
    for (auto &r : readers)
        r.join();
    EXPECT_EQ(errors.load(), 0);
}

TEST(Table, RendersAlignedColumns)
{
    stats::Table t({"name", "value"});
    t.addRow({"x", "1.00"});
    t.addRow({"longer-name", "2.50"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name  2.50"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.columnCount(), 2u);
}

TEST(Table, RowArityMismatchIsFatal)
{
    stats::Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), sim::FatalError);
}

TEST(Table, EmptyHeaderListIsFatal)
{
    EXPECT_THROW(stats::Table({}), sim::FatalError);
}

TEST(Table, CsvEscapesSpecialCharacters)
{
    stats::Table t({"k", "v"});
    t.addRow({"plain", "with,comma"});
    t.addRow({"quote\"inside", "line"});
    std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
    EXPECT_EQ(csv.find("plain,"), csv.find("plain"));
}

TEST(Table, NumFormatsDigits)
{
    EXPECT_EQ(stats::Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(stats::Table::num(3.0, 0), "3");
}

TEST(BarChart, RendersBarsScaledToMax)
{
    stats::BarChart c("title", 10);
    c.add("a", 5.0);
    c.add("b", 10.0);
    std::string out = c.render();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("##########"), std::string::npos);  // full bar
    EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(BarChart, ExplicitScaleMax)
{
    stats::BarChart c("t", 10);
    c.setScaleMax(20.0);
    c.add("half-of-scale", 10.0);
    std::string out = c.render();
    // 10/20 of 10 chars = 5 hashes, not 10.
    EXPECT_EQ(out.find("##########"), std::string::npos);
    EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(BarChart, EmptyChartSaysNoData)
{
    stats::BarChart c("t");
    EXPECT_NE(c.render().find("no data"), std::string::npos);
}

TEST(BarChart, NegativeValueGetsLeftEdgeMarker)
{
    // Regression: a negative value used to render as an empty bar,
    // indistinguishable from zero.
    stats::BarChart c("t", 10);
    c.add("bad", -3.0);
    c.add("ref", 10.0);
    std::string out = c.render();
    EXPECT_NE(out.find("|<"), std::string::npos);
    // The marker replaces the bar, it does not widen the row.
    EXPECT_EQ(out.find("<#"), std::string::npos);
}

TEST(BarChart, OverflowGetsRightEdgeMarker)
{
    // Regression: a value past the fixed scale used to saturate into a
    // full-width bar, silently indistinguishable from exactly-at-peak.
    stats::BarChart c("t", 10);
    c.setScaleMax(10.0);
    c.add("peak", 10.0);
    c.add("over", 25.0);
    std::string out = c.render();
    EXPECT_NE(out.find("##########"), std::string::npos);  // exact peak
    EXPECT_NE(out.find("#########>"), std::string::npos);  // clamped
}

TEST(SeriesChart, RendersLegendAndAxis)
{
    stats::SeriesChart c("chart", {"x1", "x2", "x3"}, 4);
    c.addSeries("s1", {1.0, 2.0, 3.0});
    c.addSeries("s2", {3.0, 2.0, 1.0});
    std::string out = c.render();
    EXPECT_NE(out.find("legend:"), std::string::npos);
    EXPECT_NE(out.find("*=s1"), std::string::npos);
    EXPECT_NE(out.find("o=s2"), std::string::npos);
    EXPECT_NE(out.find("x1"), std::string::npos);
}

TEST(SeriesChart, ArityMismatchIsFatal)
{
    stats::SeriesChart c("chart", {"a", "b"});
    EXPECT_THROW(c.addSeries("bad", {1.0}), sim::FatalError);
}

TEST(SeriesChart, EmptyAxisIsFatal)
{
    EXPECT_THROW(stats::SeriesChart("c", {}), sim::FatalError);
}
