/** @file Tests for the JSON writer, metrics registry, and JSON report. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/json_report.hh"
#include "sim/logging.hh"
#include "stats/json_writer.hh"
#include "stats/metrics.hh"
#include "stats/table.hh"
#include "util/options.hh"
#include "util/types.hh"

using namespace cellbw;

// --------------------------------------------------------------------
// JsonWriter
// --------------------------------------------------------------------

TEST(JsonWriter, GoldenDocument)
{
    stats::JsonWriter w;
    w.beginObject();
    w.key("name").value("bench");
    w.key("n").value(42u);
    w.key("neg").value(std::int64_t{-7});
    w.key("pi").value(0.5);
    w.key("ok").value(true);
    w.key("none").null();
    w.key("list").beginArray().value(1).value(2).endArray();
    w.key("nested").beginObject().key("x").value(1).endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"bench\",\"n\":42,\"neg\":-7,\"pi\":0.5,"
              "\"ok\":true,\"none\":null,\"list\":[1,2],"
              "\"nested\":{\"x\":1}}");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(stats::JsonWriter::escape("a\"b\\c\n\t"),
              "a\\\"b\\\\c\\n\\t");
    EXPECT_EQ(stats::JsonWriter::escape(std::string("\x01", 1)),
              "\\u0001");
}

TEST(JsonWriter, NumberFormatting)
{
    EXPECT_EQ(stats::JsonWriter::number(3.0), "3");
    EXPECT_EQ(stats::JsonWriter::number(-2.0), "-2");
    EXPECT_EQ(stats::JsonWriter::number(0.25), "0.25");
    // Non-finite values are not representable in JSON.
    EXPECT_EQ(stats::JsonWriter::number(0.0 / 0.0), "null");
    EXPECT_EQ(stats::JsonWriter::number(1.0 / 0.0), "null");
    // Round-trip precision: the printed text parses back exactly.
    double v = 0.1 + 0.2;
    EXPECT_EQ(std::stod(stats::JsonWriter::number(v)), v);
}

TEST(JsonWriter, MisuseIsFatal)
{
    {
        stats::JsonWriter w;
        EXPECT_THROW(w.key("k"), sim::FatalError);  // key outside object
    }
    {
        stats::JsonWriter w;
        w.beginObject();
        EXPECT_THROW(w.endArray(), sim::FatalError);  // mismatched end
    }
    {
        stats::JsonWriter w;
        w.beginObject();
        EXPECT_THROW(w.str(), sim::FatalError);  // incomplete document
    }
}

// --------------------------------------------------------------------
// Metrics
// --------------------------------------------------------------------

TEST(Metrics, RegistrationIsIdempotent)
{
    stats::MetricsRegistry reg;
    stats::Counter &a = reg.counter("eib0.ring0.grants");
    stats::Counter &b = reg.counter("eib0.ring0.grants");
    EXPECT_EQ(&a, &b);
    a.add(3);
    b.increment();
    EXPECT_EQ(a.value(), 4u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, CrossKindCollisionIsFatal)
{
    stats::MetricsRegistry reg;
    reg.counter("mem.bank0.bytes");
    EXPECT_THROW(reg.gauge("mem.bank0.bytes"), sim::FatalError);
    EXPECT_THROW(reg.histogram("mem.bank0.bytes", 8), sim::FatalError);
    reg.gauge("rate");
    EXPECT_THROW(reg.counter("rate"), sim::FatalError);
}

TEST(Metrics, FindDoesNotCreate)
{
    stats::MetricsRegistry reg;
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
    EXPECT_EQ(reg.size(), 0u);
    reg.counter("c").add(9);
    ASSERT_NE(reg.findCounter("c"), nullptr);
    EXPECT_EQ(reg.findCounter("c")->value(), 9u);
    EXPECT_EQ(reg.findGauge("c"), nullptr);  // wrong kind
}

TEST(Metrics, HistogramBucketsAndOverflow)
{
    stats::Histogram h(4);
    h.add(0);
    h.add(2);
    h.add(2);
    h.add(100);  // absorbed by the last bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 104u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.maxBucket(), 4u);
    h.addBucket(1, 5);
    EXPECT_EQ(h.bucket(1), 5u);
    EXPECT_EQ(h.count(), 9u);
}

TEST(Metrics, WriteJsonIsSortedAndTyped)
{
    stats::MetricsRegistry reg;
    reg.counter("b.count").add(2);
    reg.gauge("a.rate").set(1.5);
    reg.histogram("c.depth", 4).add(3);
    stats::JsonWriter w;
    reg.writeJson(w);
    EXPECT_EQ(w.str(),
              "{\"a.rate\":1.5,\"b.count\":2,"
              "\"c.depth\":{\"count\":1,\"sum\":3,\"mean\":3,"
              "\"buckets\":[0,0,0,1]}}");
}

TEST(Metrics, ConcurrentAddsAndRegistrationsAreExact)
{
    // Exercised under TSan in CI: concurrent register-or-find plus
    // counter adds from many threads must be race-free and lose no
    // increments (the seed sweep's accumulation pattern).
    stats::MetricsRegistry reg;
    constexpr unsigned threads = 8;
    constexpr unsigned iters = 5000;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&reg] {
            for (unsigned i = 0; i < iters; ++i) {
                reg.counter("shared.count").increment();
                reg.histogram("shared.depth", 16).add(i % 20);
                reg.counter("bytes").add(128);
            }
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(reg.findCounter("shared.count")->value(),
              std::uint64_t{threads} * iters);
    EXPECT_EQ(reg.findCounter("bytes")->value(),
              std::uint64_t{threads} * iters * 128);
    EXPECT_EQ(reg.findHistogram("shared.depth")->count(),
              std::uint64_t{threads} * iters);
}

// --------------------------------------------------------------------
// JsonReport (the --json document)
// --------------------------------------------------------------------

TEST(JsonReport, GoldenSchema)
{
    util::Options opts("bench_x", "test bench");
    opts.addUint("runs", 10, "runs");
    opts.addDouble("ghz", 2.1, "clock");
    opts.addBool("quick", false, "quick");
    opts.addString("mode", "fast", "mode");
    opts.addBytes("buf", 4 * util::KiB, "buffer");

    core::JsonReport rep;
    rep.setBench("bench_x", "Figure 1", "a test");
    rep.setConfig(opts);
    stats::Table t({"spes", "GB/s"});
    t.addRow({"1", "9.87"});
    t.addRow({"8", "19.5"});
    rep.addTable("results", t);
    rep.metrics().counter("eib0.packets").add(512);

    EXPECT_EQ(rep.render(),
              "{\"schema\":\"cellbw-bench-v3\",\"schema_version\":3,"
              "\"bench\":\"bench_x\",\"experiment\":\"bench_x\","
              "\"figure\":\"Figure 1\",\"description\":\"a test\","
              "\"backend\":\"sim\",\"reproducible\":true,"
              "\"config\":{\"runs\":10,\"ghz\":2.1,\"quick\":false,"
              "\"mode\":\"fast\",\"buf\":4096},"
              "\"points\":["
              "{\"table\":\"results\",\"spes\":1,\"GB/s\":9.87},"
              "{\"table\":\"results\",\"spes\":8,\"GB/s\":19.5}],"
              "\"metrics\":{\"eib0.packets\":512}}");
}

TEST(JsonReport, V3EnvelopeFields)
{
    util::Options opts("bench_x", "test bench");
    opts.addUint("runs", 10, "runs");
    opts.addUint("jobs", 1, "worker threads");
    opts.setResultNeutral("jobs");

    core::JsonReport rep;
    rep.setBench("bench_x", "Figure 1", "a test");
    rep.setExperiment("fig_x");
    rep.setSuite("nightly");
    rep.setCacheInfo("salt-1", "deadbeef00000000");
    rep.setConfig(opts);
    std::string doc = rep.render();

    EXPECT_NE(doc.find("\"experiment\":\"fig_x\""), std::string::npos);
    EXPECT_NE(doc.find("\"suite\":\"nightly\""), std::string::npos);
    EXPECT_NE(doc.find("\"cache\":{\"salt\":\"salt-1\","
                       "\"key\":\"deadbeef00000000\"}"),
              std::string::npos);
    // Result-neutral options stay out of the config section so cached
    // reports replay bit-identically regardless of --jobs/--json.
    EXPECT_EQ(doc.find("\"jobs\""), std::string::npos);
    EXPECT_NE(doc.find("\"runs\":10"), std::string::npos);
    // v3: the backend defaults to sim/reproducible.
    EXPECT_NE(doc.find("\"backend\":\"sim\""), std::string::npos);
    EXPECT_NE(doc.find("\"reproducible\":true"), std::string::npos);
}

TEST(JsonReport, NativeBackendMarkedNonReproducible)
{
    core::JsonReport rep;
    rep.setBench("native_x", "Native S", "a measurement");
    rep.setBackend("native", false);
    std::string doc = rep.render();
    EXPECT_NE(doc.find("\"backend\":\"native\""), std::string::npos);
    EXPECT_NE(doc.find("\"reproducible\":false"), std::string::npos);
}

TEST(JsonReport, NonNumericCellsStayStrings)
{
    core::JsonReport rep;
    rep.setBench("b", "f", "d");
    stats::Table t({"elem", "n"});
    t.addRow({"16KiB", "4"});
    rep.addTable("results", t);
    std::string doc = rep.render();
    EXPECT_NE(doc.find("\"elem\":\"16KiB\""), std::string::npos);
    EXPECT_NE(doc.find("\"n\":4"), std::string::npos);
}
