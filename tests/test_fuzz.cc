/** @file Randomized DMA fuzzing against a shadow reference model.
 *
 * Drives long random sequences of valid GET/PUT/list commands across
 * SPEs and main memory while mirroring every transfer on host-side
 * shadow copies, then checks that every byte in every LS and in memory
 * matches.  Ordering within the random program is enforced with tag
 * waits before reuse, so the data flow is deterministic.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cell/cell_system.hh"
#include "sim/rng.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

constexpr unsigned numSpes = 4;
constexpr std::uint32_t lsRegion = 64 * 1024;   // fuzzed LS window
constexpr std::uint32_t memRegion = 256 * 1024;

struct Shadow
{
    std::vector<std::uint8_t> mem;
    std::vector<std::uint8_t> ls[numSpes];

    Shadow()
    {
        mem.assign(memRegion, 0);
        for (auto &l : ls)
            l.assign(lsRegion, 0);
    }
};

struct FuzzOp
{
    enum Kind { GetMem, PutMem, GetPeer, PutPeer } kind;
    unsigned spe;
    unsigned peer;
    std::uint32_t lsa;
    std::uint32_t off;      // into the mem region or the peer window
    std::uint32_t bytes;
};

/** Aligned random numbers in [0, limit) with 16-byte granularity. */
std::uint32_t
pick16(sim::Rng &rng, std::uint32_t limit)
{
    return static_cast<std::uint32_t>(
        rng.uniformInt(0, limit / 16 - 1) * 16);
}

FuzzOp
randomOp(sim::Rng &rng)
{
    FuzzOp op;
    op.kind = static_cast<FuzzOp::Kind>(rng.uniformInt(0, 3));
    op.spe = static_cast<unsigned>(rng.uniformInt(0, numSpes - 1));
    do {
        op.peer = static_cast<unsigned>(rng.uniformInt(0, numSpes - 1));
    } while (op.peer == op.spe);
    // Sizes: multiples of 16, up to 4 KiB.
    op.bytes = static_cast<std::uint32_t>(
        rng.uniformInt(1, 256) * 16);
    op.lsa = pick16(rng, lsRegion - op.bytes);
    std::uint32_t window =
        (op.kind == FuzzOp::GetMem || op.kind == FuzzOp::PutMem)
            ? memRegion : lsRegion;
    op.off = pick16(rng, window - op.bytes);
    return op;
}

/** Apply @p op to the shadow state (what the DMA must end up doing). */
void
applyShadow(Shadow &sh, const FuzzOp &op)
{
    switch (op.kind) {
      case FuzzOp::GetMem:
        std::copy_n(sh.mem.begin() + op.off, op.bytes,
                    sh.ls[op.spe].begin() + op.lsa);
        break;
      case FuzzOp::PutMem:
        std::copy_n(sh.ls[op.spe].begin() + op.lsa, op.bytes,
                    sh.mem.begin() + op.off);
        break;
      case FuzzOp::GetPeer:
        std::copy_n(sh.ls[op.peer].begin() + op.off, op.bytes,
                    sh.ls[op.spe].begin() + op.lsa);
        break;
      case FuzzOp::PutPeer:
        std::copy_n(sh.ls[op.spe].begin() + op.lsa, op.bytes,
                    sh.ls[op.peer].begin() + op.off);
        break;
    }
}

sim::Task
runOps(cell::CellSystem &sys, EffAddr memBase,
       std::vector<FuzzOp> ops)
{
    for (const auto &op : ops) {
        auto &mfc = sys.spe(op.spe).mfc();
        EffAddr ea;
        bool is_get =
            (op.kind == FuzzOp::GetMem || op.kind == FuzzOp::GetPeer);
        if (op.kind == FuzzOp::GetMem || op.kind == FuzzOp::PutMem)
            ea = memBase + op.off;
        else
            ea = sys.lsEa(op.peer, op.off);
        co_await mfc.queueSpace();
        if (is_get)
            mfc.get(op.lsa, ea, op.bytes, 0);
        else
            mfc.put(op.lsa, ea, op.bytes, 0);
        // Serialize: the shadow model is sequential.
        co_await mfc.tagWait(1u << 0);
    }
}

class DmaFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(DmaFuzz, SimulatorMatchesShadowModel)
{
    sim::Rng rng(GetParam());
    cell::CellConfig cfg;
    cfg.numSpes = numSpes;
    cell::CellSystem sys(cfg, GetParam());

    // Seed distinct contents everywhere.
    Shadow sh;
    EffAddr mem_base = sys.malloc(memRegion);
    for (std::uint32_t i = 0; i < memRegion; ++i)
        sh.mem[i] = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    sys.memory().store().write(mem_base, sh.mem.data(), memRegion);
    for (unsigned s = 0; s < numSpes; ++s) {
        for (std::uint32_t i = 0; i < lsRegion; ++i)
            sh.ls[s][i] =
                static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        sys.spe(s).ls().write(0, sh.ls[s].data(), lsRegion);
    }

    // A long random program, mirrored on the shadow.
    std::vector<FuzzOp> ops;
    for (int i = 0; i < 300; ++i) {
        ops.push_back(randomOp(rng));
        applyShadow(sh, ops.back());
    }
    sys.launch(runOps(sys, mem_base, std::move(ops)));
    sys.run();

    // Compare every byte of every storage domain.
    std::vector<std::uint8_t> got(memRegion);
    sys.memory().store().read(mem_base, got.data(), memRegion);
    EXPECT_EQ(got, sh.mem) << "memory diverged";
    for (unsigned s = 0; s < numSpes; ++s) {
        std::vector<std::uint8_t> ls(lsRegion);
        sys.spe(s).ls().read(0, ls.data(), lsRegion);
        EXPECT_EQ(ls, sh.ls[s]) << "LS of spe" << s << " diverged";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmaFuzz,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull,
                                           99991ull));
