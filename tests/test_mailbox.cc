/** @file Unit tests for SPE mailboxes. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hh"
#include "spe/mailbox.hh"

using namespace cellbw;

namespace
{

struct MboxFixture : public ::testing::Test
{
    sim::EventQueue eq;
};

sim::Task
producer(spe::Mailbox &mb, std::vector<std::uint32_t> vals)
{
    // Parameters are taken by value: the coroutine outlives the call
    // expression, so a reference parameter would dangle.
    for (auto v : vals)
        co_await mb.write(v);
}

sim::Task
consumer(spe::Mailbox &mb, std::size_t n, std::vector<std::uint32_t> *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out->push_back(co_await mb.read());
}

} // namespace

TEST_F(MboxFixture, TryReadWriteRespectCapacity)
{
    spe::Mailbox mb("mb", eq, 2);
    EXPECT_TRUE(mb.empty());
    EXPECT_TRUE(mb.tryWrite(1));
    EXPECT_TRUE(mb.tryWrite(2));
    EXPECT_TRUE(mb.full());
    EXPECT_FALSE(mb.tryWrite(3));

    std::uint32_t v = 0;
    EXPECT_TRUE(mb.tryRead(v));
    EXPECT_EQ(v, 1u);
    EXPECT_TRUE(mb.tryRead(v));
    EXPECT_EQ(v, 2u);
    EXPECT_FALSE(mb.tryRead(v));
    EXPECT_EQ(mb.messagesWritten(), 2u);
}

TEST_F(MboxFixture, ReaderBlocksUntilMessageArrives)
{
    spe::Mailbox mb("mb", eq, 4);
    std::vector<std::uint32_t> got;
    sim::Task c = consumer(mb, 1, &got);
    c.start();
    eq.run();
    EXPECT_TRUE(got.empty());   // blocked
    EXPECT_FALSE(c.done());

    mb.tryWrite(42);
    eq.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 42u);
    EXPECT_TRUE(c.done());
}

TEST_F(MboxFixture, WriterBlocksUntilSpaceFrees)
{
    spe::Mailbox mb("mb", eq, 1);
    sim::Task p = producer(mb, {1, 2, 3});
    p.start();
    eq.run();
    EXPECT_FALSE(p.done());     // stuck after the first write
    EXPECT_TRUE(mb.full());

    std::uint32_t v = 0;
    EXPECT_TRUE(mb.tryRead(v));
    EXPECT_EQ(v, 1u);
    eq.run();
    EXPECT_TRUE(mb.full());     // producer wrote 2

    EXPECT_TRUE(mb.tryRead(v));
    eq.run();
    EXPECT_EQ(v, 2u);
    EXPECT_TRUE(mb.tryRead(v));
    EXPECT_EQ(v, 3u);
    eq.run();
    EXPECT_TRUE(p.done());
}

TEST_F(MboxFixture, ProducerConsumerPipelineInOrder)
{
    spe::Mailbox mb("mb", eq, 4);
    std::vector<std::uint32_t> in = {10, 20, 30, 40, 50, 60, 70};
    std::vector<std::uint32_t> out;
    sim::Task p = producer(mb, in);
    sim::Task c = consumer(mb, in.size(), &out);
    p.start();
    c.start();
    eq.run();
    EXPECT_TRUE(p.done());
    EXPECT_TRUE(c.done());
    EXPECT_EQ(out, in);
}

TEST_F(MboxFixture, ZeroCapacityIsFatal)
{
    EXPECT_THROW(spe::Mailbox("mb", eq, 0), sim::FatalError);
}
