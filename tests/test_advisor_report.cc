/** @file Tests for the programming-rules advisor, runner and report
 *        helpers. */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/advisor.hh"
#include "core/report.hh"
#include "core/runner.hh"
#include "core/experiments.hh"

using namespace cellbw;

namespace
{

bool
hasRule(const std::vector<core::Advice> &advice, const std::string &rule)
{
    return std::any_of(advice.begin(), advice.end(),
                       [&](const core::Advice &a) { return a.rule == rule; });
}

} // namespace

TEST(Advisor, CleanPlanGetsNoWarnings)
{
    core::DmaPlan plan;
    plan.elemBytes = 16 * 1024;
    plan.spesPerStream = 4;
    plan.streams = 2;
    auto advice = core::advise(plan);
    for (const auto &a : advice)
        EXPECT_NE(a.severity, core::Advice::Severity::Warning) << a.rule;
}

TEST(Advisor, SmallElemsWithoutListsWarn)
{
    core::DmaPlan plan;
    plan.elemBytes = 512;
    EXPECT_TRUE(hasRule(core::advise(plan), "dma-list-small-elems"));
    plan.useList = true;
    EXPECT_FALSE(hasRule(core::advise(plan), "dma-list-small-elems"));
}

TEST(Advisor, TinyElementsAlwaysWarn)
{
    core::DmaPlan plan;
    plan.elemBytes = 64;
    plan.useList = true;
    EXPECT_TRUE(hasRule(core::advise(plan), "tiny-dma-elements"));
}

TEST(Advisor, EagerSyncWarns)
{
    core::DmaPlan plan;
    plan.syncEvery = 1;
    EXPECT_TRUE(hasRule(core::advise(plan), "delayed-sync"));
    plan.syncEvery = 0;
    EXPECT_FALSE(hasRule(core::advise(plan), "delayed-sync"));
    plan.syncEvery = 4;
    EXPECT_TRUE(hasRule(core::advise(plan), "delayed-sync"));
}

TEST(Advisor, SingleSpeMemoryStreamGetsParallelHint)
{
    core::DmaPlan plan;
    plan.spesPerStream = 1;
    plan.streams = 1;
    EXPECT_TRUE(hasRule(core::advise(plan), "parallel-memory-access"));
}

TEST(Advisor, EightSpeSingleStreamWarns)
{
    core::DmaPlan plan;
    plan.spesPerStream = 8;
    EXPECT_TRUE(hasRule(core::advise(plan), "two-streams-beat-one"));
    plan.spesPerStream = 4;
    plan.streams = 2;
    EXPECT_FALSE(hasRule(core::advise(plan), "two-streams-beat-one"));
}

TEST(Advisor, SpeToSpeSaturationHint)
{
    core::DmaPlan plan;
    plan.speToSpe = true;
    plan.spesPerStream = 8;
    EXPECT_TRUE(hasRule(core::advise(plan), "eib-saturation"));
}

TEST(Advisor, PpeRules)
{
    core::DmaPlan plan;
    plan.ppeElemBytes = 4;
    plan.ppeBulkTransfers = true;
    auto advice = core::advise(plan);
    EXPECT_TRUE(hasRule(advice, "ppe-pack-elements"));
    EXPECT_TRUE(hasRule(advice, "ppe-bulk-transfers"));
}

TEST(Advisor, RenderingIncludesSeverityAndRule)
{
    core::DmaPlan plan;
    plan.syncEvery = 1;
    std::string text = core::renderAdvice(core::advise(plan));
    EXPECT_NE(text.find("[warn]"), std::string::npos);
    EXPECT_NE(text.find("delayed-sync"), std::string::npos);
    EXPECT_NE(core::renderAdvice({}).find("no rule violations"),
              std::string::npos);
}

TEST(Runner, RunsExactlyNTimes)
{
    cell::CellConfig cfg;
    int calls = 0;
    core::RepeatSpec spec{5, 7};
    // The body mutates `calls`, so force the serial path.
    auto d = core::repeatRuns(cfg, spec, [&](cell::CellSystem &) {
        return static_cast<double>(++calls);
    }, core::ParallelSpec::serial());
    EXPECT_EQ(calls, 5);
    EXPECT_EQ(d.count(), 5u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
}

TEST(Runner, SeedsProducePlacementVariety)
{
    cell::CellConfig cfg;
    core::RepeatSpec spec{6, 11};
    std::vector<std::vector<std::uint32_t>> placements;
    // The body appends to `placements`, so force the serial path.
    core::repeatRuns(cfg, spec, [&](cell::CellSystem &sys) {
        placements.push_back(sys.placement());
        return 0.0;
    }, core::ParallelSpec::serial());
    bool any_different = false;
    for (std::size_t i = 1; i < placements.size(); ++i)
        any_different |= placements[i] != placements[0];
    EXPECT_TRUE(any_different);
}

TEST(Runner, SameSeedIsDeterministic)
{
    cell::CellConfig cfg;
    core::RepeatSpec spec{2, 21};
    auto body = [](cell::CellSystem &sys) {
        core::SpeSpeConfig sc;
        sc.numSpes = 4;
        sc.elemBytes = 4096;
        sc.bytesPerStream = 256 * util::KiB;
        return core::runSpeSpe(sys, sc);
    };
    auto a = core::repeatRuns(cfg, spec, body);
    auto b = core::repeatRuns(cfg, spec, body);
    EXPECT_EQ(a.samples(), b.samples());
}

TEST(Report, ElemSweepMatchesThePaper)
{
    auto sizes = core::elemSweepSizes();
    ASSERT_EQ(sizes.size(), 8u);
    EXPECT_EQ(sizes.front(), 128u);
    EXPECT_EQ(sizes.back(), 16u * 1024u);
    EXPECT_EQ(core::ppeElemSizes(),
              (std::vector<unsigned>{1, 2, 4, 8, 16}));
}

TEST(Report, ElemLabels)
{
    EXPECT_EQ(core::elemLabel(128), "128B");
    EXPECT_EQ(core::elemLabel(1024), "1KiB");
    EXPECT_EQ(core::elemLabel(16 * 1024), "16KiB");
}

TEST(Report, DistCellsAndHeadersAgree)
{
    stats::Distribution d;
    d.add(1.0);
    d.add(3.0);
    EXPECT_EQ(core::distCells(d, false).size(),
              core::distHeaders(false).size());
    auto cells = core::distCells(d, true);
    auto heads = core::distHeaders(true);
    ASSERT_EQ(cells.size(), heads.size());
    EXPECT_EQ(cells[0], "1.00");    // min
    EXPECT_EQ(cells[1], "3.00");    // max
    EXPECT_EQ(cells[2], "2.00");    // median
    EXPECT_EQ(cells[3], "2.00");    // mean
}

TEST(Experiments, OpNamesRoundTrip)
{
    EXPECT_STREQ(core::toString(core::DmaOp::Get), "GET");
    EXPECT_STREQ(core::toString(core::DmaOp::Copy), "GET+PUT");
    EXPECT_STREQ(core::toString(ppe::MemOp::Store), "store");
}
