/** @file Unit tests for the SPU streaming kernels and the Spe wrapper. */

#include <gtest/gtest.h>

#include "sim/clock.hh"
#include "spe/spe.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

struct SpuFixture : public ::testing::Test
{
    sim::EventQueue eq;
    sim::ClockSpec clock;
    spe::SpeParams params;

    std::unique_ptr<spe::Spe>
    make()
    {
        return std::make_unique<spe::Spe>("spe0", eq, clock, params, 0);
    }

    /** Run one streaming kernel and return the measured GB/s. */
    double
    measure(spe::Spe &s, ppe::MemOp op, unsigned elem, std::uint32_t bytes)
    {
        Tick t0 = eq.now();
        auto body = [&]() -> sim::Task {
            switch (op) {
              case ppe::MemOp::Load:
                co_await s.spu().streamLoad(0, bytes, elem);
                break;
              case ppe::MemOp::Store:
                co_await s.spu().streamStore(0, bytes, elem);
                break;
              case ppe::MemOp::Copy:
                co_await s.spu().streamCopy(0, 128 * 1024, bytes, elem);
                break;
            }
        };
        sim::Task t = body();
        test::runToCompletion(eq, t);
        return clock.bandwidthGBps(bytes, eq.now() - t0);
    }
};

} // namespace

TEST_F(SpuFixture, QuadwordLoadsReachThePeak)
{
    auto s = make();
    double bw = measure(*s, ppe::MemOp::Load, 16, 64 * 1024);
    // A small per-batch array latency keeps this a hair under 33.6.
    EXPECT_GT(bw, 32.5);
    EXPECT_LE(bw, 33.6);
}

TEST_F(SpuFixture, SubQuadwordLoadsScaleWithElementSize)
{
    auto s = make();
    double bw8 = measure(*s, ppe::MemOp::Load, 8, 64 * 1024);
    double bw1 = measure(*s, ppe::MemOp::Load, 1, 64 * 1024);
    EXPECT_LT(bw8, 20.0);       // well below peak
    EXPECT_NEAR(bw8 / bw1, 8.0, 0.5);
}

TEST_F(SpuFixture, SubQuadwordStoresPayReadModifyWrite)
{
    auto s = make();
    double store8 = measure(*s, ppe::MemOp::Store, 8, 64 * 1024);
    double load8 = measure(*s, ppe::MemOp::Load, 8, 64 * 1024);
    EXPECT_LT(store8, load8);
}

TEST_F(SpuFixture, CopyMovesTheBytes)
{
    auto s = make();
    s->ls().fill(0, 0x77, 4096);
    measure(*s, ppe::MemOp::Copy, 16, 4096);
    EXPECT_EQ(s->ls().byteAt(128 * 1024), 0x77);
    EXPECT_EQ(s->ls().byteAt(128 * 1024 + 4095), 0x77);
}

TEST_F(SpuFixture, BadElementSizeIsFatal)
{
    auto s = make();
    sim::Task t = s->spu().streamLoad(0, 1024, 3);
    t.start();
    eq.run();
    EXPECT_TRUE(t.failed());
    EXPECT_THROW(t.rethrow(), sim::FatalError);
}

TEST_F(SpuFixture, TimebaseAdvancesWithSimTime)
{
    auto s = make();
    EXPECT_EQ(s->spu().timebase(), 0u);
    eq.schedule(clock.fromSeconds(0.001), [] {});
    eq.run();
    auto tb = s->spu().timebase();
    EXPECT_NEAR(static_cast<double>(tb), clock.timebaseHz * 0.001, 2.0);
}

TEST_F(SpuFixture, LsAllocatorAlignsAndExhausts)
{
    auto s = make();
    LsAddr a = s->lsAlloc(100);
    LsAddr b = s->lsAlloc(100);
    EXPECT_EQ(a % 128, 0u);
    EXPECT_EQ(b % 128, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_THROW(s->lsAlloc(256 * 1024), sim::FatalError);
    s->lsReset();
    EXPECT_EQ(s->lsAlloc(100), 0u);
}

TEST_F(SpuFixture, PhysicalPlacementIsRecorded)
{
    auto s = make();
    s->setPhysicalSpe(5, 3);
    EXPECT_EQ(s->physicalSpe(), 5u);
    EXPECT_EQ(s->rampPos(), 3u);
    EXPECT_EQ(s->logicalIndex(), 0u);
}

TEST_F(SpuFixture, MailboxCapacitiesMatchCbea)
{
    auto s = make();
    EXPECT_EQ(s->inboundMailbox().capacity(), 4u);
    EXPECT_EQ(s->outboundMailbox().capacity(), 1u);
}

TEST_F(SpuFixture, SpuAndDmaShareTheLsPort)
{
    auto s = make();
    // Consume LS port time via the SPU, then check DMA port
    // reservations queue behind it.
    Tick before = s->ls().portFreeAt();
    auto body = [&]() -> sim::Task {
        co_await s->spu().streamLoad(0, 16 * 1024, 16);
    };
    sim::Task t = body();
    test::runToCompletion(eq, t);
    EXPECT_GT(s->ls().portFreeAt(), before);
}
