/** @file Tests for the MPI-style SPE message-passing layer. */

#include <gtest/gtest.h>

#include "msg/communicator.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

struct MsgFixture : public ::testing::Test
{
    cell::CellConfig cfg;

    std::unique_ptr<cell::CellSystem>
    makeSys(std::uint64_t seed = 1)
    {
        return std::make_unique<cell::CellSystem>(cfg, seed);
    }
};

/** Fill rank @p r's LS at @p lsa with a recognizable pattern. */
void
pattern(cell::CellSystem &sys, unsigned r, LsAddr lsa,
        std::uint32_t bytes, std::uint8_t key)
{
    sys.spe(r).ls().fill(lsa, key, bytes);
}

} // namespace

TEST_F(MsgFixture, EagerSendRecvDeliversData)
{
    auto sys = makeSys();
    msg::Communicator comm(*sys, 2);
    LsAddr src = sys->spe(0).lsAlloc(1024);
    LsAddr dst = sys->spe(1).lsAlloc(1024);
    pattern(*sys, 0, src, 1024, 0x42);

    auto sender = [&]() -> sim::Task {
        co_await comm.send(0, 1, src, 1024);
    };
    auto receiver = [&]() -> sim::Task {
        std::uint32_t got = 0;
        co_await comm.recv(1, 0, dst, 1024, &got);
        EXPECT_EQ(got, 1024u);
    };
    sys->launch(sender());
    sys->launch(receiver());
    sys->run();
    EXPECT_EQ(sys->spe(1).ls().byteAt(dst), 0x42);
    EXPECT_EQ(sys->spe(1).ls().byteAt(dst + 1023), 0x42);
    EXPECT_EQ(comm.eagerMessages(), 1u);
    EXPECT_EQ(comm.rendezvousMessages(), 0u);
}

TEST_F(MsgFixture, RendezvousSendRecvDeliversData)
{
    auto sys = makeSys();
    msg::Communicator comm(*sys, 2);
    const std::uint32_t bytes = 16 * 1024;      // > eager limit
    LsAddr src = sys->spe(0).lsAlloc(bytes);
    LsAddr dst = sys->spe(1).lsAlloc(bytes);
    pattern(*sys, 0, src, bytes, 0x77);

    auto sender = [&]() -> sim::Task {
        co_await comm.send(0, 1, src, bytes);
    };
    auto receiver = [&]() -> sim::Task {
        co_await comm.recv(1, 0, dst, bytes, nullptr);
    };
    sys->launch(sender());
    sys->launch(receiver());
    sys->run();
    EXPECT_EQ(sys->spe(1).ls().byteAt(dst + bytes - 1), 0x77);
    EXPECT_EQ(comm.rendezvousMessages(), 1u);
    EXPECT_EQ(comm.bytesSent(), bytes);
}

TEST_F(MsgFixture, MessagesFromOneSenderArriveInOrder)
{
    auto sys = makeSys();
    msg::Communicator comm(*sys, 2);
    LsAddr src = sys->spe(0).lsAlloc(4096);
    LsAddr dst = sys->spe(1).lsAlloc(256);
    std::vector<std::uint8_t> seen;

    auto sender = [&]() -> sim::Task {
        for (std::uint8_t m = 1; m <= 6; ++m) {
            sys->spe(0).ls().fill(src, m, 256);
            co_await comm.send(0, 1, src, 256);
        }
    };
    auto receiver = [&]() -> sim::Task {
        for (int m = 0; m < 6; ++m) {
            co_await comm.recv(1, 0, dst, 256, nullptr);
            seen.push_back(sys->spe(1).ls().byteAt(dst));
        }
    };
    sys->launch(sender());
    sys->launch(receiver());
    sys->run();
    EXPECT_EQ(seen, (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6}));
}

TEST_F(MsgFixture, CreditsThrottleTheSender)
{
    auto sys = makeSys();
    msg::CommunicatorParams params;
    params.slotsPerPair = 1;
    msg::Communicator comm(*sys, 2, params);
    LsAddr src = sys->spe(0).lsAlloc(256);
    LsAddr dst = sys->spe(1).lsAlloc(256);

    int sent = 0;
    auto sender = [&]() -> sim::Task {
        for (int m = 0; m < 4; ++m) {
            co_await comm.send(0, 1, src, 256);
            ++sent;
        }
    };
    sim::Task s = sender();
    sys->launch(std::move(s));
    // Without a receiver the sender must stall after exhausting the
    // single credit (message 2 waits for a credit).
    sys->eventQueue().run();
    EXPECT_LT(sent, 4);

    auto receiver = [&]() -> sim::Task {
        for (int m = 0; m < 4; ++m)
            co_await comm.recv(1, 0, dst, 256, nullptr);
    };
    sys->launch(receiver());
    sys->run();
    EXPECT_EQ(sent, 4);
}

TEST_F(MsgFixture, BidirectionalExchangeDoesNotDeadlock)
{
    auto sys = makeSys();
    msg::Communicator comm(*sys, 2);
    LsAddr buf_a = sys->spe(0).lsAlloc(512);
    LsAddr buf_b = sys->spe(1).lsAlloc(512);
    LsAddr rx_a = sys->spe(0).lsAlloc(512);
    LsAddr rx_b = sys->spe(1).lsAlloc(512);
    pattern(*sys, 0, buf_a, 512, 0xA0);
    pattern(*sys, 1, buf_b, 512, 0xB0);

    auto node = [&](unsigned self, unsigned peer, LsAddr tx,
                    LsAddr rx) -> sim::Task {
        co_await comm.send(self, peer, tx, 512);
        co_await comm.recv(self, peer, rx, 512, nullptr);
    };
    sys->launch(node(0, 1, buf_a, rx_a));
    sys->launch(node(1, 0, buf_b, rx_b));
    sys->run();
    EXPECT_EQ(sys->spe(0).ls().byteAt(rx_a), 0xB0);
    EXPECT_EQ(sys->spe(1).ls().byteAt(rx_b), 0xA0);
}

TEST_F(MsgFixture, BarrierSynchronizesAllRanks)
{
    auto sys = makeSys();
    msg::Communicator comm(*sys, 4);
    std::vector<Tick> left(4, 0);

    auto node = [&](unsigned r) -> sim::Task {
        // Stagger arrivals.
        co_await sim::Delay{sys->eventQueue(), 1000 * (r + 1)};
        co_await comm.barrier(r);
        left[r] = sys->now();
    };
    for (unsigned r = 0; r < 4; ++r)
        sys->launch(node(r));
    sys->run();
    // Nobody leaves before the last arrival (tick 4000).
    for (unsigned r = 0; r < 4; ++r)
        EXPECT_GE(left[r], 4000u);
    // And all leave together (within the notify latency window).
    Tick lo = *std::min_element(left.begin(), left.end());
    Tick hi = *std::max_element(left.begin(), left.end());
    EXPECT_LE(hi - lo, 1u);
}

TEST_F(MsgFixture, BarrierIsReusable)
{
    auto sys = makeSys();
    msg::Communicator comm(*sys, 2);
    int phase_err = 0;
    int at_phase[2] = {0, 0};

    auto node = [&](unsigned r) -> sim::Task {
        for (int ph = 0; ph < 3; ++ph) {
            at_phase[r] = ph;
            co_await comm.barrier(r);
            if (at_phase[1 - r] < ph)
                ++phase_err;
        }
    };
    sys->launch(node(0));
    sys->launch(node(1));
    sys->run();
    EXPECT_EQ(phase_err, 0);
}

class AllreduceRanks : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AllreduceRanks, EveryRankGetsTheSum)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 3);
    const unsigned ranks = GetParam();
    msg::Communicator comm(sys, ranks);
    const std::uint32_t elems = 1024;

    std::vector<LsAddr> bufs(ranks);
    for (unsigned r = 0; r < ranks; ++r) {
        bufs[r] = sys.spe(r).lsAlloc(elems * 4, 16);
        std::vector<float> v(elems);
        for (std::uint32_t i = 0; i < elems; ++i)
            v[i] = static_cast<float>(r + 1) + 0.25f * (i % 3);
        sys.spe(r).ls().write(bufs[r], v.data(), elems * 4);
    }

    for (unsigned r = 0; r < ranks; ++r)
        sys.launch(comm.allreduceSum(r, bufs[r], elems));
    sys.run();

    for (unsigned r = 0; r < ranks; ++r) {
        std::vector<float> v(elems);
        sys.spe(r).ls().read(bufs[r], v.data(), elems * 4);
        for (std::uint32_t i = 0; i < elems; i += 97) {
            float expect = 0.0f;
            for (unsigned k = 0; k < ranks; ++k)
                expect += static_cast<float>(k + 1) + 0.25f * (i % 3);
            EXPECT_NEAR(v[i], expect, 1e-4) << "rank " << r;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Rings, AllreduceRanks,
                         ::testing::Values(2u, 3u, 4u, 8u));

TEST_F(MsgFixture, ApiMisuseIsFatal)
{
    auto sys = makeSys();
    EXPECT_THROW(msg::Communicator(*sys, 1), sim::FatalError);
    EXPECT_THROW(msg::Communicator(*sys, 9), sim::FatalError);

    msg::CommunicatorParams bad;
    bad.eagerLimit = 4096;
    bad.slotBytes = 2048;
    EXPECT_THROW(msg::Communicator(*sys, 2, bad), sim::FatalError);

    msg::Communicator comm(*sys, 2);
    auto bad_send = [&]() -> sim::Task {
        co_await comm.send(0, 1, 0, 100);   // invalid DMA size
    };
    sys->launch(bad_send());
    EXPECT_THROW(sys->run(), sim::FatalError);
}

TEST_F(MsgFixture, RendezvousBeatsEagerForLargeMessages)
{
    // With the limit raised, a 16 KiB eager message pays an extra LS
    // copy; rendezvous moves it once.
    auto run = [&](std::uint32_t eager_limit) {
        auto sys = makeSys();
        msg::CommunicatorParams params;
        params.eagerLimit = eager_limit;
        params.slotBytes = 16 * 1024;
        msg::Communicator comm(*sys, 2, params);
        LsAddr src = sys->spe(0).lsAlloc(16 * 1024);
        LsAddr dst = sys->spe(1).lsAlloc(16 * 1024);
        auto sender = [&]() -> sim::Task {
            for (int i = 0; i < 16; ++i)
                co_await comm.send(0, 1, src, 16 * 1024);
        };
        auto receiver = [&]() -> sim::Task {
            for (int i = 0; i < 16; ++i)
                co_await comm.recv(1, 0, dst, 16 * 1024, nullptr);
        };
        Tick t0 = sys->now();
        sys->launch(sender());
        sys->launch(receiver());
        sys->run();
        return sys->now() - t0;
    };
    Tick eager = run(16 * 1024);
    Tick rndv = run(2048);
    EXPECT_LT(rndv, eager);
}
