/** @file Tests for CellConfig option registration and parsing. */

#include <gtest/gtest.h>

#include "cell/config.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

cell::CellConfig
parse(std::vector<const char *> args)
{
    util::Options opts("test", "test");
    cell::CellConfig::registerOptions(opts);
    args.insert(args.begin(), "test");
    if (!opts.parse(static_cast<int>(args.size()), args.data()))
        sim::fatal("parse failed");
    return cell::CellConfig::fromOptions(opts);
}

} // namespace

TEST(CellConfig, DefaultsMatchThePaperMachine)
{
    cell::CellConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.clock.cpuHz, 2.1e9);
    EXPECT_EQ(cfg.numSpes, 8u);
    EXPECT_EQ(cfg.numChips, 1u);
    EXPECT_EQ(cfg.eib.numRings, 4u);
    EXPECT_EQ(cfg.spe.mfc.queueDepth, 16u);
    EXPECT_NEAR(cfg.rampPeakGBps(), 16.8, 1e-9);
    EXPECT_NEAR(cfg.lsPeakGBps(), 33.6, 1e-9);
    EXPECT_NEAR(cfg.pairPeakGBps(), 33.6, 1e-9);
    EXPECT_NEAR(cfg.memory.ioLink.bytesPerTick * cfg.clock.cpuHz / 1e9,
                7.0, 1e-6);
}

TEST(CellConfig, FlagsReachTheRightFields)
{
    auto cfg = parse({"--cpu-ghz=3.2", "--spes=4", "--rings=8",
                      "--mfc-queue-depth=8", "--mfc-mem-tokens=10",
                      "--dma-elem-overhead=48", "--bank0-gbps=20",
                      "--io-gbps=5", "--numa=local",
                      "--affinity=paired", "--no-flow-pinning",
                      "--chips=2"});
    EXPECT_DOUBLE_EQ(cfg.clock.cpuHz, 3.2e9);
    EXPECT_EQ(cfg.numSpes, 4u);
    EXPECT_EQ(cfg.numChips, 2u);
    EXPECT_EQ(cfg.eib.numRings, 8u);
    EXPECT_EQ(cfg.spe.mfc.queueDepth, 8u);
    EXPECT_EQ(cfg.spe.mfc.memoryTokens, 10u);
    EXPECT_EQ(cfg.spe.mfc.elemOverheadBus, 48u);
    EXPECT_NEAR(cfg.memory.bank0.bytesPerTick * cfg.clock.cpuHz / 1e9,
                20.0, 1e-6);
    EXPECT_NEAR(cfg.memory.ioLink.bytesPerTick * cfg.clock.cpuHz / 1e9,
                5.0, 1e-6);
    EXPECT_EQ(cfg.numa.kind, mem::NumaPolicy::Kind::LocalOnly);
    EXPECT_EQ(cfg.affinity, cell::AffinityPolicy::Paired);
    EXPECT_FALSE(cfg.eib.flowPinning);
}

TEST(CellConfig, NumaShareFlagControlsInterleave)
{
    auto cfg = parse({"--numa=interleave", "--bank0-share=0.8"});
    EXPECT_EQ(cfg.numa.kind, mem::NumaPolicy::Kind::Interleave);
    EXPECT_DOUBLE_EQ(cfg.numa.bank0Share, 0.8);
    auto remote = parse({"--numa=remote"});
    EXPECT_EQ(remote.numa.kind, mem::NumaPolicy::Kind::RemoteOnly);
}

TEST(CellConfig, BadValuesAreFatal)
{
    EXPECT_THROW(parse({"--spes=0"}), sim::FatalError);
    EXPECT_THROW(parse({"--spes=9"}), sim::FatalError);
    // 17 chips would overflow the flight handle's 4-bit chip field.
    EXPECT_THROW(parse({"--chips=17"}), sim::FatalError);
    // More blades than chips would leave a blade empty; five chips on
    // two blades would need three on one blade.
    EXPECT_THROW(parse({"--chips=2", "--blades=3"}), sim::FatalError);
    EXPECT_THROW(parse({"--chips=5", "--blades=2"}), sim::FatalError);
    EXPECT_THROW(parse({"--numa=bogus"}), sim::FatalError);
    EXPECT_THROW(parse({"--affinity=bogus"}), sim::FatalError);
    EXPECT_THROW(parse({"--placement=bogus"}), sim::FatalError);
    // Two chips raise the SPE ceiling.
    auto cfg = parse({"--chips=2", "--spes=16"});
    EXPECT_EQ(cfg.numSpes, 16u);
}

TEST(CellConfig, ClusterFlagsReachTheRightFields)
{
    auto cfg = parse({"--chips=4", "--blades=2", "--spes=32",
                      "--affinity=linear", "--placement=locality",
                      "--blade-link-gbps=4", "--blade-latency=200",
                      "--ioif-latency=50"});
    EXPECT_EQ(cfg.numChips, 4u);
    EXPECT_EQ(cfg.numBlades, 2u);
    EXPECT_EQ(cfg.placement, cell::TaskPlacement::Locality);
    EXPECT_NEAR(cfg.memory.bladeLink.bytesPerTick * cfg.clock.cpuHz / 1e9,
                4.0, 1e-6);
    EXPECT_EQ(cfg.memory.bladeLink.crossingLatency,
              cfg.clock.fromNs(200.0));
    EXPECT_EQ(cfg.memory.ioLink.crossingLatency, cfg.clock.fromNs(50.0));
    EXPECT_EQ(cfg.memory.numChips, 4u);
    EXPECT_EQ(cfg.memory.numBlades, 2u);

    // Defaults: blades auto-derive, round-robin placement.
    auto def = parse({"--chips=8", "--spes=64"});
    EXPECT_EQ(def.numBlades, 0u);
    EXPECT_EQ(def.placement, cell::TaskPlacement::RoundRobin);
}

TEST(CellConfig, PlacementNamesRoundTrip)
{
    EXPECT_EQ(cell::placementFromString("round-robin"),
              cell::TaskPlacement::RoundRobin);
    EXPECT_EQ(cell::placementFromString("locality"),
              cell::TaskPlacement::Locality);
    EXPECT_STREQ(cell::toString(cell::TaskPlacement::Locality),
                 "locality");
    EXPECT_STREQ(cell::toString(cell::TaskPlacement::RoundRobin),
                 "round-robin");
}

TEST(CellConfig, AffinityNamesRoundTrip)
{
    EXPECT_EQ(cell::affinityFromString("random"),
              cell::AffinityPolicy::Random);
    EXPECT_EQ(cell::affinityFromString("LINEAR"),
              cell::AffinityPolicy::Linear);
    EXPECT_STREQ(cell::toString(cell::AffinityPolicy::Paired), "paired");
}

TEST(CellConfig, RowTimingFlagsPlumbToBothBanks)
{
    auto off = parse({});
    EXPECT_FALSE(off.memory.bank0.rowTiming);
    EXPECT_FALSE(off.memory.bank1.rowTiming);
    EXPECT_EQ(off.memory.bank0.rowBytes, 2048u);

    auto cfg = parse({"--mem-row-timing", "--mem-row-hit-ns=20",
                      "--mem-row-miss-ns=60", "--mem-row-bytes=4096"});
    EXPECT_TRUE(cfg.memory.bank0.rowTiming);
    EXPECT_TRUE(cfg.memory.bank1.rowTiming);
    EXPECT_EQ(cfg.memory.bank0.rowBytes, 4096u);
    EXPECT_EQ(cfg.memory.bank1.rowBytes, 4096u);
    EXPECT_EQ(cfg.memory.bank0.rowHitLatency, cfg.clock.fromNs(20.0));
    EXPECT_EQ(cfg.memory.bank0.rowMissPenalty, cfg.clock.fromNs(60.0));
    EXPECT_EQ(cfg.memory.bank1.rowHitLatency,
              cfg.memory.bank0.rowHitLatency);
    EXPECT_EQ(cfg.memory.bank1.rowMissPenalty,
              cfg.memory.bank0.rowMissPenalty);
}
