/** @file Unit tests for the PPE cache tag arrays. */

#include <gtest/gtest.h>

#include "ppe/cache.hh"
#include "sim/logging.hh"

using namespace cellbw;
using ppe::CacheArray;
using ppe::CacheParams;

TEST(Cache, GeometryChecks)
{
    CacheArray c({32 * 1024, 128, 8});
    EXPECT_EQ(c.lineBytes(), 128u);
    EXPECT_EQ(c.numSets(), 32u);
    EXPECT_THROW(CacheArray({1000, 100, 8}), sim::FatalError);
    EXPECT_THROW(CacheArray({32 * 1024, 128, 0}), sim::FatalError);
    EXPECT_THROW(CacheArray({100, 128, 3}), sim::FatalError);
}

TEST(Cache, MissThenHit)
{
    CacheArray c({32 * 1024, 128, 8});
    EXPECT_FALSE(c.access(0x1000));
    c.insert(0x1000);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1008));      // same line
    EXPECT_FALSE(c.access(0x1080));     // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way, 2-set tiny cache: lines map to set (line % 2).
    CacheArray c({512, 128, 2});
    EXPECT_EQ(c.numSets(), 2u);
    // Fill set 0 with lines 0 and 2 (addresses 0 and 256).
    c.insert(0);
    c.insert(256);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(256));
    // Touch line 0 so line 2 is LRU; insert line 4 evicts line 2.
    c.access(0);
    c.insert(512);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(256));
    EXPECT_TRUE(c.contains(512));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Cache, InsertIsIdempotentAndKeepsDirty)
{
    CacheArray c({512, 128, 2});
    EXPECT_FALSE(c.insert(0, true));
    EXPECT_FALSE(c.insert(0, false));   // still present, stays dirty
    // Evicting it reports a dirty victim.
    c.insert(256);
    EXPECT_TRUE(c.insert(512));         // kicks out line 0 (dirty)
}

TEST(Cache, DirtyEvictionOnlyForDirtyLines)
{
    CacheArray c({512, 128, 2});
    c.insert(0, false);
    c.insert(256, false);
    EXPECT_FALSE(c.insert(512, false));     // clean victim
}

TEST(Cache, TouchDirtyOnlyWhenPresent)
{
    CacheArray c({512, 128, 2});
    EXPECT_FALSE(c.touchDirty(0));
    c.insert(0, false);
    EXPECT_TRUE(c.touchDirty(0));
    c.insert(256);
    EXPECT_TRUE(c.insert(512));             // victim line 0 now dirty
}

TEST(Cache, InvalidateAllEmptiesTheCache)
{
    CacheArray c({512, 128, 2});
    c.insert(0);
    c.insert(128);
    c.invalidateAll();
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.contains(128));
}

TEST(Cache, ContainsDoesNotTouchLru)
{
    CacheArray c({512, 128, 2});
    c.insert(0);
    c.insert(256);
    // contains() on line 0 must NOT refresh it...
    EXPECT_TRUE(c.contains(0));
    // ...so inserting a third line evicts line 0 (the oldest).
    c.insert(512);
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(256));
}

TEST(Cache, WorkingSetLargerThanCacheThrashes)
{
    CacheArray c({32 * 1024, 128, 8});
    // Two passes over 64 KB: every access misses both times.
    for (int pass = 0; pass < 2; ++pass)
        for (EffAddr ea = 0; ea < 64 * 1024; ea += 128)
            if (!c.access(ea))
                c.insert(ea);
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 1024u);
}

TEST(Cache, WorkingSetSmallerThanCacheHitsOnSecondPass)
{
    CacheArray c({32 * 1024, 128, 8});
    for (int pass = 0; pass < 2; ++pass)
        for (EffAddr ea = 0; ea < 16 * 1024; ea += 128)
            if (!c.access(ea))
                c.insert(ea);
    EXPECT_EQ(c.misses(), 128u);
    EXPECT_EQ(c.hits(), 128u);
}
