/** @file Tests for the shared WorkerPool's shutdown semantics. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/worker_pool.hh"
#include "sim/logging.hh"

using namespace cellbw;

TEST(WorkerPool, RunsEverySubmittedTask)
{
    core::WorkerPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.shutdown();
    EXPECT_EQ(ran.load(), 200);
}

TEST(WorkerPool, ShutdownDrainsAcceptedTasksNeverDrops)
{
    // Tasks accepted before shutdown() must run to completion — a
    // dropped task would strand a coordinator blocked on its result.
    core::WorkerPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i) {
        pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            ran.fetch_add(1);
        });
    }
    pool.shutdown();            // must block until all 32 completed
    EXPECT_EQ(ran.load(), 32);
}

TEST(WorkerPool, SubmitAfterShutdownThrows)
{
    core::WorkerPool pool(2);
    pool.submit([] {});
    pool.shutdown();
    EXPECT_TRUE(pool.stopping());
    // The defined semantics: after shutdown begins, submit() is a loud
    // caller error, never a silent drop.
    EXPECT_THROW(pool.submit([] {}), sim::FatalError);
}

TEST(WorkerPool, ShutdownIsIdempotentAndConcurrent)
{
    core::WorkerPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&] { ran.fetch_add(1); });

    std::vector<std::thread> callers;
    for (int i = 0; i < 4; ++i)
        callers.emplace_back([&] { pool.shutdown(); });
    for (auto &t : callers)
        t.join();
    pool.shutdown();            // and again, after everyone joined
    EXPECT_EQ(ran.load(), 64);
}

TEST(WorkerPool, DestructorSmokesAfterExplicitShutdown)
{
    // The destructor calls shutdown() itself; an explicit earlier call
    // must not double-join.
    auto pool = std::make_unique<core::WorkerPool>(2);
    std::atomic<int> ran{0};
    pool->submit([&] { ran.fetch_add(1); });
    pool->shutdown();
    pool.reset();
    EXPECT_EQ(ran.load(), 1);
}
