/** @file Unit tests for the conservative partitioned engine. */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/parallel.hh"

using namespace cellbw;

namespace
{

constexpr Tick kLook = 100;

} // namespace

TEST(PartitionedEngine, LocalEventsRunWithoutCrossings)
{
    sim::PartitionedEngine eng(2, kLook);
    int fired = 0;
    eng.queue(0).schedule(10, [&] { ++fired; });
    eng.queue(1).schedule(20, [&] { ++fired; });
    eng.queue(1).schedule(20, [&] { ++fired; });
    EXPECT_EQ(eng.run(1), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eng.messagesDelivered(), 0u);
    EXPECT_EQ(eng.eventsProcessed(), 3u);
    EXPECT_EQ(eng.lastDispatchTick(), 20u);
}

TEST(PartitionedEngine, PostDeliversAtTheRequestedTick)
{
    sim::PartitionedEngine eng(2, kLook);
    Tick seen = maxTick;
    eng.queue(0).schedule(10, [&] {
        eng.post(0, 1, eng.queue(0).now() + kLook,
                 sim::PartitionedEngine::ChannelFn(
                     [&] { seen = eng.queue(1).now(); }));
    });
    eng.run(1);
    EXPECT_EQ(seen, 110u);
    EXPECT_EQ(eng.messagesDelivered(), 1u);
}

TEST(PartitionedEngine, DeliveryOrderIsWhenSourceSeq)
{
    // Three messages land on partition 2 at the same tick: two from
    // partition 0 (in post order) and one from partition 1.  A local
    // event already queued for that tick fires first (bucket FIFO),
    // then the deliveries in (when, src, seq) order — the fixed merge
    // that makes the schedule thread-count independent.
    sim::PartitionedEngine eng(3, kLook);
    std::vector<int> order;
    eng.queue(2).scheduleAt(kLook, [&] { order.push_back(99); });
    eng.queue(0).schedule(0, [&] {
        eng.post(0, 2, kLook, sim::PartitionedEngine::ChannelFn(
                                  [&] { order.push_back(1); }));
        eng.post(0, 2, kLook, sim::PartitionedEngine::ChannelFn(
                                  [&] { order.push_back(2); }));
    });
    eng.queue(1).schedule(0, [&] {
        eng.post(1, 2, kLook, sim::PartitionedEngine::ChannelFn(
                                  [&] { order.push_back(3); }));
    });
    eng.run(1);
    EXPECT_EQ(order, (std::vector<int>{99, 1, 2, 3}));
}

namespace
{

/**
 * A deterministic two-partition ping-pong: each delivery re-posts to
 * the other side until @p bounces messages have crossed.  Returns the
 * (partition, tick) trace in delivery order.
 */
std::vector<std::pair<unsigned, Tick>>
pingPongTrace(unsigned threads, int bounces)
{
    sim::PartitionedEngine eng(2, kLook);
    std::vector<std::pair<unsigned, Tick>> trace;
    int left = bounces;
    // Self-referential continuation: bounce() posts a message whose
    // body records its arrival and bounces back.
    struct Bouncer
    {
        sim::PartitionedEngine &eng;
        std::vector<std::pair<unsigned, Tick>> &trace;
        int &left;

        void
        send(unsigned from)
        {
            const unsigned to = 1 - from;
            eng.post(from, to, eng.queue(from).now() + kLook,
                     sim::PartitionedEngine::ChannelFn([this, to] {
                         trace.emplace_back(to, eng.queue(to).now());
                         if (--left > 0)
                             send(to);
                     }));
        }
    } bouncer{eng, trace, left};
    eng.queue(0).schedule(3, [&] { bouncer.send(0); });
    eng.run(threads);
    return trace;
}

} // namespace

TEST(PartitionedEngine, ThreadedScheduleMatchesSerial)
{
    // Threads change who executes a window, never what order events
    // fire in: the trace must be identical for any worker count.
    const auto serial = pingPongTrace(1, 24);
    ASSERT_EQ(serial.size(), 24u);
    EXPECT_EQ(serial.front(), (std::pair<unsigned, Tick>{1u, 103u}));
    EXPECT_EQ(serial.back().second, 3u + 24u * kLook);
    EXPECT_EQ(pingPongTrace(2, 24), serial);
    EXPECT_EQ(pingPongTrace(4, 24), serial);
}

namespace
{

/**
 * A deterministic four-partition relay: a token hops around the ring
 * 0 -> 1 -> 2 -> 3 -> 0 for @p laps laps, while partition 0 also posts
 * a diagonal message straight to partition 2 every lap (non-adjacent
 * partitions must work just like neighbours).  The engine pins the
 * schedule *within* each partition, not the wall-clock interleaving of
 * different partitions, so the trace is kept per partition: entry
 * (tick, isDiagonal) in delivery order.  Each vector is only ever
 * touched by the thread currently running that partition.
 */
std::vector<std::vector<std::pair<Tick, bool>>>
ringTrace(unsigned threads, int laps)
{
    constexpr unsigned kParts = 4;
    sim::PartitionedEngine eng(kParts, kLook);
    std::vector<std::vector<std::pair<Tick, bool>>> trace(kParts);
    int left = laps * static_cast<int>(kParts);
    struct Relay
    {
        sim::PartitionedEngine &eng;
        std::vector<std::vector<std::pair<Tick, bool>>> &trace;
        int &left;

        void
        send(unsigned from)
        {
            const unsigned to = (from + 1) % kParts;
            eng.post(from, to, eng.queue(from).now() + kLook,
                     sim::PartitionedEngine::ChannelFn([this, to] {
                         trace[to].emplace_back(eng.queue(to).now(),
                                                false);
                         if (--left > 0)
                             send(to);
                     }));
            if (from == 0)
                eng.post(0, 2, eng.queue(0).now() + kLook,
                         sim::PartitionedEngine::ChannelFn([this] {
                             trace[2].emplace_back(eng.queue(2).now(),
                                                   true);
                         }));
        }
    } relay{eng, trace, left};
    eng.queue(0).schedule(5, [&] { relay.send(0); });
    eng.run(threads);
    return trace;
}

} // namespace

TEST(PartitionedEngine, FourPartitionRingMatchesSerial)
{
    // Four partitions, neighbour hops plus a diagonal 0 -> 2 post every
    // lap: each partition's delivery schedule is thread-count
    // independent, just as in the two-partition case.
    const auto serial = ringTrace(1, 6);
    // 6 laps land one hop on every partition; partition 2 also gets
    // one diagonal per visit to partition 0 (kick-off + 5 laps).
    ASSERT_EQ(serial.size(), 4u);
    EXPECT_EQ(serial[1].size(), 6u);
    EXPECT_EQ(serial[2].size(), 12u);
    EXPECT_EQ(serial[1].front(), (std::pair<Tick, bool>{105u, false}));
    // The diagonal beats the two-hop ring path to partition 2.
    EXPECT_EQ(serial[2][0], (std::pair<Tick, bool>{105u, true}));
    EXPECT_EQ(serial[2][1], (std::pair<Tick, bool>{205u, false}));
    EXPECT_EQ(ringTrace(2, 6), serial);
    EXPECT_EQ(ringTrace(4, 6), serial);
    EXPECT_EQ(ringTrace(8, 6), serial);
}

TEST(PartitionedEngine, DiagonalPostsReachNonAdjacentPartitions)
{
    // The engine is a full crossbar, not a ring: 0 -> 2 and 3 -> 1
    // deliver without any intermediate partition in the loop.
    sim::PartitionedEngine eng(4, kLook);
    Tick at02 = maxTick, at31 = maxTick;
    eng.queue(0).schedule(10, [&] {
        eng.post(0, 2, eng.queue(0).now() + kLook,
                 sim::PartitionedEngine::ChannelFn(
                     [&] { at02 = eng.queue(2).now(); }));
    });
    eng.queue(3).schedule(20, [&] {
        eng.post(3, 1, eng.queue(3).now() + kLook,
                 sim::PartitionedEngine::ChannelFn(
                     [&] { at31 = eng.queue(1).now(); }));
    });
    EXPECT_EQ(eng.run(2), 4u);
    EXPECT_EQ(at02, 110u);
    EXPECT_EQ(at31, 120u);
    EXPECT_EQ(eng.messagesDelivered(), 2u);
}

TEST(PartitionedEngine, EventsProcessedCountsDeliveredMessages)
{
    sim::PartitionedEngine eng(2, kLook);
    eng.queue(0).schedule(0, [&] {
        eng.post(0, 1, kLook,
                 sim::PartitionedEngine::ChannelFn([] {}));
    });
    eng.run(1);
    // The origin event plus the delivered continuation.
    EXPECT_EQ(eng.eventsProcessed(), 2u);
    EXPECT_EQ(eng.messagesDelivered(), 1u);
}

TEST(PartitionedEngineDeathTest, PostBelowTheLookaheadPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sim::PartitionedEngine eng(2, kLook);
    eng.queue(0).schedule(10, [&] {
        eng.post(0, 1, eng.queue(0).now() + kLook - 1,
                 sim::PartitionedEngine::ChannelFn([] {}));
    });
    EXPECT_DEATH(eng.run(1), "lookahead");
}

TEST(PartitionedEngineDeathTest, PostToUnknownPartitionPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sim::PartitionedEngine eng(2, kLook);
    eng.queue(0).schedule(0, [&] {
        eng.post(0, 2, kLook,
                 sim::PartitionedEngine::ChannelFn([] {}));
    });
    EXPECT_DEATH(eng.run(1), "unknown partition");
}
