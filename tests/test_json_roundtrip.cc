/** @file Round-trip property tests for util/json plus the committed
 *        corpus of edge-case inputs in tests/json_corpus/. */

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "stats/json_writer.hh"
#include "util/file.hh"
#include "util/json.hh"

using namespace cellbw;
using util::JsonValue;

namespace
{

/** Deterministic random document generator. */
JsonValue
genValue(std::mt19937 &rng, int depth)
{
    auto pick = [&](int n) {
        return static_cast<int>(rng() % static_cast<unsigned>(n));
    };
    // Weight leaves heavier as we go deeper so documents terminate.
    const int kind = pick(depth > 4 ? 5 : 7);
    switch (kind) {
      case 0:
        return JsonValue::makeNull();
      case 1:
        return JsonValue::makeBool(pick(2) == 0);
      case 2: {
        switch (pick(4)) {
          case 0:
            return JsonValue::makeNumber(
                static_cast<double>(static_cast<std::int64_t>(rng())));
          case 1:
            return JsonValue::makeNumber(
                static_cast<double>(rng()) / 977.0 -
                static_cast<double>(rng()) / 331.0);
          case 2:
            // Big uint64 values, above double's 53-bit integers.
            return JsonValue::makeRawNumber(
                std::to_string(9007199254740993ull +
                               rng() % 1000000000ull));
          default:
            return JsonValue::makeRawNumber("18446744073709551615");
        }
      }
      case 3: {
        std::string s;
        const int len = pick(12);
        for (int i = 0; i < len; ++i) {
            // Includes controls, quotes, backslashes, and high bytes.
            s += static_cast<char>(rng() % 256);
        }
        return JsonValue::makeString(std::move(s));
      }
      case 4: {
        std::string s = "plain";
        s += std::to_string(pick(100));
        return JsonValue::makeString(std::move(s));
      }
      case 5: {
        std::vector<JsonValue> elems;
        const int len = pick(4);
        for (int i = 0; i < len; ++i)
            elems.push_back(genValue(rng, depth + 1));
        return JsonValue::makeArray(std::move(elems));
      }
      default: {
        std::vector<JsonValue::Member> members;
        const int len = pick(4);
        for (int i = 0; i < len; ++i) {
            members.emplace_back("k" + std::to_string(i),
                                 genValue(rng, depth + 1));
        }
        return JsonValue::makeObject(std::move(members));
      }
    }
}

std::string
nested(int depth, const std::string &leaf)
{
    std::string s;
    for (int i = 0; i < depth; ++i)
        s += '[';
    s += leaf;
    for (int i = 0; i < depth; ++i)
        s += ']';
    return s;
}

} // namespace

TEST(JsonRoundTrip, GeneratedDocumentsSurviveDumpParse)
{
    std::mt19937 rng(20260806);
    for (int i = 0; i < 500; ++i) {
        JsonValue doc = genValue(rng, 0);
        const std::string text = doc.dump();

        JsonValue back;
        std::string err;
        ASSERT_TRUE(JsonValue::parse(text, back, err))
            << "iteration " << i << ": " << err << "\n" << text;
        EXPECT_TRUE(back == doc) << "iteration " << i << "\n" << text;
        // dump() is a fixed point: dumping the reparse is identical.
        EXPECT_EQ(back.dump(), text) << "iteration " << i;
    }
}

TEST(JsonRoundTrip, BigUint64TokensAreLossless)
{
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(
        R"({"max": 18446744073709551615, "odd": 9007199254740993})", doc,
        err))
        << err;
    EXPECT_EQ(doc.find("max")->numberToken(), "18446744073709551615");
    EXPECT_EQ(doc.find("odd")->numberToken(), "9007199254740993");
    EXPECT_EQ(doc.dump(),
              R"({"max":18446744073709551615,"odd":9007199254740993})");
}

TEST(JsonRoundTrip, EscapeSequencesRoundTrip)
{
    const std::string raw = std::string("a\"b\\c\n\t\r\b\f") +
                            std::string(1, '\0') + "\x01 end";
    JsonValue doc = JsonValue::makeString(raw);
    JsonValue back;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(doc.dump(), back, err)) << err;
    EXPECT_EQ(back.str(), raw);

    // The stats writer's escaping parses back to the same string too.
    const std::string viaWriter =
        "\"" + stats::JsonWriter::escape(raw) + "\"";
    ASSERT_TRUE(JsonValue::parse(viaWriter, back, err)) << err;
    EXPECT_EQ(back.str(), raw);
}

TEST(JsonRoundTrip, DepthCapIsExactAndFatalFree)
{
    JsonValue doc;
    std::string err;
    EXPECT_TRUE(JsonValue::parse(
        nested(static_cast<int>(JsonValue::kMaxDepth), "1"), doc, err))
        << err;
    EXPECT_FALSE(JsonValue::parse(
        nested(static_cast<int>(JsonValue::kMaxDepth) + 1, "1"), doc,
        err));
    EXPECT_NE(err.find("nesting"), std::string::npos) << err;
}

TEST(JsonRoundTrip, StrictNumberGrammar)
{
    JsonValue doc;
    std::string err;
    EXPECT_FALSE(JsonValue::parse("+1", doc, err));
    EXPECT_FALSE(JsonValue::parse("01", doc, err));
    EXPECT_FALSE(JsonValue::parse("1.", doc, err));
    EXPECT_FALSE(JsonValue::parse(".5", doc, err));
    EXPECT_FALSE(JsonValue::parse("1e", doc, err));
    EXPECT_FALSE(JsonValue::parse("1e+", doc, err));
    EXPECT_FALSE(JsonValue::parse("--1", doc, err));
    EXPECT_TRUE(JsonValue::parse("-0.5e+10", doc, err)) << err;
    EXPECT_TRUE(JsonValue::parse("0", doc, err)) << err;

    EXPECT_THROW(JsonValue::makeRawNumber("+1"), std::invalid_argument);
    EXPECT_THROW(JsonValue::makeRawNumber("1x"), std::invalid_argument);
}

TEST(JsonRoundTrip, CommittedCorpus)
{
    namespace fs = std::filesystem;
    unsigned ok = 0, bad = 0;
    for (const auto &entry : fs::directory_iterator(CELLBW_JSON_CORPUS)) {
        const std::string name = entry.path().filename().string();
        std::string text;
        ASSERT_TRUE(util::readFile(entry.path().string(), text)) << name;

        JsonValue doc;
        std::string err;
        const bool parsed = JsonValue::parse(text, doc, err);
        if (name.rfind("ok_", 0) == 0) {
            EXPECT_TRUE(parsed) << name << ": " << err;
            if (parsed) {
                // Every accepted corpus document must round-trip.
                JsonValue back;
                ASSERT_TRUE(JsonValue::parse(doc.dump(), back, err))
                    << name << ": " << err;
                EXPECT_TRUE(back == doc) << name;
            }
            ++ok;
        } else if (name.rfind("bad_", 0) == 0) {
            EXPECT_FALSE(parsed) << name << " parsed unexpectedly";
            EXPECT_FALSE(err.empty()) << name;
            ++bad;
        } else {
            FAIL() << "corpus file " << name
                   << " must start with ok_ or bad_";
        }
    }
    EXPECT_GE(ok, 3u);
    EXPECT_GE(bad, 4u);
}
