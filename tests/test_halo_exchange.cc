/** @file Tests for the cluster halo-exchange stencil: degenerate
 *        single-chip behaviour, checked-mode cross-verification, exact
 *        cross-chip byte accounting, placement policies, --sim-jobs
 *        identity, and the locality-aware offload dispatcher. */

#include <gtest/gtest.h>

#include "core/halo.hh"
#include "runtime/offload.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

cell::CellConfig
clusterConfig(unsigned chips)
{
    cell::CellConfig cfg;
    cfg.numChips = chips;
    cfg.numSpes = 8 * chips;
    cfg.affinity = cell::AffinityPolicy::Linear;
    return cfg;
}

core::HaloConfig
smallHalo(cell::TaskPlacement placement)
{
    core::HaloConfig hc;
    hc.slabBytes = 128 * util::KiB;
    hc.haloBytes = 4 * util::KiB;
    hc.steps = 2;
    hc.placement = placement;
    return hc;
}

std::uint64_t
totalLinkBytes(cell::CellSystem &sys)
{
    auto &links = sys.memory().links();
    std::uint64_t total = 0;
    for (unsigned l = 0; l < links.numLinks(); ++l) {
        total += links.link(l).bytesSent(mem::IoLink::Dir::Outbound);
        total += links.link(l).bytesSent(mem::IoLink::Dir::Inbound);
    }
    return total;
}

} // namespace

TEST(HaloExchange, SingleChipIsDegenerate)
{
    // With one chip both placement policies produce the same rank-to-SPE
    // map, the single-queue engine runs (no partitioned engine), and no
    // byte ever touches a link.
    double gbps[2];
    int i = 0;
    for (auto p : {cell::TaskPlacement::Locality,
                   cell::TaskPlacement::RoundRobin}) {
        cell::CellSystem sys(clusterConfig(1), 42);
        EXPECT_EQ(sys.engine(), nullptr);
        auto res = core::runClusterHalo(sys, smallHalo(p));
        EXPECT_EQ(totalLinkBytes(sys), 0u);
        EXPECT_EQ(res.ranks, 2u);
        gbps[i++] = res.gbps;
    }
    ASSERT_GT(gbps[0], 0.0);
    EXPECT_EQ(gbps[0], gbps[1]);
}

TEST(HaloExchange, ByteAccountingAddsUp)
{
    cell::CellSystem sys(clusterConfig(2), 42);
    auto hc = smallHalo(cell::TaskPlacement::Locality);
    auto res = core::runClusterHalo(sys, hc);
    // 2 chips x 2 ranks, 2 steps: each rank-step GETs two halos and
    // moves the interior twice (GET + PUT) plus the boundary PUT.
    const std::uint64_t rankSteps = 4ull * 2;
    EXPECT_EQ(res.haloBytes, rankSteps * 2 * hc.haloBytes);
    EXPECT_EQ(res.bulkBytes,
              rankSteps * (2 * (hc.slabBytes - 2 * hc.haloBytes) +
                           2 * hc.haloBytes));
    EXPECT_GT(res.seconds, 0.0);
    EXPECT_NEAR(res.gbps,
                (res.haloBytes + res.bulkBytes) / res.seconds / 1e9,
                1e-6 * res.gbps);
}

TEST(HaloExchange, OnlyHalosCrossUnderLocality)
{
    // Ring 0-1-2-3 over 2 chips: the two chip-boundary cuts (1<->2 and
    // 3<->0) each carry one halo GET per side per step — four halo
    // payloads cross the IOIF per step, and nothing else does.
    cell::CellSystem sys(clusterConfig(2), 42);
    auto hc = smallHalo(cell::TaskPlacement::Locality);
    core::runClusterHalo(sys, hc);
    const std::uint64_t expected = 4ull * hc.haloBytes * hc.steps;
    EXPECT_EQ(totalLinkBytes(sys), expected);
    // The crossings split evenly between the lanes.
    auto &ioif = sys.memory().ioLink();
    EXPECT_EQ(ioif.bytesSent(mem::IoLink::Dir::Outbound), expected / 2);
    EXPECT_EQ(ioif.bytesSent(mem::IoLink::Dir::Inbound), expected / 2);
}

TEST(HaloExchange, RoundRobinPushesInteriorAcrossLinks)
{
    cell::CellSystem loc(clusterConfig(4), 42);
    auto res_loc =
        core::runClusterHalo(loc, smallHalo(cell::TaskPlacement::Locality));
    cell::CellSystem rr(clusterConfig(4), 42);
    auto res_rr = core::runClusterHalo(
        rr, smallHalo(cell::TaskPlacement::RoundRobin));

    // Chip-blind placement drags interior streams over the links and
    // pays for it in bandwidth.
    EXPECT_GT(totalLinkBytes(rr), totalLinkBytes(loc));
    EXPECT_GT(res_loc.gbps, res_rr.gbps);
}

TEST(HaloExchange, CheckedModeSeesNoDivergence)
{
    auto cfg = clusterConfig(2);
    cfg.verify = true;
    cell::CellSystem sys(cfg, 42);
    core::runClusterHalo(sys, smallHalo(cell::TaskPlacement::Locality));
    EXPECT_GT(sys.verifyStats().bytesChecked, 0u);
    EXPECT_EQ(sys.verifyStats().divergences, 0u);
}

TEST(HaloExchange, SimJobsNeverChangesTheAnswer)
{
    auto run = [](unsigned simJobs, cell::TaskPlacement p) {
        auto cfg = clusterConfig(4);
        cfg.simJobs = simJobs;
        cell::CellSystem sys(cfg, 7);
        return core::runClusterHalo(sys, smallHalo(p)).gbps;
    };
    for (auto p : {cell::TaskPlacement::Locality,
                   cell::TaskPlacement::RoundRobin}) {
        const double serial = run(1, p);
        ASSERT_GT(serial, 0.0);
        EXPECT_EQ(serial, run(2, p));
        EXPECT_EQ(serial, run(4, p));
    }
}

TEST(HaloExchange, DeterministicPerSeed)
{
    auto once = [] {
        cell::CellSystem sys(clusterConfig(2), 11);
        return core::runClusterHalo(
                   sys, smallHalo(cell::TaskPlacement::RoundRobin))
            .gbps;
    };
    EXPECT_EQ(once(), once());
}

TEST(HaloExchange, RequiresLinearAffinityOverAllSlots)
{
    auto cfg = clusterConfig(2);
    cfg.affinity = cell::AffinityPolicy::Random;
    cell::CellSystem random(cfg, 1);
    EXPECT_THROW(core::runClusterHalo(
                     random, smallHalo(cell::TaskPlacement::Locality)),
                 sim::FatalError);

    auto few = clusterConfig(2);
    few.numSpes = 8;    // not every slot active
    cell::CellSystem partial(few, 1);
    EXPECT_THROW(core::runClusterHalo(
                     partial, smallHalo(cell::TaskPlacement::Locality)),
                 sim::FatalError);
}

TEST(OffloadPlacement, LocalityRunsTasksOnTheirHomeChip)
{
    auto cfg = clusterConfig(2);
    cfg.placement = cell::TaskPlacement::Locality;
    cell::CellSystem sys(cfg, 1);

    runtime::OffloadParams params;
    params.workers = 16;
    runtime::OffloadRuntime rt(sys, params);
    // Four tasks per chip, inputs pinned to that chip's bank.
    for (unsigned chip = 0; chip < 2; ++chip) {
        for (unsigned t = 0; t < 4; ++t) {
            EffAddr in = sys.malloc(64 * util::KiB,
                                    mem::NumaPolicy::onBank(chip));
            EffAddr out = sys.malloc(64 * util::KiB,
                                     mem::NumaPolicy::onBank(chip));
            rt.submit({in, out, 64 * util::KiB, 64,
                       [](std::uint8_t *, std::uint32_t) {}});
        }
    }
    rt.start();
    sys.run();

    EXPECT_EQ(rt.stats().tasksCompleted, 8u);
    // Every task ran on a worker of its input's home chip, so the
    // links carried no task payload at all.
    EXPECT_EQ(totalLinkBytes(sys), 0u);
    for (unsigned w = 0; w < 16; ++w) {
        // Chip 0 owns tasks 0-3, chip 1 owns tasks 4-7; the per-chip
        // cursor rotates over that chip's eight workers.
        unsigned expected = (w % 8) < 4 ? 1u : 0u;
        EXPECT_EQ(rt.stats().worker[w].tasks, expected) << "worker " << w;
    }
}

TEST(OffloadPlacement, RoundRobinKeepsTheClassicDispatch)
{
    cell::CellSystem sys(clusterConfig(2), 1);
    runtime::OffloadParams params;
    params.workers = 3;
    params.placement = cell::TaskPlacement::RoundRobin;
    runtime::OffloadRuntime rt(sys, params);
    for (unsigned t = 0; t < 7; ++t) {
        EffAddr in = sys.malloc(16 * util::KiB);
        EffAddr out = sys.malloc(16 * util::KiB);
        rt.submit({in, out, 16 * util::KiB, 64,
                   [](std::uint8_t *, std::uint32_t) {}});
    }
    rt.start();
    sys.run();
    EXPECT_EQ(rt.stats().worker[0].tasks, 3u);  // tasks 0, 3, 6
    EXPECT_EQ(rt.stats().worker[1].tasks, 2u);
    EXPECT_EQ(rt.stats().worker[2].tasks, 2u);
}
