/** @file Integration tests for the assembled CellSystem and DMA routing. */

#include <gtest/gtest.h>

#include <set>

#include "cell/cell_system.hh"
#include "test_util.hh"

using namespace cellbw;

TEST(CellSystem, BringsUpAllComponents)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    EXPECT_EQ(sys.numSpes(), 8u);
    EXPECT_EQ(sys.now(), 0u);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(sys.spe(i).logicalIndex(), i);
        EXPECT_LT(sys.physicalOf(i), 8u);
        EXPECT_TRUE(eib::isSpeRamp(sys.rampOf(i)));
    }
    EXPECT_THROW(sys.spe(8), sim::FatalError);
}

TEST(CellSystem, RandomPlacementIsAPermutationAndSeedDependent)
{
    cell::CellConfig cfg;
    cell::CellSystem a(cfg, 1);
    cell::CellSystem b(cfg, 1);
    cell::CellSystem c(cfg, 99);
    EXPECT_EQ(a.placement(), b.placement());    // same seed
    std::set<std::uint32_t> uniq(a.placement().begin(),
                                 a.placement().end());
    EXPECT_EQ(uniq.size(), 8u);
    // Different seeds almost surely give a different mapping.
    EXPECT_NE(a.placement(), c.placement());
}

TEST(CellSystem, LinearAndPairedPlacements)
{
    cell::CellConfig cfg;
    cfg.affinity = cell::AffinityPolicy::Linear;
    cell::CellSystem lin(cfg, 5);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(lin.physicalOf(i), i);

    cfg.affinity = cell::AffinityPolicy::Paired;
    cell::CellSystem par(cfg, 5);
    // Each logical pair must sit on ring-adjacent ramps.
    for (unsigned p = 0; p < 4; ++p) {
        unsigned r0 = par.rampOf(2 * p);
        unsigned r1 = par.rampOf(2 * p + 1);
        EXPECT_EQ(eib::shortestHops(r0, r1), 1u);
    }
}

TEST(CellSystem, LsEaMappingRoundTrips)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    EffAddr ea = sys.lsEa(3, 0x1234);
    EXPECT_TRUE(sys.isLsEa(ea));
    EXPECT_EQ(ea, cell::lsEaBase + 3 * cell::lsEaStride + 0x1234);
    EXPECT_FALSE(sys.isLsEa(sys.malloc(4096)));
    EXPECT_THROW(sys.lsEa(8, 0), sim::FatalError);
}

TEST(CellSystem, MallocReturnsDistinctRegions)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    EffAddr a = sys.malloc(1 * util::MiB);
    EffAddr b = sys.malloc(1 * util::MiB);
    EXPECT_GE(b, a + 1 * util::MiB);
}

namespace
{

sim::Task
getProgram(cell::CellSystem &sys, unsigned spe, LsAddr lsa, EffAddr ea,
           std::uint32_t bytes)
{
    auto &s = sys.spe(spe);
    for (std::uint32_t off = 0; off < bytes; off += 16 * 1024) {
        std::uint32_t chunk = std::min<std::uint32_t>(16 * 1024,
                                                      bytes - off);
        co_await s.mfc().queueSpace();
        s.mfc().get(lsa + off, ea + off, chunk, 0);
    }
    co_await s.mfc().tagWait(1u << 0);
}

sim::Task
putProgram(cell::CellSystem &sys, unsigned spe, LsAddr lsa, EffAddr ea,
           std::uint32_t bytes)
{
    auto &s = sys.spe(spe);
    for (std::uint32_t off = 0; off < bytes; off += 16 * 1024) {
        std::uint32_t chunk = std::min<std::uint32_t>(16 * 1024,
                                                      bytes - off);
        co_await s.mfc().queueSpace();
        s.mfc().put(lsa + off, ea + off, chunk, 1);
    }
    co_await s.mfc().tagWait(1u << 1);
}

} // namespace

TEST(CellSystem, GetFromMemoryDeliversData)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    const std::uint32_t bytes = 64 * 1024;
    EffAddr src = sys.malloc(bytes);
    for (std::uint32_t i = 0; i < bytes; i += 4096)
        sys.memory().store().fill(src + i, static_cast<std::uint8_t>(i >> 12),
                                  4096);
    sys.launch(getProgram(sys, 0, 0, src, bytes));
    sys.run();
    for (std::uint32_t i = 0; i < bytes; i += 4096)
        EXPECT_EQ(sys.spe(0).ls().byteAt(i), static_cast<std::uint8_t>(i >> 12));
}

TEST(CellSystem, PutToMemoryDeliversData)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    const std::uint32_t bytes = 32 * 1024;
    EffAddr dst = sys.malloc(bytes);
    sys.spe(2).ls().fill(0, 0xEE, bytes);
    sys.launch(putProgram(sys, 2, 0, dst, bytes));
    sys.run();
    EXPECT_EQ(sys.memory().store().byteAt(dst), 0xEE);
    EXPECT_EQ(sys.memory().store().byteAt(dst + bytes - 1), 0xEE);
}

TEST(CellSystem, SpeToSpeGetAndPut)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 7);
    const std::uint32_t bytes = 16 * 1024;
    // SPE1's LS holds a pattern; SPE0 GETs it.
    sys.spe(1).ls().fill(0x8000, 0x3C, bytes);
    sys.launch(getProgram(sys, 0, 0, sys.lsEa(1, 0x8000), bytes));
    sys.run();
    EXPECT_EQ(sys.spe(0).ls().byteAt(0), 0x3C);
    EXPECT_EQ(sys.spe(0).ls().byteAt(bytes - 1), 0x3C);

    // SPE0 PUTs its own pattern into SPE1.
    sys.spe(0).ls().fill(0x20000, 0x99, bytes);
    sys.launch(putProgram(sys, 0, 0x20000, sys.lsEa(1, 0x30000), bytes));
    sys.run();
    EXPECT_EQ(sys.spe(1).ls().byteAt(0x30000), 0x99);
    EXPECT_EQ(sys.spe(1).ls().byteAt(0x30000 + bytes - 1), 0x99);
}

TEST(CellSystem, DmaToOwnLsApertureIsFatal)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    sys.launch(getProgram(sys, 0, 0, sys.lsEa(0, 0x8000), 128));
    EXPECT_THROW(sys.run(), sim::FatalError);
}

TEST(CellSystem, DeadlockedProgramIsReported)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    auto stuck = [](cell::CellSystem &s) -> sim::Task {
        // Nobody ever writes this mailbox.
        co_await s.spe(0).inboundMailbox().read();
    };
    sys.launch(stuck(sys));
    EXPECT_THROW(sys.run(), sim::FatalError);
}

TEST(CellSystem, ProgramExceptionsPropagateFromRun)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    auto bad = [](cell::CellSystem &s) -> sim::Task {
        co_await sim::Delay{s.eventQueue(), 5};
        // An out-of-range tag raises FatalError inside the coroutine
        // (a validation failure would merely latch a fault record).
        s.spe(0).mfc().get(0, 0x10000, 128, 99);
    };
    sys.launch(bad(sys));
    EXPECT_THROW(sys.run(), sim::FatalError);
}

TEST(CellSystem, ReducedSpeCountWorks)
{
    cell::CellConfig cfg;
    cfg.numSpes = 2;
    cell::CellSystem sys(cfg, 1);
    EXPECT_EQ(sys.numSpes(), 2u);
    EXPECT_THROW(sys.spe(2), sim::FatalError);
    EXPECT_THROW(sys.lsEa(2, 0), sim::FatalError);
}

TEST(CellSystem, SimulatedTimeAdvancesWithTransfers)
{
    cell::CellConfig cfg;
    cell::CellSystem sys(cfg, 1);
    EffAddr src = sys.malloc(64 * 1024);
    sys.launch(getProgram(sys, 0, 0, src, 64 * 1024));
    sys.run();
    // 64 KiB at ~10 GB/s is ~6.5 us.
    EXPECT_GT(sys.seconds(), 3e-6);
    EXPECT_LT(sys.seconds(), 3e-5);
}
