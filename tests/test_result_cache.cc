/** @file Tests for the content-addressed result cache. */

#include <gtest/gtest.h>

#include <chrono>
#include <clocale>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment_context.hh"
#include "core/result_cache.hh"
#include "stats/json_writer.hh"

using namespace cellbw;

namespace
{

/** Parse @p args into a fresh context and return (material, key). */
std::pair<std::string, std::string>
keyOf(const std::vector<std::string> &args)
{
    core::ExperimentContext ctx("cache_test", "d");
    std::vector<const char *> argv{"prog"};
    for (const auto &a : args)
        argv.push_back(a.c_str());
    EXPECT_TRUE(ctx.parse(static_cast<int>(argv.size()), argv.data()));
    return {ctx.cacheMaterial(), ctx.cacheKey()};
}

std::string
tempRoot(const char *name)
{
    // A fresh root every time: temp dirs survive across test runs.
    std::string root =
        testing::TempDir() + "cellbw_cache_test_" + name;
    std::filesystem::remove_all(root);
    return root;
}

} // namespace

TEST(ResultCache, KeyIsStable)
{
    auto a = keyOf({"--quick", "--runs", "2"});
    auto b = keyOf({"--quick", "--runs", "2"});
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(ResultCache, CanonicalizationUnifiesSpellings)
{
    // 4M and 4MiB parse to the same byte count; the material uses the
    // parsed form, so the keys agree.
    auto a = keyOf({"--bytes-per-spe", "4M"});
    auto b = keyOf({"--bytes-per-spe", "4MiB"});
    EXPECT_EQ(a.second, b.second);
}

TEST(ResultCache, ResultNeutralFlagsDoNotChangeKey)
{
    auto base = keyOf({"--quick"});
    EXPECT_EQ(keyOf({"--quick", "--jobs", "7"}).second, base.second);
    EXPECT_EQ(keyOf({"--quick", "--csv"}).second, base.second);
    EXPECT_EQ(keyOf({"--quick", "--json", "x.json"}).second,
              base.second);
}

TEST(ResultCache, ResultAffectingFlagsChangeKey)
{
    auto base = keyOf({"--quick"});
    EXPECT_NE(keyOf({"--quick", "--seed", "99"}).second, base.second);
    EXPECT_NE(keyOf({"--quick", "--runs", "2"}).second, base.second);
    EXPECT_NE(keyOf({"--quick", "--spes", "4"}).second, base.second);
    EXPECT_NE(keyOf({}).second, base.second);
}

TEST(ResultCache, KeyDependsOnExperimentName)
{
    core::ExperimentContext a("exp_a", "d"), b("exp_b", "d");
    const char *argv[] = {"prog", "--quick"};
    ASSERT_TRUE(a.parse(2, argv));
    ASSERT_TRUE(b.parse(2, argv));
    EXPECT_NE(a.cacheKey(), b.cacheKey());
}

TEST(ResultCache, SimAndNativeBackendsNeverShareAKey)
{
    // The backend is canonical config: the same experiment name with
    // identical flags must hash differently per backend, so a native
    // measurement can never collide with (or replay as) a sim result.
    core::ExperimentContext sim("exp_x", "d", core::Backend::Sim);
    core::ExperimentContext nat("exp_x", "d", core::Backend::Native);
    const char *argv[] = {"prog", "--quick", "--warmup", "0"};
    ASSERT_TRUE(sim.parse(4, argv));
    ASSERT_TRUE(nat.parse(4, argv));
    EXPECT_NE(sim.cacheKey(), nat.cacheKey());
    EXPECT_NE(sim.cacheMaterial(), nat.cacheMaterial());
    EXPECT_NE(sim.cacheMaterial().find("backend=sim"),
              std::string::npos);
    EXPECT_NE(nat.cacheMaterial().find("backend=native"),
              std::string::npos);
}

TEST(ResultCache, MaterialNamesSaltAndExperiment)
{
    auto [material, key] = keyOf({"--quick"});
    EXPECT_NE(material.find(core::ResultCache::kSalt),
              std::string::npos);
    EXPECT_NE(material.find("experiment cache_test"),
              std::string::npos);
    EXPECT_EQ(key, core::ResultCache::hashKey(material));
}

TEST(ResultCache, StoreThenLoadIsBitIdentical)
{
    core::ResultCache cache(tempRoot("roundtrip"));
    const std::string material = "salt x\nexperiment e\nopt runs=2\n";
    const std::string key = core::ResultCache::hashKey(material);
    const std::string report =
        "{\"schema\":\"cellbw-bench-v3\",\"bench\":\"e\"}\n";

    EXPECT_FALSE(cache.load(key, material).has_value());
    ASSERT_TRUE(cache.store(key, material, report));
    auto hit = cache.load(key, material);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, report);
}

TEST(ResultCache, MaterialMismatchIsAMiss)
{
    core::ResultCache cache(tempRoot("mismatch"));
    const std::string material = "salt x\nexperiment e\n";
    const std::string key = core::ResultCache::hashKey(material);
    const std::string report =
        "{\"schema\":\"cellbw-bench-v3\",\"bench\":\"e\"}\n";
    ASSERT_TRUE(cache.store(key, material, report));
    // Same key, different material: a collision (or corrupted entry)
    // must degrade to a miss, never a wrong replay.
    EXPECT_FALSE(cache.load(key, "salt y\nexperiment e\n").has_value());
    EXPECT_TRUE(cache.load(key, material).has_value());
}

TEST(ResultCache, DamagedReportBytesAreAMiss)
{
    const std::string root = tempRoot("damaged");
    core::ResultCache cache(root);
    const std::string material = "salt x\nexperiment e\n";
    const std::string key = core::ResultCache::hashKey(material);
    const std::string report =
        "{\"schema\":\"cellbw-bench-v3\",\"bench\":\"e\"}\n";
    ASSERT_TRUE(cache.store(key, material, report));
    ASSERT_TRUE(cache.load(key, material).has_value());

    // A torn write leaves a valid .key beside truncated JSON; replay
    // would poison the output tree, so load() must miss instead.
    const std::string path =
        root + "/" + key.substr(0, 2) + "/" + key + ".json";
    std::ofstream(path, std::ios::trunc) << report.substr(0, 10);
    EXPECT_FALSE(cache.load(key, material).has_value());

    // Valid JSON of the wrong schema is equally untrustworthy.
    std::ofstream(path, std::ios::trunc) << "{\"schema\":\"other\"}";
    EXPECT_FALSE(cache.load(key, material).has_value());

    // Re-storing repairs the entry.
    ASSERT_TRUE(cache.store(key, material, report));
    EXPECT_TRUE(cache.load(key, material).has_value());
}

namespace
{

/** Store a minimal valid entry for @p name; returns (key, material). */
std::pair<std::string, std::string>
putEntry(const core::ResultCache &cache, const std::string &name)
{
    const std::string material = "salt x\nexperiment " + name + "\n";
    const std::string key = core::ResultCache::hashKey(material);
    const std::string report =
        "{\"schema\":\"cellbw-bench-v3\",\"bench\":\"" + name + "\"}\n";
    EXPECT_TRUE(cache.store(key, material, report));
    return {key, material};
}

/** Backdate an entry's recency by @p age hours. */
void
ageEntry(const core::ResultCache &cache, const std::string &key,
         int age)
{
    std::filesystem::last_write_time(
        cache.root() + "/" + key.substr(0, 2) + "/" + key + ".json",
        std::filesystem::file_time_type::clock::now() -
            std::chrono::hours(age));
}

} // namespace

TEST(ResultCache, PruneEvictsLeastRecentlyUsedFirst)
{
    core::ResultCache cache(tempRoot("prune_lru"));
    auto [ka, ma] = putEntry(cache, "a");
    auto [kb, mb] = putEntry(cache, "b");
    auto [kc, mc] = putEntry(cache, "c");
    // Stamp distinct ages; store order says nothing about recency.
    ageEntry(cache, ka, 3);
    ageEntry(cache, kb, 2);
    ageEntry(cache, kc, 1);

    // A budget above the total is a pure scan.
    auto scan = cache.prune(std::uint64_t(1) << 40);
    EXPECT_EQ(scan.entries, 3u);
    EXPECT_GT(scan.bytes, 0u);
    EXPECT_EQ(scan.evicted, 0u);
    EXPECT_TRUE(cache.load(ka, ma).has_value());

    // Room for one entry: the two oldest go, newest survives.
    ageEntry(cache, ka, 3);     // load() above refreshed a's recency
    auto st = cache.prune(scan.bytes / 3);
    EXPECT_EQ(st.evicted, 2u);
    EXPECT_EQ(st.bytes - st.evictedBytes, st.bytes / 3);
    EXPECT_FALSE(cache.load(ka, ma).has_value());
    EXPECT_FALSE(cache.load(kb, mb).has_value());
    EXPECT_TRUE(cache.load(kc, mc).has_value());
}

TEST(ResultCache, LoadRefreshesRecencySoHitsSurvivePrune)
{
    core::ResultCache cache(tempRoot("prune_touch"));
    auto [ka, ma] = putEntry(cache, "a");
    auto [kb, mb] = putEntry(cache, "b");
    ageEntry(cache, ka, 2);
    ageEntry(cache, kb, 3);
    // b is older, but a hit makes it the most recently used.
    ASSERT_TRUE(cache.load(kb, mb).has_value());

    auto scan = cache.prune(std::uint64_t(1) << 40);
    ASSERT_EQ(scan.entries, 2u);
    auto st = cache.prune(scan.bytes / 2);
    EXPECT_EQ(st.evicted, 1u);
    EXPECT_FALSE(cache.load(ka, ma).has_value());
    EXPECT_TRUE(cache.load(kb, mb).has_value());
}

TEST(ResultCache, PruneToZeroSparesForeignFiles)
{
    const std::string root = tempRoot("prune_zero");
    core::ResultCache cache(root);
    auto [ka, ma] = putEntry(cache, "a");
    // Files that are not (json, key) pairs are not cache entries.
    std::ofstream(root + "/README") << "not an entry\n";
    std::ofstream(root + "/" + ka.substr(0, 2) + "/orphan.json")
        << "{}\n";

    auto st = cache.prune(0);
    EXPECT_EQ(st.entries, 1u);
    EXPECT_EQ(st.evicted, 1u);
    EXPECT_EQ(st.evictedBytes, st.bytes);
    EXPECT_FALSE(cache.load(ka, ma).has_value());
    EXPECT_TRUE(std::filesystem::exists(root + "/README"));
    EXPECT_TRUE(std::filesystem::exists(root + "/" + ka.substr(0, 2) +
                                        "/orphan.json"));
}

TEST(ResultCache, MaterialUsesLocaleIndependentDoubleForm)
{
    // The canonical material must carry the from_chars/to_chars
    // rendering, never whatever LC_NUMERIC makes of %g.
    auto [material, key] = keyOf({"--cpu-ghz", "2.1"});
    EXPECT_NE(material.find("opt cpu-ghz=2.1000000000000001"),
              std::string::npos)
        << material;
}

namespace
{

/** RAII LC_NUMERIC switch; restores on scope exit. */
class ScopedNumericLocale
{
  public:
    ScopedNumericLocale()
    {
        const char *prev = std::setlocale(LC_NUMERIC, nullptr);
        saved_ = prev ? prev : "C";
        // Whichever comma-decimal locale this host has installed.
        for (const char *name :
             {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8",
              "es_ES.UTF-8", "es_ES.utf8", "pt_BR.UTF-8", "it_IT.UTF-8",
              "de_DE", "fr_FR"}) {
            if (std::setlocale(LC_NUMERIC, name)) {
                active_ = name;
                break;
            }
        }
    }

    ~ScopedNumericLocale() { std::setlocale(LC_NUMERIC, saved_.c_str()); }

    const char *active() const { return active_; }

  private:
    std::string saved_;
    const char *active_ = nullptr;
};

} // namespace

TEST(ResultCache, KeysAreLocaleIndependent)
{
    // The regression this guards: strtod/%g follow LC_NUMERIC, so the
    // same flags hashed to a different key under a comma-decimal
    // locale — a warm cache went cold (or worse, keys collided) when
    // the daemon and the CLI ran under different locales.
    const std::vector<std::string> args = {"--cpu-ghz", "2.1",
                                           "--bank0-share", "0.35"};
    auto base = keyOf(args);

    ScopedNumericLocale loc;
    if (!loc.active())
        GTEST_SKIP() << "no comma-decimal locale installed";

    auto under = keyOf(args);
    EXPECT_EQ(under.first, base.first);
    EXPECT_EQ(under.second, base.second);

    // Report bytes must stay valid JSON with '.' decimals too.
    stats::JsonWriter w;
    w.value(2.5);
    EXPECT_EQ(w.str(), "2.5");
}

TEST(ResultCache, PruneSkipsEntriesItCannotStat)
{
    // The regression this guards: prune() summed file_size(..., ec)
    // without checking ec, and the error value uintmax_t(-1) inflated
    // the scanned total enough to evict the entire cache.
    const std::string root = tempRoot("prune_stat");
    core::ResultCache cache(root);
    auto [ka, ma] = putEntry(cache, "a");
    auto [kb, mb] = putEntry(cache, "b");

    // A .json whose sibling .key exists but is not statable as a file:
    // fs::exists() passes, fs::file_size() errors.
    std::filesystem::create_directories(root + "/zz");
    std::ofstream(root + "/zz/phantom.json")
        << "{\"schema\":\"cellbw-bench-v3\"}\n";
    std::filesystem::create_directories(root + "/zz/phantom.key");

    auto scan = cache.prune(std::uint64_t(1) << 40);
    EXPECT_EQ(scan.entries, 2u);            // phantom skipped, counted
    EXPECT_LT(scan.bytes, std::uint64_t(1) << 20);
    EXPECT_EQ(scan.evicted, 0u);            // ample budget: evict none
    EXPECT_TRUE(cache.load(ka, ma).has_value());
    EXPECT_TRUE(cache.load(kb, mb).has_value());
}

TEST(ResultCache, TornEntryIsRepairedOnLoad)
{
    const std::string root = tempRoot("torn");
    core::ResultCache cache(root);
    auto [key, material] = putEntry(cache, "a");
    const std::string base =
        root + "/" + key.substr(0, 2) + "/" + key;

    // A crash between the .key and .json writes (or a partial prune)
    // leaves the material without its report.  load() must miss AND
    // remove the stale .key so the entry does not stay half-dead.
    std::filesystem::remove(base + ".json");
    EXPECT_FALSE(cache.load(key, material).has_value());
    EXPECT_FALSE(std::filesystem::exists(base + ".key"));

    // The repaired slot accepts a fresh store.
    auto [key2, material2] = putEntry(cache, "a");
    EXPECT_EQ(key2, key);
    EXPECT_TRUE(cache.load(key, material).has_value());
}

TEST(ResultCache, HashKeyFormat)
{
    std::string k = core::ResultCache::hashKey("anything");
    EXPECT_EQ(k.size(), 16u);
    EXPECT_EQ(k.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_NE(k, core::ResultCache::hashKey("anything else"));
}
