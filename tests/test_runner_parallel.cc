/** @file Serial-vs-parallel equivalence tests for core::repeatRuns. */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/experiments.hh"
#include "core/runner.hh"
#include "stats/metrics.hh"

using namespace cellbw;

namespace
{

/** A placement-sensitive body: different seeds give different GB/s. */
double
speSpeBody(cell::CellSystem &sys)
{
    core::SpeSpeConfig sc;
    sc.numSpes = 8;
    sc.elemBytes = 4096;
    sc.bytesPerStream = 256 * util::KiB;
    return core::runSpeSpe(sys, sc);
}

} // namespace

TEST(ParallelRunner, ResolveJobsClampsAndDefaults)
{
    EXPECT_EQ(core::ParallelSpec{1}.resolveJobs(10), 1u);
    EXPECT_EQ(core::ParallelSpec{4}.resolveJobs(10), 4u);
    EXPECT_EQ(core::ParallelSpec{8}.resolveJobs(3), 3u);   // <= runs
    EXPECT_GE(core::ParallelSpec{0}.resolveJobs(16), 1u);  // auto
    EXPECT_EQ(core::ParallelSpec::serial().jobs, 1u);
}

TEST(ParallelRunner, ParallelMatchesSerialBitIdentically)
{
    cell::CellConfig cfg;
    core::RepeatSpec spec;  // the default 10 runs, seeds 42..51
    auto serial =
        core::repeatRuns(cfg, spec, speSpeBody, core::ParallelSpec{1});
    for (unsigned jobs : {2u, 4u, 10u, 16u}) {
        auto par = core::repeatRuns(cfg, spec, speSpeBody,
                                    core::ParallelSpec{jobs});
        // samples() preserves run order, so this also checks that the
        // merge happens in seed order, not completion order.
        EXPECT_EQ(serial.samples(), par.samples()) << "jobs=" << jobs;
    }
}

TEST(ParallelRunner, WarmupShiftsSeedsAndDiscardsSamples)
{
    // The warmup contract: (seed=s, warmup=w) records exactly the
    // samples of (seed=s+w, warmup=0).  That identity is what lets the
    // sim default of 0 keep every existing report byte-identical.
    cell::CellConfig cfg;
    core::RepeatSpec warm;
    warm.runs = 4;
    warm.seed = 42;
    warm.warmup = 2;
    core::RepeatSpec shifted;
    shifted.runs = 4;
    shifted.seed = 44;
    auto a = core::repeatRuns(cfg, warm, speSpeBody,
                              core::ParallelSpec{1});
    auto b = core::repeatRuns(cfg, shifted, speSpeBody,
                              core::ParallelSpec{1});
    EXPECT_EQ(a.samples(), b.samples());
    EXPECT_EQ(a.count(), 4u);
}

TEST(ParallelRunner, MetricsAccumulateIdenticallyForAnyJobCount)
{
    // The --json path: every run snapshots its counters into one
    // shared registry from whichever worker thread ran it.  The adds
    // are atomic and commutative, so the totals must not depend on
    // the job count (and TSan must see no races).
    cell::CellConfig cfg;
    core::RepeatSpec spec{6, 42};

    auto sweep = [&](unsigned jobs, stats::MetricsRegistry &reg) {
        core::RepeatSpec s = spec;
        s.metrics = &reg;
        return core::repeatRuns(cfg, s, speSpeBody,
                                core::ParallelSpec{jobs});
    };

    stats::MetricsRegistry serial, parallel;
    auto d1 = sweep(1, serial);
    auto d4 = sweep(4, parallel);
    EXPECT_EQ(d1.samples(), d4.samples());

    ASSERT_NE(serial.findCounter("sim.runs"), nullptr);
    EXPECT_EQ(serial.findCounter("sim.runs")->value(), 6u);
    auto names = serial.names();
    EXPECT_EQ(names, parallel.names());
    // EIB and MFC activity was booked, and totals match exactly.
    EXPECT_GT(serial.findCounter("eib0.packets")->value(), 0u);
    EXPECT_GT(serial.findCounter("spe0.mfc.bytes")->value(), 0u);
    for (const auto &n : names) {
        if (const auto *c = serial.findCounter(n)) {
            EXPECT_EQ(c->value(), parallel.findCounter(n)->value())
                << n;
        }
    }
}

TEST(ParallelRunner, EachRunGetsItsOwnSeedExactlyOnce)
{
    cell::CellConfig cfg;
    core::RepeatSpec spec{7, 1234};
    std::atomic<unsigned> calls{0};
    auto d = core::repeatRuns(cfg, spec, [&](cell::CellSystem &sys) {
        calls.fetch_add(1, std::memory_order_relaxed);
        // Encode the placement permutation so equal placements from
        // different seeds cannot hide a duplicated run.
        double key = 0.0;
        for (auto p : sys.placement())
            key = key * 16.0 + p;
        return key;
    }, core::ParallelSpec{4});
    EXPECT_EQ(calls.load(), 7u);
    EXPECT_EQ(d.count(), 7u);

    auto again = core::repeatRuns(cfg, spec, [](cell::CellSystem &sys) {
        double key = 0.0;
        for (auto p : sys.placement())
            key = key * 16.0 + p;
        return key;
    }, core::ParallelSpec{1});
    EXPECT_EQ(d.samples(), again.samples());
}

TEST(ParallelRunner, MoreJobsThanRunsIsFine)
{
    cell::CellConfig cfg;
    core::RepeatSpec spec{2, 7};
    auto d = core::repeatRuns(cfg, spec, speSpeBody,
                              core::ParallelSpec{64});
    EXPECT_EQ(d.count(), 2u);
}

TEST(ParallelRunner, BodyExceptionsPropagate)
{
    cell::CellConfig cfg;
    core::RepeatSpec spec{6, 3};
    auto bomb = [](cell::CellSystem &) -> double {
        throw std::runtime_error("boom");
    };
    EXPECT_THROW(core::repeatRuns(cfg, spec, bomb,
                                  core::ParallelSpec{3}),
                 std::runtime_error);
    EXPECT_THROW(core::repeatRuns(cfg, spec, bomb,
                                  core::ParallelSpec{1}),
                 std::runtime_error);
}

TEST(ParallelRunner, WorkersSeeIndependentSystems)
{
    // Each run must observe a fresh CellSystem at tick 0; leakage of
    // event-queue state across runs would advance now() before the body.
    cell::CellConfig cfg;
    core::RepeatSpec spec{8, 42};
    std::atomic<bool> sawDirtySystem{false};
    core::repeatRuns(cfg, spec, [&](cell::CellSystem &sys) {
        if (sys.now() != 0)
            sawDirtySystem.store(true);
        return speSpeBody(sys);
    }, core::ParallelSpec{4});
    EXPECT_FALSE(sawDirtySystem.load());
}
