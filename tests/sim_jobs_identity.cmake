# Proves the conservative parallel simulation is invisible in the
# output: `cellbw run` reports are byte-identical for any --sim-jobs
# value, on both the dual-chip partitioned engine (abl_dualchip) and
# the single-chip legacy path (fig08_spe_mem, where the flag is a
# no-op).  `cellbw run` never attaches the result cache, so every
# invocation below is a live simulation, not a replay.
#
# Usage:
#   cmake -DCELLBW=<cellbw> -DWORKDIR=<scratch dir> -P sim_jobs_identity.cmake

foreach(var CELLBW WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

function(run_quiet)
    execute_process(
        COMMAND "${CELLBW}" ${ARGN}
        WORKING_DIRECTORY "${WORKDIR}"
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "cellbw ${ARGN} failed (rc=${rc})\n"
                            "stdout:\n${out}\nstderr:\n${err}")
    endif()
endfunction()

function(expect_identical a b what)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${WORKDIR}/${a}" "${WORKDIR}/${b}"
        RESULT_VARIABLE differ)
    if(NOT differ EQUAL 0)
        message(FATAL_ERROR "${what}: ${a} and ${b} differ — the "
                            "--sim-jobs value leaked into the report")
    endif()
endfunction()

# --- dual-chip: the partitioned engine under 1, 2 and 4 workers -----
foreach(jobs 1 2 4)
    run_quiet(run abl_dualchip --quick --sim-jobs ${jobs}
              --json dual_j${jobs}.json)
endforeach()
expect_identical(dual_j1.json dual_j2.json "abl_dualchip")
expect_identical(dual_j1.json dual_j4.json "abl_dualchip")

# --- cluster: four partitions (2 blades) under 1, 2 and 4 workers ---
foreach(jobs 1 2 4)
    run_quiet(run cluster_halo --quick --sim-jobs ${jobs}
              --json cluster_j${jobs}.json)
endforeach()
expect_identical(cluster_j1.json cluster_j2.json "cluster_halo")
expect_identical(cluster_j1.json cluster_j4.json "cluster_halo")

# --- single-chip: --sim-jobs must be a no-op on the legacy path -----
foreach(jobs 1 4)
    run_quiet(run fig08_spe_mem --quick --sim-jobs ${jobs}
              --json fig08_j${jobs}.json)
endforeach()
expect_identical(fig08_j1.json fig08_j4.json "fig08_spe_mem")

message(STATUS "--sim-jobs is byte-invisible in reports")
