/** @file Unit tests for coroutine tasks, delays and signals. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/task.hh"

using namespace cellbw;

namespace
{

sim::Task
delayTwice(sim::EventQueue &eq, Tick d, Tick *finished_at)
{
    co_await sim::Delay{eq, d};
    co_await sim::Delay{eq, d};
    *finished_at = eq.now();
}

sim::Task
throwing(sim::EventQueue &eq)
{
    co_await sim::Delay{eq, 1};
    throw std::runtime_error("boom");
}

sim::Task
parent(sim::EventQueue &eq, Tick *child_done, Tick *parent_done)
{
    // Awaiting an unstarted child starts it.
    sim::Task child = delayTwice(eq, 5, child_done);
    co_await child;
    *parent_done = eq.now();
}

sim::Task
waitOn(sim::Signal &sig, int *wakes)
{
    co_await sig.wait();
    ++*wakes;
    co_await sig.wait();
    ++*wakes;
}

} // namespace

TEST(Task, LazyUntilStarted)
{
    sim::EventQueue eq;
    Tick done_at = 0;
    sim::Task t = delayTwice(eq, 10, &done_at);
    EXPECT_TRUE(t.valid());
    EXPECT_FALSE(t.done());
    EXPECT_TRUE(eq.empty());    // nothing scheduled yet

    t.start();
    EXPECT_FALSE(t.done());
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(done_at, 20u);
}

TEST(Task, StartIsIdempotent)
{
    sim::EventQueue eq;
    Tick done_at = 0;
    sim::Task t = delayTwice(eq, 1, &done_at);
    t.start();
    t.start();
    eq.run();
    EXPECT_EQ(done_at, 2u);
}

TEST(Task, DefaultConstructedIsInvalid)
{
    sim::Task t;
    EXPECT_FALSE(t.valid());
    EXPECT_FALSE(t.done());
    EXPECT_FALSE(t.failed());
    t.start();      // no-op, must not crash
    t.rethrow();    // no-op
}

TEST(Task, MoveTransfersOwnership)
{
    sim::EventQueue eq;
    Tick done_at = 0;
    sim::Task a = delayTwice(eq, 1, &done_at);
    sim::Task b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    b.start();
    eq.run();
    EXPECT_TRUE(b.done());
}

TEST(Task, ExceptionIsCapturedAndRethrown)
{
    sim::EventQueue eq;
    sim::Task t = throwing(eq);
    t.start();
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_TRUE(t.failed());
    EXPECT_THROW(t.rethrow(), std::runtime_error);
}

TEST(Task, AwaitingAChildTaskStartsAndJoinsIt)
{
    sim::EventQueue eq;
    Tick child_done = 0;
    Tick parent_done = 0;
    sim::Task p = parent(eq, &child_done, &parent_done);
    p.start();
    eq.run();
    EXPECT_EQ(child_done, 10u);
    EXPECT_EQ(parent_done, 10u);
    EXPECT_TRUE(p.done());
}

TEST(Task, AwaitingACompletedTaskDoesNotSuspend)
{
    sim::EventQueue eq;
    Tick done_at = 0;
    auto outer_fn = [&]() -> sim::Task {
        sim::Task child = delayTwice(eq, 1, &done_at);
        co_await child;     // runs child to completion
        co_await child;     // already done: must not hang
    };
    sim::Task outer = outer_fn();
    outer.start();
    eq.run();
    EXPECT_TRUE(outer.done());
}

TEST(WaitUntil, NoSuspensionWhenTimePassed)
{
    sim::EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    bool ran = false;
    auto t_fn = [&]() -> sim::Task {
        co_await sim::WaitUntil{eq, 10};    // already past
        ran = true;
    };
    sim::Task t = t_fn();
    t.start();
    EXPECT_TRUE(ran);   // completed synchronously
    EXPECT_TRUE(t.done());
}

TEST(Signal, NotifyWakesAllWaiters)
{
    sim::EventQueue eq;
    sim::Signal sig(eq);
    int wakes = 0;
    sim::Task a = waitOn(sig, &wakes);
    sim::Task b = waitOn(sig, &wakes);
    a.start();
    b.start();
    EXPECT_EQ(sig.waiterCount(), 2u);

    sig.notifyAll();
    eq.run();
    EXPECT_EQ(wakes, 2);            // both woke once
    EXPECT_EQ(sig.waiterCount(), 2u);   // and wait again

    sig.notifyAll();
    eq.run();
    EXPECT_EQ(wakes, 4);
    EXPECT_TRUE(a.done());
    EXPECT_TRUE(b.done());
}

TEST(Signal, NotifyWithNoWaitersIsNoop)
{
    sim::EventQueue eq;
    sim::Signal sig(eq);
    sig.notifyAll();
    EXPECT_TRUE(eq.empty());
}

TEST(Signal, WaiterAddedAfterNotifyIsNotWoken)
{
    sim::EventQueue eq;
    sim::Signal sig(eq);
    int wakes = 0;
    sig.notifyAll();
    sim::Task t = waitOn(sig, &wakes);
    t.start();
    eq.run();
    EXPECT_EQ(wakes, 0);
    // Clean up: wake it twice so the task can finish before teardown.
    sig.notifyAll();
    eq.run();
    sig.notifyAll();
    eq.run();
    EXPECT_TRUE(t.done());
}
