/** @file Tests for the DMA workload generators. */

#include <gtest/gtest.h>

#include "core/dma_workloads.hh"
#include "test_util.hh"

using namespace cellbw;

namespace
{

cell::CellConfig
cfg()
{
    return cell::CellConfig{};
}

} // namespace

TEST(Workloads, CopyStreamMovesMemoryElemMode)
{
    cell::CellSystem sys(cfg(), 1);
    const std::uint64_t bytes = 256 * 1024;
    EffAddr src = sys.malloc(bytes);
    EffAddr dst = sys.malloc(bytes);
    for (std::uint64_t i = 0; i < bytes; i += 4096) {
        sys.memory().store().fill(src + i,
                                  static_cast<std::uint8_t>(0x40 + (i >> 12)),
                                  4096);
    }
    LsAddr ls = sys.spe(0).lsAlloc(128 * util::KiB);
    sys.launch(core::dmaCopyStream(sys, 0, src, dst, bytes, 16 * 1024,
                                   false, ls, 4));
    sys.run();
    for (std::uint64_t i = 0; i < bytes; i += 4096) {
        EXPECT_EQ(sys.memory().store().byteAt(dst + i),
                  static_cast<std::uint8_t>(0x40 + (i >> 12)));
    }
}

TEST(Workloads, CopyStreamMovesMemoryListMode)
{
    cell::CellSystem sys(cfg(), 2);
    const std::uint64_t bytes = 128 * 1024;
    EffAddr src = sys.malloc(bytes);
    EffAddr dst = sys.malloc(bytes);
    sys.memory().store().fill(src, 0x5E, bytes);
    LsAddr ls = sys.spe(0).lsAlloc(128 * util::KiB);
    sys.launch(core::dmaCopyStream(sys, 0, src, dst, bytes, 2048, true,
                                   ls, 4));
    sys.run();
    EXPECT_EQ(sys.memory().store().byteAt(dst), 0x5E);
    EXPECT_EQ(sys.memory().store().byteAt(dst + bytes - 1), 0x5E);
}

TEST(Workloads, StreamMovesExactByteCount)
{
    cell::CellSystem sys(cfg(), 1);
    const std::uint64_t bytes = 1 * util::MiB;
    core::StreamSpec spec;
    spec.speIndex = 0;
    spec.dir = spe::DmaDir::Get;
    spec.base = sys.malloc(bytes);
    spec.totalBytes = bytes;
    spec.elemBytes = 4096;
    spec.lsBase = sys.spe(0).lsAlloc(64 * util::KiB);
    sys.launch(core::dmaStream(sys, spec));
    sys.run();
    EXPECT_EQ(sys.spe(0).mfc().bytesTransferred(), bytes);
    EXPECT_EQ(sys.spe(0).mfc().tagsPendingMask(), 0u);
}

TEST(Workloads, ListStreamMovesExactByteCount)
{
    cell::CellSystem sys(cfg(), 1);
    const std::uint64_t bytes = 1 * util::MiB;
    core::StreamSpec spec;
    spec.speIndex = 0;
    spec.dir = spe::DmaDir::Put;
    spec.base = sys.malloc(bytes);
    spec.totalBytes = bytes;
    spec.elemBytes = 512;
    spec.useList = true;
    spec.lsBase = sys.spe(0).lsAlloc(64 * util::KiB);
    sys.launch(core::dmaStream(sys, spec));
    sys.run();
    EXPECT_EQ(sys.spe(0).mfc().bytesTransferred(), bytes);
    // 64 KiB region = two 32 KiB list commands in flight; each command
    // carries 64 list elements of 512 B.
    EXPECT_EQ(sys.spe(0).mfc().commandsCompleted(), bytes / (32 * 1024));
}

TEST(Workloads, MisalignedTotalIsFatal)
{
    cell::CellSystem sys(cfg(), 1);
    core::StreamSpec spec;
    spec.speIndex = 0;
    spec.dir = spe::DmaDir::Get;
    spec.base = sys.malloc(4096);
    spec.totalBytes = 1000;     // not a multiple of elem
    spec.elemBytes = 512;
    sys.launch(core::dmaStream(sys, spec));
    EXPECT_THROW(sys.run(), sim::FatalError);
}

TEST(Workloads, SyncEveryOneIsSlowerThanDelayed)
{
    auto run = [&](unsigned every) {
        cell::CellSystem sys(cfg(), 3);
        core::DuplexSpec d;
        d.speIndex = 0;
        d.getBase = sys.lsEa(1, 0);
        d.putBase = sys.lsEa(1, 64 * 1024);
        d.bytesPerDir = 512 * 1024;
        d.elemBytes = 4096;
        d.syncEvery = every;
        d.getLsBase = 128 * 1024;
        d.putLsBase = 0;
        d.lsBytes = 64 * 1024;
        d.eaWindow = 64 * 1024;
        Tick t0 = sys.now();
        sys.launch(core::dmaDuplexStream(sys, d));
        sys.run();
        return sys.now() - t0;
    };
    Tick delayed = run(0);
    Tick each = run(1);
    EXPECT_GT(each, 2 * delayed);
}

TEST(Workloads, DuplexMovesBothDirections)
{
    cell::CellSystem sys(cfg(), 4);
    core::DuplexSpec d;
    d.speIndex = 0;
    d.getBase = sys.lsEa(1, 0);
    d.putBase = sys.lsEa(1, 64 * 1024);
    d.bytesPerDir = 256 * 1024;
    d.elemBytes = 2048;
    d.getLsBase = 128 * 1024;
    d.putLsBase = 0;
    d.lsBytes = 64 * 1024;
    d.eaWindow = 64 * 1024;
    sys.launch(core::dmaDuplexStream(sys, d));
    sys.run();
    EXPECT_EQ(sys.spe(0).mfc().bytesTransferred(), 512 * 1024u);
}

TEST(Workloads, DuplexListMode)
{
    cell::CellSystem sys(cfg(), 4);
    core::DuplexSpec d;
    d.speIndex = 0;
    d.getBase = sys.lsEa(1, 0);
    d.putBase = sys.lsEa(1, 64 * 1024);
    d.bytesPerDir = 256 * 1024;
    d.elemBytes = 256;
    d.useList = true;
    d.getLsBase = 128 * 1024;
    d.putLsBase = 0;
    d.lsBytes = 64 * 1024;
    d.eaWindow = 64 * 1024;
    sys.launch(core::dmaDuplexStream(sys, d));
    sys.run();
    EXPECT_EQ(sys.spe(0).mfc().bytesTransferred(), 512 * 1024u);
}

/* --- Random-access workloads ---------------------------------------- */

TEST(Workloads, RandomUpdateMovesTwiceTheUpdateVolume)
{
    cell::CellSystem sys(cfg(), 3);
    core::RandomUpdateSpec u;
    u.speIndex = 0;
    u.tableBytes = 64 * util::KiB;
    u.tableBase = sys.malloc(u.tableBytes);
    u.updates = 200;
    u.elemBytes = 64;
    u.seed = 7;
    u.lsBase = sys.spe(0).lsAlloc(4 * util::KiB);
    sys.launch(core::randomUpdateStream(sys, u));
    sys.run();
    // Every update is one GET plus one PUT of elemBytes.
    EXPECT_EQ(sys.spe(0).mfc().bytesTransferred(), 2u * 200 * 64);
    EXPECT_EQ(sys.spe(0).mfc().tagsPendingMask(), 0u);
    EXPECT_EQ(sys.spe(0).mfc().commandsFaulted(), 0u);
}

TEST(Workloads, RandomUpdateIsAPureFunctionOfItsSeed)
{
    auto finish = [](std::uint64_t seed) {
        // The timing row-buffer model makes the finish tick depend on
        // the actual row sequence, so it discriminates address streams
        // (with the observational model every 16 B RMW costs the same
        // no matter where it lands).
        auto c = cfg();
        c.memory.bank0.rowTiming = true;
        c.memory.bank1.rowTiming = true;
        cell::CellSystem sys(c, 3);
        core::RandomUpdateSpec u;
        u.speIndex = 0;
        u.tableBytes = 64 * util::KiB;
        u.tableBase = sys.malloc(u.tableBytes);
        u.updates = 500;
        u.elemBytes = 16;
        u.seed = seed;
        u.lsBase = sys.spe(0).lsAlloc(4 * util::KiB);
        sys.launch(core::randomUpdateStream(sys, u));
        sys.run();
        return std::tuple{sys.now(), sys.memory().bank(0).rowHits(),
                          sys.memory().bank(1).rowHits()};
    };
    // Same seed, same address stream, same finish tick; a different
    // seed hits a different row sequence.
    EXPECT_EQ(finish(11), finish(11));
    EXPECT_NE(finish(11), finish(12));
}

TEST(Workloads, RandomGatherMovesExactByteCountBothModes)
{
    for (bool list : {false, true}) {
        cell::CellSystem sys(cfg(), 5);
        core::RandomGatherSpec g;
        g.speIndex = 0;
        g.tableBytes = 256 * util::KiB;
        g.tableBase = sys.malloc(g.tableBytes);
        g.totalBytes = 64 * util::KiB;
        g.elemBytes = 32;
        g.useList = list;
        g.elemsPerList = 64;
        g.seed = 9;
        g.lsBase = sys.spe(0).lsAlloc(64 * util::KiB);
        sys.launch(core::randomGatherStream(sys, g));
        sys.run();
        EXPECT_EQ(sys.spe(0).mfc().bytesTransferred(), 64u * util::KiB);
        EXPECT_EQ(sys.spe(0).mfc().tagsPendingMask(), 0u);
        EXPECT_EQ(sys.spe(0).mfc().commandsFaulted(), 0u);
    }
}

TEST(Workloads, RandomGatherListClampsToLsCapacity)
{
    // 2 KiB elements with a 256-element list request would need 512 KiB
    // of LS; the generator clamps the list length to what the landing
    // region holds instead of overrunning LS.
    cell::CellSystem sys(cfg(), 5);
    core::RandomGatherSpec g;
    g.speIndex = 0;
    g.tableBytes = 256 * util::KiB;
    g.tableBase = sys.malloc(g.tableBytes);
    g.totalBytes = 128 * util::KiB;
    g.elemBytes = 2048;
    g.useList = true;
    g.elemsPerList = 256;
    g.seed = 9;
    g.lsBase = sys.spe(0).lsAlloc(64 * util::KiB);
    sys.launch(core::randomGatherStream(sys, g));
    sys.run();
    EXPECT_EQ(sys.spe(0).mfc().bytesTransferred(), 128u * util::KiB);
    EXPECT_EQ(sys.spe(0).mfc().commandsFaulted(), 0u);
}
