#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/strings.hh"

namespace cellbw::util
{

bool
JsonValue::boolean() const
{
    if (kind_ != Kind::Bool)
        throw std::logic_error("JsonValue: not a bool");
    return bool_;
}

double
JsonValue::number() const
{
    if (kind_ != Kind::Number)
        throw std::logic_error("JsonValue: not a number");
    return num_;
}

const std::string &
JsonValue::str() const
{
    if (kind_ != Kind::String)
        throw std::logic_error("JsonValue: not a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    if (kind_ != Kind::Array)
        throw std::logic_error("JsonValue: not an array");
    return arr_;
}

const std::vector<JsonValue::Member> &
JsonValue::object() const
{
    if (kind_ != Kind::Object)
        throw std::logic_error("JsonValue: not an object");
    return obj_;
}

const std::string &
JsonValue::numberToken() const
{
    if (kind_ != Kind::Number)
        throw std::logic_error("JsonValue: not a number");
    return str_;
}

namespace
{

/** The JSON number grammar: -?(0|[1-9][0-9]*)(.[0-9]+)?([eE][+-]?[0-9]+)? */
bool
validNumberToken(const std::string &tok)
{
    std::size_t i = 0;
    const std::size_t n = tok.size();
    auto digit = [&](std::size_t p) {
        return p < n && tok[p] >= '0' && tok[p] <= '9';
    };
    if (i < n && tok[i] == '-')
        ++i;
    if (!digit(i))
        return false;
    if (tok[i] == '0')
        ++i;
    else
        while (digit(i))
            ++i;
    if (i < n && tok[i] == '.') {
        ++i;
        if (!digit(i))
            return false;
        while (digit(i))
            ++i;
    }
    if (i < n && (tok[i] == 'e' || tok[i] == 'E')) {
        ++i;
        if (i < n && (tok[i] == '+' || tok[i] == '-'))
            ++i;
        if (!digit(i))
            return false;
        while (digit(i))
            ++i;
    }
    return i == n;
}

/** Shortest round-trip token for @p d (mirrors the writer's policy). */
std::string
numberTokenFor(double d)
{
    if (d != d || d > 1.7976931348623157e308 ||
        d < -1.7976931348623157e308) {
        // JSON has no NaN/Inf; mirror the writer and store null-ish 0.
        return "0";
    }
    double intPart = 0.0;
    if (std::modf(d, &intPart) == 0.0 && d >= -9007199254740992.0 &&
        d <= 9007199254740992.0) {
        return format("%lld", static_cast<long long>(d));
    }
    for (int prec = 15; prec <= 17; ++prec) {
        std::string s = format("%.*g", prec, d);
        if (std::strtod(s.c_str(), nullptr) == d)
            return s;
    }
    return format("%.17g", d);
}

void
escapeInto(const std::string &s, std::string &out)
{
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
}

void
dumpInto(const JsonValue &v, std::string &out)
{
    switch (v.kind()) {
      case JsonValue::Kind::Null:
        out += "null";
        return;
      case JsonValue::Kind::Bool:
        out += v.boolean() ? "true" : "false";
        return;
      case JsonValue::Kind::Number:
        out += v.numberToken();
        return;
      case JsonValue::Kind::String:
        out += '"';
        escapeInto(v.str(), out);
        out += '"';
        return;
      case JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const auto &e : v.array()) {
            if (!first)
                out += ',';
            first = false;
            dumpInto(e, out);
        }
        out += ']';
        return;
      }
      case JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &m : v.object()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            escapeInto(m.first, out);
            out += "\":";
            dumpInto(m.second, out);
        }
        out += '}';
        return;
      }
    }
}

} // namespace

std::string
JsonValue::dump() const
{
    std::string out;
    dumpInto(*this, out);
    return out;
}

bool
JsonValue::operator==(const JsonValue &rhs) const
{
    if (kind_ != rhs.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == rhs.bool_;
      case Kind::Number:
        return str_ == rhs.str_;
      case Kind::String:
        return str_ == rhs.str_;
      case Kind::Array:
        return arr_ == rhs.arr_;
      case Kind::Object:
        return obj_ == rhs.obj_;
    }
    return false;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double d)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.str_ = numberTokenFor(d);
    v.num_ = std::strtod(v.str_.c_str(), nullptr);
    return v;
}

JsonValue
JsonValue::makeRawNumber(std::string token)
{
    if (!validNumberToken(token))
        throw std::invalid_argument("JsonValue: bad number token '" +
                                    token + "'");
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = std::strtod(token.c_str(), nullptr);
    v.str_ = std::move(token);
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> elems)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.arr_ = std::move(elems);
    return v;
}

JsonValue
JsonValue::makeObject(std::vector<Member> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.obj_ = std::move(members);
    return v;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &m : obj_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

std::string
JsonValue::strOr(const std::string &key, const std::string &def) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->str() : def;
}

bool
JsonValue::boolOr(const std::string &key, bool def) const
{
    const JsonValue *v = find(key);
    return v && v->isBool() ? v->boolean() : def;
}

/** One parse over one input; tracks position for error messages. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    run(JsonValue &out, std::string &err)
    {
        try {
            skipWs();
            parseValue(out);
            skipWs();
            if (pos_ != text_.size())
                fail("trailing characters after document");
        } catch (const std::runtime_error &e) {
            err = e.what();
            return false;
        }
        return true;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error(
            format("offset %zu: %s", pos_, what.c_str()));
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    next()
    {
        char c = peek();
        ++pos_;
        return c;
    }

    void
    expect(char c)
    {
        if (next() != c)
            fail(format("expected '%c'", c));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(format("bad literal (expected %s)", word));
            ++pos_;
        }
    }

    void
    parseValue(JsonValue &out)
    {
        switch (peek()) {
          case '{':
            parseObject(out);
            return;
          case '[':
            parseArray(out);
            return;
          case '"':
            out.kind_ = JsonValue::Kind::String;
            out.str_ = parseString();
            return;
          case 't':
            literal("true");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return;
          case 'f':
            literal("false");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return;
          case 'n':
            literal("null");
            out.kind_ = JsonValue::Kind::Null;
            return;
          default:
            parseNumber(out);
            return;
        }
    }

    /** RAII nesting guard: deep documents fail instead of overflowing. */
    struct DepthGuard
    {
        explicit DepthGuard(JsonParser &p) : parser(p)
        {
            if (++parser.depth_ > JsonValue::kMaxDepth)
                parser.fail("nesting deeper than 512 levels");
        }
        ~DepthGuard() { --parser.depth_; }
        JsonParser &parser;
    };

    void
    parseObject(JsonValue &out)
    {
        DepthGuard guard(*this);
        expect('{');
        out.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            JsonValue v;
            parseValue(v);
            out.obj_.emplace_back(std::move(key), std::move(v));
            skipWs();
            char c = next();
            if (c == '}')
                return;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    void
    parseArray(JsonValue &out)
    {
        DepthGuard guard(*this);
        expect('[');
        out.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        for (;;) {
            skipWs();
            JsonValue v;
            parseValue(v);
            out.arr_.push_back(std::move(v));
            skipWs();
            char c = next();
            if (c == ']')
                return;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            char c = next();
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            char esc = next();
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = next();
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (the writer never
                // emits surrogate pairs; treat them as literal units).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    void
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        std::string tok = text_.substr(start, pos_ - start);
        // Strict JSON grammar: rejects what strtod would take
        // ("+1", "01", "1.", hex) and guarantees the token is a
        // faithful dump()-able representation.
        if (!validNumberToken(tok)) {
            pos_ = start;
            fail("malformed number");
        }
        out.kind_ = JsonValue::Kind::Number;
        out.num_ = std::strtod(tok.c_str(), nullptr);
        out.str_ = std::move(tok);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

bool
JsonValue::parse(const std::string &text, JsonValue &out, std::string &err)
{
    out = JsonValue();
    return JsonParser(text).run(out, err);
}

} // namespace cellbw::util
