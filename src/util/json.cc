#include "util/json.hh"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "util/strings.hh"

namespace cellbw::util
{

bool
JsonValue::boolean() const
{
    if (kind_ != Kind::Bool)
        throw std::logic_error("JsonValue: not a bool");
    return bool_;
}

double
JsonValue::number() const
{
    if (kind_ != Kind::Number)
        throw std::logic_error("JsonValue: not a number");
    return num_;
}

const std::string &
JsonValue::str() const
{
    if (kind_ != Kind::String)
        throw std::logic_error("JsonValue: not a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    if (kind_ != Kind::Array)
        throw std::logic_error("JsonValue: not an array");
    return arr_;
}

const std::vector<JsonValue::Member> &
JsonValue::object() const
{
    if (kind_ != Kind::Object)
        throw std::logic_error("JsonValue: not an object");
    return obj_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &m : obj_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

/** One parse over one input; tracks position for error messages. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    run(JsonValue &out, std::string &err)
    {
        try {
            skipWs();
            parseValue(out);
            skipWs();
            if (pos_ != text_.size())
                fail("trailing characters after document");
        } catch (const std::runtime_error &e) {
            err = e.what();
            return false;
        }
        return true;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error(
            format("offset %zu: %s", pos_, what.c_str()));
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    next()
    {
        char c = peek();
        ++pos_;
        return c;
    }

    void
    expect(char c)
    {
        if (next() != c)
            fail(format("expected '%c'", c));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(format("bad literal (expected %s)", word));
            ++pos_;
        }
    }

    void
    parseValue(JsonValue &out)
    {
        switch (peek()) {
          case '{':
            parseObject(out);
            return;
          case '[':
            parseArray(out);
            return;
          case '"':
            out.kind_ = JsonValue::Kind::String;
            out.str_ = parseString();
            return;
          case 't':
            literal("true");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return;
          case 'f':
            literal("false");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return;
          case 'n':
            literal("null");
            out.kind_ = JsonValue::Kind::Null;
            return;
          default:
            parseNumber(out);
            return;
        }
    }

    void
    parseObject(JsonValue &out)
    {
        expect('{');
        out.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            JsonValue v;
            parseValue(v);
            out.obj_.emplace_back(std::move(key), std::move(v));
            skipWs();
            char c = next();
            if (c == '}')
                return;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    void
    parseArray(JsonValue &out)
    {
        expect('[');
        out.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        for (;;) {
            skipWs();
            JsonValue v;
            parseValue(v);
            out.arr_.push_back(std::move(v));
            skipWs();
            char c = next();
            if (c == ']')
                return;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            char c = next();
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            char esc = next();
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = next();
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (the writer never
                // emits surrogate pairs; treat them as literal units).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    void
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        std::string tok = text_.substr(start, pos_ - start);
        const char *begin = tok.c_str();
        char *end = nullptr;
        double v = std::strtod(begin, &end);
        if (end != begin + tok.size()) {
            pos_ = start;
            fail("malformed number");
        }
        out.kind_ = JsonValue::Kind::Number;
        out.num_ = v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

bool
JsonValue::parse(const std::string &text, JsonValue &out, std::string &err)
{
    out = JsonValue();
    return JsonParser(text).run(out, err);
}

} // namespace cellbw::util
