/**
 * @file
 * Small string formatting helpers shared by the reporting code.
 */

#ifndef CELLBW_UTIL_STRINGS_HH
#define CELLBW_UTIL_STRINGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cellbw::util
{

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split @p s on @p sep; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** Lower-case ASCII copy. */
std::string toLower(std::string s);

/**
 * Human-readable byte size: exact binary units when possible
 * ("128 B", "4 KiB", "32 MiB"), otherwise a raw byte count.
 */
std::string bytesToString(std::uint64_t bytes);

/**
 * Strict non-negative integer parse: rejects signs (no silent -1 ->
 * UINT64_MAX wrap), trailing garbage, and out-of-range values.
 * Surrounding whitespace is tolerated.  Throws std::invalid_argument /
 * std::out_of_range.
 */
std::uint64_t parseUint64(const std::string &s);

/**
 * Parse "128", "4K"/"4KiB", "2M", "1G" style sizes.  Throws on
 * garbage, negative values, and sizes that overflow 64 bits.
 */
std::uint64_t parseByteSize(const std::string &s);

} // namespace cellbw::util

#endif // CELLBW_UTIL_STRINGS_HH
