/**
 * @file
 * Alignment and power-of-two helpers.
 *
 * DMA on the Cell BE has strict alignment rules (CBEA: transfer sizes of
 * 1, 2, 4, 8 bytes or multiples of 16 bytes; source and destination must
 * agree in their low four address bits; 128-byte alignment gives best
 * performance).  These helpers centralize those checks.
 */

#ifndef CELLBW_UTIL_ALIGN_HH
#define CELLBW_UTIL_ALIGN_HH

#include <cstdint>

#include "util/types.hh"

namespace cellbw::util
{

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return @p v rounded up to the next multiple of @p align (a power of 2). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** @return @p v rounded down to a multiple of @p align (a power of 2). */
constexpr std::uint64_t
roundDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** @return true iff @p v is a multiple of @p align (a power of 2). */
constexpr bool
isAligned(std::uint64_t v, std::uint64_t align)
{
    return (v & (align - 1)) == 0;
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Validity of a single MFC DMA transfer size per the CBEA: 1, 2, 4, 8
 * bytes, or a multiple of 16 bytes up to 16 KB.
 */
constexpr bool
isValidDmaSize(std::uint32_t size)
{
    if (size == 0 || size > 16 * 1024)
        return false;
    if (size == 1 || size == 2 || size == 4 || size == 8)
        return true;
    return (size % 16) == 0;
}

/**
 * CBEA DMA address rule: for sizes < 16 the LS and EA addresses must be
 * naturally aligned to the size; for sizes >= 16 both must be 16-byte
 * aligned and agree in their low four bits (they trivially do when both
 * are 16-byte aligned).
 */
constexpr bool
isValidDmaAlignment(LsAddr lsa, EffAddr ea, std::uint32_t size)
{
    if (size == 1)
        return true;
    if (size == 2 || size == 4 || size == 8)
        return isAligned(lsa, size) && isAligned(ea, size);
    return isAligned(lsa, 16) && isAligned(ea, 16);
}

} // namespace cellbw::util

#endif // CELLBW_UTIL_ALIGN_HH
