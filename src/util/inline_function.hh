/**
 * @file
 * A move-only type-erased callable with small-buffer optimization.
 *
 * The discrete-event kernel schedules one callback per simulated event;
 * with std::function every capture larger than the libstdc++ 16-byte
 * SBO window costs a heap allocation on the schedule path.  Simulator
 * callbacks routinely capture a this-pointer plus a couple of transfer
 * parameters (24-48 bytes), so InlineFunction widens the inline window
 * to 48 bytes and never allocates for captures that fit.
 *
 * Differences from std::function:
 *  - move-only (so move-only captures like unique_ptr are supported);
 *  - no target()/target_type() RTTI;
 *  - invoking an empty InlineFunction is undefined (the event queue
 *    never stores empty callbacks).
 */

#ifndef CELLBW_UTIL_INLINE_FUNCTION_HH
#define CELLBW_UTIL_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cellbw::util
{

template <typename Signature, std::size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes>
{
    static_assert(InlineBytes >= sizeof(void *),
                  "inline buffer must at least hold the heap pointer");

  public:
    /** Capture sizes up to this many bytes are stored inline. */
    static constexpr std::size_t inlineCapacity = InlineBytes;

    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InlineFunction(F &&f)
    {
        construct<D>(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&other) noexcept
        : vtable_(other.vtable_)
    {
        if (vtable_) {
            vtable_->relocate(&other.storage_, &storage_);
            other.vtable_ = nullptr;
        }
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            vtable_ = other.vtable_;
            if (vtable_) {
                vtable_->relocate(&other.storage_, &storage_);
                other.vtable_ = nullptr;
            }
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    void
    reset() noexcept
    {
        if (vtable_) {
            vtable_->destroy(&storage_);
            vtable_ = nullptr;
        }
    }

    explicit operator bool() const noexcept { return vtable_ != nullptr; }

    /** Const like std::function's: the target is logically mutable. */
    R
    operator()(Args... args) const
    {
        return vtable_->invoke(&storage_, std::forward<Args>(args)...);
    }

    /** True when the stored callable lives in the inline buffer. */
    bool
    isInline() const noexcept
    {
        return vtable_ != nullptr && vtable_->inlineStored;
    }

  private:
    struct VTable
    {
        R (*invoke)(void *, Args...);
        /** Move-construct into @p dst from @p src, then destroy src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *) noexcept;
        bool inlineStored;
    };

    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= InlineBytes &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    struct InlineOps
    {
        static R
        invoke(void *p, Args... args)
        {
            return (*std::launder(reinterpret_cast<D *>(p)))(
                std::forward<Args>(args)...);
        }
        static void
        relocate(void *src, void *dst) noexcept
        {
            D *s = std::launder(reinterpret_cast<D *>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        }
        static void
        destroy(void *p) noexcept
        {
            std::launder(reinterpret_cast<D *>(p))->~D();
        }
        static constexpr VTable vtable = {&invoke, &relocate, &destroy,
                                          true};
    };

    template <typename D>
    struct HeapOps
    {
        static D *&
        ptr(void *p)
        {
            return *std::launder(reinterpret_cast<D **>(p));
        }
        static R
        invoke(void *p, Args... args)
        {
            return (*ptr(p))(std::forward<Args>(args)...);
        }
        static void
        relocate(void *src, void *dst) noexcept
        {
            ::new (dst) (D *)(ptr(src));
        }
        static void
        destroy(void *p) noexcept
        {
            delete ptr(p);
        }
        static constexpr VTable vtable = {&invoke, &relocate, &destroy,
                                          false};
    };

    template <typename D, typename F>
    void
    construct(F &&f)
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(&storage_)) D(std::forward<F>(f));
            vtable_ = &InlineOps<D>::vtable;
        } else {
            ::new (static_cast<void *>(&storage_))
                (D *)(new D(std::forward<F>(f)));
            vtable_ = &HeapOps<D>::vtable;
        }
    }

    alignas(std::max_align_t) mutable unsigned char storage_[InlineBytes];
    const VTable *vtable_ = nullptr;
};

} // namespace cellbw::util

#endif // CELLBW_UTIL_INLINE_FUNCTION_HH
