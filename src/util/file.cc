#include "util/file.hh"

#include <cstdio>

#include <unistd.h>

namespace cellbw::util
{

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    std::string tmp = path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
    bool ok = n == content.size();
    if (std::fclose(f) != 0)
        ok = false;
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0)
        ok = false;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

} // namespace cellbw::util
