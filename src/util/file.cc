#include "util/file.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace cellbw::util
{

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    // The temp name must be unique per concurrent writer.  The pid
    // alone is not: two threads of one process writing the same path
    // would share a temp file and could rename interleaved garbage
    // into place.  A process-wide sequence number disambiguates
    // threads; the pid disambiguates processes.
    static std::atomic<unsigned long> seq{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(seq.fetch_add(
                          1, std::memory_order_relaxed));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
    bool ok = n == content.size();
    if (std::fclose(f) != 0)
        ok = false;
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0)
        ok = false;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

FileLock::~FileLock()
{
    unlock();
}

FileLock::FileLock(FileLock &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

FileLock &
FileLock::operator=(FileLock &&other) noexcept
{
    if (this != &other) {
        unlock();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

bool
FileLock::lock(const std::string &path)
{
    unlock();
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
    if (fd < 0)
        return false;
    int rc;
    do {
        rc = ::flock(fd, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        ::close(fd);
        return false;
    }
    fd_ = fd;
    return true;
}

void
FileLock::unlock()
{
    if (fd_ < 0)
        return;
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
    fd_ = -1;
}

} // namespace cellbw::util
