/**
 * @file
 * A small recursive-descent JSON parser.
 *
 * The cellbw driver consumes its own reports: `cellbw compare` diffs
 * two `cellbw-bench-v*` documents and the result cache validates
 * stored entries.  Both need to *read* the JSON that
 * stats::JsonWriter produces, without an external dependency.
 *
 * JsonValue is an immutable tree.  Object members preserve insertion
 * order (the writer emits deterministic documents; keeping the order
 * makes diffs and error messages deterministic too).  Numbers keep
 * their source token alongside the double, so values outside double's
 * 53-bit integer range (e.g. big uint64 metrics) survive a
 * parse()/dump() round trip byte-exactly.  Nesting depth is capped at
 * kMaxDepth: a hostile or corrupt deeply-nested document is a parse
 * error, not a stack overflow.
 *
 * @code
 *   util::JsonValue doc;
 *   std::string err;
 *   if (!util::JsonValue::parse(text, doc, err))
 *       fatal("bad report: %s", err.c_str());
 *   const util::JsonValue *points = doc.find("points");
 * @endcode
 */

#ifndef CELLBW_UTIL_JSON_HH
#define CELLBW_UTIL_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cellbw::util
{

class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Member = std::pair<std::string, JsonValue>;

    /** Maximum container nesting parse() accepts. */
    static constexpr std::size_t kMaxDepth = 512;

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @name Accessors; calling the wrong one is a programming error. */
    /** @{ */
    bool boolean() const;
    double number() const;
    const std::string &str() const;
    const std::vector<JsonValue> &array() const;
    const std::vector<Member> &object() const;
    /** @} */

    /**
     * The number's source token ("1e-3", "18446744073709551615"), the
     * lossless form of number().
     */
    const std::string &numberToken() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** @name Defaulted member accessors (request/config parsing).
     * The default is returned when this is not an object, the member
     * is absent, or it has the wrong kind. */
    /** @{ */
    std::string strOr(const std::string &key,
                      const std::string &def) const;
    bool boolOr(const std::string &key, bool def) const;
    /** @} */

    /**
     * Serialize back to compact JSON.  Numbers emit their token
     * verbatim, so parse(dump(v)) == v for any parsed or built value.
     */
    std::string dump() const;

    /**
     * Deep structural equality.  Numbers compare by token (the
     * lossless representation), everything else by value; object
     * member order matters, as it does to dump().
     */
    bool operator==(const JsonValue &rhs) const;
    bool operator!=(const JsonValue &rhs) const { return !(*this == rhs); }

    /** @name Builders, for tests and generated documents. */
    /** @{ */
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double d);
    /**
     * @p token must be a valid JSON number; throws
     * std::invalid_argument otherwise.
     */
    static JsonValue makeRawNumber(std::string token);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> elems);
    static JsonValue makeObject(std::vector<Member> members);
    /** @} */

    /**
     * Parse @p text into @p out.  @return false (with a
     * position-annotated message in @p err) on malformed input;
     * trailing non-whitespace after the document is an error.
     */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string &err);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<Member> obj_;

    friend class JsonParser;
};

} // namespace cellbw::util

#endif // CELLBW_UTIL_JSON_HH
