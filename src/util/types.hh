/**
 * @file
 * Fundamental scalar type aliases used across the cellbw libraries.
 *
 * The simulator follows the Cell Broadband Engine Architecture (CBEA)
 * conventions: effective addresses (EA) are 64-bit, local-store addresses
 * (LSA) are 32-bit offsets into a 256 KB local store.
 */

#ifndef CELLBW_UTIL_TYPES_HH
#define CELLBW_UTIL_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace cellbw
{

/** Simulation time in CPU cycles of the modeled machine. */
using Tick = std::uint64_t;

/** A tick value that is never reached. */
constexpr Tick maxTick = ~Tick(0);

/** 64-bit effective address in the simulated main-storage domain. */
using EffAddr = std::uint64_t;

/** Local-store address: a byte offset inside one SPE's 256 KB LS. */
using LsAddr = std::uint32_t;

namespace util
{

/** Binary units. */
constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;

/** Decimal giga, used for GB/s figures as in the paper. */
constexpr double giga = 1e9;

} // namespace util
} // namespace cellbw

#endif // CELLBW_UTIL_TYPES_HH
