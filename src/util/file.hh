/**
 * @file
 * Tiny whole-file I/O helpers and a cross-process advisory lock.
 *
 * The driver reads and writes small JSON documents (reports, cache
 * entries, manifests).  Reads slurp the file; writes go through a
 * unique same-directory temp file + rename so a crashed or concurrent
 * run never leaves a half-written report or cache entry behind, and
 * two writers (threads or processes) racing on one path can never
 * interleave bytes — last rename wins, whole-file.
 *
 * FileLock is the multi-process companion: an advisory `flock(2)` on a
 * named lockfile, so cooperating processes (parallel suite runs, the
 * serve daemon, `cellbw cache prune`) can serialize cache mutations
 * without any daemon-side coordination.  It is advisory only — readers
 * that skip the lock still see atomic whole files thanks to the
 * rename protocol.
 */

#ifndef CELLBW_UTIL_FILE_HH
#define CELLBW_UTIL_FILE_HH

#include <string>

namespace cellbw::util
{

/** Read all of @p path into @p out; false (errno set) on failure. */
bool readFile(const std::string &path, std::string &out);

/**
 * Write @p content to @p path atomically (unique temp file + rename in
 * the same directory).  Concurrent writers to the same path are safe:
 * each writes its own temp file and the final renames are atomic, so
 * the path always holds one writer's complete bytes, never a mix.
 * @return false (errno set) on failure.
 */
bool writeFileAtomic(const std::string &path, const std::string &content);

/**
 * A cross-process advisory lock: `flock(2)` held on an open lockfile
 * descriptor, released on unlock() or destruction.  Blocking and
 * exclusive; recursive acquisition is a caller bug (flock would
 * silently allow it on the same fd, but each FileLock opens its own).
 *
 * Processes that never take the lock are not blocked from touching the
 * protected files — this is coordination between cooperating writers
 * (cache store/prune/recovery), not enforcement.
 */
class FileLock
{
  public:
    FileLock() = default;
    ~FileLock();

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;
    FileLock(FileLock &&other) noexcept;
    FileLock &operator=(FileLock &&other) noexcept;

    /**
     * Open-or-create @p path and block until the exclusive lock is
     * held.  @return false (errno set) when the lockfile cannot be
     * opened or flock fails; the caller decides whether to proceed
     * unlocked (best effort) or bail.
     */
    bool lock(const std::string &path);

    bool locked() const { return fd_ >= 0; }

    /** Release and close; no-op when not locked. */
    void unlock();

  private:
    int fd_ = -1;
};

} // namespace cellbw::util

#endif // CELLBW_UTIL_FILE_HH
