/**
 * @file
 * Tiny whole-file I/O helpers.
 *
 * The driver reads and writes small JSON documents (reports, cache
 * entries, manifests).  Reads slurp the file; writes go through a
 * same-directory temp file + rename so a crashed or concurrent run
 * never leaves a half-written report or cache entry behind.
 */

#ifndef CELLBW_UTIL_FILE_HH
#define CELLBW_UTIL_FILE_HH

#include <string>

namespace cellbw::util
{

/** Read all of @p path into @p out; false (errno set) on failure. */
bool readFile(const std::string &path, std::string &out);

/**
 * Write @p content to @p path atomically (temp file + rename in the
 * same directory).  @return false (errno set) on failure.
 */
bool writeFileAtomic(const std::string &path, const std::string &content);

} // namespace cellbw::util

#endif // CELLBW_UTIL_FILE_HH
