/**
 * @file
 * A small self-contained command-line option parser.
 *
 * Every bench and example binary exposes the simulator's structural
 * parameters as flags.  We want `--runs=10 --mb-per-spe=32 --seed=7`
 * style options with typed accessors, defaults, and a generated
 * `--help` text, without external dependencies.
 *
 * Usage:
 * @code
 *   util::Options opts("fig08_spe_mem", "SPE<->memory DMA bandwidth");
 *   opts.addUint("runs", 10, "number of placement-randomized runs");
 *   opts.addBool("csv", false, "emit CSV instead of a table");
 *   if (!opts.parse(argc, argv)) return 1;   // printed help or error
 *   auto runs = opts.getUint("runs");
 * @endcode
 */

#ifndef CELLBW_UTIL_OPTIONS_HH
#define CELLBW_UTIL_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cellbw::util
{

class Options
{
  public:
    Options(std::string prog, std::string description);

    /** @name Option registration (call before parse()). */
    /** @{ */
    void addUint(const std::string &name, std::uint64_t def,
                 const std::string &help);
    void addDouble(const std::string &name, double def,
                   const std::string &help);
    void addBool(const std::string &name, bool def, const std::string &help);
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);
    /** Byte sizes accept K/M/G suffixes. */
    void addBytes(const std::string &name, std::uint64_t def,
                  const std::string &help);
    /** @} */

    /**
     * Parse argv.  Accepts --name=value, --name value, bare --flag for
     * bools, and --no-flag to clear a bool.
     *
     * @return true when the program should continue; false when help was
     *         requested or an error occurred (message already printed).
     */
    bool parse(int argc, const char *const *argv);

    /** @name Typed accessors (valid after parse(); defaults before). */
    /** @{ */
    std::uint64_t getUint(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;
    const std::string &getString(const std::string &name) const;
    std::uint64_t getBytes(const std::string &name) const;
    /** @} */

    /** True iff the user explicitly supplied the option. */
    bool isSet(const std::string &name) const;

    /**
     * Mark @p name as result-neutral: the option steers output or host
     * scheduling (--json, --csv, --jobs) but can never change computed
     * results.  Structured exporters (the v2 report config section)
     * and the result-cache key skip result-neutral options, so e.g.
     * two runs differing only in --jobs share one cache entry.
     */
    void setResultNeutral(const std::string &name);

    /** One registered option, as seen by structured exporters. */
    struct OptionInfo
    {
        enum class Type { Uint, Double, Bool, String, Bytes };
        std::string name;
        Type type;
        std::string text;   ///< canonical textual value
        bool set;           ///< explicitly supplied on the command line
        bool resultNeutral; ///< see setResultNeutral()
    };

    /** All registered options, in registration order. */
    std::vector<OptionInfo> list() const;

    /** Render the --help text. */
    std::string helpText() const;

    /** Positional (non-option) arguments, in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Program name, for caller-side error messages. */
    const std::string &prog() const { return prog_; }

  private:
    enum class Kind { Uint, Double, Bool, String, Bytes };

    struct Opt
    {
        Kind kind;
        std::string help;
        std::string value;      // canonical textual value
        std::string defValue;
        bool set = false;
        bool resultNeutral = false;
    };

    const Opt &find(const std::string &name, Kind kind) const;
    void add(const std::string &name, Kind kind, std::string def,
             const std::string &help);
    bool assign(const std::string &name, const std::string &value);

    std::string prog_;
    std::string description_;
    std::map<std::string, Opt> opts_;
    std::vector<std::string> order_;
    std::vector<std::string> positional_;
};

} // namespace cellbw::util

#endif // CELLBW_UTIL_OPTIONS_HH
