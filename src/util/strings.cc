#include "util/strings.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "util/types.hh"

namespace cellbw::util
{

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<size_t>(len));
    }
    va_end(ap2);
    return out;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
bytesToString(std::uint64_t bytes)
{
    if (bytes >= GiB && bytes % GiB == 0)
        return format("%llu GiB", (unsigned long long)(bytes / GiB));
    if (bytes >= MiB && bytes % MiB == 0)
        return format("%llu MiB", (unsigned long long)(bytes / MiB));
    if (bytes >= KiB && bytes % KiB == 0)
        return format("%llu KiB", (unsigned long long)(bytes / KiB));
    return format("%llu B", (unsigned long long)bytes);
}

std::uint64_t
parseUint64(const std::string &raw)
{
    std::string s = trim(raw);
    // std::stoull quietly accepts a sign ("-1" wraps to UINT64_MAX);
    // require the string to start with a digit instead.
    if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
        throw std::invalid_argument("not a non-negative integer: " + raw);
    size_t pos = 0;
    unsigned long long v = std::stoull(s, &pos);    // may throw out_of_range
    if (pos != s.size())
        throw std::invalid_argument("trailing garbage in integer: " + raw);
    return v;
}

std::uint64_t
parseByteSize(const std::string &raw)
{
    std::string s = toLower(trim(raw));
    if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
        throw std::invalid_argument("bad byte size: " + raw);
    size_t pos = 0;
    unsigned long long v = std::stoull(s, &pos);    // may throw out_of_range
    std::string suffix = trim(s.substr(pos));
    std::uint64_t mult;
    if (suffix.empty() || suffix == "b")
        mult = 1;
    else if (suffix == "k" || suffix == "kb" || suffix == "kib")
        mult = KiB;
    else if (suffix == "m" || suffix == "mb" || suffix == "mib")
        mult = MiB;
    else if (suffix == "g" || suffix == "gb" || suffix == "gib")
        mult = GiB;
    else
        throw std::invalid_argument("bad byte-size suffix: " + raw);
    if (mult > 1 && v > std::numeric_limits<std::uint64_t>::max() / mult)
        throw std::out_of_range("byte size overflows 64 bits: " + raw);
    return v * mult;
}

} // namespace cellbw::util
