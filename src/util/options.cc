#include "util/options.hh"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "util/strings.hh"

namespace cellbw::util
{

Options::Options(std::string prog, std::string description)
    : prog_(std::move(prog)), description_(std::move(description))
{
}

void
Options::add(const std::string &name, Kind kind, std::string def,
             const std::string &help)
{
    if (opts_.count(name))
        throw std::logic_error("duplicate option: " + name);
    Opt o;
    o.kind = kind;
    o.help = help;
    o.value = def;
    o.defValue = std::move(def);
    opts_.emplace(name, std::move(o));
    order_.push_back(name);
}

void
Options::addUint(const std::string &name, std::uint64_t def,
                 const std::string &help)
{
    add(name, Kind::Uint, std::to_string(def), help);
}

void
Options::addDouble(const std::string &name, double def,
                   const std::string &help)
{
    // to_chars, not "%g": the default text feeds --help, report config
    // sections, and the cache material, and %g renders "2,1" under a
    // comma-decimal LC_NUMERIC.  Precision 6 matches C-locale %g.
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof(buf), def,
                             std::chars_format::general, 6);
    add(name, Kind::Double, std::string(buf, res.ptr), help);
}

void
Options::addBool(const std::string &name, bool def, const std::string &help)
{
    add(name, Kind::Bool, def ? "true" : "false", help);
}

void
Options::addString(const std::string &name, const std::string &def,
                   const std::string &help)
{
    add(name, Kind::String, def, help);
}

void
Options::addBytes(const std::string &name, std::uint64_t def,
                  const std::string &help)
{
    add(name, Kind::Bytes, bytesToString(def), help);
}

bool
Options::assign(const std::string &name, const std::string &value)
{
    auto it = opts_.find(name);
    if (it == opts_.end()) {
        std::fprintf(stderr, "%s: unknown option --%s\n", prog_.c_str(),
                     name.c_str());
        return false;
    }
    Opt &o = it->second;
    try {
        // Validate eagerly so errors surface at parse time.  The
        // strict parsers reject signs and trailing garbage; a bare
        // std::stoull would wrap "-1" to UINT64_MAX and accept "8x".
        switch (o.kind) {
          case Kind::Uint:
            (void)parseUint64(value);
            break;
          case Kind::Double: {
            // from_chars, not stod: stod follows LC_NUMERIC, and a
            // comma-decimal locale would reject "2.1" as trailing
            // garbage (and accept "2,1", which nothing else parses).
            std::string v = trim(value);
            double parsed = 0.0;
            auto res = std::from_chars(v.data(), v.data() + v.size(),
                                       parsed);
            if (res.ec != std::errc() ||
                res.ptr != v.data() + v.size())
                throw std::invalid_argument("bad double");
            break;
          }
          case Kind::Bytes:
            (void)parseByteSize(value);
            break;
          case Kind::Bool: {
            std::string v = toLower(value);
            if (v != "true" && v != "false" && v != "1" && v != "0" &&
                v != "yes" && v != "no") {
                throw std::invalid_argument("bad bool");
            }
            break;
          }
          case Kind::String:
            break;
        }
    } catch (const std::exception &) {
        std::fprintf(stderr, "%s: bad value for --%s: '%s'\n", prog_.c_str(),
                     name.c_str(), value.c_str());
        return false;
    }
    o.value = value;
    o.set = true;
    return true;
}

bool
Options::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            std::fputs(helpText().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name;
        std::string value;
        bool have_value = false;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            have_value = true;
        } else {
            name = body;
        }
        auto it = opts_.find(name);
        if (it == opts_.end() && !have_value && name.rfind("no-", 0) == 0) {
            // --no-flag for bools.
            std::string base = name.substr(3);
            auto bit = opts_.find(base);
            if (bit != opts_.end() && bit->second.kind == Kind::Bool) {
                if (!assign(base, "false"))
                    return false;
                continue;
            }
        }
        if (it != opts_.end() && it->second.kind == Kind::Bool &&
            !have_value) {
            if (!assign(name, "true"))
                return false;
            continue;
        }
        if (!have_value) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: option --%s needs a value\n",
                             prog_.c_str(), name.c_str());
                return false;
            }
            value = argv[++i];
        }
        if (!assign(name, value))
            return false;
    }
    return true;
}

const Options::Opt &
Options::find(const std::string &name, Kind kind) const
{
    auto it = opts_.find(name);
    if (it == opts_.end())
        throw std::logic_error("option not registered: " + name);
    if (it->second.kind != kind)
        throw std::logic_error("option type mismatch: " + name);
    return it->second;
}

std::uint64_t
Options::getUint(const std::string &name) const
{
    return parseUint64(find(name, Kind::Uint).value);
}

double
Options::getDouble(const std::string &name) const
{
    // from_chars, not stod: under a comma-decimal LC_NUMERIC stod
    // reads "2.1" as 2 — the simulated machine would silently change
    // with the host locale.
    const std::string v = trim(find(name, Kind::Double).value);
    double parsed = 0.0;
    std::from_chars(v.data(), v.data() + v.size(), parsed);
    return parsed;
}

bool
Options::getBool(const std::string &name) const
{
    std::string v = toLower(find(name, Kind::Bool).value);
    return v == "true" || v == "1" || v == "yes";
}

const std::string &
Options::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

std::uint64_t
Options::getBytes(const std::string &name) const
{
    return parseByteSize(find(name, Kind::Bytes).value);
}

bool
Options::isSet(const std::string &name) const
{
    auto it = opts_.find(name);
    return it != opts_.end() && it->second.set;
}

void
Options::setResultNeutral(const std::string &name)
{
    auto it = opts_.find(name);
    if (it == opts_.end())
        throw std::logic_error("option not registered: " + name);
    it->second.resultNeutral = true;
}

std::vector<Options::OptionInfo>
Options::list() const
{
    std::vector<OptionInfo> out;
    out.reserve(order_.size());
    for (const auto &name : order_) {
        const Opt &o = opts_.at(name);
        OptionInfo info;
        info.name = name;
        switch (o.kind) {
          case Kind::Uint:
            info.type = OptionInfo::Type::Uint;
            break;
          case Kind::Double:
            info.type = OptionInfo::Type::Double;
            break;
          case Kind::Bool:
            info.type = OptionInfo::Type::Bool;
            break;
          case Kind::String:
            info.type = OptionInfo::Type::String;
            break;
          case Kind::Bytes:
            info.type = OptionInfo::Type::Bytes;
            break;
        }
        info.text = o.value;
        info.set = o.set;
        info.resultNeutral = o.resultNeutral;
        out.push_back(std::move(info));
    }
    return out;
}

std::string
Options::helpText() const
{
    std::string out = prog_ + " - " + description_ + "\n\nOptions:\n";
    for (const auto &name : order_) {
        const Opt &o = opts_.at(name);
        out += format("  --%-24s %s (default: %s)\n", name.c_str(),
                      o.help.c_str(), o.defValue.c_str());
    }
    out += format("  --%-24s %s\n", "help", "show this message");
    return out;
}

} // namespace cellbw::util
