#include "mem/memory_system.hh"

#include "sim/logging.hh"
#include "stats/metrics.hh"
#include "util/strings.hh"

namespace cellbw::mem
{

MemorySystem::MemorySystem(std::string name, sim::EventQueue &eq,
                           const MemorySystemParams &params,
                           sim::EventQueue *bank1Queue)
    : sim::SimObject(std::move(name), eq),
      allocator_(params.pageBytes, 2),
      store_(params.pageBytes)
{
    banks_[0] = std::make_unique<DramBank>(this->name() + ".bank0", eq,
                                           params.bank0);
    banks_[1] = std::make_unique<DramBank>(this->name() + ".bank1",
                                           bank1Queue ? *bank1Queue : eq,
                                           params.bank1);
    ioLink_ = std::make_unique<IoLink>(this->name() + ".ioif", eq,
                                       params.ioLink);
}

EffAddr
MemorySystem::alloc(std::uint64_t bytes, const NumaPolicy &policy)
{
    return allocator_.alloc(bytes, policy);
}

DramBank &
MemorySystem::bank(unsigned i)
{
    if (i > 1)
        sim::fatal("bank index %u out of range", i);
    return *banks_[i];
}

void
MemorySystem::registerMetrics(stats::MetricsRegistry &reg,
                              const std::string &prefix) const
{
    for (unsigned b = 0; b < 2; ++b) {
        banks_[b]->registerMetrics(reg,
                                   prefix + util::format(".bank%u", b));
    }
    reg.counter(prefix + ".ioif.bytes_outbound")
        .add(ioLink_->bytesSent(IoLink::Dir::Outbound));
    reg.counter(prefix + ".ioif.bytes_inbound")
        .add(ioLink_->bytesSent(IoLink::Dir::Inbound));
}

} // namespace cellbw::mem
