#include "mem/memory_system.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "stats/metrics.hh"
#include "util/strings.hh"

namespace cellbw::mem
{

MemorySystem::MemorySystem(std::string name, sim::EventQueue &eq,
                           const MemorySystemParams &params,
                           const std::vector<sim::EventQueue *> &bankQueues)
    : sim::SimObject(std::move(name), eq),
      allocator_(params.pageBytes, std::max(params.numChips, 2u)),
      store_(params.pageBytes),
      numBanks_(std::max(params.numChips, 2u))
{
    for (unsigned b = 0; b < numBanks_; ++b) {
        sim::EventQueue &bq =
            b < bankQueues.size() && bankQueues[b] ? *bankQueues[b] : eq;
        banks_.push_back(std::make_unique<DramBank>(
            this->name() + util::format(".bank%u", b), bq,
            b == 0 ? params.bank0 : params.bank1));
    }
    links_ = std::make_unique<LinkGraph>(
        this->name(), eq,
        eib::ClusterShape::of(numBanks_, params.numBlades),
        params.ioLink, params.bladeLink);
}

EffAddr
MemorySystem::alloc(std::uint64_t bytes, const NumaPolicy &policy)
{
    return allocator_.alloc(bytes, policy);
}

DramBank &
MemorySystem::bank(unsigned i)
{
    if (i >= numBanks_)
        sim::fatal("bank index %u out of range", i);
    return *banks_[i];
}

void
MemorySystem::registerMetrics(stats::MetricsRegistry &reg,
                              const std::string &prefix) const
{
    for (unsigned b = 0; b < numBanks_; ++b) {
        banks_[b]->registerMetrics(reg,
                                   prefix + util::format(".bank%u", b));
    }
    links_->registerMetrics(reg, prefix);
}

} // namespace cellbw::mem
