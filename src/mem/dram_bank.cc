#include "mem/dram_bank.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "stats/metrics.hh"

namespace cellbw::mem
{

DramBank::DramBank(std::string name, sim::EventQueue &eq,
                   const DramBankParams &params)
    : sim::SimObject(std::move(name), eq), params_(params)
{
    if (params_.bytesPerTick <= 0.0)
        sim::fatal("%s: bank service rate must be positive", this->name().c_str());
    if (params_.refreshInterval != 0 &&
        params_.refreshDuration >= params_.refreshInterval) {
        sim::fatal("%s: refresh duration must be below the interval",
                   this->name().c_str());
    }
}

Tick
DramBank::skipRefresh(Tick t)
{
    if (params_.refreshInterval == 0 || params_.refreshDuration == 0)
        return t;
    Tick phase = t % params_.refreshInterval;
    if (phase < params_.refreshDuration) {
        ++refreshStalls_;
        return t - phase + params_.refreshDuration;
    }
    return t;
}

Tick
DramBank::reserve(Tick earliest, Tick service)
{
    // Each refresh window that delays this access counts exactly once:
    // skipRefresh() books the window containing the service start (if
    // any), the loop below books each later window the service is
    // split across.  Those sets are disjoint by construction — the
    // loop always resumes *after* the window skipRefresh() cleared —
    // and zero-length windows (refreshDuration == 0) delay nothing,
    // so neither path may count them.
    Tick t = skipRefresh(std::max(earliest, freeAt_));
    Tick remaining = service;
    if (params_.refreshInterval != 0 && params_.refreshDuration != 0) {
        // Consume pin time between refresh windows.
        while (true) {
            Tick next_refresh =
                (t / params_.refreshInterval + 1) * params_.refreshInterval;
            Tick gap = next_refresh - t;
            if (remaining <= gap) {
                t += remaining;
                remaining = 0;
                break;
            }
            remaining -= gap;
            t = next_refresh + params_.refreshDuration;
            ++refreshStalls_;
        }
    } else {
        t += remaining;
    }
    freeAt_ = t;
    return t;
}

Tick
DramBank::reserveAccess(EffAddr ea, std::uint32_t bytes,
                        [[maybe_unused]] bool isWrite)
{
    // Reads and writes currently share the same completion latency
    // (the requester needs the controller's ack either way); the
    // parameter is kept for configurability and tracing.
    auto service =
        static_cast<Tick>(std::ceil(bytes / params_.bytesPerTick));
    if (service == 0)
        service = 1;
    ++accesses_;
    if (freeAt_ > curTick())
        ++queueConflicts_;
    // Walk the rows [ea, ea+bytes) touches.  The first row is a hit
    // iff it is still open; every further row a spanning access
    // crosses into forces its own activate, so each counts as a
    // conflict, and the *last* row is what stays open.
    std::uint64_t first = params_.rowBytes ? ea / params_.rowBytes : 0;
    std::uint64_t last =
        params_.rowBytes
            ? (ea + (bytes ? bytes - 1 : 0)) / params_.rowBytes
            : 0;
    std::uint64_t activations = last - first;
    if (rowOpen_ && first == openRow_)
        ++rowHits_;
    else
        ++activations;
    rowConflicts_ += activations;
    openRow_ = last;
    rowOpen_ = true;
    Tick occupancy = service;
    if (params_.rowTiming)
        occupancy += activations * params_.rowMissPenalty;
    Tick service_end = reserve(curTick(), occupancy);
    bytesServiced_ += bytes;
    // Reads return data after the array access; writes are acknowledged
    // to the requester's MFC after the same latency (tag completion on
    // the Cell requires the controller's ack, which is why the paper
    // measures PUT ~= GET for a single SPE).  Under the timing row
    // model the activate cost already occupied the bank, so completion
    // pays only the CAS-side latency.
    return service_end +
           (params_.rowTiming ? params_.rowHitLatency
                              : params_.accessLatency);
}

void
DramBank::registerMetrics(stats::MetricsRegistry &reg,
                          const std::string &prefix) const
{
    reg.counter(prefix + ".bytes").add(bytesServiced_);
    reg.counter(prefix + ".accesses").add(accesses_);
    reg.counter(prefix + ".row_hits").add(rowHits_);
    reg.counter(prefix + ".row_conflicts").add(rowConflicts_);
    reg.counter(prefix + ".queue_conflicts").add(queueConflicts_);
    reg.counter(prefix + ".refresh_stalls").add(refreshStalls_);
}

} // namespace cellbw::mem
