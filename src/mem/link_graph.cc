#include "mem/link_graph.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"
#include "stats/metrics.hh"
#include "util/strings.hh"

namespace cellbw::mem
{

LinkGraph::LinkGraph(const std::string &prefix, sim::EventQueue &eq,
                     eib::ClusterShape shape, const IoLinkParams &ioif,
                     const IoLinkParams &bladeLink)
    : shape_(shape)
{
    if (!shape_.valid()) {
        sim::fatal("invalid cluster shape: %u chips on %u blades",
                   shape_.chips, shape_.blades);
    }
    idx_.assign(static_cast<std::size_t>(shape_.chips) * shape_.chips,
                -1);
    shape_.forEachLink([&](unsigned lo, unsigned hi, bool interBlade) {
        std::string suffix;
        if (!interBlade) {
            unsigned blade = shape_.bladeOf(lo);
            suffix = blade == 0 ? std::string("ioif")
                                : util::format("ioif%u", blade);
        } else {
            suffix = util::format("blade%u_%u", shape_.bladeOf(lo),
                                  shape_.bladeOf(hi));
        }
        idx_[lo * shape_.chips + hi] =
            idx_[hi * shape_.chips + lo] =
                static_cast<int>(edges_.size());
        edges_.push_back(
            {lo, hi, interBlade, suffix,
             std::make_unique<IoLink>(prefix + "." + suffix, eq,
                                      interBlade ? bladeLink : ioif)});
    });
}

LinkGraph::Hop
LinkGraph::firstHop(unsigned from, unsigned to) const
{
    if (from == to || from >= shape_.chips || to >= shape_.chips)
        sim::panic("bad route %u -> %u", from, to);
    unsigned waypoint = to;
    if (idx_[from * shape_.chips + to] < 0) {
        // No direct link: a non-gateway chip forwards to its own
        // blade's gateway; a gateway forwards to the destination
        // blade's gateway.
        unsigned ownGateway = shape_.gatewayOf(shape_.bladeOf(from));
        waypoint = from != ownGateway
                       ? ownGateway
                       : shape_.gatewayOf(shape_.bladeOf(to));
    }
    int i = idx_[from * shape_.chips + waypoint];
    if (i < 0)
        sim::panic("no link on route %u -> %u", from, to);
    return {edges_[static_cast<unsigned>(i)].link.get(),
            from < waypoint ? IoLink::Dir::Outbound
                            : IoLink::Dir::Inbound,
            waypoint};
}

Tick
LinkGraph::pathLatency(unsigned from, unsigned to) const
{
    Tick total = 0;
    while (from != to) {
        Hop h = firstHop(from, to);
        total += h.link->crossingLatency();
        from = h.next;
    }
    return total;
}

Tick
LinkGraph::minCrossingLatency() const
{
    Tick min = std::numeric_limits<Tick>::max();
    for (const auto &e : edges_)
        min = std::min(min, e.link->crossingLatency());
    return min;
}

void
LinkGraph::registerMetrics(stats::MetricsRegistry &reg,
                           const std::string &prefix) const
{
    for (const auto &e : edges_) {
        reg.counter(prefix + "." + e.suffix + ".bytes_outbound")
            .add(e.link->bytesSent(IoLink::Dir::Outbound));
        reg.counter(prefix + "." + e.suffix + ".bytes_inbound")
            .add(e.link->bytesSent(IoLink::Dir::Inbound));
    }
}

} // namespace cellbw::mem
