#include "mem/io_link.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace cellbw::mem
{

IoLink::IoLink(std::string name, sim::EventQueue &eq, const IoLinkParams &p)
    : sim::SimObject(std::move(name), eq), params_(p)
{
    if (params_.bytesPerTick <= 0.0)
        sim::fatal("%s: IO link rate must be positive", this->name().c_str());
}

Tick
IoLink::reserveSend(Dir dir, std::uint32_t bytes)
{
    int d = static_cast<int>(dir);
    auto service =
        static_cast<Tick>(std::ceil(bytes / params_.bytesPerTick));
    if (service == 0)
        service = 1;
    Tick start = std::max(laneNow(d), freeAt_[d]);
    freeAt_[d] = start + service;
    bytesSent_[d] += bytes;
    return freeAt_[d] + params_.crossingLatency;
}

} // namespace cellbw::mem
