#include "mem/page_allocator.hh"

#include "sim/logging.hh"
#include "util/align.hh"

namespace cellbw::mem
{

PageAllocator::PageAllocator(std::uint64_t pageBytes, unsigned numBanks)
    : pageBytes_(pageBytes), numBanks_(numBanks)
{
    if (!util::isPow2(pageBytes))
        sim::fatal("page size must be a power of two");
    if (numBanks == 0)
        sim::fatal("need at least one memory bank");
    // Page 0 is reserved so that EA 0 is never handed out.
    pageBank_.push_back(0);
}

EffAddr
PageAllocator::alloc(std::uint64_t bytes, const NumaPolicy &policy)
{
    if (bytes == 0)
        sim::fatal("zero-byte allocation");
    auto pages = util::divCeil(bytes, pageBytes_);
    EffAddr base = static_cast<EffAddr>(pageBank_.size()) * pageBytes_;
    for (std::uint64_t i = 0; i < pages; ++i) {
        unsigned bank = 0;
        switch (policy.kind) {
          case NumaPolicy::Kind::LocalOnly:
            bank = 0;
            break;
          case NumaPolicy::Kind::RemoteOnly:
            bank = numBanks_ > 1 ? 1 : 0;
            break;
          case NumaPolicy::Kind::Interleave:
            if (numBanks_ == 1) {
                bank = 0;
            } else {
                // Error diffusion keeps the realized ratio within one
                // page of bank0Share at every prefix of the allocation.
                carry_ += policy.bank0Share;
                if (carry_ >= 1.0 - 1e-12) {
                    bank = 0;
                    carry_ -= 1.0;
                } else {
                    // Remote pages rotate over the non-local banks; on
                    // a two-bank blade this is always bank 1.
                    bank = 1 + static_cast<unsigned>(
                                   spill_++ % (numBanks_ - 1));
                }
            }
            break;
          case NumaPolicy::Kind::Fixed:
            if (policy.fixedBank >= numBanks_) {
                sim::fatal("NUMA policy pins bank %u but only %u banks "
                           "exist",
                           policy.fixedBank, numBanks_);
            }
            bank = policy.fixedBank;
            break;
        }
        pageBank_.push_back(static_cast<std::uint8_t>(bank));
    }
    return base;
}

unsigned
PageAllocator::bankOf(EffAddr ea) const
{
    std::uint64_t pn = ea / pageBytes_;
    if (pn >= pageBank_.size())
        sim::fatal("access to unallocated page at ea=0x%llx",
                   (unsigned long long)ea);
    return pageBank_[pn];
}

std::uint64_t
PageAllocator::bytesAllocated() const
{
    return (pageBank_.size() - 1) * pageBytes_;
}

void
PageAllocator::reset()
{
    pageBank_.clear();
    pageBank_.push_back(0);
    carry_ = 0.0;
    spill_ = 0;
}

} // namespace cellbw::mem
