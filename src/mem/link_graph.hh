/**
 * @file
 * The cluster's inter-chip link fabric.
 *
 * Every chip pair that eib::ClusterShape names gets one IoLink: the
 * on-blade IOIF/BIF links first (the dual-Cell blade's 7 GB/s link is
 * edge 0, still named `<prefix>.ioif`), then the inter-blade links
 * between blade gateways.  Routing is deterministic: a chip that is not
 * its blade's gateway first forwards to its gateway, gateways forward
 * directly to the destination blade's gateway, so any path is at most
 * three hops.
 *
 * Data transfers serialize on every link of the path (each hop's
 * completion re-enters sendData from the intermediate chip, which keeps
 * each lane's reservation clock owned by its source partition under
 * --sim-jobs).  Commands and acks are latency-only and use
 * pathLatency() with a direct cross-partition post instead.
 */

#ifndef CELLBW_MEM_LINK_GRAPH_HH
#define CELLBW_MEM_LINK_GRAPH_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "eib/topology.hh"
#include "mem/io_link.hh"

namespace cellbw::stats
{
class MetricsRegistry;
}

namespace cellbw::mem
{

class LinkGraph
{
  public:
    struct Edge
    {
        unsigned lo;
        unsigned hi;
        bool interBlade;
        std::string suffix;            // metric name: ioif, blade0_1, ...
        std::unique_ptr<IoLink> link;
    };

    /** One step of a route: cross @p link on @p lane, arriving at
     * chip @p next. */
    struct Hop
    {
        IoLink *link;
        IoLink::Dir lane;
        unsigned next;
    };

    LinkGraph(const std::string &prefix, sim::EventQueue &eq,
              eib::ClusterShape shape, const IoLinkParams &ioif,
              const IoLinkParams &bladeLink);

    const eib::ClusterShape &shape() const { return shape_; }
    std::size_t numLinks() const { return edges_.size(); }
    const Edge &edge(std::size_t i) const { return edges_[i]; }
    IoLink &link(std::size_t i) { return *edges_[i].link; }

    /** Direct link between @p a and @p b, or nullptr. */
    IoLink *
    linkBetween(unsigned a, unsigned b)
    {
        int i = idx_[a * shape_.chips + b];
        return i < 0 ? nullptr : edges_[static_cast<unsigned>(i)].link.get();
    }

    /** First routing step from @p from towards @p to (from != to). */
    Hop firstHop(unsigned from, unsigned to) const;

    /** Sum of crossing latencies along the route (0 when from == to). */
    Tick pathLatency(unsigned from, unsigned to) const;

    /** Smallest crossing latency of any link: the conservative
     * lookahead bound for the partitioned engine. */
    Tick minCrossingLatency() const;

    /**
     * Move @p bytes from chip @p from to chip @p to, serializing on
     * every link of the route; @p onDone fires when the tail arrives at
     * @p to (on @p to's partition under --sim-jobs).
     */
    template <typename F>
    void
    sendData(unsigned from, unsigned to, std::uint32_t bytes, F &&onDone)
    {
        const Hop h = firstHop(from, to);
        if (h.next == to) {
            h.link->send(h.lane, bytes, std::forward<F>(onDone));
            return;
        }
        h.link->send(
            h.lane, bytes,
            [this, next = h.next, to, bytes,
             onDone = IoLink::CrossingFn(
                 std::forward<F>(onDone))]() mutable {
                sendData(next, to, bytes, std::move(onDone));
            });
    }

    /**
     * Partitioned-simulation wiring: every link's lanes read their
     * source chip's queue clock and post completions into the
     * destination chip's partition via @p post.
     */
    template <typename QueueOf, typename Post>
    void
    setPartitioned(QueueOf &&queueOf, Post post)
    {
        for (auto &e : edges_) {
            e.link->setPartitioned(
                queueOf(e.lo), queueOf(e.hi),
                [post, lo = e.lo, hi = e.hi](IoLink::Dir d, Tick when,
                                             IoLink::CrossingFn fn) {
                    bool out = d == IoLink::Dir::Outbound;
                    post(out ? lo : hi, out ? hi : lo, when,
                         std::move(fn));
                });
        }
    }

    /** Book every link's per-lane byte counters under
     * `<prefix>.<suffix>.bytes_{outbound,inbound}`. */
    void registerMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const;

  private:
    eib::ClusterShape shape_;
    std::vector<Edge> edges_;
    std::vector<int> idx_;             // chips x chips -> edge or -1
};

} // namespace cellbw::mem

#endif // CELLBW_MEM_LINK_GRAPH_HH
