/**
 * @file
 * NUMA page allocator for the dual-bank blade.
 *
 * The paper's machine boots with maxcpus=2 (only the first Cell runs
 * threads) but keeps both 256 MB XDR banks visible: the local bank via
 * the MIC and the second chip's bank via the IOIF.  Linux (NUMA enabled,
 * 64 KB pages) spreads a large allocation over both banks, which is how
 * two SPEs together exceed the 16.8 GB/s a single bank's ramp provides.
 *
 * The allocator assigns each 64 KB page to a bank according to a policy;
 * the default mirrors the measured behaviour (roughly 2/3 of the pages
 * local, the remainder on the remote bank).
 */

#ifndef CELLBW_MEM_PAGE_ALLOCATOR_HH
#define CELLBW_MEM_PAGE_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace cellbw::mem
{

struct NumaPolicy
{
    enum class Kind
    {
        LocalOnly,      ///< all pages on bank 0 (behind the MIC)
        RemoteOnly,     ///< all pages on bank 1 (behind the IOIF)
        Interleave,     ///< deterministic mix with bank0Share on bank 0
        Fixed,          ///< all pages on one named bank (cluster slabs)
    };

    Kind kind = Kind::Interleave;
    double bank0Share = 0.65;
    unsigned fixedBank = 0;

    static NumaPolicy local() { return {Kind::LocalOnly, 1.0}; }
    static NumaPolicy remote() { return {Kind::RemoteOnly, 0.0}; }

    static NumaPolicy
    interleave(double share)
    {
        return {Kind::Interleave, share};
    }

    /** Pin every page of the allocation to bank @p b (chip b's XDR). */
    static NumaPolicy
    onBank(unsigned b)
    {
        NumaPolicy p;
        p.kind = Kind::Fixed;
        p.bank0Share = b == 0 ? 1.0 : 0.0;
        p.fixedBank = b;
        return p;
    }
};

class PageAllocator
{
  public:
    PageAllocator(std::uint64_t pageBytes, unsigned numBanks);

    /**
     * Reserve @p bytes (rounded up to whole pages) and assign each page
     * a bank per @p policy.  @return the base effective address.
     */
    EffAddr alloc(std::uint64_t bytes, const NumaPolicy &policy);

    /** Bank that holds the page containing @p ea. */
    unsigned bankOf(EffAddr ea) const;

    /** Total bytes allocated so far. */
    std::uint64_t bytesAllocated() const;

    std::uint64_t pageBytes() const { return pageBytes_; }

    /** Release everything (addresses are never reused mid-run). */
    void reset();

  private:
    std::uint64_t pageBytes_;
    unsigned numBanks_;
    std::vector<std::uint8_t> pageBank_;   // page index -> bank
    double carry_ = 0.0;                   // error-diffusion accumulator
    std::uint64_t spill_ = 0;              // interleave remote rotation
};

} // namespace cellbw::mem

#endif // CELLBW_MEM_PAGE_ALLOCATOR_HH
