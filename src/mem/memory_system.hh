/**
 * @file
 * The cluster's main-storage domain: one XDR bank per chip (at least
 * two, so the single-chip blade still sees the second bank behind the
 * IOIF), the inter-chip link graph, the NUMA page allocator, and the
 * data contents.
 *
 * Timing and data are deliberately separate: MemorySystem answers
 * "when is this line available at the MIC/IOIF ramp" while the caller
 * (the cell-level DMA router) moves the actual bytes and models the EIB
 * part of the journey.
 */

#ifndef CELLBW_MEM_MEMORY_SYSTEM_HH
#define CELLBW_MEM_MEMORY_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/dram_bank.hh"
#include "mem/link_graph.hh"
#include "mem/page_allocator.hh"
#include "sim/sim_object.hh"

namespace cellbw::mem
{

struct MemorySystemParams
{
    std::uint64_t pageBytes = 64 * util::KiB;
    DramBankParams bank0;
    DramBankParams bank1;
    IoLinkParams ioLink;

    /** Inter-blade link (slower, longer than the on-blade IOIF). */
    IoLinkParams bladeLink;

    /** Cluster shape; a bank exists per chip (minimum two). */
    unsigned numChips = 1;
    unsigned numBlades = 0;    ///< 0 = auto: two chips per blade
};

class MemorySystem : public sim::SimObject
{
  public:
    /**
     * @p bankQueues binds bank i to another event queue (chip i's
     * partition in a partitioned simulation); by default every bank
     * lives on @p eq.
     */
    MemorySystem(std::string name, sim::EventQueue &eq,
                 const MemorySystemParams &params,
                 const std::vector<sim::EventQueue *> &bankQueues = {});

    /**
     * Partitioned-simulation hook for the PPE's remote line paths: the
     * command/ack must hop between the chips' event queues.  The hook
     * posts @p fn to run at tick @p when on chip @p dstChip's queue.
     */
    using CrossFn = util::InlineFunction<void(), 176>;
    using CrossPost =
        std::function<void(unsigned srcChip, unsigned dstChip, Tick when,
                           CrossFn fn)>;

    void setPartitioned(CrossPost post) { crossPost_ = std::move(post); }

    /** Allocate simulated memory; returns the base effective address. */
    EffAddr alloc(std::uint64_t bytes, const NumaPolicy &policy);

    unsigned bankOf(EffAddr ea) const { return allocator_.bankOf(ea); }
    bool isRemote(EffAddr ea) const { return bankOf(ea) != 0; }

    /**
     * Timing of a line read: @p onDone fires when the line's data is
     * available at the memory-side EIB ramp of chip 0 (MIC for bank 0,
     * IOIF for a remote bank; remote reads pay the route's crossings
     * both ways, serialized on every link on the way back).
     */
    template <typename F>
    void
    readLine(EffAddr ea, std::uint32_t bytes, F &&onDone)
    {
        const unsigned b = bankOf(ea);
        if (b == 0) {
            banks_[0]->access(ea, bytes, false, std::forward<F>(onDone));
            return;
        }
        // Remote: the read command crosses to the bank's chip (latency
        // only; commands are tiny), the bank services it, and the data
        // crosses back at the links' serialized rates.
        const Tick cmd = links_->pathLatency(0, b);
        if (crossPost_) {
            // Partitioned: the command hops to chip b's queue; the
            // data crossings ride the links' remote-post hooks home.
            crossPost_(
                0, b, eventQueue().now() + cmd,
                CrossFn([this, ea, bytes, b,
                         onDone = sim::EventQueue::Callback(
                             std::forward<F>(onDone))]() mutable {
                    banks_[b]->access(
                        ea, bytes, false,
                        [this, bytes, b,
                         onDone = std::move(onDone)]() mutable {
                            links_->sendData(b, 0, bytes,
                                             std::move(onDone));
                        });
                }));
            return;
        }
        eventQueue().schedule(
            cmd,
            [this, ea, bytes, b,
             onDone = std::forward<F>(onDone)]() mutable {
                banks_[b]->access(
                    ea, bytes, false,
                    [this, bytes, b,
                     onDone = std::move(onDone)]() mutable {
                        links_->sendData(b, 0, bytes, std::move(onDone));
                    });
            });
    }

    /**
     * Timing of a line write: @p onDone fires when the write has been
     * accepted by the target bank (writes are posted).
     */
    template <typename F>
    void
    writeLine(EffAddr ea, std::uint32_t bytes, F &&onDone)
    {
        const unsigned b = bankOf(ea);
        if (b == 0) {
            banks_[0]->access(ea, bytes, true, std::forward<F>(onDone));
            return;
        }
        if (crossPost_) {
            // Partitioned: the write rides the links to chip b, the far
            // bank accepts it, and the ack crosses back — the return
            // hop keeps the post inside the lookahead window even when
            // an ablation shrinks the bank latency below the crossing.
            links_->sendData(
                0, b, bytes,
                [this, ea, bytes, b,
                 onDone = sim::EventQueue::Callback(
                     std::forward<F>(onDone))]() mutable {
                    Tick completion =
                        banks_[b]->reserveAccess(ea, bytes, true);
                    crossPost_(b, 0,
                               completion + links_->pathLatency(b, 0),
                               CrossFn(std::move(onDone)));
                });
            return;
        }
        links_->sendData(
            0, b, bytes,
            [this, ea, bytes, b, onDone = std::forward<F>(onDone)]() mutable {
                banks_[b]->access(ea, bytes, true, std::move(onDone));
            });
    }

    BackingStore &store() { return store_; }
    const BackingStore &store() const { return store_; }
    PageAllocator &allocator() { return allocator_; }
    unsigned numBanks() const { return numBanks_; }
    DramBank &bank(unsigned i);

    LinkGraph &links() { return *links_; }
    const LinkGraph &links() const { return *links_; }

    /** The dual-Cell blade's IOIF (link 0), kept for the 2-chip API. */
    IoLink &ioLink() { return links_->link(0); }

    /**
     * Accumulate the memory system's utilization counters into @p reg:
     * every bank under `<prefix>.bank<i>.*` and every link's bytes
     * under `<prefix>.<link>.bytes_outbound` / `.bytes_inbound` (the
     * blade's IOIF keeps its `.ioif.*` names).
     */
    void registerMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const;

  private:
    PageAllocator allocator_;
    BackingStore store_;
    unsigned numBanks_;
    std::vector<std::unique_ptr<DramBank>> banks_;
    std::unique_ptr<LinkGraph> links_;
    CrossPost crossPost_;
};

} // namespace cellbw::mem

#endif // CELLBW_MEM_MEMORY_SYSTEM_HH
