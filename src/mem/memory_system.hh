/**
 * @file
 * The blade's main-storage domain: two XDR banks, the IOIF link to the
 * second chip's bank, the NUMA page allocator, and the data contents.
 *
 * Timing and data are deliberately separate: MemorySystem answers
 * "when is this line available at the MIC/IOIF ramp" while the caller
 * (the cell-level DMA router) moves the actual bytes and models the EIB
 * part of the journey.
 */

#ifndef CELLBW_MEM_MEMORY_SYSTEM_HH
#define CELLBW_MEM_MEMORY_SYSTEM_HH

#include <functional>
#include <memory>

#include "mem/backing_store.hh"
#include "mem/dram_bank.hh"
#include "mem/io_link.hh"
#include "mem/page_allocator.hh"
#include "sim/sim_object.hh"

namespace cellbw::mem
{

struct MemorySystemParams
{
    std::uint64_t pageBytes = 64 * util::KiB;
    DramBankParams bank0;
    DramBankParams bank1;
    IoLinkParams ioLink;
};

class MemorySystem : public sim::SimObject
{
  public:
    MemorySystem(std::string name, sim::EventQueue &eq,
                 const MemorySystemParams &params);

    /** Allocate simulated memory; returns the base effective address. */
    EffAddr alloc(std::uint64_t bytes, const NumaPolicy &policy);

    unsigned bankOf(EffAddr ea) const { return allocator_.bankOf(ea); }
    bool isRemote(EffAddr ea) const { return bankOf(ea) != 0; }

    /**
     * Timing of a line read: @p onDone fires when the line's data is
     * available at the memory-side EIB ramp (MIC for bank 0, IOIF for
     * bank 1; remote reads pay the link crossing both ways).
     */
    void readLine(EffAddr ea, std::uint32_t bytes,
                  std::function<void()> onDone);

    /**
     * Timing of a line write: @p onDone fires when the write has been
     * accepted by the target bank (writes are posted).
     */
    void writeLine(EffAddr ea, std::uint32_t bytes,
                   std::function<void()> onDone);

    BackingStore &store() { return store_; }
    const BackingStore &store() const { return store_; }
    PageAllocator &allocator() { return allocator_; }
    DramBank &bank(unsigned i);
    IoLink &ioLink() { return *ioLink_; }

    /**
     * Accumulate the memory system's utilization counters into @p reg:
     * both banks under `<prefix>.bank<i>.*` and the IOIF link's bytes
     * under `<prefix>.ioif.bytes_outbound` / `.bytes_inbound`.
     */
    void registerMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const;

  private:
    PageAllocator allocator_;
    BackingStore store_;
    std::unique_ptr<DramBank> banks_[2];
    std::unique_ptr<IoLink> ioLink_;
};

} // namespace cellbw::mem

#endif // CELLBW_MEM_MEMORY_SYSTEM_HH
