/**
 * @file
 * The blade's main-storage domain: two XDR banks, the IOIF link to the
 * second chip's bank, the NUMA page allocator, and the data contents.
 *
 * Timing and data are deliberately separate: MemorySystem answers
 * "when is this line available at the MIC/IOIF ramp" while the caller
 * (the cell-level DMA router) moves the actual bytes and models the EIB
 * part of the journey.
 */

#ifndef CELLBW_MEM_MEMORY_SYSTEM_HH
#define CELLBW_MEM_MEMORY_SYSTEM_HH

#include <functional>
#include <memory>

#include "mem/backing_store.hh"
#include "mem/dram_bank.hh"
#include "mem/io_link.hh"
#include "mem/page_allocator.hh"
#include "sim/sim_object.hh"

namespace cellbw::mem
{

struct MemorySystemParams
{
    std::uint64_t pageBytes = 64 * util::KiB;
    DramBankParams bank0;
    DramBankParams bank1;
    IoLinkParams ioLink;
};

class MemorySystem : public sim::SimObject
{
  public:
    /**
     * @p bank1Queue binds the remote bank to another event queue (the
     * second chip's partition in a partitioned simulation); by default
     * both banks live on @p eq.
     */
    MemorySystem(std::string name, sim::EventQueue &eq,
                 const MemorySystemParams &params,
                 sim::EventQueue *bank1Queue = nullptr);

    /**
     * Partitioned-simulation hook for the PPE's remote line paths: the
     * command/ack must hop between the chips' event queues.  The hook
     * posts @p fn to run at tick @p when on chip @p dstChip's queue.
     */
    using CrossFn = util::InlineFunction<void(), 176>;
    using CrossPost =
        std::function<void(unsigned srcChip, unsigned dstChip, Tick when,
                           CrossFn fn)>;

    void setPartitioned(CrossPost post) { crossPost_ = std::move(post); }

    /** Allocate simulated memory; returns the base effective address. */
    EffAddr alloc(std::uint64_t bytes, const NumaPolicy &policy);

    unsigned bankOf(EffAddr ea) const { return allocator_.bankOf(ea); }
    bool isRemote(EffAddr ea) const { return bankOf(ea) != 0; }

    /**
     * Timing of a line read: @p onDone fires when the line's data is
     * available at the memory-side EIB ramp (MIC for bank 0, IOIF for
     * bank 1; remote reads pay the link crossing both ways).
     */
    template <typename F>
    void
    readLine(EffAddr ea, std::uint32_t bytes, F &&onDone)
    {
        if (bankOf(ea) == 0) {
            banks_[0]->access(ea, bytes, false, std::forward<F>(onDone));
            return;
        }
        // Remote: the read command crosses outbound (latency only;
        // commands are tiny), the bank services it, and the data
        // crosses inbound at the link's serialized rate.
        if (crossPost_) {
            // Partitioned: the command hops to chip 1's queue; the
            // data crossing rides the link's remote-post hook home.
            crossPost_(
                0, 1, eventQueue().now() + ioLink_->crossingLatency(),
                CrossFn([this, ea, bytes,
                         onDone = sim::EventQueue::Callback(
                             std::forward<F>(onDone))]() mutable {
                    banks_[1]->access(
                        ea, bytes, false,
                        [this, bytes,
                         onDone = std::move(onDone)]() mutable {
                            ioLink_->send(IoLink::Dir::Inbound, bytes,
                                          std::move(onDone));
                        });
                }));
            return;
        }
        eventQueue().schedule(
            ioLink_->crossingLatency(),
            [this, ea, bytes,
             onDone = std::forward<F>(onDone)]() mutable {
                banks_[1]->access(
                    ea, bytes, false,
                    [this, bytes, onDone = std::move(onDone)]() mutable {
                        ioLink_->send(IoLink::Dir::Inbound, bytes,
                                      std::move(onDone));
                    });
            });
    }

    /**
     * Timing of a line write: @p onDone fires when the write has been
     * accepted by the target bank (writes are posted).
     */
    template <typename F>
    void
    writeLine(EffAddr ea, std::uint32_t bytes, F &&onDone)
    {
        if (bankOf(ea) == 0) {
            banks_[0]->access(ea, bytes, true, std::forward<F>(onDone));
            return;
        }
        if (crossPost_) {
            // Partitioned: the write rides the link to chip 1, the far
            // bank accepts it, and the ack crosses back — the return
            // hop keeps the post inside the lookahead window even when
            // an ablation shrinks the bank latency below the crossing.
            ioLink_->send(
                IoLink::Dir::Outbound, bytes,
                [this, ea, bytes,
                 onDone = sim::EventQueue::Callback(
                     std::forward<F>(onDone))]() mutable {
                    Tick completion =
                        banks_[1]->reserveAccess(ea, bytes, true);
                    crossPost_(1, 0,
                               completion + ioLink_->crossingLatency(),
                               CrossFn(std::move(onDone)));
                });
            return;
        }
        ioLink_->send(
            IoLink::Dir::Outbound, bytes,
            [this, ea, bytes, onDone = std::forward<F>(onDone)]() mutable {
                banks_[1]->access(ea, bytes, true, std::move(onDone));
            });
    }

    BackingStore &store() { return store_; }
    const BackingStore &store() const { return store_; }
    PageAllocator &allocator() { return allocator_; }
    DramBank &bank(unsigned i);
    IoLink &ioLink() { return *ioLink_; }

    /**
     * Accumulate the memory system's utilization counters into @p reg:
     * both banks under `<prefix>.bank<i>.*` and the IOIF link's bytes
     * under `<prefix>.ioif.bytes_outbound` / `.bytes_inbound`.
     */
    void registerMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const;

  private:
    PageAllocator allocator_;
    BackingStore store_;
    std::unique_ptr<DramBank> banks_[2];
    std::unique_ptr<IoLink> ioLink_;
    CrossPost crossPost_;
};

} // namespace cellbw::mem

#endif // CELLBW_MEM_MEMORY_SYSTEM_HH
