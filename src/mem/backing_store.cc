#include "mem/backing_store.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "util/align.hh"

namespace cellbw::mem
{

BackingStore::BackingStore(std::uint64_t pageBytes)
    : pageBytes_(pageBytes)
{
    if (!util::isPow2(pageBytes))
        sim::fatal("backing-store page size must be a power of two");
}

std::uint8_t *
BackingStore::pageFor(EffAddr ea)
{
    std::uint64_t pn = ea / pageBytes_;
    auto it = pages_.find(pn);
    if (it == pages_.end()) {
        auto page = std::make_unique<std::uint8_t[]>(pageBytes_);
        std::memset(page.get(), 0, pageBytes_);
        it = pages_.emplace(pn, std::move(page)).first;
    }
    return it->second.get();
}

const std::uint8_t *
BackingStore::pageForRead(EffAddr ea) const
{
    std::uint64_t pn = ea / pageBytes_;
    auto it = pages_.find(pn);
    return it == pages_.end() ? nullptr : it->second.get();
}

void
BackingStore::write(EffAddr ea, const void *src, std::uint64_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        std::uint64_t off = ea % pageBytes_;
        std::uint64_t chunk = std::min(size, pageBytes_ - off);
        std::memcpy(pageFor(ea) + off, p, chunk);
        ea += chunk;
        p += chunk;
        size -= chunk;
    }
}

void
BackingStore::read(EffAddr ea, void *dst, std::uint64_t size) const
{
    auto *p = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        std::uint64_t off = ea % pageBytes_;
        std::uint64_t chunk = std::min(size, pageBytes_ - off);
        const std::uint8_t *page = pageForRead(ea);
        if (page)
            std::memcpy(p, page + off, chunk);
        else
            std::memset(p, 0, chunk);
        ea += chunk;
        p += chunk;
        size -= chunk;
    }
}

void
BackingStore::fill(EffAddr ea, std::uint8_t value, std::uint64_t size)
{
    while (size > 0) {
        std::uint64_t off = ea % pageBytes_;
        std::uint64_t chunk = std::min(size, pageBytes_ - off);
        std::memset(pageFor(ea) + off, value, chunk);
        ea += chunk;
        size -= chunk;
    }
}

void
BackingStore::touch(EffAddr ea, std::uint64_t size)
{
    for (EffAddr a = ea - ea % pageBytes_; a < ea + size; a += pageBytes_)
        pageFor(a);
}

std::uint8_t
BackingStore::byteAt(EffAddr ea) const
{
    const std::uint8_t *page = pageForRead(ea);
    return page ? page[ea % pageBytes_] : 0;
}

} // namespace cellbw::mem
