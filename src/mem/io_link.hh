/**
 * @file
 * IOIF / BIF FlexIO link model.
 *
 * On the dual-Cell blade the second chip's XDR bank is reached through
 * the IOIF, which the paper quotes at 7 GB/s.  The link serializes
 * traffic per direction at that rate and adds a fixed crossing latency.
 */

#ifndef CELLBW_MEM_IO_LINK_HH
#define CELLBW_MEM_IO_LINK_HH

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/sim_object.hh"

namespace cellbw::mem
{

struct IoLinkParams
{
    /** Per-direction sustained rate, bytes per tick (~7 GB/s). */
    double bytesPerTick = 3.33;

    /** One-way crossing latency in ticks (~60 ns). */
    Tick crossingLatency = 126;
};

class IoLink : public sim::SimObject
{
  public:
    enum class Dir { Outbound = 0, Inbound = 1 };

    IoLink(std::string name, sim::EventQueue &eq, const IoLinkParams &p);

    using Callback = sim::EventQueue::Callback;

    /**
     * Partitioned-simulation hook (see cell/cell_system).  A crossing's
     * completion always belongs to the *destination* chip; when the
     * chips run on separate event queues, the hook carries the callback
     * into the far partition instead of the local queue.  @p srcQueues
     * names the queue each lane's senders run on (Outbound = chip 0,
     * Inbound = chip 1), which is where the lane's reservation clock
     * reads the current tick.
     *
     * The crossing callable is wider than an event callback: crossing
     * DMA lines carry their 128-byte payload with them (matching
     * sim::PartitionedEngine::ChannelFn).
     */
    using CrossingFn = util::InlineFunction<void(), 176>;
    using RemotePost = std::function<void(Dir, Tick, CrossingFn)>;

    void
    setPartitioned(sim::EventQueue *outboundSrc,
                   sim::EventQueue *inboundSrc, RemotePost post)
    {
        srcQueue_[static_cast<int>(Dir::Outbound)] = outboundSrc;
        srcQueue_[static_cast<int>(Dir::Inbound)] = inboundSrc;
        post_ = std::move(post);
    }

    /**
     * Send @p bytes across the link in direction @p dir; @p onDone fires
     * when the tail of the message arrives on the far side.
     */
    template <typename F>
    void
    send(Dir dir, std::uint32_t bytes, F &&onDone)
    {
        const Tick arrival = reserveSend(dir, bytes);
        if (post_) [[unlikely]] {
            post_(dir, arrival, CrossingFn(std::forward<F>(onDone)));
        } else {
            sim::TagScope tag(eventQueue(), sim::EventTag::IoLink);
            eventQueue().scheduleAt(arrival, std::forward<F>(onDone));
        }
    }

    /**
     * Serialize @p bytes onto lane @p dir; returns the tick the tail
     * arrives on the far side.  send() is this plus the completion.
     */
    Tick reserveSend(Dir dir, std::uint32_t bytes);

    std::uint64_t bytesSent(Dir dir) const
    {
        return bytesSent_[static_cast<int>(dir)];
    }

    Tick crossingLatency() const { return params_.crossingLatency; }

  private:
    /** Current tick of the queue that drives lane @p d's senders. */
    Tick
    laneNow(int d) const
    {
        return srcQueue_[d] ? srcQueue_[d]->now() : curTick();
    }

    IoLinkParams params_;
    Tick freeAt_[2] = {0, 0};
    std::uint64_t bytesSent_[2] = {0, 0};
    sim::EventQueue *srcQueue_[2] = {nullptr, nullptr};
    RemotePost post_;
};

} // namespace cellbw::mem

#endif // CELLBW_MEM_IO_LINK_HH
