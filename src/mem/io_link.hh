/**
 * @file
 * IOIF / BIF FlexIO link model.
 *
 * On the dual-Cell blade the second chip's XDR bank is reached through
 * the IOIF, which the paper quotes at 7 GB/s.  The link serializes
 * traffic per direction at that rate and adds a fixed crossing latency.
 */

#ifndef CELLBW_MEM_IO_LINK_HH
#define CELLBW_MEM_IO_LINK_HH

#include <cstdint>
#include <functional>

#include "sim/sim_object.hh"

namespace cellbw::mem
{

struct IoLinkParams
{
    /** Per-direction sustained rate, bytes per tick (~7 GB/s). */
    double bytesPerTick = 3.33;

    /** One-way crossing latency in ticks (~60 ns). */
    Tick crossingLatency = 126;
};

class IoLink : public sim::SimObject
{
  public:
    enum class Dir { Outbound = 0, Inbound = 1 };

    IoLink(std::string name, sim::EventQueue &eq, const IoLinkParams &p);

    /**
     * Send @p bytes across the link in direction @p dir; @p onDone fires
     * when the tail of the message arrives on the far side.
     */
    void send(Dir dir, std::uint32_t bytes, std::function<void()> onDone);

    std::uint64_t bytesSent(Dir dir) const
    {
        return bytesSent_[static_cast<int>(dir)];
    }

    Tick crossingLatency() const { return params_.crossingLatency; }

  private:
    IoLinkParams params_;
    Tick freeAt_[2] = {0, 0};
    std::uint64_t bytesSent_[2] = {0, 0};
};

} // namespace cellbw::mem

#endif // CELLBW_MEM_IO_LINK_HH
