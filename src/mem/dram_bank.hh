/**
 * @file
 * XDR DRAM bank timing model.
 *
 * The dual-Cell blade of the paper has one 256 MB XDR bank per chip.
 * The local bank is reached through the MIC (EIB ramp peak 16.8 GB/s);
 * the remote chip's bank is reached through the IOIF at 7 GB/s.
 *
 * The paper observes that a bank sustains clearly less than the ramp
 * peak ("that could be due to memory having to do other operations, like
 * refreshing, snooping, etc.").  The model therefore has a sustained
 * service rate below peak plus explicit periodic refresh windows.
 */

#ifndef CELLBW_MEM_DRAM_BANK_HH
#define CELLBW_MEM_DRAM_BANK_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/clock.hh"
#include "sim/sim_object.hh"
#include "util/types.hh"

namespace cellbw::stats
{
class MetricsRegistry;
}

namespace cellbw::mem
{

struct DramBankParams
{
    /** Sustained data service rate, bytes per tick (CPU cycle). */
    double bytesPerTick = 6.67;     // ~14 GB/s at 2.1 GHz

    /** Access latency (command decode + core access), ticks. */
    Tick accessLatency = 250;       // ~120 ns

    /** Refresh period; 0 disables refresh. */
    Tick refreshInterval = 16384;

    /** Bank unavailable this long at each refresh point. */
    Tick refreshDuration = 512;

    /**
     * Row (page) granularity for the row-hit/row-conflict counters
     * and, when @ref rowTiming is set, the open-page timing model.
     * XDR devices activate 2 KiB rows.  0 collapses everything into
     * a single row.
     */
    std::uint64_t rowBytes = 2048;

    /**
     * @name Timing row-buffer model (open-page policy).
     *
     * Off (the default), the row counters are purely observational: a
     * hit/conflict changes no timing, the sustained-below-peak service
     * rate folds the activate/precharge work in, and every access
     * completes accessLatency after its service slot — bit-identical
     * to the historical model.
     *
     * On, the bank keeps one row open per the open-page policy: an
     * access to the open row pays only the CAS-side rowHitLatency at
     * completion, while every row the access newly activates adds
     * rowMissPenalty ticks of bank occupancy (precharge + activate)
     * before its data can serialize through the pins.  accessLatency
     * is not used in this mode.  Random streams therefore lose
     * bandwidth to row thrashing while sequential streams keep it —
     * the Chen & Bader bank-sensitivity the random-access experiments
     * measure.
     */
    /** @{ */
    bool rowTiming = false;
    Tick rowHitLatency = 63;    ///< CAS-only completion, ~30 ns
    Tick rowMissPenalty = 168;  ///< precharge+activate occupancy, ~80 ns
    /** @} */
};

/**
 * A single in-order DRAM bank.  Requests serialize through the data
 * pins; reads complete accessLatency after their service slot, writes
 * are posted (complete at end of their service slot).
 */
class DramBank : public sim::SimObject
{
  public:
    DramBank(std::string name, sim::EventQueue &eq,
             const DramBankParams &params);

    /**
     * Enqueue an access of @p bytes at effective address @p ea.
     * @p onDone fires at the completion tick (data available for reads
     * / accepted for writes).  @p ea only feeds the row-hit/conflict
     * counters; timing depends on bytes alone.  The callable schedules
     * directly on the event queue (inline storage for small captures).
     */
    template <typename F>
    void
    access(EffAddr ea, std::uint32_t bytes, bool isWrite, F &&onDone)
    {
        const Tick completion = reserveAccess(ea, bytes, isWrite);
        sim::TagScope tag(eventQueue(), sim::EventTag::Dram);
        eventQueue().scheduleAt(completion, std::forward<F>(onDone));
    }

    /** Address-less convenience overload (counts as row address 0). */
    template <typename F>
    void
    access(std::uint32_t bytes, bool isWrite, F &&onDone)
    {
        access(0, bytes, isWrite, std::forward<F>(onDone));
    }

    /**
     * Reserve pin time for an access and book its counters; returns the
     * completion tick.  access() is this plus the completion event.
     */
    Tick reserveAccess(EffAddr ea, std::uint32_t bytes, bool isWrite);

    /** Earliest tick at which a new request could start service. */
    Tick busyUntil() const { return freeAt_; }

    /** Total bytes serviced. */
    std::uint64_t bytesServiced() const { return bytesServiced_; }

    /**
     * Number of refresh windows that delayed service so far.  The
     * pinned semantics: every refresh window that pushes back an
     * access's service start or splits its pin time counts exactly
     * once, and a window is never counted twice (a window that
     * delayed access A leaves freeAt_ past itself, so it cannot also
     * delay access B).  Zero-length windows (refreshDuration == 0)
     * delay nothing and never count.
     */
    std::uint64_t refreshStalls() const { return refreshStalls_; }

    /** @name Utilization counters (no timing effect unless
     *        rowTiming is set).
     *        An access touching only the bank's open row is a row hit;
     *        every row it newly activates — the first row when a
     *        different row was open, plus each additional row a
     *        spanning access crosses into — is a row conflict.
     *        A queue conflict is an access that arrived while the data
     *        pins were still busy with an earlier request. */
    /** @{ */
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowConflicts() const { return rowConflicts_; }
    std::uint64_t queueConflicts() const { return queueConflicts_; }
    /** @} */

    /**
     * Accumulate this bank's counters into @p reg under `<prefix>.*`
     * (bytes, accesses, row_hits, row_conflicts, queue_conflicts,
     * refresh_stalls).
     */
    void registerMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const;

  private:
    /** Advance @p t past any refresh window it falls into. */
    Tick skipRefresh(Tick t);

    /** Reserve @p service ticks of pin time starting no earlier than
     *  @p earliest; returns the end of the reserved slot. */
    Tick reserve(Tick earliest, Tick service);

    DramBankParams params_;
    Tick freeAt_ = 0;
    std::uint64_t bytesServiced_ = 0;
    std::uint64_t refreshStalls_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowConflicts_ = 0;
    std::uint64_t queueConflicts_ = 0;
    std::uint64_t openRow_ = 0;
    bool rowOpen_ = false;
};

} // namespace cellbw::mem

#endif // CELLBW_MEM_DRAM_BANK_HH
