/**
 * @file
 * Sparse byte-addressable backing store for the simulated main-storage
 * domain.
 *
 * DMA in the simulator moves real bytes so tests can assert end-to-end
 * data integrity, exactly like running the paper's codes would.  Storage
 * is allocated in 64 KB pages on first touch.
 */

#ifndef CELLBW_MEM_BACKING_STORE_HH
#define CELLBW_MEM_BACKING_STORE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/types.hh"

namespace cellbw::mem
{

class BackingStore
{
  public:
    explicit BackingStore(std::uint64_t pageBytes = 64 * util::KiB);

    /** Copy @p size bytes from @p src into simulated memory at @p ea. */
    void write(EffAddr ea, const void *src, std::uint64_t size);

    /** Copy @p size bytes out of simulated memory at @p ea into @p dst. */
    void read(EffAddr ea, void *dst, std::uint64_t size) const;

    /** Fill @p size bytes at @p ea with @p value. */
    void fill(EffAddr ea, std::uint8_t value, std::uint64_t size);

    /**
     * Pre-fault every page in [@p ea, @p ea + @p size).  A partitioned
     * simulation pre-touches each allocation so the page map is never
     * mutated while two chips access the store concurrently.
     */
    void touch(EffAddr ea, std::uint64_t size);

    /** Read a single byte (0 if the page was never touched). */
    std::uint8_t byteAt(EffAddr ea) const;

    std::uint64_t pageBytes() const { return pageBytes_; }
    std::size_t touchedPages() const { return pages_.size(); }

    /** Drop all contents. */
    void clear() { pages_.clear(); }

  private:
    std::uint8_t *pageFor(EffAddr ea);
    const std::uint8_t *pageForRead(EffAddr ea) const;

    std::uint64_t pageBytes_;
    std::unordered_map<std::uint64_t,
                       std::unique_ptr<std::uint8_t[]>> pages_;
};

} // namespace cellbw::mem

#endif // CELLBW_MEM_BACKING_STORE_HH
