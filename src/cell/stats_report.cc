#include "cell/stats_report.hh"

#include <algorithm>

#include "stats/table.hh"
#include "util/strings.hh"

namespace cellbw::cell
{

std::string
statsReport(CellSystem &sys)
{
    std::string out;
    double secs = sys.seconds();
    out += util::format("=== machine report @ %.3f us simulated ===\n",
                        secs * 1e6);

    // Per-SPE MFC activity.
    {
        stats::Table t({"spe", "phys", "ramp", "cmds", "lines", "bytes",
                        "DMA GB/s", "LS bytes", "faults"});
        std::uint64_t drops = 0, corruptions = 0, delays = 0;
        for (unsigned i = 0; i < sys.numSpes(); ++i) {
            auto &s = sys.spe(i);
            double gbps = secs > 0.0
                              ? s.mfc().bytesTransferred() / secs / 1e9
                              : 0.0;
            t.addRow({util::format("spe%u", i),
                      std::to_string(s.physicalSpe()),
                      eib::rampName(s.rampPos()),
                      std::to_string(s.mfc().commandsCompleted()),
                      std::to_string(s.mfc().linesSent()),
                      util::bytesToString(s.mfc().bytesTransferred()),
                      stats::Table::num(gbps),
                      util::bytesToString(s.ls().bytesAccessed()),
                      std::to_string(s.mfc().commandsFaulted())});
            drops += s.mfc().dropsInjected();
            corruptions += s.mfc().corruptionsInjected();
            delays += s.mfc().delaysInjected();
        }
        out += t.render();
        // Queue occupancy, from the per-command depth histogram.
        std::uint64_t cmds = 0, depth_sum = 0;
        std::size_t peak = 0;
        for (unsigned i = 0; i < sys.numSpes(); ++i) {
            const auto &h = sys.spe(i).mfc().queueDepthHist();
            for (std::size_t d = 0; d < h.size(); ++d) {
                if (!h[d])
                    continue;
                cmds += h[d];
                depth_sum += d * h[d];
                peak = std::max(peak, d);
            }
        }
        if (cmds > 0) {
            out += util::format(
                "mfc queues: mean depth %.1f, peak %zu\n",
                static_cast<double>(depth_sum) / cmds, peak);
        }
        if (drops + corruptions + delays > 0) {
            out += util::format(
                "fault injection: %llu drops, %llu corruptions, "
                "%llu delays\n",
                (unsigned long long)drops,
                (unsigned long long)corruptions,
                (unsigned long long)delays);
        }
    }

    // Checked-mode verdict.
    if (sys.verifying()) {
        const auto &v = sys.verifyStats();
        out += util::format(
            "verify: %llu transfers (%s) checked, %llu divergences, "
            "%llu faulted skipped\n",
            (unsigned long long)v.transfersChecked,
            util::bytesToString(v.bytesChecked).c_str(),
            (unsigned long long)v.divergences,
            (unsigned long long)v.faultedSkipped);
        if (!v.firstDivergence.empty())
            out += "  first divergence: " + v.firstDivergence + "\n";
    }

    // EIB rings, per chip.
    for (unsigned c = 0; c < sys.numChips(); ++c) {
        auto &eib = sys.eib(c);
        stats::Table t({"chip", "ring", "dir", "grants", "busy%"});
        for (unsigned r = 0; r < eib.numRings(); ++r) {
            const auto &ring = eib.ring(r);
            double busy = sys.now()
                              ? 100.0 * ring.busyTicks() / sys.now()
                              : 0.0;
            t.addRow({std::to_string(c), std::to_string(r),
                      ring.direction() == eib::RingDir::Clockwise
                          ? "cw" : "ccw",
                      std::to_string(ring.grants()),
                      stats::Table::num(busy, 1)});
        }
        out += "\n";
        out += t.render();
        out += util::format("eib%u: %llu packets, %s moved, "
                            "%llu contention ticks\n", c,
                            (unsigned long long)eib.packets(),
                            util::bytesToString(eib.bytesMoved()).c_str(),
                            (unsigned long long)eib.contentionTicks());
    }

    // Memory system.
    {
        auto &m = sys.memory();
        stats::Table t({"component", "bytes", "GB/s", "row hit%",
                        "conflicts", "refresh stalls"});
        for (unsigned b = 0; b < m.numBanks(); ++b) {
            auto &bank = m.bank(b);
            double gbps = secs > 0.0
                              ? bank.bytesServiced() / secs / 1e9
                              : 0.0;
            std::uint64_t rows = bank.rowHits() + bank.rowConflicts();
            t.addRow({util::format("bank%u", b),
                      util::bytesToString(bank.bytesServiced()),
                      stats::Table::num(gbps),
                      rows ? stats::Table::num(100.0 * bank.rowHits()
                                               / rows, 1)
                           : "-",
                      std::to_string(bank.queueConflicts()),
                      std::to_string(bank.refreshStalls())});
        }
        auto &links = m.links();
        for (unsigned l = 0; l < links.numLinks(); ++l) {
            std::uint64_t io =
                links.link(l).bytesSent(mem::IoLink::Dir::Outbound) +
                links.link(l).bytesSent(mem::IoLink::Dir::Inbound);
            t.addRow({links.edge(l).suffix + " (both dirs)",
                      util::bytesToString(io),
                      stats::Table::num(secs > 0.0 ? io / secs / 1e9
                                                   : 0.0),
                      "-", "-", "-"});
        }
        out += "\n";
        out += t.render();
    }

    // PPE caches.
    {
        auto &p = sys.ppu();
        out += util::format(
            "\nppe: L1 %llu hits / %llu misses, L2 %llu hits / %llu "
            "misses, %llu evictions\n",
            (unsigned long long)p.l1().hits(),
            (unsigned long long)p.l1().misses(),
            (unsigned long long)p.l2().hits(),
            (unsigned long long)p.l2().misses(),
            (unsigned long long)p.l2().evictions());
    }
    return out;
}

} // namespace cellbw::cell
