/**
 * @file
 * The assembled machine: one PPE, up to eight SPEs, the EIB, the MIC
 * and IOIF, and two XDR banks — plus the DMA router that moves lines
 * between them.
 *
 * A CellSystem is built per experiment run: construction draws the
 * logical-to-physical SPE placement from the given seed (libspe 1.1
 * gives the programmer no control over placement, so the paper runs
 * everything 10 times over different mappings; our affinity policies
 * beyond Random are the extension the paper asks libspe for).
 *
 * Execution engines.  A single-chip system runs on one event queue.
 * With numChips >= 2 each chip becomes a partition of a conservative
 * parallel engine (sim::PartitionedEngine): chip-local routing stays on
 * the chip's own queue, and anything that crosses a link (the on-blade
 * IOIF or an inter-blade link — see mem::LinkGraph) travels as a
 * cross-partition message delivered at least one crossing latency
 * later; multi-hop routes re-enter the router at each intermediate
 * chip.  The partitioned schedule is fixed — --sim-jobs only chooses
 * how many worker threads execute it, so reports are bit-identical for
 * any value.
 *
 * In-flight DMA lines live in a per-chip arena (Flight slots addressed
 * by index handles), so the routing stages capture {this, handle}
 * instead of moving a ~100-byte request through every closure: the
 * whole hot path schedules with inline-stored callbacks and recycles
 * storage instead of allocating.
 *
 * @code
 *   cell::CellConfig cfg;
 *   cell::CellSystem sys(cfg, seed);
 *   EffAddr buf = sys.malloc(32 * MiB);
 *   sys.launch(myProgram(sys, sys.spe(0), buf));
 *   sys.run();
 * @endcode
 */

#ifndef CELLBW_CELL_CELL_SYSTEM_HH
#define CELLBW_CELL_CELL_SYSTEM_HH

#include <memory>
#include <vector>

#include "cell/config.hh"
#include "eib/topology.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"
#include "sim/task.hh"
#include "trace/recorder.hh"

namespace cellbw::stats
{
class MetricsRegistry;
} // namespace cellbw::stats

namespace cellbw::cell
{

/** Base effective address of the memory-mapped local stores (the MFC
 *  uses the same constant to classify lines for its token windows). */
constexpr EffAddr lsEaBase = spe::lsApertureBase;

/** EA stride between consecutive SPEs' LS apertures. */
constexpr EffAddr lsEaStride = 1ull << 24;

class CellSystem
{
  public:
    /** Chip in the top handle bits so stages capture one word. */
    static constexpr std::uint32_t kChipShift = 28;

    /** The flight handle's chip field bounds the cluster size. */
    static constexpr unsigned kMaxChips = 1u << (32 - kChipShift);

    CellSystem(const CellConfig &cfg, std::uint64_t placementSeed);
    ~CellSystem();

    CellSystem(const CellSystem &) = delete;
    CellSystem &operator=(const CellSystem &) = delete;

    /** @name Component access. */
    /** @{ */
    /** Chip 0's event queue (the only queue of a single-chip system). */
    sim::EventQueue &
    eventQueue()
    {
        return engine_ ? engine_->queue(0) : *eq_;
    }
    const sim::ClockSpec &clock() const { return cfg_.clock; }
    const CellConfig &config() const { return cfg_; }
    /** The seed this run was built with (workloads derive their own
     *  streams from it so a run is a pure function of cfg + seed). */
    std::uint64_t placementSeed() const { return placementSeed_; }
    unsigned numSpes() const { return cfg_.numSpes; }
    unsigned numChips() const { return cfg_.numChips; }
    spe::Spe &spe(unsigned logical);
    ppe::Ppu &ppu() { return *ppu_; }
    mem::MemorySystem &memory() { return *memory_; }
    eib::Eib &eib(unsigned chip = 0);
    /** The partitioned engine, or nullptr on a single-chip system. */
    sim::PartitionedEngine *engine() { return engine_.get(); }
    /** @} */

    /** Allocate main memory with the config's NUMA policy. */
    EffAddr malloc(std::uint64_t bytes);
    EffAddr malloc(std::uint64_t bytes, const mem::NumaPolicy &policy);

    /**
     * Effective address of @p lsa inside logical SPE @p logical's
     * memory-mapped local store (for SPE-to-SPE DMA).
     */
    EffAddr lsEa(unsigned logical, LsAddr lsa = 0) const;

    /** True iff @p ea falls in some SPE's LS aperture. */
    bool isLsEa(EffAddr ea) const { return ea >= lsEaBase; }

    /** Launch a coroutine program; it is kept alive until reset. */
    void launch(sim::Task task);

    /**
     * Run the simulation until no events remain.  fatal()s if a
     * launched program has not finished (deadlock); rethrows the first
     * program exception.
     */
    void run();

    /**
     * Turn on event tracing: every MFC command and EIB packet from now
     * on is recorded.  @return the recorder for CSV dumps / timelines.
     */
    trace::Recorder &enableTracing();

    /** The recorder, or nullptr when tracing is off. */
    trace::Recorder *recorder() { return recorder_.get(); }

    /**
     * Accumulate every component's utilization counters into @p reg
     * (EIB rings, DRAM banks, MFC queues, PPE caches, plus `sim.runs`
     * and `sim.ticks`).  Counters *add* into @p reg, so snapshotting
     * several runs into one registry yields across-run totals; all
     * accumulation is commutative, keeping parallel seed sweeps
     * deterministic.  Call after run().
     */
    void snapshotMetrics(stats::MetricsRegistry &reg) const;

    /** @name Checked mode (config.verify / --verify).
     *
     *  Every completed non-faulted DMA command is cross-checked
     *  end-to-end: the LS bytes and the backing-store bytes of each
     *  transferred segment must agree once the command reports done.
     *  Faulted commands (dropped/corrupted) are *expected* to diverge
     *  and are skipped — recovery is the program's job. */
    /** @{ */
    struct VerifyStats
    {
        std::uint64_t transfersChecked = 0;
        std::uint64_t bytesChecked = 0;
        std::uint64_t divergences = 0;
        std::uint64_t faultedSkipped = 0;
        /** Diagnostics of the first divergence seen, empty if none. */
        std::string firstDivergence;
    };

    bool verifying() const { return cfg_.verify; }
    const VerifyStats &verifyStats() const { return verifyStats_; }
    /** @} */

    Tick
    now() const
    {
        return engine_ ? engine_->lastDispatchTick() : eq_->now();
    }

    /** Seconds of simulated time elapsed since construction. */
    double seconds() const { return cfg_.clock.seconds(now()); }

    /**
     * Worker threads run() will use: --sim-jobs clamped to the chip
     * count, forced to 1 when verification or tracing hooks (which
     * touch cross-chip state) are installed.
     */
    unsigned runThreads() const;

    /** @name Placement introspection.  Physical SPE slots 8c..8c+7
     *        live on chip c. */
    /** @{ */
    unsigned physicalOf(unsigned logical) const;
    unsigned chipOf(unsigned logical) const;
    unsigned rampOf(unsigned logical) const;
    const std::vector<std::uint32_t> &placement() const
    {
        return placement_;
    }
    std::string placementString() const;
    /** @} */

  private:
    /**
     * An in-flight DMA line and its routing state, arena-resident.
     * Stages address it by handle so closures stay inline-small; the
     * payload buffer carries line data across chip boundaries, where
     * the far side must not dereference the backing store or LS on the
     * home chip's behalf.
     */
    struct Flight
    {
        spe::LineRequest req;
        std::uint32_t next = 0;       ///< arena freelist link
        std::uint8_t bank = 0;        ///< memory routing: target bank
        std::uint8_t srcChip = 0;
        bool crossing = false;
        std::uint16_t srcSpe = 0;     ///< LS routing: data-holding SPE
        std::uint16_t dstSpe = 0;     ///< LS routing: receiving SPE
        LsAddr srcLsa = 0;
        LsAddr dstLsa = 0;
        std::uint8_t payload[spe::lineBytes];
    };

    class FlightArena
    {
      public:
        static constexpr std::uint32_t kNone = ~std::uint32_t(0);

        std::uint32_t
        acquire()
        {
            if (free_ == kNone) {
                slots_.emplace_back();
                return static_cast<std::uint32_t>(slots_.size() - 1);
            }
            std::uint32_t h = free_;
            free_ = slots_[h].next;
            return h;
        }

        void
        release(std::uint32_t h)
        {
            slots_[h].req = spe::LineRequest{};
            slots_[h].next = free_;
            free_ = h;
        }

        Flight &operator[](std::uint32_t h) { return slots_[h]; }

      private:
        std::vector<Flight> slots_;
        std::uint32_t free_ = kNone;
    };

    std::uint32_t
    acquireFlight(unsigned chip, spe::LineRequest &&req)
    {
        std::uint32_t h = arenas_[chip].acquire() |
                          (chip << kChipShift);
        flight(h).req = std::move(req);
        return h;
    }

    Flight &
    flight(std::uint32_t h)
    {
        return arenas_[h >> kChipShift][h & ((1u << kChipShift) - 1)];
    }

    void
    releaseFlight(std::uint32_t h)
    {
        arenas_[h >> kChipShift].release(h & ((1u << kChipShift) - 1));
    }

    sim::EventQueue &
    queue(unsigned chip)
    {
        return engine_ ? engine_->queue(chip) : *eq_;
    }

    void buildPlacement(std::uint64_t seed);
    void routeLine(spe::LineRequest &&req);

    /** @name Single-queue routing stages (numChips == 1). */
    /** @{ */
    void routeMemory(spe::LineRequest &&req);
    void routeLocalStore(spe::LineRequest &&req);
    void memGetAccess(std::uint32_t h);
    void memGetData(std::uint32_t h);
    void memGetDeliver(std::uint32_t h);
    void memGetLand(std::uint32_t h);
    void memPutRide(std::uint32_t h);
    void memPutStore(std::uint32_t h);
    void memPutBank(std::uint32_t h);
    void lsRead(std::uint32_t h);
    void lsRide(std::uint32_t h);
    void lsLand(std::uint32_t h);
    /** @} */

    /** @name Partitioned routing stages (numChips >= 2).  Far-side
     *        stages carry {home, far} chip indices by value: the far
     *        partition must not read the home chip's arena. */
    /** @{ */
    void partMemory(spe::LineRequest &&req);
    void partLocalStore(spe::LineRequest &&req);
    void partMemGetAccess(std::uint32_t h);
    void partMemGetRide(std::uint32_t h);
    void partMemGetLand(std::uint32_t h);
    void partMemPutRide(std::uint32_t h);
    void partMemPutStore(std::uint32_t h);
    void partMemGetFar(EffAddr ea, std::uint32_t bytes, std::uint32_t h,
                       unsigned homeChip, unsigned farChip);
    void partMemGetFarRide(EffAddr ea, std::uint32_t bytes,
                           std::uint32_t h, unsigned homeChip,
                           unsigned farChip);
    void partMemGetFarCross(EffAddr ea, std::uint32_t bytes,
                            std::uint32_t h, unsigned homeChip,
                            unsigned farChip);
    void partMemGetHome(std::uint32_t h);
    void partMemPutCross(std::uint32_t h);
    void partMemPutFarRide(EffAddr ea, std::uint32_t bytes,
                           std::uint32_t h, unsigned homeChip,
                           unsigned farChip);
    void partLsRead(std::uint32_t h);
    void partLsRide(std::uint32_t h);
    void partLsLand(std::uint32_t h);
    void partLsGetFarRideFrom(std::uint16_t peer, LsAddr peerLsa,
                              std::uint32_t bytes, std::uint32_t h,
                              unsigned homeChip);
    void partLsGetHome(std::uint32_t h);
    void partLsPutCross(std::uint32_t h);
    void partLsPutFarLand(std::uint32_t tempH, std::uint32_t homeH,
                          unsigned homeChip);
    void finishFlight(std::uint32_t h);
    /** @} */

    void verifyCompletion(const spe::Mfc::Completion &done);
    void readEa(EffAddr ea, std::uint8_t *buf, std::uint32_t bytes);

    CellConfig cfg_;
    std::uint64_t placementSeed_ = 0;
    std::unique_ptr<sim::EventQueue> eq_;            ///< numChips == 1
    std::unique_ptr<sim::PartitionedEngine> engine_; ///< numChips >= 2
    std::unique_ptr<mem::MemorySystem> memory_;
    std::vector<std::unique_ptr<eib::Eib>> eibs_;
    std::unique_ptr<ppe::Ppu> ppu_;
    std::vector<std::unique_ptr<spe::Spe>> spes_;
    std::vector<FlightArena> arenas_;        // one per chip
    std::vector<std::uint32_t> placement_;   // logical -> physical SPE
    std::vector<sim::Task> programs_;
    std::unique_ptr<trace::Recorder> recorder_;
    VerifyStats verifyStats_;
};

} // namespace cellbw::cell

#endif // CELLBW_CELL_CELL_SYSTEM_HH
