/**
 * @file
 * The assembled machine: one PPE, up to eight SPEs, the EIB, the MIC
 * and IOIF, and two XDR banks — plus the DMA router that moves lines
 * between them.
 *
 * A CellSystem is built per experiment run: construction draws the
 * logical-to-physical SPE placement from the given seed (libspe 1.1
 * gives the programmer no control over placement, so the paper runs
 * everything 10 times over different mappings; our affinity policies
 * beyond Random are the extension the paper asks libspe for).
 *
 * @code
 *   cell::CellConfig cfg;
 *   cell::CellSystem sys(cfg, seed);
 *   EffAddr buf = sys.malloc(32 * MiB);
 *   sys.launch(myProgram(sys, sys.spe(0), buf));
 *   sys.run();
 * @endcode
 */

#ifndef CELLBW_CELL_CELL_SYSTEM_HH
#define CELLBW_CELL_CELL_SYSTEM_HH

#include <memory>
#include <vector>

#include "cell/config.hh"
#include "eib/topology.hh"
#include "sim/rng.hh"
#include "sim/task.hh"
#include "trace/recorder.hh"

namespace cellbw::stats
{
class MetricsRegistry;
} // namespace cellbw::stats

namespace cellbw::cell
{

/** Base effective address of the memory-mapped local stores (the MFC
 *  uses the same constant to classify lines for its token windows). */
constexpr EffAddr lsEaBase = spe::lsApertureBase;

/** EA stride between consecutive SPEs' LS apertures. */
constexpr EffAddr lsEaStride = 1ull << 24;

class CellSystem
{
  public:
    CellSystem(const CellConfig &cfg, std::uint64_t placementSeed);
    ~CellSystem();

    CellSystem(const CellSystem &) = delete;
    CellSystem &operator=(const CellSystem &) = delete;

    /** @name Component access. */
    /** @{ */
    sim::EventQueue &eventQueue() { return *eq_; }
    const sim::ClockSpec &clock() const { return cfg_.clock; }
    const CellConfig &config() const { return cfg_; }
    unsigned numSpes() const { return cfg_.numSpes; }
    unsigned numChips() const { return cfg_.numChips; }
    spe::Spe &spe(unsigned logical);
    ppe::Ppu &ppu() { return *ppu_; }
    mem::MemorySystem &memory() { return *memory_; }
    eib::Eib &eib(unsigned chip = 0);
    /** @} */

    /** Allocate main memory with the config's NUMA policy. */
    EffAddr malloc(std::uint64_t bytes);
    EffAddr malloc(std::uint64_t bytes, const mem::NumaPolicy &policy);

    /**
     * Effective address of @p lsa inside logical SPE @p logical's
     * memory-mapped local store (for SPE-to-SPE DMA).
     */
    EffAddr lsEa(unsigned logical, LsAddr lsa = 0) const;

    /** True iff @p ea falls in some SPE's LS aperture. */
    bool isLsEa(EffAddr ea) const { return ea >= lsEaBase; }

    /** Launch a coroutine program; it is kept alive until reset. */
    void launch(sim::Task task);

    /**
     * Run the simulation until no events remain.  fatal()s if a
     * launched program has not finished (deadlock); rethrows the first
     * program exception.
     */
    void run();

    /**
     * Turn on event tracing: every MFC command and EIB packet from now
     * on is recorded.  @return the recorder for CSV dumps / timelines.
     */
    trace::Recorder &enableTracing();

    /** The recorder, or nullptr when tracing is off. */
    trace::Recorder *recorder() { return recorder_.get(); }

    /**
     * Accumulate every component's utilization counters into @p reg
     * (EIB rings, DRAM banks, MFC queues, PPE caches, plus `sim.runs`
     * and `sim.ticks`).  Counters *add* into @p reg, so snapshotting
     * several runs into one registry yields across-run totals; all
     * accumulation is commutative, keeping parallel seed sweeps
     * deterministic.  Call after run().
     */
    void snapshotMetrics(stats::MetricsRegistry &reg) const;

    /** @name Checked mode (config.verify / --verify).
     *
     *  Every completed non-faulted DMA command is cross-checked
     *  end-to-end: the LS bytes and the backing-store bytes of each
     *  transferred segment must agree once the command reports done.
     *  Faulted commands (dropped/corrupted) are *expected* to diverge
     *  and are skipped — recovery is the program's job. */
    /** @{ */
    struct VerifyStats
    {
        std::uint64_t transfersChecked = 0;
        std::uint64_t bytesChecked = 0;
        std::uint64_t divergences = 0;
        std::uint64_t faultedSkipped = 0;
        /** Diagnostics of the first divergence seen, empty if none. */
        std::string firstDivergence;
    };

    bool verifying() const { return cfg_.verify; }
    const VerifyStats &verifyStats() const { return verifyStats_; }
    /** @} */

    Tick now() const { return eq_->now(); }

    /** Seconds of simulated time elapsed since construction. */
    double seconds() const { return cfg_.clock.seconds(now()); }

    /** @name Placement introspection.  With two chips, physical SPE
     *        slots 0-7 live on chip 0 and 8-15 on chip 1. */
    /** @{ */
    unsigned physicalOf(unsigned logical) const;
    unsigned chipOf(unsigned logical) const;
    unsigned rampOf(unsigned logical) const;
    const std::vector<std::uint32_t> &placement() const
    {
        return placement_;
    }
    std::string placementString() const;
    /** @} */

  private:
    void buildPlacement(std::uint64_t seed);
    void routeLine(spe::LineRequest &&req);
    void routeMemory(spe::LineRequest &&req);
    void routeLocalStore(spe::LineRequest &&req);
    void verifyCompletion(const spe::Mfc::Completion &done);
    void readEa(EffAddr ea, std::uint8_t *buf, std::uint32_t bytes);

    CellConfig cfg_;
    std::unique_ptr<sim::EventQueue> eq_;
    std::unique_ptr<mem::MemorySystem> memory_;
    std::vector<std::unique_ptr<eib::Eib>> eibs_;
    std::unique_ptr<ppe::Ppu> ppu_;
    std::vector<std::unique_ptr<spe::Spe>> spes_;
    std::vector<std::uint32_t> placement_;   // logical -> physical SPE
    std::vector<sim::Task> programs_;
    std::unique_ptr<trace::Recorder> recorder_;
    VerifyStats verifyStats_;
};

} // namespace cellbw::cell

#endif // CELLBW_CELL_CELL_SYSTEM_HH
