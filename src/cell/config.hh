/**
 * @file
 * Every structural parameter of the modeled machine in one place.
 *
 * Defaults reproduce the paper's platform: a 2.1 GHz dual-Cell blade,
 * 512 MB XDR in two banks (local via MIC, remote via a 7 GB/s IOIF),
 * Linux with 64 KB pages and NUMA enabled, libspe 1.1 semantics.
 * Bench binaries expose these knobs as command-line flags, so every
 * number in DESIGN.md's calibration table is an ablation axis.
 */

#ifndef CELLBW_CELL_CONFIG_HH
#define CELLBW_CELL_CONFIG_HH

#include "eib/eib.hh"
#include "mem/memory_system.hh"
#include "ppe/ppu.hh"
#include "sim/clock.hh"
#include "spe/spe.hh"
#include "util/options.hh"

namespace cellbw::cell
{

/** Logical-to-physical SPE placement policy. */
enum class AffinityPolicy
{
    Random,     ///< what libspe 1.1 gives you: an arbitrary kernel choice
    Linear,     ///< logical i = physical i (die order interleaved)
    Paired,     ///< logical 2k/2k+1 physically adjacent (paper's wish)
};

/**
 * Cluster-level work placement policy: which chip's SPEs a task (or a
 * stencil rank) should run on relative to the memory it touches.
 */
enum class TaskPlacement
{
    RoundRobin,  ///< spread tasks over the chips in dispatch order
    Locality,    ///< run each task on the chip that owns its pages
};

struct CellConfig
{
    sim::ClockSpec clock;

    /**
     * Cell chips with *active* SPEs.  The paper boots its dual-Cell
     * blade with maxcpus=2 so only chip 0 runs code (numChips = 1) but
     * both chips' XDR banks stay reachable; numChips = 2 additionally
     * simulates the second chip's EIB and SPEs, reproducing the
     * conclusion's warning that cross-chip SPE pairs are "limited to
     * 7 GB/s" through the IOIF.  Beyond 2 the machine becomes a
     * cluster: chips pair up on blades (eib::ClusterShape) joined by
     * inter-blade links; the ceiling is the flight handle's 4-bit chip
     * field (cell::CellSystem::kMaxChips = 16).
     */
    unsigned numChips = 1;

    /** Blades in the cluster; 0 = auto (two chips per blade). */
    unsigned numBlades = 0;

    unsigned numSpes = 8;

    spe::SpeParams spe;
    ppe::PpuParams ppu;
    mem::MemorySystemParams memory;
    eib::EibParams eib;

    /** Extra one-way delay for a DMA command to reach a remote MFC/LS. */
    Tick remoteCmdLatencyBus = 8;

    /** Default NUMA placement for CellSystem::malloc(). */
    mem::NumaPolicy numa = mem::NumaPolicy::interleave(0.65);

    AffinityPolicy affinity = AffinityPolicy::Random;

    /** Cluster work placement for the offload runtime / stencils. */
    TaskPlacement placement = TaskPlacement::RoundRobin;

    /**
     * Checked mode: cross-check every completed DMA command against the
     * backing store and count divergences (--verify).  Fault-injection
     * knobs live in spe.mfc.faults (--fault-* flags).
     */
    bool verify = false;

    /**
     * Bound on the trace recorder's retained records per record kind
     * (--trace-capacity); oldest records are evicted beyond it.
     * 0 keeps everything.
     */
    std::uint64_t traceCapacity = 0;

    /**
     * Worker threads for the conservative parallel engine
     * (--sim-jobs): each chip is a partition synchronized at IOIF
     * crossing-latency granularity.  Effective parallelism is capped at
     * numChips; reports are bit-identical for any value, so the flag is
     * result-neutral (0 = one thread per chip).  Distinct from --jobs,
     * which parallelizes *across* repeated runs.
     */
    unsigned simJobs = 1;

    /**
     * Book per-component event counts and dispatch self-time into the
     * metrics registry (--sim-profile); adds `profile.<tag>.*` counters
     * to the report.
     */
    bool simProfile = false;

    /** Construct the defaults, derived quantities filled in. */
    CellConfig();

    /** @name Derived peaks (GB/s), used by benches as reference lines. */
    /** @{ */
    double rampPeakGBps() const;    ///< one EIB ramp direction: 16.8
    double lsPeakGBps() const;      ///< SPU <-> LS: 33.6
    double pairPeakGBps() const;    ///< concurrent get+put pair: 33.6
    /** @} */

    /** Register the standard --knob flags on @p opts. */
    static void registerOptions(util::Options &opts);

    /** Build a config from parsed options. */
    static CellConfig fromOptions(const util::Options &opts);
};

/** Parse an affinity policy name ("random", "linear", "paired"). */
AffinityPolicy affinityFromString(const std::string &s);
const char *toString(AffinityPolicy a);

/** Parse a task placement name ("round-robin", "locality"). */
TaskPlacement placementFromString(const std::string &s);
const char *toString(TaskPlacement p);

} // namespace cellbw::cell

#endif // CELLBW_CELL_CONFIG_HH
