#include "cell/cell_system.hh"

#include <algorithm>
#include <cstring>
#include <thread>

#include "sim/logging.hh"
#include "stats/metrics.hh"
#include "util/align.hh"
#include "util/strings.hh"

namespace cellbw::cell
{

CellSystem::CellSystem(const CellConfig &cfg, std::uint64_t placementSeed)
    : cfg_(cfg), placementSeed_(placementSeed)
{
    unsigned slots = cfg_.numChips * eib::numPhysicalSpes;
    if (cfg_.numChips < 1) {
        sim::fatal("numChips must be at least 1");
    } else if (cfg_.numChips > kMaxChips) {
        sim::fatal("numChips %u exceeds the flight handle's %u-bit chip "
                   "field (max %u chips)", cfg_.numChips,
                   32 - kChipShift, kMaxChips);
    }
    if (cfg_.numSpes == 0 || cfg_.numSpes > slots)
        sim::fatal("numSpes must be 1..%u with %u chip(s)", slots,
                   cfg_.numChips);
    // The cluster shape is authoritative here: tests and workloads set
    // numChips/numBlades on the CellConfig directly, so sync the
    // memory system's copy instead of trusting fromOptions to have run.
    cfg_.memory.numChips = cfg_.numChips;
    cfg_.memory.numBlades = cfg_.numBlades;
    const auto shape = eib::ClusterShape::of(
        std::max(cfg_.numChips, 2u), cfg_.numBlades);
    if (!shape.valid()) {
        sim::fatal("invalid cluster shape: %u chips on %u blades",
                   cfg_.numChips, cfg_.numBlades);
    }

    if (cfg_.numChips == 1) {
        eq_ = std::make_unique<sim::EventQueue>();
        memory_ =
            std::make_unique<mem::MemorySystem>("mem", *eq_, cfg_.memory);
    } else {
        // Each chip is a partition; the smallest link crossing latency
        // is the conservative lookahead (nothing on one chip can affect
        // another sooner than one crossing).
        Tick lookahead = cfg_.memory.ioLink.crossingLatency;
        shape.forEachLink([&](unsigned, unsigned, bool interBlade) {
            if (interBlade) {
                lookahead = std::min(
                    lookahead, cfg_.memory.bladeLink.crossingLatency);
            }
        });
        engine_ = std::make_unique<sim::PartitionedEngine>(
            cfg_.numChips, lookahead);
        std::vector<sim::EventQueue *> bankQueues;
        for (unsigned c = 0; c < cfg_.numChips; ++c)
            bankQueues.push_back(&engine_->queue(c));
        memory_ = std::make_unique<mem::MemorySystem>(
            "mem", engine_->queue(0), cfg_.memory, bankQueues);
        memory_->links().setPartitioned(
            [this](unsigned c) { return &engine_->queue(c); },
            [this](unsigned src, unsigned dst, Tick when,
                   mem::IoLink::CrossingFn fn) {
                engine_->post(src, dst, when, std::move(fn));
            });
        memory_->setPartitioned([this](unsigned src, unsigned dst,
                                       Tick when,
                                       mem::MemorySystem::CrossFn fn) {
            engine_->post(src, dst, when, std::move(fn));
        });
    }
    for (unsigned c = 0; c < cfg_.numChips; ++c) {
        eibs_.push_back(std::make_unique<eib::Eib>(
            util::format("eib%u", c), queue(c), cfg_.clock, cfg_.eib));
    }
    ppu_ = std::make_unique<ppe::Ppu>("ppe", queue(0), cfg_.clock,
                                      cfg_.ppu, &memory_->store());
    arenas_.resize(cfg_.numChips);

    buildPlacement(placementSeed);
    // Each run draws its own fault sequence: the run's placement seed
    // is folded into the configured base fault seed (the per-SPE mix
    // happens inside the MFC).
    spe::SpeParams sp = cfg_.spe;
    sp.mfc.faults.seed ^= placementSeed * 0x9E3779B97F4A7C15ull;
    for (unsigned i = 0; i < cfg_.numSpes; ++i) {
        unsigned chip = placement_[i] / eib::numPhysicalSpes;
        auto s = std::make_unique<spe::Spe>(
            util::format("spe%u", i), queue(chip), cfg_.clock, sp, i);
        s->setPhysicalSpe(placement_[i],
                          eib::speRamp(placement_[i] %
                                       eib::numPhysicalSpes));
        s->mfc().setLineHandler([this](spe::LineRequest &&req) {
            routeLine(std::move(req));
        });
        if (cfg_.verify) {
            s->mfc().setCompletionHook(
                [this](const spe::Mfc::Completion &done) {
                    verifyCompletion(done);
                });
        }
        spes_.push_back(std::move(s));
    }

    if (cfg_.simProfile) {
        if (engine_)
            engine_->setProfiling(true);
        else
            eq_->setProfiling(true);
    }
}

CellSystem::~CellSystem() = default;

void
CellSystem::buildPlacement(std::uint64_t seed)
{
    unsigned slots = cfg_.numChips * eib::numPhysicalSpes;
    switch (cfg_.affinity) {
      case AffinityPolicy::Random: {
        sim::Rng rng(seed);
        placement_ = rng.permutation(slots);
        break;
      }
      case AffinityPolicy::Linear:
        placement_.resize(slots);
        for (unsigned i = 0; i < slots; ++i)
            placement_[i] = i;
        break;
      case AffinityPolicy::Paired: {
        // Physical SPE indices in ring-adjacent pairs: positions
        // 1,2 / 3,4 / 7,8 / 9,10 on each die.
        static const std::uint32_t chip_pairs[] = {1, 3, 5, 7, 6, 4, 2, 0};
        placement_.clear();
        for (unsigned c = 0; c < cfg_.numChips; ++c)
            for (auto p : chip_pairs)
                placement_.push_back(p + c * eib::numPhysicalSpes);
        break;
      }
    }
}

spe::Spe &
CellSystem::spe(unsigned logical)
{
    if (logical >= spes_.size())
        sim::fatal("logical SPE %u out of range (%zu present)", logical,
                   spes_.size());
    return *spes_[logical];
}

eib::Eib &
CellSystem::eib(unsigned chip)
{
    if (chip >= eibs_.size())
        sim::fatal("chip %u out of range (%zu present)", chip,
                   eibs_.size());
    return *eibs_[chip];
}

unsigned
CellSystem::physicalOf(unsigned logical) const
{
    if (logical >= cfg_.numSpes)
        sim::fatal("logical SPE %u out of range", logical);
    return placement_[logical];
}

unsigned
CellSystem::chipOf(unsigned logical) const
{
    return physicalOf(logical) / eib::numPhysicalSpes;
}

unsigned
CellSystem::rampOf(unsigned logical) const
{
    return eib::speRamp(physicalOf(logical) % eib::numPhysicalSpes);
}

std::string
CellSystem::placementString() const
{
    std::string out;
    for (unsigned i = 0; i < cfg_.numSpes; ++i) {
        if (i)
            out += " ";
        out += util::format("%u->%u", i, placement_[i]);
    }
    return out;
}

EffAddr
CellSystem::malloc(std::uint64_t bytes)
{
    return malloc(bytes, cfg_.numa);
}

EffAddr
CellSystem::malloc(std::uint64_t bytes, const mem::NumaPolicy &policy)
{
    EffAddr ea = memory_->alloc(bytes, policy);
    if (ea + bytes >= lsEaBase)
        sim::fatal("main memory exhausted");
    // Partitioned runs touch data pages from both chips' worker
    // threads; faulting them in at allocation keeps the page map
    // immutable while the simulation runs.
    if (engine_)
        memory_->store().touch(ea, bytes);
    return ea;
}

EffAddr
CellSystem::lsEa(unsigned logical, LsAddr lsa) const
{
    if (logical >= cfg_.numSpes)
        sim::fatal("lsEa: logical SPE %u out of range", logical);
    return lsEaBase + static_cast<EffAddr>(logical) * lsEaStride + lsa;
}

trace::Recorder &
CellSystem::enableTracing()
{
    if (!recorder_) {
        recorder_ = std::make_unique<trace::Recorder>();
        recorder_->setCapacity(cfg_.traceCapacity);
        for (auto &s : spes_)
            s->mfc().setRecorder(recorder_.get());
        for (unsigned c = 0; c < eibs_.size(); ++c)
            eibs_[c]->setRecorder(recorder_.get(), c);
    }
    return *recorder_;
}

void
CellSystem::launch(sim::Task task)
{
    programs_.push_back(std::move(task));
    programs_.back().start();
}

unsigned
CellSystem::runThreads() const
{
    if (!engine_)
        return 1;
    unsigned t = cfg_.simJobs;
    if (t == 0)
        t = std::thread::hardware_concurrency();
    if (t == 0)
        t = 1;
    t = std::min(t, cfg_.numChips);
    // The verify and trace hooks read state that belongs to the other
    // chip's partition (LS contents, the shared recorder buffer); run
    // their windows on one thread.  The schedule — and the report — is
    // the same either way.
    if (cfg_.verify || recorder_)
        t = 1;
    return t;
}

void
CellSystem::run()
{
    if (engine_)
        engine_->run(runThreads());
    else
        eq_->run();
    for (auto &p : programs_) {
        p.rethrow();
        if (!p.done()) {
            sim::fatal("deadlock: a launched program never finished "
                       "(waiting on a DMA tag or mailbox that no one "
                       "completes?)");
        }
    }
}

void
CellSystem::routeLine(spe::LineRequest &&req)
{
    if (req.speIndex >= spes_.size())
        sim::panic("DMA line from unknown SPE %u", req.speIndex);
    if (engine_) {
        if (isLsEa(req.ea))
            partLocalStore(std::move(req));
        else
            partMemory(std::move(req));
    } else {
        if (isLsEa(req.ea))
            routeLocalStore(std::move(req));
        else
            routeMemory(std::move(req));
    }
}

/**
 * Memory routing, single queue.  The line rides the issuing SPE's EIB
 * between its ramp and either the local MIC (bank on the same chip) or
 * the IOIF ramp (bank on the other chip).  With one chip the far bank
 * still exists (NUMA ablations) but its EIB is not simulated: crossing
 * costs the IOIF serialization only.
 *
 * Stages address the in-flight line by arena handle, so every closure
 * here is {this, handle} — inline-stored, allocation-free.
 */
void
CellSystem::routeMemory(spe::LineRequest &&req)
{
    unsigned bank = memory_->bankOf(req.ea);
    unsigned spe_chip = chipOf(req.speIndex);
    std::uint32_t bytes = req.bytes;
    spe::Spe *s = spes_[req.speIndex].get();
    bool isGet = req.dir == spe::DmaDir::Get;

    std::uint32_t h = acquireFlight(0, std::move(req));
    Flight &f = flight(h);
    f.bank = static_cast<std::uint8_t>(bank);
    f.srcChip = static_cast<std::uint8_t>(spe_chip);
    f.crossing = (bank != spe_chip);

    if (isGet) {
        // Command phase to the controller, bank read, (IOIF crossing,)
        // data ride home, LS write.
        Tick cmd = cfg_.clock.busCycles(cfg_.eib.cmdLatencyBus);
        if (f.crossing)
            cmd += memory_->ioLink().crossingLatency();
        eq_->schedule(cmd, [this, h] { memGetAccess(h); });
    } else {
        // LS read, data ride out, (IOIF crossing,) bank write.
        Tick ls_done = s->ls().reservePort(bytes);
        eq_->scheduleAt(ls_done, [this, h] { memPutRide(h); });
    }
}

void
CellSystem::memGetAccess(std::uint32_t h)
{
    Flight &f = flight(h);
    memory_->bank(f.bank).access(f.req.ea, f.req.bytes, false,
                                 [this, h] { memGetData(h); });
}

void
CellSystem::memGetData(std::uint32_t h)
{
    Flight &f = flight(h);
    if (!f.crossing) {
        memGetDeliver(h);
        return;
    }
    // The data lane is named from chip 0's viewpoint: Inbound carries
    // payloads toward chip 0.
    auto lane = (f.srcChip == 0) ? mem::IoLink::Dir::Inbound
                                 : mem::IoLink::Dir::Outbound;
    memory_->ioLink().send(lane, f.req.bytes,
                           [this, h] { memGetDeliver(h); });
}

void
CellSystem::memGetDeliver(std::uint32_t h)
{
    Flight &f = flight(h);
    eib::RampPos local_ramp = f.crossing ? eib::ioif0Ramp : eib::micRamp;
    eibs_[f.srcChip]->transfer(local_ramp, rampOf(f.req.speIndex),
                               f.req.bytes,
                               [this, h] { memGetLand(h); });
}

void
CellSystem::memGetLand(std::uint32_t h)
{
    Flight &f = flight(h);
    spe::Spe *s = spes_[f.req.speIndex].get();
    Tick done_at = s->ls().reservePort(f.req.bytes);
    std::uint8_t buf[spe::lineBytes];
    memory_->store().read(f.req.ea, buf, f.req.bytes);
    if (f.req.corrupt)
        buf[0] ^= 0xA5;
    s->ls().write(f.req.lsa, buf, f.req.bytes);
    auto done = std::move(f.req.done);
    releaseFlight(h);
    eq_->scheduleAt(done_at, std::move(done));
}

void
CellSystem::memPutRide(std::uint32_t h)
{
    Flight &f = flight(h);
    eib::RampPos local_ramp = f.crossing ? eib::ioif0Ramp : eib::micRamp;
    eibs_[f.srcChip]->transfer(rampOf(f.req.speIndex), local_ramp,
                               f.req.bytes,
                               [this, h] { memPutStore(h); });
}

void
CellSystem::memPutStore(std::uint32_t h)
{
    Flight &f = flight(h);
    spe::Spe *s = spes_[f.req.speIndex].get();
    std::uint8_t buf[spe::lineBytes];
    s->ls().read(f.req.lsa, buf, f.req.bytes);
    if (f.req.corrupt)
        buf[0] ^= 0xA5;
    memory_->store().write(f.req.ea, buf, f.req.bytes);
    if (!f.crossing) {
        memPutBank(h);
        return;
    }
    auto lane = (f.bank == 0) ? mem::IoLink::Dir::Inbound
                              : mem::IoLink::Dir::Outbound;
    memory_->ioLink().send(lane, f.req.bytes,
                           [this, h] { memPutBank(h); });
}

void
CellSystem::memPutBank(std::uint32_t h)
{
    Flight &f = flight(h);
    EffAddr ea = f.req.ea;
    std::uint32_t bytes = f.req.bytes;
    unsigned bank = f.bank;
    auto done = std::move(f.req.done);
    releaseFlight(h);
    memory_->bank(bank).access(ea, bytes, true, std::move(done));
}

/**
 * LS-to-LS routing, single queue.  Both SPEs live on the one chip, so
 * the transfer rides one EIB between the data-holding LS (remote for
 * GET, local for PUT) and the receiving LS.
 */
void
CellSystem::routeLocalStore(spe::LineRequest &&req)
{
    EffAddr rel = req.ea - lsEaBase;
    auto target_idx = static_cast<unsigned>(rel / lsEaStride);
    auto off = static_cast<LsAddr>(rel % lsEaStride);
    if (target_idx >= spes_.size()) {
        sim::fatal("DMA to LS aperture of SPE %u, which does not exist",
                   target_idx);
    }
    if (target_idx == req.speIndex)
        sim::fatal("DMA to the issuing SPE's own LS aperture");

    bool isGet = req.dir == spe::DmaDir::Get;
    unsigned issuer = req.speIndex;

    std::uint32_t h = acquireFlight(0, std::move(req));
    Flight &f = flight(h);
    f.srcSpe = static_cast<std::uint16_t>(isGet ? target_idx : issuer);
    f.dstSpe = static_cast<std::uint16_t>(isGet ? issuer : target_idx);
    f.srcLsa = isGet ? off : f.req.lsa;
    f.dstLsa = isGet ? f.req.lsa : off;
    f.srcChip = 0;
    f.crossing = false;

    // Command latency to reach a remote MFC (GET only; PUT data
    // originates locally).
    Tick cmd =
        isGet ? cfg_.clock.busCycles(cfg_.remoteCmdLatencyBus) : 0;
    eq_->schedule(cmd, [this, h] { lsRead(h); });
}

void
CellSystem::lsRead(std::uint32_t h)
{
    Flight &f = flight(h);
    Tick read_done = spes_[f.srcSpe]->ls().reservePort(f.req.bytes);
    eq_->scheduleAt(read_done, [this, h] { lsRide(h); });
}

void
CellSystem::lsRide(std::uint32_t h)
{
    Flight &f = flight(h);
    eibs_[f.srcChip]->transfer(rampOf(f.srcSpe), rampOf(f.dstSpe),
                               f.req.bytes, [this, h] { lsLand(h); });
}

void
CellSystem::lsLand(std::uint32_t h)
{
    Flight &f = flight(h);
    spe::Spe *src = spes_[f.srcSpe].get();
    spe::Spe *dst = spes_[f.dstSpe].get();
    Tick done_at = dst->ls().reservePort(f.req.bytes);
    std::uint8_t buf[spe::lineBytes];
    src->ls().read(f.srcLsa, buf, f.req.bytes);
    if (f.req.corrupt)
        buf[0] ^= 0xA5;
    dst->ls().write(f.dstLsa, buf, f.req.bytes);
    auto done = std::move(f.req.done);
    releaseFlight(h);
    eq_->scheduleAt(done_at, std::move(done));
}

/**
 * Memory routing, partitioned (numChips >= 2).  Chip-local lines stay
 * entirely on the issuing chip's queue.  A crossing line's far-side
 * stages (the target chip's bank and EIB) run on the far partition and
 * must not touch the home chip's arena — the arena vector can grow
 * concurrently — so they carry their routing state ({ea, bytes, handle,
 * home and far chips}) and, on the way home, the 128-byte payload by
 * value inside the cross-partition message.  Multi-hop routes (other
 * blade) serialize on every link: LinkGraph::sendData re-posts from
 * each intermediate chip's partition.
 */
void
CellSystem::partMemory(spe::LineRequest &&req)
{
    unsigned bank = memory_->bankOf(req.ea);
    unsigned sc = chipOf(req.speIndex);
    bool crossing = (bank != sc);
    bool isGet = req.dir == spe::DmaDir::Get;
    std::uint32_t bytes = req.bytes;
    EffAddr ea = req.ea;
    spe::Spe *s = spes_[req.speIndex].get();

    std::uint32_t h = acquireFlight(sc, std::move(req));
    Flight &f = flight(h);
    f.bank = static_cast<std::uint8_t>(bank);
    f.srcChip = static_cast<std::uint8_t>(sc);
    f.crossing = crossing;

    if (isGet) {
        Tick cmd = cfg_.clock.busCycles(cfg_.eib.cmdLatencyBus);
        if (!crossing) {
            queue(sc).schedule(cmd, [this, h] { partMemGetAccess(h); });
        } else {
            // The command phase crosses to the bank's chip (latency
            // only — commands are tiny — but it pays every link of the
            // route).
            const Tick L = memory_->links().pathLatency(sc, bank);
            engine_->post(
                sc, bank, queue(sc).now() + cmd + L,
                sim::PartitionedEngine::ChannelFn(
                    [this, ea, bytes, h, sc, bank] {
                        partMemGetFar(ea, bytes, h, sc, bank);
                    }));
        }
    } else {
        Tick ls_done = s->ls().reservePort(bytes);
        queue(sc).scheduleAt(ls_done, [this, h] { partMemPutRide(h); });
    }
}

void
CellSystem::partMemGetAccess(std::uint32_t h)
{
    Flight &f = flight(h);
    memory_->bank(f.bank).access(f.req.ea, f.req.bytes, false,
                                 [this, h] { partMemGetRide(h); });
}

void
CellSystem::partMemGetRide(std::uint32_t h)
{
    Flight &f = flight(h);
    eib::RampPos from = f.crossing ? eib::ioif0Ramp : eib::micRamp;
    eibs_[f.srcChip]->transfer(from, rampOf(f.req.speIndex), f.req.bytes,
                               [this, h] { partMemGetLand(h); });
}

void
CellSystem::partMemGetLand(std::uint32_t h)
{
    Flight &f = flight(h);
    spe::Spe *s = spes_[f.req.speIndex].get();
    Tick done_at = s->ls().reservePort(f.req.bytes);
    if (f.crossing) {
        // The line's data came home in the flight's payload buffer.
        if (f.req.corrupt)
            f.payload[0] ^= 0xA5;
        s->ls().write(f.req.lsa, f.payload, f.req.bytes);
    } else {
        std::uint8_t buf[spe::lineBytes];
        memory_->store().read(f.req.ea, buf, f.req.bytes);
        if (f.req.corrupt)
            buf[0] ^= 0xA5;
        s->ls().write(f.req.lsa, buf, f.req.bytes);
    }
    unsigned chip = f.srcChip;
    auto done = std::move(f.req.done);
    releaseFlight(h);
    queue(chip).scheduleAt(done_at, std::move(done));
}

void
CellSystem::partMemGetFar(EffAddr ea, std::uint32_t bytes,
                          std::uint32_t h, unsigned homeChip,
                          unsigned farChip)
{
    memory_->bank(farChip).access(
        ea, bytes, false, [this, ea, bytes, h, homeChip, farChip] {
            partMemGetFarRide(ea, bytes, h, homeChip, farChip);
        });
}

void
CellSystem::partMemGetFarRide(EffAddr ea, std::uint32_t bytes,
                              std::uint32_t h, unsigned homeChip,
                              unsigned farChip)
{
    eibs_[farChip]->transfer(eib::micRamp, eib::ioif0Ramp, bytes,
                             [this, ea, bytes, h, homeChip, farChip] {
                                 partMemGetFarCross(ea, bytes, h,
                                                    homeChip, farChip);
                             });
}

void
CellSystem::partMemGetFarCross(EffAddr ea, std::uint32_t bytes,
                               std::uint32_t h, unsigned homeChip,
                               unsigned farChip)
{
    // The data leaves the far chip here: read it out of the backing
    // store now and let the crossing message carry it home by value
    // (serializing on every link of the route back).
    std::uint8_t buf[spe::lineBytes];
    memory_->store().read(ea, buf, bytes);
    memory_->links().sendData(farChip, homeChip, bytes,
                              [this, h, bytes, buf] {
                                  Flight &f = flight(h);
                                  std::memcpy(f.payload, buf, bytes);
                                  partMemGetHome(h);
                              });
}

void
CellSystem::partMemGetHome(std::uint32_t h)
{
    Flight &f = flight(h);
    eibs_[f.srcChip]->transfer(eib::ioif0Ramp, rampOf(f.req.speIndex),
                               f.req.bytes,
                               [this, h] { partMemGetLand(h); });
}

void
CellSystem::partMemPutRide(std::uint32_t h)
{
    Flight &f = flight(h);
    eib::RampPos to = f.crossing ? eib::ioif0Ramp : eib::micRamp;
    eibs_[f.srcChip]->transfer(rampOf(f.req.speIndex), to, f.req.bytes,
                               [this, h] {
                                   if (flight(h).crossing)
                                       partMemPutCross(h);
                                   else
                                       partMemPutStore(h);
                               });
}

void
CellSystem::partMemPutStore(std::uint32_t h)
{
    Flight &f = flight(h);
    spe::Spe *s = spes_[f.req.speIndex].get();
    std::uint8_t buf[spe::lineBytes];
    s->ls().read(f.req.lsa, buf, f.req.bytes);
    if (f.req.corrupt)
        buf[0] ^= 0xA5;
    memory_->store().write(f.req.ea, buf, f.req.bytes);
    EffAddr ea = f.req.ea;
    std::uint32_t bytes = f.req.bytes;
    unsigned bank = f.bank;
    auto done = std::move(f.req.done);
    releaseFlight(h);
    memory_->bank(bank).access(ea, bytes, true, std::move(done));
}

void
CellSystem::partMemPutCross(std::uint32_t h)
{
    Flight &f = flight(h);
    std::uint8_t buf[spe::lineBytes];
    spes_[f.req.speIndex]->ls().read(f.req.lsa, buf, f.req.bytes);
    if (f.req.corrupt)
        buf[0] ^= 0xA5;
    EffAddr ea = f.req.ea;
    std::uint32_t bytes = f.req.bytes;
    unsigned home = f.srcChip;
    unsigned far = f.bank;
    memory_->links().sendData(
        home, far, bytes, [this, ea, bytes, h, home, far, buf] {
            // Far chip: land the data and ride the far EIB to the MIC.
            memory_->store().write(ea, buf, bytes);
            eibs_[far]->transfer(eib::ioif0Ramp, eib::micRamp, bytes,
                                 [this, ea, bytes, h, home, far] {
                                     partMemPutFarRide(ea, bytes, h,
                                                       home, far);
                                 });
        });
}

void
CellSystem::partMemPutFarRide(EffAddr ea, std::uint32_t bytes,
                              std::uint32_t h, unsigned homeChip,
                              unsigned farChip)
{
    Tick completion =
        memory_->bank(farChip).reserveAccess(ea, bytes, true);
    // The write acknowledgment crosses back to the issuing chip
    // (latency only, every link of the route).
    const Tick L = memory_->links().pathLatency(farChip, homeChip);
    engine_->post(farChip, homeChip, completion + L,
                  sim::PartitionedEngine::ChannelFn(
                      [this, h] { finishFlight(h); }));
}

/**
 * LS-to-LS routing, partitioned.  Same-chip transfers stay on their
 * chip's queue.  Cross-chip GETs start on the data-holding chip (the
 * command crosses first); cross-chip PUTs read locally, cross with the
 * payload, and land through a temporary flight slot in the destination
 * chip's arena.
 */
void
CellSystem::partLocalStore(spe::LineRequest &&req)
{
    EffAddr rel = req.ea - lsEaBase;
    auto target_idx = static_cast<unsigned>(rel / lsEaStride);
    auto off = static_cast<LsAddr>(rel % lsEaStride);
    if (target_idx >= spes_.size()) {
        sim::fatal("DMA to LS aperture of SPE %u, which does not exist",
                   target_idx);
    }
    if (target_idx == req.speIndex)
        sim::fatal("DMA to the issuing SPE's own LS aperture");

    bool isGet = req.dir == spe::DmaDir::Get;
    unsigned issuer = req.speIndex;
    unsigned ic = chipOf(issuer);
    unsigned pc = chipOf(target_idx);
    std::uint32_t bytes = req.bytes;

    std::uint32_t h = acquireFlight(ic, std::move(req));
    Flight &f = flight(h);
    f.srcSpe = static_cast<std::uint16_t>(isGet ? target_idx : issuer);
    f.dstSpe = static_cast<std::uint16_t>(isGet ? issuer : target_idx);
    f.srcLsa = isGet ? off : f.req.lsa;
    f.dstLsa = isGet ? f.req.lsa : off;
    f.srcChip = static_cast<std::uint8_t>(ic);
    f.crossing = (ic != pc);

    if (!f.crossing) {
        Tick cmd =
            isGet ? cfg_.clock.busCycles(cfg_.remoteCmdLatencyBus) : 0;
        queue(ic).schedule(cmd, [this, h] { partLsRead(h); });
    } else if (isGet) {
        // The command crosses to the data-holding chip; everything the
        // far side needs travels by value.
        Tick cmd = cfg_.clock.busCycles(cfg_.remoteCmdLatencyBus) +
                   memory_->links().pathLatency(ic, pc);
        std::uint16_t peer = f.srcSpe;
        LsAddr peerLsa = f.srcLsa;
        engine_->post(ic, pc, queue(ic).now() + cmd,
                      sim::PartitionedEngine::ChannelFn(
                          [this, peer, peerLsa, bytes, h, ic, pc] {
                              Tick read_done =
                                  spes_[peer]->ls().reservePort(bytes);
                              queue(pc).scheduleAt(
                                  read_done,
                                  [this, peer, peerLsa, bytes, h, ic] {
                                      partLsGetFarRideFrom(peer, peerLsa,
                                                           bytes, h, ic);
                                  });
                          }));
    } else {
        queue(ic).schedule(0, [this, h] { partLsRead(h); });
    }
}

void
CellSystem::partLsRead(std::uint32_t h)
{
    Flight &f = flight(h);
    Tick read_done = spes_[f.srcSpe]->ls().reservePort(f.req.bytes);
    queue(f.srcChip).scheduleAt(read_done,
                                [this, h] { partLsRide(h); });
}

void
CellSystem::partLsRide(std::uint32_t h)
{
    Flight &f = flight(h);
    if (!f.crossing) {
        eibs_[f.srcChip]->transfer(rampOf(f.srcSpe), rampOf(f.dstSpe),
                                   f.req.bytes,
                                   [this, h] { partLsLand(h); });
        return;
    }
    // Crossing PUT: the local read is done, ride to the IOIF ramp.
    eibs_[f.srcChip]->transfer(rampOf(f.srcSpe), eib::ioif0Ramp,
                               f.req.bytes,
                               [this, h] { partLsPutCross(h); });
}

void
CellSystem::partLsLand(std::uint32_t h)
{
    Flight &f = flight(h);
    spe::Spe *dst = spes_[f.dstSpe].get();
    Tick done_at = dst->ls().reservePort(f.req.bytes);
    if (f.crossing) {
        // Crossing GET: the line came home in the payload buffer.
        if (f.req.corrupt)
            f.payload[0] ^= 0xA5;
        dst->ls().write(f.dstLsa, f.payload, f.req.bytes);
    } else {
        std::uint8_t buf[spe::lineBytes];
        spes_[f.srcSpe]->ls().read(f.srcLsa, buf, f.req.bytes);
        if (f.req.corrupt)
            buf[0] ^= 0xA5;
        dst->ls().write(f.dstLsa, buf, f.req.bytes);
    }
    unsigned chip = f.srcChip;
    auto done = std::move(f.req.done);
    releaseFlight(h);
    queue(chip).scheduleAt(done_at, std::move(done));
}

void
CellSystem::partLsGetFarRideFrom(std::uint16_t peer, LsAddr peerLsa,
                                 std::uint32_t bytes, std::uint32_t h,
                                 unsigned homeChip)
{
    // chipOf only reads the placement table, which is immutable once
    // the system is built, so the far partition may call it.
    unsigned peerChip = chipOf(peer);
    eibs_[peerChip]->transfer(
        rampOf(peer), eib::ioif0Ramp, bytes,
        [this, peer, peerLsa, bytes, h, homeChip, peerChip] {
            // The data leaves the peer chip: read the peer LS now and
            // carry the line home inside the crossing message.
            std::uint8_t buf[spe::lineBytes];
            spes_[peer]->ls().read(peerLsa, buf, bytes);
            memory_->links().sendData(peerChip, homeChip, bytes,
                                      [this, h, bytes, buf] {
                                          Flight &f = flight(h);
                                          std::memcpy(f.payload, buf,
                                                      bytes);
                                          partLsGetHome(h);
                                      });
        });
}

void
CellSystem::partLsGetHome(std::uint32_t h)
{
    Flight &f = flight(h);
    eibs_[f.srcChip]->transfer(eib::ioif0Ramp, rampOf(f.dstSpe),
                               f.req.bytes,
                               [this, h] { partLsLand(h); });
}

void
CellSystem::partLsPutCross(std::uint32_t h)
{
    Flight &f = flight(h);
    std::uint8_t buf[spe::lineBytes];
    spes_[f.srcSpe]->ls().read(f.srcLsa, buf, f.req.bytes);
    std::uint16_t dstSpe = f.dstSpe;
    LsAddr dstLsa = f.dstLsa;
    bool corrupt = f.req.corrupt;
    std::uint32_t bytes = f.req.bytes;
    unsigned home = f.srcChip;
    unsigned dc = chipOf(f.dstSpe);
    memory_->links().sendData(
        home, dc, bytes,
        [this, dstSpe, dstLsa, corrupt, bytes, h, home, dc, buf] {
            // Destination chip: park the line in a local flight slot
            // for the ride from the IOIF ramp to the target LS.
            spe::LineRequest tmp{};
            tmp.bytes = bytes;
            tmp.corrupt = corrupt;
            std::uint32_t h2 = acquireFlight(dc, std::move(tmp));
            Flight &t = flight(h2);
            t.dstSpe = dstSpe;
            t.dstLsa = dstLsa;
            t.srcChip = static_cast<std::uint8_t>(home);
            std::memcpy(t.payload, buf, bytes);
            eibs_[dc]->transfer(
                eib::ioif0Ramp, rampOf(dstSpe), bytes,
                [this, h2, h, home] { partLsPutFarLand(h2, h, home); });
        });
}

void
CellSystem::partLsPutFarLand(std::uint32_t tempH, std::uint32_t homeH,
                             unsigned homeChip)
{
    Flight &t = flight(tempH);
    unsigned dc = tempH >> kChipShift;
    spe::Spe *dst = spes_[t.dstSpe].get();
    Tick done_at = dst->ls().reservePort(t.req.bytes);
    if (t.req.corrupt)
        t.payload[0] ^= 0xA5;
    dst->ls().write(t.dstLsa, t.payload, t.req.bytes);
    releaseFlight(tempH);
    // The completion acknowledgment crosses back to the issuing chip.
    const Tick L = memory_->links().pathLatency(dc, homeChip);
    engine_->post(dc, homeChip, done_at + L,
                  sim::PartitionedEngine::ChannelFn(
                      [this, homeH] { finishFlight(homeH); }));
}

void
CellSystem::finishFlight(std::uint32_t h)
{
    Flight &f = flight(h);
    auto done = std::move(f.req.done);
    releaseFlight(h);
    done();
}

/** Read @p bytes at @p ea from wherever it lives: an SPE's LS aperture
 *  or the main-memory backing store. */
void
CellSystem::readEa(EffAddr ea, std::uint8_t *buf, std::uint32_t bytes)
{
    if (!isLsEa(ea)) {
        memory_->store().read(ea, buf, bytes);
        return;
    }
    EffAddr rel = ea - lsEaBase;
    auto idx = static_cast<unsigned>(rel / lsEaStride);
    auto off = static_cast<LsAddr>(rel % lsEaStride);
    if (idx >= spes_.size())
        sim::fatal("verify: EA 0x%llx maps to SPE %u, which does not "
                   "exist", (unsigned long long)ea, idx);
    spes_[idx]->ls().read(off, buf, bytes);
}

void
CellSystem::verifyCompletion(const spe::Mfc::Completion &done)
{
    if (done.fault != spe::MfcError::None) {
        // A dropped or corrupted command is *expected* to diverge; it
        // reported its error status and recovery is the program's job.
        ++verifyStats_.faultedSkipped;
        return;
    }
    auto &ls = spes_[done.speIndex]->ls();
    LsAddr lsa = done.lsa;
    std::vector<std::uint8_t> ls_buf, ea_buf;
    for (std::size_t k = 0; k < done.numSegs; ++k) {
        const auto &seg = done.segs[k];
        if (done.isList)
            lsa = static_cast<LsAddr>(util::roundUp(lsa, 16));
        ls_buf.resize(seg.size);
        ea_buf.resize(seg.size);
        ls.read(lsa, ls_buf.data(), seg.size);
        readEa(seg.ea, ea_buf.data(), seg.size);
        if (ls_buf != ea_buf) {
            std::uint32_t i = 0;
            while (i < seg.size && ls_buf[i] == ea_buf[i])
                ++i;
            ++verifyStats_.divergences;
            if (verifyStats_.firstDivergence.empty()) {
                verifyStats_.firstDivergence = util::format(
                    "tick %llu spe%u tag %u %s%s: LS 0x%x vs EA 0x%llx "
                    "diverge at byte %u of %u (ls=0x%02x ea=0x%02x)",
                    (unsigned long long)now(), done.speIndex, done.tag,
                    done.dir == spe::DmaDir::Get ? "get" : "put",
                    done.isList ? "-list" : "", lsa,
                    (unsigned long long)seg.ea, i, seg.size, ls_buf[i],
                    ea_buf[i]);
            }
        }
        verifyStats_.bytesChecked += seg.size;
        lsa += seg.size;
    }
    ++verifyStats_.transfersChecked;
}

void
CellSystem::snapshotMetrics(stats::MetricsRegistry &reg) const
{
    reg.counter("sim.runs").increment();
    reg.counter("sim.ticks").add(now());
    for (unsigned c = 0; c < eibs_.size(); ++c)
        eibs_[c]->registerMetrics(reg, util::format("eib%u", c));
    memory_->registerMetrics(reg, "mem");
    ppu_->registerMetrics(reg, "ppe");
    for (unsigned s = 0; s < spes_.size(); ++s) {
        spes_[s]->mfc().registerMetrics(
            reg, util::format("spe%u.mfc", s));
    }
    if (recorder_) {
        reg.counter("trace.dma_dropped").add(recorder_->dmaDropped());
        reg.counter("trace.eib_dropped").add(recorder_->eibDropped());
    }
    if (cfg_.simProfile) {
        std::array<sim::EventQueue::TagProfile,
                   sim::EventQueue::kNumTags>
            total{};
        auto fold = [&total](const sim::EventQueue &q) {
            const auto &p = q.tagProfiles();
            for (std::size_t i = 0; i < p.size(); ++i) {
                total[i].events += p[i].events;
                total[i].selfNs += p[i].selfNs;
            }
        };
        if (engine_) {
            for (unsigned p = 0; p < engine_->partitions(); ++p)
                fold(engine_->queue(p));
        } else {
            fold(*eq_);
        }
        for (std::size_t i = 0; i < total.size(); ++i) {
            if (!total[i].events)
                continue;
            auto tag = static_cast<sim::EventTag>(i);
            reg.counter(util::format("profile.%s.events",
                                     sim::toString(tag)))
                .add(total[i].events);
            reg.counter(util::format("profile.%s.self_ns",
                                     sim::toString(tag)))
                .add(total[i].selfNs);
        }
        if (engine_) {
            reg.counter("profile.crossings.delivered")
                .add(engine_->messagesDelivered());
        }
    }
}

} // namespace cellbw::cell
