#include "cell/cell_system.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "stats/metrics.hh"
#include "util/align.hh"
#include "util/strings.hh"

namespace cellbw::cell
{

CellSystem::CellSystem(const CellConfig &cfg, std::uint64_t placementSeed)
    : cfg_(cfg)
{
    unsigned slots = cfg_.numChips * eib::numPhysicalSpes;
    if (cfg_.numChips < 1 || cfg_.numChips > 2)
        sim::fatal("numChips must be 1 or 2");
    if (cfg_.numSpes == 0 || cfg_.numSpes > slots)
        sim::fatal("numSpes must be 1..%u with %u chip(s)", slots,
                   cfg_.numChips);

    eq_ = std::make_unique<sim::EventQueue>();
    memory_ = std::make_unique<mem::MemorySystem>("mem", *eq_, cfg_.memory);
    for (unsigned c = 0; c < cfg_.numChips; ++c) {
        eibs_.push_back(std::make_unique<eib::Eib>(
            util::format("eib%u", c), *eq_, cfg_.clock, cfg_.eib));
    }
    ppu_ = std::make_unique<ppe::Ppu>("ppe", *eq_, cfg_.clock, cfg_.ppu,
                                      &memory_->store());

    buildPlacement(placementSeed);
    // Each run draws its own fault sequence: the run's placement seed
    // is folded into the configured base fault seed (the per-SPE mix
    // happens inside the MFC).
    spe::SpeParams sp = cfg_.spe;
    sp.mfc.faults.seed ^= placementSeed * 0x9E3779B97F4A7C15ull;
    for (unsigned i = 0; i < cfg_.numSpes; ++i) {
        auto s = std::make_unique<spe::Spe>(
            util::format("spe%u", i), *eq_, cfg_.clock, sp, i);
        s->setPhysicalSpe(placement_[i],
                          eib::speRamp(placement_[i] %
                                       eib::numPhysicalSpes));
        s->mfc().setLineHandler([this](spe::LineRequest &&req) {
            routeLine(std::move(req));
        });
        if (cfg_.verify) {
            s->mfc().setCompletionHook(
                [this](const spe::Mfc::Completion &done) {
                    verifyCompletion(done);
                });
        }
        spes_.push_back(std::move(s));
    }
}

CellSystem::~CellSystem() = default;

void
CellSystem::buildPlacement(std::uint64_t seed)
{
    unsigned slots = cfg_.numChips * eib::numPhysicalSpes;
    switch (cfg_.affinity) {
      case AffinityPolicy::Random: {
        sim::Rng rng(seed);
        placement_ = rng.permutation(slots);
        break;
      }
      case AffinityPolicy::Linear:
        placement_.resize(slots);
        for (unsigned i = 0; i < slots; ++i)
            placement_[i] = i;
        break;
      case AffinityPolicy::Paired: {
        // Physical SPE indices in ring-adjacent pairs: positions
        // 1,2 / 3,4 / 7,8 / 9,10 on each die.
        static const std::uint32_t chip_pairs[] = {1, 3, 5, 7, 6, 4, 2, 0};
        placement_.clear();
        for (unsigned c = 0; c < cfg_.numChips; ++c)
            for (auto p : chip_pairs)
                placement_.push_back(p + c * eib::numPhysicalSpes);
        break;
      }
    }
}

spe::Spe &
CellSystem::spe(unsigned logical)
{
    if (logical >= spes_.size())
        sim::fatal("logical SPE %u out of range (%zu present)", logical,
                   spes_.size());
    return *spes_[logical];
}

eib::Eib &
CellSystem::eib(unsigned chip)
{
    if (chip >= eibs_.size())
        sim::fatal("chip %u out of range (%zu present)", chip,
                   eibs_.size());
    return *eibs_[chip];
}

unsigned
CellSystem::physicalOf(unsigned logical) const
{
    if (logical >= cfg_.numSpes)
        sim::fatal("logical SPE %u out of range", logical);
    return placement_[logical];
}

unsigned
CellSystem::chipOf(unsigned logical) const
{
    return physicalOf(logical) / eib::numPhysicalSpes;
}

unsigned
CellSystem::rampOf(unsigned logical) const
{
    return eib::speRamp(physicalOf(logical) % eib::numPhysicalSpes);
}

std::string
CellSystem::placementString() const
{
    std::string out;
    for (unsigned i = 0; i < cfg_.numSpes; ++i) {
        if (i)
            out += " ";
        out += util::format("%u->%u", i, placement_[i]);
    }
    return out;
}

EffAddr
CellSystem::malloc(std::uint64_t bytes)
{
    return malloc(bytes, cfg_.numa);
}

EffAddr
CellSystem::malloc(std::uint64_t bytes, const mem::NumaPolicy &policy)
{
    EffAddr ea = memory_->alloc(bytes, policy);
    if (ea + bytes >= lsEaBase)
        sim::fatal("main memory exhausted");
    return ea;
}

EffAddr
CellSystem::lsEa(unsigned logical, LsAddr lsa) const
{
    if (logical >= cfg_.numSpes)
        sim::fatal("lsEa: logical SPE %u out of range", logical);
    return lsEaBase + static_cast<EffAddr>(logical) * lsEaStride + lsa;
}

trace::Recorder &
CellSystem::enableTracing()
{
    if (!recorder_) {
        recorder_ = std::make_unique<trace::Recorder>();
        recorder_->setCapacity(cfg_.traceCapacity);
        for (auto &s : spes_)
            s->mfc().setRecorder(recorder_.get());
        for (unsigned c = 0; c < eibs_.size(); ++c)
            eibs_[c]->setRecorder(recorder_.get(), c);
    }
    return *recorder_;
}

void
CellSystem::launch(sim::Task task)
{
    programs_.push_back(std::move(task));
    programs_.back().start();
}

void
CellSystem::run()
{
    eq_->run();
    for (auto &p : programs_) {
        p.rethrow();
        if (!p.done()) {
            sim::fatal("deadlock: a launched program never finished "
                       "(waiting on a DMA tag or mailbox that no one "
                       "completes?)");
        }
    }
}

void
CellSystem::routeLine(spe::LineRequest &&req)
{
    if (req.speIndex >= spes_.size())
        sim::panic("DMA line from unknown SPE %u", req.speIndex);
    if (isLsEa(req.ea))
        routeLocalStore(std::move(req));
    else
        routeMemory(std::move(req));
}

/**
 * Memory routing.  The line rides the issuing SPE's EIB between its
 * ramp and either the local MIC (bank on the same chip) or the IOIF
 * ramp (bank on the other chip).  Crossing the blade costs the IOIF
 * serialization; when the far chip's EIB is simulated (numChips == 2),
 * the line also rides it between the far IOIF and the far MIC.
 */
void
CellSystem::routeMemory(spe::LineRequest &&req)
{
    unsigned bank = memory_->bankOf(req.ea);
    unsigned spe_chip = chipOf(req.speIndex);
    bool crossing = (bank != spe_chip);
    eib::RampPos local_ramp =
        crossing ? eib::ioif0Ramp : eib::micRamp;
    eib::RampPos spe_ramp = rampOf(req.speIndex);
    eib::Eib *near_eib = eibs_[spe_chip].get();
    eib::Eib *far_eib =
        (crossing && bank < eibs_.size()) ? eibs_[bank].get() : nullptr;
    spe::Spe *s = spes_[req.speIndex].get();
    mem::DramBank *dram = &memory_->bank(bank);
    mem::IoLink *link = &memory_->ioLink();

    if (req.dir == spe::DmaDir::Get) {
        // Command phase to the controller, bank read, (far EIB,
        // IOIF crossing,) data ride home, LS write.
        Tick cmd = cfg_.clock.busCycles(cfg_.eib.cmdLatencyBus);
        if (crossing)
            cmd += link->crossingLatency();
        auto deliver = [this, near_eib, local_ramp, spe_ramp,
                        s](spe::LineRequest &&r) {
            near_eib->transfer(local_ramp, spe_ramp, r.bytes,
                               [this, r = std::move(r), s]() mutable {
                Tick done_at = s->ls().reservePort(r.bytes);
                std::uint8_t buf[spe::lineBytes];
                memory_->store().read(r.ea, buf, r.bytes);
                if (r.corrupt)
                    buf[0] ^= 0xA5;
                s->ls().write(r.lsa, buf, r.bytes);
                eq_->scheduleAt(done_at, std::move(r.done));
            });
        };
        eq_->schedule(cmd, [this, req = std::move(req), far_eib, dram,
                            link, crossing, spe_chip,
                            deliver = std::move(deliver)]() mutable {
            dram->access(req.ea, req.bytes, false,
                        [this, req = std::move(req), far_eib, link,
                         crossing, spe_chip,
                         deliver = std::move(deliver)]() mutable {
                if (!crossing) {
                    deliver(std::move(req));
                    return;
                }
                // The data lane is named from chip 0's viewpoint:
                // Inbound carries payloads toward chip 0.
                auto lane = (spe_chip == 0) ? mem::IoLink::Dir::Inbound
                                            : mem::IoLink::Dir::Outbound;
                auto hop_home = [link, lane,
                                 deliver = std::move(deliver)](
                                    spe::LineRequest &&r) mutable {
                    std::uint32_t bytes = r.bytes;
                    link->send(lane, bytes,
                              [r = std::move(r),
                               deliver =
                                   std::move(deliver)]() mutable {
                        deliver(std::move(r));
                    });
                };
                if (far_eib) {
                    std::uint32_t bytes = req.bytes;
                    far_eib->transfer(
                        eib::micRamp, eib::ioif0Ramp, bytes,
                        [req = std::move(req),
                         hop_home = std::move(hop_home)]() mutable {
                            hop_home(std::move(req));
                        });
                } else {
                    hop_home(std::move(req));
                }
            });
        });
    } else {
        // LS read, data ride out, (IOIF crossing, far EIB,) bank write.
        Tick ls_done = s->ls().reservePort(req.bytes);
        eq_->scheduleAt(ls_done, [this, req = std::move(req), near_eib,
                                  local_ramp, spe_ramp, s, far_eib,
                                  dram, link, crossing, bank]() mutable {
            near_eib->transfer(spe_ramp, local_ramp, req.bytes,
                               [this, req = std::move(req), s, far_eib,
                                dram, link, crossing, bank]() mutable {
                std::uint8_t buf[spe::lineBytes];
                s->ls().read(req.lsa, buf, req.bytes);
                if (req.corrupt)
                    buf[0] ^= 0xA5;
                memory_->store().write(req.ea, buf, req.bytes);
                auto write_bank = [dram](spe::LineRequest &&r) {
                    std::uint32_t bytes = r.bytes;
                    dram->access(r.ea, bytes, true, std::move(r.done));
                };
                if (!crossing) {
                    write_bank(std::move(req));
                    return;
                }
                std::uint32_t bytes = req.bytes;
                auto lane = (bank == 0) ? mem::IoLink::Dir::Inbound
                                        : mem::IoLink::Dir::Outbound;
                link->send(lane, bytes,
                          [req = std::move(req), far_eib,
                           write_bank = std::move(write_bank)]() mutable {
                    if (far_eib) {
                        std::uint32_t b = req.bytes;
                        far_eib->transfer(
                            eib::ioif0Ramp, eib::micRamp, b,
                            [req = std::move(req),
                             write_bank =
                                 std::move(write_bank)]() mutable {
                                write_bank(std::move(req));
                            });
                    } else {
                        write_bank(std::move(req));
                    }
                });
            });
        });
    }
}

/**
 * LS-to-LS routing.  Same-chip transfers ride one EIB; cross-chip
 * transfers ride the source chip's EIB to its IOIF, cross the blade at
 * 7 GB/s, and ride the target chip's EIB from its IOIF — the paper's
 * warning about SPEs allocated on different chips.
 */
void
CellSystem::routeLocalStore(spe::LineRequest &&req)
{
    EffAddr rel = req.ea - lsEaBase;
    auto target_idx = static_cast<unsigned>(rel / lsEaStride);
    auto off = static_cast<LsAddr>(rel % lsEaStride);
    if (target_idx >= spes_.size()) {
        sim::fatal("DMA to LS aperture of SPE %u, which does not exist",
                   target_idx);
    }
    if (target_idx == req.speIndex)
        sim::fatal("DMA to the issuing SPE's own LS aperture");

    spe::Spe *self = spes_[req.speIndex].get();
    spe::Spe *peer = spes_[target_idx].get();
    unsigned self_chip = chipOf(req.speIndex);
    unsigned peer_chip = chipOf(target_idx);
    eib::RampPos self_ramp = rampOf(req.speIndex);
    eib::RampPos peer_ramp = rampOf(target_idx);
    mem::IoLink *link = &memory_->ioLink();

    // The transfer from the data-holding LS to the receiving LS:
    // remote reader for GET, local reader for PUT.
    spe::Spe *src_spe = (req.dir == spe::DmaDir::Get) ? peer : self;
    spe::Spe *dst_spe = (req.dir == spe::DmaDir::Get) ? self : peer;
    eib::Eib *src_eib = eibs_[(req.dir == spe::DmaDir::Get) ? peer_chip
                                                            : self_chip]
                            .get();
    eib::Eib *dst_eib = eibs_[(req.dir == spe::DmaDir::Get) ? self_chip
                                                            : peer_chip]
                            .get();
    eib::RampPos src_ramp =
        (req.dir == spe::DmaDir::Get) ? peer_ramp : self_ramp;
    eib::RampPos dst_ramp =
        (req.dir == spe::DmaDir::Get) ? self_ramp : peer_ramp;
    LsAddr src_lsa = (req.dir == spe::DmaDir::Get) ? off : req.lsa;
    LsAddr dst_lsa = (req.dir == spe::DmaDir::Get) ? req.lsa : off;
    bool crossing = (self_chip != peer_chip);

    // Command latency to reach a remote MFC (GET only; PUT data
    // originates locally).
    Tick cmd = (req.dir == spe::DmaDir::Get)
                   ? cfg_.clock.busCycles(cfg_.remoteCmdLatencyBus) +
                         (crossing ? link->crossingLatency() : 0)
                   : 0;

    eq_->schedule(cmd, [this, req = std::move(req), src_spe, dst_spe,
                        src_eib, dst_eib, src_ramp, dst_ramp, src_lsa,
                        dst_lsa, crossing, link]() mutable {
        Tick read_done = src_spe->ls().reservePort(req.bytes);
        eq_->scheduleAt(read_done, [this, req = std::move(req), src_spe,
                                    dst_spe, src_eib, dst_eib, src_ramp,
                                    dst_ramp, src_lsa, dst_lsa, crossing,
                                    link]() mutable {
            auto land = [this, src_spe, dst_spe, src_lsa,
                         dst_lsa](spe::LineRequest &&r) {
                Tick done_at = dst_spe->ls().reservePort(r.bytes);
                std::uint8_t buf[spe::lineBytes];
                src_spe->ls().read(src_lsa, buf, r.bytes);
                if (r.corrupt)
                    buf[0] ^= 0xA5;
                dst_spe->ls().write(dst_lsa, buf, r.bytes);
                eq_->scheduleAt(done_at, std::move(r.done));
            };
            if (!crossing) {
                src_eib->transfer(src_ramp, dst_ramp, req.bytes,
                                  [req = std::move(req),
                                   land = std::move(land)]() mutable {
                    land(std::move(req));
                });
                return;
            }
            std::uint32_t bytes = req.bytes;
            // The lane is named from chip 0's viewpoint: Inbound
            // carries payloads toward chip 0.
            unsigned dst_chip =
                (req.dir == spe::DmaDir::Get)
                    ? chipOf(req.speIndex)
                    : chipOf(static_cast<unsigned>(
                          (req.ea - lsEaBase) / lsEaStride));
            auto lane = (dst_chip == 0) ? mem::IoLink::Dir::Inbound
                                        : mem::IoLink::Dir::Outbound;
            src_eib->transfer(src_ramp, eib::ioif0Ramp, bytes,
                              [req = std::move(req), dst_eib, dst_ramp,
                               link, lane,
                               land = std::move(land)]() mutable {
                std::uint32_t b = req.bytes;
                link->send(lane, b,
                          [req = std::move(req), dst_eib, dst_ramp,
                           land = std::move(land)]() mutable {
                    std::uint32_t b2 = req.bytes;
                    dst_eib->transfer(eib::ioif0Ramp, dst_ramp, b2,
                                      [req = std::move(req),
                                       land =
                                           std::move(land)]() mutable {
                        land(std::move(req));
                    });
                });
            });
        });
    });
}

/** Read @p bytes at @p ea from wherever it lives: an SPE's LS aperture
 *  or the main-memory backing store. */
void
CellSystem::readEa(EffAddr ea, std::uint8_t *buf, std::uint32_t bytes)
{
    if (!isLsEa(ea)) {
        memory_->store().read(ea, buf, bytes);
        return;
    }
    EffAddr rel = ea - lsEaBase;
    auto idx = static_cast<unsigned>(rel / lsEaStride);
    auto off = static_cast<LsAddr>(rel % lsEaStride);
    if (idx >= spes_.size())
        sim::fatal("verify: EA 0x%llx maps to SPE %u, which does not "
                   "exist", (unsigned long long)ea, idx);
    spes_[idx]->ls().read(off, buf, bytes);
}

void
CellSystem::verifyCompletion(const spe::Mfc::Completion &done)
{
    if (done.fault != spe::MfcError::None) {
        // A dropped or corrupted command is *expected* to diverge; it
        // reported its error status and recovery is the program's job.
        ++verifyStats_.faultedSkipped;
        return;
    }
    auto &ls = spes_[done.speIndex]->ls();
    LsAddr lsa = done.lsa;
    std::vector<std::uint8_t> ls_buf, ea_buf;
    for (const auto &seg : *done.segs) {
        if (done.isList)
            lsa = static_cast<LsAddr>(util::roundUp(lsa, 16));
        ls_buf.resize(seg.size);
        ea_buf.resize(seg.size);
        ls.read(lsa, ls_buf.data(), seg.size);
        readEa(seg.ea, ea_buf.data(), seg.size);
        if (ls_buf != ea_buf) {
            std::uint32_t i = 0;
            while (i < seg.size && ls_buf[i] == ea_buf[i])
                ++i;
            ++verifyStats_.divergences;
            if (verifyStats_.firstDivergence.empty()) {
                verifyStats_.firstDivergence = util::format(
                    "tick %llu spe%u tag %u %s%s: LS 0x%x vs EA 0x%llx "
                    "diverge at byte %u of %u (ls=0x%02x ea=0x%02x)",
                    (unsigned long long)now(), done.speIndex, done.tag,
                    done.dir == spe::DmaDir::Get ? "get" : "put",
                    done.isList ? "-list" : "", lsa,
                    (unsigned long long)seg.ea, i, seg.size, ls_buf[i],
                    ea_buf[i]);
            }
        }
        verifyStats_.bytesChecked += seg.size;
        lsa += seg.size;
    }
    ++verifyStats_.transfersChecked;
}

void
CellSystem::snapshotMetrics(stats::MetricsRegistry &reg) const
{
    reg.counter("sim.runs").increment();
    reg.counter("sim.ticks").add(eq_->now());
    for (unsigned c = 0; c < eibs_.size(); ++c)
        eibs_[c]->registerMetrics(reg, util::format("eib%u", c));
    memory_->registerMetrics(reg, "mem");
    ppu_->registerMetrics(reg, "ppe");
    for (unsigned s = 0; s < spes_.size(); ++s) {
        spes_[s]->mfc().registerMetrics(
            reg, util::format("spe%u.mfc", s));
    }
    if (recorder_) {
        reg.counter("trace.dma_dropped").add(recorder_->dmaDropped());
        reg.counter("trace.eib_dropped").add(recorder_->eibDropped());
    }
}

} // namespace cellbw::cell
