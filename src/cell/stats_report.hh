/**
 * @file
 * A machine-wide counter report: what every component did during a run.
 *
 * The paper's authors read their numbers off hand-instrumented codes;
 * the simulator can simply show its books.  statsReport() renders the
 * per-SPE MFC activity, the EIB ring utilization, and the memory-system
 * counters as one table block — handy at the end of an example or with
 * a bench's --stats flag.
 */

#ifndef CELLBW_CELL_STATS_REPORT_HH
#define CELLBW_CELL_STATS_REPORT_HH

#include <string>

#include "cell/cell_system.hh"

namespace cellbw::cell
{

/** Render all component counters of @p sys at the current tick. */
std::string statsReport(CellSystem &sys);

} // namespace cellbw::cell

#endif // CELLBW_CELL_STATS_REPORT_HH
