#include "cell/config.hh"

#include "sim/logging.hh"
#include "util/strings.hh"

namespace cellbw::cell
{

namespace
{

double
bytesPerTick(double gbps, double cpuHz)
{
    return gbps * 1e9 / cpuHz;
}

} // namespace

CellConfig::CellConfig()
{
    // Paper machine: 2.1 GHz, XDR banks.  A bank sustains ~14 GB/s of
    // its 16.8 GB/s ramp peak (refresh & co); its access latency is set
    // so that one MFC's 16-line window sustains ~10 GB/s, the paper's
    // single-SPE measurement.
    memory.bank0.bytesPerTick = bytesPerTick(15.5, clock.cpuHz);
    memory.bank1.bytesPerTick = bytesPerTick(15.5, clock.cpuHz);
    memory.bank0.accessLatency = clock.fromNs(110.0);
    memory.bank1.accessLatency = clock.fromNs(110.0);
    memory.ioLink.bytesPerTick = bytesPerTick(7.0, clock.cpuHz);
    memory.ioLink.crossingLatency = clock.fromNs(40.0);
    // Inter-blade links are an external fabric: narrower and farther
    // than the on-blade IOIF (think an InfiniBand-class interconnect).
    memory.bladeLink.bytesPerTick = bytesPerTick(2.0, clock.cpuHz);
    memory.bladeLink.crossingLatency = clock.fromNs(400.0);
}

double
CellConfig::rampPeakGBps() const
{
    double bus_hz = clock.cpuHz / clock.busPeriodTicks;
    return eib.bytesPerBusCycle * bus_hz / 1e9;
}

double
CellConfig::lsPeakGBps() const
{
    return spe.ls.bytesPerCycle * clock.cpuHz / 1e9;
}

double
CellConfig::pairPeakGBps() const
{
    return 2.0 * rampPeakGBps();
}

AffinityPolicy
affinityFromString(const std::string &s)
{
    std::string v = util::toLower(s);
    if (v == "random")
        return AffinityPolicy::Random;
    if (v == "linear")
        return AffinityPolicy::Linear;
    if (v == "paired")
        return AffinityPolicy::Paired;
    sim::fatal("unknown affinity policy '%s' "
               "(expected random|linear|paired)", s.c_str());
}

const char *
toString(AffinityPolicy a)
{
    switch (a) {
      case AffinityPolicy::Random:
        return "random";
      case AffinityPolicy::Linear:
        return "linear";
      case AffinityPolicy::Paired:
        return "paired";
    }
    return "?";
}

TaskPlacement
placementFromString(const std::string &s)
{
    std::string v = util::toLower(s);
    if (v == "round-robin" || v == "rr")
        return TaskPlacement::RoundRobin;
    if (v == "locality" || v == "local")
        return TaskPlacement::Locality;
    sim::fatal("unknown placement policy '%s' "
               "(expected round-robin|locality)", s.c_str());
}

const char *
toString(TaskPlacement p)
{
    switch (p) {
      case TaskPlacement::RoundRobin:
        return "round-robin";
      case TaskPlacement::Locality:
        return "locality";
    }
    return "?";
}

void
CellConfig::registerOptions(util::Options &opts)
{
    opts.addDouble("cpu-ghz", 2.1, "CPU clock in GHz");
    opts.addUint("chips", 1, "Cell chips with active SPEs (1-16)");
    opts.addUint("blades", 0,
                 "blades holding the chips (0 = two chips per blade)");
    opts.addUint("spes", 8, "number of SPEs");
    opts.addUint("rings", 4, "EIB data rings");
    opts.addUint("eib-cmd-latency", 20, "EIB command phase, bus cycles");
    opts.addUint("mfc-queue-depth", 16, "MFC command queue entries");
    opts.addUint("mfc-mem-tokens", 18,
                 "MFC outstanding 128B lines to main memory");
    opts.addUint("mfc-ls-lines", 64,
                 "MFC outstanding 128B lines to LS apertures");
    opts.addUint("dma-elem-overhead", 24,
                 "MFC issue occupancy per DMA command, bus cycles");
    opts.addUint("dma-list-elem-overhead", 2,
                 "extra issue occupancy per DMA-list element, bus cycles");
    opts.addDouble("bank0-gbps", 15.5, "local XDR bank sustained GB/s");
    opts.addDouble("bank1-gbps", 15.5, "remote XDR bank sustained GB/s");
    opts.addDouble("io-gbps", 7.0, "IOIF link GB/s per direction");
    opts.addDouble("ioif-latency", 40.0,
                   "one-way IOIF crossing latency, ns");
    opts.addDouble("blade-link-gbps", 2.0,
                   "inter-blade link GB/s per direction");
    opts.addDouble("blade-latency", 400.0,
                   "one-way inter-blade crossing latency, ns");
    opts.addDouble("mem-latency-ns", 110.0, "bank access latency, ns");
    opts.addBool("mem-row-timing", false,
                 "timing row-buffer model (open page): row hits pay "
                 "CAS only, each activate adds bank occupancy");
    opts.addDouble("mem-row-hit-ns", 30.0,
                   "row-hit (CAS-only) completion latency, ns");
    opts.addDouble("mem-row-miss-ns", 80.0,
                   "precharge+activate occupancy per row miss, ns");
    opts.addUint("mem-row-bytes", 2048, "DRAM row (page) size in bytes");
    opts.addDouble("bank0-share", 0.65,
                   "fraction of interleaved pages on the local bank");
    opts.addString("numa", "interleave",
                   "page placement: interleave|local|remote");
    opts.addBool("flow-pinning", true,
                 "pin each flow to one EIB ring (vs per-packet choice)");
    opts.addString("affinity", "random",
                   "SPE placement policy: random|linear|paired");
    opts.addString("placement", "round-robin",
                   "cluster work placement: round-robin|locality");
    opts.addDouble("fault-drop-rate", 0.0,
                   "P(a DMA command is silently dropped)");
    opts.addDouble("fault-corrupt-rate", 0.0,
                   "P(a DMA command's payload is corrupted in flight)");
    opts.addDouble("fault-delay-rate", 0.0,
                   "P(a DMA command's completion is delayed)");
    opts.addDouble("fault-delay-ns", 950.0,
                   "extra completion latency of a delayed command, ns");
    opts.addUint("fault-seed", 1,
                 "base seed of the fault-injection generators");
    opts.addBool("verify", false,
                 "cross-check every DMA against the backing store");
    opts.addUint("trace-capacity", 0,
                 "max retained trace records per kind (0 = unbounded)");
    opts.addUint("sim-jobs", 1,
                 "worker threads for per-chip parallel simulation "
                 "(result-neutral; 0 = one per chip)");
    opts.addBool("sim-profile", false,
                 "book per-component event counts and self-time into "
                 "the report");
}

CellConfig
CellConfig::fromOptions(const util::Options &opts)
{
    CellConfig cfg;
    cfg.clock.cpuHz = opts.getDouble("cpu-ghz") * 1e9;
    cfg.numChips = static_cast<unsigned>(opts.getUint("chips"));
    if (cfg.numChips < 1) {
        sim::fatal("--chips must be at least 1");
    } else if (cfg.numChips > 16) {
        // The flight arena packs the chip index into bits 28-31 of a
        // 32-bit DMA handle (CellSystem::kChipShift), so the handle's
        // chip field caps the cluster at 16 chips.
        sim::fatal("--chips %u exceeds the flight handle's 4-bit chip "
                   "field (max 16 chips)", cfg.numChips);
    }
    cfg.numBlades = static_cast<unsigned>(opts.getUint("blades"));
    {
        auto shape = eib::ClusterShape::of(cfg.numChips, cfg.numBlades);
        if (!shape.valid()) {
            sim::fatal("--blades %u cannot hold %u chips (blades carry "
                       "one or two chips each and none may be empty)",
                       cfg.numBlades, cfg.numChips);
        }
    }
    cfg.numSpes = static_cast<unsigned>(opts.getUint("spes"));
    if (cfg.numSpes == 0 ||
        cfg.numSpes > cfg.numChips * eib::numPhysicalSpes) {
        sim::fatal("--spes must be 1..%u with %u chip(s)",
                   cfg.numChips * eib::numPhysicalSpes, cfg.numChips);
    }
    cfg.eib.numRings = static_cast<unsigned>(opts.getUint("rings"));
    cfg.eib.cmdLatencyBus = opts.getUint("eib-cmd-latency");
    cfg.spe.mfc.queueDepth =
        static_cast<unsigned>(opts.getUint("mfc-queue-depth"));
    cfg.spe.mfc.memoryTokens =
        static_cast<unsigned>(opts.getUint("mfc-mem-tokens"));
    cfg.spe.mfc.lsLines =
        static_cast<unsigned>(opts.getUint("mfc-ls-lines"));
    cfg.spe.mfc.elemOverheadBus = opts.getUint("dma-elem-overhead");
    cfg.spe.mfc.listElemOverheadBus =
        opts.getUint("dma-list-elem-overhead");

    cfg.memory.bank0.bytesPerTick =
        bytesPerTick(opts.getDouble("bank0-gbps"), cfg.clock.cpuHz);
    cfg.memory.bank1.bytesPerTick =
        bytesPerTick(opts.getDouble("bank1-gbps"), cfg.clock.cpuHz);
    cfg.memory.ioLink.bytesPerTick =
        bytesPerTick(opts.getDouble("io-gbps"), cfg.clock.cpuHz);
    cfg.memory.ioLink.crossingLatency =
        cfg.clock.fromNs(opts.getDouble("ioif-latency"));
    cfg.memory.bladeLink.bytesPerTick =
        bytesPerTick(opts.getDouble("blade-link-gbps"), cfg.clock.cpuHz);
    cfg.memory.bladeLink.crossingLatency =
        cfg.clock.fromNs(opts.getDouble("blade-latency"));
    cfg.memory.numChips = cfg.numChips;
    cfg.memory.numBlades = cfg.numBlades;
    cfg.memory.bank0.accessLatency =
        cfg.clock.fromNs(opts.getDouble("mem-latency-ns"));
    cfg.memory.bank1.accessLatency = cfg.memory.bank0.accessLatency;
    cfg.memory.bank0.rowTiming = opts.getBool("mem-row-timing");
    cfg.memory.bank0.rowHitLatency =
        cfg.clock.fromNs(opts.getDouble("mem-row-hit-ns"));
    cfg.memory.bank0.rowMissPenalty =
        cfg.clock.fromNs(opts.getDouble("mem-row-miss-ns"));
    cfg.memory.bank0.rowBytes = opts.getUint("mem-row-bytes");
    cfg.memory.bank1.rowTiming = cfg.memory.bank0.rowTiming;
    cfg.memory.bank1.rowHitLatency = cfg.memory.bank0.rowHitLatency;
    cfg.memory.bank1.rowMissPenalty = cfg.memory.bank0.rowMissPenalty;
    cfg.memory.bank1.rowBytes = cfg.memory.bank0.rowBytes;

    const std::string &numa = opts.getString("numa");
    if (numa == "interleave") {
        cfg.numa = mem::NumaPolicy::interleave(
            opts.getDouble("bank0-share"));
    } else if (numa == "local") {
        cfg.numa = mem::NumaPolicy::local();
    } else if (numa == "remote") {
        cfg.numa = mem::NumaPolicy::remote();
    } else {
        sim::fatal("unknown numa policy '%s'", numa.c_str());
    }

    cfg.eib.flowPinning = opts.getBool("flow-pinning");
    cfg.affinity = affinityFromString(opts.getString("affinity"));
    cfg.placement = placementFromString(opts.getString("placement"));

    auto &faults = cfg.spe.mfc.faults;
    faults.dropRate = opts.getDouble("fault-drop-rate");
    faults.corruptRate = opts.getDouble("fault-corrupt-rate");
    faults.delayRate = opts.getDouble("fault-delay-rate");
    faults.delayTicks = cfg.clock.fromNs(opts.getDouble("fault-delay-ns"));
    faults.seed = opts.getUint("fault-seed");
    if (faults.dropRate < 0.0 || faults.corruptRate < 0.0 ||
        faults.delayRate < 0.0 ||
        faults.dropRate + faults.corruptRate + faults.delayRate > 1.0) {
        sim::fatal("--fault-*-rate values must be >= 0 and sum to <= 1");
    }
    cfg.verify = opts.getBool("verify");
    cfg.traceCapacity = opts.getUint("trace-capacity");
    cfg.simJobs = static_cast<unsigned>(opts.getUint("sim-jobs"));
    cfg.simProfile = opts.getBool("sim-profile");
    return cfg;
}

} // namespace cellbw::cell
