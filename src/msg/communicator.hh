/**
 * @file
 * MPI-style message passing between SPEs.
 *
 * The paper's abstract motivates the CBE for "applications using MPI
 * and streaming programming models"; contemporaries (Ohio State's Cell
 * MPI, Krishna et al.) built exactly this layer.  Communicator provides
 * ranks (one per SPE), point-to-point send/recv with the two classic
 * protocols, barriers and a ring allreduce — all moving real bytes over
 * the simulated MFC/EIB path, so the paper's bandwidth rules decide the
 * performance:
 *
 *  - **eager** (small messages): the sender PUTs the payload directly
 *    into a credit-managed slot in the receiver's LS and posts a
 *    descriptor; the receiver copies it out and returns the credit.
 *    One DMA + one LS copy; latency-optimal.
 *  - **rendezvous** (large messages): the sender publishes a
 *    ready-to-send descriptor; the receiver GETs the payload straight
 *    from the sender's LS (zero-copy) and acknowledges.  One DMA at
 *    full pair bandwidth.
 *
 * Control descriptors travel through runtime-managed queues with a
 * configurable notification latency, modeling mailbox/MMIO flag writes.
 */

#ifndef CELLBW_MSG_COMMUNICATOR_HH
#define CELLBW_MSG_COMMUNICATOR_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cell/cell_system.hh"
#include "sim/task.hh"

namespace cellbw::msg
{

struct CommunicatorParams
{
    /** Messages up to this size use the eager protocol. */
    std::uint32_t eagerLimit = 2048;

    /** Eager slot size; also the largest eager message. */
    std::uint32_t slotBytes = 2048;

    /** Eager slots (credits) per ordered sender->receiver pair. */
    unsigned slotsPerPair = 2;

    /** Modeled latency of a control notification (mailbox write). */
    Tick notifyLatency = 200;

    /** Max re-issues of a transiently faulted DMA before fatal. */
    unsigned maxDmaRetries = 8;

    /** Base retry backoff, ticks; doubles with each failed attempt. */
    Tick retryBackoff = 1000;
};

class Communicator
{
  public:
    /**
     * Build a communicator over logical SPEs [0, ranks).  Reserves LS
     * space on each participant for the eager slots.
     */
    Communicator(cell::CellSystem &sys, unsigned ranks,
                 const CommunicatorParams &params = {});

    unsigned ranks() const { return ranks_; }
    std::uint32_t eagerLimit() const { return params_.eagerLimit; }

    /**
     * Send @p bytes from @p lsa in rank @p self's LS to rank @p dst.
     * Completes when the payload has left the sender's buffer (eager)
     * or has been pulled by the receiver (rendezvous).
     */
    sim::Task send(unsigned self, unsigned dst, LsAddr lsa,
                   std::uint32_t bytes);

    /**
     * Receive the next message from @p src into @p lsa (capacity
     * @p maxBytes) of rank @p self's LS.  Messages from one sender
     * arrive in order; @p outBytes receives the payload size.
     */
    sim::Task recv(unsigned self, unsigned src, LsAddr lsa,
                   std::uint32_t maxBytes, std::uint32_t *outBytes);

    /** Centralized counter barrier across all ranks. */
    sim::Task barrier(unsigned self);

    /**
     * Ring allreduce (sum) of @p elems floats at @p lsa in every
     * rank's LS; on completion every rank holds the elementwise sum.
     * Requires the same @p elems on every rank and ranks >= 2.
     */
    sim::Task allreduceSum(unsigned self, LsAddr lsa,
                           std::uint32_t elems);

    /** @name Statistics. */
    /** @{ */
    std::uint64_t eagerMessages() const { return eagerCount_; }
    std::uint64_t rendezvousMessages() const { return rndvCount_; }
    std::uint64_t bytesSent() const { return bytesSent_; }
    /** Payload DMAs that completed with a transient fault. */
    std::uint64_t dmaFaults() const { return dmaFaults_; }
    /** Payload DMAs re-issued to recover from those faults. */
    std::uint64_t dmaRetries() const { return dmaRetries_; }
    /** @} */

  private:
    struct Descriptor
    {
        std::uint32_t bytes;
        bool eager;
        unsigned slot;          // eager: receiver-side slot index
        LsAddr senderLsa;       // rendezvous: where to GET from
        bool consumed = false;  // rendezvous: receiver done
    };

    struct Pair
    {
        // shared_ptr: the rendezvous sender keeps a reference to its
        // descriptor while the deque mutates underneath.
        std::deque<std::shared_ptr<Descriptor>> queue;
        std::unique_ptr<sim::Signal> arrived;
        std::unique_ptr<sim::Signal> credit;
        std::unique_ptr<sim::Signal> consumed;
        unsigned credits;
        LsAddr slotBase;        // in the *receiver*'s LS
        unsigned nextSlot = 0;
    };

    Pair &pair(unsigned src, unsigned dst);
    sim::Task recoverDma(unsigned rank, unsigned tag);

    cell::CellSystem &sys_;
    CommunicatorParams params_;
    unsigned ranks_;
    std::vector<Pair> pairs_;           // ranks x ranks, src-major

    // Centralized barrier state.
    unsigned barrierWaiting_ = 0;
    std::uint64_t barrierGeneration_ = 0;
    std::unique_ptr<sim::Signal> barrierRelease_;

    std::uint64_t eagerCount_ = 0;
    std::uint64_t rndvCount_ = 0;
    std::uint64_t bytesSent_ = 0;
    std::uint64_t dmaFaults_ = 0;
    std::uint64_t dmaRetries_ = 0;
};

} // namespace cellbw::msg

#endif // CELLBW_MSG_COMMUNICATOR_HH
