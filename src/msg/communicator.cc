#include "msg/communicator.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "util/align.hh"

namespace cellbw::msg
{

Communicator::Communicator(cell::CellSystem &sys, unsigned ranks,
                           const CommunicatorParams &params)
    : sys_(sys), params_(params), ranks_(ranks)
{
    if (ranks_ < 2 || ranks_ > sys_.numSpes())
        sim::fatal("communicator: ranks must be 2..%u", sys_.numSpes());
    if (params_.eagerLimit > params_.slotBytes)
        sim::fatal("communicator: eager limit exceeds the slot size");
    if (!util::isValidDmaSize(params_.slotBytes))
        sim::fatal("communicator: slot size is not a valid DMA size");

    auto &eq = sys_.eventQueue();
    pairs_.resize(std::size_t(ranks_) * ranks_);
    for (unsigned dst = 0; dst < ranks_; ++dst) {
        for (unsigned src = 0; src < ranks_; ++src) {
            if (src == dst)
                continue;
            Pair &p = pair(src, dst);
            p.arrived = std::make_unique<sim::Signal>(eq);
            p.credit = std::make_unique<sim::Signal>(eq);
            p.consumed = std::make_unique<sim::Signal>(eq);
            p.credits = params_.slotsPerPair;
            // Eager slots live in the receiver's LS.
            p.slotBase = sys_.spe(dst).lsAlloc(
                params_.slotsPerPair * params_.slotBytes);
        }
    }
    barrierRelease_ = std::make_unique<sim::Signal>(eq);
}

Communicator::Pair &
Communicator::pair(unsigned src, unsigned dst)
{
    if (src >= ranks_ || dst >= ranks_ || src == dst)
        sim::fatal("communicator: bad pair %u -> %u", src, dst);
    return pairs_[std::size_t(src) * ranks_ + dst];
}

namespace
{

/** Message sizes follow the DMA rules but may exceed one command:
 *  1, 2, 4, 8 bytes or any multiple of 16 (chunked into <=16 KB DMAs). */
bool
isValidMessageSize(std::uint32_t bytes)
{
    if (bytes == 0)
        return false;
    if (bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8)
        return true;
    return bytes % 16 == 0;
}

} // namespace

sim::Task
Communicator::send(unsigned self, unsigned dst, LsAddr lsa,
                   std::uint32_t bytes)
{
    if (!isValidMessageSize(bytes))
        sim::fatal("communicator: message size %u is not a valid DMA "
                   "size", bytes);
    Pair &p = pair(self, dst);
    auto &mfc = sys_.spe(self).mfc();
    bytesSent_ += bytes;

    if (bytes <= params_.eagerLimit) {
        // Eager: claim a credit, PUT into the receiver's slot, post.
        while (p.credits == 0)
            co_await p.credit->wait();
        --p.credits;
        unsigned slot = p.nextSlot;
        p.nextSlot = (p.nextSlot + 1) % params_.slotsPerPair;

        co_await mfc.queueSpace();
        mfc.put(lsa,
                sys_.lsEa(dst, p.slotBase + slot * params_.slotBytes),
                bytes, 7);
        co_await mfc.tagWait(1u << 7);
        if (mfc.tagFaultCount(7))
            co_await recoverDma(self, 7);

        co_await sim::Delay{sys_.eventQueue(), params_.notifyLatency};
        p.queue.push_back(std::make_shared<Descriptor>(
            Descriptor{bytes, true, slot, 0, false}));
        p.arrived->notifyAll();
        ++eagerCount_;
        co_return;
    }

    // Rendezvous: publish a ready-to-send descriptor, wait for the
    // receiver to pull the payload from our LS.
    co_await sim::Delay{sys_.eventQueue(), params_.notifyLatency};
    auto mine = std::make_shared<Descriptor>(
        Descriptor{bytes, false, 0, lsa, false});
    p.queue.push_back(mine);
    p.arrived->notifyAll();
    ++rndvCount_;
    while (!mine->consumed)
        co_await p.consumed->wait();
}

sim::Task
Communicator::recv(unsigned self, unsigned src, LsAddr lsa,
                   std::uint32_t maxBytes, std::uint32_t *outBytes)
{
    Pair &p = pair(src, self);
    auto &spe = sys_.spe(self);

    while (p.queue.empty())
        co_await p.arrived->wait();
    std::shared_ptr<Descriptor> stored = p.queue.front();
    Descriptor d = *stored;
    if (d.bytes > maxBytes) {
        sim::fatal("communicator: %u-byte message exceeds the %u-byte "
                   "receive buffer", d.bytes, maxBytes);
    }

    if (d.eager) {
        p.queue.pop_front();
        // Copy slot -> user buffer inside the LS (quadword loop).
        LsAddr slot_lsa = p.slotBase + d.slot * params_.slotBytes;
        std::vector<std::uint8_t> buf(d.bytes);
        spe.ls().read(slot_lsa, buf.data(), d.bytes);
        spe.ls().write(lsa, buf.data(), d.bytes);
        Tick done = spe.ls().reservePort(2 * d.bytes);
        co_await sim::WaitUntil{sys_.eventQueue(), done};
        // Return the credit.
        co_await sim::Delay{sys_.eventQueue(), params_.notifyLatency};
        ++p.credits;
        p.credit->notifyAll();
    } else {
        // Rendezvous: pull straight from the sender's LS, chunked into
        // <=16 KiB commands with the tag wait delayed to the end.
        auto &mfc = spe.mfc();
        for (std::uint32_t off = 0; off < d.bytes; off += 16 * 1024) {
            std::uint32_t chunk =
                std::min<std::uint32_t>(16 * 1024, d.bytes - off);
            co_await mfc.queueSpace();
            mfc.get(lsa + off, sys_.lsEa(src, d.senderLsa + off), chunk,
                    8);
        }
        co_await mfc.tagWait(1u << 8);
        if (mfc.tagFaultCount(8))
            co_await recoverDma(self, 8);
        stored->consumed = true;
        p.queue.pop_front();
        co_await sim::Delay{sys_.eventQueue(), params_.notifyLatency};
        p.consumed->notifyAll();
    }
    if (outBytes)
        *outBytes = d.bytes;
}

/**
 * Repair a tag group whose payload DMA completed with fault status:
 * re-issue each faulted command verbatim (the sender's buffer and the
 * eager slot are both still live, so transfers are idempotent) after a
 * backoff that doubles per attempt, bounded by params.maxDmaRetries.
 */
sim::Task
Communicator::recoverDma(unsigned rank, unsigned tag)
{
    auto &mfc = sys_.spe(rank).mfc();
    for (unsigned attempt = 0;; ++attempt) {
        auto faults = mfc.takeFaults(tag);
        if (faults.empty())
            co_return;
        dmaFaults_ += faults.size();
        for (const auto &f : faults) {
            if (!spe::isTransient(f.code)) {
                sim::fatal("communicator rank %u: unrecoverable MFC "
                           "fault '%s' on tag %u", rank,
                           spe::toString(f.code), tag);
            }
        }
        if (attempt >= params_.maxDmaRetries) {
            sim::fatal("communicator rank %u: tag %u still faulted "
                       "after %u retries", rank, tag,
                       params_.maxDmaRetries);
        }
        co_await sim::Delay{sys_.eventQueue(),
                            params_.retryBackoff
                                << std::min(attempt, 16u)};
        for (const auto &f : faults) {
            ++dmaRetries_;
            co_await mfc.queueSpace();
            if (f.dir == spe::DmaDir::Get)
                mfc.get(f.lsa, f.segs[0].ea, f.segs[0].size, f.tag);
            else
                mfc.put(f.lsa, f.segs[0].ea, f.segs[0].size, f.tag);
        }
        co_await mfc.tagWait(1u << tag);
    }
}

sim::Task
Communicator::barrier(unsigned self)
{
    if (self >= ranks_)
        sim::fatal("communicator: bad rank %u", self);
    // Model the flag write reaching the coordinating location.
    co_await sim::Delay{sys_.eventQueue(), params_.notifyLatency};
    std::uint64_t gen = barrierGeneration_;
    if (++barrierWaiting_ == ranks_) {
        barrierWaiting_ = 0;
        ++barrierGeneration_;
        barrierRelease_->notifyAll();
        co_return;
    }
    while (barrierGeneration_ == gen)
        co_await barrierRelease_->wait();
}

sim::Task
Communicator::allreduceSum(unsigned self, LsAddr lsa,
                           std::uint32_t elems)
{
    const std::uint32_t bytes = elems * 4;
    if (elems == 0 || !util::isValidDmaSize(bytes))
        sim::fatal("allreduce: %u floats is not a DMA-able size", elems);
    auto &spe = sys_.spe(self);
    LsAddr scratch = spe.lsAlloc(bytes, 16);
    const unsigned last = ranks_ - 1;

    auto add_into = [&](LsAddr acc, LsAddr other) -> sim::Task {
        std::vector<float> a(elems), b(elems);
        spe.ls().read(acc, a.data(), bytes);
        spe.ls().read(other, b.data(), bytes);
        for (std::uint32_t i = 0; i < elems; ++i)
            a[i] += b[i];
        spe.ls().write(acc, a.data(), bytes);
        Tick done = spe.ls().reservePort(3 * bytes);
        // 4-wide SIMD adds: elems/4 cycles of compute.
        co_await spe.spu().cycles(elems / 4 + 1);
        co_await sim::WaitUntil{sys_.eventQueue(), done};
    };

    // Reduce along the ring towards rank ranks-1.
    if (self > 0) {
        std::uint32_t got = 0;
        co_await recv(self, self - 1, scratch, bytes, &got);
        co_await add_into(lsa, scratch);
    }
    if (self < last) {
        co_await send(self, self + 1, lsa, bytes);
    }

    // Broadcast the completed sum around the ring from rank ranks-1.
    if (self == last) {
        co_await send(self, 0, lsa, bytes);
    } else {
        co_await recv(self, (self == 0) ? last : self - 1, lsa, bytes,
                      nullptr);
        if (self + 1 != last)
            co_await send(self, self + 1, lsa, bytes);
    }
}

} // namespace cellbw::msg
