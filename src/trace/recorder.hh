/**
 * @file
 * Event tracing: records DMA commands and EIB packets so users can see
 * *why* a transfer pattern performs the way it does — the per-command
 * issue/complete timeline behind every number in the paper.
 *
 * Tracing is opt-in (CellSystem::enableTracing()) and adds no cost when
 * off.  Records can be dumped as CSV, rendered as an ASCII per-SPE
 * timeline, exported as a Paraver trace (.prv, the BSC tool the authors
 * would have used), or exported as a Chrome-trace JSON file that loads
 * straight into chrome://tracing or https://ui.perfetto.dev.
 *
 * Long runs record millions of events; setCapacity() bounds the buffers
 * to the most recent N records per kind (a ring buffer), counting what
 * was discarded, so tracing a long run cannot exhaust host memory.
 */

#ifndef CELLBW_TRACE_RECORDER_HH
#define CELLBW_TRACE_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "spe/dma_types.hh"
#include "util/types.hh"

namespace cellbw::trace
{

/** One MFC command's lifetime. */
struct DmaRecord
{
    Tick enqueued;
    Tick issued;
    Tick completed;
    unsigned spe;
    spe::DmaDir dir;
    unsigned tag;
    std::uint32_t bytes;
    bool isList;
    bool isProxy;
    /** Fault the command completed with (None for a clean transfer). */
    spe::MfcError fault = spe::MfcError::None;
};

/** One data packet's trip over an EIB ring. */
struct EibRecord
{
    Tick requested;
    Tick granted;
    Tick delivered;
    unsigned chip;
    unsigned ring;
    unsigned srcRamp;
    unsigned dstRamp;
    std::uint32_t bytes;
};

class Recorder
{
  public:
    void dma(const DmaRecord &r);
    void eib(const EibRecord &r);

    /**
     * Bound each record buffer to the most recent @p maxRecords entries
     * (0, the default, keeps everything).  Overflowing records are
     * discarded oldest-first and counted in dmaDropped()/eibDropped();
     * the retained records stay in chronological insertion order.  The
     * buffers transiently hold up to twice the capacity so eviction is
     * amortized O(1) per record.
     */
    void setCapacity(std::size_t maxRecords);

    std::size_t capacity() const { return capacity_; }

    /** Records discarded to honor the capacity bound. */
    std::uint64_t dmaDropped() const { return dmaDropped_; }
    std::uint64_t eibDropped() const { return eibDropped_; }

    const std::vector<DmaRecord> &dmaRecords() const { return dma_; }
    const std::vector<EibRecord> &eibRecords() const { return eib_; }

    void
    clear()
    {
        dma_.clear();
        eib_.clear();
        dmaDropped_ = 0;
        eibDropped_ = 0;
    }

    /** CSV with a header row; one line per DMA command. */
    std::string dmaCsv() const;

    /** CSV with a header row; one line per EIB packet. */
    std::string eibCsv() const;

    /**
     * ASCII Gantt chart of the DMA records: one lane per SPE, time
     * bucketed into @p width columns.  '.' = command in queue,
     * 'G'/'P' = GET/PUT in flight, ' ' = idle.  @p width is clamped to
     * at least 1 column, so degenerate requests render instead of
     * indexing out of range.
     */
    std::string renderDmaTimeline(int width = 72) const;

    /**
     * Paraver-style trace (.prv) of the DMA records — the trace format
     * of the authors' own BSC tooling.  One application, one task per
     * SPE; state records (type 1) span each command's in-flight window
     * with the state value 1 for GET and 2 for PUT.  @p nsPerTick
     * converts ticks to the nanosecond timebase Paraver expects; the
     * conversion *rounds* to the nearest ns so sub-ns records do not
     * collapse to zero-length states.  An empty trace yields an empty
     * string (no bogus 1-task/0-duration header).
     */
    std::string paraverExport(double nsPerTick) const;

    /**
     * Chrome-trace (Trace Event Format) JSON of both record kinds, for
     * chrome://tracing and Perfetto.  DMA commands become async
     * begin/end pairs on pid 1 (one tid per SPE) spanning the in-flight
     * window, with the queued time, tag, bytes, and fault status in
     * args; EIB packets become async pairs on pid 2 (one tid per
     * (chip, ring)).  Async events are used because both kinds overlap
     * freely within a lane (16 queue entries, pipelined packets).
     * Timestamps are microseconds, derived from @p nsPerTick.
     */
    std::string chromeTrace(double nsPerTick) const;

  private:
    void enforceCapacity();

    std::vector<DmaRecord> dma_;
    std::vector<EibRecord> eib_;
    std::size_t capacity_ = 0;
    std::uint64_t dmaDropped_ = 0;
    std::uint64_t eibDropped_ = 0;
};

} // namespace cellbw::trace

#endif // CELLBW_TRACE_RECORDER_HH
