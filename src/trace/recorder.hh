/**
 * @file
 * Event tracing: records DMA commands and EIB packets so users can see
 * *why* a transfer pattern performs the way it does — the per-command
 * issue/complete timeline behind every number in the paper.
 *
 * Tracing is opt-in (CellSystem::enableTracing()) and adds no cost when
 * off.  Records can be dumped as CSV or rendered as an ASCII per-SPE
 * timeline (a poor man's Paraver, the BSC tool the authors would have
 * used).
 */

#ifndef CELLBW_TRACE_RECORDER_HH
#define CELLBW_TRACE_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "spe/dma_types.hh"
#include "util/types.hh"

namespace cellbw::trace
{

/** One MFC command's lifetime. */
struct DmaRecord
{
    Tick enqueued;
    Tick issued;
    Tick completed;
    unsigned spe;
    spe::DmaDir dir;
    unsigned tag;
    std::uint32_t bytes;
    bool isList;
    bool isProxy;
    /** Fault the command completed with (None for a clean transfer). */
    spe::MfcError fault = spe::MfcError::None;
};

/** One data packet's trip over an EIB ring. */
struct EibRecord
{
    Tick requested;
    Tick granted;
    Tick delivered;
    unsigned chip;
    unsigned ring;
    unsigned srcRamp;
    unsigned dstRamp;
    std::uint32_t bytes;
};

class Recorder
{
  public:
    void
    dma(const DmaRecord &r)
    {
        dma_.push_back(r);
    }

    void
    eib(const EibRecord &r)
    {
        eib_.push_back(r);
    }

    const std::vector<DmaRecord> &dmaRecords() const { return dma_; }
    const std::vector<EibRecord> &eibRecords() const { return eib_; }

    void
    clear()
    {
        dma_.clear();
        eib_.clear();
    }

    /** CSV with a header row; one line per DMA command. */
    std::string dmaCsv() const;

    /** CSV with a header row; one line per EIB packet. */
    std::string eibCsv() const;

    /**
     * ASCII Gantt chart of the DMA records: one lane per SPE, time
     * bucketed into @p width columns.  '.' = command in queue,
     * 'G'/'P' = GET/PUT in flight, ' ' = idle.
     */
    std::string renderDmaTimeline(int width = 72) const;

    /**
     * Paraver-style trace (.prv) of the DMA records — the trace format
     * of the authors' own BSC tooling.  One application, one task per
     * SPE; state records (type 1) span each command's in-flight window
     * with the state value 1 for GET and 2 for PUT.  @p nsPerTick
     * converts ticks to the nanosecond timebase Paraver expects.
     */
    std::string paraverExport(double nsPerTick) const;

  private:
    std::vector<DmaRecord> dma_;
    std::vector<EibRecord> eib_;
};

} // namespace cellbw::trace

#endif // CELLBW_TRACE_RECORDER_HH
