#include "spe/local_store.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "util/align.hh"

namespace cellbw::spe
{

LocalStore::LocalStore(std::string name, sim::EventQueue &eq,
                       const LocalStoreParams &params)
    : sim::SimObject(std::move(name), eq), params_(params),
      data_(params.sizeBytes, 0)
{
    if (params_.bytesPerCycle == 0)
        sim::fatal("%s: LS port width must be positive",
                   this->name().c_str());
}

void
LocalStore::checkRange(LsAddr lsa, std::uint32_t size) const
{
    if (static_cast<std::uint64_t>(lsa) + size > params_.sizeBytes) {
        sim::fatal("%s: LS access [0x%x, +%u) out of the %u-byte store",
                   name().c_str(), lsa, size, params_.sizeBytes);
    }
}

void
LocalStore::write(LsAddr lsa, const void *src, std::uint32_t size)
{
    checkRange(lsa, size);
    std::memcpy(data_.data() + lsa, src, size);
}

void
LocalStore::read(LsAddr lsa, void *dst, std::uint32_t size) const
{
    checkRange(lsa, size);
    std::memcpy(dst, data_.data() + lsa, size);
}

void
LocalStore::fill(LsAddr lsa, std::uint8_t value, std::uint32_t size)
{
    checkRange(lsa, size);
    std::memset(data_.data() + lsa, value, size);
}

std::uint8_t
LocalStore::byteAt(LsAddr lsa) const
{
    checkRange(lsa, 1);
    return data_[lsa];
}

Tick
LocalStore::reservePort(std::uint32_t bytes)
{
    Tick service = util::divCeil(bytes, params_.bytesPerCycle);
    Tick start = std::max(curTick(), portFreeAt_);
    portFreeAt_ = start + service;
    bytesAccessed_ += bytes;
    return portFreeAt_ + params_.accessLatency;
}

} // namespace cellbw::spe
