/**
 * @file
 * SPE Local Store: 256 KB of software-managed memory.
 *
 * The LS has a single port moving 16 bytes per CPU cycle, shared by the
 * SPU's loads/stores and the MFC's DMA traffic (on real hardware the MFC
 * has priority; here the port simply serializes, which is equivalent for
 * sustained-bandwidth purposes).
 */

#ifndef CELLBW_SPE_LOCAL_STORE_HH
#define CELLBW_SPE_LOCAL_STORE_HH

#include <cstdint>
#include <vector>

#include "sim/sim_object.hh"
#include "util/types.hh"

namespace cellbw::spe
{

struct LocalStoreParams
{
    std::uint32_t sizeBytes = 256 * 1024;
    /** Port width: bytes per CPU cycle. */
    std::uint32_t bytesPerCycle = 16;
    /** Fixed access latency in ticks (SLB/array read). */
    Tick accessLatency = 4;
};

class LocalStore : public sim::SimObject
{
  public:
    LocalStore(std::string name, sim::EventQueue &eq,
               const LocalStoreParams &params);

    std::uint32_t size() const { return params_.sizeBytes; }

    /** @name Data access (bounds-checked). */
    /** @{ */
    void write(LsAddr lsa, const void *src, std::uint32_t size);
    void read(LsAddr lsa, void *dst, std::uint32_t size) const;
    void fill(LsAddr lsa, std::uint8_t value, std::uint32_t size);
    std::uint8_t byteAt(LsAddr lsa) const;
    /** @} */

    /**
     * Reserve port time for @p bytes.  @return the tick at which the
     * access completes (port serialization plus array latency).
     */
    Tick reservePort(std::uint32_t bytes);

    /** Earliest tick at which a new port access could start. */
    Tick portFreeAt() const { return portFreeAt_; }

    std::uint64_t bytesAccessed() const { return bytesAccessed_; }

  private:
    void checkRange(LsAddr lsa, std::uint32_t size) const;

    LocalStoreParams params_;
    std::vector<std::uint8_t> data_;
    Tick portFreeAt_ = 0;
    std::uint64_t bytesAccessed_ = 0;
};

} // namespace cellbw::spe

#endif // CELLBW_SPE_LOCAL_STORE_HH
