/**
 * @file
 * One Synergistic Processor Element: SPU + Local Store + MFC +
 * mailboxes, plus its place in the machine.
 *
 * The distinction the paper hinges on: an SPE has a *logical* index
 * (what libspe hands the programmer) and a *physical* ramp position on
 * the EIB (assigned by the kernel, invisible to the programmer).  The
 * Spe object carries both; the CellSystem assigns the mapping per run.
 */

#ifndef CELLBW_SPE_SPE_HH
#define CELLBW_SPE_SPE_HH

#include <memory>

#include "spe/local_store.hh"
#include "spe/mailbox.hh"
#include "spe/mfc.hh"
#include "spe/signal_notify.hh"
#include "spe/spu.hh"

namespace cellbw::spe
{

struct SpeParams
{
    LocalStoreParams ls;
    MfcParams mfc;
    SpuParams spu;
};

class Spe : public sim::SimObject
{
  public:
    Spe(std::string name, sim::EventQueue &eq, const sim::ClockSpec &clock,
        const SpeParams &params, unsigned logicalIndex);

    LocalStore &ls() { return *ls_; }
    Mfc &mfc() { return *mfc_; }
    Spu &spu() { return *spu_; }
    Mailbox &inboundMailbox() { return *inbound_; }
    Mailbox &outboundMailbox() { return *outbound_; }
    SignalNotify &signal1() { return *sig1_; }
    SignalNotify &signal2() { return *sig2_; }

    /** Logical index, 0-7, as seen through libspe. */
    unsigned logicalIndex() const { return logicalIndex_; }

    /** @name Physical placement (set once by the CellSystem). */
    /** @{ */
    void setPhysicalSpe(unsigned phys, unsigned rampPos);
    unsigned physicalSpe() const { return physicalSpe_; }
    unsigned rampPos() const { return rampPos_; }
    /** @} */

    /** A simple bump allocator over the LS for benchmark buffers. */
    LsAddr lsAlloc(std::uint32_t bytes, std::uint32_t align = 128);
    void lsReset() { lsBrk_ = 0; }

  private:
    unsigned logicalIndex_;
    unsigned physicalSpe_ = ~0u;
    unsigned rampPos_ = ~0u;
    std::uint32_t lsBrk_ = 0;

    std::unique_ptr<LocalStore> ls_;
    std::unique_ptr<Mfc> mfc_;
    std::unique_ptr<Spu> spu_;
    std::unique_ptr<Mailbox> inbound_;
    std::unique_ptr<Mailbox> outbound_;
    std::unique_ptr<SignalNotify> sig1_;
    std::unique_ptr<SignalNotify> sig2_;
};

} // namespace cellbw::spe

#endif // CELLBW_SPE_SPE_HH
