/**
 * @file
 * Types shared between the MFC and the system-level DMA router.
 *
 * The MFC splits DMA commands into EIB-sized lines (<= 128 bytes) and
 * hands them to a LineHandler installed by the cell layer, which routes
 * each line over the EIB to main memory or a remote local store.  This
 * keeps libcellbw_spe free of a dependency on the interconnect and
 * memory models.
 */

#ifndef CELLBW_SPE_DMA_TYPES_HH
#define CELLBW_SPE_DMA_TYPES_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "util/inline_function.hh"
#include "util/types.hh"

namespace cellbw::spe
{

/** Direction of a DMA command, from the issuing SPE's point of view. */
enum class DmaDir
{
    Get,    ///< effective address -> local store
    Put,    ///< local store -> effective address
};

/**
 * Why an MFC command failed.  Recoverable faults surface as per-tag
 * status the program polls (Mfc::tagFaultMask / takeFaults) instead of
 * killing the process, mirroring the MFC_FIR/error-status registers of
 * real hardware.
 *
 * Validation errors are permanent: re-issuing the same command fails
 * the same way.  Dropped/Corrupted are transient injected faults; a
 * retry of the identical command may succeed.
 */
enum class MfcError : std::uint8_t
{
    None = 0,
    InvalidSize,    ///< size not 1/2/4/8 or multiple of 16, or > 16 KB
    Misaligned,     ///< LS/EA alignment rules violated
    LsOverrun,      ///< transfer runs past the end of the local store
    BadList,        ///< list with 0 or > maxListElements elements
    Dropped,        ///< injected: command lost, no data moved
    Corrupted,      ///< injected: data moved but damaged in flight
};

constexpr const char *
toString(MfcError e)
{
    switch (e) {
      case MfcError::None:
        return "none";
      case MfcError::InvalidSize:
        return "invalid-size";
      case MfcError::Misaligned:
        return "misaligned";
      case MfcError::LsOverrun:
        return "ls-overrun";
      case MfcError::BadList:
        return "bad-list";
      case MfcError::Dropped:
        return "dropped";
      case MfcError::Corrupted:
        return "corrupted";
    }
    return "?";
}

/** True for faults where re-issuing the same command can succeed. */
constexpr bool
isTransient(MfcError e)
{
    return e == MfcError::Dropped || e == MfcError::Corrupted;
}

/** One element of a DMA list (mfc_getl / mfc_putl). */
struct ListElement
{
    EffAddr ea;
    std::uint32_t size;
};

/**
 * Segment list of a DMA command.  The overwhelmingly common case — a
 * plain get/put — is a single (ea, size) pair, stored inline so that
 * enqueueing a command allocates nothing.  List commands (getl/putl)
 * fall back to vector storage.  Elements are stable for the list's
 * lifetime, so routing code can hold (pointer, count) views into it.
 */
class SegList
{
  public:
    SegList() = default;

    /** Single-element list for a plain get/put: no allocation. */
    SegList(EffAddr ea, std::uint32_t size)
        : single_{ea, size}, count_(1)
    {
    }

    /** Multi-element list for getl/putl. */
    SegList(std::vector<ListElement> elems)
        : list_(std::move(elems)), count_(list_.size())
    {
    }

    const ListElement *
    data() const
    {
        return list_.empty() ? &single_ : list_.data();
    }

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    const ListElement &operator[](std::size_t i) const { return data()[i]; }
    const ListElement *begin() const { return data(); }
    const ListElement *end() const { return data() + count_; }

    /** Copy out to a vector (cold paths only: fault records). */
    std::vector<ListElement> toVector() const { return {begin(), end()}; }

  private:
    ListElement single_{0, 0};
    std::vector<ListElement> list_;
    std::size_t count_ = 0;
};

/** Maximum transfer size of one DMA command or list element. */
constexpr std::uint32_t maxDmaSize = 16 * 1024;

/** Maximum number of elements in one DMA list command. */
constexpr std::uint32_t maxListElements = 2048;

/** EIB packet payload granularity: one cache line. */
constexpr std::uint32_t lineBytes = 128;

/** Number of MFC tag groups. */
constexpr unsigned numTags = 32;

/**
 * Base effective address of the memory-mapped local-store apertures.
 * Lines targeting EAs at or above this are LS-to-LS traffic and do not
 * consume memory tokens in the MFC's resource allocator.
 */
constexpr EffAddr lsApertureBase = 1ull << 40;

/** A single line-sized piece of a DMA command, ready for routing. */
struct LineRequest
{
    unsigned speIndex;          ///< logical index of the issuing SPE
    DmaDir dir;
    EffAddr ea;
    LsAddr lsa;
    std::uint32_t bytes;
    /** Injected fault: the router damages this line's payload. */
    bool corrupt = false;
    /** Invoked when the line has landed.  Inline storage: completing a
     *  line back to the MFC performs no allocation. */
    util::InlineFunction<void()> done;
};

using LineHandler = std::function<void(LineRequest &&)>;

} // namespace cellbw::spe

#endif // CELLBW_SPE_DMA_TYPES_HH
