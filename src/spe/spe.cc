#include "spe/spe.hh"

#include "sim/logging.hh"
#include "util/align.hh"
#include "util/strings.hh"

namespace cellbw::spe
{

Spe::Spe(std::string name, sim::EventQueue &eq, const sim::ClockSpec &clock,
         const SpeParams &params, unsigned logicalIndex)
    : sim::SimObject(std::move(name), eq), logicalIndex_(logicalIndex)
{
    ls_ = std::make_unique<LocalStore>(this->name() + ".ls", eq, params.ls);
    mfc_ = std::make_unique<Mfc>(this->name() + ".mfc", eq, clock,
                                 params.mfc, logicalIndex);
    spu_ = std::make_unique<Spu>(this->name() + ".spu", eq, clock,
                                 params.spu, *ls_);
    inbound_ = std::make_unique<Mailbox>(this->name() + ".mbox_in", eq, 4);
    outbound_ = std::make_unique<Mailbox>(this->name() + ".mbox_out", eq, 1);
    // Sig_Notify_1 defaults to OR mode (many-to-one barrier style),
    // Sig_Notify_2 to overwrite, matching common SDK configuration.
    sig1_ = std::make_unique<SignalNotify>(this->name() + ".sig1", eq,
                                           SignalNotify::Mode::Or);
    sig2_ = std::make_unique<SignalNotify>(this->name() + ".sig2", eq,
                                           SignalNotify::Mode::Overwrite);
}

void
Spe::setPhysicalSpe(unsigned phys, unsigned rampPos)
{
    physicalSpe_ = phys;
    rampPos_ = rampPos;
}

LsAddr
Spe::lsAlloc(std::uint32_t bytes, std::uint32_t align)
{
    auto base = static_cast<std::uint32_t>(util::roundUp(lsBrk_, align));
    if (static_cast<std::uint64_t>(base) + bytes > ls_->size()) {
        sim::fatal("%s: LS allocator out of space (%s requested, %u used)",
                   name().c_str(), util::bytesToString(bytes).c_str(),
                   lsBrk_);
    }
    lsBrk_ = base + bytes;
    return base;
}

} // namespace cellbw::spe
