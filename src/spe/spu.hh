/**
 * @file
 * Synergistic Processor Unit: the SPE's in-order SIMD core.
 *
 * For the bandwidth study only the SPU's load/store behaviour matters.
 * The SPU ISA is SIMD-only: *every* load and store moves a full 16-byte
 * quadword; accessing a smaller element still transfers a quadword and
 * pays extra rotate/mask instructions (Brokenshire's "25 tips"), and a
 * sub-quadword store is a read-modify-write.  That is why the paper
 * insists vectorization is "especially critical in the SPEs".
 */

#ifndef CELLBW_SPE_SPU_HH
#define CELLBW_SPE_SPU_HH

#include <cstdint>

#include "sim/clock.hh"
#include "sim/sim_object.hh"
#include "sim/task.hh"
#include "spe/local_store.hh"

namespace cellbw::spe
{

struct SpuParams
{
    /** Issue cycles for a full-quadword load / store. */
    unsigned load16Cycles = 1;
    unsigned store16Cycles = 1;

    /** Extra cycles to extract a sub-quadword element after a load. */
    unsigned subwordExtractCycles = 1;

    /** Extra cycles for the read-modify-write of a sub-quadword store. */
    unsigned subwordInsertCycles = 3;

    /** Simulation batch: LS port is reserved in chunks this big. */
    std::uint32_t batchBytes = 4096;
};

class Spu : public sim::SimObject
{
  public:
    Spu(std::string name, sim::EventQueue &eq, const sim::ClockSpec &clock,
        const SpuParams &params, LocalStore &ls);

    /** Burn @p n SPU cycles (compute). */
    sim::Delay cycles(Tick n) { return sim::Delay{eventQueue(), n}; }

    /** @name Streaming microbenchmark kernels over the local store.
     *  Each returns an awaitable coroutine that consumes simulated time
     *  according to the issue-cost model and LS port occupancy.
     *  @p elemSize must be 1, 2, 4, 8 or 16. */
    /** @{ */
    sim::Task streamLoad(LsAddr lsa, std::uint32_t bytes,
                         unsigned elemSize);
    sim::Task streamStore(LsAddr lsa, std::uint32_t bytes,
                          unsigned elemSize);
    sim::Task streamCopy(LsAddr src, LsAddr dst, std::uint32_t bytes,
                         unsigned elemSize);
    /** @} */

    /**
     * SPE timebase register value (the paper measures SPE-side time
     * with the time-base decrementer [2]).
     */
    std::uint64_t timebase() const
    {
        return clock_.decrementerTicks(curTick());
    }

    /** Cycles this SPU spent executing streaming kernels. */
    Tick busyTicks() const { return busyTicks_; }

  private:
    /** Validate the element size and return per-element issue cycles. */
    unsigned elemCost(unsigned elemSize, bool isStore) const;

    /** Shared engine behind the three stream kernels. */
    sim::Task streamKernel(LsAddr src, LsAddr dst, std::uint32_t bytes,
                           unsigned elemSize, bool doLoad, bool doStore);

    sim::ClockSpec clock_;
    SpuParams params_;
    LocalStore &ls_;
    Tick busyTicks_ = 0;
};

} // namespace cellbw::spe

#endif // CELLBW_SPE_SPU_HH
