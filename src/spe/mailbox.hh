/**
 * @file
 * SPE mailboxes: 32-bit message channels between the SPU and the PPE
 * (or other SPEs via the MFC's memory-mapped problem-state registers).
 *
 * The CBEA gives each SPE a 4-entry inbound mailbox and 1-entry outbound
 * and outbound-interrupt mailboxes.  Reads from an empty mailbox and
 * writes to a full one stall, which the simulator expresses as
 * awaitables.  Single producer and single consumer per mailbox, as on
 * the real machine's intended use.
 */

#ifndef CELLBW_SPE_MAILBOX_HH
#define CELLBW_SPE_MAILBOX_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/logging.hh"
#include "sim/sim_object.hh"

namespace cellbw::spe
{

class Mailbox : public sim::SimObject
{
  public:
    Mailbox(std::string name, sim::EventQueue &eq, unsigned capacity);

    unsigned capacity() const { return capacity_; }
    unsigned count() const { return static_cast<unsigned>(fifo_.size()); }
    bool empty() const { return fifo_.empty(); }
    bool full() const { return fifo_.size() >= capacity_; }

    /** Non-blocking write; @return false when the mailbox is full. */
    bool tryWrite(std::uint32_t value);

    /** Non-blocking read; @return false when the mailbox is empty. */
    bool tryRead(std::uint32_t &value);

    /** Awaitable write: stalls while full. */
    struct WriteAwaiter
    {
        Mailbox &mb;
        std::uint32_t value;

        bool
        await_ready() const
        {
            return !mb.full();
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            mb.writeWaiters_.push_back(h);
        }

        void
        await_resume()
        {
            // Single producer: the slot that woke us is still free.
            if (!mb.tryWrite(value))
                sim::panic("%s: lost mailbox slot (multiple producers?)",
                           mb.name().c_str());
        }
    };

    WriteAwaiter write(std::uint32_t value)
    {
        return WriteAwaiter{*this, value};
    }

    /** Awaitable read: stalls while empty; yields the value. */
    struct ReadAwaiter
    {
        Mailbox &mb;

        bool await_ready() const { return !mb.empty(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            mb.readWaiters_.push_back(h);
        }

        std::uint32_t
        await_resume()
        {
            std::uint32_t v = 0;
            if (!mb.tryRead(v))
                sim::panic("%s: empty on resume (multiple consumers?)",
                           mb.name().c_str());
            return v;
        }
    };

    ReadAwaiter read() { return ReadAwaiter{*this}; }

    std::uint64_t messagesWritten() const { return written_; }

  private:
    friend struct WriteAwaiter;
    friend struct ReadAwaiter;

    void wakeOne(std::vector<std::coroutine_handle<>> &waiters);

    unsigned capacity_;
    std::deque<std::uint32_t> fifo_;
    std::vector<std::coroutine_handle<>> readWaiters_;
    std::vector<std::coroutine_handle<>> writeWaiters_;
    std::uint64_t written_ = 0;
};

} // namespace cellbw::spe

#endif // CELLBW_SPE_MAILBOX_HH
