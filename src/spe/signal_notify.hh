/**
 * @file
 * SPU signal-notification registers (CBEA SPU_Sig_Notify_1/2).
 *
 * A 32-bit register other processors write through the problem-state
 * area.  In OR mode, concurrent writers accumulate bits (the classic
 * many-to-one completion barrier); in overwrite mode the last write
 * wins.  The SPU read is destructive and stalls while the register is
 * empty.
 */

#ifndef CELLBW_SPE_SIGNAL_NOTIFY_HH
#define CELLBW_SPE_SIGNAL_NOTIFY_HH

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/sim_object.hh"

namespace cellbw::spe
{

class SignalNotify : public sim::SimObject
{
  public:
    enum class Mode { Or, Overwrite };

    SignalNotify(std::string name, sim::EventQueue &eq, Mode mode)
        : sim::SimObject(std::move(name), eq), mode_(mode)
    {
    }

    Mode mode() const { return mode_; }
    bool pending() const { return hasValue_; }
    std::uint32_t peek() const { return value_; }

    /** Writer side: deliver @p bits (ORed or overwriting per mode). */
    void
    signal(std::uint32_t bits)
    {
        if (mode_ == Mode::Or)
            value_ |= bits;
        else
            value_ = bits;
        hasValue_ = true;
        ++writes_;
        wakeAll();
    }

    /** Non-blocking destructive read. @return false when empty. */
    bool
    tryRead(std::uint32_t &out)
    {
        if (!hasValue_)
            return false;
        out = value_;
        value_ = 0;
        hasValue_ = false;
        return true;
    }

    /** Awaitable destructive read: stalls until a signal arrives. */
    struct ReadAwaiter
    {
        SignalNotify &sig;

        bool await_ready() const { return sig.pending(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sig.waiters_.push_back(h);
        }

        std::uint32_t
        await_resume()
        {
            std::uint32_t v = 0;
            if (!sig.tryRead(v))
                sim::panic("%s: empty on resume (multiple readers?)",
                           sig.name().c_str());
            return v;
        }
    };

    ReadAwaiter read() { return ReadAwaiter{*this}; }

    std::uint64_t writeCount() const { return writes_; }

  private:
    void
    wakeAll()
    {
        if (waiters_.empty())
            return;
        auto batch = std::move(waiters_);
        waiters_.clear();
        eventQueue().schedule(0, [batch = std::move(batch)] {
            for (auto h : batch)
                h.resume();
        });
    }

    Mode mode_;
    std::uint32_t value_ = 0;
    bool hasValue_ = false;
    std::uint64_t writes_ = 0;
    std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace cellbw::spe

#endif // CELLBW_SPE_SIGNAL_NOTIFY_HH
