#include "spe/spu.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace cellbw::spe
{

Spu::Spu(std::string name, sim::EventQueue &eq, const sim::ClockSpec &clock,
         const SpuParams &params, LocalStore &ls)
    : sim::SimObject(std::move(name), eq), clock_(clock), params_(params),
      ls_(ls)
{
}

unsigned
Spu::elemCost(unsigned elemSize, bool isStore) const
{
    if (elemSize != 1 && elemSize != 2 && elemSize != 4 && elemSize != 8 &&
        elemSize != 16) {
        sim::fatal("%s: element size %u not in {1,2,4,8,16}",
                   name().c_str(), elemSize);
    }
    if (isStore) {
        unsigned c = params_.store16Cycles;
        if (elemSize < 16)
            c += params_.subwordInsertCycles;
        return c;
    }
    unsigned c = params_.load16Cycles;
    if (elemSize < 16)
        c += params_.subwordExtractCycles;
    return c;
}

sim::Task
Spu::streamKernel(LsAddr src, LsAddr dst, std::uint32_t bytes,
                  unsigned elemSize, bool doLoad, bool doStore)
{
    unsigned cost = 0;
    if (doLoad)
        cost += elemCost(elemSize, false);
    if (doStore)
        cost += elemCost(elemSize, true);

    Tick t0 = curTick();
    std::uint32_t off = 0;
    while (off < bytes) {
        std::uint32_t b = std::min(params_.batchBytes, bytes - off);
        std::uint64_t elems = std::max<std::uint64_t>(1, b / elemSize);

        // Every element touches a full quadword on the LS port; a
        // sub-quadword store additionally reads the line it merges into.
        std::uint64_t traffic = 0;
        if (doLoad)
            traffic += elems * 16;
        if (doStore)
            traffic += elems * (elemSize < 16 ? 32 : 16);

        Tick issue_done = curTick() + elems * cost;
        Tick port_done =
            ls_.reservePort(static_cast<std::uint32_t>(traffic));
        co_await sim::WaitUntil{eventQueue(),
                                std::max(issue_done, port_done)};
        // Move the bytes (only meaningful for copy).
        if (doLoad && doStore && src != dst) {
            std::vector<std::uint8_t> buf(b);
            ls_.read(src + off, buf.data(), b);
            ls_.write(dst + off, buf.data(), b);
        }
        off += b;
    }
    busyTicks_ += curTick() - t0;
}

sim::Task
Spu::streamLoad(LsAddr lsa, std::uint32_t bytes, unsigned elemSize)
{
    return streamKernel(lsa, lsa, bytes, elemSize, true, false);
}

sim::Task
Spu::streamStore(LsAddr lsa, std::uint32_t bytes, unsigned elemSize)
{
    return streamKernel(lsa, lsa, bytes, elemSize, false, true);
}

sim::Task
Spu::streamCopy(LsAddr src, LsAddr dst, std::uint32_t bytes,
                unsigned elemSize)
{
    return streamKernel(src, dst, bytes, elemSize, true, true);
}

} // namespace cellbw::spe
