#include "spe/mailbox.hh"

namespace cellbw::spe
{

Mailbox::Mailbox(std::string name, sim::EventQueue &eq, unsigned capacity)
    : sim::SimObject(std::move(name), eq), capacity_(capacity)
{
    if (capacity_ == 0)
        sim::fatal("%s: mailbox capacity must be positive",
                   this->name().c_str());
}

void
Mailbox::wakeOne(std::vector<std::coroutine_handle<>> &waiters)
{
    if (waiters.empty())
        return;
    auto h = waiters.front();
    waiters.erase(waiters.begin());
    eventQueue().schedule(0, [h] { h.resume(); });
}

bool
Mailbox::tryWrite(std::uint32_t value)
{
    if (full())
        return false;
    fifo_.push_back(value);
    ++written_;
    wakeOne(readWaiters_);
    return true;
}

bool
Mailbox::tryRead(std::uint32_t &value)
{
    if (empty())
        return false;
    value = fifo_.front();
    fifo_.pop_front();
    wakeOne(writeWaiters_);
    return true;
}

} // namespace cellbw::spe
