#include "spe/mfc.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "stats/metrics.hh"
#include "util/align.hh"

namespace cellbw::spe
{

Mfc::Mfc(std::string name, sim::EventQueue &eq, const sim::ClockSpec &clock,
         const MfcParams &params, unsigned speIndex)
    : sim::SimObject(std::move(name), eq), clock_(clock), params_(params),
      speIndex_(speIndex),
      faultRng_(params.faults.seed + 0x9E3779B97F4A7C15ull * speIndex),
      faultsEnabled_(params.faults.enabled())
{
    if (params_.queueDepth == 0 || params_.memoryTokens == 0 ||
        params_.lsLines == 0) {
        sim::fatal("%s: queue depth and line windows must be positive",
                   this->name().c_str());
    }
    const auto &f = params_.faults;
    if (f.dropRate < 0.0 || f.corruptRate < 0.0 || f.delayRate < 0.0 ||
        f.dropRate + f.corruptRate + f.delayRate > 1.0) {
        sim::fatal("%s: fault rates must be >= 0 and sum to <= 1",
                   this->name().c_str());
    }
    // Fixed command arena: both queues can be full at once, so size the
    // slot store to the combined depth.  The vector never grows again;
    // Command pointers stay valid for a command's lifetime.
    const std::size_t slots = params_.queueDepth + params_.proxyQueueDepth;
    slotStore_.resize(slots);
    freeSlots_.reserve(slots);
    for (std::size_t i = slots; i-- > 0;)
        freeSlots_.push_back(&slotStore_[i]);
    queue_.reserve(slots);
    active_.resize(slots, nullptr);
}

std::uint32_t
Mfc::tagsPendingMask() const
{
    std::uint32_t mask = 0;
    for (unsigned t = 0; t < numTags; ++t)
        if (tagPending_[t])
            mask |= 1u << t;
    return mask;
}

MfcError
Mfc::validate(LsAddr lsa, const SegList &segs, bool isList) const
{
    if (isList && (segs.empty() || segs.size() > maxListElements))
        return MfcError::BadList;
    LsAddr cursor = lsa;
    for (const auto &seg : segs) {
        if (isList)
            cursor = static_cast<LsAddr>(util::roundUp(cursor, 16));
        if (!util::isValidDmaSize(seg.size))
            return MfcError::InvalidSize;
        if (!util::isValidDmaAlignment(cursor, seg.ea, seg.size))
            return MfcError::Misaligned;
        cursor += seg.size;
        if (cursor > params_.lsSize)
            return MfcError::LsOverrun;
    }
    return MfcError::None;
}

void
Mfc::recordFault(DmaDir dir, bool isList, bool proxy, LsAddr lsa,
                 std::vector<ListElement> segs, unsigned tag,
                 MfcError code)
{
    sim::debugLog("%s: MFC fault on tag %u: %s", name().c_str(), tag,
                  toString(code));
    faultLog_.push_back({tag, dir, isList, proxy, lsa, std::move(segs),
                         code, curTick()});
    ++commandsFaulted_;
}

bool
Mfc::enqueue(DmaDir dir, bool isList, LsAddr lsa, SegList segs,
             unsigned tag, Order order, bool proxy)
{
    if (tag >= numTags)
        sim::fatal("%s: DMA tag %u out of range", name().c_str(), tag);
    if (!proxy && spuCount_ >= params_.queueDepth) {
        sim::fatal("%s: MFC command queue overflow; "
                   "co_await queueSpace() before issuing",
                   name().c_str());
    }
    if (proxy && proxyCount_ >= params_.proxyQueueDepth) {
        sim::fatal("%s: MFC proxy queue overflow; "
                   "co_await proxyQueueSpace() before issuing",
                   name().c_str());
    }
    if (!handler_)
        sim::fatal("%s: no DMA line handler installed", name().c_str());
    if (MfcError err = validate(lsa, segs, isList); err != MfcError::None) {
        // Recoverable rejection: nothing enters the queue, the error is
        // latched on the tag group for the program to poll.
        recordFault(dir, isList, proxy, lsa, segs.toVector(), tag, err);
        return false;
    }

    // Take a slot from the arena.  The queue-full checks above bound
    // live commands below the combined depth, so a slot is always free.
    Command *c = freeSlots_.back();
    freeSlots_.pop_back();
    *c = Command{};
    c->dir = dir;
    c->tag = tag;
    c->isList = isList;
    c->isProxy = proxy;
    c->order = order;
    c->lsaStart = lsa;
    c->lsaCursor = lsa;
    c->enqueuedAt = curTick();
    for (const auto &seg : segs)
        c->totalBytes += seg.size;
    c->segs = std::move(segs);
    if (faultsEnabled_) {
        const auto &f = params_.faults;
        double u = faultRng_.uniformReal();
        if (u < f.dropRate) {
            c->injected = MfcError::Dropped;
            ++dropsInjected_;
        } else if (u < f.dropRate + f.corruptRate) {
            c->injected = MfcError::Corrupted;
            c->corruptPending = true;
            ++corruptionsInjected_;
        } else if (u < f.dropRate + f.corruptRate + f.delayRate) {
            c->extraDelay = f.delayTicks;
            ++delaysInjected_;
        }
    }
    queue_.push_back(c);
    if (proxy)
        ++proxyCount_;
    else
        ++spuCount_;
    // Queue-depth histogram: occupancy as seen by each accepted
    // command (both queues share the issue engine, so the combined
    // depth is what governs issue waiting).
    std::size_t depth = spuCount_ + proxyCount_;
    if (depth >= depthHist_.size())
        depthHist_.resize(depth + 1, 0);
    ++depthHist_[depth];
    ++tagPending_[tag];
    scheduleIssue();
    return true;
}

bool
Mfc::proxyGet(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag,
              Order order)
{
    return enqueue(DmaDir::Get, false, lsa, SegList(ea, size), tag,
                   order, true);
}

bool
Mfc::proxyPut(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag,
              Order order)
{
    return enqueue(DmaDir::Put, false, lsa, SegList(ea, size), tag,
                   order, true);
}

bool
Mfc::get(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag,
         Order order)
{
    return enqueue(DmaDir::Get, false, lsa, SegList(ea, size), tag,
                   order);
}

bool
Mfc::put(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag,
         Order order)
{
    return enqueue(DmaDir::Put, false, lsa, SegList(ea, size), tag,
                   order);
}

bool
Mfc::getList(LsAddr lsa, std::vector<ListElement> list, unsigned tag,
             Order order)
{
    return enqueue(DmaDir::Get, true, lsa, SegList(std::move(list)), tag,
                   order);
}

bool
Mfc::putList(LsAddr lsa, std::vector<ListElement> list, unsigned tag,
             Order order)
{
    return enqueue(DmaDir::Put, true, lsa, SegList(std::move(list)), tag,
                   order);
}

std::uint32_t
Mfc::tagFaultMask() const
{
    std::uint32_t mask = 0;
    for (const auto &f : faultLog_)
        mask |= 1u << f.tag;
    return mask;
}

unsigned
Mfc::tagFaultCount(unsigned tag) const
{
    unsigned n = 0;
    for (const auto &f : faultLog_)
        if (f.tag == tag)
            ++n;
    return n;
}

std::vector<Mfc::FaultRecord>
Mfc::takeFaults(unsigned tag)
{
    std::vector<FaultRecord> out;
    auto it = faultLog_.begin();
    while (it != faultLog_.end()) {
        if (it->tag == tag) {
            out.push_back(std::move(*it));
            it = faultLog_.erase(it);
        } else {
            ++it;
        }
    }
    return out;
}

void
Mfc::clearFaults()
{
    faultLog_.clear();
}

bool
Mfc::issuable(const Command &c) const
{
    for (const Command *earlier : queue_) {
        if (earlier == &c)
            break;
        if (earlier->tag != c.tag || earlier->done)
            continue;
        // A fenced or barriered command waits for every earlier
        // incomplete command of its tag group.
        if (c.order != Order::None)
            return false;
        // Any command waits for an earlier incomplete barrier of its
        // tag group.
        if (earlier->order == Order::Barrier)
            return false;
    }
    return true;
}

void
Mfc::scheduleIssue()
{
    if (issueInProgress_)
        return;
    // First command that has not passed the issue engine yet and is
    // not held back by tag-group fences/barriers.  Commands of other
    // tag groups may overtake a blocked one, as on real hardware.
    Command *next = nullptr;
    for (Command *c : queue_) {
        if (!c->issued && issuable(*c)) {
            next = c;
            break;
        }
    }
    if (!next)
        return;

    issueInProgress_ = true;
    Tick occ_bus = params_.elemOverheadBus;
    if (next->isList)
        occ_bus += params_.listElemOverheadBus * next->segs.size();
    Tick start = std::max(curTick(), issueFreeAt_);
    issueFreeAt_ = start + clock_.busCycles(occ_bus);
    sim::TagScope tag(eventQueue(), sim::EventTag::Mfc);
    eventQueue().scheduleAt(issueFreeAt_, [this, next] {
        finishIssue(next);
    });
}

void
Mfc::finishIssue(Command *c)
{
    c->issued = true;
    c->issuedAt = curTick();
    issueInProgress_ = false;
    if (c->injected == MfcError::Dropped) {
        // The command occupied the issue engine but its lines are lost:
        // it completes immediately with error status and no data moved.
        c->allLinesIssued = true;
        commandComplete(c);
    } else {
        activePushBack(c);
    }
    scheduleIssue();
    tryIssueLines();
}

void
Mfc::tryIssueLines()
{
    // Round-robin over active commands, skipping those whose next line
    // has no token (memory) or window slot (LS) available, so LS
    // traffic is never head-of-line-blocked behind memory traffic or
    // vice versa.
    std::size_t attempts = activeCount_;
    while (attempts-- > 0 && activeCount_ > 0) {
        Command *c = active_[activeHead_];

        const ListElement &seg = c->segs[c->nextSeg];
        bool is_ls = seg.ea >= lsApertureBase;
        if (is_ls ? (lsLinesInFlight_ >= params_.lsLines)
                  : (memLinesInFlight_ >= params_.memoryTokens)) {
            // Rotate and try another command.
            activePopFront();
            activePushBack(c);
            continue;
        }
        activePopFront();

        if (c->isList && c->segOffset == 0) {
            c->lsaCursor =
                static_cast<LsAddr>(util::roundUp(c->lsaCursor, 16));
        }
        std::uint32_t chunk =
            std::min(lineBytes, seg.size - c->segOffset);

        LineRequest req;
        req.speIndex = speIndex_;
        req.dir = c->dir;
        req.ea = seg.ea + c->segOffset;
        req.lsa = c->lsaCursor;
        req.bytes = chunk;
        if (c->corruptPending) {
            // An injected corruption damages one line of the command.
            req.corrupt = true;
            c->corruptPending = false;
        }
        req.done = [this, c, chunk, is_ls] { lineDone(c, chunk, is_ls); };

        c->segOffset += chunk;
        c->lsaCursor += chunk;
        if (c->segOffset == seg.size) {
            ++c->nextSeg;
            c->segOffset = 0;
        }
        ++c->linesOutstanding;
        if (is_ls)
            ++lsLinesInFlight_;
        else
            ++memLinesInFlight_;
        ++linesSent_;

        if (c->nextSeg < c->segs.size()) {
            activePushBack(c);          // round-robin across commands
            ++attempts;                 // progress was made; keep going
        } else {
            c->allLinesIssued = true;
        }

        handler_(std::move(req));
    }
}

void
Mfc::lineDone(Command *c, std::uint32_t bytes, bool isLs)
{
    if (isLs)
        --lsLinesInFlight_;
    else
        --memLinesInFlight_;
    --c->linesOutstanding;
    bytesTransferred_ += bytes;
    if (c->allLinesIssued && c->linesOutstanding == 0)
        commandComplete(c);
    tryIssueLines();
}

void
Mfc::commandComplete(Command *c)
{
    if (c->extraDelay > 0) {
        // Injected delay: the transfer is done but completion (and with
        // it the tag status update) arrives late.
        Tick d = c->extraDelay;
        c->extraDelay = 0;
        sim::TagScope tag(eventQueue(), sim::EventTag::Mfc);
        eventQueue().schedule(d, [this, c] { finalizeCompletion(c); });
        return;
    }
    finalizeCompletion(c);
}

void
Mfc::finalizeCompletion(Command *c)
{
    c->done = true;
    if (c->injected != MfcError::None) {
        recordFault(c->dir, c->isList, c->isProxy, c->lsaStart,
                    c->segs.toVector(), c->tag, c->injected);
    }
    if (recorder_) {
        recorder_->dma({c->enqueuedAt, c->issuedAt, curTick(),
                        speIndex_, c->dir, c->tag, c->totalBytes,
                        c->isList, c->isProxy, c->injected});
    }
    if (completionHook_) {
        completionHook_({speIndex_, c->tag, c->dir, c->isList,
                         c->isProxy, c->lsaStart, c->segs.data(),
                         c->segs.size(), c->injected});
    }
    if (tagPending_[c->tag] == 0)
        sim::panic("%s: tag %u underflow", name().c_str(), c->tag);
    --tagPending_[c->tag];
    ++commandsCompleted_;
    if (c->isProxy)
        --proxyCount_;
    else
        --spuCount_;
    std::erase(queue_, c);
    // Recycle the arena slot; drop any list storage with it.  Nothing
    // references the command past this point: its line events have all
    // fired and a delayed completion is itself this function.
    c->segs = SegList();
    freeSlots_.push_back(c);
    wakeWaiters();
    // A completion may unblock a fenced/barriered command.
    scheduleIssue();
}

void
Mfc::wakeWaiters()
{
    // One queue slot opened: reserve it for one waiting producer so no
    // concurrently-running stream can steal it before the resume fires.
    if (!spaceWaiters_.empty() &&
        spuCount_ + reservedSlots_ < params_.queueDepth) {
        ++reservedSlots_;
        auto h = spaceWaiters_.front();
        spaceWaiters_.erase(spaceWaiters_.begin());
        eventQueue().schedule(0, [h] { h.resume(); });
    }
    if (!proxyWaiters_.empty() &&
        proxyCount_ + reservedProxySlots_ < params_.proxyQueueDepth) {
        ++reservedProxySlots_;
        auto h = proxyWaiters_.front();
        proxyWaiters_.erase(proxyWaiters_.begin());
        eventQueue().schedule(0, [h] { h.resume(); });
    }
    // Wake every tag waiter whose mask is now clear.
    std::uint32_t pending = tagsPendingMask();
    for (auto it = tagWaiters_.begin(); it != tagWaiters_.end();) {
        if ((it->mask & pending) == 0) {
            auto h = it->h;
            eventQueue().schedule(0, [h] { h.resume(); });
            it = tagWaiters_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Mfc::registerMetrics(stats::MetricsRegistry &reg,
                     const std::string &prefix) const
{
    reg.counter(prefix + ".commands").add(commandsCompleted_);
    reg.counter(prefix + ".bytes").add(bytesTransferred_);
    reg.counter(prefix + ".lines").add(linesSent_);
    reg.counter(prefix + ".faults").add(commandsFaulted_);
    reg.counter(prefix + ".drops_injected").add(dropsInjected_);
    reg.counter(prefix + ".corruptions_injected")
        .add(corruptionsInjected_);
    reg.counter(prefix + ".delays_injected").add(delaysInjected_);
    auto &hist = reg.histogram(prefix + ".queue_depth",
                               params_.queueDepth +
                                   params_.proxyQueueDepth);
    for (std::size_t d = 0; d < depthHist_.size(); ++d)
        hist.addBucket(d, depthHist_[d]);
}

} // namespace cellbw::spe
