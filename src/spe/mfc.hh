/**
 * @file
 * Memory Flow Controller: the SPE's DMA engine.
 *
 * Programs interact with the MFC the way Cell SDK code does:
 *
 * @code
 *   co_await mfc.queueSpace();          // mfc_get stalls when queue full
 *   mfc.get(lsa, ea, 16_KiB, tag);      // enqueue DMA-elem command
 *   co_await mfc.tagWait(1u << tag);    // mfc_write_tag_mask + read status
 * @endcode
 *
 * Structure (and the measured effects it produces):
 *  - a 16-entry command queue (entries are held until completion);
 *  - a serial *issue engine* that spends a fixed occupancy per command
 *    (plus a small per-element cost for DMA lists) before the command's
 *    lines can flow.  This is what degrades DMA-elem bandwidth below
 *    1024-byte elements while DMA-list transfers stay flat — the
 *    paper's Figures 10/12/15;
 *  - a *line window* limiting outstanding <=128 B lines on the bus.
 *    The window times the memory round-trip pins single-SPE-to-memory
 *    bandwidth near 10 GB/s regardless of element size — Figure 8;
 *  - lines of issued commands interleave round-robin, so transfers
 *    complete out of order like real MFC transfer-class behaviour.
 */

#ifndef CELLBW_SPE_MFC_HH
#define CELLBW_SPE_MFC_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clock.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "spe/dma_types.hh"
#include "trace/recorder.hh"

namespace cellbw::stats
{
class MetricsRegistry;
}

namespace cellbw::spe
{

/**
 * Injectable fault source: each accepted command independently draws
 * one fate from a seeded per-MFC generator.  All rates zero (the
 * default) means the generator is never consulted, so runs are
 * bit-identical to a build without the fault model.
 */
struct MfcFaultParams
{
    /** P(command is silently lost; completes with MfcError::Dropped). */
    double dropRate = 0.0;

    /** P(payload damaged in flight; completes with MfcError::Corrupted). */
    double corruptRate = 0.0;

    /** P(completion is late by delayTicks; no error status). */
    double delayRate = 0.0;

    /** Extra completion latency for delayed commands. */
    Tick delayTicks = 2000;

    /** Base seed; the CellSystem mixes in the run seed and SPE index. */
    std::uint64_t seed = 1;

    bool
    enabled() const
    {
        return dropRate > 0.0 || corruptRate > 0.0 || delayRate > 0.0;
    }
};

struct MfcParams
{
    /** Command-queue depth (CBEA: 16 SPU-side entries). */
    unsigned queueDepth = 16;

    /** Proxy queue depth for PPE-issued commands (CBEA: 8 entries). */
    unsigned proxyQueueDepth = 8;

    /**
     * Max main-memory lines (<=128 B each) in flight at once.  Models
     * the CBE resource-allocation tokens for XDR access; with the
     * memory round-trip this pins a single SPE near 10 GB/s to memory
     * (paper Fig. 8) no matter the element size.
     */
    unsigned memoryTokens = 18;

    /**
     * Max LS-to-LS lines in flight at once.  LS apertures need no
     * memory tokens, so this is much larger; SPE pairs therefore reach
     * the 33.6 GB/s duplex peak (paper Figs. 10/12/15).
     */
    unsigned lsLines = 64;

    /** Issue-engine occupancy per DMA command, bus cycles. */
    Tick elemOverheadBus = 24;

    /** Extra issue occupancy per DMA-list element, bus cycles. */
    Tick listElemOverheadBus = 2;

    /** Local-store size used for address validation. */
    std::uint32_t lsSize = 256 * 1024;

    /** Fault injection; inert with the default all-zero rates. */
    MfcFaultParams faults;
};

class Mfc : public sim::SimObject
{
  public:
    Mfc(std::string name, sim::EventQueue &eq, const sim::ClockSpec &clock,
        const MfcParams &params, unsigned speIndex);

    /** Install the system-level router for line requests. */
    void setLineHandler(LineHandler handler) { handler_ = std::move(handler); }

    /** Attach an event recorder (nullptr disables tracing). */
    void setRecorder(trace::Recorder *recorder) { recorder_ = recorder; }

    /** CBEA tag-group ordering attached to a command. */
    enum class Order
    {
        None,       ///< plain get/put: free to overtake
        Fence,      ///< *f: waits for earlier commands of its tag group
        Barrier,    ///< *b: fence + later commands of the group wait
    };

    /** @name Command issue (mirrors mfc_get / mfc_put / mfc_getl /
     *        mfc_putl and the fence/barrier forms mfc_getf, mfc_putb,
     *        ...).  fatal()s when the queue is full: await
     *        queueSpace() first, as real code must poll for space.
     *
     *        A command that fails CBEA validation (bad size, bad
     *        alignment, LS overrun, bad list) is *rejected*, not
     *        fatal: the call returns false, nothing enters the queue,
     *        and a FaultRecord with the error code is latched on the
     *        command's tag group (poll tagFaultMask / takeFaults). */
    /** @{ */
    bool get(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag,
             Order order = Order::None);
    bool put(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag,
             Order order = Order::None);
    bool getList(LsAddr lsa, std::vector<ListElement> list, unsigned tag,
                 Order order = Order::None);
    bool putList(LsAddr lsa, std::vector<ListElement> list, unsigned tag,
                 Order order = Order::None);

    /** mfc_getf / mfc_getb / mfc_putf / mfc_putb. */
    bool
    getf(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag)
    {
        return get(lsa, ea, size, tag, Order::Fence);
    }

    bool
    getb(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag)
    {
        return get(lsa, ea, size, tag, Order::Barrier);
    }

    bool
    putf(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag)
    {
        return put(lsa, ea, size, tag, Order::Fence);
    }

    bool
    putb(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag)
    {
        return put(lsa, ea, size, tag, Order::Barrier);
    }
    /** @} */

    /** @name Fault status.
     *
     *  Every rejected or injected-fault command leaves a FaultRecord
     *  carrying the full command descriptor, so a recovery layer can
     *  re-issue it verbatim (transfers are idempotent).  A faulted
     *  command still *completes* for tag-group accounting — tagWait
     *  never deadlocks on it — but moves no (or damaged) data. */
    /** @{ */
    struct FaultRecord
    {
        unsigned tag;
        DmaDir dir;
        bool isList;
        bool isProxy;
        LsAddr lsa;                     ///< original LS start address
        std::vector<ListElement> segs;  ///< original element list
        MfcError code;
        Tick at;                        ///< tick the fault was latched
    };

    /** Bitmask of tag groups with unconsumed fault records. */
    std::uint32_t tagFaultMask() const;

    /** Unconsumed fault records for @p tag. */
    unsigned tagFaultCount(unsigned tag) const;

    /** Remove and return the fault records latched on @p tag. */
    std::vector<FaultRecord> takeFaults(unsigned tag);

    /** Drop all latched fault records (mfc_write_tag_status ack). */
    void clearFaults();
    /** @} */

    /**
     * Hook invoked at every command completion (after the data has
     * landed) with the original command descriptor and its fault
     * status.  The CellSystem's --verify mode uses this to cross-check
     * transfers end-to-end; nullptr disables.
     */
    struct Completion
    {
        unsigned speIndex;
        unsigned tag;
        DmaDir dir;
        bool isList;
        bool isProxy;
        LsAddr lsa;                         ///< original LS start
        const ListElement *segs;            ///< element view, numSegs long
        std::size_t numSegs;
        MfcError fault;
    };

    using CompletionHook = std::function<void(const Completion &)>;

    void setCompletionHook(CompletionHook hook)
    {
        completionHook_ = std::move(hook);
    }

    /** @name Proxy commands: DMA issued on this MFC by the PPE (or
     *        another SPE) through the memory-mapped problem-state
     *        registers.  They share the issue engine and tag groups
     *        with SPU commands but have their own 8-entry queue
     *        (CBEA MFC proxy command queue). */
    /** @{ */
    bool proxyGet(LsAddr lsa, EffAddr ea, std::uint32_t size,
                  unsigned tag, Order order = Order::None);
    bool proxyPut(LsAddr lsa, EffAddr ea, std::uint32_t size,
                  unsigned tag, Order order = Order::None);

    unsigned
    proxyQueueFree() const
    {
        auto used = proxyCount_ + reservedProxySlots_;
        return used >= params_.proxyQueueDepth
                   ? 0
                   : params_.proxyQueueDepth - used;
    }

    bool proxyQueueFull() const { return proxyQueueFree() == 0; }

    /** Awaitable mirror of queueSpace() for the proxy queue. */
    struct ProxySpaceAwaiter
    {
        Mfc &mfc;
        bool suspended = false;

        bool await_ready() const { return !mfc.proxyQueueFull(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            suspended = true;
            mfc.proxyWaiters_.push_back(h);
        }

        void
        await_resume()
        {
            if (suspended) {
                if (mfc.reservedProxySlots_ == 0)
                    sim::panic("%s: proxy reservation underflow",
                               mfc.name().c_str());
                --mfc.reservedProxySlots_;
            }
        }
    };

    ProxySpaceAwaiter proxyQueueSpace() { return ProxySpaceAwaiter{*this}; }
    /** @} */

    unsigned queueDepth() const { return params_.queueDepth; }

    /**
     * Queue slots available to a new command.  Slots already promised
     * to woken-but-not-yet-resumed queueSpace() waiters are excluded,
     * so concurrent streams on one MFC cannot steal each other's slot.
     */
    unsigned
    queueFree() const
    {
        auto used = spuCount_ + reservedSlots_;
        return used >= params_.queueDepth ? 0 : params_.queueDepth - used;
    }

    bool queueFull() const { return queueFree() == 0; }

    /** Bitmask of tag groups with incomplete commands. */
    std::uint32_t tagsPendingMask() const;

    /** Awaitable: resumes once at least one queue slot is free (and
     *  reserved for this waiter). */
    struct QueueSpaceAwaiter
    {
        Mfc &mfc;
        bool suspended = false;

        bool await_ready() const { return !mfc.queueFull(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            suspended = true;
            mfc.spaceWaiters_.push_back(h);
        }

        void
        await_resume()
        {
            // A waiter woken by wakeWaiters() holds a slot reservation;
            // release it so the command issued next can take the slot.
            if (suspended) {
                if (mfc.reservedSlots_ == 0)
                    sim::panic("%s: queue-slot reservation underflow",
                               mfc.name().c_str());
                --mfc.reservedSlots_;
            }
        }
    };

    QueueSpaceAwaiter queueSpace() { return QueueSpaceAwaiter{*this}; }

    /**
     * Awaitable: resumes once every tag group selected by @p mask has
     * no incomplete commands (mfc_read_tag_status_all semantics).
     */
    struct TagWaitAwaiter
    {
        Mfc &mfc;
        std::uint32_t mask;

        bool
        await_ready() const
        {
            return (mfc.tagsPendingMask() & mask) == 0;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            mfc.tagWaiters_.push_back({mask, h});
        }

        void await_resume() const {}
    };

    TagWaitAwaiter tagWait(std::uint32_t mask)
    {
        return TagWaitAwaiter{*this, mask};
    }

    /** @name Statistics. */
    /** @{ */
    std::uint64_t bytesTransferred() const { return bytesTransferred_; }
    std::uint64_t commandsCompleted() const { return commandsCompleted_; }
    std::uint64_t linesSent() const { return linesSent_; }
    /** Commands rejected by validation or completed with a fault. */
    std::uint64_t commandsFaulted() const { return commandsFaulted_; }
    std::uint64_t dropsInjected() const { return dropsInjected_; }
    std::uint64_t corruptionsInjected() const
    {
        return corruptionsInjected_;
    }
    std::uint64_t delaysInjected() const { return delaysInjected_; }

    /**
     * Command-queue occupancy histogram: index d counts the commands
     * that were accepted when the combined SPU+proxy queue depth
     * (including themselves) was d.  A distribution pinned at the
     * queue depth means the program saturates the MFC; one pinned at 1
     * means it never overlaps commands.
     */
    const std::vector<std::uint64_t> &queueDepthHist() const
    {
        return depthHist_;
    }
    /** @} */

    /**
     * Accumulate this MFC's counters into @p reg under `<prefix>.*`:
     * commands, bytes, lines, fault/injection counters, and the
     * queue-depth histogram as `<prefix>.queue_depth`.
     */
    void registerMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const;

    unsigned speIndex() const { return speIndex_; }

  private:
    struct Command
    {
        DmaDir dir;
        unsigned tag;
        bool isList;
        bool isProxy = false;
        Order order;
        LsAddr lsaStart;        ///< original LS address, for hooks/faults
        LsAddr lsaCursor;
        SegList segs;
        // Progress through segs.
        std::size_t nextSeg = 0;
        std::uint32_t segOffset = 0;
        unsigned linesOutstanding = 0;
        bool issued = false;
        bool allLinesIssued = false;
        bool done = false;
        Tick enqueuedAt = 0;
        Tick issuedAt = 0;
        std::uint32_t totalBytes = 0;
        /** Injected fate, drawn at enqueue (None = clean command). */
        MfcError injected = MfcError::None;
        /** Extra completion latency for an injected delay. */
        Tick extraDelay = 0;
        /** Corruption is applied to exactly one line. */
        bool corruptPending = false;
    };

    bool enqueue(DmaDir dir, bool isList, LsAddr lsa, SegList segs,
                 unsigned tag, Order order, bool proxy = false);

    /** Tag-group ordering: may @p c pass the issue engine now? */
    bool issuable(const Command &c) const;
    MfcError validate(LsAddr lsa, const SegList &segs,
                      bool isList) const;
    void recordFault(DmaDir dir, bool isList, bool proxy, LsAddr lsa,
                     std::vector<ListElement> segs, unsigned tag,
                     MfcError code);
    void scheduleIssue();
    void finishIssue(Command *c);
    void tryIssueLines();
    void lineDone(Command *c, std::uint32_t bytes, bool isLs);
    void commandComplete(Command *c);
    void finalizeCompletion(Command *c);
    void wakeWaiters();

    sim::ClockSpec clock_;
    MfcParams params_;
    unsigned speIndex_;
    LineHandler handler_;
    trace::Recorder *recorder_ = nullptr;

    /**
     * Command storage: a fixed arena sized to the combined SPU+proxy
     * queue depth at construction.  Slots are address-stable for a
     * command's lifetime (in-flight events hold Command pointers) and
     * recycle through freeSlots_, so steady-state command traffic
     * allocates nothing.  queue_ lists the live commands in arrival
     * order — the order CBEA tag-group fences/barriers are defined
     * over; at <= 24 entries a contiguous pointer vector beats the
     * pointer-chase of the std::list it replaces.
     */
    std::vector<Command> slotStore_;
    std::vector<Command *> freeSlots_;
    std::vector<Command *> queue_;

    /**
     * Issued commands with lines left to send, in round-robin order:
     * a fixed-capacity ring (capacity = combined queue depth).
     */
    std::vector<Command *> active_;
    std::size_t activeHead_ = 0;
    std::size_t activeCount_ = 0;

    Command *
    activePopFront()
    {
        Command *c = active_[activeHead_];
        activeHead_ = (activeHead_ + 1) % active_.size();
        --activeCount_;
        return c;
    }

    void
    activePushBack(Command *c)
    {
        active_[(activeHead_ + activeCount_) % active_.size()] = c;
        ++activeCount_;
    }

    Tick issueFreeAt_ = 0;
    bool issueInProgress_ = false;
    unsigned memLinesInFlight_ = 0;
    unsigned lsLinesInFlight_ = 0;

    std::vector<std::coroutine_handle<>> spaceWaiters_;
    unsigned reservedSlots_ = 0;
    std::vector<std::coroutine_handle<>> proxyWaiters_;
    unsigned reservedProxySlots_ = 0;
    unsigned spuCount_ = 0;
    unsigned proxyCount_ = 0;
    struct TagWaiter
    {
        std::uint32_t mask;
        std::coroutine_handle<> h;
    };
    std::vector<TagWaiter> tagWaiters_;
    unsigned tagPending_[numTags] = {};

    std::uint64_t bytesTransferred_ = 0;
    std::uint64_t commandsCompleted_ = 0;
    std::uint64_t linesSent_ = 0;
    std::vector<std::uint64_t> depthHist_;

    sim::Rng faultRng_;
    bool faultsEnabled_ = false;
    std::vector<FaultRecord> faultLog_;
    CompletionHook completionHook_;
    std::uint64_t commandsFaulted_ = 0;
    std::uint64_t dropsInjected_ = 0;
    std::uint64_t corruptionsInjected_ = 0;
    std::uint64_t delaysInjected_ = 0;
};

} // namespace cellbw::spe

#endif // CELLBW_SPE_MFC_HH
