/**
 * @file
 * Memory Flow Controller: the SPE's DMA engine.
 *
 * Programs interact with the MFC the way Cell SDK code does:
 *
 * @code
 *   co_await mfc.queueSpace();          // mfc_get stalls when queue full
 *   mfc.get(lsa, ea, 16_KiB, tag);      // enqueue DMA-elem command
 *   co_await mfc.tagWait(1u << tag);    // mfc_write_tag_mask + read status
 * @endcode
 *
 * Structure (and the measured effects it produces):
 *  - a 16-entry command queue (entries are held until completion);
 *  - a serial *issue engine* that spends a fixed occupancy per command
 *    (plus a small per-element cost for DMA lists) before the command's
 *    lines can flow.  This is what degrades DMA-elem bandwidth below
 *    1024-byte elements while DMA-list transfers stay flat — the
 *    paper's Figures 10/12/15;
 *  - a *line window* limiting outstanding <=128 B lines on the bus.
 *    The window times the memory round-trip pins single-SPE-to-memory
 *    bandwidth near 10 GB/s regardless of element size — Figure 8;
 *  - lines of issued commands interleave round-robin, so transfers
 *    complete out of order like real MFC transfer-class behaviour.
 */

#ifndef CELLBW_SPE_MFC_HH
#define CELLBW_SPE_MFC_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <list>
#include <vector>

#include "sim/clock.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "spe/dma_types.hh"
#include "trace/recorder.hh"

namespace cellbw::spe
{

struct MfcParams
{
    /** Command-queue depth (CBEA: 16 SPU-side entries). */
    unsigned queueDepth = 16;

    /** Proxy queue depth for PPE-issued commands (CBEA: 8 entries). */
    unsigned proxyQueueDepth = 8;

    /**
     * Max main-memory lines (<=128 B each) in flight at once.  Models
     * the CBE resource-allocation tokens for XDR access; with the
     * memory round-trip this pins a single SPE near 10 GB/s to memory
     * (paper Fig. 8) no matter the element size.
     */
    unsigned memoryTokens = 18;

    /**
     * Max LS-to-LS lines in flight at once.  LS apertures need no
     * memory tokens, so this is much larger; SPE pairs therefore reach
     * the 33.6 GB/s duplex peak (paper Figs. 10/12/15).
     */
    unsigned lsLines = 64;

    /** Issue-engine occupancy per DMA command, bus cycles. */
    Tick elemOverheadBus = 24;

    /** Extra issue occupancy per DMA-list element, bus cycles. */
    Tick listElemOverheadBus = 2;

    /** Local-store size used for address validation. */
    std::uint32_t lsSize = 256 * 1024;
};

class Mfc : public sim::SimObject
{
  public:
    Mfc(std::string name, sim::EventQueue &eq, const sim::ClockSpec &clock,
        const MfcParams &params, unsigned speIndex);

    /** Install the system-level router for line requests. */
    void setLineHandler(LineHandler handler) { handler_ = std::move(handler); }

    /** Attach an event recorder (nullptr disables tracing). */
    void setRecorder(trace::Recorder *recorder) { recorder_ = recorder; }

    /** CBEA tag-group ordering attached to a command. */
    enum class Order
    {
        None,       ///< plain get/put: free to overtake
        Fence,      ///< *f: waits for earlier commands of its tag group
        Barrier,    ///< *b: fence + later commands of the group wait
    };

    /** @name Command issue (mirrors mfc_get / mfc_put / mfc_getl /
     *        mfc_putl and the fence/barrier forms mfc_getf, mfc_putb,
     *        ...).  fatal()s when the queue is full: await
     *        queueSpace() first, as real code must poll for space. */
    /** @{ */
    void get(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag,
             Order order = Order::None);
    void put(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag,
             Order order = Order::None);
    void getList(LsAddr lsa, std::vector<ListElement> list, unsigned tag,
                 Order order = Order::None);
    void putList(LsAddr lsa, std::vector<ListElement> list, unsigned tag,
                 Order order = Order::None);

    /** mfc_getf / mfc_getb / mfc_putf / mfc_putb. */
    void
    getf(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag)
    {
        get(lsa, ea, size, tag, Order::Fence);
    }

    void
    getb(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag)
    {
        get(lsa, ea, size, tag, Order::Barrier);
    }

    void
    putf(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag)
    {
        put(lsa, ea, size, tag, Order::Fence);
    }

    void
    putb(LsAddr lsa, EffAddr ea, std::uint32_t size, unsigned tag)
    {
        put(lsa, ea, size, tag, Order::Barrier);
    }
    /** @} */

    /** @name Proxy commands: DMA issued on this MFC by the PPE (or
     *        another SPE) through the memory-mapped problem-state
     *        registers.  They share the issue engine and tag groups
     *        with SPU commands but have their own 8-entry queue
     *        (CBEA MFC proxy command queue). */
    /** @{ */
    void proxyGet(LsAddr lsa, EffAddr ea, std::uint32_t size,
                  unsigned tag, Order order = Order::None);
    void proxyPut(LsAddr lsa, EffAddr ea, std::uint32_t size,
                  unsigned tag, Order order = Order::None);

    unsigned
    proxyQueueFree() const
    {
        auto used = proxyCount_ + reservedProxySlots_;
        return used >= params_.proxyQueueDepth
                   ? 0
                   : params_.proxyQueueDepth - used;
    }

    bool proxyQueueFull() const { return proxyQueueFree() == 0; }

    /** Awaitable mirror of queueSpace() for the proxy queue. */
    struct ProxySpaceAwaiter
    {
        Mfc &mfc;
        bool suspended = false;

        bool await_ready() const { return !mfc.proxyQueueFull(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            suspended = true;
            mfc.proxyWaiters_.push_back(h);
        }

        void
        await_resume()
        {
            if (suspended) {
                if (mfc.reservedProxySlots_ == 0)
                    sim::panic("%s: proxy reservation underflow",
                               mfc.name().c_str());
                --mfc.reservedProxySlots_;
            }
        }
    };

    ProxySpaceAwaiter proxyQueueSpace() { return ProxySpaceAwaiter{*this}; }
    /** @} */

    unsigned queueDepth() const { return params_.queueDepth; }

    /**
     * Queue slots available to a new command.  Slots already promised
     * to woken-but-not-yet-resumed queueSpace() waiters are excluded,
     * so concurrent streams on one MFC cannot steal each other's slot.
     */
    unsigned
    queueFree() const
    {
        auto used = spuCount_ + reservedSlots_;
        return used >= params_.queueDepth ? 0 : params_.queueDepth - used;
    }

    bool queueFull() const { return queueFree() == 0; }

    /** Bitmask of tag groups with incomplete commands. */
    std::uint32_t tagsPendingMask() const;

    /** Awaitable: resumes once at least one queue slot is free (and
     *  reserved for this waiter). */
    struct QueueSpaceAwaiter
    {
        Mfc &mfc;
        bool suspended = false;

        bool await_ready() const { return !mfc.queueFull(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            suspended = true;
            mfc.spaceWaiters_.push_back(h);
        }

        void
        await_resume()
        {
            // A waiter woken by wakeWaiters() holds a slot reservation;
            // release it so the command issued next can take the slot.
            if (suspended) {
                if (mfc.reservedSlots_ == 0)
                    sim::panic("%s: queue-slot reservation underflow",
                               mfc.name().c_str());
                --mfc.reservedSlots_;
            }
        }
    };

    QueueSpaceAwaiter queueSpace() { return QueueSpaceAwaiter{*this}; }

    /**
     * Awaitable: resumes once every tag group selected by @p mask has
     * no incomplete commands (mfc_read_tag_status_all semantics).
     */
    struct TagWaitAwaiter
    {
        Mfc &mfc;
        std::uint32_t mask;

        bool
        await_ready() const
        {
            return (mfc.tagsPendingMask() & mask) == 0;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            mfc.tagWaiters_.push_back({mask, h});
        }

        void await_resume() const {}
    };

    TagWaitAwaiter tagWait(std::uint32_t mask)
    {
        return TagWaitAwaiter{*this, mask};
    }

    /** @name Statistics. */
    /** @{ */
    std::uint64_t bytesTransferred() const { return bytesTransferred_; }
    std::uint64_t commandsCompleted() const { return commandsCompleted_; }
    std::uint64_t linesSent() const { return linesSent_; }
    /** @} */

    unsigned speIndex() const { return speIndex_; }

  private:
    struct Command
    {
        DmaDir dir;
        unsigned tag;
        bool isList;
        bool isProxy = false;
        Order order;
        LsAddr lsaCursor;
        std::vector<ListElement> segs;
        // Progress through segs.
        std::size_t nextSeg = 0;
        std::uint32_t segOffset = 0;
        unsigned linesOutstanding = 0;
        bool issued = false;
        bool allLinesIssued = false;
        bool done = false;
        Tick enqueuedAt = 0;
        Tick issuedAt = 0;
        std::uint32_t totalBytes = 0;
    };

    void enqueue(DmaDir dir, bool isList, LsAddr lsa,
                 std::vector<ListElement> segs, unsigned tag,
                 Order order, bool proxy = false);

    /** Tag-group ordering: may @p c pass the issue engine now? */
    bool issuable(const Command &c) const;
    void validate(LsAddr lsa, const std::vector<ListElement> &segs,
                  bool isList) const;
    void scheduleIssue();
    void finishIssue(Command *c);
    void tryIssueLines();
    void lineDone(Command *c, std::uint32_t bytes, bool isLs);
    void commandComplete(Command *c);
    void wakeWaiters();

    sim::ClockSpec clock_;
    MfcParams params_;
    unsigned speIndex_;
    LineHandler handler_;
    trace::Recorder *recorder_ = nullptr;

    std::list<Command> queue_;
    std::deque<Command *> activePool_;
    Tick issueFreeAt_ = 0;
    bool issueInProgress_ = false;
    unsigned memLinesInFlight_ = 0;
    unsigned lsLinesInFlight_ = 0;

    std::vector<std::coroutine_handle<>> spaceWaiters_;
    unsigned reservedSlots_ = 0;
    std::vector<std::coroutine_handle<>> proxyWaiters_;
    unsigned reservedProxySlots_ = 0;
    unsigned spuCount_ = 0;
    unsigned proxyCount_ = 0;
    struct TagWaiter
    {
        std::uint32_t mask;
        std::coroutine_handle<> h;
    };
    std::vector<TagWaiter> tagWaiters_;
    unsigned tagPending_[numTags] = {};

    std::uint64_t bytesTransferred_ = 0;
    std::uint64_t commandsCompleted_ = 0;
    std::uint64_t linesSent_ = 0;
};

} // namespace cellbw::spe

#endif // CELLBW_SPE_MFC_HH
