#include "runtime/software_cache.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "util/align.hh"

namespace cellbw::runtime
{

SoftwareCache::SoftwareCache(cell::CellSystem &sys, unsigned speIndex,
                             const SoftwareCacheParams &params)
    : sys_(sys), params_(params), speIndex_(speIndex)
{
    if (params_.sets == 0 || params_.ways == 0)
        sim::fatal("software cache: geometry must be positive");
    if (params_.dmaTag >= spe::numTags)
        sim::fatal("software cache: bad DMA tag");
    ways_.resize(std::size_t(params_.sets) * params_.ways);
    base_ = sys_.spe(speIndex_).lsAlloc(capacityBytes(), lineBytes);
}

SoftwareCache::Way &
SoftwareCache::way(unsigned set, unsigned w)
{
    return ways_[std::size_t(set) * params_.ways + w];
}

LsAddr
SoftwareCache::lineLsa(unsigned set, unsigned w) const
{
    return base_ + (set * params_.ways + w) * lineBytes;
}

sim::Task
SoftwareCache::ensureResident(EffAddr lineEa, unsigned set,
                              unsigned *wayOut)
{
    auto &spe = sys_.spe(speIndex_);
    auto &mfc = spe.mfc();

    // Tag check (the software overhead of every access).
    co_await spe.spu().cycles(params_.lookupCycles);

    for (unsigned w = 0; w < params_.ways; ++w) {
        Way &cand = way(set, w);
        if (cand.valid && cand.lineEa == lineEa) {
            cand.lru = ++clock_;
            ++hits_;
            *wayOut = w;
            co_return;
        }
    }

    // Miss: pick the LRU victim.
    ++misses_;
    unsigned victim = 0;
    for (unsigned w = 1; w < params_.ways; ++w) {
        if (!way(set, w).valid) {
            victim = w;
            break;
        }
        if (way(set, w).lru < way(set, victim).lru)
            victim = w;
    }
    Way &v = way(set, victim);

    if (v.valid && v.dirty) {
        // Write the victim back before reusing its slot.
        ++writebacks_;
        co_await mfc.queueSpace();
        mfc.put(lineLsa(set, victim), v.lineEa, lineBytes,
                params_.dmaTag);
        co_await mfc.tagWait(1u << params_.dmaTag);
    }

    co_await mfc.queueSpace();
    mfc.get(lineLsa(set, victim), lineEa, lineBytes, params_.dmaTag);
    co_await mfc.tagWait(1u << params_.dmaTag);

    v.valid = true;
    v.dirty = false;
    v.lineEa = lineEa;
    v.lru = ++clock_;
    *wayOut = victim;
}

sim::Task
SoftwareCache::read(EffAddr ea, void *out, std::uint32_t bytes)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (bytes > 0) {
        EffAddr line_ea = util::roundDown(ea, lineBytes);
        auto off = static_cast<std::uint32_t>(ea - line_ea);
        std::uint32_t chunk =
            std::min(bytes, lineBytes - off);
        unsigned set = static_cast<unsigned>(
            (line_ea / lineBytes) % params_.sets);
        unsigned w = 0;
        co_await ensureResident(line_ea, set, &w);
        sys_.spe(speIndex_).ls().read(lineLsa(set, w) + off, dst,
                                      chunk);
        ea += chunk;
        dst += chunk;
        bytes -= chunk;
    }
}

sim::Task
SoftwareCache::write(EffAddr ea, const void *in, std::uint32_t bytes)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (bytes > 0) {
        EffAddr line_ea = util::roundDown(ea, lineBytes);
        auto off = static_cast<std::uint32_t>(ea - line_ea);
        std::uint32_t chunk =
            std::min(bytes, lineBytes - off);
        unsigned set = static_cast<unsigned>(
            (line_ea / lineBytes) % params_.sets);
        unsigned w = 0;
        co_await ensureResident(line_ea, set, &w);
        sys_.spe(speIndex_).ls().write(lineLsa(set, w) + off, src,
                                       chunk);
        way(set, w).dirty = true;
        ea += chunk;
        src += chunk;
        bytes -= chunk;
    }
}

sim::Task
SoftwareCache::flush()
{
    auto &mfc = sys_.spe(speIndex_).mfc();
    for (unsigned set = 0; set < params_.sets; ++set) {
        for (unsigned w = 0; w < params_.ways; ++w) {
            Way &cand = way(set, w);
            if (cand.valid && cand.dirty) {
                ++writebacks_;
                co_await mfc.queueSpace();
                mfc.put(lineLsa(set, w), cand.lineEa, lineBytes,
                        params_.dmaTag);
                cand.dirty = false;
            }
            cand.valid = false;
        }
    }
    co_await mfc.tagWait(1u << params_.dmaTag);
}

} // namespace cellbw::runtime
