/**
 * @file
 * A small task-offload runtime in the spirit of CellSs (Bellens et al.,
 * SC'06), built on the paper's programming rules.
 *
 * The paper closes by noting its bandwidth results "would be very
 * useful in optimizing the runtime library used in such programming
 * model[s]".  This runtime is that consumer: the PPE submits
 * data-parallel tasks (a kernel applied to an input region producing an
 * output region); SPE workers fetch inputs by DMA, compute, and write
 * results back — double-buffered so communication overlaps computation,
 * with delayed tag synchronization, 16 KiB chunks, and mailbox-based
 * dispatch with natural backpressure.
 *
 * @code
 *   runtime::OffloadRuntime rt(sys, {.workers = 4});
 *   rt.submit({in, out, bytes, 256, xorKernel});
 *   rt.start();
 *   sys.run();
 *   auto &st = rt.stats();
 * @endcode
 */

#ifndef CELLBW_RUNTIME_OFFLOAD_HH
#define CELLBW_RUNTIME_OFFLOAD_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cell/cell_system.hh"
#include "sim/task.hh"

namespace cellbw::stats
{
class MetricsRegistry;
} // namespace cellbw::stats

namespace cellbw::runtime
{

/** In-place transform applied to each chunk in the local store. */
using Kernel = std::function<void(std::uint8_t *data,
                                  std::uint32_t bytes)>;

/** One unit of offloaded work: output = kernel(input). */
struct OffloadTask
{
    EffAddr input;
    EffAddr output;
    std::uint32_t bytes;

    /** Modeled SPU compute cost, cycles per KiB of input. */
    Tick computeCyclesPerKiB = 256;

    Kernel kernel;
};

struct OffloadParams
{
    /** SPE workers to use (must not exceed the system's SPEs). */
    unsigned workers = 8;

    /** DMA chunk size; 16 KiB is the architecture's sweet spot. */
    std::uint32_t chunkBytes = 16 * 1024;

    /**
     * Overlap DMA with compute via two LS buffers.  Turning this off
     * serializes transfer and compute — the ablation showing why the
     * paper (and Williams et al.) assume double buffering.
     */
    bool doubleBuffer = true;

    /** Max re-issues of a transiently faulted transfer before fatal. */
    unsigned maxRetries = 8;

    /** Base retry backoff, ticks; doubles with each failed attempt. */
    Tick retryBackoff = 1000;

    /**
     * Where a task runs relative to the chip owning its input pages.
     * Unset inherits the system config's --placement.  RoundRobin keeps
     * the classic `task % workers` dispatch; Locality prefers a worker
     * SPE on the task's home chip, falling back to round-robin when
     * that chip has no workers.
     */
    std::optional<cell::TaskPlacement> placement;
};

class OffloadRuntime
{
  public:
    OffloadRuntime(cell::CellSystem &sys, const OffloadParams &params);

    /** Queue a task; only valid before start(). */
    void submit(OffloadTask task);

    /** Launch the dispatcher and the workers; then run the system. */
    void start();

    struct WorkerStats
    {
        std::uint64_t tasks = 0;
        std::uint64_t chunks = 0;
        std::uint64_t bytesIn = 0;
        std::uint64_t bytesOut = 0;
        Tick busyTicks = 0;
        /** MFC faults observed (dropped/corrupted transfers). */
        std::uint64_t faults = 0;
        /** Transfers re-issued to recover from those faults. */
        std::uint64_t retries = 0;
    };

    struct Stats
    {
        std::uint64_t tasksCompleted = 0;
        Tick firstDispatch = 0;
        Tick lastCompletion = 0;
        std::vector<WorkerStats> worker;

        Tick makespan() const { return lastCompletion - firstDispatch; }
    };

    /** Valid after sys.run() returns. */
    const Stats &stats() const { return stats_; }

    /** Payload GB/s over the makespan (input bytes processed). */
    double throughputGBps() const;

    /**
     * Accumulate the runtime's counters into @p reg:
     * `<prefix>.tasks_completed`, `.makespan_ticks`, and per-worker
     * `<prefix>.worker<w>.{tasks,chunks,bytes_in,bytes_out,busy_ticks,
     * faults,retries}`.
     */
    void registerMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const;

  private:
    static constexpr std::uint32_t stopToken = 0xFFFFFFFFu;

    sim::Task dispatcher();
    sim::Task worker(unsigned w);
    sim::Task processTask(unsigned w, const OffloadTask &task,
                          WorkerStats &ws);
    sim::Task recoverTag(unsigned w, unsigned tag, WorkerStats &ws);

    cell::CellSystem &sys_;
    OffloadParams params_;
    std::vector<OffloadTask> tasks_;
    // Separate input and output LS buffers per slot: a PUT's source
    // data must survive in the LS until its retry window closes, so
    // the kernel may not transform it in place.
    std::vector<LsAddr> in0_, in1_, out0_, out1_;
    bool started_ = false;
    Stats stats_;
};

} // namespace cellbw::runtime

#endif // CELLBW_RUNTIME_OFFLOAD_HH
