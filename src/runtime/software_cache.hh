/**
 * @file
 * A software cache over main memory, resident in an SPE's local store.
 *
 * The paper cites Eichenberger et al.'s Cell compiler, whose "software
 * cache ... deal[s] with memory accesses and consider[s] the efficiency
 * of DMA transfers": irregular (non-streamable) accesses go through an
 * LS-resident, set-associative cache of 128-byte lines, each miss being
 * one DMA GET (plus a writeback PUT when a dirty victim is evicted).
 *
 * The access API is awaitable — a hit costs a handful of SPU cycles for
 * the tag check, a miss stalls the program for the DMA round trip the
 * paper measures.  This is exactly why the paper's single-SPE ~10 GB/s
 * and its latency numbers matter to a compiler: they set the miss
 * penalty.
 *
 * @code
 *   runtime::SoftwareCache cache(sys, speIdx, {.sets = 64, .ways = 4});
 *   std::uint32_t v = co_await cache.read32(ea);
 *   co_await cache.write32(ea, v + 1);
 *   co_await cache.flush();
 * @endcode
 */

#ifndef CELLBW_RUNTIME_SOFTWARE_CACHE_HH
#define CELLBW_RUNTIME_SOFTWARE_CACHE_HH

#include <cstdint>
#include <vector>

#include "cell/cell_system.hh"
#include "sim/task.hh"

namespace cellbw::runtime
{

struct SoftwareCacheParams
{
    /** Cache geometry: sets x ways lines of 128 bytes each. */
    unsigned sets = 64;
    unsigned ways = 4;

    /** SPU cycles charged per tag lookup (the software overhead the
     *  compiler pays on every access, hit or miss). */
    Tick lookupCycles = 12;

    /** MFC tag group used for the cache's DMA traffic. */
    unsigned dmaTag = 9;
};

class SoftwareCache
{
  public:
    static constexpr std::uint32_t lineBytes = 128;

    SoftwareCache(cell::CellSystem &sys, unsigned speIndex,
                  const SoftwareCacheParams &params = {});

    /** @name Awaitable accesses (any EA in main memory). */
    /** @{ */
    sim::Task read(EffAddr ea, void *out, std::uint32_t bytes);
    sim::Task write(EffAddr ea, const void *in, std::uint32_t bytes);

    sim::Task
    read32(EffAddr ea, std::uint32_t *out)
    {
        return read(ea, out, 4);
    }

    sim::Task
    write32(EffAddr ea, std::uint32_t v)
    {
        // A coroutine of its own: v must live in a frame that outlives
        // the inner write()'s execution.
        co_await write(ea, &v, 4);
    }
    /** @} */

    /** Write all dirty lines back and invalidate everything. */
    sim::Task flush();

    /** @name Statistics. */
    /** @{ */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    double
    hitRate() const
    {
        auto total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }
    /** @} */

    std::uint32_t capacityBytes() const
    {
        return params_.sets * params_.ways * lineBytes;
    }

  private:
    struct Way
    {
        EffAddr lineEa = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    Way &way(unsigned set, unsigned w);
    LsAddr lineLsa(unsigned set, unsigned w) const;

    /** Ensure the line containing @p ea is resident; returns its way. */
    sim::Task ensureResident(EffAddr lineEa, unsigned set,
                             unsigned *wayOut);

    cell::CellSystem &sys_;
    SoftwareCacheParams params_;
    unsigned speIndex_;
    LsAddr base_;
    std::vector<Way> ways_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace cellbw::runtime

#endif // CELLBW_RUNTIME_SOFTWARE_CACHE_HH
