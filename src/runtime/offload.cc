#include "runtime/offload.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "stats/metrics.hh"
#include "util/align.hh"
#include "util/strings.hh"

namespace cellbw::runtime
{

OffloadRuntime::OffloadRuntime(cell::CellSystem &sys,
                               const OffloadParams &params)
    : sys_(sys), params_(params)
{
    if (params_.workers == 0 || params_.workers > sys_.numSpes())
        sim::fatal("offload runtime: workers must be 1..%u",
                   sys_.numSpes());
    if (params_.chunkBytes == 0 ||
        !util::isValidDmaSize(params_.chunkBytes)) {
        sim::fatal("offload runtime: chunk size %u is not a valid DMA "
                   "size", params_.chunkBytes);
    }
}

void
OffloadRuntime::submit(OffloadTask task)
{
    if (started_)
        sim::fatal("offload runtime: submit after start");
    if (task.bytes == 0)
        sim::fatal("offload runtime: empty task");
    if (!task.kernel)
        sim::fatal("offload runtime: task without a kernel");
    tasks_.push_back(std::move(task));
}

void
OffloadRuntime::start()
{
    if (started_)
        sim::fatal("offload runtime: started twice");
    started_ = true;
    stats_.worker.resize(params_.workers);
    stats_.firstDispatch = sys_.now();

    in0_.resize(params_.workers);
    in1_.resize(params_.workers);
    out0_.resize(params_.workers);
    out1_.resize(params_.workers);
    for (unsigned w = 0; w < params_.workers; ++w) {
        auto &s = sys_.spe(w);
        in0_[w] = s.lsAlloc(params_.chunkBytes);
        out0_[w] = s.lsAlloc(params_.chunkBytes);
        in1_[w] = params_.doubleBuffer ? s.lsAlloc(params_.chunkBytes)
                                       : in0_[w];
        out1_[w] = params_.doubleBuffer ? s.lsAlloc(params_.chunkBytes)
                                        : out0_[w];
        sys_.launch(worker(w));
    }
    sys_.launch(dispatcher());
}

sim::Task
OffloadRuntime::dispatcher()
{
    // Dispatch through the 4-entry inbound mailboxes; a busy worker's
    // full mailbox applies backpressure naturally.  Locality placement
    // steers each task to a worker on the chip owning its input pages
    // (rotating among that chip's workers); round-robin — the default,
    // and the fallback when the home chip has no workers — spreads
    // tasks over the workers in dispatch order.
    const cell::TaskPlacement policy =
        params_.placement ? *params_.placement : sys_.config().placement;
    std::vector<std::vector<unsigned>> byChip(sys_.numChips());
    std::vector<std::size_t> cursor(sys_.numChips(), 0);
    if (policy == cell::TaskPlacement::Locality)
        for (unsigned w = 0; w < params_.workers; ++w)
            byChip[sys_.chipOf(w)].push_back(w);
    std::size_t spill = 0;
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
        unsigned w;
        if (policy == cell::TaskPlacement::Locality) {
            const unsigned home = sys_.memory().bankOf(tasks_[t].input);
            if (home < byChip.size() && !byChip[home].empty()) {
                const auto &local = byChip[home];
                w = local[cursor[home]++ % local.size()];
            } else {
                w = static_cast<unsigned>(spill++ % params_.workers);
            }
        } else {
            w = static_cast<unsigned>(t % params_.workers);
        }
        co_await sys_.spe(w).inboundMailbox().write(
            static_cast<std::uint32_t>(t));
    }
    for (unsigned w = 0; w < params_.workers; ++w)
        co_await sys_.spe(w).inboundMailbox().write(stopToken);
}

sim::Task
OffloadRuntime::processTask(unsigned w, const OffloadTask &task,
                            WorkerStats &ws)
{
    auto &s = sys_.spe(w);
    auto &mfc = s.mfc();
    const std::uint32_t chunk = params_.chunkBytes;
    const std::uint64_t n =
        util::divCeil(task.bytes, chunk);
    const LsAddr in[2] = {in0_[w], in1_[w]};
    const LsAddr out[2] = {out0_[w], out1_[w]};
    // GETs and PUTs get distinct tag groups per buffer slot, so a
    // faulted transfer can be identified and re-issued on its own.
    auto get_tag = [](unsigned slot) { return slot; };
    auto put_tag = [](unsigned slot) { return 2 + slot; };

    auto chunk_size = [&](std::uint64_t c) {
        return static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk, task.bytes - c * chunk));
    };

    // Prefetch chunk 0.
    co_await mfc.queueSpace();
    mfc.get(in[0], task.input, chunk_size(0), get_tag(0));

    std::vector<std::uint8_t> scratch(chunk);
    for (std::uint64_t c = 0; c < n; ++c) {
        unsigned cur = params_.doubleBuffer
                           ? static_cast<unsigned>(c % 2)
                           : 0u;
        unsigned nxt = 1 - cur;
        // Kick off the next chunk's GET before waiting on this one,
        // so the transfer overlaps this chunk's compute.
        if (params_.doubleBuffer && c + 1 < n) {
            co_await mfc.queueSpace();
            mfc.get(in[nxt], task.input + (c + 1) * chunk,
                    chunk_size(c + 1), get_tag(nxt));
        }
        // Land this chunk's input, repairing any faulted GET, and wait
        // out the previous PUT from this slot so its out buffer may be
        // overwritten (the PUT's retry window closes here).
        co_await mfc.tagWait(1u << get_tag(cur));
        if (mfc.tagFaultCount(get_tag(cur)))
            co_await recoverTag(w, get_tag(cur), ws);
        co_await mfc.tagWait(1u << put_tag(cur));
        if (mfc.tagFaultCount(put_tag(cur)))
            co_await recoverTag(w, put_tag(cur), ws);

        std::uint32_t bytes = chunk_size(c);
        s.ls().read(in[cur], scratch.data(), bytes);
        task.kernel(scratch.data(), bytes);
        s.ls().write(out[cur], scratch.data(), bytes);
        co_await s.spu().cycles(task.computeCyclesPerKiB *
                                util::divCeil(bytes, util::KiB));

        co_await mfc.queueSpace();
        mfc.put(out[cur], task.output + c * chunk, bytes, put_tag(cur));
        if (!params_.doubleBuffer) {
            co_await mfc.tagWait(1u << put_tag(cur));
            if (mfc.tagFaultCount(put_tag(cur)))
                co_await recoverTag(w, put_tag(cur), ws);
            if (c + 1 < n) {
                co_await mfc.queueSpace();
                mfc.get(in[0], task.input + (c + 1) * chunk,
                        chunk_size(c + 1), get_tag(0));
            }
        }
        ws.bytesIn += bytes;
        ws.bytesOut += bytes;
        ++ws.chunks;
    }
    // Drain every outstanding transfer, repairing stragglers.
    co_await mfc.tagWait((1u << get_tag(0)) | (1u << get_tag(1)) |
                         (1u << put_tag(0)) | (1u << put_tag(1)));
    for (unsigned slot = 0; slot < 2; ++slot) {
        if (mfc.tagFaultCount(get_tag(slot)))
            co_await recoverTag(w, get_tag(slot), ws);
        if (mfc.tagFaultCount(put_tag(slot)))
            co_await recoverTag(w, put_tag(slot), ws);
    }
}

/**
 * Repair a tag group that completed with fault status: re-issue each
 * faulted command verbatim (transfers are idempotent) after a backoff
 * that doubles with every failed attempt, up to params.maxRetries.
 * Validation faults are permanent — re-issuing cannot help — so they
 * stay fatal.
 */
sim::Task
OffloadRuntime::recoverTag(unsigned w, unsigned tag, WorkerStats &ws)
{
    auto &mfc = sys_.spe(w).mfc();
    for (unsigned attempt = 0;; ++attempt) {
        auto faults = mfc.takeFaults(tag);
        if (faults.empty())
            co_return;
        for (const auto &f : faults) {
            ++ws.faults;
            if (!spe::isTransient(f.code)) {
                sim::fatal("offload worker %u: unrecoverable MFC fault "
                           "'%s' on tag %u", w, spe::toString(f.code),
                           tag);
            }
        }
        if (attempt >= params_.maxRetries) {
            sim::fatal("offload worker %u: tag %u still faulted after "
                       "%u retries", w, tag, params_.maxRetries);
        }
        co_await sim::Delay{sys_.eventQueue(),
                            params_.retryBackoff
                                << std::min(attempt, 16u)};
        for (const auto &f : faults) {
            ++ws.retries;
            co_await mfc.queueSpace();
            if (f.isList) {
                if (f.dir == spe::DmaDir::Get)
                    mfc.getList(f.lsa, f.segs, f.tag);
                else
                    mfc.putList(f.lsa, f.segs, f.tag);
            } else if (f.dir == spe::DmaDir::Get) {
                mfc.get(f.lsa, f.segs[0].ea, f.segs[0].size, f.tag);
            } else {
                mfc.put(f.lsa, f.segs[0].ea, f.segs[0].size, f.tag);
            }
        }
        co_await mfc.tagWait(1u << tag);
    }
}

sim::Task
OffloadRuntime::worker(unsigned w)
{
    auto &s = sys_.spe(w);
    WorkerStats &ws = stats_.worker[w];
    while (true) {
        std::uint32_t id = co_await s.inboundMailbox().read();
        if (id == stopToken)
            break;
        Tick t0 = sys_.now();
        co_await processTask(w, tasks_[id], ws);
        ws.busyTicks += sys_.now() - t0;
        ++ws.tasks;
        ++stats_.tasksCompleted;
        stats_.lastCompletion = sys_.now();
    }
}

double
OffloadRuntime::throughputGBps() const
{
    std::uint64_t bytes = 0;
    for (const auto &w : stats_.worker)
        bytes += w.bytesIn;
    Tick span = stats_.makespan();
    if (span == 0)
        return 0.0;
    return sys_.clock().bandwidthGBps(bytes, span);
}

void
OffloadRuntime::registerMetrics(stats::MetricsRegistry &reg,
                                const std::string &prefix) const
{
    reg.counter(prefix + ".tasks_completed").add(stats_.tasksCompleted);
    reg.counter(prefix + ".makespan_ticks").add(stats_.makespan());
    for (std::size_t w = 0; w < stats_.worker.size(); ++w) {
        const WorkerStats &ws = stats_.worker[w];
        std::string base = prefix + util::format(".worker%zu", w);
        reg.counter(base + ".tasks").add(ws.tasks);
        reg.counter(base + ".chunks").add(ws.chunks);
        reg.counter(base + ".bytes_in").add(ws.bytesIn);
        reg.counter(base + ".bytes_out").add(ws.bytesOut);
        reg.counter(base + ".busy_ticks").add(ws.busyTicks);
        reg.counter(base + ".faults").add(ws.faults);
        reg.counter(base + ".retries").add(ws.retries);
    }
}

} // namespace cellbw::runtime
