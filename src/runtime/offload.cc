#include "runtime/offload.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "util/align.hh"

namespace cellbw::runtime
{

OffloadRuntime::OffloadRuntime(cell::CellSystem &sys,
                               const OffloadParams &params)
    : sys_(sys), params_(params)
{
    if (params_.workers == 0 || params_.workers > sys_.numSpes())
        sim::fatal("offload runtime: workers must be 1..%u",
                   sys_.numSpes());
    if (params_.chunkBytes == 0 ||
        !util::isValidDmaSize(params_.chunkBytes)) {
        sim::fatal("offload runtime: chunk size %u is not a valid DMA "
                   "size", params_.chunkBytes);
    }
}

void
OffloadRuntime::submit(OffloadTask task)
{
    if (started_)
        sim::fatal("offload runtime: submit after start");
    if (task.bytes == 0)
        sim::fatal("offload runtime: empty task");
    if (!task.kernel)
        sim::fatal("offload runtime: task without a kernel");
    tasks_.push_back(std::move(task));
}

void
OffloadRuntime::start()
{
    if (started_)
        sim::fatal("offload runtime: started twice");
    started_ = true;
    stats_.worker.resize(params_.workers);
    stats_.firstDispatch = sys_.now();

    buf0_.resize(params_.workers);
    buf1_.resize(params_.workers);
    for (unsigned w = 0; w < params_.workers; ++w) {
        auto &s = sys_.spe(w);
        buf0_[w] = s.lsAlloc(params_.chunkBytes);
        buf1_[w] = params_.doubleBuffer ? s.lsAlloc(params_.chunkBytes)
                                        : buf0_[w];
        sys_.launch(worker(w));
    }
    sys_.launch(dispatcher());
}

sim::Task
OffloadRuntime::dispatcher()
{
    // Round-robin dispatch through the 4-entry inbound mailboxes; a
    // busy worker's full mailbox applies backpressure naturally.
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
        unsigned w = static_cast<unsigned>(t % params_.workers);
        co_await sys_.spe(w).inboundMailbox().write(
            static_cast<std::uint32_t>(t));
    }
    for (unsigned w = 0; w < params_.workers; ++w)
        co_await sys_.spe(w).inboundMailbox().write(stopToken);
}

sim::Task
OffloadRuntime::processTask(unsigned w, const OffloadTask &task,
                            WorkerStats &ws)
{
    auto &s = sys_.spe(w);
    auto &mfc = s.mfc();
    const std::uint32_t chunk = params_.chunkBytes;
    const std::uint64_t n =
        util::divCeil(task.bytes, chunk);
    const LsAddr bufs[2] = {buf0_[w], buf1_[w]};

    auto chunk_size = [&](std::uint64_t c) {
        return static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk, task.bytes - c * chunk));
    };

    // Prefetch chunk 0.
    co_await mfc.queueSpace();
    mfc.get(bufs[0], task.input, chunk_size(0), 0);

    std::vector<std::uint8_t> scratch(chunk);
    for (std::uint64_t c = 0; c < n; ++c) {
        unsigned cur = params_.doubleBuffer
                           ? static_cast<unsigned>(c % 2)
                           : 0u;
        unsigned nxt = 1 - cur;
        // Kick off the next chunk's GET before waiting on this one,
        // so the transfer overlaps this chunk's compute.
        if (params_.doubleBuffer && c + 1 < n) {
            co_await mfc.queueSpace();
            mfc.get(bufs[nxt], task.input + (c + 1) * chunk,
                    chunk_size(c + 1), nxt);
        }
        // The tag also covers the previous PUT from this buffer, so
        // waiting here both lands the input and frees the buffer.
        co_await mfc.tagWait(1u << cur);

        std::uint32_t bytes = chunk_size(c);
        s.ls().read(bufs[cur], scratch.data(), bytes);
        task.kernel(scratch.data(), bytes);
        s.ls().write(bufs[cur], scratch.data(), bytes);
        co_await s.spu().cycles(task.computeCyclesPerKiB *
                                util::divCeil(bytes, util::KiB));

        co_await mfc.queueSpace();
        mfc.put(bufs[cur], task.output + c * chunk, bytes, cur);
        if (!params_.doubleBuffer) {
            co_await mfc.tagWait(1u << cur);
            if (c + 1 < n) {
                co_await mfc.queueSpace();
                mfc.get(bufs[0], task.input + (c + 1) * chunk,
                        chunk_size(c + 1), 0);
            }
        }
        ws.bytesIn += bytes;
        ws.bytesOut += bytes;
        ++ws.chunks;
    }
    co_await mfc.tagWait((1u << 0) | (1u << 1));
}

sim::Task
OffloadRuntime::worker(unsigned w)
{
    auto &s = sys_.spe(w);
    WorkerStats &ws = stats_.worker[w];
    while (true) {
        std::uint32_t id = co_await s.inboundMailbox().read();
        if (id == stopToken)
            break;
        Tick t0 = sys_.now();
        co_await processTask(w, tasks_[id], ws);
        ws.busyTicks += sys_.now() - t0;
        ++ws.tasks;
        ++stats_.tasksCompleted;
        stats_.lastCompletion = sys_.now();
    }
}

double
OffloadRuntime::throughputGBps() const
{
    std::uint64_t bytes = 0;
    for (const auto &w : stats_.worker)
        bytes += w.bytesIn;
    Tick span = stats_.makespan();
    if (span == 0)
        return 0.0;
    return sys_.clock().bandwidthGBps(bytes, span);
}

} // namespace cellbw::runtime
