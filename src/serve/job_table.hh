/**
 * @file
 * The daemon's job table: every admitted experiment request as a
 * tracked, waitable unit.
 *
 * A Job is one *distinct* piece of work — (experiment, canonical
 * config), identified by the same content hash the result cache uses.
 * Requests that coalesce onto an in-flight job (see serve::Coalescer)
 * share the Job object and block on its condition variable; when the
 * run finishes, the result fans out to every waiter at once.
 *
 * Jobs survive completion: `GET /jobs/<id>` answers for async
 * (`"wait": false`) clients polling for their result, so the table
 * keeps finished jobs until the daemon exits.  Report bytes are held
 * by shared_ptr so a job that outlives its cache entry still serves
 * the exact bytes its run produced.
 */

#ifndef CELLBW_SERVE_JOB_TABLE_HH
#define CELLBW_SERVE_JOB_TABLE_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cellbw::serve
{

struct Job
{
    enum class State { Queued, Running, Done, Failed };

    /** Table-assigned id ("j1", "j2", ...). */
    std::string id;
    /** Experiment name (registry key). */
    std::string experiment;
    /** Request flags, exactly as received (without the name). */
    std::vector<std::string> args;
    /** Fairness identity of the submitting client. */
    std::string client;
    /** Result-cache identity of the canonical config. */
    std::string key;
    std::string material;

    /** @name Mutable state; guarded by @ref mutex. */
    /** @{ */
    State state = State::Queued;
    bool hit = false;           ///< answered from the cache, no run
    unsigned coalesced = 0;     ///< requests that attached to this job
    std::string error;          ///< non-empty iff Failed
    /** The finished report, byte-identical to `cellbw run --json`. */
    std::shared_ptr<const std::string> report;
    /** @} */

    std::mutex mutex;
    std::condition_variable cv;

    /** Block until the job is Done or Failed; returns the state. */
    State await();

    /** Publish a result (or failure) and wake every waiter. */
    void finish(State s, std::shared_ptr<const std::string> bytes,
                std::string err);

    static const char *stateName(State s);
};

class JobTable
{
  public:
    /** Create and register a job; the id is assigned here. */
    std::shared_ptr<Job> create(std::string experiment,
                                std::vector<std::string> args,
                                std::string client, std::string key,
                                std::string material);

    /** Lookup by id; nullptr when unknown. */
    std::shared_ptr<Job> find(const std::string &id) const;

    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::uint64_t next_ = 0;
    std::map<std::string, std::shared_ptr<Job>> jobs_;
};

} // namespace cellbw::serve

#endif // CELLBW_SERVE_JOB_TABLE_HH
