#include "serve/connection.hh"

#include <cctype>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "serve/server.hh"
#include "util/strings.hh"

namespace cellbw::serve
{

std::string
HttpRequest::header(const std::string &name, const std::string &def) const
{
    auto it = headers.find(util::toLower(name));
    return it == headers.end() ? def : it->second;
}

ParseStatus
parseHttpRequest(const std::string &data, HttpRequest &out,
                 std::size_t &consumed)
{
    const std::size_t headerEnd = data.find("\r\n\r\n");
    if (headerEnd == std::string::npos) {
        return data.size() > kMaxHeaderBytes ? ParseStatus::TooLarge
                                             : ParseStatus::NeedMore;
    }
    if (headerEnd > kMaxHeaderBytes)
        return ParseStatus::TooLarge;

    HttpRequest req;
    const std::string head = data.substr(0, headerEnd);
    const auto lines = util::split(head, '\n');
    if (lines.empty())
        return ParseStatus::Bad;

    // Request line: METHOD SP TARGET SP VERSION.
    {
        const std::string line = util::trim(lines[0]);
        const auto firstSp = line.find(' ');
        const auto lastSp = line.rfind(' ');
        if (firstSp == std::string::npos || lastSp == firstSp)
            return ParseStatus::Bad;
        req.method = line.substr(0, firstSp);
        req.target = util::trim(
            line.substr(firstSp + 1, lastSp - firstSp - 1));
        req.version = line.substr(lastSp + 1);
        if (req.method.empty() || req.target.empty() ||
            req.target[0] != '/' ||
            req.version.rfind("HTTP/1.", 0) != 0)
            return ParseStatus::Bad;
    }

    for (std::size_t i = 1; i < lines.size(); ++i) {
        const std::string line = util::trim(lines[i]);
        if (line.empty())
            continue;
        const auto colon = line.find(':');
        if (colon == std::string::npos || colon == 0)
            return ParseStatus::Bad;
        req.headers[util::toLower(util::trim(line.substr(0, colon)))] =
            util::trim(line.substr(colon + 1));
    }

    std::size_t contentLength = 0;
    {
        const std::string cl = req.header("content-length", "0");
        try {
            contentLength =
                static_cast<std::size_t>(util::parseUint64(cl));
        } catch (const std::exception &) {
            return ParseStatus::Bad;
        }
    }
    if (contentLength > kMaxBodyBytes)
        return ParseStatus::TooLarge;

    const std::size_t bodyStart = headerEnd + 4;
    if (data.size() - bodyStart < contentLength)
        return ParseStatus::NeedMore;

    req.body = data.substr(bodyStart, contentLength);
    consumed = bodyStart + contentLength;
    out = std::move(req);
    return ParseStatus::Ok;
}

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default:  return "Status";
    }
}

std::string
renderHttpResponse(const HttpResponse &resp)
{
    std::string out = util::format("HTTP/1.1 %d %s\r\n", resp.status,
                                   statusText(resp.status));
    out += "Content-Type: " + resp.contentType + "\r\n";
    out += util::format("Content-Length: %zu\r\n", resp.body.size());
    for (const auto &h : resp.headers)
        out += h.first + ": " + h.second + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += resp.body;
    return out;
}

namespace
{

void
writeAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return;         // client went away; nothing to salvage
        }
        off += static_cast<std::size_t>(n);
    }
}

void
sendError(int fd, int status, const std::string &message)
{
    HttpResponse resp;
    resp.status = status;
    resp.body = "{\"error\": \"" + message + "\"}\n";
    writeAll(fd, renderHttpResponse(resp));
}

} // namespace

void
serveConnection(int fd, const std::string &peer, Server &server)
{
    // A stalled or dead client must not pin this thread forever; runs
    // themselves can take arbitrarily long, but *reading the request*
    // cannot.
    struct timeval tv;
    tv.tv_sec = 30;
    tv.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    std::string buf;
    HttpRequest req;
    std::size_t consumed = 0;
    for (;;) {
        char chunk[1 << 14];
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            ::close(fd);    // EOF or timeout before a full request
            return;
        }
        buf.append(chunk, static_cast<std::size_t>(n));
        const ParseStatus st = parseHttpRequest(buf, req, consumed);
        if (st == ParseStatus::NeedMore)
            continue;
        if (st == ParseStatus::Bad) {
            sendError(fd, 400, "malformed HTTP request");
            ::close(fd);
            return;
        }
        if (st == ParseStatus::TooLarge) {
            sendError(fd, 413, "request too large");
            ::close(fd);
            return;
        }
        break;              // Ok
    }

    const HttpResponse resp = server.route(req, peer);
    writeAll(fd, renderHttpResponse(resp));
    ::close(fd);
}

} // namespace cellbw::serve
