#include "serve/coalescer.hh"

namespace cellbw::serve
{

std::pair<std::shared_ptr<Job>, bool>
Coalescer::admit(const std::shared_ptr<Job> &job)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(job->key);
    if (it != inflight_.end()) {
        std::lock_guard<std::mutex> jobLock(it->second->mutex);
        ++it->second->coalesced;
        return {it->second, false};
    }
    inflight_.emplace(job->key, job);
    return {job, true};
}

void
Coalescer::finished(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
}

std::size_t
Coalescer::inflight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inflight_.size();
}

bool
FairQueue::push(std::shared_ptr<Job> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return false;
        auto &fifo = perClient_[job->client];
        if (fifo.empty())
            rotation_.push_back(job->client);
        fifo.push_back(std::move(job));
    }
    cv_.notify_one();
    return true;
}

std::shared_ptr<Job>
FairQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !rotation_.empty(); });
    if (rotation_.empty())
        return nullptr;         // closed and drained
    const std::string client = std::move(rotation_.front());
    rotation_.pop_front();
    auto fifoIt = perClient_.find(client);
    auto job = std::move(fifoIt->second.front());
    fifoIt->second.pop_front();
    if (fifoIt->second.empty())
        perClient_.erase(fifoIt);
    else
        rotation_.push_back(client);    // back of the rotation
    return job;
}

void
FairQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::size_t
FairQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &kv : perClient_)
        n += kv.second.size();
    return n;
}

} // namespace cellbw::serve
