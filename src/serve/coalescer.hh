/**
 * @file
 * Request coalescing and per-client fair scheduling.
 *
 * Coalescer — at most one in-flight Job per cache key.  Identical
 * configs hash to the same core::ResultCache key, so "the same
 * request" is exact, not heuristic.  The first cold request registers
 * its job; every later identical request (until the run finishes)
 * attaches to that job and shares its result.  Combined with the
 * runner's start-of-run cache re-probe this gives an exactly-once
 * guarantee per process: for any number of concurrent identical cold
 * requests, the simulator runs once and the result fans out.
 *
 * FairQueue — the daemon's pending-run queue with per-client FIFO
 * fairness: one FIFO per client identity, served round-robin, so a
 * client that floods the queue with N configs cannot starve another
 * client's single request behind all N.  Each client's own requests
 * still run in their submission order.
 */

#ifndef CELLBW_SERVE_COALESCER_HH
#define CELLBW_SERVE_COALESCER_HH

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/job_table.hh"

namespace cellbw::serve
{

class Coalescer
{
  public:
    /**
     * Admit @p job under its key.  If an identical job is already
     * in flight, returns it (the caller's job object is discarded and
     * the in-flight job's coalesced count is bumped); otherwise
     * registers @p job and returns it.  The bool is true when @p job
     * itself was admitted (the caller must schedule it and later call
     * finished()).
     */
    std::pair<std::shared_ptr<Job>, bool>
    admit(const std::shared_ptr<Job> &job);

    /**
     * Unregister the in-flight job for @p key.  Must be called only
     * after the job's result is visible wherever later requests will
     * look first (the result cache), so a request that misses the
     * coalescer re-finds the result there instead of re-running.
     */
    void finished(const std::string &key);

    std::size_t inflight() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<Job>> inflight_;
};

class FairQueue
{
  public:
    /**
     * Append @p job to its client's FIFO.  @return false (job not
     * queued) once close() has been called.
     */
    bool push(std::shared_ptr<Job> job);

    /**
     * Pop the next job in round-robin client order; blocks while the
     * queue is open and empty.  @return nullptr once closed and
     * drained.
     */
    std::shared_ptr<Job> pop();

    /** Stop accepting; pop() drains what is queued, then nullptr. */
    void close();

    std::size_t depth() const;

  private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool closed_ = false;
    /** Client identity -> that client's pending jobs, oldest first. */
    std::map<std::string, std::deque<std::shared_ptr<Job>>> perClient_;
    /** Round-robin order; clients are appended on first use and
     *  removed when their FIFO empties. */
    std::deque<std::string> rotation_;
};

} // namespace cellbw::serve

#endif // CELLBW_SERVE_COALESCER_HH
