#include "serve/server.hh"

#include <cerrno>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/experiment_registry.hh"
#include "stats/json_writer.hh"
#include "util/file.hh"
#include "util/json.hh"
#include "util/strings.hh"

namespace cellbw::serve
{

namespace
{

HttpResponse
makeError(int status, const std::string &message)
{
    HttpResponse resp;
    resp.status = status;
    stats::JsonWriter w;
    w.beginObject();
    w.key("error").value(message);
    w.endObject();
    resp.body = w.str() + "\n";
    return resp;
}

} // namespace

Server::Server(ServeSpec spec)
    : spec_(std::move(spec)), cache_(spec_.cacheDir), pool_(spec_.jobs)
{
    if (spec_.active == 0)
        spec_.active = 1;
}

Server::~Server()
{
    beginShutdown();
    for (auto &t : runners_) {
        if (t.joinable())
            t.join();
    }
    pool_.shutdown();
    std::map<std::uint64_t, std::thread> taken;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        taken.swap(connections_);
        finishedConnections_.clear();
    }
    for (auto &kv : taken) {
        if (kv.second.joinable())
            kv.second.join();
    }
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (int fd : wakePipe_) {
        if (fd >= 0)
            ::close(fd);
    }
}

bool
Server::start()
{
    std::error_code ec;
    std::filesystem::create_directories(spec_.spoolDir, ec);
    if (ec) {
        std::fprintf(stderr, "cellbw serve: cannot create spool %s: %s\n",
                     spec_.spoolDir.c_str(), ec.message().c_str());
        return false;
    }

    if (::pipe(wakePipe_) != 0) {
        std::perror("cellbw serve: pipe");
        return false;
    }

    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0) {
        std::perror("cellbw serve: socket");
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(spec_.port);
    if (::inet_pton(AF_INET, spec_.host.c_str(), &addr.sin_addr) != 1) {
        std::fprintf(stderr, "cellbw serve: bad bind address '%s'\n",
                     spec_.host.c_str());
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        std::fprintf(stderr, "cellbw serve: cannot bind %s:%u: %s\n",
                     spec_.host.c_str(), unsigned(spec_.port),
                     std::strerror(errno));
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        std::perror("cellbw serve: listen");
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        boundPort_ = ntohs(addr.sin_port);

    if (!spec_.portFile.empty() &&
        !util::writeFileAtomic(spec_.portFile,
                               std::to_string(boundPort_) + "\n")) {
        std::fprintf(stderr, "cellbw serve: cannot write %s\n",
                     spec_.portFile.c_str());
        return false;
    }

    runners_.reserve(spec_.active);
    for (unsigned i = 0; i < spec_.active; ++i)
        runners_.emplace_back([this] { runnerLoop(); });

    std::printf("cellbw serve: listening on http://%s:%u "
                "(pool %u workers, %u active runs, cache %s%s)\n",
                spec_.host.c_str(), unsigned(boundPort_),
                pool_.workers(), spec_.active, spec_.cacheDir.c_str(),
                spec_.useCache ? "" : " disabled");
    std::fflush(stdout);
    return true;
}

void
Server::beginShutdown()
{
    if (draining_.exchange(true, std::memory_order_acq_rel))
        return;
    queue_.close();
    if (wakePipe_[1] >= 0) {
        char b = 'w';
        [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &b, 1);
    }
}

int
Server::run()
{
    pollfd fds[2];
    fds[0].fd = listenFd_;
    fds[0].events = POLLIN;
    fds[1].fd = wakePipe_[0];
    fds[1].events = POLLIN;

    for (;;) {
        fds[0].revents = fds[1].revents = 0;
        // The timeout bounds how stale the finished-connection reap
        // can get; the wake pipe makes shutdown prompt regardless.
        int rc = ::poll(fds, 2, 500);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            std::perror("cellbw serve: poll");
            break;
        }
        reapConnections(false);
        if (fds[1].revents & POLLIN)
            break;          // signal or beginShutdown(): drain
        if (!(fds[0].revents & POLLIN))
            continue;

        sockaddr_in peer;
        socklen_t len = sizeof(peer);
        int fd = ::accept(listenFd_, reinterpret_cast<sockaddr *>(&peer),
                          &len);
        if (fd < 0)
            continue;
        char ip[INET_ADDRSTRLEN] = "?";
        ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
        spawnConnection(fd, ip);
    }

    beginShutdown();
    ::close(listenFd_);
    listenFd_ = -1;
    logf("cellbw serve: draining (%zu queued, %zu in flight)\n",
         queue_.depth(), coalescer_.inflight());

    // Order matters: runners drain the queued jobs (clients blocked in
    // await() get their bytes), then the pool has no submitters left
    // and can join, then every connection thread has a response written
    // and exits.
    for (auto &t : runners_) {
        if (t.joinable())
            t.join();
    }
    pool_.shutdown();
    reapConnections(true);

    std::printf("cellbw serve: drained; %llu runs, %llu cache hits, "
                "%llu coalesced, %zu jobs\n",
                (unsigned long long)metrics_.counter("serve.runs")
                    .value(),
                (unsigned long long)metrics_.counter("serve.cache_hits")
                    .value(),
                (unsigned long long)metrics_.counter("serve.coalesced")
                    .value(),
                jobs_.size());
    std::fflush(stdout);
    return 0;
}

void
Server::spawnConnection(int fd, std::string peer)
{
    std::lock_guard<std::mutex> lock(connMutex_);
    const std::uint64_t id = nextConnection_++;
    connections_.emplace(
        id, std::thread([this, fd, peer = std::move(peer), id] {
            serveConnection(fd, peer, *this);
            std::lock_guard<std::mutex> lk(connMutex_);
            finishedConnections_.push_back(id);
        }));
}

void
Server::reapConnections(bool all)
{
    std::vector<std::thread> done;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        if (all) {
            for (auto &kv : connections_)
                done.push_back(std::move(kv.second));
            connections_.clear();
        } else {
            for (std::uint64_t id : finishedConnections_) {
                auto it = connections_.find(id);
                if (it == connections_.end())
                    continue;
                done.push_back(std::move(it->second));
                connections_.erase(it);
            }
        }
        finishedConnections_.clear();
    }
    for (auto &t : done) {
        if (t.joinable())
            t.join();
    }
}

HttpResponse
Server::route(const HttpRequest &req, const std::string &peer)
{
    metrics_.counter("serve.requests").increment();

    // Strip any query string; the API is path-addressed.
    std::string target = req.target;
    if (auto q = target.find('?'); q != std::string::npos)
        target.erase(q);

    HttpResponse resp;
    if (target == "/healthz") {
        resp = req.method == "GET" ? handleHealth()
                                   : makeError(405, "use GET");
    } else if (target == "/experiments") {
        resp = req.method == "GET" ? handleExperiments()
                                   : makeError(405, "use GET");
    } else if (target == "/metrics") {
        resp = req.method == "GET" ? handleMetrics()
                                   : makeError(405, "use GET");
    } else if (target == "/run") {
        resp = req.method == "POST" ? handleRun(req, peer)
                                    : makeError(405, "use POST");
    } else if (target.rfind("/jobs/", 0) == 0) {
        resp = req.method == "GET" ? handleJob(target.substr(6))
                                   : makeError(405, "use GET");
    } else {
        resp = makeError(404, "no such endpoint");
    }

    metrics_
        .counter(util::format("serve.http_%dxx", resp.status / 100))
        .increment();
    metrics_.counter("serve.bytes_served").add(resp.body.size());
    return resp;
}

HttpResponse
Server::handleHealth() const
{
    stats::JsonWriter w;
    w.beginObject();
    w.key("status").value("ok");
    w.key("draining").value(draining());
    w.endObject();
    HttpResponse resp;
    resp.body = w.str() + "\n";
    return resp;
}

HttpResponse
Server::handleExperiments() const
{
    stats::JsonWriter w;
    w.beginObject();
    w.key("experiments").beginArray();
    for (const core::Experiment *e :
         core::ExperimentRegistry::instance().sorted()) {
        w.beginObject();
        w.key("name").value(e->name);
        w.key("figure").value(e->figure);
        w.key("description").value(e->description);
        w.key("backend").value(core::toString(e->backend));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    HttpResponse resp;
    resp.body = w.str() + "\n";
    return resp;
}

HttpResponse
Server::handleMetrics()
{
    metrics_.gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.depth()));
    metrics_.gauge("serve.inflight_keys")
        .set(static_cast<double>(coalescer_.inflight()));
    metrics_.gauge("serve.jobs_total")
        .set(static_cast<double>(jobs_.size()));
    metrics_.gauge("serve.draining").set(draining() ? 1.0 : 0.0);
    stats::JsonWriter w;
    metrics_.writeJson(w);
    HttpResponse resp;
    resp.body = w.str() + "\n";
    return resp;
}

HttpResponse
Server::handleRun(const HttpRequest &req, const std::string &peer)
{
    if (draining()) {
        metrics_.counter("serve.rejected_draining").increment();
        return makeError(503, "draining: not accepting new runs");
    }

    util::JsonValue body;
    std::string perr;
    if (req.body.empty() ||
        !util::JsonValue::parse(req.body, body, perr) ||
        !body.isObject())
        return makeError(400, "request body must be a JSON object");

    const std::string name = body.strOr("experiment", "");
    if (name.empty())
        return makeError(400, "missing \"experiment\"");

    std::vector<std::string> args;
    if (const util::JsonValue *a = body.find("args")) {
        if (!a->isArray())
            return makeError(400, "\"args\" must be an array of strings");
        for (const util::JsonValue &v : a->array()) {
            if (!v.isString())
                return makeError(
                    400, "\"args\" must be an array of strings");
            args.push_back(v.str());
        }
    }
    for (const auto &a : args) {
        // The server owns report output, and --help would turn a run
        // into a usage dump.
        if (a == "--json" || a.rfind("--json=", 0) == 0 ||
            a == "--help" || a == "-h")
            return makeError(400, "flag not allowed here: " + a);
    }

    const bool wait = body.boolOr("wait", true);
    const std::string client =
        body.strOr("client", req.header("x-cellbw-client", peer));

    const core::Experiment *e =
        core::ExperimentRegistry::instance().find(name);
    if (!e)
        return makeError(404, "unknown experiment '" + name +
                                  "' (see GET /experiments)");

    // An explicit "backend" in the request config must name a known
    // backend and match the experiment's registration.
    if (const util::JsonValue *b = body.find("backend")) {
        if (!b->isString())
            return makeError(400, "\"backend\" must be a string");
        core::Backend requested;
        if (!core::parseBackend(b->str(), requested)) {
            return makeError(
                400, "unknown backend '" + b->str() +
                         "' (known backends: " +
                         std::string(core::knownBackends()) + ")");
        }
        if (requested != e->backend) {
            return makeError(400, "experiment '" + name +
                                      "' runs on the " +
                                      core::toString(e->backend) +
                                      " backend, not '" + b->str() +
                                      "'");
        }
    }
    if (spec_.simOnly && e->backend == core::Backend::Native) {
        metrics_.counter("serve.rejected_native").increment();
        return makeError(403, "this daemon was started --sim-only; "
                              "native-backend experiments are "
                              "refused");
    }

    // Validate the flags and compute the canonical cache identity
    // through the exact parse path `cellbw run` uses.
    core::ExperimentContext ctx(e->name, e->description, e->backend);
    ctx.setQuiet(true);
    std::vector<std::string> argStore;
    argStore.push_back(e->name);
    for (const auto &a : args)
        argStore.push_back(a);
    std::vector<const char *> argv;
    argv.reserve(argStore.size());
    for (const auto &a : argStore)
        argv.push_back(a.c_str());
    if (!ctx.parse(static_cast<int>(argv.size()), argv.data()))
        return makeError(400, "invalid experiment flags");

    if (spec_.useCache && core::backendIsCacheable(e->backend)) {
        if (auto stored =
                cache_.load(ctx.cacheKey(), ctx.cacheMaterial())) {
            metrics_.counter("serve.cache_hits").increment();
            logf("  [hit ] %-20s %s client=%s\n", name.c_str(),
                 ctx.cacheKey().c_str(), client.c_str());
            HttpResponse resp;
            resp.body = std::move(*stored);
            resp.headers = {{"X-Cellbw-Cache", "hit"},
                            {"X-Cellbw-Key", ctx.cacheKey()}};
            return resp;
        }
    }

    auto fresh = jobs_.create(name, args, client, ctx.cacheKey(),
                              ctx.cacheMaterial());
    auto [job, admitted] = coalescer_.admit(fresh);
    if (admitted) {
        metrics_.counter("serve.jobs_created").increment();
        if (!queue_.push(job)) {
            // Drain began between the check above and here; the job
            // must fail loudly for anyone who already coalesced on it.
            job->finish(Job::State::Failed, nullptr,
                        "server is draining");
            coalescer_.finished(job->key);
            metrics_.counter("serve.rejected_draining").increment();
            return makeError(503, "draining: not accepting new runs");
        }
        logf("  [cold] %-20s %s job=%s client=%s\n", name.c_str(),
             job->key.c_str(), job->id.c_str(), client.c_str());
    } else {
        metrics_.counter("serve.coalesced").increment();
        logf("  [coal] %-20s %s -> job=%s client=%s\n", name.c_str(),
             job->key.c_str(), job->id.c_str(), client.c_str());
    }

    if (!wait) {
        Job::State state;
        {
            std::lock_guard<std::mutex> lock(job->mutex);
            state = job->state;
        }
        HttpResponse resp;
        resp.status = 202;
        stats::JsonWriter w;
        w.beginObject();
        w.key("job").value(job->id);
        w.key("state").value(Job::stateName(state));
        w.endObject();
        resp.body = w.str() + "\n";
        resp.headers = {{"X-Cellbw-Job", job->id}};
        return resp;
    }

    job->await();
    return jobOutcome(job, admitted ? "miss" : "coalesced");
}

HttpResponse
Server::jobOutcome(const std::shared_ptr<Job> &job,
                   const char *cacheDisposition)
{
    std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state == Job::State::Done) {
        HttpResponse resp;
        resp.body = *job->report;
        resp.headers = {
            {"X-Cellbw-Cache", job->hit ? "hit" : cacheDisposition},
            {"X-Cellbw-Key", job->key},
            {"X-Cellbw-Job", job->id}};
        return resp;
    }
    HttpResponse resp = makeError(500, job->error.empty()
                                           ? "run failed"
                                           : job->error);
    resp.headers = {{"X-Cellbw-Job", job->id}};
    return resp;
}

HttpResponse
Server::handleJob(const std::string &rest) const
{
    std::string id = rest;
    std::string sub;
    if (auto slash = rest.find('/'); slash != std::string::npos) {
        id = rest.substr(0, slash);
        sub = rest.substr(slash + 1);
    }
    auto job = jobs_.find(id);
    if (!job)
        return makeError(404, "unknown job '" + id + "'");

    std::lock_guard<std::mutex> lock(job->mutex);
    if (sub == "report") {
        if (job->state == Job::State::Done) {
            HttpResponse resp;
            resp.body = *job->report;
            resp.headers = {{"X-Cellbw-Key", job->key},
                            {"X-Cellbw-Job", job->id}};
            return resp;
        }
        if (job->state == Job::State::Failed)
            return makeError(500, job->error);
        return makeError(409, std::string("job is ") +
                                  Job::stateName(job->state));
    }
    if (!sub.empty())
        return makeError(404, "no such job endpoint");

    stats::JsonWriter w;
    w.beginObject();
    w.key("job").value(job->id);
    w.key("experiment").value(job->experiment);
    w.key("state").value(Job::stateName(job->state));
    w.key("client").value(job->client);
    w.key("key").value(job->key);
    w.key("hit").value(job->hit);
    w.key("coalesced").value(job->coalesced);
    w.key("error").value(job->error);
    if (job->state == Job::State::Done)
        w.key("report").value("/jobs/" + job->id + "/report");
    w.endObject();
    HttpResponse resp;
    resp.body = w.str() + "\n";
    return resp;
}

void
Server::runnerLoop()
{
    while (auto job = queue_.pop())
        runJob(job);
}

void
Server::runJob(const std::shared_ptr<Job> &job)
{
    {
        std::lock_guard<std::mutex> lock(job->mutex);
        job->state = Job::State::Running;
    }

    const core::Experiment *e =
        core::ExperimentRegistry::instance().find(job->experiment);
    if (!e) {
        // handleRun only admits registered names; the registry is
        // immutable after static init, so this cannot happen.
        job->finish(Job::State::Failed, nullptr,
                    "experiment vanished from the registry");
        coalescer_.finished(job->key);
        return;
    }

    // Exactly-once guard: a request probes the cache *before* it wins
    // the coalescer slot, so an identical run finishing in that window
    // (store -> coalescer.finished) would be invisible to it.  The
    // store is ordered before finished(), so re-probing here after
    // winning the slot closes the window: either we see the entry, or
    // no identical run has completed and we are the one run.  Native
    // jobs skip this (nothing is ever stored for them): coalescing
    // still dedups concurrent identical requests, but every fresh
    // request measures.
    if (spec_.useCache && core::backendIsCacheable(e->backend)) {
        if (auto stored = cache_.load(job->key, job->material)) {
            metrics_.counter("serve.cache_hits").increment();
            {
                std::lock_guard<std::mutex> lock(job->mutex);
                job->hit = true;
            }
            job->finish(Job::State::Done,
                        std::make_shared<const std::string>(
                            std::move(*stored)),
                        "");
            coalescer_.finished(job->key);
            return;
        }
    }
    const std::string reportPath =
        spec_.spoolDir + "/" + job->id + ".json";

    std::vector<std::string> argStore;
    argStore.push_back(job->experiment);
    for (const auto &a : job->args)
        argStore.push_back(a);
    argStore.push_back("--json");
    argStore.push_back(reportPath);
    std::vector<const char *> argv;
    argv.reserve(argStore.size());
    for (const auto &a : argStore)
        argv.push_back(a.c_str());

    std::string err;
    core::ExperimentContext ctx(e->name, e->description, e->backend);
    ctx.setQuiet(true);
    if (!ctx.parse(static_cast<int>(argv.size()), argv.data())) {
        err = "flag parse failed";
    } else {
        if (spec_.useCache)
            ctx.attachCache(&cache_);
        ctx.par.pool = &pool_;
        try {
            int rc = e->body(ctx);
            if (rc != 0)
                err = util::format("exit code %d", rc);
        } catch (const std::exception &ex) {
            err = ex.what();
        }
    }

    std::string bytes;
    if (err.empty() && !util::readFile(reportPath, bytes))
        err = "cannot read report " + reportPath;

    if (!err.empty()) {
        metrics_.counter("serve.failures").increment();
        logf("  [fail] %-20s job=%s: %s\n", job->experiment.c_str(),
             job->id.c_str(), err.c_str());
        job->finish(Job::State::Failed, nullptr, std::move(err));
        coalescer_.finished(job->key);
        return;
    }

    metrics_.counter("serve.runs").increment();
    logf("  [run ] %-20s %s job=%s\n", job->experiment.c_str(),
         job->key.c_str(), job->id.c_str());
    job->finish(Job::State::Done,
                std::make_shared<const std::string>(std::move(bytes)),
                "");
    // Only after the result is in the cache (ctx.finish() stored it
    // inside body()) and published on the job may the in-flight slot
    // disappear — that ordering is what makes the re-probe above an
    // exactly-once guarantee.
    coalescer_.finished(job->key);

    if (spec_.useCache && spec_.cacheMaxBytes > 0)
        cache_.prune(spec_.cacheMaxBytes);
}

void
Server::logf(const char *fmt, ...)
{
    if (spec_.terse)
        return;
    static std::mutex logMutex;
    std::lock_guard<std::mutex> lock(logMutex);
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
    std::fflush(stdout);
}

namespace
{

std::atomic<int> g_wakeFd{-1};

void
onShutdownSignal(int)
{
    int fd = g_wakeFd.load(std::memory_order_acquire);
    if (fd >= 0) {
        char b = 's';
        [[maybe_unused]] ssize_t n = ::write(fd, &b, 1);
    }
}

} // namespace

int
runServe(const ServeSpec &spec)
{
    Server server(spec);
    if (!server.start())
        return 2;

    // SIGTERM/SIGINT begin a graceful drain via the wake pipe (the
    // only async-signal-safe handoff); SIGPIPE from half-closed
    // clients is handled per-send with MSG_NOSIGNAL, but ignore it
    // globally too in case a write sneaks in elsewhere.
    g_wakeFd.store(server.wakeFd(), std::memory_order_release);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    struct sigaction oldTerm, oldInt, oldPipe, ignPipe;
    std::memset(&ignPipe, 0, sizeof(ignPipe));
    ignPipe.sa_handler = SIG_IGN;
    sigemptyset(&ignPipe.sa_mask);
    ::sigaction(SIGTERM, &sa, &oldTerm);
    ::sigaction(SIGINT, &sa, &oldInt);
    ::sigaction(SIGPIPE, &ignPipe, &oldPipe);

    int rc = server.run();

    ::sigaction(SIGTERM, &oldTerm, nullptr);
    ::sigaction(SIGINT, &oldInt, nullptr);
    ::sigaction(SIGPIPE, &oldPipe, nullptr);
    g_wakeFd.store(-1, std::memory_order_release);
    return rc;
}

} // namespace cellbw::serve
