/**
 * @file
 * HTTP/1.1 wire handling for the serve daemon: one accepted socket,
 * one thread, a hand-rolled request parser and response writer.
 *
 * The daemon speaks just enough HTTP for JSON tooling and `curl`:
 * request line + headers + optional Content-Length body in, status
 * line + headers + body out, `Connection: close` on every response
 * (one request per connection keeps the concurrency model trivial —
 * a connection thread's lifetime is one request's lifetime, and the
 * drain path only has to wait for threads, never for idle keep-alive
 * sockets).  Parsing is incremental over a byte buffer so it can be
 * unit-tested without sockets, with hard caps on header and body
 * size so a hostile client cannot balloon the daemon.
 */

#ifndef CELLBW_SERVE_CONNECTION_HH
#define CELLBW_SERVE_CONNECTION_HH

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace cellbw::serve
{

struct HttpRequest
{
    std::string method;     ///< "GET", "POST", ... (as sent)
    std::string target;     ///< request target, e.g. "/jobs/j1"
    std::string version;    ///< "HTTP/1.1"
    /** Header fields; names lower-cased, values trimmed. */
    std::map<std::string, std::string> headers;
    std::string body;

    /** Header value or @p def. */
    std::string header(const std::string &name,
                       const std::string &def = "") const;
};

struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    /** Extra response headers (name, value). */
    std::vector<std::pair<std::string, std::string>> headers;
};

enum class ParseStatus
{
    NeedMore,   ///< incomplete; feed more bytes
    Ok,         ///< one request parsed; @p consumed bytes used
    Bad,        ///< malformed request line/headers/length
    TooLarge,   ///< header block or body exceeds the cap
};

/** Header block cap (request line + headers). */
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
/** Body cap. */
constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

/**
 * Try to parse one complete request from the front of @p data.
 * On Ok, @p out is filled and @p consumed says how many bytes the
 * request used.  NeedMore leaves both untouched.
 */
ParseStatus parseHttpRequest(const std::string &data, HttpRequest &out,
                             std::size_t &consumed);

/** Render a full response (status line, headers, body). */
std::string renderHttpResponse(const HttpResponse &resp);

/** Standard reason phrase for @p status ("OK", "Not Found", ...). */
const char *statusText(int status);

class Server;

/**
 * Serve one accepted socket: read a request (bounded, with a receive
 * timeout), route it through @p server, write the response, close.
 * Takes ownership of @p fd.
 */
void serveConnection(int fd, const std::string &peer, Server &server);

} // namespace cellbw::serve

#endif // CELLBW_SERVE_CONNECTION_HH
