#include "serve/job_table.hh"

namespace cellbw::serve
{

Job::State
Job::await()
{
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] {
        return state == State::Done || state == State::Failed;
    });
    return state;
}

void
Job::finish(State s, std::shared_ptr<const std::string> bytes,
            std::string err)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        state = s;
        report = std::move(bytes);
        error = std::move(err);
    }
    cv.notify_all();
}

const char *
Job::stateName(State s)
{
    switch (s) {
      case State::Queued:  return "queued";
      case State::Running: return "running";
      case State::Done:    return "done";
      case State::Failed:  return "failed";
    }
    return "?";
}

std::shared_ptr<Job>
JobTable::create(std::string experiment, std::vector<std::string> args,
                 std::string client, std::string key,
                 std::string material)
{
    auto job = std::make_shared<Job>();
    job->experiment = std::move(experiment);
    job->args = std::move(args);
    job->client = std::move(client);
    job->key = std::move(key);
    job->material = std::move(material);
    std::lock_guard<std::mutex> lock(mutex_);
    job->id = "j" + std::to_string(++next_);
    jobs_.emplace(job->id, job);
    return job;
}

std::shared_ptr<Job>
JobTable::find(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second;
}

std::size_t
JobTable::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.size();
}

} // namespace cellbw::serve
