/**
 * @file
 * `cellbw serve`: the experiment suite as a long-running daemon.
 *
 * A small hand-rolled HTTP/1.1 JSON API (no new dependencies) over the
 * exact backend the CLI uses — the experiment registry, the shared
 * core::WorkerPool, and the content-addressed core::ResultCache — so
 * a response body for a config is byte-identical to what
 * `cellbw run <exp> <flags> --json <file>` writes for that config, no
 * matter how many clients ask concurrently.
 *
 * Endpoints:
 *
 *   GET  /healthz            {"status":"ok","draining":bool}
 *   GET  /experiments        registered experiments (name/figure/desc)
 *   POST /run                {"experiment": "...", "args": [...],
 *                             "wait": true|false, "client": "..."}
 *                            200 report bytes (wait) | 202 {"job":id}
 *   GET  /jobs/<id>          job status document
 *   GET  /jobs/<id>/report   finished report bytes
 *   GET  /metrics            stats::MetricsRegistry snapshot
 *
 * Concurrency semantics (the real content of this subsystem):
 *
 *  - Warm requests answer straight from the ResultCache, refreshing
 *    LRU recency; X-Cellbw-Cache: hit.
 *  - Cold identical configs (same ResultCache material hash) coalesce
 *    onto ONE in-flight job whose result fans out to every waiter;
 *    the runner re-probes the cache after winning the coalescer slot,
 *    which closes the probe-then-admit race — per daemon process, a
 *    config runs the simulator exactly once no matter the interleaving.
 *  - Pending runs are scheduled with per-client FIFO fairness
 *    (round-robin across client identities; see serve::FairQueue)
 *    onto a bounded set of runner threads that share one WorkerPool
 *    for their seed sweeps.
 *  - `--cache-max-bytes` enforces the cache byte cap online: after
 *    every populating run the LRU prune() trims the cache under the
 *    cross-process advisory lock.
 *  - SIGTERM/SIGINT begin a graceful drain: new runs are rejected with
 *    503, queued and in-flight runs complete (waiting clients get
 *    their bytes), the worker pool is drained and joined, then the
 *    process exits 0.
 */

#ifndef CELLBW_SERVE_SERVER_HH
#define CELLBW_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/result_cache.hh"
#include "core/worker_pool.hh"
#include "serve/coalescer.hh"
#include "serve/connection.hh"
#include "serve/job_table.hh"
#include "stats/metrics.hh"

namespace cellbw::serve
{

struct ServeSpec
{
    /** Bind address. */
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (see Server::port()). */
    std::uint16_t port = 8080;
    /** When set, the bound port is written here (for scripts). */
    std::string portFile;
    /** Shared seed-sweep pool width; 0 = one per hardware thread. */
    unsigned jobs = 0;
    /** Experiment runs in flight at once (runner threads). */
    unsigned active = 2;
    /** Result-cache root. */
    std::string cacheDir = ".cellbw-cache";
    /** false disables lookup AND population. */
    bool useCache = true;
    /** Online LRU cache byte cap; 0 = unbounded. */
    std::uint64_t cacheMaxBytes = 0;
    /** Where per-job report files are written. */
    std::string spoolDir = "cellbw-serve-spool";
    /**
     * Refuse native-backend experiments (403): a shared daemon's
     * numbers should not depend on its own host load.
     */
    bool simOnly = false;
    /** Suppress per-request log lines. */
    bool terse = false;
};

class Server
{
  public:
    explicit Server(ServeSpec spec);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, start the runner threads.  @return false on
     * socket/filesystem errors (message on stderr).
     */
    bool start();

    /** The bound port (useful with spec.port == 0). */
    std::uint16_t port() const { return boundPort_; }

    /**
     * Accept and serve until beginShutdown(), then drain: runner
     * threads finish queued jobs, the pool joins, connection threads
     * complete.  @return the process exit code (0 on a clean drain).
     */
    int run();

    /**
     * Start a graceful drain; safe from any thread (but NOT from a
     * signal handler — handlers should write to wakeFd() instead).
     * Idempotent.
     */
    void beginShutdown();

    /**
     * A pipe write end; writing one byte wakes the accept loop and
     * triggers beginShutdown().  Async-signal-safe to write to.
     */
    int wakeFd() const { return wakePipe_[1]; }

    /** True once a drain has begun (new runs are rejected with 503). */
    bool draining() const
    {
        return draining_.load(std::memory_order_acquire);
    }

    /**
     * Route one parsed request to a response.  Public so tests can
     * exercise the API surface without sockets; connection threads
     * call it for every accepted request.  Blocks for
     * `{"wait": true}` runs.
     */
    HttpResponse route(const HttpRequest &req, const std::string &peer);

    stats::MetricsRegistry &metrics() { return metrics_; }

  private:
    HttpResponse handleRun(const HttpRequest &req,
                           const std::string &peer);
    HttpResponse handleJob(const std::string &rest) const;
    HttpResponse handleMetrics();
    HttpResponse handleExperiments() const;
    HttpResponse handleHealth() const;

    /** Detach one accepted socket onto its own connection thread. */
    void spawnConnection(int fd, std::string peer);

    /** Join finished connection threads (@p all joins every one). */
    void reapConnections(bool all);

    /** Runner-thread body: pop fairly, run jobs until closed. */
    void runnerLoop();

    /** Execute one cold job end to end (cache re-probe, run, fan out). */
    void runJob(const std::shared_ptr<Job> &job);

    /** Respond with a finished job's outcome. */
    static HttpResponse jobOutcome(const std::shared_ptr<Job> &job,
                                   const char *cacheDisposition);

    void logf(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    ServeSpec spec_;
    core::ResultCache cache_;
    core::WorkerPool pool_;
    JobTable jobs_;
    Coalescer coalescer_;
    FairQueue queue_;
    stats::MetricsRegistry metrics_;

    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    std::uint16_t boundPort_ = 0;
    std::atomic<bool> draining_{false};

    std::vector<std::thread> runners_;

    /** Live connection threads, reaped as they finish. */
    std::mutex connMutex_;
    std::map<std::uint64_t, std::thread> connections_;
    std::vector<std::uint64_t> finishedConnections_;
    std::uint64_t nextConnection_ = 0;
};

/**
 * The `cellbw serve` entry point: wire SIGTERM/SIGINT to a graceful
 * drain, start the server, block until it exits.
 */
int runServe(const ServeSpec &spec);

} // namespace cellbw::serve

#endif // CELLBW_SERVE_SERVER_HH
