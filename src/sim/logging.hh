/**
 * @file
 * Status/error reporting in the gem5 tradition.
 *
 * - panic():  a simulator bug; something that must never happen did.
 *             Aborts the process.
 * - fatal():  a user error (bad configuration, invalid experiment
 *             parameters).  Throws sim::FatalError so library users and
 *             tests can catch it.
 * - warn()/inform(): advisory output on stderr, filtered by verbosity.
 */

#ifndef CELLBW_SIM_LOGGING_HH
#define CELLBW_SIM_LOGGING_HH

#include <stdexcept>
#include <string>

namespace cellbw::sim
{

/** Exception thrown by fatal(): the condition is the user's fault. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Verbosity levels for inform()/warn()/debug(). */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Global verbosity; defaults to Warn. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error; throws FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Possibly-wrong behaviour the user should know about. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Normal status messages. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Verbose debugging output. */
void debugLog(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace cellbw::sim

#endif // CELLBW_SIM_LOGGING_HH
