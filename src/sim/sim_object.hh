/**
 * @file
 * Common base for named simulation components.
 */

#ifndef CELLBW_SIM_SIM_OBJECT_HH
#define CELLBW_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"

namespace cellbw::sim
{

/**
 * A named component bound to an event queue.  Models (caches, rings,
 * MFCs, banks) derive from this to get uniform naming for logs and a
 * shortcut to the simulation clock.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : name_(std::move(name)), eq_(eq)
    {
    }

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;
    virtual ~SimObject() = default;

    const std::string &name() const { return name_; }
    EventQueue &eventQueue() { return eq_; }
    const EventQueue &eventQueue() const { return eq_; }
    Tick curTick() const { return eq_.now(); }

  private:
    std::string name_;
    EventQueue &eq_;
};

} // namespace cellbw::sim

#endif // CELLBW_SIM_SIM_OBJECT_HH
