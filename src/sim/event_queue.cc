#include "sim/event_queue.hh"

#include <bit>

#include "sim/logging.hh"

namespace cellbw::sim
{

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < now_)
        panic("event scheduled in the past: %llu < %llu",
              (unsigned long long)when, (unsigned long long)now_);
    Entry e{when, nextSeq_++, std::move(cb)};
    if (inWindow(when))
        pushBucket(std::move(e));
    else
        overflow_.push(std::move(e));
    ++pending_;
}

void
EventQueue::pushBucket(Entry e)
{
    const std::size_t idx = static_cast<std::size_t>(e.when % kWindow);
    buckets_[idx].push_back(std::move(e));
    occupied_[idx / 64] |= std::uint64_t(1) << (idx % 64);
}

void
EventQueue::advanceTo(Tick t)
{
    now_ = t;
    // Pull every overflow event that the advance brought inside the
    // window.  Heap order is (when, seq), so same-tick entries arrive in
    // schedule order, and they arrive before any direct scheduleAt() can
    // append to those buckets — see the FIFO note in the header.
    while (!overflow_.empty() && inWindow(overflow_.top().when)) {
        Entry e = std::move(const_cast<Entry &>(overflow_.top()));
        overflow_.pop();
        pushBucket(std::move(e));
    }
}

Tick
EventQueue::nextBucketTick() const
{
    const std::size_t start = static_cast<std::size_t>(now_ % kWindow);
    std::size_t w = start / 64;
    // Bits below `start` in the first word belong to the far end of the
    // ring; mask them so the scan begins at now().  They are rechecked
    // (with the correct wrapped delta) when the scan comes around.
    std::uint64_t word = occupied_[w] &
                         (~std::uint64_t(0) << (start % 64));
    for (std::size_t scanned = 0; scanned <= kWords; ++scanned) {
        if (word) {
            const std::size_t idx =
                w * 64 + static_cast<std::size_t>(std::countr_zero(word));
            const std::size_t delta = (idx + kWindow - start) % kWindow;
            return now_ + delta;
        }
        w = (w + 1) % kWords;
        word = occupied_[w];
    }
    return maxTick;
}

std::uint64_t
EventQueue::dispatchTick(Tick t)
{
    auto &bucket = buckets_[static_cast<std::size_t>(t % kWindow)];
    std::uint64_t n = 0;
    // Indexed loop: a callback may schedule another event for this same
    // tick, which appends to (and may reallocate) this bucket; the new
    // event is then fired this tick, in FIFO order.
    for (std::size_t i = 0; i < bucket.size(); ++i) {
        // Move the callback out before invoking so the append above
        // cannot invalidate what we are executing.
        Entry e = std::move(bucket[i]);
        --pending_;
        ++processed_;
        ++n;
        e.cb();
    }
    bucket.clear();
    const std::size_t idx = static_cast<std::size_t>(t % kWindow);
    occupied_[idx / 64] &= ~(std::uint64_t(1) << (idx % 64));
    return n;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (pending_ > 0) {
        const Tick t = nextBucketTick();
        if (t == maxTick) {
            // Ring drained; jump straight to the earliest far event.
            advanceTo(overflow_.top().when);
            continue;
        }
        advanceTo(t);
        n += dispatchTick(t);
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick when)
{
    std::uint64_t n = 0;
    while (pending_ > 0) {
        const Tick t = nextBucketTick();
        if (t == maxTick) {
            if (overflow_.top().when > when)
                break;
            advanceTo(overflow_.top().when);
            continue;
        }
        if (t > when)
            break;
        advanceTo(t);
        n += dispatchTick(t);
    }
    if (now_ < when)
        advanceTo(when);
    return n;
}

} // namespace cellbw::sim
