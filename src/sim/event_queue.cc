#include "sim/event_queue.hh"

#include <bit>
#include <chrono>

#include "sim/logging.hh"

namespace cellbw::sim
{

namespace
{

std::uint64_t
monotonicNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

thread_local EventQueue::Chunk *EventQueue::pool_ = nullptr;
thread_local std::size_t EventQueue::poolSize_ = 0;

EventQueue::~EventQueue()
{
    // Park chunks in the thread-local pool rather than freeing them:
    // glibc trims page-sized frees back to the OS, and the next queue
    // on this thread would page-fault the same memory straight back in.
    auto release = [this](Chunk *c) {
        while (c) {
            for (std::size_t i = 0; i < c->count; ++i)
                c->slot(i)->~Callback();
            Chunk *next = c->next;
            if (poolSize_ < kPoolCap) {
                c->next = pool_;
                pool_ = c;
                ++poolSize_;
            } else {
                delete c;
            }
            c = next;
        }
    };
    for (Bucket &b : buckets_)
        release(b.head);
    release(freelist_);
}

void
EventQueue::pastEventPanic(Tick when) const
{
    panic("event scheduled in the past: %llu < %llu",
          (unsigned long long)when, (unsigned long long)now_);
}

void
EventQueue::pushOverflow(Tick when, Callback cb)
{
    overflow_.push(Entry{when, nextSeq_++, std::move(cb), currentTag_});
    const Tick h = when >= kWindow ? when - kWindow + 1 : 0;
    if (h < horizon_)
        horizon_ = h;
}

EventQueue::Chunk *
EventQueue::appendChunk(Bucket &b)
{
    Chunk *c = freelist_;
    if (c) {
        freelist_ = c->next;
    } else if ((c = pool_)) {
        pool_ = c->next;
        --poolSize_;
    } else {
        c = new Chunk;
    }
    c->next = nullptr;
    c->count = 0;
    if (b.tail)
        b.tail->next = c;
    else
        b.head = c;
    b.tail = c;
    return c;
}

void
EventQueue::pushBucket(Entry e)
{
    const std::size_t idx = static_cast<std::size_t>(e.when % kWindow);
    const EventTag saved = currentTag_;
    currentTag_ = e.tag;
    emplaceBucket(idx, std::move(e.cb));
    currentTag_ = saved;
}

void
EventQueue::advanceTo(Tick t)
{
    now_ = t;
    // Pull every overflow event that the advance brought inside the
    // window.  Heap order is (when, seq), so same-tick entries arrive in
    // schedule order, and they arrive before any direct scheduleAt() can
    // append to those buckets — see the FIFO note in the header.
    while (!overflow_.empty() && inWindow(overflow_.top().when)) {
        Entry e = std::move(const_cast<Entry &>(overflow_.top()));
        overflow_.pop();
        pushBucket(std::move(e));
    }
    refreshHorizon();
}

void
EventQueue::refreshHorizon()
{
    if (overflow_.empty()) {
        horizon_ = maxTick;
    } else {
        const Tick top = overflow_.top().when;
        horizon_ = top >= kWindow ? top - kWindow + 1 : 0;
    }
}

Tick
EventQueue::nextBucketTick() const
{
    const std::size_t start = static_cast<std::size_t>(now_ % kWindow);
    std::size_t w = start / 64;
    // Bits below `start` in the first word belong to the far end of the
    // ring; mask them so the scan begins at now().  They are rechecked
    // (with the correct wrapped delta) when the scan comes around.
    std::uint64_t word = occupied_[w] &
                         (~std::uint64_t(0) << (start % 64));
    for (std::size_t scanned = 0; scanned <= kWords; ++scanned) {
        if (word) {
            const std::size_t idx =
                w * 64 + static_cast<std::size_t>(std::countr_zero(word));
            const std::size_t delta = (idx + kWindow - start) % kWindow;
            return now_ + delta;
        }
        w = (w + 1) % kWords;
        word = occupied_[w];
    }
    return maxTick;
}

Tick
EventQueue::nextEventTick() const
{
    const Tick ring = nextBucketTick();
    if (!overflow_.empty() && overflow_.top().when < ring)
        return overflow_.top().when;
    return ring;
}

std::uint64_t
EventQueue::dispatchTick(Tick t)
{
    const std::size_t idx = static_cast<std::size_t>(t % kWindow);
    Bucket &b = buckets_[idx];
    std::uint64_t n = 0;
    lastDispatch_ = t;
    // Callbacks run in place inside their chunk slot.  A callback may
    // schedule another event for this same tick, which appends to the
    // tail chunk (or grows the chain); the cursor below picks those up
    // in FIFO order.  Chunks never move, so in-place execution is safe.
    Chunk *c = b.head;
    std::size_t i = 0;
    while (c) {
        while (i < c->count) {
            Callback *cb = c->slot(i);
            currentTag_ = static_cast<EventTag>(c->tags[i]);
            ++i;
            --pending_;
            ++processed_;
            ++n;
            if (profiling_) [[unlikely]] {
                const std::uint64_t t0 = monotonicNs();
                (*cb)();
                auto &p = profiles_[c->tags[i - 1]];
                p.selfNs += monotonicNs() - t0;
                ++p.events;
            } else {
                (*cb)();
            }
            cb->~Callback();
        }
        // Re-check before leaving: the invocations above may have
        // appended to this chunk or linked a new tail.
        if (i == c->count && !c->next)
            break;
        if (i == c->count) {
            c = c->next;
            i = 0;
        }
    }
    // Return the drained chain to the free list in one splice.
    if (b.head) {
        Chunk *ch = b.head;
        while (true) {
            ch->count = 0;
            if (!ch->next)
                break;
            ch = ch->next;
        }
        ch->next = freelist_;
        freelist_ = b.head;
        b.head = b.tail = nullptr;
    }
    occupied_[idx / 64] &= ~(std::uint64_t(1) << (idx % 64));
    currentTag_ = EventTag::Program;
    return n;
}

std::uint64_t
EventQueue::drainRing(Tick cap)
{
    std::uint64_t n = 0;
    for (;;) {
        // Cursor scan for the next bucketed tick >= now_.
        const std::size_t start = static_cast<std::size_t>(now_ % kWindow);
        std::size_t w = start / 64;
        std::uint64_t word = occupied_[w] &
                             (~std::uint64_t(0) << (start % 64));
        Tick t = maxTick;
        for (std::size_t scanned = 0; scanned <= kWords; ++scanned) {
            if (word) {
                const std::size_t idx = w * 64 +
                    static_cast<std::size_t>(std::countr_zero(word));
                t = now_ + ((idx + kWindow - start) % kWindow);
                break;
            }
            w = (w + 1) % kWords;
            word = occupied_[w];
        }
        // horizon_ is re-read every iteration: a callback dispatched
        // below may have pushed an overflow entry that lowers it.
        if (t >= cap || t >= horizon_)
            return n;
        now_ = t;
        n += dispatchTick(t);
    }
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (pending_ > 0) {
        if (horizon_ > now_)
            n += drainRing(maxTick);
        if (pending_ == 0)
            break;
        if (pending_ == overflow_.size()) {
            // Ring drained; jump straight to the earliest far event.
            advanceTo(overflow_.top().when);
        } else {
            // Ring has events at or beyond the horizon: pull the heap
            // entries that are due, then resume draining.
            advanceTo(std::max(now_, horizon_));
        }
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick when)
{
    std::uint64_t n = 0;
    const Tick cap = when == maxTick ? maxTick : when + 1;
    while (pending_ > 0) {
        if (horizon_ > now_)
            n += drainRing(cap);
        if (pending_ == 0)
            break;
        if (pending_ == overflow_.size()) {
            if (overflow_.top().when > when)
                break;
            advanceTo(overflow_.top().when);
        } else {
            // Remaining ring events are at or beyond min(cap, horizon).
            if (horizon_ > when)
                break;
            advanceTo(std::max(now_, horizon_));
        }
    }
    if (now_ < when)
        advanceTo(when);
    return n;
}

} // namespace cellbw::sim
