#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace cellbw::sim
{

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < now_)
        panic("event scheduled in the past: %llu < %llu",
              (unsigned long long)when, (unsigned long long)now_);
    queue_.push(Entry{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::dispatchOne()
{
    // Move the callback out before popping so that the callback may
    // schedule new events (which mutates the queue) safely.
    Entry e = std::move(const_cast<Entry &>(queue_.top()));
    queue_.pop();
    now_ = e.when;
    ++processed_;
    e.cb();
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (!queue_.empty()) {
        dispatchOne();
        ++n;
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick when)
{
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().when <= when) {
        dispatchOne();
        ++n;
    }
    if (now_ < when)
        now_ = when;
    return n;
}

} // namespace cellbw::sim
