/**
 * @file
 * Conservative parallel discrete-event engine.
 *
 * The dual-Cell blade partitions naturally at the IOIF: everything on
 * one chip (its SPEs, its EIB, its XDR bank) interacts with the other
 * chip only through the FlexIO link, whose one-way crossing latency L
 * is a hard lower bound on how soon an event on one chip can affect
 * the other.  That makes L a classic conservative-synchronization
 * lookahead: each partition may safely run to `tmin + L - 1`, where
 * tmin is the earliest pending event (or undelivered cross-partition
 * message) anywhere in the system.
 *
 * The engine owns one EventQueue per partition plus an n x n mesh of
 * message channels.  A partition sends work across the boundary with
 * post(); messages are delivered at window boundaries in a fixed
 * (when, srcPartition, seq) order, so the event schedule — and hence
 * every report — is bit-identical no matter how many worker threads
 * execute the windows.  Threads only change *who* runs a partition's
 * window, never *what order* events fire in: determinism is a property
 * of the partitioned schedule itself, not of thread count.
 *
 * The safety rule post() enforces: a message created by an event
 * executing at tick t must be delivered no earlier than t + L.  Since
 * every event in a window executes at t >= tmin, a compliant message
 * lands at >= tmin + L, strictly beyond the window's end — no partition
 * can ever receive a message for a tick it has already passed.
 */

#ifndef CELLBW_SIM_PARALLEL_HH
#define CELLBW_SIM_PARALLEL_HH

#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "util/inline_function.hh"

namespace cellbw::sim
{

class PartitionedEngine
{
  public:
    /**
     * Cross-partition messages carry their continuation; crossing DMA
     * lines additionally carry their 128-byte payload, so the inline
     * window is sized for a this-pointer, a line of data, and a few
     * words of routing state.
     */
    using ChannelFn = util::InlineFunction<void(), 176>;

    PartitionedEngine(unsigned partitions, Tick lookahead);
    ~PartitionedEngine();

    PartitionedEngine(const PartitionedEngine &) = delete;
    PartitionedEngine &operator=(const PartitionedEngine &) = delete;

    unsigned partitions() const { return n_; }
    Tick lookahead() const { return lookahead_; }
    EventQueue &queue(unsigned p) { return *queues_[p]; }
    const EventQueue &queue(unsigned p) const { return *queues_[p]; }

    /**
     * Send @p fn from partition @p src to partition @p dst, to run at
     * tick @p when.  Must be called from @p src's execution context
     * (its queue's current event); panics if @p when violates the
     * lookahead safety rule.
     */
    void post(unsigned src, unsigned dst, Tick when, ChannelFn fn);

    /**
     * Run every partition until no events or undelivered messages
     * remain.  @p threads worker threads execute the windows
     * (1 = serial); results are identical for any value.
     * @return total events processed across all partitions.
     */
    std::uint64_t run(unsigned threads);

    /** Latest dispatched tick across all partitions. */
    Tick lastDispatchTick() const;

    std::uint64_t eventsProcessed() const;

    /** Number of cross-partition messages delivered so far. */
    std::uint64_t messagesDelivered() const { return delivered_; }

    void setProfiling(bool on);

  private:
    struct Msg
    {
        Tick when;
        std::uint64_t seq;
        unsigned src;
        ChannelFn fn;
    };

    /** Earliest pending event or undelivered message, or maxTick. */
    Tick nextTick() const;

    /** Move every channel message with when <= @p horizon into its
     *  destination queue, in (when, src, seq) order. */
    void deliverDue(Tick horizon);

    std::uint64_t runWindowsSerial();
    std::uint64_t runWindowsThreaded(unsigned threads);

    unsigned n_;
    Tick lookahead_;
    std::vector<std::unique_ptr<EventQueue>> queues_;
    /** channels_[src * n_ + dst]: messages in flight src -> dst. */
    std::vector<std::vector<Msg>> channels_;
    std::vector<std::uint64_t> channelSeq_;
    std::uint64_t delivered_ = 0;
    std::vector<Msg> due_;
};

} // namespace cellbw::sim

#endif // CELLBW_SIM_PARALLEL_HH
