/**
 * @file
 * The discrete-event simulation kernel.
 *
 * One global tick = one CPU cycle of the modeled 2.1 GHz Cell.  Events
 * scheduled for the same tick fire in FIFO (schedule) order, which makes
 * the simulation deterministic for a fixed RNG seed.
 */

#ifndef CELLBW_SIM_EVENT_QUEUE_HH
#define CELLBW_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.hh"

namespace cellbw::sim
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks. */
    Tick now() const { return now_; }

    /** Schedule @p cb to fire @p delay ticks from now. */
    void
    schedule(Tick delay, Callback cb)
    {
        scheduleAt(now_ + delay, std::move(cb));
    }

    /**
     * Schedule @p cb at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     */
    void scheduleAt(Tick when, Callback cb);

    /**
     * Run until no events remain.
     * @return the number of events processed.
     */
    std::uint64_t run();

    /**
     * Run all events with timestamp <= @p when, then advance now to
     * @p when.  @return the number of events processed.
     */
    std::uint64_t runUntil(Tick when);

    bool empty() const { return queue_.empty(); }
    std::size_t pending() const { return queue_.size(); }

    /** Total events processed over the queue's lifetime. */
    std::uint64_t eventsProcessed() const { return processed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void dispatchOne();

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
};

} // namespace cellbw::sim

#endif // CELLBW_SIM_EVENT_QUEUE_HH
