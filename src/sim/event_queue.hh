/**
 * @file
 * The discrete-event simulation kernel.
 *
 * One global tick = one CPU cycle of the modeled 2.1 GHz Cell.  Events
 * scheduled for the same tick fire in FIFO (schedule) order, which makes
 * the simulation deterministic for a fixed RNG seed.
 *
 * Implementation: a two-level ladder queue tuned for the short delays
 * the simulator overwhelmingly schedules (next-cycle retries, DMA
 * completions a few hundred cycles out).
 *
 *  - Near-future events — within kWindow ticks of now() — live in a
 *    ring of per-tick buckets indexed by `when % kWindow`.  Scheduling
 *    and dispatching them is O(1); an occupancy bitmap (one bit per
 *    bucket, scanned with countr_zero) finds the next non-empty tick
 *    without walking empty buckets one by one.
 *  - Far-future events overflow into a conventional (when, seq) min-heap
 *    and migrate into the ring as time advances.
 *
 * Callbacks are util::InlineFunction: captures up to 48 bytes are stored
 * inline in the bucket entry, so the schedule path performs no heap
 * allocation for typical simulator events.
 *
 * FIFO correctness across the two levels: every time now() advances, all
 * overflow events that fell inside the new window are migrated (in
 * (when, seq) heap order) *before* any callback runs.  Hence at any
 * instant where scheduleAt() can run, the overflow heap only holds
 * events >= now() + kWindow, and bucket entries are appended in strictly
 * increasing seq order — same-tick FIFO is preserved without sorting.
 */

#ifndef CELLBW_SIM_EVENT_QUEUE_HH
#define CELLBW_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "util/inline_function.hh"
#include "util/types.hh"

namespace cellbw::sim
{

class EventQueue
{
  public:
    using Callback = util::InlineFunction<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks. */
    Tick now() const { return now_; }

    /** Schedule @p cb to fire @p delay ticks from now. */
    void
    schedule(Tick delay, Callback cb)
    {
        scheduleAt(now_ + delay, std::move(cb));
    }

    /**
     * Schedule @p cb at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     */
    void scheduleAt(Tick when, Callback cb);

    /**
     * Run until no events remain.
     * @return the number of events processed.
     */
    std::uint64_t run();

    /**
     * Run all events with timestamp <= @p when, then advance now to
     * @p when.  @return the number of events processed.
     */
    std::uint64_t runUntil(Tick when);

    bool empty() const { return pending_ == 0; }
    std::size_t pending() const { return pending_; }

    /** Total events processed over the queue's lifetime. */
    std::uint64_t eventsProcessed() const { return processed_; }

    /** Ticks covered by the near-future bucket ring. */
    static constexpr Tick window() { return kWindow; }

  private:
    /** Near-future horizon; power of two so `when % kWindow` is a mask. */
    static constexpr std::size_t kWindow = 4096;
    static constexpr std::size_t kWords = kWindow / 64;

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool inWindow(Tick when) const { return when - now_ < kWindow; }

    void pushBucket(Entry e);

    /** Advance now() to @p t and pull newly-near overflow events in. */
    void advanceTo(Tick t);

    /**
     * Earliest tick with a bucketed event, or maxTick when the ring is
     * empty.  Only valid between dispatches (buckets < now() are clear).
     */
    Tick nextBucketTick() const;

    /** Fire every event in the (non-empty) bucket for tick @p t. */
    std::uint64_t dispatchTick(Tick t);

    std::array<std::vector<Entry>, kWindow> buckets_;
    std::array<std::uint64_t, kWords> occupied_{};

    std::priority_queue<Entry, std::vector<Entry>, Later> overflow_;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t pending_ = 0;
};

} // namespace cellbw::sim

#endif // CELLBW_SIM_EVENT_QUEUE_HH
