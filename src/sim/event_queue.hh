/**
 * @file
 * The discrete-event simulation kernel.
 *
 * One global tick = one CPU cycle of the modeled 2.1 GHz Cell.  Events
 * scheduled for the same tick fire in FIFO (schedule) order, which makes
 * the simulation deterministic for a fixed RNG seed.
 *
 * Implementation: a two-level ladder queue tuned for the short delays
 * the simulator overwhelmingly schedules (next-cycle retries, DMA
 * completions a few hundred cycles out).
 *
 *  - Near-future events — within kWindow ticks of now() — live in a
 *    ring of per-tick buckets indexed by `when % kWindow`.  Each bucket
 *    is a chain of fixed-size chunks drawn from a per-queue pool, so
 *    scheduling is an in-place construct into the tail chunk: no vector
 *    growth, no callback relocation, and chunks recycle through a free
 *    list once a tick has been drained.  An occupancy bitmap (one bit
 *    per bucket, scanned with countr_zero) finds the next non-empty
 *    tick without walking empty buckets one by one.  On teardown the
 *    chunks retire to a capped thread-local pool instead of the heap:
 *    experiments construct a fresh simulator (and queue) per data
 *    point, and handing page-sized chunks straight back to malloc lets
 *    the allocator trim them to the OS, so every point would re-fault
 *    the same pages it just gave up.
 *  - Far-future events overflow into a conventional (when, seq) min-heap
 *    and migrate into the ring as time advances.
 *
 * The run loop drains the ring in batches: it computes an overflow-safe
 * horizon (the first tick at which a heap entry could enter the window)
 * and dispatches every bucketed tick below it with a single cursor scan
 * of the occupancy bitmap — the per-tick overflow probe of a classic
 * ladder queue disappears from the hot path.  Callbacks execute in
 * place inside their chunk slot; a callback may append to the very
 * bucket being drained (same-tick scheduling) and the cursor picks the
 * new entries up in FIFO order.
 *
 * Callbacks are util::InlineFunction: captures up to 48 bytes are stored
 * inline in the bucket slot, so the schedule path performs no heap
 * allocation for typical simulator events.
 *
 * FIFO correctness across the two levels: every time now() advances, all
 * overflow events that fell inside the new window are migrated (in
 * (when, seq) heap order) *before* any callback runs.  Hence at any
 * instant where scheduleAt() can run, the overflow heap only holds
 * events >= now() + kWindow, and bucket entries are appended in strictly
 * increasing seq order — same-tick FIFO is preserved without sorting.
 *
 * Profiling (--sim-profile): every event carries a one-byte component
 * tag, inherited from the context that scheduled it (see TagScope).
 * When profiling is enabled the dispatcher books per-tag event counts
 * and self-time; when disabled the only cost is the tag byte itself.
 */

#ifndef CELLBW_SIM_EVENT_QUEUE_HH
#define CELLBW_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/inline_function.hh"
#include "util/types.hh"

namespace cellbw::sim
{

/**
 * Component class an event is attributed to under --sim-profile.  The
 * tag of the currently-executing event is inherited by anything it
 * schedules; components stamp their own class at their public entry
 * points with a TagScope.
 */
enum class EventTag : std::uint8_t
{
    Program,    ///< test/benchmark driver code, coroutine bodies
    Mfc,        ///< MFC command issue, line slicing, completion
    Eib,        ///< ring arbitration and data phases
    Dram,       ///< bank service and refresh
    IoLink,     ///< IOIF lane service and blade crossings
    Ppe,        ///< PPE load/store pipeline and caches
    Other,
    NumTags,
};

constexpr const char *
toString(EventTag t)
{
    switch (t) {
      case EventTag::Program:
        return "program";
      case EventTag::Mfc:
        return "mfc";
      case EventTag::Eib:
        return "eib";
      case EventTag::Dram:
        return "dram";
      case EventTag::IoLink:
        return "iolink";
      case EventTag::Ppe:
        return "ppe";
      default:
        return "other";
    }
}

class EventQueue
{
  public:
    using Callback = util::InlineFunction<void()>;

    static constexpr std::size_t kNumTags =
        static_cast<std::size_t>(EventTag::NumTags);

    /** Per-tag dispatch statistics gathered under --sim-profile. */
    struct TagProfile
    {
        std::uint64_t events = 0;
        std::uint64_t selfNs = 0;
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time in ticks. */
    Tick now() const { return now_; }

    /** Schedule @p f to fire @p delay ticks from now. */
    template <typename F,
              typename = std::enable_if_t<
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    void
    schedule(Tick delay, F &&f)
    {
        scheduleAt(now_ + delay, std::forward<F>(f));
    }

    /**
     * Schedule @p f at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     *
     * The callable is constructed directly in its bucket slot — for a
     * lambda with an inline-sized capture the schedule path is a single
     * in-place construct, with no intermediate Callback moves.
     */
    template <typename F,
              typename = std::enable_if_t<
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    void
    scheduleAt(Tick when, F &&f)
    {
        if (when < now_) [[unlikely]]
            pastEventPanic(when);
        if (inWindow(when)) [[likely]] {
            emplaceBucket(static_cast<std::size_t>(when % kWindow),
                          std::forward<F>(f));
        } else {
            pushOverflow(when, Callback(std::forward<F>(f)));
        }
        ++pending_;
    }

    /**
     * Run until no events remain.
     * @return the number of events processed.
     */
    std::uint64_t run();

    /**
     * Run all events with timestamp <= @p when, then advance now to
     * @p when.  @return the number of events processed.
     */
    std::uint64_t runUntil(Tick when);

    bool empty() const { return pending_ == 0; }
    std::size_t pending() const { return pending_; }

    /** Total events processed over the queue's lifetime. */
    std::uint64_t eventsProcessed() const { return processed_; }

    /**
     * Timestamp of the earliest pending event, or maxTick when the
     * queue is empty.  Used by the partitioned engine to size
     * synchronization windows.
     */
    Tick nextEventTick() const;

    /**
     * Tick of the most recently dispatched event.  Unlike now() — which
     * runUntil() advances to the requested horizon — this tracks when
     * work last actually happened, which is what bandwidth math wants.
     */
    Tick lastDispatchTick() const { return lastDispatch_; }

    /** Ticks covered by the near-future bucket ring. */
    static constexpr Tick window() { return kWindow; }

    /** Enable (or disable) per-tag profiling of dispatched events. */
    void setProfiling(bool on) { profiling_ = on; }
    bool profiling() const { return profiling_; }

    /** Tag newly scheduled events inherit; see TagScope. */
    EventTag currentTag() const { return currentTag_; }
    void setCurrentTag(EventTag t) { currentTag_ = t; }

    const std::array<TagProfile, kNumTags> &
    tagProfiles() const
    {
        return profiles_;
    }

  private:
    /** Near-future horizon; power of two so `when % kWindow` is a mask. */
    static constexpr std::size_t kWindow = 4096;
    static constexpr std::size_t kWords = kWindow / 64;

    /** Slots per bucket chunk; sized so a chunk stays within one page. */
    static constexpr std::size_t kChunkSlots = 62;

    struct Chunk
    {
        Chunk *next;
        std::uint32_t count;
        std::uint8_t tags[kChunkSlots];
        alignas(alignof(Callback))
            unsigned char raw[kChunkSlots * sizeof(Callback)];

        Callback *
        slot(std::size_t i)
        {
            return std::launder(reinterpret_cast<Callback *>(raw) + i);
        }
    };
    static_assert(sizeof(Chunk) <= 4096, "bucket chunk exceeds a page");

    struct Bucket
    {
        Chunk *head = nullptr;
        Chunk *tail = nullptr;
    };

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
        EventTag tag;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool inWindow(Tick when) const { return when - now_ < kWindow; }

    template <typename F>
    void
    emplaceBucket(std::size_t idx, F &&f)
    {
        Bucket &b = buckets_[idx];
        Chunk *c = b.tail;
        if (!c || c->count == kChunkSlots) [[unlikely]]
            c = appendChunk(b);
        ::new (static_cast<void *>(c->slot(c->count)))
            Callback(std::forward<F>(f));
        c->tags[c->count] = static_cast<std::uint8_t>(currentTag_);
        ++c->count;
        occupied_[idx / 64] |= std::uint64_t(1) << (idx % 64);
    }

    [[noreturn]] void pastEventPanic(Tick when) const;
    void pushOverflow(Tick when, Callback cb);

    /** Grow @p b by one (recycled or fresh) chunk and return it. */
    Chunk *appendChunk(Bucket &b);

    /** Chunks a destructing queue may park for later queues (4 MiB). */
    static constexpr std::size_t kPoolCap = 1024;

    static thread_local Chunk *pool_;
    static thread_local std::size_t poolSize_;

    /** Append migrated overflow entry @p e to its bucket. */
    void pushBucket(Entry e);

    /** Advance now() to @p t and pull newly-near overflow events in. */
    void advanceTo(Tick t);

    /** Recompute horizon_ from the current overflow-heap top. */
    void refreshHorizon();

    /**
     * Batched ring drain: dispatch every bucketed tick below both
     * @p cap and the live overflow horizon with one cursor scan of the
     * occupancy bitmap.  Leaves now() at the last dispatched tick.
     * @return events processed.
     */
    std::uint64_t drainRing(Tick cap);

    /**
     * Earliest tick with a bucketed event, or maxTick when the ring is
     * empty.  Only valid between dispatches (buckets < now() are clear).
     */
    Tick nextBucketTick() const;

    /** Fire every event in the (non-empty) bucket for tick @p t. */
    std::uint64_t dispatchTick(Tick t);

    std::array<Bucket, kWindow> buckets_{};
    std::array<std::uint64_t, kWords> occupied_{};

    std::priority_queue<Entry, std::vector<Entry>, Later> overflow_;

    Chunk *freelist_ = nullptr;

    Tick now_ = 0;
    Tick lastDispatch_ = 0;

    /**
     * First tick at which an overflow entry could enter the window (the
     * heap top's when - kWindow + 1), or maxTick when the heap is
     * empty.  Every bucketed tick strictly below this can be dispatched
     * without consulting the heap.  Pushing an earlier overflow entry
     * lowers it immediately, so the batched drain never advances now()
     * past a migration point — an event stranded behind now() would
     * never fire.
     */
    Tick horizon_ = maxTick;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t pending_ = 0;

    bool profiling_ = false;
    EventTag currentTag_ = EventTag::Program;
    std::array<TagProfile, kNumTags> profiles_{};
};

/**
 * RAII component-tag scope: events scheduled while the scope is alive
 * (and, transitively, events those events schedule) are attributed to
 * @p tag under --sim-profile.
 */
class TagScope
{
  public:
    TagScope(EventQueue &eq, EventTag tag)
        : eq_(eq), saved_(eq.currentTag())
    {
        eq_.setCurrentTag(tag);
    }
    ~TagScope() { eq_.setCurrentTag(saved_); }

    TagScope(const TagScope &) = delete;
    TagScope &operator=(const TagScope &) = delete;

  private:
    EventQueue &eq_;
    EventTag saved_;
};

} // namespace cellbw::sim

#endif // CELLBW_SIM_EVENT_QUEUE_HH
