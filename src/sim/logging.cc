#include "sim/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cellbw::sim
{

namespace
{

// Atomic so parallel seed-sweep workers can read the level while the
// main thread owns it (ThreadSanitizer-clean); relaxed is enough, the
// level is advisory.
std::atomic<LogLevel> g_level{LogLevel::Warn};

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<size_t>(len));
    }
    va_end(ap2);
    return out;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugLog(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace cellbw::sim
