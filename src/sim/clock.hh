/**
 * @file
 * Time-domain conversions.
 *
 * The simulator's tick is one CPU cycle.  The EIB and the MFC data paths
 * run at half the CPU clock ("bus cycles"); the SPE decrementer runs at
 * the timebase frequency.  All conversions live here so that no model
 * hard-codes 2.1 GHz.
 */

#ifndef CELLBW_SIM_CLOCK_HH
#define CELLBW_SIM_CLOCK_HH

#include <cstdint>

#include "util/types.hh"

namespace cellbw::sim
{

struct ClockSpec
{
    /** CPU frequency in Hz (paper machine: 2.1 GHz). */
    double cpuHz = 2.1e9;

    /** Bus (EIB) cycles are this many CPU cycles long. */
    Tick busPeriodTicks = 2;

    /** SPE decrementer frequency (time base), Hz. */
    double timebaseHz = 14.318e6;

    double seconds(Tick t) const { return static_cast<double>(t) / cpuHz; }

    Tick
    fromSeconds(double s) const
    {
        return static_cast<Tick>(s * cpuHz + 0.5);
    }

    Tick fromNs(double ns) const { return fromSeconds(ns * 1e-9); }

    /** Convert bus cycles to ticks. */
    Tick busCycles(Tick n) const { return n * busPeriodTicks; }

    /** Decrementer counts elapsed in @p t ticks. */
    std::uint64_t
    decrementerTicks(Tick t) const
    {
        return static_cast<std::uint64_t>(seconds(t) * timebaseHz);
    }

    /**
     * Bandwidth in decimal GB/s for @p bytes moved in @p ticks, the
     * figure of merit used throughout the paper.
     */
    double
    bandwidthGBps(std::uint64_t bytes, Tick ticks) const
    {
        if (ticks == 0)
            return 0.0;
        return static_cast<double>(bytes) / seconds(ticks) / 1e9;
    }
};

} // namespace cellbw::sim

#endif // CELLBW_SIM_CLOCK_HH
