/**
 * @file
 * C++20 coroutine support for writing simulated programs.
 *
 * SPU programs and PPE thread bodies are written as coroutines returning
 * sim::Task.  Awaiting sim::Delay yields simulated time; components such
 * as the MFC expose their own awaitables built on sim::Signal.
 *
 * @code
 *   sim::Task spuProgram(cell::SpeContext &ctx)
 *   {
 *       ctx.mfc().get(ls, ea, bytes, tag);
 *       co_await ctx.mfc().tagWait(1u << tag);
 *       co_await sim::Delay{ctx.eventQueue(), 10};
 *   }
 * @endcode
 *
 * Lifetime rules: a Task owns its coroutine frame.  Tasks must outlive
 * the simulation run that resumes them; the cell::CellSystem keeps all
 * launched tasks alive until reset.
 */

#ifndef CELLBW_SIM_TASK_HH
#define CELLBW_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace cellbw::sim
{

/**
 * A lazily-started coroutine handle with completion tracking.
 * Move-only; destroys the frame on destruction.
 */
class Task
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct promise_type
    {
        std::exception_ptr exception;
        bool finished = false;
        bool started = false;
        std::coroutine_handle<> continuation;

        Task
        get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(Handle h) noexcept
            {
                auto &p = h.promise();
                p.finished = true;
                if (p.continuation)
                    return p.continuation;
                return std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** Begin execution; runs synchronously to the first suspension. */
    void
    start()
    {
        if (handle_ && !handle_.promise().started && !handle_.done()) {
            handle_.promise().started = true;
            handle_.resume();
        }
    }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.promise().finished; }

    /** True iff the coroutine ended with an uncaught exception. */
    bool
    failed() const
    {
        return handle_ && static_cast<bool>(handle_.promise().exception);
    }

    /** Rethrow the coroutine's stored exception, if any. */
    void
    rethrow() const
    {
        if (failed())
            std::rethrow_exception(handle_.promise().exception);
    }

    /**
     * Awaiting a task suspends the awaiter until the task finishes.
     * If the task has not started yet, awaiting starts it (symmetric
     * transfer).  Only one awaiter is supported.
     */
    auto
    operator co_await() const noexcept
    {
        struct Awaiter
        {
            Handle h;

            bool await_ready() const noexcept
            {
                return !h || h.promise().finished;
            }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> c) noexcept
            {
                auto &p = h.promise();
                p.continuation = c;
                if (!p.started) {
                    p.started = true;
                    return h;   // start the child now
                }
                return std::noop_coroutine();
            }

            void
            await_resume() const
            {
                if (h && h.promise().exception)
                    std::rethrow_exception(h.promise().exception);
            }
        };
        return Awaiter{handle_};
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_;
};

/** Awaitable: suspend for @p delay ticks on @p eq. */
struct Delay
{
    EventQueue &eq;
    Tick delay;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        eq.schedule(delay, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}
};

/** Awaitable: suspend until absolute tick @p when (no-op if passed). */
struct WaitUntil
{
    EventQueue &eq;
    Tick when;

    bool await_ready() const noexcept { return when <= eq.now(); }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        eq.scheduleAt(when, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}
};

/**
 * A broadcast wake-up channel.  Coroutines co_await wait(); notifyAll()
 * resumes every waiter at the current tick (via the event queue, so
 * notification is never re-entrant).
 */
class Signal
{
  public:
    explicit Signal(EventQueue &eq) : eq_(eq) {}

    Signal(const Signal &) = delete;
    Signal &operator=(const Signal &) = delete;

    struct WaitAwaiter
    {
        Signal &sig;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sig.waiters_.push_back(h);
        }

        void await_resume() const noexcept {}
    };

    /** Awaitable that resumes on the next notifyAll(). */
    WaitAwaiter wait() { return WaitAwaiter{*this}; }

    /** Wake all current waiters (scheduled at the current tick). */
    void
    notifyAll()
    {
        if (waiters_.empty())
            return;
        auto batch = std::move(waiters_);
        waiters_.clear();
        eq_.schedule(0, [batch = std::move(batch)] {
            for (auto h : batch)
                h.resume();
        });
    }

    std::size_t waiterCount() const { return waiters_.size(); }

  private:
    EventQueue &eq_;
    std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace cellbw::sim

#endif // CELLBW_SIM_TASK_HH
