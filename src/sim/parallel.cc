#include "sim/parallel.hh"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <thread>

#include "sim/logging.hh"

namespace cellbw::sim
{

PartitionedEngine::PartitionedEngine(unsigned partitions, Tick lookahead)
    : n_(partitions), lookahead_(lookahead)
{
    if (n_ == 0)
        fatal("partitioned engine needs at least one partition");
    if (lookahead_ == 0)
        fatal("partitioned engine needs a positive lookahead");
    queues_.reserve(n_);
    for (unsigned p = 0; p < n_; ++p)
        queues_.push_back(std::make_unique<EventQueue>());
    channels_.resize(static_cast<std::size_t>(n_) * n_);
    channelSeq_.resize(channels_.size(), 0);
}

PartitionedEngine::~PartitionedEngine() = default;

void
PartitionedEngine::post(unsigned src, unsigned dst, Tick when,
                        ChannelFn fn)
{
    if (src >= n_ || dst >= n_)
        panic("post between unknown partitions %u -> %u", src, dst);
    Tick src_now = queues_[src]->now();
    if (when < src_now + lookahead_) {
        panic("cross-partition post at tick %llu from partition %u "
              "(now %llu) violates the lookahead of %llu ticks",
              (unsigned long long)when, src,
              (unsigned long long)src_now,
              (unsigned long long)lookahead_);
    }
    auto &ch = channels_[static_cast<std::size_t>(src) * n_ + dst];
    ch.push_back(Msg{when,
                     channelSeq_[static_cast<std::size_t>(src) * n_ + dst]++,
                     src, std::move(fn)});
}

Tick
PartitionedEngine::nextTick() const
{
    Tick t = maxTick;
    for (auto &q : queues_)
        t = std::min(t, q->nextEventTick());
    for (auto &ch : channels_)
        for (auto &m : ch)
            t = std::min(t, m.when);
    return t;
}

void
PartitionedEngine::deliverDue(Tick horizon)
{
    due_.clear();
    for (unsigned src = 0; src < n_; ++src) {
        for (unsigned dst = 0; dst < n_; ++dst) {
            auto &ch = channels_[static_cast<std::size_t>(src) * n_ + dst];
            std::size_t kept = 0;
            for (auto &m : ch) {
                if (m.when <= horizon) {
                    // Tag the message with its destination (reuse src:
                    // it is only needed for the sort key below, and the
                    // destination is recoverable from the channel).
                    due_.push_back(std::move(m));
                    due_.back().src = src * n_ + dst;
                } else {
                    ch[kept++] = std::move(m);
                }
            }
            ch.resize(kept);
        }
    }
    if (due_.empty())
        return;
    // A fixed delivery order makes the schedule independent of the
    // channel scan: earliest first, ties by source partition, then by
    // per-channel send order.
    std::sort(due_.begin(), due_.end(), [](const Msg &a, const Msg &b) {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.src != b.src)
            return a.src < b.src;
        return a.seq < b.seq;
    });
    for (auto &m : due_) {
        unsigned dst = m.src % n_;
        // Deterministic profile attribution: delivered messages are
        // boundary traffic, not the last event's component.
        TagScope tag(*queues_[dst], EventTag::Other);
        queues_[dst]->scheduleAt(m.when, std::move(m.fn));
        ++delivered_;
    }
    due_.clear();
}

std::uint64_t
PartitionedEngine::run(unsigned threads)
{
    if (threads > 1 && n_ > 1)
        return runWindowsThreaded(std::min(threads, n_));
    return runWindowsSerial();
}

std::uint64_t
PartitionedEngine::runWindowsSerial()
{
    std::uint64_t events = 0;
    for (;;) {
        Tick tmin = nextTick();
        if (tmin == maxTick)
            break;
        Tick window_end = (tmin > maxTick - lookahead_)
                              ? maxTick
                              : tmin + lookahead_ - 1;
        deliverDue(window_end);
        for (auto &q : queues_)
            events += q->runUntil(window_end);
    }
    return events;
}

std::uint64_t
PartitionedEngine::runWindowsThreaded(unsigned threads)
{
    std::atomic<Tick> window_end{0};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> events{0};
    // Workers + the coordinator; two phases per window (start, finish).
    std::barrier<> sync(static_cast<std::ptrdiff_t>(threads) + 1);

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
        workers.emplace_back([this, w, threads, &sync, &window_end,
                              &stop, &events] {
            for (;;) {
                sync.arrive_and_wait();
                if (stop.load(std::memory_order_relaxed))
                    return;
                Tick we = window_end.load(std::memory_order_relaxed);
                std::uint64_t local = 0;
                for (unsigned p = w; p < n_; p += threads)
                    local += queues_[p]->runUntil(we);
                events.fetch_add(local, std::memory_order_relaxed);
                sync.arrive_and_wait();
            }
        });
    }

    for (;;) {
        Tick tmin = nextTick();
        if (tmin == maxTick)
            break;
        Tick we = (tmin > maxTick - lookahead_) ? maxTick
                                                : tmin + lookahead_ - 1;
        deliverDue(we);
        window_end.store(we, std::memory_order_relaxed);
        sync.arrive_and_wait();  // workers start the window
        sync.arrive_and_wait();  // workers finished the window
    }
    stop.store(true, std::memory_order_relaxed);
    sync.arrive_and_wait();
    for (auto &t : workers)
        t.join();
    return events.load();
}

Tick
PartitionedEngine::lastDispatchTick() const
{
    Tick t = 0;
    for (auto &q : queues_)
        t = std::max(t, q->lastDispatchTick());
    return t;
}

std::uint64_t
PartitionedEngine::eventsProcessed() const
{
    std::uint64_t n = 0;
    for (auto &q : queues_)
        n += q->eventsProcessed();
    return n;
}

void
PartitionedEngine::setProfiling(bool on)
{
    for (auto &q : queues_)
        q->setProfiling(on);
}

} // namespace cellbw::sim
