/**
 * @file
 * Deterministic random number generation.
 *
 * The paper runs every experiment 10 times because the kernel assigns a
 * different logical-to-physical SPE mapping each run.  We reproduce that
 * with a seeded generator so results are repeatable.
 */

#ifndef CELLBW_SIM_RNG_HH
#define CELLBW_SIM_RNG_HH

#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

namespace cellbw::sim
{

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

    void reseed(std::uint64_t seed) { engine_.seed(seed); }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        std::uniform_int_distribution<std::uint64_t> d(lo, hi);
        return d(engine_);
    }

    /** Uniform real in [0, 1). */
    double
    uniformReal()
    {
        std::uniform_real_distribution<double> d(0.0, 1.0);
        return d(engine_);
    }

    /** Fisher-Yates permutation of {0, ..., n-1}. */
    std::vector<std::uint32_t>
    permutation(std::uint32_t n)
    {
        std::vector<std::uint32_t> p(n);
        std::iota(p.begin(), p.end(), 0u);
        for (std::uint32_t i = n; i > 1; --i) {
            auto j = static_cast<std::uint32_t>(uniformInt(0, i - 1));
            std::swap(p[i - 1], p[j]);
        }
        return p;
    }

    /** Derive an independent child seed (for per-run reproducibility). */
    std::uint64_t
    fork()
    {
        return engine_();
    }

  private:
    std::mt19937_64 engine_;
};

} // namespace cellbw::sim

#endif // CELLBW_SIM_RNG_HH
