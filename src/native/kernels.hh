/**
 * @file
 * Native host-memory kernels: the bandwidth suite on real silicon.
 *
 * The paper's method is "measure sustained bandwidth with
 * controlled-access-pattern microbenchmarks"; this library applies the
 * same method to the *host* memory hierarchy so sim-vs-native becomes
 * a first-class comparison scenario:
 *
 *  - STREAM-shaped kernels (copy c=a, scale b=s*c, add c=a+b, triad
 *    a=b+s*c) over aligned, prefaulted buffers, one timed pass per
 *    repetition.
 *
 *  - A pointer-chase latency kernel over a seeded random cyclic
 *    permutation (every load depends on the previous one, defeating
 *    prefetchers), reporting nanoseconds per dependent access.
 *
 * Every kernel is checksum-validated: buffer initialization uses small
 * dyadic rationals (exact in binary floating point) so each kernel's
 * result has an exact closed form, and validation compares every
 * element against it, reporting the FIRST divergent index on mismatch.
 * The chase ring validates that its permutation is one full cycle and
 * that the timed walk ended where an untimed reference walk says it
 * must.  Both expose a corrupt() hook so tests can inject a failure
 * and assert the diagnostic names the exact index.
 *
 * Unlike the simulator, these kernels measure wall-clock time: results
 * are never bit-reproducible and must be gated by tolerances
 * (`cellbw compare --tol`), not identity.
 */

#ifndef CELLBW_NATIVE_KERNELS_HH
#define CELLBW_NATIVE_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cellbw::native
{

/** Outcome of a kernel's checksum validation. */
struct CheckResult
{
    bool ok = true;
    /** First array index whose value diverges (valid when !ok). */
    std::size_t firstBadIndex = 0;
    double expected = 0.0; ///< what the closed form requires there
    double got = 0.0;      ///< what the buffer actually holds

    /** "checksum failed at index 17: expected 3.25, got 0" */
    std::string describe() const;
};

// ---------------------------------------------------------------------
// STREAM-shaped bandwidth kernels.

enum class StreamKernel
{
    Copy,  ///< c[i] = a[i]           (2 x N x 8 bytes per pass)
    Scale, ///< b[i] = s * c[i]       (2 x N x 8 bytes per pass)
    Add,   ///< c[i] = a[i] + b[i]    (3 x N x 8 bytes per pass)
    Triad, ///< a[i] = b[i] + s*c[i]  (3 x N x 8 bytes per pass)
};

const char *toString(StreamKernel k);

/** The four kernels, in STREAM's canonical order. */
const std::vector<StreamKernel> &allStreamKernels();

/** The scalar STREAM's scale/triad use; exact in binary FP. */
inline constexpr double kStreamScalar = 3.0;

/**
 * Three aligned (64 B), prefaulted double arrays of @p elems elements
 * each, initialized to deterministic dyadic-rational patterns so every
 * kernel's output is exactly predictable.
 */
class StreamBuffers
{
  public:
    explicit StreamBuffers(std::size_t elems);
    ~StreamBuffers();

    StreamBuffers(const StreamBuffers &) = delete;
    StreamBuffers &operator=(const StreamBuffers &) = delete;

    std::size_t elems() const { return elems_; }

    /** Reset a/b/c to the initial patterns (call before each kernel). */
    void init();

    /** Exact initial values (the closed forms build on these). */
    static double initA(std::size_t i);
    static double initB(std::size_t i);
    static double initC(std::size_t i);

    /**
     * Overwrite one element of @p k's destination array with a value
     * the closed form cannot produce — the checksum-failure injection
     * hook.  check() must then report @p index as the first divergence
     * (when no lower index was also corrupted).
     */
    void corrupt(StreamKernel k, std::size_t index);

    double *a() { return a_; }
    double *b() { return b_; }
    double *c() { return c_; }
    const double *a() const { return a_; }
    const double *b() const { return b_; }
    const double *c() const { return c_; }

  private:
    std::size_t elems_;
    double *a_ = nullptr;
    double *b_ = nullptr;
    double *c_ = nullptr;
};

/**
 * One timed pass of @p k over @p buf.
 * @return seconds of wall-clock time the pass took (steady clock).
 */
double runStream(StreamKernel k, StreamBuffers &buf);

/** Bytes one pass of @p k moves (STREAM counting: reads + writes). */
std::uint64_t streamBytes(StreamKernel k, std::size_t elems);

/**
 * Validate @p k's destination array against its exact closed form.
 * Assumes buf.init() ran before the first pass of @p k and no other
 * kernel touched the buffers since (every kernel is idempotent over
 * its own passes: inputs are never its own output).
 */
CheckResult checkStream(StreamKernel k, const StreamBuffers &buf);

// ---------------------------------------------------------------------
// Pointer-chase latency kernel.

/**
 * A random cyclic permutation of [0, elems): ring[i] is the index the
 * chase visits after i.  Built with Sattolo's algorithm from a seeded
 * PRNG, so a (seed, elems) pair always yields the same single cycle —
 * the *layout* is deterministic even though the *timing* is not.
 */
class ChaseRing
{
  public:
    /** Build the cycle for @p elems indices (elems >= 2). */
    ChaseRing(std::size_t elems, std::uint64_t seed);

    std::size_t elems() const { return ring_.size(); }

    /**
     * Check the ring is one full cycle over every index.  On a broken
     * ring (corruption, injection) reports the first index where the
     * walk diverges from a permutation — an out-of-range target or a
     * revisited index.
     */
    CheckResult validate() const;

    /** Injection hook: make ring[index] a self-loop (breaks the cycle). */
    void corrupt(std::size_t index);

    /**
     * Chase @p steps dependent loads starting at index 0.
     * @param finalIndex the index the walk ended on (for validation)
     * @return seconds of wall-clock time for all @p steps loads
     */
    double runChase(std::uint64_t steps, std::size_t &finalIndex) const;

    /** Where a @p steps walk from 0 must end (untimed reference). */
    std::size_t expectedFinal(std::uint64_t steps) const;

  private:
    std::vector<std::uint32_t> ring_;
};

// ---------------------------------------------------------------------
// Host-buffer plumbing shared by the kernels.

/**
 * Allocate @p bytes aligned to 64 B and prefault every page (touch at
 * page stride) so first-touch page faults never land inside a timed
 * region.  fatal()s on allocation failure.  Free with alignedFree().
 */
void *alignedAlloc(std::size_t bytes);
void alignedFree(void *p);

} // namespace cellbw::native

#endif // CELLBW_NATIVE_KERNELS_HH
