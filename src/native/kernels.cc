#include "native/kernels.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace cellbw::native
{

namespace
{

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/**
 * A value no kernel's closed form can produce: every legitimate value
 * in the suite is a small positive dyadic rational.
 */
constexpr double kPoison = -1.0e9;

} // namespace

std::string
CheckResult::describe() const
{
    if (ok)
        return "ok";
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "checksum failed at index %zu: expected %g, got %g",
                  firstBadIndex, expected, got);
    return buf;
}

// ---------------------------------------------------------------------
// Aligned, prefaulted host buffers.

void *
alignedAlloc(std::size_t bytes)
{
    // aligned_alloc requires the size to be a multiple of the alignment.
    std::size_t rounded = (bytes + 63) & ~std::size_t{63};
    void *p = std::aligned_alloc(64, rounded);
    if (!p)
        sim::fatal("native: failed to allocate %zu bytes", rounded);
    // Prefault: touch every page so first-touch faults happen here, not
    // inside a timed kernel pass.
    constexpr std::size_t kPage = 4096;
    auto *bytesP = static_cast<unsigned char *>(p);
    for (std::size_t off = 0; off < rounded; off += kPage)
        bytesP[off] = 0;
    if (rounded)
        bytesP[rounded - 1] = 0;
    return p;
}

void
alignedFree(void *p)
{
    std::free(p);
}

// ---------------------------------------------------------------------
// STREAM-shaped kernels.

const char *
toString(StreamKernel k)
{
    switch (k) {
      case StreamKernel::Copy:
        return "copy";
      case StreamKernel::Scale:
        return "scale";
      case StreamKernel::Add:
        return "add";
      case StreamKernel::Triad:
        return "triad";
    }
    return "copy";
}

const std::vector<StreamKernel> &
allStreamKernels()
{
    static const std::vector<StreamKernel> kAll = {
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    };
    return kAll;
}

StreamBuffers::StreamBuffers(std::size_t elems) : elems_(elems)
{
    if (elems_ == 0)
        sim::fatal("native: stream buffers need at least one element");
    std::size_t bytes = elems_ * sizeof(double);
    a_ = static_cast<double *>(alignedAlloc(bytes));
    b_ = static_cast<double *>(alignedAlloc(bytes));
    c_ = static_cast<double *>(alignedAlloc(bytes));
    init();
}

StreamBuffers::~StreamBuffers()
{
    alignedFree(a_);
    alignedFree(b_);
    alignedFree(c_);
}

// The initial patterns are small multiples of 1/8: exact in binary
// floating point, so kernel outputs (sums and products with the exact
// scalar 3.0) are also exact and validation can use plain equality.

double
StreamBuffers::initA(std::size_t i)
{
    return 1.0 + static_cast<double>(i % 17) * 0.25;
}

double
StreamBuffers::initB(std::size_t i)
{
    return 2.0 + static_cast<double>(i % 13) * 0.5;
}

double
StreamBuffers::initC(std::size_t i)
{
    return 0.5 + static_cast<double>(i % 7) * 0.125;
}

void
StreamBuffers::init()
{
    for (std::size_t i = 0; i < elems_; ++i) {
        a_[i] = initA(i);
        b_[i] = initB(i);
        c_[i] = initC(i);
    }
}

void
StreamBuffers::corrupt(StreamKernel k, std::size_t index)
{
    if (index >= elems_)
        sim::fatal("native: corrupt index %zu out of range (%zu elems)",
                   index, elems_);
    switch (k) {
      case StreamKernel::Copy:
      case StreamKernel::Add:
        c_[index] = kPoison;
        break;
      case StreamKernel::Scale:
        b_[index] = kPoison;
        break;
      case StreamKernel::Triad:
        a_[index] = kPoison;
        break;
    }
}

double
runStream(StreamKernel k, StreamBuffers &buf)
{
    std::size_t n = buf.elems();
    double *a = buf.a();
    double *b = buf.b();
    double *c = buf.c();
    double t0 = now();
    switch (k) {
      case StreamKernel::Copy:
        for (std::size_t i = 0; i < n; ++i)
            c[i] = a[i];
        break;
      case StreamKernel::Scale:
        for (std::size_t i = 0; i < n; ++i)
            b[i] = kStreamScalar * c[i];
        break;
      case StreamKernel::Add:
        for (std::size_t i = 0; i < n; ++i)
            c[i] = a[i] + b[i];
        break;
      case StreamKernel::Triad:
        for (std::size_t i = 0; i < n; ++i)
            a[i] = b[i] + kStreamScalar * c[i];
        break;
    }
    return now() - t0;
}

std::uint64_t
streamBytes(StreamKernel k, std::size_t elems)
{
    std::uint64_t n = elems;
    switch (k) {
      case StreamKernel::Copy:
      case StreamKernel::Scale:
        return 2 * n * sizeof(double); // one read + one write per elem
      case StreamKernel::Add:
      case StreamKernel::Triad:
        return 3 * n * sizeof(double); // two reads + one write per elem
    }
    return 0;
}

CheckResult
checkStream(StreamKernel k, const StreamBuffers &buf)
{
    // Each kernel reads arrays it never writes, so any number of passes
    // over freshly init()ed buffers yields the same closed form:
    //   copy:  c[i] = initA(i)
    //   scale: b[i] = s * initC(i)
    //   add:   c[i] = initA(i) + initB(i)
    //   triad: a[i] = initB(i) + s * initC(i)
    CheckResult r;
    std::size_t n = buf.elems();
    for (std::size_t i = 0; i < n; ++i) {
        double expected = 0.0;
        double got = 0.0;
        switch (k) {
          case StreamKernel::Copy:
            expected = StreamBuffers::initA(i);
            got = buf.c()[i];
            break;
          case StreamKernel::Scale:
            expected = kStreamScalar * StreamBuffers::initC(i);
            got = buf.b()[i];
            break;
          case StreamKernel::Add:
            expected = StreamBuffers::initA(i) + StreamBuffers::initB(i);
            got = buf.c()[i];
            break;
          case StreamKernel::Triad:
            expected = StreamBuffers::initB(i) +
                       kStreamScalar * StreamBuffers::initC(i);
            got = buf.a()[i];
            break;
        }
        if (got != expected) {
            r.ok = false;
            r.firstBadIndex = i;
            r.expected = expected;
            r.got = got;
            return r;
        }
    }
    return r;
}

// ---------------------------------------------------------------------
// Pointer-chase latency kernel.

ChaseRing::ChaseRing(std::size_t elems, std::uint64_t seed)
{
    if (elems < 2)
        sim::fatal("native: chase ring needs at least 2 elements");
    if (elems > UINT32_MAX)
        sim::fatal("native: chase ring of %zu elements is too large", elems);
    // Sattolo's algorithm: an in-place shuffle whose result is always a
    // single cycle over all n indices (swap i with j < i, never j == i).
    ring_.resize(elems);
    for (std::size_t i = 0; i < elems; ++i)
        ring_[i] = static_cast<std::uint32_t>(i);
    sim::Rng rng(seed);
    for (std::size_t i = elems - 1; i > 0; --i) {
        auto j = static_cast<std::size_t>(rng.uniformInt(0, i - 1));
        std::swap(ring_[i], ring_[j]);
    }
}

CheckResult
ChaseRing::validate() const
{
    CheckResult r;
    std::size_t n = ring_.size();
    // Walk the cycle from 0: after exactly n steps we must be back at 0
    // having visited every index exactly once.
    std::vector<bool> seen(n, false);
    std::size_t at = 0;
    for (std::size_t step = 0; step < n; ++step) {
        if (seen[at]) {
            // Revisit before the cycle closed: the ring is not one cycle.
            r.ok = false;
            r.firstBadIndex = at;
            r.expected = 0.0;
            r.got = 1.0;
            return r;
        }
        seen[at] = true;
        std::size_t next = ring_[at];
        if (next >= n) {
            r.ok = false;
            r.firstBadIndex = at;
            r.expected = static_cast<double>(n - 1);
            r.got = static_cast<double>(next);
            return r;
        }
        at = next;
    }
    if (at != 0) {
        r.ok = false;
        r.firstBadIndex = at;
        r.expected = 0.0;
        r.got = static_cast<double>(at);
    }
    return r;
}

void
ChaseRing::corrupt(std::size_t index)
{
    if (index >= ring_.size())
        sim::fatal("native: corrupt index %zu out of range (%zu elems)",
                   index, ring_.size());
    ring_[index] = static_cast<std::uint32_t>(index);
}

double
ChaseRing::runChase(std::uint64_t steps, std::size_t &finalIndex) const
{
    const std::uint32_t *ring = ring_.data();
    std::uint32_t at = 0;
    double t0 = now();
    for (std::uint64_t s = 0; s < steps; ++s)
        at = ring[at]; // each load depends on the previous one
    double elapsed = now() - t0;
    finalIndex = at;
    return elapsed;
}

std::size_t
ChaseRing::expectedFinal(std::uint64_t steps) const
{
    // The ring is one cycle of length n, so a walk of `steps` loads is a
    // walk of steps % n loads.
    std::uint64_t effective = steps % ring_.size();
    std::size_t at = 0;
    for (std::uint64_t s = 0; s < effective; ++s)
        at = ring_[at];
    return at;
}

} // namespace cellbw::native
