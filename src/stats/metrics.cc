#include "stats/metrics.hh"

#include "sim/logging.hh"
#include "stats/json_writer.hh"
#include "util/strings.hh"

namespace cellbw::stats
{

Histogram::Histogram(unsigned upperBound)
    : buckets_(static_cast<std::size_t>(upperBound) + 1)
{
}

void
Histogram::add(std::uint64_t sample)
{
    addBucket(sample, 1);
}

void
Histogram::addBucket(std::uint64_t bucket, std::uint64_t count)
{
    if (count == 0)
        return;
    std::size_t i = bucket < buckets_.size()
                        ? static_cast<std::size_t>(bucket)
                        : buckets_.size() - 1;
    buckets_[i].fetch_add(count, std::memory_order_relaxed);
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(bucket * count, std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    auto n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

unsigned
Histogram::maxBucket() const
{
    for (std::size_t i = buckets_.size(); i-- > 0;)
        if (buckets_[i].load(std::memory_order_relaxed))
            return static_cast<unsigned>(i);
    return 0;
}

const char *
MetricsRegistry::toString(Kind k)
{
    switch (k) {
      case Kind::Counter:
        return "counter";
      case Kind::Gauge:
        return "gauge";
      case Kind::Histogram:
        return "histogram";
    }
    return "?";
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e;
        e.kind = Kind::Counter;
        e.counter = std::make_unique<Counter>();
        it = entries_.emplace(name, std::move(e)).first;
    } else if (it->second.kind != Kind::Counter) {
        sim::fatal("metric '%s' already registered as a %s, not a "
                   "counter", name.c_str(), toString(it->second.kind));
    }
    return *it->second.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e;
        e.kind = Kind::Gauge;
        e.gauge = std::make_unique<Gauge>();
        it = entries_.emplace(name, std::move(e)).first;
    } else if (it->second.kind != Kind::Gauge) {
        sim::fatal("metric '%s' already registered as a %s, not a "
                   "gauge", name.c_str(), toString(it->second.kind));
    }
    return *it->second.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, unsigned upperBound)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e;
        e.kind = Kind::Histogram;
        e.histogram = std::make_unique<Histogram>(upperBound);
        it = entries_.emplace(name, std::move(e)).first;
    } else if (it->second.kind != Kind::Histogram) {
        sim::fatal("metric '%s' already registered as a %s, not a "
                   "histogram", name.c_str(),
                   toString(it->second.kind));
    }
    return *it->second.histogram;
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    return (it != entries_.end() && it->second.kind == Kind::Counter)
               ? it->second.counter.get()
               : nullptr;
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    return (it != entries_.end() && it->second.kind == Kind::Gauge)
               ? it->second.gauge.get()
               : nullptr;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    return (it != entries_.end() && it->second.kind == Kind::Histogram)
               ? it->second.histogram.get()
               : nullptr;
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    w.beginObject();
    // std::map iterates in sorted key order: stable output.
    for (const auto &[name, entry] : entries_) {
        w.key(name);
        switch (entry.kind) {
          case Kind::Counter:
            w.value(entry.counter->value());
            break;
          case Kind::Gauge:
            w.value(entry.gauge->value());
            break;
          case Kind::Histogram: {
            const auto &h = *entry.histogram;
            w.beginObject();
            w.key("count").value(h.count());
            w.key("sum").value(h.sum());
            w.key("mean").value(h.mean());
            w.key("buckets").beginArray();
            unsigned last = h.maxBucket();
            for (unsigned i = 0; i <= last; ++i)
                w.value(h.bucket(i));
            w.endArray();
            w.endObject();
            break;
          }
        }
    }
    w.endObject();
}

std::string
MetricsRegistry::render() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &[name, entry] : entries_) {
        switch (entry.kind) {
          case Kind::Counter:
            out += util::format("%s = %llu\n", name.c_str(),
                                (unsigned long long)
                                    entry.counter->value());
            break;
          case Kind::Gauge:
            out += util::format("%s = %g\n", name.c_str(),
                                entry.gauge->value());
            break;
          case Kind::Histogram: {
            const auto &h = *entry.histogram;
            out += util::format("%s = hist(count=%llu, mean=%.2f)\n",
                                name.c_str(),
                                (unsigned long long)h.count(),
                                h.mean());
            break;
          }
        }
    }
    return out;
}

} // namespace cellbw::stats
