/**
 * @file
 * A machine-wide metrics registry: named utilization counters that turn
 * a bandwidth number into a diagnosis.
 *
 * The paper *explains* sustained-bandwidth results through component
 * behaviour — EIB ring conflicts, DMA queue occupancy, bank scheduling.
 * MetricsRegistry is where every component books those events under a
 * hierarchical `component.metric` name (`eib0.ring1.grants`,
 * `mem.bank0.row_conflicts`, `spe3.mfc.queue_depth`), so a run can be
 * exported as one machine-readable snapshot.
 *
 * Three metric kinds:
 *  - Counter:   a monotonically accumulated uint64 (events, bytes,
 *               ticks).  add() is atomic, so concurrent seed-sweep
 *               workers can fold their per-run totals into one shared
 *               registry; addition is commutative, so the totals are
 *               deterministic regardless of thread interleaving.
 *  - Gauge:     a last-write-wins double (a rate, a fraction).
 *  - Histogram: fixed integer buckets 0..upperBound (the last bucket
 *               absorbs larger samples) plus exact count/sum —
 *               integer arithmetic only, so merged histograms are also
 *               order-independent.
 *
 * Registration is idempotent: asking for an existing name of the same
 * kind returns the same metric (that is how N runs accumulate);
 * re-registering a name as a *different* kind is a programming error
 * and fatal()s.
 */

#ifndef CELLBW_STATS_METRICS_HH
#define CELLBW_STATS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cellbw::stats
{

class JsonWriter;

/** Monotonic event counter; atomic so cross-thread adds are exact. */
class Counter
{
  public:
    void add(std::uint64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    void increment() { add(1); }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Fixed-bucket integer histogram: one bucket per value 0..upperBound,
 *  the last bucket also absorbing anything larger. */
class Histogram
{
  public:
    explicit Histogram(unsigned upperBound);

    void add(std::uint64_t sample);

    /** Merge a pre-binned bucket: @p count samples of value @p bucket. */
    void addBucket(std::uint64_t bucket, std::uint64_t count);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    double mean() const;

    /** Largest sample value distinguishable (last bucket's floor). */
    unsigned upperBound() const
    {
        return static_cast<unsigned>(buckets_.size() - 1);
    }

    std::uint64_t bucket(unsigned i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** Highest non-empty bucket index (0 when empty). */
    unsigned maxBucket() const;

  private:
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** @name Register-or-find; fatal() on a cross-kind name collision.
     *        The returned reference lives as long as the registry. */
    /** @{ */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name, unsigned upperBound);
    /** @} */

    /** Lookup without creating; nullptr when absent or a different
     *  kind. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    std::size_t size() const;

    /** All metric names in sorted (byte) order. */
    std::vector<std::string> names() const;

    /** Drop every metric. */
    void clear();

    /**
     * Serialize every metric, sorted by name, as one JSON object value:
     * counters as integers, gauges as numbers, histograms as
     * `{"count":..,"sum":..,"mean":..,"buckets":[..]}` (buckets
     * truncated after the highest non-empty one).  The writer must be
     * positioned where a value is expected (e.g. after key()).
     */
    void writeJson(JsonWriter &w) const;

    /** Human-readable one-metric-per-line dump (tests, debugging). */
    std::string render() const;

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Entry
    {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    static const char *toString(Kind k);

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

} // namespace cellbw::stats

#endif // CELLBW_STATS_METRICS_HH
