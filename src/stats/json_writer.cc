#include "stats/json_writer.hh"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace cellbw::stats
{

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        if (started_)
            sim::fatal("JsonWriter: more than one top-level value");
        started_ = true;
        return;
    }
    if (stack_.back() == Scope::Object) {
        if (!keyPending_)
            sim::fatal("JsonWriter: object value without a key");
        keyPending_ = false;
    } else {
        if (hasValue_.back())
            out_ += ',';
        hasValue_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    stack_.push_back(Scope::Object);
    hasValue_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Scope::Object)
        sim::fatal("JsonWriter: endObject outside an object");
    if (keyPending_)
        sim::fatal("JsonWriter: endObject with a dangling key");
    out_ += '}';
    stack_.pop_back();
    hasValue_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    stack_.push_back(Scope::Array);
    hasValue_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Scope::Array)
        sim::fatal("JsonWriter: endArray outside an array");
    out_ += ']';
    stack_.pop_back();
    hasValue_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (stack_.empty() || stack_.back() != Scope::Object)
        sim::fatal("JsonWriter: key('%s') outside an object", k.c_str());
    if (keyPending_)
        sim::fatal("JsonWriter: two keys in a row ('%s')", k.c_str());
    if (hasValue_.back())
        out_ += ',';
    hasValue_.back() = true;
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    beforeValue();
    out_ += '"';
    out_ += escape(s);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(double d)
{
    beforeValue();
    out_ += number(d);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t u)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, u);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t i)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, i);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    beforeValue();
    out_ += b ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    beforeValue();
    out_ += json;
    return *this;
}

const std::string &
JsonWriter::str() const
{
    if (!complete())
        sim::fatal("JsonWriter: document incomplete (unbalanced "
                   "begin/end or nothing written)");
    return out_;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
JsonWriter::number(double d)
{
    if (!std::isfinite(d))
        return "null";
    // Integral doubles in the exactly-representable range print as
    // integers: stable golden files and no "1e+06" surprises.
    if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        return buf;
    }
    // Shortest representation that round-trips: try increasing
    // precision until the parse matches.  to_chars/from_chars, not
    // %g/strtod: those follow LC_NUMERIC, and a comma-decimal locale
    // would turn every non-integral number into invalid JSON.
    // to_chars(general, prec) is defined as C-locale "%.*g", so the
    // bytes are unchanged where it mattered before.
    char buf[40];
    std::size_t len = 0;
    for (int prec = 15; prec <= 17; ++prec) {
        auto res = std::to_chars(buf, buf + sizeof(buf), d,
                                 std::chars_format::general, prec);
        len = static_cast<std::size_t>(res.ptr - buf);
        double back = 0.0;
        std::from_chars(buf, res.ptr, back);
        if (back == d)
            break;
    }
    return std::string(buf, len);
}

} // namespace cellbw::stats
