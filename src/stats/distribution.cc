#include "stats/distribution.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace cellbw::stats
{

void
Accumulator::add(double v)
{
    if (n_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++n_;
    sum_ += v;
    double delta = v - m_;
    m_ += delta / static_cast<double>(n_);
    s_ += delta * (v - m_);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::mean() const
{
    return n_ ? m_ : 0.0;
}

double
Accumulator::variance() const
{
    return n_ > 1 ? s_ / static_cast<double>(n_ - 1) : 0.0;
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::min() const
{
    return n_ ? min_ : 0.0;
}

double
Accumulator::max() const
{
    return n_ ? max_ : 0.0;
}

void
Distribution::add(double v)
{
    samples_.push_back(v);
    sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), v),
                   v);
}

void
Distribution::reset()
{
    samples_.clear();
    sorted_.clear();
}

double
Distribution::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double v : samples_)
        s += v;
    return s / static_cast<double>(samples_.size());
}

double
Distribution::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    double m = mean();
    double s = 0.0;
    for (double v : samples_)
        s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double
Distribution::min() const
{
    return sorted_.empty() ? 0.0 : sorted_.front();
}

double
Distribution::max() const
{
    return sorted_.empty() ? 0.0 : sorted_.back();
}

double
Distribution::median() const
{
    return quantile(0.5);
}

double
Distribution::cv() const
{
    double m = mean();
    if (samples_.empty() || m == 0.0)
        return 0.0;
    return 100.0 * stddev() / m;
}

double
Distribution::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    if (q < 0.0 || q > 1.0)
        sim::fatal("quantile %g out of [0,1]", q);
    if (sorted_.size() == 1)
        return sorted_.front();
    double pos = q * static_cast<double>(sorted_.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    auto hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

} // namespace cellbw::stats
