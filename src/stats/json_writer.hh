/**
 * @file
 * A small hand-rolled JSON writer.
 *
 * The bench binaries emit machine-readable results (--json) and the
 * trace recorder emits Chrome-trace files; both need strictly valid
 * JSON without pulling in an external dependency.  JsonWriter is a
 * push-style serializer: begin/end objects and arrays, write keys and
 * typed values, and it takes care of commas, escaping, and number
 * formatting.
 *
 * @code
 *   stats::JsonWriter w;
 *   w.beginObject();
 *   w.key("bench").value("fig08");
 *   w.key("points").beginArray();
 *   w.beginObject().key("gbps").value(9.87).endObject();
 *   w.endArray();
 *   w.endObject();
 *   std::string json = w.str();
 * @endcode
 *
 * Misuse (a key outside an object, unbalanced end calls, two keys in a
 * row) is a programming error and fatal()s rather than producing broken
 * output.
 */

#ifndef CELLBW_STATS_JSON_WRITER_HH
#define CELLBW_STATS_JSON_WRITER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cellbw::stats
{

class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Write an object key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &k);

    /** @name Scalar values. */
    /** @{ */
    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double d);
    JsonWriter &value(std::uint64_t u);
    JsonWriter &value(std::int64_t i);
    JsonWriter &value(int i) { return value(static_cast<std::int64_t>(i)); }
    JsonWriter &value(unsigned u)
    {
        return value(static_cast<std::uint64_t>(u));
    }
    JsonWriter &value(bool b);
    JsonWriter &null();
    /** @} */

    /**
     * Emit a value that is already valid JSON (e.g. a nested document
     * produced by another writer).  The caller vouches for validity.
     */
    JsonWriter &raw(const std::string &json);

    /** True once every begin has been matched by an end. */
    bool complete() const { return stack_.empty() && started_; }

    /** The serialized document; fatal()s if incomplete. */
    const std::string &str() const;

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &s);

    /**
     * Shortest-ish JSON number for @p d: integers print without a
     * fraction, non-finite values (JSON has no NaN/Inf) print as null.
     */
    static std::string number(double d);

  private:
    enum class Scope { Object, Array };

    void beforeValue();

    std::string out_;
    std::vector<Scope> stack_;
    /** A value was already written in the current scope (comma needed). */
    std::vector<bool> hasValue_;
    bool keyPending_ = false;
    bool started_ = false;
};

} // namespace cellbw::stats

#endif // CELLBW_STATS_JSON_WRITER_HH
