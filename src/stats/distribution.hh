/**
 * @file
 * Sample statistics.
 *
 * The paper reports minimum / maximum / median / mean bandwidth across 10
 * placement-randomized runs (Figures 13 and 16).  Distribution stores the
 * raw samples so all of those (plus arbitrary quantiles) are exact.
 */

#ifndef CELLBW_STATS_DISTRIBUTION_HH
#define CELLBW_STATS_DISTRIBUTION_HH

#include <cstddef>
#include <vector>

namespace cellbw::stats
{

/** Streaming mean/variance/extrema without sample storage. */
class Accumulator
{
  public:
    void add(double v);
    void reset();

    std::size_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const;
    /** Unbiased sample variance; 0 for fewer than two samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

  private:
    std::size_t n_ = 0;
    double sum_ = 0.0;
    double m_ = 0.0;   // running mean (Welford)
    double s_ = 0.0;   // running sum of squared deviations
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Exact sample statistics with storage. */
class Distribution
{
  public:
    void add(double v);
    void reset();

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    double mean() const;
    double stddev() const;
    double min() const;
    double max() const;
    /** Median: midpoint of the two central order statistics when even. */
    double median() const;
    /**
     * Quantile by linear interpolation between order statistics,
     * q in [0, 1].
     */
    double quantile(double q) const;

    /** The 95th percentile: quantile(0.95).  With one sample, that
     *  sample. */
    double p95() const { return quantile(0.95); }

    /**
     * Coefficient of variation as a percentage: 100 * stddev / mean.
     * 0 when empty, when there is a single sample (stddev is 0), or
     * when the mean is 0 (a zero-bandwidth point has no meaningful
     * relative spread).
     */
    double cv() const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    /**
     * Sorted copy maintained eagerly by add().  Eager insertion keeps
     * every const accessor genuinely read-only, so concurrent readers
     * (the parallel seed-sweep runner) need no locking — a lazy
     * sort-on-demand cache mutated under const was a data race.
     */
    std::vector<double> sorted_;
};

} // namespace cellbw::stats

#endif // CELLBW_STATS_DISTRIBUTION_HH
