#include "stats/ascii_chart.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "util/strings.hh"

namespace cellbw::stats
{

void
BarChart::add(const std::string &label, double value)
{
    bars_.emplace_back(label, value);
}

std::string
BarChart::render() const
{
    std::string out = title_ + "\n";
    if (bars_.empty())
        return out + "  (no data)\n";

    double maxv = scaleMax_;
    if (maxv <= 0.0)
        for (const auto &[label, v] : bars_)
            maxv = std::max(maxv, v);
    if (maxv <= 0.0)
        maxv = 1.0;

    std::size_t lw = 0;
    for (const auto &[label, v] : bars_)
        lw = std::max(lw, label.size());

    for (const auto &[label, v] : bars_) {
        std::string pad = label;
        pad.resize(lw, ' ');
        int n = static_cast<int>(std::lround(v / maxv * width_));
        // Out-of-scale values are clamped, but visibly: a negative
        // value is marked '<' (an empty bar would be indistinguishable
        // from zero) and a value past scaleMax_ is marked '>' instead
        // of silently saturating at full width.
        bool under = v < 0.0;
        bool over = n > width_;
        n = std::clamp(n, 0, width_);
        std::string bar = std::string(static_cast<size_t>(n), '#') +
                          std::string(static_cast<size_t>(width_ - n),
                                      ' ');
        if (under && width_ > 0)
            bar.front() = '<';
        if (over && width_ > 0)
            bar.back() = '>';
        out += util::format("  %s |%s %7.2f\n", pad.c_str(), bar.c_str(),
                            v);
    }
    return out;
}

SeriesChart::SeriesChart(std::string title, std::vector<std::string> xLabels,
                         int height)
    : title_(std::move(title)), xLabels_(std::move(xLabels)), height_(height)
{
    if (xLabels_.empty())
        sim::fatal("series chart needs at least one x point");
}

void
SeriesChart::addSeries(const std::string &name, std::vector<double> values)
{
    if (values.size() != xLabels_.size()) {
        sim::fatal("series '%s' has %zu points, x-axis has %zu", name.c_str(),
                   values.size(), xLabels_.size());
    }
    series_.emplace_back(name, std::move(values));
}

std::string
SeriesChart::render() const
{
    static const char marks[] = "*o+x#@%&";
    std::string out = title_ + "\n";
    if (series_.empty())
        return out + "  (no data)\n";

    double maxv = 0.0;
    for (const auto &[name, vals] : series_)
        for (double v : vals)
            maxv = std::max(maxv, v);
    if (maxv <= 0.0)
        maxv = 1.0;

    const int colw = 6;
    const int gridw = colw * static_cast<int>(xLabels_.size());

    // One text row per grid line, top-down.
    for (int row = height_; row >= 0; --row) {
        double lo = maxv * (row - 0.5) / height_;
        double hi = maxv * (row + 0.5) / height_;
        std::string line(static_cast<size_t>(gridw), ' ');
        for (std::size_t s = 0; s < series_.size(); ++s) {
            char mark = marks[s % (sizeof(marks) - 1)];
            const auto &vals = series_[s].second;
            for (std::size_t x = 0; x < vals.size(); ++x) {
                if (vals[x] >= lo && vals[x] < hi) {
                    auto pos = static_cast<size_t>(colw) * x + 2;
                    // Stack collisions sideways so marks stay visible.
                    while (pos < line.size() && line[pos] != ' ')
                        ++pos;
                    if (pos < line.size())
                        line[pos] = mark;
                }
            }
        }
        double axis = maxv * row / height_;
        out += util::format("%8.1f |%s\n", axis, line.c_str());
    }

    out += "         +" + std::string(static_cast<size_t>(gridw), '-') + "\n";
    std::string xline = "          ";
    for (const auto &xl : xLabels_) {
        std::string cell = xl.substr(0, colw - 1);
        cell.resize(static_cast<size_t>(colw), ' ');
        xline += cell;
    }
    out += xline + "\n";

    out += "  legend:";
    for (std::size_t s = 0; s < series_.size(); ++s) {
        out += util::format(" %c=%s", marks[s % (sizeof(marks) - 1)],
                            series_[s].first.c_str());
    }
    out += "\n";
    return out;
}

} // namespace cellbw::stats
