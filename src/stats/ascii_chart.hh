/**
 * @file
 * Terminal bar/series charts so each bench can show the *shape* of the
 * figure it reproduces, not just numbers.
 */

#ifndef CELLBW_STATS_ASCII_CHART_HH
#define CELLBW_STATS_ASCII_CHART_HH

#include <string>
#include <vector>

namespace cellbw::stats
{

/**
 * Horizontal bar chart: one labeled bar per (label, value) pair, scaled
 * to @p width characters at the max value (or at @p scaleMax if > 0,
 * useful for drawing "peak" reference lines).  Values outside the scale
 * are clamped with an explicit marker: '<' at the left edge for
 * negative values, '>' at the right edge for values above scaleMax.
 */
class BarChart
{
  public:
    explicit BarChart(std::string title, int width = 50)
        : title_(std::move(title)), width_(width)
    {
    }

    void add(const std::string &label, double value);

    /** Fix the full-scale value (e.g. the architectural peak). */
    void setScaleMax(double m) { scaleMax_ = m; }

    std::string render() const;

  private:
    std::string title_;
    int width_;
    double scaleMax_ = 0.0;
    std::vector<std::pair<std::string, double>> bars_;
};

/**
 * Multi-series line chart over a shared x-axis of labeled points,
 * rendered as a dot grid.  Used for the element-size sweeps.
 */
class SeriesChart
{
  public:
    SeriesChart(std::string title, std::vector<std::string> xLabels,
                int height = 12);

    /** Add a named series; values.size() must match the x-axis length. */
    void addSeries(const std::string &name, std::vector<double> values);

    std::string render() const;

  private:
    std::string title_;
    std::vector<std::string> xLabels_;
    int height_;
    std::vector<std::pair<std::string, std::vector<double>>> series_;
};

} // namespace cellbw::stats

#endif // CELLBW_STATS_ASCII_CHART_HH
