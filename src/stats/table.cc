#include "stats/table.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "util/strings.hh"

namespace cellbw::stats
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        sim::fatal("table must have at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        sim::fatal("table row has %zu cells, expected %zu", cells.size(),
                   headers_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int digits)
{
    return util::format("%.*f", digits, v);
}

std::string
Table::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                line += "  ";
            std::string cell = cells[c];
            cell.resize(width[c], ' ');
            line += cell;
        }
        // Trim trailing pad.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = renderRow(headers_);
    std::string sep;
    for (std::size_t c = 0; c < width.size(); ++c) {
        if (c)
            sep += "  ";
        sep += std::string(width[c], '-');
    }
    out += sep + "\n";
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

std::string
Table::csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += "\"";
    return out;
}

std::string
Table::renderCsv() const
{
    auto renderRow = [](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                line += ",";
            line += csvEscape(cells[c]);
        }
        return line + "\n";
    };
    std::string out = renderRow(headers_);
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

} // namespace cellbw::stats
