/**
 * @file
 * Text table and CSV rendering for bench output.
 *
 * Every bench binary prints the same rows/series as the paper's figure it
 * regenerates, as a fixed-width table (human) and optionally CSV
 * (machine).
 */

#ifndef CELLBW_STATS_TABLE_HH
#define CELLBW_STATS_TABLE_HH

#include <string>
#include <vector>

namespace cellbw::stats
{

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);

    std::size_t rowCount() const { return rows_.size(); }
    std::size_t columnCount() const { return headers_.size(); }

    /** @name Cell access for structured exporters (e.g. JSON). */
    /** @{ */
    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }
    /** @} */

    /** Fixed-width rendering with a header separator line. */
    std::string render() const;

    /** RFC-4180-ish CSV (cells containing commas/quotes are quoted). */
    std::string renderCsv() const;

  private:
    static std::string csvEscape(const std::string &s);

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cellbw::stats

#endif // CELLBW_STATS_TABLE_HH
