#include "core/runner.hh"

namespace cellbw::core
{

stats::Distribution
repeatRuns(const cell::CellConfig &cfg, const RepeatSpec &spec,
           const ExperimentBody &body)
{
    stats::Distribution dist;
    for (unsigned r = 0; r < spec.runs; ++r) {
        cell::CellSystem sys(cfg, spec.seed + r);
        dist.add(body(sys));
    }
    return dist;
}

} // namespace cellbw::core
