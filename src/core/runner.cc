#include "core/runner.hh"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/worker_pool.hh"
#include "util/options.hh"

namespace cellbw::core
{

void
RepeatSpec::registerOptions(util::Options &opts, unsigned defaultWarmup)
{
    opts.addUint("runs", 10,
                 "placement-randomized repetitions per point");
    opts.addUint("seed", 42, "base placement seed");
    opts.addUint("warmup", defaultWarmup,
                 "discarded leading repetitions per point (recorded "
                 "runs start at seed + warmup)");
}

bool
RepeatSpec::fromOptions(const util::Options &opts, std::string &err)
{
    if (opts.getUint("runs") == 0) {
        err = "--runs must be at least 1 (0 runs would produce an "
              "empty distribution and NaN summaries)";
        return false;
    }
    runs = static_cast<unsigned>(opts.getUint("runs"));
    seed = opts.getUint("seed");
    warmup = static_cast<unsigned>(opts.getUint("warmup"));
    return true;
}

namespace
{

double
runOne(const cell::CellConfig &cfg, const RepeatSpec &spec,
       std::uint64_t seed, const ExperimentBody &body)
{
    cell::CellSystem sys(cfg, seed);
    double sample = body(sys);
    if (spec.metrics)
        sys.snapshotMetrics(*spec.metrics);
    return sample;
}

} // namespace

unsigned
ParallelSpec::resolveJobs(unsigned runs) const
{
    unsigned j = jobs != 0 ? jobs : std::thread::hardware_concurrency();
    if (j == 0)
        j = 1;
    return std::min(j, runs);
}

namespace
{

/**
 * Seed sweep through a shared pool: submit every run, wait for this
 * batch only.  The pool interleaves these tasks with other
 * experiments' runs; merging in seed order below keeps the result
 * bit-identical to the serial loop.
 */
stats::Distribution
repeatRunsPooled(const cell::CellConfig &cfg, const RepeatSpec &spec,
                 const ExperimentBody &body, WorkerPool &pool)
{
    std::vector<double> results(spec.runs, 0.0);
    std::mutex m;
    std::condition_variable cv;
    unsigned done = 0;
    std::exception_ptr firstError;

    for (unsigned r = 0; r < spec.runs; ++r) {
        pool.submit([&, r] {
            double sample = 0.0;
            std::exception_ptr err;
            try {
                sample = runOne(cfg, spec, spec.seed + r, body);
            } catch (...) {
                err = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(m);
            results[r] = sample;
            if (err && !firstError)
                firstError = err;
            if (++done == spec.runs)
                cv.notify_one();
        });
    }

    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return done == spec.runs; });
    if (firstError)
        std::rethrow_exception(firstError);

    stats::Distribution dist;
    for (unsigned r = 0; r < spec.runs; ++r)
        dist.add(results[r]);
    return dist;
}

} // namespace

stats::Distribution
repeatRuns(const cell::CellConfig &cfg, const RepeatSpec &requested,
           const ExperimentBody &body, const ParallelSpec &par)
{
    // Warmup runs execute serially up front and are discarded (no
    // sample, no metrics); the recorded sweep then starts at
    // seed + warmup, so the recorded samples are exactly those of a
    // warmup-free sweep based at that seed.
    RepeatSpec spec = requested;
    if (spec.warmup > 0) {
        RepeatSpec discard = spec;
        discard.metrics = nullptr;
        for (unsigned w = 0; w < spec.warmup; ++w)
            runOne(cfg, discard, spec.seed + w, body);
        spec.seed += spec.warmup;
        spec.warmup = 0;
    }

    if (par.pool)
        return repeatRunsPooled(cfg, spec, body, *par.pool);

    stats::Distribution dist;
    const unsigned jobs = par.resolveJobs(spec.runs);

    if (jobs <= 1) {
        for (unsigned r = 0; r < spec.runs; ++r)
            dist.add(runOne(cfg, spec, spec.seed + r, body));
        return dist;
    }

    // One slot per run, claimed by atomic counter; workers write only
    // their own slots, so the only shared mutable state is the counter.
    std::vector<double> results(spec.runs, 0.0);
    std::atomic<unsigned> next{0};
    std::exception_ptr firstError;
    std::atomic<bool> failed{false};

    auto worker = [&] {
        for (;;) {
            const unsigned r = next.fetch_add(1, std::memory_order_relaxed);
            if (r >= spec.runs || failed.load(std::memory_order_relaxed))
                return;
            try {
                results[r] = runOne(cfg, spec, spec.seed + r, body);
            } catch (...) {
                if (!failed.exchange(true))
                    firstError = std::current_exception();
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned j = 0; j < jobs; ++j)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    if (failed.load())
        std::rethrow_exception(firstError);

    // Merge in seed order: bit-identical to the serial loop above.
    for (unsigned r = 0; r < spec.runs; ++r)
        dist.add(results[r]);
    return dist;
}

} // namespace cellbw::core
