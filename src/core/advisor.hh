/**
 * @file
 * The paper's programming rules as an executable checklist.
 *
 * Section 5 distils the measurements into "strict programming rules".
 * Advisor::advise() inspects a planned communication pattern and
 * returns the rules it violates, so runtimes (the paper names CellSs)
 * or users can sanity-check a design before committing to it.
 */

#ifndef CELLBW_CORE_ADVISOR_HH
#define CELLBW_CORE_ADVISOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cellbw::core
{

/** A planned bulk-communication pattern. */
struct DmaPlan
{
    /** DMA element size in bytes. */
    std::uint32_t elemBytes = 16 * 1024;

    /** Whether DMA lists are used. */
    bool useList = false;

    /** Commands between tag waits; 0 = single wait at the end. */
    unsigned syncEvery = 0;

    /** SPEs reading/writing main memory concurrently per stream. */
    unsigned spesPerStream = 1;

    /** Number of independent data streams. */
    unsigned streams = 1;

    /** True if the pattern is SPE-to-SPE (vs SPE-to-memory). */
    bool speToSpe = false;

    /** PPE-side element size for any PPE load/store loops (0 = none). */
    unsigned ppeElemBytes = 0;

    /** True if the PPE is used to move bulk data to/from memory. */
    bool ppeBulkTransfers = false;
};

struct Advice
{
    enum class Severity { Hint, Warning };

    Severity severity;
    std::string rule;       ///< short rule id, e.g. "dma-list-small-elems"
    std::string message;    ///< human-readable explanation
};

/** Evaluate @p plan against the paper's rules. */
std::vector<Advice> advise(const DmaPlan &plan);

/** Render advice as a printable block. */
std::string renderAdvice(const std::vector<Advice> &advice);

} // namespace cellbw::core

#endif // CELLBW_CORE_ADVISOR_HH
